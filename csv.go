package dynlb

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteRowsCSV writes figure rows in the experiments CSV format: the fixed
// columns figure, series, x, xlabel, join_rt_ms, n, ci95_ms followed by the
// union of the rows' Extra keys in sorted order. When any row carries
// replicate aggregates (Row.Rep from a reps >= 2 sweep), replication
// columns are appended — reps, conf and the across-replicate confidence
// half-widths of response time, throughput and CPU/disk/memory utilization
// (the means are already in the base columns, which a replicated sweep
// fills with across-replicate averages). When any row carries paired
// comparison aggregates (Row.Cmp from a compared sweep), comparison columns
// follow: the strategy pair, both response-time means, the paired delta and
// relative improvement with their paired-t half-widths, the half-width an
// independent-seed experiment would give, and the replicate correlation.
// When any row carries windowed metrics (Results.Windows from a
// Config.MetricsWindow/WithMetricsWindow run), windowed columns follow: the
// window count and width, the derived peak-window response time and
// recovery time, and the per-window series (response-time mean/p95,
// throughput, CPU/disk/memory utilization) packed as semicolon-separated
// values in window order. When any row carries fault-injection metrics
// (Results.FaultSpec from a Config.Faults/WithFaults run), fault columns
// follow: the plan spec, abort/retry counts and availability, plus the
// per-window abort and availability series (packed like the other window
// series) when the rows are also windowed. Unreplicated, uncompared,
// unwindowed, fault-free output is unchanged, so goldens locked at reps=1
// stay valid.
func WriteRowsCSV(out io.Writer, rows []Row) error {
	w := csv.NewWriter(out)

	keys := map[string]bool{}
	replicated := false
	compared := false
	windowed := false
	faulted := false
	for _, r := range rows {
		for k := range r.Extra {
			keys[k] = true
		}
		if r.Rep != nil {
			replicated = true
		}
		if r.Cmp != nil {
			compared = true
		}
		if len(r.Res.Windows) > 0 {
			windowed = true
		}
		if r.Res.FaultSpec != "" {
			faulted = true
		}
	}
	extras := make([]string, 0, len(keys))
	for k := range keys {
		extras = append(extras, k)
	}
	sort.Strings(extras)

	header := append([]string{"figure", "series", "x", "xlabel", "join_rt_ms", "n", "ci95_ms"}, extras...)
	if replicated {
		header = append(header,
			"reps", "conf", "rt_hw_ms", "tput_qps", "tput_hw_qps", "cpu_hw", "disk_hw", "mem_hw")
	}
	if compared {
		header = append(header,
			"strategy_a", "strategy_b", "rt_a_ms", "rt_b_ms",
			"rt_delta_ms", "rt_delta_hw_ms", "rt_improv_pct", "rt_improv_hw_pct",
			"rt_unpaired_improv_hw_pct", "rt_corr")
	}
	if windowed {
		header = append(header,
			"windows", "window_ms", "peak_win_rt_ms", "recovery_ms",
			"win_rt_mean_ms", "win_rt_p95_ms", "win_tps", "win_cpu", "win_disk", "win_mem")
	}
	if faulted {
		header = append(header, "faults", "aborts", "retries", "availability")
		if windowed {
			header = append(header, "win_aborts", "win_avail")
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Series,
			strconv.FormatFloat(r.X, 'g', -1, 64), r.XLabel,
			strconv.FormatFloat(r.JoinRTMS, 'f', 2, 64),
			strconv.Itoa(r.Res.JoinRT.N),
			strconv.FormatFloat(r.Res.JoinRT.HW95MS, 'f', 2, 64),
		}
		for _, k := range extras {
			v, ok := r.Extra[k]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatFloat(v, 'f', 3, 64))
		}
		if replicated {
			if r.Rep == nil {
				// Analytic or otherwise unsimulated row in a replicated sweep.
				rec = append(rec, "", "", "", "", "", "", "", "")
			} else {
				rec = append(rec,
					strconv.Itoa(r.Rep.Reps),
					strconv.FormatFloat(r.Rep.Conf, 'g', -1, 64),
					strconv.FormatFloat(r.Rep.JoinRTMS.HW, 'f', 2, 64),
					strconv.FormatFloat(r.Rep.JoinTPS.Mean, 'f', 3, 64),
					strconv.FormatFloat(r.Rep.JoinTPS.HW, 'f', 3, 64),
					strconv.FormatFloat(r.Rep.CPUUtil.HW, 'f', 4, 64),
					strconv.FormatFloat(r.Rep.DiskUtil.HW, 'f', 4, 64),
					strconv.FormatFloat(r.Rep.MemUtil.HW, 'f', 4, 64),
				)
			}
		}
		if compared {
			if r.Cmp == nil {
				rec = append(rec, "", "", "", "", "", "", "", "", "", "")
			} else {
				c := r.Cmp.JoinRTMS
				rec = append(rec,
					r.Cmp.StrategyA,
					r.Cmp.StrategyB,
					strconv.FormatFloat(c.A, 'f', 2, 64),
					strconv.FormatFloat(c.B, 'f', 2, 64),
					strconv.FormatFloat(c.Delta.Mean, 'f', 2, 64),
					strconv.FormatFloat(c.Delta.HW, 'f', 2, 64),
					strconv.FormatFloat(c.Improv.Mean, 'f', 3, 64),
					strconv.FormatFloat(c.Improv.HW, 'f', 3, 64),
					strconv.FormatFloat(c.UnpairedImprovHW, 'f', 3, 64),
					strconv.FormatFloat(c.Corr, 'f', 4, 64),
				)
			}
		}
		if windowed {
			if len(r.Res.Windows) == 0 {
				// Steady-state row in a windowed sweep (e.g. mixed sources).
				rec = append(rec, "", "", "", "", "", "", "", "", "", "")
			} else {
				rec = append(rec,
					strconv.Itoa(len(r.Res.Windows)),
					strconv.FormatFloat(r.Res.WindowMS, 'g', -1, 64),
					strconv.FormatFloat(r.Res.PeakWindowRTMS, 'f', 2, 64),
					strconv.FormatFloat(r.Res.RecoveryMS, 'f', 2, 64),
					packWindows(r.Res.Windows, 2, func(w Window) float64 { return w.RTMeanMS }),
					packWindows(r.Res.Windows, 2, func(w Window) float64 { return w.RTP95MS }),
					packWindows(r.Res.Windows, 3, func(w Window) float64 { return w.JoinTPS }),
					packWindows(r.Res.Windows, 4, func(w Window) float64 { return w.CPUUtil }),
					packWindows(r.Res.Windows, 4, func(w Window) float64 { return w.DiskUtil }),
					packWindows(r.Res.Windows, 4, func(w Window) float64 { return w.MemUtil }),
				)
			}
		}
		if faulted {
			if r.Res.FaultSpec == "" {
				// Fault-free row in a faulted sweep (e.g. a FaultAxis "none").
				rec = append(rec, "", "", "", "")
				if windowed {
					rec = append(rec, "", "")
				}
			} else {
				rec = append(rec,
					r.Res.FaultSpec,
					strconv.FormatInt(r.Res.Aborts, 10),
					strconv.FormatInt(r.Res.Retries, 10),
					strconv.FormatFloat(r.Res.Availability, 'f', 4, 64),
				)
				if windowed {
					rec = append(rec,
						packWindows(r.Res.Windows, 0, func(w Window) float64 { return float64(w.Aborts) }),
						packWindows(r.Res.Windows, 4, func(w Window) float64 { return w.Availability }),
					)
				}
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// packWindows renders one per-window metric as a semicolon-separated series
// in window order — one CSV cell per metric, keeping the row count
// independent of the window count.
func packWindows(ws []Window, prec int, get func(Window) float64) string {
	var b strings.Builder
	for i, w := range ws {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatFloat(get(w), 'f', prec, 64))
	}
	return b.String()
}
