package dynlb

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// burstCompareRows runs the canonical non-stationary comparison sweep: a
// quick-scale flash crowd under the static baseline vs the integrated
// dynamic strategy, paired seeds, 1s metrics windows. The profile and
// window arrive through the experiment options, so the test exercises the
// full surfacing path (option -> config override -> engine -> Results).
func burstCompareRows(t *testing.T, workers int) []Row {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NPE = 20
	cfg.JoinQPSPerPE = 0.1
	rows, err := NewExperiment(
		Sweep{Name: "burst", Base: cfg},
		WithScale(ScaleQuick),
		WithCompare(MustStrategy("psu-opt+RANDOM"), MustStrategy("OPT-IO-CPU")),
		WithReps(3),
		WithProfile(FlashCrowd(Seconds(2), Seconds(2), 3, 1.5)),
		WithMetricsWindow(Seconds(1)),
		WithWorkers(workers),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestBurstCompareWindowedDeterminism: the windowed rows of a non-stationary
// compared sweep are bit-identical regardless of worker count — window
// collection lives inside each point's own kernel, so parallelism cannot
// touch it. reflect.DeepEqual covers every field including the Windows
// slices.
func TestBurstCompareWindowedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sequential := burstCompareRows(t, 1)
	parallel := burstCompareRows(t, 0) // 0 = NumCPU
	if !reflect.DeepEqual(sequential, parallel) {
		t.Fatal("windowed compared rows differ between -parallel 1 and NumCPU workers")
	}
	if len(sequential) != 1 || len(sequential[0].Res.Windows) != 8 {
		t.Fatalf("expected 1 row with 8 windows (8s quick measurement at 1s), got %d rows, %d windows",
			len(sequential), len(sequential[0].Res.Windows))
	}
	if sequential[0].Cmp == nil {
		t.Fatal("compared sweep produced no comparison block")
	}
}

// TestGoldenBurstCompareQuick locks the windowed comparison CSV bytes: the
// burst sweep's per-window series, peak and recovery columns next to the
// comparison columns. Any change to the profile modulation, the window
// collection or the CSV packing shifts these bytes.
func TestGoldenBurstCompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	skipUnlessGoldenArch(t)
	lockGolden(t, "burst_compare_quick.csv", burstCompareRows(t, 0))
}

// TestWriteRowsCSVWindowedColumns: windowed columns appear only when some
// row has windows, steady-state rows in a windowed set carry empty cells,
// and every record has the same width as the header.
func TestWriteRowsCSVWindowedColumns(t *testing.T) {
	win := []Window{
		{StartMS: 0, EndMS: 1000, Joins: 3, RTMeanMS: 100, RTP95MS: 150, JoinTPS: 3, CPUUtil: 0.5, DiskUtil: 0.25, MemUtil: 0.125},
		{StartMS: 1000, EndMS: 2000, Joins: 1, RTMeanMS: 400, RTP95MS: 400, JoinTPS: 1, CPUUtil: 0.75, DiskUtil: 0.5, MemUtil: 0.25},
	}
	rows := []Row{
		{Figure: "w", Series: "a", Res: Results{Windows: win, WindowMS: 1000, PeakWindowRTMS: 400, RecoveryMS: -1}},
		{Figure: "w", Series: "steady"}, // no windows: cells stay empty
	}
	recs := parseCSV(t, rows)
	header := recs[0]
	idx := map[string]int{}
	for i, h := range header {
		idx[h] = i
	}
	for _, col := range []string{"windows", "window_ms", "peak_win_rt_ms", "recovery_ms", "win_rt_mean_ms", "win_mem"} {
		if _, ok := idx[col]; !ok {
			t.Fatalf("windowed header missing %q: %v", col, header)
		}
	}
	got := recs[1]
	if got[idx["windows"]] != "2" || got[idx["window_ms"]] != "1000" ||
		got[idx["peak_win_rt_ms"]] != "400.00" || got[idx["recovery_ms"]] != "-1.00" {
		t.Errorf("windowed summary cells wrong: %v", got)
	}
	if got[idx["win_rt_mean_ms"]] != "100.00;400.00" || got[idx["win_tps"]] != "3.000;1.000" ||
		got[idx["win_mem"]] != "0.1250;0.2500" {
		t.Errorf("packed window series wrong: %v", got)
	}
	steady := recs[2]
	for _, col := range []string{"windows", "window_ms", "win_rt_mean_ms", "win_mem"} {
		if steady[idx[col]] != "" {
			t.Errorf("steady row filled windowed column %q: %q", col, steady[idx[col]])
		}
	}

	// Without windows anywhere, the windowed columns must not exist at all —
	// the goldens locked before this feature depend on it.
	plain := parseCSV(t, []Row{{Figure: "w", Series: "steady"}})
	for _, h := range plain[0] {
		if h == "windows" || h == "win_rt_mean_ms" {
			t.Fatalf("unwindowed row set grew a %q column", h)
		}
	}
}

// TestWriteRowsCSVMixedBlocksAlignment: rows carrying any mix of
// replication, comparison and windowed blocks must all emit records of the
// header's width — csv.Reader errors on ragged rows, so parseCSV doubles as
// the assertion.
func TestWriteRowsCSVMixedBlocksAlignment(t *testing.T) {
	win := []Window{{StartMS: 0, EndMS: 500, Joins: 1, RTMeanMS: 10, RTP95MS: 10, JoinTPS: 2}}
	rows := []Row{
		{Figure: "m", Series: "rep only", Rep: &Replication{Reps: 3, Conf: 0.95}},
		{Figure: "m", Series: "cmp only", Cmp: &PairedComparison{StrategyA: "a", StrategyB: "b", Reps: 3, Conf: 0.95}},
		{Figure: "m", Series: "win only", Res: Results{Windows: win, WindowMS: 500}},
		{Figure: "m", Series: "bare", Extra: map[string]float64{"k": 1}},
		{Figure: "m", Series: "all", Extra: map[string]float64{"k": 2},
			Rep: &Replication{Reps: 2, Conf: 0.9},
			Cmp: &PairedComparison{StrategyA: "a", StrategyB: "b"},
			Res: Results{Windows: win, WindowMS: 500}},
	}
	recs := parseCSV(t, rows)
	if len(recs) != len(rows)+1 {
		t.Fatalf("got %d records, want %d", len(recs), len(rows)+1)
	}
	want := len(recs[0])
	for i, r := range recs {
		if len(r) != want {
			t.Errorf("record %d has %d fields, header has %d", i, len(r), want)
		}
	}
}

// TestWriteRowsCSVEmptyRowSet: zero rows still write the base header.
func TestWriteRowsCSVEmptyRowSet(t *testing.T) {
	recs := parseCSV(t, nil)
	if len(recs) != 1 {
		t.Fatalf("empty row set wrote %d records, want header only", len(recs))
	}
	if recs[0][0] != "figure" || len(recs[0]) != 7 {
		t.Errorf("base header wrong: %v", recs[0])
	}
}

func parseCSV(t *testing.T, rows []Row) [][]string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	return recs
}

// TestWriteRowsJSONSanitizesNonFinite: a degenerate metric (NaN mean, ±Inf
// improvement ratio) must not fail the whole export — encoding/json rejects
// non-finite floats — and must not be scrubbed in the caller's rows either.
func TestWriteRowsJSONSanitizesNonFinite(t *testing.T) {
	inf := math.Inf(1)
	rows := []Row{{
		Figure: "bad", Series: "s",
		JoinRTMS: math.NaN(),
		Extra:    map[string]float64{"ratio": inf},
		Res:      Results{Windows: []Window{{RTMeanMS: math.Inf(-1)}}},
		Cmp:      &PairedComparison{JoinRTMS: DeltaCI{Improv: MeanCI{Mean: inf}}},
	}}
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatalf("non-finite metrics failed the export: %v", err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("sanitized output is not valid JSON: %v", err)
	}
	if got := decoded[0]["join_rt_ms"]; got != 0.0 {
		t.Errorf("NaN join_rt_ms encoded as %v, want 0", got)
	}
	if got := decoded[0]["extra"].(map[string]any)["ratio"]; got != 0.0 {
		t.Errorf("+Inf extra encoded as %v, want 0", got)
	}

	// The caller's rows — including data behind pointers, slices and maps —
	// keep their non-finite values: the scrub works on copies.
	if !math.IsNaN(rows[0].JoinRTMS) {
		t.Error("caller's JoinRTMS was scrubbed")
	}
	if !math.IsInf(rows[0].Extra["ratio"], 1) {
		t.Error("caller's Extra map was scrubbed")
	}
	if !math.IsInf(rows[0].Cmp.JoinRTMS.Improv.Mean, 1) {
		t.Error("caller's Cmp was scrubbed through the pointer")
	}
	if !math.IsInf(rows[0].Res.Windows[0].RTMeanMS, -1) {
		t.Error("caller's Windows slice was scrubbed")
	}
}

// TestAggregateResultsWindows: window series aggregate element-wise onto a
// fresh slice (never aliasing runs[0]), the peak averages per-run peaks, and
// recovery averages only over the runs that recovered.
func TestAggregateResultsWindows(t *testing.T) {
	mk := func(rts []float64, peak, rec float64) Results {
		ws := make([]Window, len(rts))
		for i, rt := range rts {
			ws[i] = Window{StartMS: float64(i * 1000), EndMS: float64((i + 1) * 1000),
				Joins: i + 1, RTMeanMS: rt, JoinTPS: float64(i + 1), CPUUtil: 0.5}
		}
		return Results{Windows: ws, WindowMS: 1000, PeakWindowRTMS: peak, RecoveryMS: rec}
	}
	runs := []Results{mk([]float64{100, 300}, 300, -1), mk([]float64{200, 500}, 500, 600)}
	mean, _ := AggregateResults(runs, 0.95)

	if len(mean.Windows) != 2 || mean.Windows[0].RTMeanMS != 150 || mean.Windows[1].RTMeanMS != 400 {
		t.Fatalf("element-wise window means wrong: %+v", mean.Windows)
	}
	if mean.Windows[0].StartMS != 0 || mean.Windows[1].EndMS != 2000 || mean.WindowMS != 1000 {
		t.Errorf("window grid not preserved: %+v", mean.Windows)
	}
	if mean.PeakWindowRTMS != 400 {
		t.Errorf("peak = %v, want mean of per-run peaks 400", mean.PeakWindowRTMS)
	}
	if mean.RecoveryMS != 600 {
		t.Errorf("recovery = %v, want 600 (only the recovered run counts)", mean.RecoveryMS)
	}

	// No aliasing: writing the aggregate must not reach runs[0].
	mean.Windows[0].RTMeanMS = -1
	if runs[0].Windows[0].RTMeanMS != 100 {
		t.Fatal("mean.Windows aliases runs[0].Windows")
	}

	// No run recovered: the aggregate keeps the "never" marker.
	never := []Results{mk([]float64{1}, 1, -1), mk([]float64{2}, 2, -1)}
	if m, _ := AggregateResults(never, 0.95); m.RecoveryMS != -1 {
		t.Errorf("all-unrecovered aggregate recovery = %v, want -1", m.RecoveryMS)
	}

	// Heterogeneous grids cannot aggregate element-wise: drop the series.
	mixed := []Results{mk([]float64{1, 2}, 2, -1), mk([]float64{3}, 3, -1)}
	if m, _ := AggregateResults(mixed, 0.95); m.Windows != nil {
		t.Errorf("mismatched window grids still aggregated: %+v", m.Windows)
	}
}
