package dynlb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteRowsJSONShape: the JSON export is a self-describing array —
// coordinates and headline metrics at the top level, full Results nested,
// replication/comparison blocks only when present.
func TestWriteRowsJSONShape(t *testing.T) {
	rows := []Row{
		{
			Figure: "6", Series: "OPT-IO-CPU", X: 40, XLabel: "#PE",
			JoinRTMS: 123.5,
			Extra:    map[string]float64{"degree": 12.5},
			Res:      Results{Strategy: "OPT-IO-CPU", NPE: 40, JoinTPS: 9.5},
			Rep: &Replication{
				Reps: 3, Conf: 0.95,
				JoinRTMS: MeanCI{Mean: 123.5, HW: 4.25},
			},
		},
		{Figure: "6", Series: "plain", X: 80, XLabel: "#PE"},
	}
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d rows, want 2", len(decoded))
	}
	r0 := decoded[0]
	if r0["figure"] != "6" || r0["series"] != "OPT-IO-CPU" || r0["x"] != 40.0 || r0["join_rt_ms"] != 123.5 {
		t.Errorf("top-level fields wrong: %v", r0)
	}
	res, ok := r0["results"].(map[string]any)
	if !ok || res["strategy"] != "OPT-IO-CPU" || res["npe"] != 40.0 || res["join_tps"] != 9.5 {
		t.Errorf("nested results wrong: %v", r0["results"])
	}
	rep, ok := r0["replication"].(map[string]any)
	if !ok || rep["reps"] != 3.0 {
		t.Errorf("replication block wrong: %v", r0["replication"])
	}
	ci, ok := rep["join_rt_ms"].(map[string]any)
	if !ok || ci["mean"] != 123.5 || ci["hw"] != 4.25 {
		t.Errorf("replication CI wrong: %v", rep["join_rt_ms"])
	}
	// Absent blocks are omitted, not null.
	r1 := decoded[1]
	for _, absent := range []string{"replication", "comparison", "extra"} {
		if _, present := r1[absent]; present {
			t.Errorf("unreplicated row serialized %q", absent)
		}
	}
}

// TestWriteRowsJSONEmpty: zero rows encode as an empty array, the shape
// downstream parsers expect, never null.
func TestWriteRowsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty rows encoded as %q, want []", got)
	}
}
