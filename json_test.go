package dynlb

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestWriteRowsJSONShape: the JSON export is a self-describing array —
// coordinates and headline metrics at the top level, full Results nested,
// replication/comparison blocks only when present.
func TestWriteRowsJSONShape(t *testing.T) {
	rows := []Row{
		{
			Figure: "6", Series: "OPT-IO-CPU", X: 40, XLabel: "#PE",
			JoinRTMS: 123.5,
			Extra:    map[string]float64{"degree": 12.5},
			Res:      Results{Strategy: "OPT-IO-CPU", NPE: 40, JoinTPS: 9.5},
			Rep: &Replication{
				Reps: 3, Conf: 0.95,
				JoinRTMS: MeanCI{Mean: 123.5, HW: 4.25},
			},
		},
		{Figure: "6", Series: "plain", X: 80, XLabel: "#PE"},
	}
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("decoded %d rows, want 2", len(decoded))
	}
	r0 := decoded[0]
	if r0["figure"] != "6" || r0["series"] != "OPT-IO-CPU" || r0["x"] != 40.0 || r0["join_rt_ms"] != 123.5 {
		t.Errorf("top-level fields wrong: %v", r0)
	}
	res, ok := r0["results"].(map[string]any)
	if !ok || res["strategy"] != "OPT-IO-CPU" || res["npe"] != 40.0 || res["join_tps"] != 9.5 {
		t.Errorf("nested results wrong: %v", r0["results"])
	}
	rep, ok := r0["replication"].(map[string]any)
	if !ok || rep["reps"] != 3.0 {
		t.Errorf("replication block wrong: %v", r0["replication"])
	}
	ci, ok := rep["join_rt_ms"].(map[string]any)
	if !ok || ci["mean"] != 123.5 || ci["hw"] != 4.25 {
		t.Errorf("replication CI wrong: %v", rep["join_rt_ms"])
	}
	// Absent blocks are omitted, not null.
	r1 := decoded[1]
	for _, absent := range []string{"replication", "comparison", "extra"} {
		if _, present := r1[absent]; present {
			t.Errorf("unreplicated row serialized %q", absent)
		}
	}
}

// TestWriteRowsJSONEmpty: zero rows encode as an empty array, the shape
// downstream parsers expect, never null.
func TestWriteRowsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRowsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty rows encoded as %q, want []", got)
	}
}

// TestMarshalRowJSONRoundTrip: the SSE row frame round-trips exactly — a
// Row decoded from MarshalRowJSON output reproduces every float bit for
// bit, which is what makes server-collected CSV byte-identical to the
// library's.
func TestMarshalRowJSONRoundTrip(t *testing.T) {
	row := Row{
		Figure: "1c", Series: "psu-opt+LUM", X: 0.1 + 0.2, XLabel: "degree",
		JoinRTMS: 1234.5678901234567,
		Extra:    map[string]float64{"cpu%": 73.00000000000001, "tempIO": 1e-17},
		Res: Results{
			Strategy: "psu-opt+LUM", NPE: 80,
			JoinRT:  Summary{N: 321, MeanMS: 1234.5678901234567, P95MS: 2000.25, HW95MS: 12.125},
			JoinTPS: 9.869604401089358,
		},
		Rep: &Replication{Reps: 3, Conf: 0.95, JoinRTMS: MeanCI{Mean: 1.0 / 3.0, HW: 2.0 / 7.0}},
	}
	b, err := MarshalRowJSON(row)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(b, '\n') {
		t.Fatalf("SSE data frame contains a newline: %s", b)
	}
	var back Row
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, back) {
		t.Errorf("row did not round-trip:\n got %+v\nwant %+v", back, row)
	}

	// Non-finite metrics are sanitized like WriteRowsJSON, not a marshal
	// error.
	row.Extra = map[string]float64{"bad": math.Inf(1)}
	b, err = MarshalRowJSON(row)
	if err != nil {
		t.Fatalf("non-finite row: %v", err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Extra["bad"] != 0 {
		t.Errorf("Inf metric serialized as %v, want 0", back.Extra["bad"])
	}
}

// TestExperimentRequestValidation: malformed request documents fail at
// build time with a diagnosis, before any simulation starts.
func TestExperimentRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"no source", `{}`, "needs a figure or a sweep"},
		{"both sources", `{"figure": "6", "sweep": {"strategies": ["MIN-IO"]}}`, "pick one"},
		{"unknown figure", `{"figure": "17"}`, "unknown figure"},
		{"bad scale", `{"figure": "6", "scale": "warp"}`, "unknown scale"},
		{"bad strategy", `{"sweep": {"strategies": ["NOPE"]}}`, "unknown strategy"},
		{"axis unknown field", `{"sweep": {"strategies": ["MIN-IO"],
			"axes": [{"name": "x", "field": "NoSuchKnob", "values": [1]}]}}`, "unknown Config field"},
		{"axis non-numeric field", `{"sweep": {"strategies": ["MIN-IO"],
			"axes": [{"name": "x", "field": "OLTP", "values": [1]}]}}`, "not a numeric axis target"},
		{"axis fractional int", `{"sweep": {"strategies": ["MIN-IO"],
			"axes": [{"name": "x", "field": "NPE", "values": [2.5]}]}}`, "integer field"},
		{"axis mixes modes", `{"sweep": {"strategies": ["MIN-IO"],
			"axes": [{"name": "x", "field": "NPE", "values": [2], "profiles": ["square:factor=2,period=1s,duty=0.5"]}]}}`, "mixes profiles"},
		{"axis without values", `{"sweep": {"strategies": ["MIN-IO"], "axes": [{"name": "x"}]}}`, "needs a field and values"},
		{"axis without name", `{"sweep": {"strategies": ["MIN-IO"], "axes": [{"field": "NPE", "values": [2]}]}}`, "needs a name"},
		{"bad profile axis", `{"sweep": {"strategies": ["MIN-IO"],
			"axes": [{"name": "p", "profiles": ["wavy:amp=2"]}]}}`, "profile"},
		{"one compare name", `{"figure": "6", "compare": ["MIN-IO"]}`, "compare wants"},
		{"bad window", `{"figure": "6", "window": "soon"}`, "window"},
		{"bad request profile", `{"figure": "6", "profile": "bursty"}`, "profile"},
		{"reps and seeds", `{"figure": "6", "reps": 3, "seeds": [1, 2]}`, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req ExperimentRequest
			if err := json.Unmarshal([]byte(tc.doc), &req); err != nil {
				t.Fatalf("decode: %v", err)
			}
			_, err := req.Experiment()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestExperimentRequestMatchesLibrary: a request document and the
// equivalent in-code Sweep + options produce bit-identical rows — the
// server ≡ library contract the dynlbd CI job enforces end to end.
func TestExperimentRequestMatchesLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	doc := `{
		"sweep": {
			"name": "tiny",
			"base": {"NPE": 8, "JoinQPSPerPE": 0.1},
			"strategies": ["psu-opt+RANDOM", "OPT-IO-CPU"],
			"axes": [{"name": "#PE", "field": "NPE", "values": [8, 10]}]
		},
		"scale": "quick",
		"reps": 2
	}`
	var req ExperimentRequest
	if err := json.Unmarshal([]byte(doc), &req); err != nil {
		t.Fatal(err)
	}
	exp, err := req.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	got, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	base := DefaultConfig()
	base.NPE = 8
	base.JoinQPSPerPE = 0.1
	sweep := Sweep{
		Name:       "tiny",
		Base:       base,
		Strategies: []Strategy{MustStrategy("psu-opt+RANDOM"), MustStrategy("OPT-IO-CPU")},
		Axes:       []Axis{IntAxis("#PE", func(c *Config, n int) { c.NPE = n }, 8, 10)},
	}
	want, err := NewExperiment(sweep, WithScale(ScaleQuick), WithReps(2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("request rows differ from library rows:\n got %+v\nwant %+v", got, want)
	}
}

// TestExperimentRequestDurationAxis: axes over Duration fields take their
// values in seconds, not raw nanoseconds.
func TestExperimentRequestDurationAxis(t *testing.T) {
	var req ExperimentRequest
	doc := `{"sweep": {"strategies": ["MIN-IO"],
		"axes": [{"name": "report", "field": "ReportInterval", "values": [0.25, 0.5]}]}}`
	if err := json.Unmarshal([]byte(doc), &req); err != nil {
		t.Fatal(err)
	}
	exp, err := req.Experiment()
	if err != nil {
		t.Fatal(err)
	}
	p, err := exp.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumJobs() != 2 {
		t.Fatalf("NumJobs %d, want 2", p.NumJobs())
	}
	if got := p.jobs[0].cfg.ReportInterval; got != Seconds(0.25) {
		t.Errorf("axis value 0.25 set ReportInterval %v, want %v", got, Seconds(0.25))
	}
	if got := p.jobs[1].cfg.ReportInterval; got != Seconds(0.5) {
		t.Errorf("axis value 0.5 set ReportInterval %v, want %v", got, Seconds(0.5))
	}
}

// TestCacheKeyCanonicalization: the cache key resolves every defaulted
// field, so different spellings of the same experiment collide while any
// row-changing difference separates — and the parallelism hint never
// matters.
func TestCacheKeyCanonicalization(t *testing.T) {
	key := func(doc string) string {
		t.Helper()
		var req ExperimentRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatal(err)
		}
		k, err := req.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	same := [][2]string{
		{`{"figure": "1c"}`,
			`{"figure": "1c", "scale": "normal", "seed": 1, "reps": 1, "confidence": 0.95, "workers": 7}`},
		{`{"sweep": {"strategies": ["MIN-IO"]}}`,
			`{"sweep": {"strategies": ["MIN-IO"]}, "workers": 3}`},
	}
	for i, pair := range same {
		if key(pair[0]) != key(pair[1]) {
			t.Errorf("case %d: equivalent requests got different cache keys:\n %s\n %s",
				i, key(pair[0]), key(pair[1]))
		}
	}
	distinct := []string{
		`{"figure": "1c"}`,
		`{"figure": "1c", "scale": "quick"}`,
		`{"figure": "1c", "seed": 2}`,
		`{"figure": "1c", "reps": 3}`,
		`{"figure": "1c", "confidence": 0.99}`,
		`{"figure": "1c", "window": "1s"}`,
		`{"figure": "6"}`,
		`{"sweep": {"strategies": ["MIN-IO"]}}`,
		`{"sweep": {"base": {"NPE": 16}, "strategies": ["MIN-IO"]}}`,
	}
	seen := map[string]string{}
	for _, doc := range distinct {
		k := key(doc)
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %s and %s share a cache key", prev, doc)
		}
		seen[k] = doc
	}
	// A code-built request with no Sweep.Base canonicalizes like the
	// decoded form, which always materializes the default base.
	bare := &ExperimentRequest{Sweep: &SweepSpec{Strategies: []string{"MIN-IO"}}}
	k, err := bare.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if k != key(`{"sweep": {"strategies": ["MIN-IO"]}}`) {
		t.Errorf("nil-base sweep key differs from decoded default-base key")
	}
}
