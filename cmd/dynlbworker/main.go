// Command dynlbworker is one member of a distributed sweep fleet: a
// stateless HTTP worker that accepts simulation jobs from a coordinator
// (cmd/experiments -dist, cmd/dynlbd -dist, or dynlb.WithDistributed),
// runs them with the same engine the library uses in-process, and streams
// the results back losslessly. Because every job arrives as its exact
// simulation inputs — fully resolved config plus strategy name — results
// are bit-identical to local execution wherever the job lands.
//
//	dynlbworker -addr :9090 -slots 4
//
// Endpoints:
//
//	POST /v1/jobs   run a batch of jobs (coordinator protocol)
//	GET  /healthz   liveness and load: {"status":"ok","slots":N,"busy":B,"jobs_done":D}
//
// The worker holds no sweep state: coordinators may crash, retry, or send
// the same job twice (the coordinator drops duplicate completions after
// byte-verifying them), and workers may join or die mid-sweep — the
// coordinator re-dispatches and the merged rows never change.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynlb/internal/dist"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr  = flag.String("addr", ":9090", "listen address")
		slots = flag.Int("slots", 0, "max concurrent simulations (<= 0 = NumCPU)")
		grace = flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight job batches")
	)
	flag.Parse()
	if *grace <= 0 {
		fmt.Fprintf(os.Stderr, "-grace %v: want a positive duration like 5s\n", *grace)
		return 2
	}

	w := dist.NewWorker(*slots)
	srv := &http.Server{Addr: *addr, Handler: w}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("dynlbworker listening on %s (slots=%d)", *addr, w.Slots())

	select {
	case err := <-errc:
		log.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	log.Printf("shutting down (%d jobs done)", w.JobsDone())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	return 0
}
