// Command dynlbd is the dynlb experiment service: a long-running
// capacity-planning daemon that accepts experiment sweeps over HTTP/JSON,
// multiplexes them over one shared bounded worker pool with round-robin
// fairness and backpressure, streams rows over SSE in the library's
// deterministic order, and serves resubmitted sweeps from an in-memory
// result cache — byte-identical, zero simulations.
//
//	dynlbd -addr :8080 -workers 8 -queue 16 -cache 128
//
// With -dist the daemon fans simulations out to a dynlbworker fleet
// instead of running them in-process — same rows, same cache keys, because
// jobs are pure functions of their plan inputs wherever they run:
//
//	dynlbd -addr :8080 -dist http://10.0.0.7:9090,http://10.0.0.8:9090
//
// Submit, stream, inspect, cancel:
//
//	curl -d '{"figure": "1c", "scale": "quick"}' localhost:8080/v1/experiments
//	curl -N localhost:8080/v1/experiments/j1/rows        # SSE row stream
//	curl localhost:8080/v1/experiments/j1/rows?format=csv
//	curl localhost:8080/v1/experiments                   # list jobs
//	curl -X DELETE localhost:8080/v1/experiments/j1      # cancel
//
// Rows are a pure function of the request document: whatever the pool's
// load, the stream is bit-identical to running the same experiment through
// cmd/experiments or the library (the CI `service` job enforces this with
// cmp).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dynlb/internal/dist"
	"dynlb/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", runtime.NumCPU(), "shared simulation worker pool size (<= 0 = NumCPU)")
		queue   = flag.Int("queue", 16, "max concurrently admitted experiment jobs before 429 backpressure")
		cache   = flag.Int("cache", 128, "result cache capacity in completed experiments (0 disables)")
		grace   = flag.Duration("grace", 5*time.Second, "shutdown grace period for in-flight HTTP requests")
		distW   = flag.String("dist", "", "comma-separated dynlbworker URLs to fan simulations out to (empty = run in-process)")
	)
	flag.Parse()
	if *cache < 0 {
		fmt.Fprintf(os.Stderr, "-cache %d: want a non-negative integer\n", *cache)
		return 2
	}
	if *grace <= 0 {
		fmt.Fprintf(os.Stderr, "-grace %v: want a positive duration like 5s\n", *grace)
		return 2
	}

	sched := service.New(*workers, *queue, *cache)
	if *distW != "" {
		// Distributed backend: claimed slots execute on the worker fleet
		// (least-loaded live worker, failover, local fallback) instead of
		// in-process. Rows are bit-identical either way — jobs are pure
		// functions of their plan inputs — so the cache, SSE streams and
		// fairness discipline are untouched.
		pool := dist.NewPool(dist.Options{
			Workers: strings.Split(*distW, ","),
			Logf:    log.Printf,
		})
		defer pool.Close()
		sched.UseRemote(pool.RunPlanJob)
		log.Printf("dynlbd fanning simulations out to %d workers: %s", pool.NumWorkers(), *distW)
	}
	srv := &http.Server{Addr: *addr, Handler: service.NewServer(sched)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("dynlbd listening on %s (workers=%d queue=%d cache=%d)",
		*addr, sched.Workers(), *queue, *cache)

	select {
	case err := <-errc:
		log.Printf("serve: %v", err)
		sched.Close()
		return 1
	case <-ctx.Done():
	}
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	sched.Close()
	return 0
}
