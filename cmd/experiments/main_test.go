package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagValidation: invalid flags exit 2 without running a sweep.
func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "nope"},
		{"-reps", "0"},
		{"-ci", "1.5"},
		{"-format", "yaml"},
		{"-csv", "a.csv", "-out", "b.csv"},
		{"-csv", "a.csv", "-format", "json"},
		{"-no-such-flag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, &stderr)
		}
	}
}

// failAfter is a writer that starts failing after n bytes, like a pipe
// whose reader died or a filesystem that ran out of space mid-write.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	if f.n == 0 {
		return len(p), f.err
	}
	return len(p), nil
}

// TestRunStdoutWriteFailure: a write error on the table output must
// surface as a nonzero exit code, not a silently truncated report.
func TestRunStdoutWriteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	stdout := &failAfter{n: 16, err: errors.New("broken pipe")}
	var stderr bytes.Buffer
	code := run([]string{"-fig", "1c", "-scale", "quick"}, stdout, &stderr)
	if code != 1 {
		t.Errorf("run with failing stdout = %d, want 1 (stderr: %s)", code, &stderr)
	}
	if !strings.Contains(stderr.String(), "broken pipe") {
		t.Errorf("stderr %q does not report the write error", &stderr)
	}
}

// TestRunOutWriteFailure: an unwritable -out path exits 1 after the sweep.
func TestRunOutWriteFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	var stdout, stderr bytes.Buffer
	// A directory path: os.Create fails, and so must the command.
	code := run([]string{"-fig", "1c", "-scale", "quick", "-out", t.TempDir()}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("run with directory -out = %d, want 1 (stderr: %s)", code, &stderr)
	}
}

// TestRunWritesCSV: the happy path exits 0 and leaves a parseable CSV.
func TestRunWritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	path := filepath.Join(t.TempDir(), "rows.csv")
	code := run([]string{"-fig", "1c", "-scale", "quick", "-out", path}, io.Discard, io.Discard)
	if code != 0 {
		t.Fatalf("run = %d, want 0", code)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 2 {
		t.Errorf("CSV has %d lines, want header plus rows", lines)
	}
}
