// Command experiments regenerates the evaluation figures of Rahm & Marek
// (VLDB '95) with this library's simulator, printing one aligned table per
// figure (and optionally CSV or JSON for plotting). Each figure runs as one
// dynlb.Experiment: independent sweep points run on a worker pool
// (-parallel); results are bit-identical at any parallelism level because
// every point simulates on its own kernel and RNG. With -reps N (N >= 2)
// every point is replicated across N deterministic seeds and each row
// reports across-replicate means with Student-t confidence half-widths at
// the -ci level. Interrupting the command (Ctrl-C) cancels the sweep
// promptly via context cancellation.
//
// With -compare A,B the figure's workload configurations are swept under
// the two named strategies head to head: every replicate runs both
// strategies on the identical seed (common random numbers), and rows carry
// the paired delta and relative improvement of B over A with paired-t
// confidence half-widths — tighter than independent seeds would give.
//
// Examples:
//
//	experiments -fig 5                      # reproduce Fig. 5 at normal scale
//	experiments -fig all -scale quick
//	experiments -fig 9b -scale full -out fig9b.csv
//	experiments -fig 6 -out fig6.json -format json
//	experiments -fig 6 -reps 5 -ci 0.99     # 5 seeds per point, 99% intervals
//	experiments -fig all -parallel 1        # sequential (for timing baselines)
//	experiments -fig 6 -progress            # stream rows as they complete
//	experiments -fig 6 -cpuprofile cpu.out  # profile the simulator hot path
//	experiments -fig 8 -reps 5 -compare psu-opt+RANDOM,OPT-IO-CPU
//
// With -dist the sweep executes on a worker fleet instead of in-process:
// a coordinator shards the plan's slots across the named dynlbworker
// instances, re-dispatches on worker death or timeout, degrades to local
// execution when the fleet is unreachable, and merges completions in the
// library's deterministic order — the rows (and any -out file) are
// byte-identical to a local run. -placement records where every slot ran:
//
//	dynlbworker -addr :9090 & dynlbworker -addr :9091 &
//	experiments -fig 1c -scale quick -dist http://localhost:9090,http://localhost:9091 \
//	    -out fig1c.csv -placement placement.csv
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynlb"
	"dynlb/internal/dist"
	"dynlb/internal/prof"
)

func main() {
	// All failure paths return through run so deferred cleanup — most
	// importantly flushing the CPU profile trailer — still happens.
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errWriter latches the first write failure so a broken pipe or full disk
// on the table output cannot end in exit code 0.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil // drop quietly; the latched error decides the exit code
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

func run(args []string, stdoutW, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "all", "figure to regenerate (1a 1b 1c 5 6 7 8 9a 9b, or all)")
		scale    = fs.String("scale", "normal", "simulation scale: quick, normal, full")
		seed     = fs.Int64("seed", 1, "random seed")
		reps     = fs.Int("reps", 1, "replicates per sweep point (>= 2 adds confidence intervals)")
		ci       = fs.Float64("ci", 0.95, "confidence level of replicate intervals, in (0,1)")
		compare  = fs.String("compare", "", "compare two strategies A,B head to head on the figure's workload sweep (paired replicate seeds)")
		profile  = fs.String("profile", "", "load profile making the workload non-stationary, e.g. square:factor=4,period=2s,duty=0.5 (see dynlb.ParseProfile)")
		faults   = fs.String("faults", "", "fault plan injecting failures, e.g. crash(pe=3,at=20s,down=10s) (see dynlb.ParseFaults)")
		window   = fs.String("window", "", "metrics window width (e.g. 1s): adds per-window transient metrics to every row")
		outF     = fs.String("out", "", "also write rows to this file (see -format)")
		format   = fs.String("format", "csv", "row file format for -out: csv or json")
		csvF     = fs.String("csv", "", "deprecated alias for -out with -format csv")
		progress = fs.Bool("progress", false, "stream every completed row to stderr as the sweep runs")
		parallel = fs.Int("parallel", runtime.NumCPU(), "max concurrent simulation points (1 = sequential, <=0 = NumCPU)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
		distW    = fs.String("dist", "", "comma-separated dynlbworker URLs: run the sweep on a coordinator + worker fleet (rows stay bit-identical)")
		placeF   = fs.String("placement", "", "with -dist, write per-slot placement metadata to this file (.json = JSON, otherwise CSV)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stdout := &errWriter{w: stdoutW}

	sc, err := dynlb.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *reps < 1 {
		fmt.Fprintf(stderr, "-reps %d < 1\n", *reps)
		return 2
	}
	if !(*ci > 0 && *ci < 1) {
		fmt.Fprintf(stderr, "-ci %v outside (0,1)\n", *ci)
		return 2
	}
	var loadProf dynlb.LoadProfile
	if *profile != "" {
		p, err := dynlb.ParseProfile(*profile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		loadProf = p
	}
	var faultPlan dynlb.FaultPlan
	if *faults != "" {
		fp, err := dynlb.ParseFaults(*faults)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		faultPlan = fp
	}
	var winWidth dynlb.Duration
	if *window != "" {
		d, err := time.ParseDuration(*window)
		if err != nil || d <= 0 {
			fmt.Fprintf(stderr, "-window %q: want a positive duration like 1s or 500ms\n", *window)
			return 2
		}
		winWidth = dynlb.Duration(d)
	}
	if *format != "csv" && *format != "json" {
		fmt.Fprintf(stderr, "unknown -format %q (want csv or json)\n", *format)
		return 2
	}
	if *csvF != "" {
		if *outF != "" {
			fmt.Fprintln(stderr, "-csv is a deprecated alias for -out; give only one of them")
			return 2
		}
		if *format != "csv" {
			fmt.Fprintln(stderr, "-csv always writes CSV; use -out with -format json")
			return 2
		}
		*outF = *csvF
	}

	if *cpuProf != "" {
		stop, err := prof.Start(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "cpuprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeap(*memProf); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	// Ctrl-C cancels the sweep: in-flight points are abandoned promptly and
	// the command exits without writing a partial row file.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	opts := []dynlb.Option{
		dynlb.WithScale(sc),
		dynlb.WithSeed(*seed),
		dynlb.WithReps(*reps),
		dynlb.WithConfidence(*ci),
		dynlb.WithWorkers(*parallel),
	}
	if *profile != "" {
		opts = append(opts, dynlb.WithProfile(loadProf))
	}
	if !faultPlan.IsEmpty() {
		opts = append(opts, dynlb.WithFaults(faultPlan))
	}
	if winWidth > 0 {
		opts = append(opts, dynlb.WithMetricsWindow(winWidth))
	}
	if *compare != "" {
		nameA, nameB, err := dynlb.SplitCompare(*compare)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		sa, err := dynlb.StrategyByName(nameA)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		sb, err := dynlb.StrategyByName(nameB)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		opts = append(opts, dynlb.WithCompare(sa, sb))
	}
	var coord *dist.Coordinator
	if *distW != "" {
		coord = dist.New(dist.Options{
			Workers: strings.Split(*distW, ","),
			Logf: func(f string, a ...any) {
				fmt.Fprintf(stderr, f+"\n", a...)
			},
		})
		defer coord.Close()
		opts = append(opts, dynlb.WithDistributed(coord))
	} else if *placeF != "" {
		fmt.Fprintln(stderr, "-placement needs -dist")
		return 2
	}
	if *progress {
		opts = append(opts, dynlb.WithProgress(func(r dynlb.Row) {
			fmt.Fprintf(stderr, "fig %s  %-38s %s=%-8g rt=%9.1fms\n",
				r.Figure, r.Series, r.XLabel, r.X, r.JoinRTMS)
		}))
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = dynlb.Figures()
		if *compare != "" {
			// Figures 1a/1b/1c sweep the degree through their strategies and
			// have no config axis to compare two strategies on.
			figs = dynlb.CompareFigures()
		}
	}

	var all []dynlb.Row
	var placements []figurePlacement
	for _, f := range figs {
		start := time.Now()
		rows, err := dynlb.NewExperiment(dynlb.Figure(f), opts...).Run(ctx)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprint(stdout, dynlb.FormatRows(rows))
		fmt.Fprintf(stdout, "(figure %s: %d rows in %.1fs wall time)\n\n", f, len(rows), time.Since(start).Seconds())
		all = append(all, rows...)
		if coord != nil {
			if rep := coord.Report(); rep != nil {
				placements = append(placements, figurePlacement{Figure: f, Report: rep})
			}
		}
	}

	if *outF != "" {
		write := dynlb.WriteRowsCSV
		if *format == "json" {
			write = dynlb.WriteRowsJSON
		}
		if err := writeRows(*outF, all, write); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d rows to %s (%s)\n", len(all), *outF, *format)
	}
	if *placeF != "" {
		if err := writePlacement(*placeF, placements); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote placement metadata to %s\n", *placeF)
	}
	if stdout.err != nil {
		fmt.Fprintln(stderr, "stdout:", stdout.err)
		return 1
	}
	return 0
}

// figurePlacement pairs one figure's id with its coordinator report for
// the -placement file.
type figurePlacement struct {
	Figure string `json:"figure"`
	*dist.Report
}

// writePlacement serializes the per-figure placement reports: JSON for a
// .json path, otherwise a flat CSV with one row per (figure, slot).
func writePlacement(path string, placements []figurePlacement) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if strings.HasSuffix(path, ".json") {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(placements)
	}
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"figure", "slot", "worker", "attempts", "ms"}); err != nil {
		return err
	}
	for _, p := range placements {
		for _, s := range p.Slots {
			rec := []string{
				p.Figure,
				strconv.Itoa(s.Slot),
				s.Worker,
				strconv.Itoa(s.Attempts),
				fmt.Sprintf("%.1f", s.MS),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeRows(path string, rows []dynlb.Row, write func(io.Writer, []dynlb.Row) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A flush or close failure (ENOSPC, quota, NFS) must not yield a
	// silently truncated file and exit code 0.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return write(f, rows)
}
