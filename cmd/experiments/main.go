// Command experiments regenerates the evaluation figures of Rahm & Marek
// (VLDB '95) with this library's simulator, printing one aligned table per
// figure (and optionally CSV for plotting). Independent sweep points run on
// a worker pool (-parallel); results are bit-identical at any parallelism
// level because every point simulates on its own kernel and RNG. With
// -reps N (N >= 2) every point is replicated across N deterministic seeds
// and each row reports across-replicate means with Student-t confidence
// half-widths at the -ci level.
//
// With -compare A,B the figure's workload configurations are swept under
// the two named strategies head to head: every replicate runs both
// strategies on the identical seed (common random numbers), and rows carry
// the paired delta and relative improvement of B over A with paired-t
// confidence half-widths — tighter than independent seeds would give.
//
// Examples:
//
//	experiments -fig 5                      # reproduce Fig. 5 at normal scale
//	experiments -fig all -scale quick
//	experiments -fig 9b -scale full -csv fig9b.csv
//	experiments -fig 6 -reps 5 -ci 0.99     # 5 seeds per point, 99% intervals
//	experiments -fig all -parallel 1        # sequential (for timing baselines)
//	experiments -fig 6 -cpuprofile cpu.out  # profile the simulator hot path
//	experiments -fig 8 -reps 5 -compare psu-opt+RANDOM,OPT-IO-CPU
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dynlb"
	"dynlb/internal/prof"
)

func main() {
	// All failure paths return through run so deferred cleanup — most
	// importantly flushing the CPU profile trailer — still happens.
	os.Exit(run())
}

func run() (code int) {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate (1a 1b 1c 5 6 7 8 9a 9b, or all)")
		scale    = flag.String("scale", "normal", "simulation scale: quick, normal, full")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "replicates per sweep point (>= 2 adds confidence intervals)")
		ci       = flag.Float64("ci", 0.95, "confidence level of replicate intervals, in (0,1)")
		compare  = flag.String("compare", "", "compare two strategies A,B head to head on the figure's workload sweep (paired replicate seeds)")
		csvF     = flag.String("csv", "", "also write rows to this CSV file")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max concurrent simulation points (1 = sequential, <=0 = NumCPU)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	)
	flag.Parse()

	var sc dynlb.Scale
	switch *scale {
	case "quick":
		sc = dynlb.ScaleQuick
	case "normal":
		sc = dynlb.ScaleNormal
	case "full":
		sc = dynlb.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		return 2
	}
	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "-reps %d < 1\n", *reps)
		return 2
	}
	if !(*ci > 0 && *ci < 1) {
		fmt.Fprintf(os.Stderr, "-ci %v outside (0,1)\n", *ci)
		return 2
	}

	if *cpuProf != "" {
		stop, err := prof.Start(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeap(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	var stratA, stratB string
	if *compare != "" {
		var err error
		stratA, stratB, err = dynlb.SplitCompare(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = dynlb.Figures()
		if *compare != "" {
			// Figures 1a/1b/1c sweep the degree through their strategies and
			// have no config axis to compare two strategies on.
			figs = dynlb.CompareFigures()
		}
	}

	var all []dynlb.Row
	for _, f := range figs {
		start := time.Now()
		var (
			rows []dynlb.Row
			err  error
		)
		if *compare != "" {
			rows, err = dynlb.RunFigureComparedConf(f, sc, *seed, stratA, stratB, *reps, *ci, *parallel)
		} else {
			rows, err = dynlb.RunFigureReplicatedConf(f, sc, *seed, *reps, *ci, *parallel)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(dynlb.FormatRows(rows))
		fmt.Printf("(figure %s: %d rows in %.1fs wall time)\n\n", f, len(rows), time.Since(start).Seconds())
		all = append(all, rows...)
	}

	if *csvF != "" {
		if err := writeCSV(*csvF, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %d rows to %s\n", len(all), *csvF)
	}
	return 0
}

func writeCSV(path string, rows []dynlb.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A flush or close failure (ENOSPC, quota, NFS) must not yield a
	// silently truncated file and exit code 0.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return dynlb.WriteRowsCSV(f, rows)
}
