// Command experiments regenerates the evaluation figures of Rahm & Marek
// (VLDB '95) with this library's simulator, printing one aligned table per
// figure (and optionally CSV for plotting). Independent sweep points run on
// a worker pool (-parallel); results are bit-identical at any parallelism
// level because every point simulates on its own kernel and RNG.
//
// Examples:
//
//	experiments -fig 5                      # reproduce Fig. 5 at normal scale
//	experiments -fig all -scale quick
//	experiments -fig 9b -scale full -csv fig9b.csv
//	experiments -fig all -parallel 1        # sequential (for timing baselines)
//	experiments -fig 6 -cpuprofile cpu.out  # profile the simulator hot path
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"dynlb"
	"dynlb/internal/prof"
)

func main() {
	// All failure paths return through run so deferred cleanup — most
	// importantly flushing the CPU profile trailer — still happens.
	os.Exit(run())
}

func run() (code int) {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate (1a 1b 1c 5 6 7 8 9a 9b, or all)")
		scale    = flag.String("scale", "normal", "simulation scale: quick, normal, full")
		seed     = flag.Int64("seed", 1, "random seed")
		csvF     = flag.String("csv", "", "also write rows to this CSV file")
		parallel = flag.Int("parallel", runtime.NumCPU(), "max concurrent simulation points (1 = sequential, <=0 = NumCPU)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	var sc dynlb.Scale
	switch *scale {
	case "quick":
		sc = dynlb.ScaleQuick
	case "normal":
		sc = dynlb.ScaleNormal
	case "full":
		sc = dynlb.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown -scale %q\n", *scale)
		return 2
	}

	if *cpuProf != "" {
		stop, err := prof.Start(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = dynlb.Figures()
	}

	var all []dynlb.Row
	for _, f := range figs {
		start := time.Now()
		rows, err := dynlb.RunFigureParallel(f, sc, *seed, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(dynlb.FormatRows(rows))
		fmt.Printf("(figure %s: %d rows in %.1fs wall time)\n\n", f, len(rows), time.Since(start).Seconds())
		all = append(all, rows...)
	}

	if *csvF != "" {
		if err := writeCSV(*csvF, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %d rows to %s\n", len(all), *csvF)
	}
	return 0
}

func writeCSV(path string, rows []dynlb.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A flush or close failure (ENOSPC, quota, NFS) must not yield a
	// silently truncated file and exit code 0.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)

	keys := map[string]bool{}
	for _, r := range rows {
		for k := range r.Extra {
			keys[k] = true
		}
	}
	extras := make([]string, 0, len(keys))
	for k := range keys {
		extras = append(extras, k)
	}
	sort.Strings(extras)

	header := append([]string{"figure", "series", "x", "xlabel", "join_rt_ms", "n", "ci95_ms"}, extras...)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Figure, r.Series,
			strconv.FormatFloat(r.X, 'g', -1, 64), r.XLabel,
			strconv.FormatFloat(r.JoinRTMS, 'f', 2, 64),
			strconv.Itoa(r.Res.JoinRT.N),
			strconv.FormatFloat(r.Res.JoinRT.HW95MS, 'f', 2, 64),
		}
		for _, k := range extras {
			v, ok := r.Extra[k]
			if !ok {
				rec = append(rec, "")
				continue
			}
			rec = append(rec, strconv.FormatFloat(v, 'f', 3, 64))
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
