// Command dynlbsim runs one simulation configuration and prints a report:
// the workload, the chosen load-balancing strategy, response times,
// utilizations and temporary-I/O volume. The configuration runs as a
// single-point dynlb.Experiment, so replication and comparison are the same
// option plumbing the sweep harness uses.
//
// With -compare A,B both strategies run on identical replicate seeds
// (common random numbers) and the report shows paired deltas and relative
// improvements with paired-t confidence half-widths.
//
// Examples:
//
//	dynlbsim -strategy OPT-IO-CPU -npe 80 -qps 0.25
//	dynlbsim -strategy psu-noIO+LUM -npe 40 -oltp b-nodes -tps 100 -disks 5
//	dynlbsim -strategy MIN-IO-SUOPT -npe 80 -buffer 5 -disks 1 -qps 0.05
//	dynlbsim -compare psu-opt+RANDOM,OPT-IO-CPU -npe 60 -reps 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dynlb"
	"dynlb/internal/prof"
)

func main() {
	// All failure paths after flag validation return through run so the
	// deferred CPU-profile flush still happens.
	os.Exit(run())
}

func run() (code int) {
	var (
		strategy = flag.String("strategy", "OPT-IO-CPU", "load balancing strategy (see -list)")
		npe      = flag.Int("npe", 40, "number of processing elements")
		qps      = flag.Float64("qps", 0.25, "join arrival rate per PE (0 = single-user closed loop)")
		sel      = flag.Float64("selectivity", 0.01, "scan selectivity of the join query")
		buffer   = flag.Int("buffer", 50, "buffer pages per PE")
		disks    = flag.Int("disks", 10, "disks per PE")
		oltp     = flag.String("oltp", "none", "OLTP placement: none, a-nodes, b-nodes, all")
		tps      = flag.Float64("tps", 100, "OLTP transactions per second per OLTP node")
		seconds  = flag.Float64("seconds", 20, "measurement window in simulated seconds")
		warmup   = flag.Float64("warmup", 3, "warm-up in simulated seconds")
		seed     = flag.Int64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "replicated runs across derived seeds (>= 2 adds confidence intervals)")
		ci       = flag.Float64("ci", 0.95, "confidence level of replicate intervals, in (0,1)")
		compare  = flag.String("compare", "", "compare two strategies A,B on this configuration (paired replicate seeds; overrides -strategy)")
		profile  = flag.String("profile", "", "load profile making the workload non-stationary, e.g. flash:start=5s,duration=5s,factor=4 (see dynlb.ParseProfile)")
		faults   = flag.String("faults", "", "fault plan injecting failures, e.g. crash(pe=3,at=10s,down=5s) (see dynlb.ParseFaults)")
		window   = flag.String("window", "", "metrics window width (e.g. 1s): report adds a per-window transient table")
		list     = flag.Bool("list", false, "list built-in strategies and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("built-in strategies:")
		for _, n := range dynlb.StrategyNames() {
			fmt.Println("  " + n)
		}
		return 0
	}

	cfg := dynlb.DefaultConfig()
	cfg.NPE = *npe
	cfg.JoinQPSPerPE = *qps
	cfg.ScanSelectivity = *sel
	cfg.BufferPages = *buffer
	cfg.DisksPerPE = *disks
	cfg.OLTP.TPSPerNode = *tps
	cfg.MeasureTime = dynlb.Seconds(*seconds)
	cfg.Warmup = dynlb.Seconds(*warmup)
	cfg.Seed = *seed
	switch strings.ToLower(*oltp) {
	case "none":
		cfg.OLTP.Placement = dynlb.OLTPNone
	case "a-nodes", "a":
		cfg.OLTP.Placement = dynlb.OLTPOnANode
	case "b-nodes", "b":
		cfg.OLTP.Placement = dynlb.OLTPOnBNode
	case "all":
		cfg.OLTP.Placement = dynlb.OLTPOnAll
	default:
		fmt.Fprintf(os.Stderr, "unknown -oltp %q\n", *oltp)
		return 2
	}

	if *profile != "" {
		p, err := dynlb.ParseProfile(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg.Profile = p
	}
	if *faults != "" {
		fp, err := dynlb.ParseFaults(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cfg.Faults = fp
	}
	if *window != "" {
		d, err := time.ParseDuration(*window)
		if err != nil || d <= 0 {
			fmt.Fprintf(os.Stderr, "-window %q: want a positive duration like 1s or 500ms\n", *window)
			return 2
		}
		cfg.MetricsWindow = dynlb.Duration(d)
	}

	if *reps < 1 {
		fmt.Fprintf(os.Stderr, "-reps %d < 1\n", *reps)
		return 2
	}
	if !(*ci > 0 && *ci < 1) {
		fmt.Fprintf(os.Stderr, "-ci %v outside (0,1)\n", *ci)
		return 2
	}

	if *cpuProf != "" {
		stop, err := prof.Start(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeap(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *compare != "" {
		return runCompare(ctx, cfg, *compare, *reps, *ci)
	}

	st, err := dynlb.StrategyByName(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("dynlb: %d PEs, strategy %s, join %.3f QPS/PE, selectivity %.2f%%, OLTP %s\n",
		cfg.NPE, st.Name(), cfg.JoinQPSPerPE, 100*cfg.ScanSelectivity, cfg.OLTP.Placement)
	fmt.Printf("planning: psu-opt=%d psu-noIO=%d\n", dynlb.PsuOpt(cfg), dynlb.PsuNoIO(cfg))
	if !cfg.Profile.IsConstant() {
		fmt.Printf("profile:  %s\n", cfg.Profile.String())
	}
	if !cfg.Faults.IsEmpty() {
		fmt.Printf("faults:   %s\n", cfg.Faults.String())
	}

	// One configuration = a single-point sweep; -reps plugs in replication.
	rows, err := dynlb.NewExperiment(
		dynlb.Sweep{Name: "dynlbsim", Base: cfg, Strategies: []dynlb.Strategy{st}},
		dynlb.WithReps(*reps), dynlb.WithConfidence(*ci),
	).Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, rep := rows[0].Res, rows[0].Rep

	fmt.Println()
	if rep != nil {
		fmt.Printf("replication:    %d runs (seeds derived from %d), means ± %g%% CI half-widths\n",
			rep.Reps, *seed, 100*rep.Conf)
	}
	fmt.Printf("join queries:   %d completed (%.2f/s)\n", res.JoinsDone, res.JoinTPS)
	fmt.Printf("  response:     mean %.1f ms   p95 %.1f ms   ±%.1f ms (95%% CI)\n",
		res.JoinRT.MeanMS, res.JoinRT.P95MS, res.JoinRT.HW95MS)
	fmt.Printf("  avg degree:   %.1f join processors\n", res.AvgJoinDegree)
	fmt.Printf("  mem wait:     %.1f ms average\n", res.MeanMemWaitMS)
	if res.OLTPDone > 0 {
		fmt.Printf("OLTP:           %d completed (%.1f/s), mean %.1f ms, p95 %.1f ms\n",
			res.OLTPDone, res.OLTPTPS, res.OLTPRT.MeanMS, res.OLTPRT.P95MS)
	}
	fmt.Printf("utilization:    cpu %.0f%% (max %.0f%%)   disk %.0f%%   memory %.0f%%\n",
		100*res.CPUUtil, 100*res.MaxCPU, 100*res.DiskUtil, 100*res.MemUtil)
	fmt.Printf("temporary I/O:  %d pages\n", res.TempIOPages)
	fmt.Printf("memory queue:   %d waits, %d steals (%d pages)\n",
		res.MemWaits, res.MemSteals, res.StolenPages)
	if res.Deadlocks > 0 {
		fmt.Printf("deadlocks:      %d transactions aborted\n", res.Deadlocks)
	}
	if res.FaultSpec != "" {
		fmt.Printf("faults:         %d aborts, %d retries, availability %.4f\n",
			res.Aborts, res.Retries, res.Availability)
	}
	if len(res.Windows) > 0 {
		printWindows(res)
	}
	if rep != nil {
		fmt.Printf("spread:         rt ±%.1f ms   tput ±%.2f/s   cpu ±%.1f%%   disk ±%.1f%%   mem ±%.1f%%\n",
			rep.JoinRTMS.HW, rep.JoinTPS.HW, 100*rep.CPUUtil.HW, 100*rep.DiskUtil.HW, 100*rep.MemUtil.HW)
		if rep.OLTPRTMS.Mean > 0 {
			fmt.Printf("                oltp rt ±%.1f ms\n", rep.OLTPRTMS.HW)
		}
	}
	return 0
}

// printWindows renders the windowed transient table: one line per metrics
// window plus the derived peak and recovery summary. With -reps >= 2 the
// window metrics are across-replicate means on the shared window grid.
func printWindows(res dynlb.Results) {
	faulted := res.FaultSpec != ""
	fmt.Printf("\nwindows:        %d x %.0f ms\n", len(res.Windows), res.WindowMS)
	fmt.Printf("  %8s %8s %6s %9s %9s %7s %6s %6s %6s",
		"start_ms", "end_ms", "joins", "rt_ms", "p95_ms", "tps", "cpu%", "disk%", "mem%")
	if faulted {
		fmt.Printf(" %6s %6s", "aborts", "avail")
	}
	fmt.Println()
	for _, w := range res.Windows {
		fmt.Printf("  %8.0f %8.0f %6d %9.1f %9.1f %7.2f %6.1f %6.1f %6.1f",
			w.StartMS, w.EndMS, w.Joins, w.RTMeanMS, w.RTP95MS, w.JoinTPS,
			100*w.CPUUtil, 100*w.DiskUtil, 100*w.MemUtil)
		if faulted {
			fmt.Printf(" %6d %6.3f", w.Aborts, w.Availability)
		}
		fmt.Println()
	}
	fmt.Printf("transient:      peak window rt %.1f ms", res.PeakWindowRTMS)
	if res.RecoveryMS < 0 {
		fmt.Printf(", no recovery to within 10%% of the pre-peak mean\n")
	} else {
		fmt.Printf(", recovered in %.0f ms\n", res.RecoveryMS)
	}
}

// runCompare runs the paired head-to-head mode: both strategies simulate
// every replicate seed (common random numbers), and the report shows the
// per-metric deltas and relative improvements with paired-t half-widths
// next to the wider intervals independent seeds would have produced.
func runCompare(ctx context.Context, cfg dynlb.Config, spec string, reps int, ci float64) int {
	nameA, nameB, err := dynlb.SplitCompare(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sa, err := dynlb.StrategyByName(nameA)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	sb, err := dynlb.StrategyByName(nameB)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	fmt.Printf("dynlb: %d PEs, compare %s (A) vs %s (B), join %.3f QPS/PE, selectivity %.2f%%, OLTP %s\n",
		cfg.NPE, sa.Name(), sb.Name(), cfg.JoinQPSPerPE, 100*cfg.ScanSelectivity, cfg.OLTP.Placement)
	fmt.Printf("planning: psu-opt=%d psu-noIO=%d\n", dynlb.PsuOpt(cfg), dynlb.PsuNoIO(cfg))

	rows, err := dynlb.NewExperiment(
		dynlb.Sweep{Name: "dynlbsim", Base: cfg},
		dynlb.WithCompare(sa, sb), dynlb.WithReps(reps), dynlb.WithConfidence(ci),
	).Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	p := *rows[0].Cmp
	fmt.Println()
	fmt.Printf("paired runs:    %d replicates on shared seeds (common random numbers), %g%% CIs\n",
		p.Reps, 100*p.Conf)
	// The relative column shows the signed change of B against A
	// (100·(B−A)/A = −Improv), so +10% always means "B is 10% higher" —
	// lower is better for response times, higher is better for throughput;
	// the sign never lies about the direction of the change.
	fmt.Printf("%-14s %12s %12s %16s %18s\n", "metric", "A", "B", "delta (B-A)", "rel change of B")
	line := func(name string, d dynlb.DeltaCI, format string, scale float64) {
		change := -d.Improv.Mean
		if change == 0 {
			change = 0 // avoid "-0.0" when the improvement is exactly zero
		}
		fmt.Printf("%-14s %12s %12s %11s ±%-6s %+8.1f%% ±%-5.1f\n", name,
			fmt.Sprintf(format, scale*d.A), fmt.Sprintf(format, scale*d.B),
			fmt.Sprintf("%+.2f", scale*d.Delta.Mean), fmt.Sprintf("%.2f", scale*d.Delta.HW),
			change, d.Improv.HW)
	}
	line("join rt ms", p.JoinRTMS, "%.1f", 1)
	line("join tput/s", p.JoinTPS, "%.2f", 1)
	if p.OLTPRTMS.A > 0 || p.OLTPRTMS.B > 0 {
		line("oltp rt ms", p.OLTPRTMS, "%.1f", 1)
	}
	line("cpu %", p.CPUUtil, "%.1f", 100)
	line("disk %", p.DiskUtil, "%.1f", 100)
	line("mem %", p.MemUtil, "%.1f", 100)
	line("degree", p.Degree, "%.1f", 1)
	line("temp IO pages", p.TempIO, "%.0f", 1)
	if p.Reps >= 2 {
		fmt.Printf("\npairing:        rt correlation %.3f — paired rt improv ±%.1f%% vs ±%.1f%% with independent seeds\n",
			p.JoinRTMS.Corr, p.JoinRTMS.Improv.HW, p.JoinRTMS.UnpairedImprovHW)
	}
	return 0
}
