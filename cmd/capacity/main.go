// Command capacity measures the simulator's memory cost per standing
// client and reports how many clients fit in a GB — the capacity figure
// behind the million-client process model (BENCH_kernel.json, PR 6).
//
// A "client" is a closed-loop terminal: a process that sits in think time,
// wakes, and goes back to sleep. The tool stands up -clients of them, lets
// every one reach its blocked state, then samples the live footprint (heap
// plus goroutine stacks, after GC and scavenging — see prof.LiveBytes) and
// divides the delta by the client count. Two process models are measured:
//
//	proc  — each client is a spawned Proc blocked in Wait: one pooled
//	        worker goroutine, one resume channel, one calendar event.
//	light — each client is a run-to-completion event chain (the SpawnFn
//	        style): one closure and one calendar event, no goroutine.
//
// Example:
//
//	capacity -clients 200000 -out clients_per_gb.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"dynlb/internal/prof"
	"dynlb/internal/sim"
)

type modelFootprint struct {
	BytesPerClient float64 `json:"bytes_per_client"`
	ClientsPerGB   int64   `json:"clients_per_gb"`
}

type report struct {
	What    string         `json:"what"`
	Clients int            `json:"clients"`
	Go      string         `json:"go"`
	Proc    modelFootprint `json:"proc_clients"`
	Light   modelFootprint `json:"light_clients"`
}

func footprint(n int, build func(k *sim.Kernel)) modelFootprint {
	base := prof.LiveBytes()
	k := sim.NewKernel()
	build(k)
	// Run past every client's staggered start so each one is parked in its
	// think-time wait; the footprint sampled here is the standing cost.
	k.Run(2 * sim.Millisecond)
	per := float64(prof.LiveBytes()-base) / float64(n)
	k.Shutdown()
	return modelFootprint{
		BytesPerClient: per,
		ClientsPerGB:   int64(float64(1<<30) / per),
	}
}

func main() {
	clients := flag.Int("clients", 200000, "number of standing clients to measure")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	n := *clients
	const think = sim.Second

	procs := footprint(n, func(k *sim.Kernel) {
		client := func(p *sim.Proc) {
			for {
				p.Wait(think)
			}
		}
		for i := 0; i < n; i++ {
			// Stagger starts across 1 ms so wake-ups spread over the wheel
			// instead of piling into one calendar bucket.
			k.SpawnAt(sim.Duration(i%1000)*sim.Microsecond, "client", client)
		}
	})

	light := footprint(n, func(k *sim.Kernel) {
		for i := 0; i < n; i++ {
			var tick func()
			tick = func() { k.After(think, tick) }
			k.At(sim.Time(i%1000)*sim.Microsecond, tick)
		}
	})

	r := report{
		What: "standing closed-loop clients per GB of live footprint " +
			"(heap + goroutine stacks after GC/scavenge), sampled with every client blocked in think time",
		Clients: n,
		Go:      runtime.Version(),
		Proc:    procs,
		Light:   light,
	}
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "capacity:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "capacity:", err)
		os.Exit(1)
	}
}
