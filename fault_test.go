package dynlb

import (
	"context"
	"reflect"
	"testing"
)

// crashPlan is the canonical test fault: PE 3 crashes 2 s into the
// measurement and recovers 3 s later.
func crashPlan(t *testing.T) FaultPlan {
	t.Helper()
	fp, err := ParseFaults("crash(pe=3,at=2s,down=3s)")
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// faultSweep crosses a FaultAxis (fault-free vs crash) with a static and a
// dynamic strategy — the failover comparison as a plain sweep.
func faultSweep(t *testing.T) Sweep {
	cfg := tinySweepCfg()
	cfg.JoinQPSPerPE = 0.3
	cfg.MeasureTime = Seconds(6)
	return Sweep{
		Name: "faultsweep",
		Base: cfg,
		Strategies: []Strategy{
			MustStrategy("psu-opt+RANDOM"),
			MustStrategy("OPT-IO-CPU"),
		},
		Axes: []Axis{FaultAxis("fault", FaultPlan{}, crashPlan(t))},
	}
}

// TestWithFaultsOverridesPoints: WithFaults stamps the plan onto every
// point (FaultSpec lands in the results), and an explicitly empty plan
// reproduces the fault-free rows bit for bit.
func TestWithFaultsOverridesPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ctx := context.Background()
	cfg := tinySweepCfg()
	cfg.JoinQPSPerPE = 0.3
	sweep := Sweep{Name: "one", Base: cfg, Strategies: []Strategy{MustStrategy("psu-opt+RANDOM")}}

	plain, err := NewExperiment(sweep).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Res.FaultSpec != "" {
		t.Fatalf("fault-free row carries FaultSpec %q", plain[0].Res.FaultSpec)
	}
	empty, err := NewExperiment(sweep, WithFaults(FaultPlan{})).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Error("WithFaults(empty plan) changed rows")
	}

	fp := crashPlan(t)
	faulted, err := NewExperiment(sweep, WithFaults(fp)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := faulted[0].Res.FaultSpec; got != fp.String() {
		t.Errorf("FaultSpec %q, want %q", got, fp.String())
	}
	if faulted[0].Res.Aborts == 0 {
		t.Error("crash under static selection produced no aborts")
	}
}

// TestFaultedSweepDeterminismAcrossWorkers is the fault-replay acceptance
// check: a windowed sweep mixing fault-free and crash points must produce
// bit-identical rows at any worker count.
func TestFaultedSweepDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(workers int) []Row {
		rows, err := NewExperiment(faultSweep(t),
			WithMetricsWindow(Seconds(1)),
			WithWorkers(workers),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	seq := run(1)
	if len(seq) != 4 {
		t.Fatalf("row count %d, want 4 (2 plans x 2 strategies)", len(seq))
	}
	for _, workers := range []int{4, 0 /* NumCPU */} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Fatalf("faulted rows differ between workers=1 and workers=%d", workers)
		}
	}
}

// TestGoldenFailoverQuick locks the failover sweep's CSV bytes: the fault
// column group (spec, aborts, retries, availability), the per-window abort
// and availability series, and the empty-cell padding of the fault-free
// axis value, on top of the windowed transient columns. Like the other
// goldens it doubles as a cross-worker replay check, since the sweep runs
// on NumCPU workers.
func TestGoldenFailoverQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	skipUnlessGoldenArch(t)
	rows, err := NewExperiment(faultSweep(t), WithMetricsWindow(Seconds(1))).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lockGolden(t, "failover_quick.csv", rows)
}
