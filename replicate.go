package dynlb

import (
	"context"
	"fmt"
	"math"

	"dynlb/internal/stats"
)

// DefaultConfidence is the confidence level of replicated-run intervals
// when no explicit level is given.
const DefaultConfidence = 0.95

// MeanCI is one replicate-aggregated metric: the across-replicate mean and
// the half-width of its two-sided Student-t confidence interval at the
// aggregation's confidence level (0 when fewer than two replicates).
type MeanCI struct {
	Mean float64 `json:"mean"`
	HW   float64 `json:"hw"`
}

// String renders the metric as "mean ±hw".
func (m MeanCI) String() string { return fmt.Sprintf("%.2f ±%.2f", m.Mean, m.HW) }

// Replication summarizes the spread of every reported metric across the
// replicated runs of one sweep point or configuration.
type Replication struct {
	Reps int     `json:"reps"` // replicates aggregated
	Conf float64 `json:"conf"` // confidence level of the half-widths (e.g. 0.95)

	JoinRTMS MeanCI `json:"join_rt_ms"` // join response time, ms
	JoinTPS  MeanCI `json:"join_tps"`   // join throughput, queries/s
	OLTPRTMS MeanCI `json:"oltp_rt_ms"` // OLTP response time, ms (zero without OLTP workload)
	CPUUtil  MeanCI `json:"cpu_util"`   // mean CPU utilization, 0..1
	DiskUtil MeanCI `json:"disk_util"`  // mean disk utilization, 0..1
	MemUtil  MeanCI `json:"mem_util"`   // mean memory utilization, 0..1
	Degree   MeanCI `json:"degree"`     // achieved degree of join parallelism
	TempIO   MeanCI `json:"temp_io"`    // temporary-file I/O pages in the window
}

// Replicated bundles the outcome of replicated runs of one configuration.
type Replicated struct {
	Runs []Results   // per-seed results, in seed order
	Mean Results     // field-wise across-replicate means (counts rounded)
	Rep  Replication // mean ± CI half-width of the headline metrics
}

// RunReplicated simulates cfg under the strategy once per seed (replicates
// run concurrently, one kernel each) and aggregates the runs at the default
// 95% confidence level. Derive seeds with ReplicateSeeds for the standard
// deterministic stream, or pass any explicit seed list.
//
// Deprecated: use the Experiment API over a single-point Sweep (WithRuns
// recovers the per-replicate Results in Row.Runs):
//
//	NewExperiment(Sweep{Base: cfg, Strategies: []Strategy{s}}, WithSeeds(seeds...), WithRuns()).Run(ctx)
func RunReplicated(cfg Config, s Strategy, seeds []int64) (Replicated, error) {
	return RunReplicatedConf(cfg, s, seeds, DefaultConfidence)
}

// RunReplicatedConf is RunReplicated at an explicit confidence level in
// (0, 1).
//
// Deprecated: use the Experiment API with WithConfidence(conf).
func RunReplicatedConf(cfg Config, s Strategy, seeds []int64, conf float64) (Replicated, error) {
	if len(seeds) == 0 {
		return Replicated{}, fmt.Errorf("dynlb: RunReplicated needs at least one seed")
	}
	rows, err := NewExperiment(Sweep{Base: cfg, Strategies: []Strategy{s}},
		WithSeeds(seeds...), WithConfidence(conf), WithRuns()).Run(context.Background())
	if err != nil {
		return Replicated{}, err
	}
	return Replicated{Runs: rows[0].Runs, Mean: rows[0].Res, Rep: *rows[0].Rep}, nil
}

// ReplicateSeeds returns the standard replicate seed stream for a base
// seed: replicate 0 is the base itself (so replicated runs extend the
// unreplicated one), replicates k >= 1 are drawn from a splitmix64 stream
// seeded at base. The derivation is a pure function of (base, k), so
// replicate sets are identical regardless of worker count or scheduling.
func ReplicateSeeds(base int64, reps int) []int64 { return stats.ReplicateSeeds(base, reps) }

// AggregateResults condenses replicated runs of one configuration into a
// field-wise mean Results (integer counts rounded to nearest) and the
// Replication carrying confidence half-widths at level conf. Runs are
// consumed in slice order, so the aggregate is deterministic for a fixed
// replicate set. An empty slice yields zero values.
func AggregateResults(runs []Results, conf float64) (Results, Replication) {
	if len(runs) == 0 {
		return Results{}, Replication{Conf: conf}
	}
	mean := runs[0] // identification fields (Strategy, NPE, PsuOpt, PsuNoIO) are per-config constants

	meanF := func(get func(*Results) float64) float64 {
		var w stats.Welford
		for i := range runs {
			w.Add(get(&runs[i]))
		}
		return w.Mean()
	}
	meanI := func(get func(*Results) float64) int64 {
		return int64(math.Round(meanF(get)))
	}
	// The headline metrics feed both the mean Results and the Replication
	// half-widths from a single accumulation, so the two can't drift apart.
	agg := func(dst *float64, get func(*Results) float64) MeanCI {
		var w stats.Welford
		for i := range runs {
			w.Add(get(&runs[i]))
		}
		*dst = w.Mean()
		return MeanCI{Mean: w.Mean(), HW: w.HalfWidth(conf)}
	}
	meanSummary := func(get func(*Results) *Summary) Summary {
		return Summary{
			N:      int(meanI(func(r *Results) float64 { return float64(get(r).N) })),
			MeanMS: meanF(func(r *Results) float64 { return get(r).MeanMS }),
			P95MS:  meanF(func(r *Results) float64 { return get(r).P95MS }),
			HW95MS: meanF(func(r *Results) float64 { return get(r).HW95MS }),
		}
	}

	mean.JoinRT = meanSummary(func(r *Results) *Summary { return &r.JoinRT })
	mean.OLTPRT = meanSummary(func(r *Results) *Summary { return &r.OLTPRT })
	mean.ScanRT = meanSummary(func(r *Results) *Summary { return &r.ScanRT })
	mean.MeanMemWaitMS = meanF(func(r *Results) float64 { return r.MeanMemWaitMS })
	mean.MaxCPU = meanF(func(r *Results) float64 { return r.MaxCPU })
	mean.OLTPTPS = meanF(func(r *Results) float64 { return r.OLTPTPS })
	mean.MemWaits = meanI(func(r *Results) float64 { return float64(r.MemWaits) })
	mean.MemSteals = meanI(func(r *Results) float64 { return float64(r.MemSteals) })
	mean.StolenPages = meanI(func(r *Results) float64 { return float64(r.StolenPages) })
	mean.JoinsDone = meanI(func(r *Results) float64 { return float64(r.JoinsDone) })
	mean.OLTPDone = meanI(func(r *Results) float64 { return float64(r.OLTPDone) })
	mean.OLTPAborts = meanI(func(r *Results) float64 { return float64(r.OLTPAborts) })
	mean.Deadlocks = meanI(func(r *Results) float64 { return float64(r.Deadlocks) })
	// Fault-injection metrics (zero in fault-free runs, so averaging is
	// unconditionally safe); the spec string is a per-config constant already
	// carried over from runs[0].
	mean.Aborts = meanI(func(r *Results) float64 { return float64(r.Aborts) })
	mean.Retries = meanI(func(r *Results) float64 { return float64(r.Retries) })
	mean.Availability = meanF(func(r *Results) float64 { return r.Availability })

	// Windowed metrics aggregate element-wise: replicates of one
	// configuration share the window layout (same width, same horizon), so
	// window k's metrics average across runs. The peak-window response time
	// is the mean of the per-run peaks (each run peaks at its own window —
	// averaging first would flatten the transient this metric exists to
	// expose), and the recovery time averages over the runs that recovered,
	// keeping −1 (never recovered) only when no run did. mean.Windows is
	// rebuilt rather than aliased, so the aggregate never writes into
	// runs[0]'s series.
	if w0 := runs[0].Windows; len(w0) > 0 && sameWindowLayout(runs) {
		wins := make([]Window, len(w0))
		for k := range wins {
			wk := Window{StartMS: w0[k].StartMS, EndMS: w0[k].EndMS}
			var joins, rtm, rtp, tps, cpu, dsk, mem, abr, avail float64
			for i := range runs {
				w := runs[i].Windows[k]
				joins += float64(w.Joins)
				rtm += w.RTMeanMS
				rtp += w.RTP95MS
				tps += w.JoinTPS
				cpu += w.CPUUtil
				dsk += w.DiskUtil
				mem += w.MemUtil
				abr += float64(w.Aborts)
				avail += w.Availability
			}
			n := float64(len(runs))
			wk.Joins = int(math.Round(joins / n))
			wk.RTMeanMS, wk.RTP95MS, wk.JoinTPS = rtm/n, rtp/n, tps/n
			wk.CPUUtil, wk.DiskUtil, wk.MemUtil = cpu/n, dsk/n, mem/n
			// Fault series (all-zero in fault-free runs, so the window stays
			// zero-valued and serialization is unchanged).
			wk.Aborts = int(math.Round(abr / n))
			wk.Availability = avail / n
			wins[k] = wk
		}
		mean.Windows = wins
		mean.PeakWindowRTMS = meanF(func(r *Results) float64 { return r.PeakWindowRTMS })
		var recSum float64
		recovered := 0
		for i := range runs {
			if rec := runs[i].RecoveryMS; rec >= 0 {
				recSum += rec
				recovered++
			}
		}
		if recovered > 0 {
			mean.RecoveryMS = recSum / float64(recovered)
		} else {
			mean.RecoveryMS = -1
		}
	} else {
		// No windows, or (defensively) heterogeneous layouts that cannot
		// aggregate element-wise: drop the series rather than alias runs[0].
		mean.Windows = nil
		mean.PeakWindowRTMS, mean.RecoveryMS = 0, 0
		if len(w0) == 0 {
			mean.WindowMS = 0
		}
	}

	rep := Replication{Reps: len(runs), Conf: conf}
	rep.JoinRTMS = agg(&mean.JoinRT.MeanMS, func(r *Results) float64 { return r.JoinRT.MeanMS })
	rep.JoinTPS = agg(&mean.JoinTPS, func(r *Results) float64 { return r.JoinTPS })
	rep.OLTPRTMS = agg(&mean.OLTPRT.MeanMS, func(r *Results) float64 { return r.OLTPRT.MeanMS })
	rep.CPUUtil = agg(&mean.CPUUtil, func(r *Results) float64 { return r.CPUUtil })
	rep.DiskUtil = agg(&mean.DiskUtil, func(r *Results) float64 { return r.DiskUtil })
	rep.MemUtil = agg(&mean.MemUtil, func(r *Results) float64 { return r.MemUtil })
	rep.Degree = agg(&mean.AvgJoinDegree, func(r *Results) float64 { return r.AvgJoinDegree })
	var tempIO float64
	rep.TempIO = agg(&tempIO, func(r *Results) float64 { return float64(r.TempIOPages) })
	mean.TempIOPages = int64(math.Round(tempIO))
	return mean, rep
}

// sameWindowLayout reports whether every run carries the same window grid —
// equal width and count. Replicates of one configuration always do (the
// grid is a pure function of the config's windows); hand-assembled slices
// may not, and element-wise averaging across different grids would be
// meaningless.
func sameWindowLayout(runs []Results) bool {
	for i := 1; i < len(runs); i++ {
		if len(runs[i].Windows) != len(runs[0].Windows) || runs[i].WindowMS != runs[0].WindowMS {
			return false
		}
	}
	return true
}

func checkConfidence(conf float64) error {
	if !(conf > 0 && conf < 1) {
		return fmt.Errorf("dynlb: confidence level %v outside (0, 1)", conf)
	}
	return nil
}
