package dynlb

import (
	"fmt"
	"strconv"
)

// Figure is the point source reproducing one of the paper's evaluation
// figures (see Figures for the identifiers and FigureDoc for one-line
// descriptions). The figure's points, strategies and row shaping are the
// paper's; WithScale/WithSeed select windows and seeding, and WithCompare
// sweeps the figure's workload axis under two strategies head to head (the
// strategy-sweep figures listed by CompareFigures).
func Figure(fig string) Source { return figureSource{fig: fig} }

type figureSource struct{ fig string }

func (f figureSource) label() string   { return f.fig }
func (f figureSource) baseSeed() int64 { return 1 }

func (f figureSource) plan(scale Scale, _ bool, seed int64) (*pointPlan, error) {
	return planFigure(f.fig, scale, seed)
}

func (f figureSource) comparePlan(scale Scale, _ bool, seed int64) ([]comparePoint, error) {
	return planCompareFigure(f.fig, scale, seed)
}

// Axis is one dimension of a Sweep: a named list of labeled values applied
// to the base configuration. The first axis of a sweep is the x axis — its
// values supply Row.X and its name Row.XLabel; the values of every further
// axis contribute their labels to Row.Series. Build axes directly or with
// the NumAxis/IntAxis helpers.
type Axis struct {
	Name   string
	Values []AxisValue
}

// AxisValue is one value of an axis: the mutation it applies to a point's
// configuration, the numeric coordinate it contributes when its axis is the
// x axis, and the label it contributes to the series name otherwise.
type AxisValue struct {
	Label string        // series fragment (non-x axes); defaults from X in the helpers
	X     float64       // x coordinate (first axis)
	Set   func(*Config) // applies the value; nil means label-only
}

// NumAxis builds an axis over float64 values: each value v becomes an
// AxisValue{X: v, Label: "name=v"} applying set(cfg, v).
func NumAxis(name string, set func(*Config, float64), values ...float64) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		ax.Values = append(ax.Values, AxisValue{
			Label: name + "=" + strconv.FormatFloat(v, 'g', -1, 64),
			X:     v,
			Set:   func(c *Config) { set(c, v) },
		})
	}
	return ax
}

// ProfileAxis builds an axis over load profiles, making non-stationary
// workload shapes a sweep dimension like any other: value i applies
// profiles[i] to the point's Config.Profile, contributes X = i as the
// coordinate when the axis is first, and the profile's spec string
// ("square:factor=4,period=2s,duty=0.5") as its series label otherwise.
func ProfileAxis(name string, profiles ...LoadProfile) Axis {
	ax := Axis{Name: name}
	for i, p := range profiles {
		p := p
		ax.Values = append(ax.Values, AxisValue{
			Label: name + "=" + p.String(),
			X:     float64(i),
			Set:   func(c *Config) { c.Profile = p },
		})
	}
	return ax
}

// FaultAxis builds an axis over fault plans, making failure scenarios a
// sweep dimension like any other: value i applies plans[i] to the point's
// Config.Faults, contributes X = i as the coordinate when the axis is
// first, and the plan's spec string ("crash(pe=3,at=20s,down=10s)", or
// "none" for the empty plan) as its series label otherwise.
func FaultAxis(name string, plans ...FaultPlan) Axis {
	ax := Axis{Name: name}
	for i, fp := range plans {
		fp := fp
		label := fp.String()
		if label == "" {
			label = "none"
		}
		ax.Values = append(ax.Values, AxisValue{
			Label: name + "=" + label,
			X:     float64(i),
			Set:   func(c *Config) { c.Faults = fp },
		})
	}
	return ax
}

// IntAxis is NumAxis over integer values.
func IntAxis(name string, set func(*Config, int), values ...int) Axis {
	ax := Axis{Name: name}
	for _, v := range values {
		ax.Values = append(ax.Values, AxisValue{
			Label: name + "=" + strconv.Itoa(v),
			X:     float64(v),
			Set:   func(c *Config) { set(c, v) },
		})
	}
	return ax
}

// Sweep is a user-defined point source: the cross product of its axes
// applied to a base configuration, each point simulated under every listed
// strategy. Any Config dimension can be an axis — system size, arrival
// rate, selectivity, buffer memory, OLTP placement — so custom scenario
// sweeps need no fork of the figure planners:
//
//	sweep := dynlb.Sweep{
//		Base:       cfg,
//		Strategies: []dynlb.Strategy{dynlb.MustStrategy("OPT-IO-CPU")},
//		Axes: []dynlb.Axis{
//			dynlb.IntAxis("disks/PE", func(c *dynlb.Config, d int) { c.DisksPerPE = d }, 1, 2, 5, 10),
//		},
//	}
//	rows, err := dynlb.NewExperiment(sweep, dynlb.WithReps(5)).Run(ctx)
//
// Points enumerate with the first (x) axis outermost, further axes inside
// it, strategies innermost. A sweep with no axes is a single point per
// strategy (X 0) — the degenerate form the single-configuration wrappers
// use. Under WithCompare the strategy dimension is replaced by the compared
// pair, so Strategies must be empty.
type Sweep struct {
	Name       string     // Row.Figure label; default "sweep"
	Base       Config     // windows/seed defaults; overridden by WithScale/WithSeed
	Strategies []Strategy // strategies each point runs under (required unless comparing)
	Axes       []Axis     // Axes[0] is the x axis
}

func (s Sweep) label() string {
	if s.Name == "" {
		return "sweep"
	}
	return s.Name
}

func (s Sweep) baseSeed() int64 { return s.Base.Seed }

// sweepPoint is one resolved point of the cross product.
type sweepPoint struct {
	series string // non-x axis labels, " / "-joined ("" with one axis)
	x      float64
	cfg    Config
}

// points enumerates the axis cross product in deterministic order: first
// axis outermost, later axes nested inside.
func (s Sweep) points(scale Scale, scaleSet bool, seed int64) ([]sweepPoint, string, error) {
	base := s.Base
	if scaleSet {
		base.Warmup, base.MeasureTime = scale.windows()
	}
	base.Seed = seed
	for i, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return nil, "", fmt.Errorf("dynlb: sweep axis %d (%q) has no values", i, ax.Name)
		}
	}
	xlabel := ""
	if len(s.Axes) > 0 {
		xlabel = s.Axes[0].Name
	}
	pts := []sweepPoint{{cfg: base}}
	for ai, ax := range s.Axes {
		expanded := make([]sweepPoint, 0, len(pts)*len(ax.Values))
		for _, pt := range pts {
			for _, v := range ax.Values {
				p := pt
				if v.Set != nil {
					v.Set(&p.cfg)
				}
				if ai == 0 {
					p.x = v.X
				} else if v.Label != "" {
					if p.series != "" {
						p.series += " / "
					}
					p.series += v.Label
				}
				expanded = append(expanded, p)
			}
		}
		pts = expanded
	}
	return pts, xlabel, nil
}

func (s Sweep) plan(scale Scale, scaleSet bool, seed int64) (*pointPlan, error) {
	if len(s.Strategies) == 0 {
		return nil, fmt.Errorf("dynlb: Sweep %q needs at least one strategy (or WithCompare)", s.label())
	}
	for i, st := range s.Strategies {
		if st == nil {
			return nil, fmt.Errorf("dynlb: Sweep %q strategy %d is nil", s.label(), i)
		}
	}
	pts, xlabel, err := s.points(scale, scaleSet, seed)
	if err != nil {
		return nil, err
	}
	label := s.label()
	p := &pointPlan{}
	for _, pt := range pts {
		for _, st := range s.Strategies {
			series := st.Name()
			if pt.series != "" {
				series = pt.series + " / " + series
			}
			idx := len(p.jobs)
			p.jobs = append(p.jobs, runJob{cfg: pt.cfg, st: st})
			x, srs := pt.x, series
			p.rows = append(p.rows, rowSpec{deps: []int{idx}, build: func(outs []runOut) (Row, error) {
				return sweepRow(label, srs, x, xlabel, outs[0]), nil
			}})
		}
	}
	return p, nil
}

func (s Sweep) comparePlan(scale Scale, scaleSet bool, seed int64) ([]comparePoint, error) {
	if len(s.Strategies) > 0 {
		return nil, fmt.Errorf("dynlb: WithCompare replaces the strategy dimension of Sweep %q; leave Strategies empty (got %d)",
			s.label(), len(s.Strategies))
	}
	pts, xlabel, err := s.points(scale, scaleSet, seed)
	if err != nil {
		return nil, err
	}
	out := make([]comparePoint, len(pts))
	for i, pt := range pts {
		out[i] = comparePoint{series: pt.series, x: pt.x, xlabel: xlabel, cfg: pt.cfg}
	}
	return out, nil
}

// sweepRow shapes one sweep point outcome into a Row with the standard
// resource-metric extras (mirroring the figure sweeps' sizeRow).
func sweepRow(label, series string, x float64, xlabel string, out runOut) Row {
	res := out.res
	return Row{
		Figure: label, Series: series, X: x, XLabel: xlabel,
		JoinRTMS: res.JoinRT.MeanMS,
		Extra: map[string]float64{
			"degree": res.AvgJoinDegree,
			"cpu%":   100 * res.CPUUtil,
			"disk%":  100 * res.DiskUtil,
			"mem%":   100 * res.MemUtil,
			"tempIO": float64(res.TempIOPages),
		},
		Res: res,
		Rep: out.rep,
	}
}
