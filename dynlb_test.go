package dynlb

import (
	"math/rand"
	"strings"
	"testing"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.NPE = 10
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = Seconds(2)
	cfg.MeasureTime = Seconds(6)
	return cfg
}

func TestRunSmoke(t *testing.T) {
	res, err := Run(quickConfig(), MustStrategy("OPT-IO-CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinsDone == 0 {
		t.Fatal("no joins completed")
	}
	if res.Strategy != "OPT-IO-CPU" {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.NPE = 0
	if _, err := Run(cfg, MustStrategy("MIN-IO")); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestStrategyNamesRoundTrip(t *testing.T) {
	names := StrategyNames()
	if len(names) != 12 {
		t.Fatalf("%d built-in strategies, want 12", len(names))
	}
	for _, n := range names {
		s, err := StrategyByName(n)
		if err != nil || s.Name() != n {
			t.Errorf("StrategyByName(%q) = %v, %v", n, s, err)
		}
	}
}

func TestPsuValuesMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if got := PsuNoIO(cfg); got != 3 {
		t.Errorf("PsuNoIO = %d, want 3 (paper, 1%% selectivity)", got)
	}
	if got := PsuOpt(cfg); got < 15 || got > 45 {
		t.Errorf("PsuOpt = %d, want paper region [15,45] (paper: 30)", got)
	}
}

func TestResponseTimeCurveShape(t *testing.T) {
	cfg := DefaultConfig()
	curve := ResponseTimeCurve(cfg, 80)
	if len(curve) != 80 {
		t.Fatalf("curve length %d", len(curve))
	}
	opt := PsuOpt(cfg)
	if curve[0] <= curve[opt-1] || curve[79] <= curve[opt-1] {
		t.Errorf("curve not U-shaped around the optimum %d", opt)
	}
}

func TestFixedDegree(t *testing.T) {
	s, err := FixedDegree(5, "LUM")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Name(), "p=5") {
		t.Errorf("name = %q", s.Name())
	}
	if _, err := FixedDegree(5, "bogus"); err == nil {
		t.Error("bogus selection accepted")
	}
}

// TestCustomStrategy verifies the extension point: a user-defined strategy
// drives the full simulation.
type leastBusy struct{}

func (leastBusy) Name() string { return "custom-least-busy" }
func (leastBusy) Decide(q QueryInfo, v *View, rng *rand.Rand) Decision {
	k := q.PsuNoIO + 1
	if k > v.N() {
		k = v.N()
	}
	pes := v.ByCPU()[:k]
	return Decision{JoinPEs: append([]int(nil), pes...), MemPerPE: (q.HashPages() + k - 1) / k}
}

func TestCustomStrategy(t *testing.T) {
	res, err := Run(quickConfig(), leastBusy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.JoinsDone == 0 {
		t.Fatal("custom strategy completed no joins")
	}
	if res.Strategy != "custom-least-busy" {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestFiguresListAndDocs(t *testing.T) {
	figs := Figures()
	if len(figs) != 9 {
		t.Fatalf("%d figures, want 9", len(figs))
	}
	for _, f := range figs {
		if FigureDoc(f) == "" {
			t.Errorf("figure %s has no doc", f)
		}
	}
	if _, err := RunFigure("nope", ScaleQuick, 1); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigure1aQuick(t *testing.T) {
	rows, err := RunFigure("1a", ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	var analytic, simulated int
	for _, r := range rows {
		switch r.Series {
		case "analytic":
			analytic++
		case "simulated":
			simulated++
		}
		if r.JoinRTMS <= 0 {
			t.Errorf("non-positive RT in row %+v", r)
		}
	}
	if analytic != 40 || simulated != len([]int{1, 2, 4, 8, 12, 16, 20, 24, 32, 40}) {
		t.Errorf("analytic=%d simulated=%d", analytic, simulated)
	}
	txt := FormatRows(rows)
	if !strings.Contains(txt, "Figure 1a") {
		t.Errorf("FormatRows header missing: %s", txt[:60])
	}
}

func TestFormatRowsEmpty(t *testing.T) {
	if got := FormatRows(nil); got != "(no rows)\n" {
		t.Errorf("FormatRows(nil) = %q", got)
	}
}

func TestRunFigureDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	a, err := RunFigure("1a", ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure("1a", ScaleQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].JoinRTMS != b[i].JoinRTMS || a[i].Series != b[i].Series || a[i].X != b[i].X {
			t.Fatalf("row %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
