package dynlb

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestCompareResultsHandValues: paired aggregation over hand-made results
// must produce exact means, deltas, improvements and the hand-computed
// paired-t and unpaired half-widths. b is a constant 10% below a, so the
// improvement stream is exactly {10, 10, 10} and the correlation exactly 1.
func TestCompareResultsHandValues(t *testing.T) {
	mk := func(strategy string, rt float64) Results {
		return Results{Strategy: strategy, JoinRT: Summary{MeanMS: rt}}
	}
	runsA := []Results{mk("A", 100), mk("A", 110), mk("A", 120)}
	runsB := []Results{mk("B", 90), mk("B", 99), mk("B", 108)}
	pc, err := CompareResults(runsA, runsB, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if pc.StrategyA != "A" || pc.StrategyB != "B" || pc.Reps != 3 || pc.Conf != 0.95 {
		t.Fatalf("comparison meta wrong: %+v", pc)
	}
	d := pc.JoinRTMS
	if d.A != 110 || d.B != 99 || d.Delta.Mean != -11 {
		t.Errorf("means/delta wrong: %+v", d)
	}
	// Per-pair deltas {-10, -11, -12}: sd 1, t(0.95, 2) = 4.3027.
	const tCrit = 4.302652729911275
	if want := tCrit / math.Sqrt(3); math.Abs(d.Delta.HW-want) > 1e-9 {
		t.Errorf("paired delta HW %v, want %v", d.Delta.HW, want)
	}
	if d.Improv.Mean != 10 || math.Abs(d.Improv.HW) > 1e-9 {
		t.Errorf("improvement %v ±%v, want exactly 10 ±0", d.Improv.Mean, d.Improv.HW)
	}
	// s²A = 100, s²B = 81: unpaired delta HW = t·sqrt(181/3).
	wantUnpaired := tCrit * math.Sqrt(181.0/3)
	if math.Abs(d.UnpairedDeltaHW-wantUnpaired) > 1e-6 {
		t.Errorf("unpaired delta HW %v, want %v", d.UnpairedDeltaHW, wantUnpaired)
	}
	if math.Abs(d.UnpairedImprovHW-100*wantUnpaired/110) > 1e-6 {
		t.Errorf("unpaired improvement HW %v, want %v", d.UnpairedImprovHW, 100*wantUnpaired/110)
	}
	if math.Abs(d.Corr-1) > 1e-12 {
		t.Errorf("correlation %v, want 1", d.Corr)
	}
	if d.Delta.HW >= d.UnpairedDeltaHW || d.Improv.HW >= d.UnpairedImprovHW {
		t.Errorf("paired half-widths not tighter: %+v", d)
	}
}

func TestSplitCompare(t *testing.T) {
	a, b, err := SplitCompare(" psu-opt+RANDOM , OPT-IO-CPU ")
	if err != nil || a != "psu-opt+RANDOM" || b != "OPT-IO-CPU" {
		t.Errorf("SplitCompare = %q, %q, %v", a, b, err)
	}
	for _, bad := range []string{"", "one", "a,b,c", ",b", "a,", " , "} {
		if _, _, err := SplitCompare(bad); err == nil {
			t.Errorf("SplitCompare(%q) accepted", bad)
		}
	}
}

func TestCompareResultsRejects(t *testing.T) {
	one := []Results{{Strategy: "A"}}
	if _, err := CompareResults(nil, nil, 0.95); err == nil {
		t.Error("empty pair list accepted")
	}
	if _, err := CompareResults(one, []Results{{}, {}}, 0.95); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CompareResults(one, one, 1.5); err == nil {
		t.Error("confidence 1.5 accepted")
	}
}

func TestCompareReplicatedRejectsBadArgs(t *testing.T) {
	cfg := quickConfig()
	a, b := MustStrategy("psu-opt+RANDOM"), MustStrategy("MIN-IO")
	if _, err := CompareReplicated(cfg, a, b, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := CompareReplicatedConf(cfg, a, b, []int64{1}, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	bad := cfg
	bad.NPE = 0
	if _, err := CompareReplicated(bad, a, b, []int64{1}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestCompareSharesSeeds: the A side of a paired comparison must be
// bit-identical to RunReplicated of strategy A on the same seed list — the
// pairing adds B runs on the same seeds, it must not perturb A's stream.
// And the paired metric means must agree with the per-strategy Replication.
func TestCompareSharesSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := quickConfig()
	a, b := MustStrategy("psu-opt+RANDOM"), MustStrategy("OPT-IO-CPU")
	seeds := ReplicateSeeds(cfg.Seed, 3)
	cmp, err := CompareReplicated(cfg, a, b, seeds)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := RunReplicated(cfg, a, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cmp.A, repA) {
		t.Errorf("A side of the comparison differs from RunReplicated on the same seeds:\ncmp: %+v\nrep: %+v",
			cmp.A.Rep, repA.Rep)
	}
	if cmp.Pair.JoinRTMS.A != cmp.A.Rep.JoinRTMS.Mean || cmp.Pair.JoinRTMS.B != cmp.B.Rep.JoinRTMS.Mean {
		t.Errorf("paired means diverge from per-strategy replication: %+v vs %v/%v",
			cmp.Pair.JoinRTMS, cmp.A.Rep.JoinRTMS.Mean, cmp.B.Rep.JoinRTMS.Mean)
	}
	if cmp.Pair.StrategyA != "psu-opt+RANDOM" || cmp.Pair.StrategyB != "OPT-IO-CPU" {
		t.Errorf("strategy names: %q vs %q", cmp.Pair.StrategyA, cmp.Pair.StrategyB)
	}
	wantDelta := cmp.Pair.JoinRTMS.B - cmp.Pair.JoinRTMS.A
	if math.Abs(cmp.Pair.JoinRTMS.Delta.Mean-wantDelta) > 1e-9 {
		t.Errorf("delta mean %v != B−A %v", cmp.Pair.JoinRTMS.Delta.Mean, wantDelta)
	}
}

// TestCompareSinglePair: Compare runs one pair on cfg.Seed — means present,
// all half-widths zero.
func TestCompareSinglePair(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := quickConfig()
	cmp, err := Compare(cfg, MustStrategy("psu-opt+RANDOM"), MustStrategy("OPT-IO-CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Pair.Reps != 1 || len(cmp.A.Runs) != 1 || len(cmp.B.Runs) != 1 {
		t.Fatalf("single comparison shape: %+v", cmp.Pair)
	}
	d := cmp.Pair.JoinRTMS
	if d.A <= 0 || d.B <= 0 {
		t.Errorf("missing response times: %+v", d)
	}
	if d.Delta.HW != 0 || d.Improv.HW != 0 || d.UnpairedDeltaHW != 0 {
		t.Errorf("single pair produced half-widths: %+v", d)
	}
}

func TestRunFigureComparedRejects(t *testing.T) {
	if _, err := RunFigureCompared("nope", ScaleQuick, 1, "MIN-IO", "OPT-IO-CPU", 2, 1); err == nil {
		t.Error("unknown figure accepted")
	}
	if _, err := RunFigureCompared("1a", ScaleQuick, 1, "MIN-IO", "OPT-IO-CPU", 2, 1); err == nil {
		t.Error("figure without a config axis accepted")
	}
	if _, err := RunFigureCompared("8", ScaleQuick, 1, "bogus", "OPT-IO-CPU", 2, 1); err == nil {
		t.Error("unknown strategy A accepted")
	}
	if _, err := RunFigureCompared("8", ScaleQuick, 1, "MIN-IO", "bogus", 2, 1); err == nil {
		t.Error("unknown strategy B accepted")
	}
	if _, err := RunFigureCompared("8", ScaleQuick, 1, "MIN-IO", "OPT-IO-CPU", 0, 1); err == nil {
		t.Error("reps 0 accepted")
	}
	if _, err := RunFigureComparedConf("8", ScaleQuick, 1, "MIN-IO", "OPT-IO-CPU", 2, 2.0, 1); err == nil {
		t.Error("confidence 2.0 accepted")
	}
}

func TestCompareFiguresAreKnown(t *testing.T) {
	known := map[string]bool{}
	for _, f := range Figures() {
		known[f] = true
	}
	for _, f := range CompareFigures() {
		if !known[f] {
			t.Errorf("CompareFigures lists unknown figure %q", f)
		}
	}
}

// TestRunFigureComparedDeterminismAndPairing is the acceptance check of the
// comparison subsystem on a real figure sweep (Fig. 8's workload axis at
// quick scale): compared rows must be bit-identical at -parallel 1 and
// -parallel 8, and — because both strategies of every replicate share their
// seed — the paired confidence half-width on the %-improvement must be
// strictly tighter than the unpaired (independent-seed) half-width on the
// same replicate count.
func TestRunFigureComparedDeterminismAndPairing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	// Three replicates, not two: at n=2 the sample correlation of any
	// non-constant pair is exactly ±1 and the paired-vs-unpaired ordering
	// is near-tautological; n=3 makes the tightness and correlation
	// assertions informative.
	const (
		stratA = "psu-opt+RANDOM"
		stratB = "OPT-IO-CPU"
		reps   = 3
	)
	seq, err := RunFigureCompared("8", ScaleQuick, 3, stratA, stratB, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureCompared("8", ScaleQuick, 3, stratA, stratB, reps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("row counts: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("row %d differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
	for i, r := range seq {
		if r.Cmp == nil {
			t.Fatalf("row %d missing paired aggregates", i)
		}
		c := r.Cmp
		if c.Reps != reps || c.StrategyA != stratA || c.StrategyB != stratB {
			t.Fatalf("row %d comparison meta: %+v", i, c)
		}
		if r.JoinRTMS != c.JoinRTMS.B {
			t.Errorf("row %d scalar RT %v is not strategy B's mean %v", i, r.JoinRTMS, c.JoinRTMS.B)
		}
		if r.Rep == nil || r.Rep.Reps != reps {
			t.Errorf("row %d missing strategy B replication aggregates", i)
		}
		// The variance-reduction claim: common random numbers make the
		// paired intervals strictly tighter than independent seeds would.
		if c.JoinRTMS.Improv.HW >= c.JoinRTMS.UnpairedImprovHW {
			t.Errorf("row %d (x=%g): paired improvement HW %.3f%% not strictly below unpaired %.3f%% (corr %.3f)",
				i, r.X, c.JoinRTMS.Improv.HW, c.JoinRTMS.UnpairedImprovHW, c.JoinRTMS.Corr)
		}
		if c.JoinRTMS.Delta.HW >= c.JoinRTMS.UnpairedDeltaHW {
			t.Errorf("row %d (x=%g): paired delta HW %.3f not strictly below unpaired %.3f",
				i, r.X, c.JoinRTMS.Delta.HW, c.JoinRTMS.UnpairedDeltaHW)
		}
		if c.JoinRTMS.Corr <= 0 {
			t.Errorf("row %d: non-positive replicate correlation %.3f — common random numbers not biting", i, c.JoinRTMS.Corr)
		}
	}
}

// TestWriteRowsCSVComparisonColumns: rows carrying paired aggregates gain
// the comparison columns; rows without stay blank in them; uncompared
// output keeps the original header (golden compatibility).
func TestWriteRowsCSVComparisonColumns(t *testing.T) {
	pc := PairedComparison{
		StrategyA: "A", StrategyB: "B", Reps: 3, Conf: 0.95,
		JoinRTMS: DeltaCI{
			A: 110, B: 99,
			Delta:            MeanCI{Mean: -11, HW: 2.5},
			Improv:           MeanCI{Mean: 10, HW: 0.5},
			UnpairedDeltaHW:  33.4,
			UnpairedImprovHW: 30.4,
			Corr:             0.99,
		},
	}
	rows := []Row{
		{Figure: "8", Series: "60 PE", X: 1, XLabel: "selectivity%", JoinRTMS: 99, Cmp: &pc},
		{Figure: "8", Series: "analytic", X: 1, XLabel: "selectivity%", JoinRTMS: 1},
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count %d: %q", len(lines), buf.String())
	}
	header := lines[0]
	for _, col := range []string{"strategy_a", "strategy_b", "rt_delta_ms", "rt_improv_pct", "rt_unpaired_improv_hw_pct", "rt_corr"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	if !strings.Contains(lines[1], ",A,B,110.00,99.00,-11.00,2.50,10.000,0.500,30.400,0.9900") {
		t.Errorf("compared row lacks comparison cells: %s", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",,,,,,,,,,") {
		t.Errorf("uncompared row should have blank comparison cells: %s", lines[2])
	}

	// Without any Cmp the header must not change.
	buf.Reset()
	if err := WriteRowsCSV(&buf, rows[1:]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "strategy_a") {
		t.Errorf("uncompared output grew comparison columns: %s", buf.String())
	}
}
