package dynlb

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"dynlb/internal/engine"
	"dynlb/internal/stats"
)

// Source is a point source for an Experiment: a set of sweep points, each a
// full simulation configuration with its row coordinates. The built-in
// sources are Figure (one of the paper's evaluation figures) and Sweep (a
// user-defined sweep over arbitrary Config axes). The interface is sealed:
// its methods are unexported so the planning contract can evolve without
// breaking third-party code.
type Source interface {
	// label is the Row.Figure value of the source's rows.
	label() string
	// baseSeed is the seed replicate streams derive from when WithSeed is
	// absent.
	baseSeed() int64
	// plan resolves the source into simulation jobs and row specs. scaleSet
	// reports whether WithScale was given (a Sweep keeps its Base windows
	// otherwise).
	plan(scale Scale, scaleSet bool, seed int64) (*pointPlan, error)
	// comparePlan resolves the source into its strategy-free workload
	// points for a paired WithCompare experiment.
	comparePlan(scale Scale, scaleSet bool, seed int64) ([]comparePoint, error)
}

// pointPlan is the executable form of a point source: one simulation job
// per logical sweep point (cfg.Seed holds the base seed; replication
// re-seeds the expansion) plus the row specs mapping point outcomes to
// output rows. Rows are emitted in slice order.
type pointPlan struct {
	jobs []runJob
	rows []rowSpec
}

// rowSpec is one output row: the indices of the logical points it consumes
// and the pure function shaping their outcomes into the Row. A row with no
// deps (e.g. Fig. 1a's analytic curve) is emitted immediately.
//
// Invariant every planner must keep: deps lists reference points first and
// the row's OWN point last — WithRuns attaches the last dep's raw Results
// to Row.Runs (plan8's improvement rows are the only multi-dep case today:
// {baseline, own}).
type rowSpec struct {
	deps  []int
	build func(outs []runOut) (Row, error)
}

// Experiment is the single execution path of the package: a point source
// (Figure or Sweep) plus options selecting scale, seeding, replication,
// paired comparison, parallelism and progress streaming. Build one with
// NewExperiment and execute it with Run; the zero value is not usable.
//
// Replication (WithReps, WithSeeds) and paired comparison (WithCompare) are
// orthogonal stages over the same point plan: every logical point expands
// into its replicate (and strategy-pair) simulations, all jobs share one
// worker pool, and each point's runs are aggregated back into one row. Rows
// are a pure function of the source and options — bit-identical at any
// worker count — and arrive in deterministic order.
type Experiment struct {
	src Source
	o   expOptions
}

// expOptions is the resolved option set of an Experiment.
type expOptions struct {
	scale      Scale
	scaleSet   bool
	seed       int64
	seedSet    bool
	workers    int
	reps       int
	repsSet    bool
	seeds      []int64
	conf       float64
	keepRuns   bool
	compareSet bool
	cmpA       Strategy
	cmpB       Strategy
	progress   func(Row)
	profile    LoadProfile
	profileSet bool
	window     Duration
	windowSet  bool
	faults     FaultPlan
	faultsSet  bool
	dist       Executor
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithScale selects the simulation windows (warm-up, measurement) of every
// point. Default: ScaleNormal for Figure sources; a Sweep keeps the windows
// of its Base config unless this option is given.
func WithScale(s Scale) Option {
	return func(e *Experiment) { e.o.scale = s; e.o.scaleSet = true }
}

// WithSeed sets the base random seed of the experiment: the seed of every
// unreplicated point and the root of the replicate seed stream. Default: 1
// for Figure sources, Sweep.Base.Seed for sweeps.
func WithSeed(seed int64) Option {
	return func(e *Experiment) { e.o.seed = seed; e.o.seedSet = true }
}

// WithWorkers caps the number of concurrent simulations (<= 0 means
// runtime.NumCPU, the default). Every job runs an independent kernel and
// RNG, so the worker count never changes the rows.
func WithWorkers(n int) Option {
	return func(e *Experiment) { e.o.workers = n }
}

// WithReps replicates every sweep point across n deterministic seeds
// (ReplicateSeeds of the base seed: replicate 0 is the base itself). At
// n >= 2 each row reports across-replicate means with Student-t confidence
// half-widths in Row.Rep; n <= 1 runs each point once with Row.Rep nil.
// Mutually exclusive with WithSeeds.
func WithReps(n int) Option {
	return func(e *Experiment) { e.o.reps = n; e.o.repsSet = true }
}

// WithSeeds replicates every sweep point across an explicit seed list
// instead of the derived ReplicateSeeds stream. Unlike WithReps(1), a
// single explicit seed still aggregates (Row.Rep set with Reps == 1), so
// callers get a uniform replicated shape. Mutually exclusive with WithReps.
func WithSeeds(seeds ...int64) Option {
	// The copy stays non-nil even for zero seeds, so an (invalid) empty
	// explicit list is diagnosed rather than silently ignored.
	return func(e *Experiment) { e.o.seeds = append(make([]int64, 0, len(seeds)), seeds...) }
}

// WithRuns attaches each row's raw per-replicate Results to Row.Runs, in
// replicate-seed order, so per-seed data (scatter plots, custom
// aggregation) survives the row aggregation. In a compared sweep the pair
// interleaves {A, B} per seed; a row whose value derives from several
// sweep points (Fig. 8's improvement rows) carries its own point's runs,
// not the baseline's. Off by default to keep rows small.
func WithRuns() Option {
	return func(e *Experiment) { e.o.keepRuns = true }
}

// WithConfidence sets the confidence level in (0, 1) of replication and
// comparison intervals. Default DefaultConfidence (0.95).
func WithConfidence(conf float64) Option {
	return func(e *Experiment) { e.o.conf = conf }
}

// WithCompare runs the experiment as a paired head-to-head comparison of a
// baseline strategy a against a challenger b: the source's workload points
// are stripped of their own strategy dimension, and every (point, replicate
// seed) simulates once under each strategy on the identical seed (common
// random numbers). Rows carry b's results plus the paired per-metric deltas
// and relative improvements — with paired-t confidence half-widths — in
// Row.Cmp.
func WithCompare(a, b Strategy) Option {
	return func(e *Experiment) { e.o.compareSet = true; e.o.cmpA, e.o.cmpB = a, b }
}

// WithProfile applies a non-stationary load profile to every simulated
// point of the experiment, overriding the points' own Config.Profile. It
// composes with every other option — the profile modulates each point's
// arrival processes without touching its seed, so compared sweeps still
// pair on common random numbers and a constant profile reproduces the
// steady-state rows bit for bit. For sweeping *over* profiles, use a
// ProfileAxis instead.
func WithProfile(p LoadProfile) Option {
	return func(e *Experiment) { e.o.profile = p; e.o.profileSet = true }
}

// WithFaults injects a fault plan into every simulated point of the
// experiment, overriding the points' own Config.Faults. Faults are
// scheduled simulation events, so they compose with every other option:
// compared sweeps still pair on common random numbers, each point replays
// bit-identically per seed, and the empty plan reproduces the fault-free
// rows bit for bit. For sweeping *over* fault plans, use a FaultAxis.
func WithFaults(fp FaultPlan) Option {
	return func(e *Experiment) { e.o.faults = fp; e.o.faultsSet = true }
}

// WithMetricsWindow enables windowed transient metrics on every simulated
// point: the measurement interval is sliced into width-wide windows, each
// row's Results carries the per-window series plus peak-window response
// time and recovery time, and WriteRowsCSV/WriteRowsJSON add the windowed
// columns. Steady-state rows (width 0, the default) are unchanged.
func WithMetricsWindow(width Duration) Option {
	return func(e *Experiment) { e.o.window = width; e.o.windowSet = true }
}

// Executor is an external execution backend for a compiled Plan; the
// distributed coordinator in internal/dist is the canonical implementation.
// Run calls ExecutePlan after it has emitted the plan's dependency-free
// Start rows; the executor must then run every physical job — locally,
// remotely, in any order and at any parallelism — feed completions back
// through SetJobResult/Complete (serialized, per the Plan contract), and
// forward each batch of newly emittable rows to deliver in the order
// Complete returned them. Because every job is a pure function of its
// (Config, Strategy) pair, any executor that simulates the jobs faithfully
// yields rows bit-identical to the in-process pool.
type Executor interface {
	ExecutePlan(ctx context.Context, p *Plan, deliver func([]Row)) error
}

// WithDistributed runs the experiment's physical jobs through an external
// executor — typically a dist.Coordinator sharding slot ranges across
// remote workers — instead of the in-process worker pool. Row identity is
// unaffected: rows arrive in the same deterministic order with the same
// bytes at any worker count or placement. WithWorkers only shapes the
// executor's local fallback (if it has one); WithProgress streams rows
// exactly as in local execution.
func WithDistributed(x Executor) Option {
	return func(e *Experiment) { e.o.dist = x }
}

// WithProgress streams every completed row to fn. Rows arrive in their
// final deterministic order (a row is delivered as soon as it and all rows
// before it are complete), from the goroutine Run was called on, so fn
// needs no locking. On success the returned slice repeats the same rows;
// when Run fails (cancellation, job error) it returns nil and the stream
// holds the deterministic prefix completed up to that point.
func WithProgress(fn func(Row)) Option {
	return func(e *Experiment) { e.o.progress = fn }
}

// NewExperiment builds an experiment over a point source. Invalid
// combinations (unknown figure, empty sweep, WithReps together with
// WithSeeds, confidence outside (0, 1)) are reported by Run.
func NewExperiment(src Source, opts ...Option) *Experiment {
	e := &Experiment{src: src}
	e.o.scale = ScaleNormal
	e.o.reps = 1
	e.o.conf = DefaultConfidence
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// slot is one logical sweep point of the expanded schedule: a contiguous
// range of physical jobs plus the aggregation folding their Results into
// the point's runOut (identity for an unreplicated point, AggregateResults
// for a replicated one, the paired aggregation for a compared one).
type slot struct {
	first, n int
	finish   func(results []Results) (runOut, error)
}

// Run executes the experiment and returns its rows in deterministic order.
// Cancelling ctx stops the sweep promptly: no new simulations start and Run
// returns ctx.Err without waiting for in-flight points (each simulated
// point is indivisible and finishes in the background).
func (e *Experiment) Run(ctx context.Context) ([]Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p, err := e.Plan()
	if err != nil {
		return nil, err
	}
	if e.o.dist != nil {
		return e.executeDist(ctx, p)
	}
	return e.execute(ctx, p)
}

// executeDist hands the plan's jobs to the WithDistributed executor,
// keeping Run's own obligations — the cancelled-context gate, the Start
// rows, progress streaming and full-completion checking — identical to
// local execution.
func (e *Experiment) executeDist(ctx context.Context, p *Plan) ([]Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]Row, 0, p.NumRows())
	deliver := func(rows []Row) {
		for _, r := range rows {
			out = append(out, r)
			if e.o.progress != nil {
				e.o.progress(r)
			}
		}
	}
	first, err := p.Start()
	if err != nil {
		return nil, err
	}
	deliver(first)
	if err := e.o.dist.ExecutePlan(ctx, p, deliver); err != nil {
		return nil, err
	}
	if !p.Done() {
		return nil, fmt.Errorf("dynlb: distributed executor returned without completing every row (%d of %d emitted)", len(out), p.NumRows())
	}
	return out, nil
}

// Plan validates the experiment and compiles it into its executable
// schedule: the physical simulation jobs (every sweep point expanded
// through the replication/comparison stages) plus the slot and row
// bookkeeping folding job outcomes back into Rows. Run drives a Plan on
// its own worker pool; external schedulers (e.g. internal/service, which
// multiplexes many experiments over one shared pool) drive it directly:
//
//	p, err := exp.Plan()
//	rows, err := p.Start()            // rows with no simulation deps
//	for i := 0; i < p.NumJobs(); i++ {
//		go p.RunJob(i)                // concurrent-safe across distinct i
//	}
//	// as each job i finishes, from ONE goroutine (or under one lock):
//	rows, err := p.Complete(i)        // newly completed rows, in order
//
// Rows are a pure function of the experiment: however jobs are scheduled,
// Complete emits the same rows in the same deterministic order.
func (e *Experiment) Plan() (*Plan, error) {
	if e.src == nil {
		return nil, fmt.Errorf("dynlb: Experiment needs a point source (Figure or Sweep)")
	}
	if err := checkConfidence(e.o.conf); err != nil {
		return nil, err
	}
	if e.o.seeds != nil && e.o.repsSet {
		return nil, fmt.Errorf("dynlb: WithSeeds and WithReps are mutually exclusive")
	}
	seed := e.src.baseSeed()
	if e.o.seedSet {
		seed = e.o.seed
	}
	jobs, slots, rows, err := e.expand(seed)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		exp:      e,
		jobs:     jobs,
		slots:    slots,
		rows:     rows,
		jobSlot:  make([]int, len(jobs)),
		pending:  make([]int, len(slots)),
		results:  make([]Results, len(jobs)),
		outs:     make([]runOut, len(slots)),
		slotDone: make([]bool, len(slots)),
	}
	for s, sl := range slots {
		p.pending[s] = sl.n
		for i := sl.first; i < sl.first+sl.n; i++ {
			p.jobSlot[i] = s
		}
	}
	return p, nil
}

// Plan is the compiled schedule of an Experiment: NumJobs physical
// simulations whose completions fold into NumRows output rows. Build one
// with (*Experiment).Plan.
//
// # The slot-hook contract
//
// A plan groups its physical jobs into NumSlots logical slots — one per
// sweep point after replication/comparison expansion — each owning the
// contiguous job range SlotRange(s). External executors drive a plan
// through five hooks:
//
//   - Job(i) exposes job i's exact simulation inputs: the fully resolved
//     Config (per-slot splitmix64 replicate seed already applied) and the
//     Strategy. A job is a pure function of this pair, so any executor —
//     the in-process pool, internal/service's shared scheduler, or a
//     remote worker reconstructing the pair from its wire form — obtains
//     bit-identical Results.
//   - RunJob(i) simulates job i here and records its Results; concurrent
//     calls for distinct i are safe. SetJobResult(i, r) records Results
//     computed elsewhere instead.
//   - Start() emits the rows with no simulation dependencies; call it once
//     before the first Complete.
//   - Complete(i) folds job i's recorded Results into its slot and returns
//     the rows that became emittable — always a deterministic prefix
//     extension, however jobs were scheduled or interleaved.
//   - Done() reports whether every row has been emitted.
//
// RunJob is safe to call concurrently for distinct job indices, and
// SetJobResult for distinct indices not under a concurrent Complete of the
// same slot; Start and Complete mutate the emission state and must be
// serialized by the caller (one collector goroutine, or one mutex). A Plan
// is single-use: drive it to completion once and build a fresh one to
// re-run the experiment.
type Plan struct {
	exp      *Experiment
	jobs     []runJob
	slots    []slot
	rows     []rowSpec
	jobSlot  []int
	pending  []int
	results  []Results
	outs     []runOut
	slotDone []bool
	nextRow  int
}

// NumJobs is the number of physical simulation jobs of the plan (sweep
// points after replication and comparison expansion).
func (p *Plan) NumJobs() int { return len(p.jobs) }

// NumRows is the number of output rows the fully executed plan emits.
func (p *Plan) NumRows() int { return len(p.rows) }

// RunJob simulates physical job i and records its results in the plan.
// Each job runs an independent kernel and RNG, so distinct indices may run
// concurrently on any number of workers without changing any row.
func (p *Plan) RunJob(i int) error {
	sys, err := engine.New(p.jobs[i].cfg, p.jobs[i].st)
	if err != nil {
		return err
	}
	p.results[i] = sys.Run()
	return nil
}

// Start emits the rows with no simulation dependencies (e.g. Fig. 1a's
// analytic curve). Call it once, before the first Complete.
func (p *Plan) Start() ([]Row, error) { return p.emit() }

// Complete records that RunJob(i) finished, folds any slot it completed
// into its point outcome, and returns the rows that became emittable — in
// their final deterministic order, so concatenating every batch reproduces
// the full row slice however jobs were scheduled. Complete must not be
// called concurrently (serialize it with Start and with itself).
func (p *Plan) Complete(i int) ([]Row, error) {
	s := p.jobSlot[i]
	if p.pending[s]--; p.pending[s] > 0 {
		return nil, nil
	}
	sl := p.slots[s]
	runs := p.results[sl.first : sl.first+sl.n]
	o, err := sl.finish(runs)
	if err != nil {
		return nil, err
	}
	if p.exp.o.keepRuns {
		o.runs = append([]Results(nil), runs...)
	}
	p.outs[s] = o
	p.slotDone[s] = true
	return p.emit()
}

// Done reports whether every row has been emitted.
func (p *Plan) Done() bool { return p.nextRow == len(p.rows) }

// NumSlots is the number of logical slots of the plan: sweep points after
// the replication/comparison stages, each owning a contiguous job range.
func (p *Plan) NumSlots() int { return len(p.slots) }

// SlotRange returns the physical-job range [first, first+n) of slot s.
// Slot ranges partition [0, NumJobs) in order.
func (p *Plan) SlotRange(s int) (first, n int) {
	sl := p.slots[s]
	return sl.first, sl.n
}

// SlotOf returns the slot physical job i belongs to.
func (p *Plan) SlotOf(i int) int { return p.jobSlot[i] }

// Job returns physical job i's exact simulation inputs: the fully resolved
// configuration — seed included, with the per-slot replicate-seed
// discipline already applied — and the strategy. See the slot-hook
// contract on Plan.
func (p *Plan) Job(i int) (Config, Strategy) {
	j := p.jobs[i]
	return j.cfg, j.st
}

// SetJobResult records the Results of physical job i computed by an
// external executor, exactly as RunJob would have; call Complete(i)
// afterwards to fold the completion into rows. Concurrent calls for
// distinct indices are safe, but a job's SetJobResult must
// happen-before its Complete.
func (p *Plan) SetJobResult(i int, r Results) { p.results[i] = r }

// JobResult returns the recorded Results of physical job i — the zero
// value until RunJob or SetJobResult ran for it.
func (p *Plan) JobResult(i int) Results { return p.results[i] }

// emit builds every row whose dependencies are complete, in row order, so
// the stream of emitted rows is a deterministic prefix of the final row
// slice.
func (p *Plan) emit() ([]Row, error) {
	var batch []Row
	for p.nextRow < len(p.rows) {
		rs := &p.rows[p.nextRow]
		for _, d := range rs.deps {
			if !p.slotDone[d] {
				return batch, nil
			}
		}
		depOuts := make([]runOut, len(rs.deps))
		for k, d := range rs.deps {
			depOuts[k] = p.outs[d]
		}
		r, err := rs.build(depOuts)
		if err != nil {
			return nil, err
		}
		if p.exp.o.keepRuns && len(depOuts) > 0 {
			// The row's own point is its last dependency (earlier deps are
			// references like Fig. 8's improvement baseline).
			r.Runs = depOuts[len(depOuts)-1].runs
		}
		batch = append(batch, r)
		p.nextRow++
	}
	return batch, nil
}

// applyOverrides rewrites one planned point's configuration with the
// experiment-wide WithProfile/WithMetricsWindow overrides, before the
// replication stage fans the point out into per-seed jobs.
func (e *Experiment) applyOverrides(c *Config) {
	if e.o.profileSet {
		c.Profile = e.o.profile
	}
	if e.o.windowSet {
		c.MetricsWindow = e.o.window
	}
	if e.o.faultsSet {
		c.Faults = e.o.faults
	}
}

// expand resolves the source at the experiment's options and applies the
// replication/comparison stages, producing the physical job schedule.
func (e *Experiment) expand(seed int64) ([]runJob, []slot, []rowSpec, error) {
	// compareSet, not a nil check on the pair: WithCompare(nil, nil) must be
	// diagnosed, never degrade into a silently uncompared sweep.
	if e.o.compareSet {
		return e.expandCompared(seed)
	}
	p, err := e.src.plan(e.o.scale, e.o.scaleSet, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range p.jobs {
		e.applyOverrides(&p.jobs[i].cfg)
	}
	seeds := e.o.seeds
	if seeds == nil {
		if e.o.reps <= 1 {
			// Unreplicated: each point is its own single-job slot.
			slots := make([]slot, len(p.jobs))
			for i := range p.jobs {
				slots[i] = slot{first: i, n: 1, finish: func(results []Results) (runOut, error) {
					return runOut{res: results[0]}, nil
				}}
			}
			return p.jobs, slots, p.rows, nil
		}
		seeds = stats.ReplicateSeeds(seed, e.o.reps)
	}
	if len(seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("dynlb: WithSeeds needs at least one seed")
	}
	conf := e.o.conf
	all := make([]runJob, 0, len(p.jobs)*len(seeds))
	slots := make([]slot, len(p.jobs))
	for i, j := range p.jobs {
		slots[i] = slot{first: len(all), n: len(seeds), finish: func(results []Results) (runOut, error) {
			mean, rep := AggregateResults(results, conf)
			r := rep
			return runOut{res: mean, rep: &r}, nil
		}}
		for _, s := range seeds {
			c := j.cfg
			c.Seed = s
			all = append(all, runJob{cfg: c, st: j.st})
		}
	}
	return all, slots, p.rows, nil
}

// expandCompared builds the paired-comparison schedule: the source's
// strategy-free workload points, each expanded into replicate × {A, B} jobs
// sharing seeds, with one generic row per point.
func (e *Experiment) expandCompared(seed int64) ([]runJob, []slot, []rowSpec, error) {
	if e.o.cmpA == nil || e.o.cmpB == nil {
		return nil, nil, nil, fmt.Errorf("dynlb: WithCompare needs both a baseline and a challenger strategy")
	}
	seeds := e.o.seeds
	if seeds == nil {
		if e.o.reps < 1 {
			return nil, nil, nil, fmt.Errorf("dynlb: a compared experiment needs reps >= 1, got %d", e.o.reps)
		}
		seeds = stats.ReplicateSeeds(seed, e.o.reps)
	}
	if len(seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("dynlb: WithSeeds needs at least one seed")
	}
	pts, err := e.src.comparePlan(e.o.scale, e.o.scaleSet, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range pts {
		e.applyOverrides(&pts[i].cfg)
	}
	var (
		label = e.src.label()
		conf  = e.o.conf
		reps  = len(seeds)
		sa    = e.o.cmpA
		sb    = e.o.cmpB
	)
	// Job layout: ((point*reps)+replicate)*2 + {A: 0, B: 1} — fixed, so the
	// paired aggregation is independent of worker scheduling.
	jobs := make([]runJob, 0, len(pts)*reps*2)
	slots := make([]slot, len(pts))
	rows := make([]rowSpec, len(pts))
	for i, pt := range pts {
		slots[i] = slot{first: len(jobs), n: 2 * reps, finish: func(results []Results) (runOut, error) {
			runsA := make([]Results, reps)
			runsB := make([]Results, reps)
			for k := 0; k < reps; k++ {
				runsA[k] = results[2*k]
				runsB[k] = results[2*k+1]
			}
			meanB, repB := AggregateResults(runsB, conf)
			pair, err := CompareResults(runsA, runsB, conf)
			if err != nil {
				return runOut{}, err
			}
			out := runOut{res: meanB, cmp: &pair}
			if reps >= 2 {
				rep := repB
				out.rep = &rep
			}
			return out, nil
		}}
		for _, s := range seeds {
			c := pt.cfg
			c.Seed = s
			jobs = append(jobs, runJob{cfg: c, st: sa}, runJob{cfg: c, st: sb})
		}
		rows[i] = rowSpec{deps: []int{i}, build: func(outs []runOut) (Row, error) {
			out := outs[0]
			series := pt.series
			if series == "" {
				series = fmt.Sprintf("%s vs %s", out.cmp.StrategyB, out.cmp.StrategyA)
			}
			return Row{
				Figure: label, Series: series, X: pt.x, XLabel: pt.xlabel,
				JoinRTMS: out.res.JoinRT.MeanMS,
				Res:      out.res,
				Rep:      out.rep,
				Cmp:      out.cmp,
			}, nil
		}}
	}
	return jobs, slots, rows, nil
}

// execute drives the plan on the experiment's own worker pool, folding
// completed slots into point outcomes and streaming rows in order as their
// dependencies complete. Workers claim jobs from an atomic counter and
// report completions over a buffered channel, so abandoning the sweep (ctx
// cancelled, job error) never blocks an in-flight worker.
func (e *Experiment) execute(ctx context.Context, p *Plan) ([]Row, error) {
	// A cancelled context delivers nothing: without this gate the Start
	// below would stream dependency-free rows (e.g. Fig. 1a's analytic
	// curve) that the nil return then disowns.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := e.o.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > p.NumJobs() {
		workers = p.NumJobs()
	}

	var (
		done   = make(chan int, p.NumJobs())
		failed = make(chan error, workers+1)
		next   atomic.Int64
		stop   atomic.Bool
		out    = make([]Row, 0, p.NumRows())
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1))
				if i >= p.NumJobs() || stop.Load() || ctx.Err() != nil {
					return
				}
				if err := p.RunJob(i); err != nil {
					stop.Store(true)
					failed <- err
					return
				}
				done <- i
			}
		}()
	}
	// deliver appends a completed batch and streams it to WithProgress, so
	// the progress stream is a deterministic prefix of the final row slice.
	deliver := func(rows []Row) {
		for _, r := range rows {
			out = append(out, r)
			if e.o.progress != nil {
				e.o.progress(r)
			}
		}
	}
	first, err := p.Start() // rows with no simulation deps
	if err != nil {
		stop.Store(true)
		return nil, err
	}
	deliver(first)
	for completed := 0; completed < p.NumJobs(); {
		// Re-check cancellation first: when both a completion and Done are
		// ready, select picks randomly, and a cancelled sweep must not keep
		// draining completions.
		if err := ctx.Err(); err != nil {
			stop.Store(true)
			return nil, err
		}
		select {
		case <-ctx.Done():
			stop.Store(true)
			return nil, ctx.Err()
		case err := <-failed:
			return nil, err
		case i := <-done:
			completed++
			rows, err := p.Complete(i)
			if err != nil {
				stop.Store(true)
				return nil, err
			}
			deliver(rows)
		}
	}
	return out, nil
}
