package dynlb

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"dynlb/internal/engine"
	"dynlb/internal/stats"
)

// Source is a point source for an Experiment: a set of sweep points, each a
// full simulation configuration with its row coordinates. The built-in
// sources are Figure (one of the paper's evaluation figures) and Sweep (a
// user-defined sweep over arbitrary Config axes). The interface is sealed:
// its methods are unexported so the planning contract can evolve without
// breaking third-party code.
type Source interface {
	// label is the Row.Figure value of the source's rows.
	label() string
	// baseSeed is the seed replicate streams derive from when WithSeed is
	// absent.
	baseSeed() int64
	// plan resolves the source into simulation jobs and row specs. scaleSet
	// reports whether WithScale was given (a Sweep keeps its Base windows
	// otherwise).
	plan(scale Scale, scaleSet bool, seed int64) (*pointPlan, error)
	// comparePlan resolves the source into its strategy-free workload
	// points for a paired WithCompare experiment.
	comparePlan(scale Scale, scaleSet bool, seed int64) ([]comparePoint, error)
}

// pointPlan is the executable form of a point source: one simulation job
// per logical sweep point (cfg.Seed holds the base seed; replication
// re-seeds the expansion) plus the row specs mapping point outcomes to
// output rows. Rows are emitted in slice order.
type pointPlan struct {
	jobs []runJob
	rows []rowSpec
}

// rowSpec is one output row: the indices of the logical points it consumes
// and the pure function shaping their outcomes into the Row. A row with no
// deps (e.g. Fig. 1a's analytic curve) is emitted immediately.
//
// Invariant every planner must keep: deps lists reference points first and
// the row's OWN point last — WithRuns attaches the last dep's raw Results
// to Row.Runs (plan8's improvement rows are the only multi-dep case today:
// {baseline, own}).
type rowSpec struct {
	deps  []int
	build func(outs []runOut) (Row, error)
}

// Experiment is the single execution path of the package: a point source
// (Figure or Sweep) plus options selecting scale, seeding, replication,
// paired comparison, parallelism and progress streaming. Build one with
// NewExperiment and execute it with Run; the zero value is not usable.
//
// Replication (WithReps, WithSeeds) and paired comparison (WithCompare) are
// orthogonal stages over the same point plan: every logical point expands
// into its replicate (and strategy-pair) simulations, all jobs share one
// worker pool, and each point's runs are aggregated back into one row. Rows
// are a pure function of the source and options — bit-identical at any
// worker count — and arrive in deterministic order.
type Experiment struct {
	src Source
	o   expOptions
}

// expOptions is the resolved option set of an Experiment.
type expOptions struct {
	scale      Scale
	scaleSet   bool
	seed       int64
	seedSet    bool
	workers    int
	reps       int
	repsSet    bool
	seeds      []int64
	conf       float64
	keepRuns   bool
	compareSet bool
	cmpA       Strategy
	cmpB       Strategy
	progress   func(Row)
	profile    LoadProfile
	profileSet bool
	window     Duration
	windowSet  bool
}

// Option configures an Experiment.
type Option func(*Experiment)

// WithScale selects the simulation windows (warm-up, measurement) of every
// point. Default: ScaleNormal for Figure sources; a Sweep keeps the windows
// of its Base config unless this option is given.
func WithScale(s Scale) Option {
	return func(e *Experiment) { e.o.scale = s; e.o.scaleSet = true }
}

// WithSeed sets the base random seed of the experiment: the seed of every
// unreplicated point and the root of the replicate seed stream. Default: 1
// for Figure sources, Sweep.Base.Seed for sweeps.
func WithSeed(seed int64) Option {
	return func(e *Experiment) { e.o.seed = seed; e.o.seedSet = true }
}

// WithWorkers caps the number of concurrent simulations (<= 0 means
// runtime.NumCPU, the default). Every job runs an independent kernel and
// RNG, so the worker count never changes the rows.
func WithWorkers(n int) Option {
	return func(e *Experiment) { e.o.workers = n }
}

// WithReps replicates every sweep point across n deterministic seeds
// (ReplicateSeeds of the base seed: replicate 0 is the base itself). At
// n >= 2 each row reports across-replicate means with Student-t confidence
// half-widths in Row.Rep; n <= 1 runs each point once with Row.Rep nil.
// Mutually exclusive with WithSeeds.
func WithReps(n int) Option {
	return func(e *Experiment) { e.o.reps = n; e.o.repsSet = true }
}

// WithSeeds replicates every sweep point across an explicit seed list
// instead of the derived ReplicateSeeds stream. Unlike WithReps(1), a
// single explicit seed still aggregates (Row.Rep set with Reps == 1), so
// callers get a uniform replicated shape. Mutually exclusive with WithReps.
func WithSeeds(seeds ...int64) Option {
	// The copy stays non-nil even for zero seeds, so an (invalid) empty
	// explicit list is diagnosed rather than silently ignored.
	return func(e *Experiment) { e.o.seeds = append(make([]int64, 0, len(seeds)), seeds...) }
}

// WithRuns attaches each row's raw per-replicate Results to Row.Runs, in
// replicate-seed order, so per-seed data (scatter plots, custom
// aggregation) survives the row aggregation. In a compared sweep the pair
// interleaves {A, B} per seed; a row whose value derives from several
// sweep points (Fig. 8's improvement rows) carries its own point's runs,
// not the baseline's. Off by default to keep rows small.
func WithRuns() Option {
	return func(e *Experiment) { e.o.keepRuns = true }
}

// WithConfidence sets the confidence level in (0, 1) of replication and
// comparison intervals. Default DefaultConfidence (0.95).
func WithConfidence(conf float64) Option {
	return func(e *Experiment) { e.o.conf = conf }
}

// WithCompare runs the experiment as a paired head-to-head comparison of a
// baseline strategy a against a challenger b: the source's workload points
// are stripped of their own strategy dimension, and every (point, replicate
// seed) simulates once under each strategy on the identical seed (common
// random numbers). Rows carry b's results plus the paired per-metric deltas
// and relative improvements — with paired-t confidence half-widths — in
// Row.Cmp.
func WithCompare(a, b Strategy) Option {
	return func(e *Experiment) { e.o.compareSet = true; e.o.cmpA, e.o.cmpB = a, b }
}

// WithProfile applies a non-stationary load profile to every simulated
// point of the experiment, overriding the points' own Config.Profile. It
// composes with every other option — the profile modulates each point's
// arrival processes without touching its seed, so compared sweeps still
// pair on common random numbers and a constant profile reproduces the
// steady-state rows bit for bit. For sweeping *over* profiles, use a
// ProfileAxis instead.
func WithProfile(p LoadProfile) Option {
	return func(e *Experiment) { e.o.profile = p; e.o.profileSet = true }
}

// WithMetricsWindow enables windowed transient metrics on every simulated
// point: the measurement interval is sliced into width-wide windows, each
// row's Results carries the per-window series plus peak-window response
// time and recovery time, and WriteRowsCSV/WriteRowsJSON add the windowed
// columns. Steady-state rows (width 0, the default) are unchanged.
func WithMetricsWindow(width Duration) Option {
	return func(e *Experiment) { e.o.window = width; e.o.windowSet = true }
}

// WithProgress streams every completed row to fn. Rows arrive in their
// final deterministic order (a row is delivered as soon as it and all rows
// before it are complete), from the goroutine Run was called on, so fn
// needs no locking. On success the returned slice repeats the same rows;
// when Run fails (cancellation, job error) it returns nil and the stream
// holds the deterministic prefix completed up to that point.
func WithProgress(fn func(Row)) Option {
	return func(e *Experiment) { e.o.progress = fn }
}

// NewExperiment builds an experiment over a point source. Invalid
// combinations (unknown figure, empty sweep, WithReps together with
// WithSeeds, confidence outside (0, 1)) are reported by Run.
func NewExperiment(src Source, opts ...Option) *Experiment {
	e := &Experiment{src: src}
	e.o.scale = ScaleNormal
	e.o.reps = 1
	e.o.conf = DefaultConfidence
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// slot is one logical sweep point of the expanded schedule: a contiguous
// range of physical jobs plus the aggregation folding their Results into
// the point's runOut (identity for an unreplicated point, AggregateResults
// for a replicated one, the paired aggregation for a compared one).
type slot struct {
	first, n int
	finish   func(results []Results) (runOut, error)
}

// Run executes the experiment and returns its rows in deterministic order.
// Cancelling ctx stops the sweep promptly: no new simulations start and Run
// returns ctx.Err without waiting for in-flight points (each simulated
// point is indivisible and finishes in the background).
func (e *Experiment) Run(ctx context.Context) ([]Row, error) {
	if e.src == nil {
		return nil, fmt.Errorf("dynlb: Experiment needs a point source (Figure or Sweep)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := checkConfidence(e.o.conf); err != nil {
		return nil, err
	}
	if e.o.seeds != nil && e.o.repsSet {
		return nil, fmt.Errorf("dynlb: WithSeeds and WithReps are mutually exclusive")
	}
	seed := e.src.baseSeed()
	if e.o.seedSet {
		seed = e.o.seed
	}
	jobs, slots, rows, err := e.expand(seed)
	if err != nil {
		return nil, err
	}
	return e.execute(ctx, jobs, slots, rows)
}

// applyOverrides rewrites one planned point's configuration with the
// experiment-wide WithProfile/WithMetricsWindow overrides, before the
// replication stage fans the point out into per-seed jobs.
func (e *Experiment) applyOverrides(c *Config) {
	if e.o.profileSet {
		c.Profile = e.o.profile
	}
	if e.o.windowSet {
		c.MetricsWindow = e.o.window
	}
}

// expand resolves the source at the experiment's options and applies the
// replication/comparison stages, producing the physical job schedule.
func (e *Experiment) expand(seed int64) ([]runJob, []slot, []rowSpec, error) {
	// compareSet, not a nil check on the pair: WithCompare(nil, nil) must be
	// diagnosed, never degrade into a silently uncompared sweep.
	if e.o.compareSet {
		return e.expandCompared(seed)
	}
	p, err := e.src.plan(e.o.scale, e.o.scaleSet, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range p.jobs {
		e.applyOverrides(&p.jobs[i].cfg)
	}
	seeds := e.o.seeds
	if seeds == nil {
		if e.o.reps <= 1 {
			// Unreplicated: each point is its own single-job slot.
			slots := make([]slot, len(p.jobs))
			for i := range p.jobs {
				slots[i] = slot{first: i, n: 1, finish: func(results []Results) (runOut, error) {
					return runOut{res: results[0]}, nil
				}}
			}
			return p.jobs, slots, p.rows, nil
		}
		seeds = stats.ReplicateSeeds(seed, e.o.reps)
	}
	if len(seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("dynlb: WithSeeds needs at least one seed")
	}
	conf := e.o.conf
	all := make([]runJob, 0, len(p.jobs)*len(seeds))
	slots := make([]slot, len(p.jobs))
	for i, j := range p.jobs {
		slots[i] = slot{first: len(all), n: len(seeds), finish: func(results []Results) (runOut, error) {
			mean, rep := AggregateResults(results, conf)
			r := rep
			return runOut{res: mean, rep: &r}, nil
		}}
		for _, s := range seeds {
			c := j.cfg
			c.Seed = s
			all = append(all, runJob{cfg: c, st: j.st})
		}
	}
	return all, slots, p.rows, nil
}

// expandCompared builds the paired-comparison schedule: the source's
// strategy-free workload points, each expanded into replicate × {A, B} jobs
// sharing seeds, with one generic row per point.
func (e *Experiment) expandCompared(seed int64) ([]runJob, []slot, []rowSpec, error) {
	if e.o.cmpA == nil || e.o.cmpB == nil {
		return nil, nil, nil, fmt.Errorf("dynlb: WithCompare needs both a baseline and a challenger strategy")
	}
	seeds := e.o.seeds
	if seeds == nil {
		if e.o.reps < 1 {
			return nil, nil, nil, fmt.Errorf("dynlb: a compared experiment needs reps >= 1, got %d", e.o.reps)
		}
		seeds = stats.ReplicateSeeds(seed, e.o.reps)
	}
	if len(seeds) == 0 {
		return nil, nil, nil, fmt.Errorf("dynlb: WithSeeds needs at least one seed")
	}
	pts, err := e.src.comparePlan(e.o.scale, e.o.scaleSet, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	for i := range pts {
		e.applyOverrides(&pts[i].cfg)
	}
	var (
		label = e.src.label()
		conf  = e.o.conf
		reps  = len(seeds)
		sa    = e.o.cmpA
		sb    = e.o.cmpB
	)
	// Job layout: ((point*reps)+replicate)*2 + {A: 0, B: 1} — fixed, so the
	// paired aggregation is independent of worker scheduling.
	jobs := make([]runJob, 0, len(pts)*reps*2)
	slots := make([]slot, len(pts))
	rows := make([]rowSpec, len(pts))
	for i, pt := range pts {
		slots[i] = slot{first: len(jobs), n: 2 * reps, finish: func(results []Results) (runOut, error) {
			runsA := make([]Results, reps)
			runsB := make([]Results, reps)
			for k := 0; k < reps; k++ {
				runsA[k] = results[2*k]
				runsB[k] = results[2*k+1]
			}
			meanB, repB := AggregateResults(runsB, conf)
			pair, err := CompareResults(runsA, runsB, conf)
			if err != nil {
				return runOut{}, err
			}
			out := runOut{res: meanB, cmp: &pair}
			if reps >= 2 {
				rep := repB
				out.rep = &rep
			}
			return out, nil
		}}
		for _, s := range seeds {
			c := pt.cfg
			c.Seed = s
			jobs = append(jobs, runJob{cfg: c, st: sa}, runJob{cfg: c, st: sb})
		}
		rows[i] = rowSpec{deps: []int{i}, build: func(outs []runOut) (Row, error) {
			out := outs[0]
			series := pt.series
			if series == "" {
				series = fmt.Sprintf("%s vs %s", out.cmp.StrategyB, out.cmp.StrategyA)
			}
			return Row{
				Figure: label, Series: series, X: pt.x, XLabel: pt.xlabel,
				JoinRTMS: out.res.JoinRT.MeanMS,
				Res:      out.res,
				Rep:      out.rep,
				Cmp:      out.cmp,
			}, nil
		}}
	}
	return jobs, slots, rows, nil
}

// execute runs the physical jobs on the worker pool, folds completed slots
// into point outcomes, and emits rows in order as their dependencies
// complete. Workers claim jobs from an atomic counter and report
// completions over a buffered channel, so abandoning the sweep (ctx
// cancelled, job error) never blocks an in-flight worker.
func (e *Experiment) execute(ctx context.Context, jobs []runJob, slots []slot, rows []rowSpec) ([]Row, error) {
	// A cancelled context delivers nothing: without this gate the initial
	// emit below would stream dependency-free rows (e.g. Fig. 1a's analytic
	// curve) that the nil return then disowns.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := e.o.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	// Map each physical job to its slot and count outstanding jobs per slot.
	jobSlot := make([]int, len(jobs))
	pending := make([]int, len(slots))
	for s, sl := range slots {
		pending[s] = sl.n
		for i := sl.first; i < sl.first+sl.n; i++ {
			jobSlot[i] = s
		}
	}

	var (
		results  = make([]Results, len(jobs))
		done     = make(chan int, len(jobs))
		failed   = make(chan error, workers+1)
		next     atomic.Int64
		stop     atomic.Bool
		slotDone = make([]bool, len(slots))
		outs     = make([]runOut, len(slots))
		out      = make([]Row, 0, len(rows))
		nextRow  = 0
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || stop.Load() || ctx.Err() != nil {
					return
				}
				sys, err := engine.New(jobs[i].cfg, jobs[i].st)
				if err != nil {
					stop.Store(true)
					failed <- err
					return
				}
				results[i] = sys.Run()
				done <- i
			}
		}()
	}
	// emit builds and streams every row whose dependencies are complete, in
	// row order, so the progress stream is a deterministic prefix of the
	// final row slice.
	emit := func() error {
		for nextRow < len(rows) {
			rs := &rows[nextRow]
			for _, d := range rs.deps {
				if !slotDone[d] {
					return nil
				}
			}
			depOuts := make([]runOut, len(rs.deps))
			for k, d := range rs.deps {
				depOuts[k] = outs[d]
			}
			r, err := rs.build(depOuts)
			if err != nil {
				return err
			}
			if e.o.keepRuns && len(depOuts) > 0 {
				// The row's own point is its last dependency (earlier deps are
				// references like Fig. 8's improvement baseline).
				r.Runs = depOuts[len(depOuts)-1].runs
			}
			out = append(out, r)
			if e.o.progress != nil {
				e.o.progress(r)
			}
			nextRow++
		}
		return nil
	}
	if err := emit(); err != nil { // rows with no simulation deps
		stop.Store(true)
		return nil, err
	}
	for completed := 0; completed < len(jobs); {
		// Re-check cancellation first: when both a completion and Done are
		// ready, select picks randomly, and a cancelled sweep must not keep
		// draining completions.
		if err := ctx.Err(); err != nil {
			stop.Store(true)
			return nil, err
		}
		select {
		case <-ctx.Done():
			stop.Store(true)
			return nil, ctx.Err()
		case err := <-failed:
			return nil, err
		case i := <-done:
			completed++
			s := jobSlot[i]
			if pending[s]--; pending[s] > 0 {
				continue
			}
			sl := slots[s]
			runs := results[sl.first : sl.first+sl.n]
			o, err := sl.finish(runs)
			if err != nil {
				stop.Store(true)
				return nil, err
			}
			if e.o.keepRuns {
				o.runs = append([]Results(nil), runs...)
			}
			outs[s] = o
			slotDone[s] = true
			if err := emit(); err != nil {
				stop.Store(true)
				return nil, err
			}
		}
	}
	return out, nil
}
