package dynlb

import (
	"math"
	"reflect"
	"testing"

	"dynlb/internal/stats"
)

// TestAggregateResultsMeans: field-wise aggregation over hand-made results
// must produce exact means, rounded counts, and the Student-t half-width.
func TestAggregateResultsMeans(t *testing.T) {
	mk := func(rt float64, tps float64, cpu float64, joins int64) Results {
		return Results{
			Strategy: "X", NPE: 40, PsuOpt: 30, PsuNoIO: 3,
			JoinRT:    Summary{N: int(joins), MeanMS: rt, P95MS: 2 * rt, HW95MS: rt / 10},
			JoinTPS:   tps,
			CPUUtil:   cpu,
			JoinsDone: joins,
		}
	}
	runs := []Results{mk(100, 1, 0.5, 10), mk(110, 2, 0.6, 11), mk(120, 3, 0.7, 13)}
	mean, rep := AggregateResults(runs, 0.95)

	if mean.Strategy != "X" || mean.NPE != 40 || mean.PsuOpt != 30 || mean.PsuNoIO != 3 {
		t.Errorf("identification fields not preserved: %+v", mean)
	}
	if mean.JoinRT.MeanMS != 110 || mean.JoinRT.P95MS != 220 || mean.JoinRT.HW95MS != 11 {
		t.Errorf("JoinRT summary means wrong: %+v", mean.JoinRT)
	}
	if mean.JoinTPS != 2 || math.Abs(mean.CPUUtil-0.6) > 1e-12 {
		t.Errorf("scalar means wrong: tps=%v cpu=%v", mean.JoinTPS, mean.CPUUtil)
	}
	// (10+11+13)/3 = 11.33 rounds to 11.
	if mean.JoinsDone != 11 || mean.JoinRT.N != 11 {
		t.Errorf("count means wrong: JoinsDone=%d N=%d, want 11", mean.JoinsDone, mean.JoinRT.N)
	}

	if rep.Reps != 3 || rep.Conf != 0.95 {
		t.Errorf("rep meta wrong: %+v", rep)
	}
	if rep.JoinRTMS.Mean != 110 {
		t.Errorf("rep mean %v, want 110", rep.JoinRTMS.Mean)
	}
	// sd = 10, t(0.95, df=2) = 4.3027, hw = 4.3027 * 10/sqrt(3).
	want := 4.302652729911275 * 10 / math.Sqrt(3)
	if math.Abs(rep.JoinRTMS.HW-want) > 1e-3 {
		t.Errorf("rep half-width %v, want %v", rep.JoinRTMS.HW, want)
	}
}

func TestAggregateResultsDegenerate(t *testing.T) {
	mean, rep := AggregateResults(nil, 0.95)
	if !reflect.DeepEqual(mean, Results{}) || rep.Reps != 0 {
		t.Errorf("empty aggregation not zero: %+v %+v", mean, rep)
	}
	one := Results{JoinTPS: 5, JoinRT: Summary{MeanMS: 42}}
	mean, rep = AggregateResults([]Results{one}, 0.9)
	if !reflect.DeepEqual(mean, one) {
		t.Errorf("single-run mean differs from the run: %+v", mean)
	}
	if rep.Reps != 1 || rep.JoinRTMS.Mean != 42 || rep.JoinRTMS.HW != 0 {
		t.Errorf("single-run rep: %+v", rep)
	}
}

// TestRunReplicatedExtendsSingleRun: replicate 0 of the standard seed
// stream is the base seed itself, so the first replicated run must be
// field-identical to a plain Run of the same configuration.
func TestRunReplicatedExtendsSingleRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := quickConfig()
	st := MustStrategy("OPT-IO-CPU")
	single, err := Run(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunReplicated(cfg, st, ReplicateSeeds(cfg.Seed, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 || rep.Rep.Reps != 3 || rep.Rep.Conf != DefaultConfidence {
		t.Fatalf("replication shape: %d runs, rep %+v", len(rep.Runs), rep.Rep)
	}
	if !reflect.DeepEqual(rep.Runs[0], single) {
		t.Errorf("replicate 0 differs from the unreplicated run:\nrep0:   %+v\nsingle: %+v", rep.Runs[0], single)
	}
	// The aggregate mean must be bracketed by the replicate extremes.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rep.Runs {
		lo = math.Min(lo, r.JoinRT.MeanMS)
		hi = math.Max(hi, r.JoinRT.MeanMS)
	}
	if rep.Mean.JoinRT.MeanMS < lo || rep.Mean.JoinRT.MeanMS > hi {
		t.Errorf("mean RT %v outside replicate range [%v, %v]", rep.Mean.JoinRT.MeanMS, lo, hi)
	}
	if rep.Rep.JoinRTMS.Mean != rep.Mean.JoinRT.MeanMS {
		t.Errorf("Rep mean %v != Mean results %v", rep.Rep.JoinRTMS.Mean, rep.Mean.JoinRT.MeanMS)
	}
}

func TestRunReplicatedRejectsBadArgs(t *testing.T) {
	cfg := quickConfig()
	st := MustStrategy("MIN-IO")
	if _, err := RunReplicated(cfg, st, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := RunReplicatedConf(cfg, st, []int64{1, 2}, 1.5); err == nil {
		t.Error("confidence 1.5 accepted")
	}
	if _, err := RunReplicatedConf(cfg, st, []int64{1, 2}, 0); err == nil {
		t.Error("confidence 0 accepted")
	}
	bad := cfg
	bad.NPE = 0
	if _, err := RunReplicated(bad, st, []int64{1}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestReplicateSeedsReExport: the root-package re-export must match the
// stats stream (the contract both commands and the figure harness rely on).
func TestReplicateSeedsReExport(t *testing.T) {
	if got, want := ReplicateSeeds(7, 5), stats.ReplicateSeeds(7, 5); !reflect.DeepEqual(got, want) {
		t.Errorf("ReplicateSeeds diverged from internal/stats: %v vs %v", got, want)
	}
	seeds := ReplicateSeeds(7, 5)
	if seeds[0] != 7 {
		t.Errorf("replicate 0 seed %d, want base 7", seeds[0])
	}
}
