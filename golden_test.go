package dynlb

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden CSV files under testdata/")

// Golden-row regression tests: the quick-scale fig1a and fig6 sweeps (seed
// 1, reps 1) and the fig8 paired-comparison sweep (seed 1, reps 2) are
// locked as exact CSV bytes. Any kernel, engine, cost model, statistics or
// row-shaping change that moves a reproduced curve — even in the last
// decimal — fails here and must either be fixed or explicitly re-golded
// with `go test -run TestGolden -update .`. The simulator is a
// deterministic integer-time DES and Go floating point is reproducible on
// amd64, so the bytes are stable across runs and worker counts (the sweeps
// run on NumCPU workers, so the goldens double as a parallelism-invariance
// check).

// skipUnlessGoldenArch skips before any sweep simulates: other
// architectures may fuse multiply-adds, shifting metrics in the last
// decimal, and the goldens are amd64 bytes — running minutes of simulation
// just to skip would waste the machine.
func skipUnlessGoldenArch(t *testing.T) {
	t.Helper()
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden bytes recorded on amd64; GOARCH=%s may differ in the last float digit", runtime.GOARCH)
	}
}

// lockGolden compares the rows' CSV bytes against testdata/file. With
// -update it creates testdata/ if missing and rewrites the golden, printing
// to stderr which files were rewritten (and which were already current), so
// the re-gold is visible without -v.
func lockGolden(t *testing.T, file string, rows []Row) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, buf.Bytes()) {
			fmt.Fprintf(os.Stderr, "golden: %s already current (%d rows)\n", path, len(rows))
			return
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "golden: rewrote %s (%d rows, %d bytes)\n", path, len(rows), buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("quick-scale CSV drifted from %s.\nRe-run with -update if the change is intentional.\n%s",
			path, diffLines(want, buf.Bytes()))
	}
}

func goldenSweep(t *testing.T, fig, file string) {
	t.Helper()
	skipUnlessGoldenArch(t)
	rows, err := RunFigureReplicated(fig, ScaleQuick, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	lockGolden(t, file, rows)
}

// diffLines renders the first few differing lines of two CSV bodies.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	out := ""
	shown := 0
	for i := 0; i < n && shown < 5; i++ {
		var wl, gl []byte
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if !bytes.Equal(wl, gl) {
			out += fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s\n", i+1, wl, gl)
			shown++
		}
	}
	return out
}

func TestGoldenFig1aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	goldenSweep(t, "1a", "fig1a_quick.csv")
}

func TestGoldenFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulation sweep on small machines")
	}
	goldenSweep(t, "6", "fig6_quick.csv")
}

// TestGoldenFig8CompareQuick locks the paired-comparison CSV shape and
// bytes: Fig. 8's workload axis swept under psu-opt+RANDOM (the paper's
// baseline) vs OPT-IO-CPU with three shared replicate seeds — replication
// plus comparison columns in one file. Three replicates, not two: with
// n=2 any non-constant pair has sample correlation exactly ±1, so the
// locked rt_corr values would be degenerate rather than evidence of the
// variance reduction.
func TestGoldenFig8CompareQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	skipUnlessGoldenArch(t)
	rows, err := RunFigureCompared("8", ScaleQuick, 1, "psu-opt+RANDOM", "OPT-IO-CPU", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	lockGolden(t, "fig8_compare_quick.csv", rows)
}
