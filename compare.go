package dynlb

import (
	"context"
	"fmt"
	"strings"

	"dynlb/internal/stats"
)

// DeltaCI compares one metric between a baseline strategy A and a
// challenger B across paired replicates run on identical seeds (common
// random numbers). Delta is the per-replicate difference B − A with its
// paired-t confidence half-width; Improv is the per-replicate relative
// improvement 100·(A − B)/A — positive when B is smaller, i.e. better on
// lower-is-better metrics such as response time. UnpairedDeltaHW and
// UnpairedImprovHW are the half-widths the same replicate count would give
// with independent seeds (the two-sample interval on the same data); with
// the positive correlation common random numbers induce, the paired
// half-widths are the tighter ones. Corr is the sample correlation of the
// pairs — the share of run-to-run variance the shared seeds cancel.
type DeltaCI struct {
	A     float64 `json:"a"`     // across-replicate mean under A
	B     float64 `json:"b"`     // across-replicate mean under B
	Delta MeanCI  `json:"delta"` // B − A, paired-t half-width
	// Improv is the mean per-pair relative improvement 100·(A − B)/A in %,
	// with its paired-t half-width. The ratio is defined iff the pair's A
	// value is non-zero: pairs with A exactly 0 carry no relative
	// information and are excluded from the mean, and a metric whose
	// baseline is zero in every replicate (e.g. OLTP response time without
	// an OLTP workload) reports 0 — never ±Inf or NaN.
	Improv           MeanCI  `json:"improv"`
	UnpairedDeltaHW  float64 `json:"unpaired_delta_hw"`  // independent-seed half-width on B − A
	UnpairedImprovHW float64 `json:"unpaired_improv_hw"` // independent-seed half-width on the improvement
	Corr             float64 `json:"corr"`               // sample correlation of the paired replicates
}

// String renders the compared metric as "A→B Δmean ±hw (improv% ±hw)".
func (d DeltaCI) String() string {
	return fmt.Sprintf("%.2f→%.2f Δ%+.2f ±%.2f (%+.1f%% ±%.1f)",
		d.A, d.B, d.Delta.Mean, d.Delta.HW, d.Improv.Mean, d.Improv.HW)
}

// PairedComparison carries the paired "A vs B" aggregates of every headline
// metric for one configuration or sweep point, mirroring Replication's
// metric set.
type PairedComparison struct {
	StrategyA string  `json:"strategy_a"` // baseline
	StrategyB string  `json:"strategy_b"` // challenger
	Reps      int     `json:"reps"`       // pairs aggregated
	Conf      float64 `json:"conf"`

	JoinRTMS DeltaCI `json:"join_rt_ms"` // join response time, ms
	JoinTPS  DeltaCI `json:"join_tps"`   // join throughput, queries/s
	OLTPRTMS DeltaCI `json:"oltp_rt_ms"` // OLTP response time, ms (zero without OLTP workload)
	CPUUtil  DeltaCI `json:"cpu_util"`   // mean CPU utilization, 0..1
	DiskUtil DeltaCI `json:"disk_util"`  // mean disk utilization, 0..1
	MemUtil  DeltaCI `json:"mem_util"`   // mean memory utilization, 0..1
	Degree   DeltaCI `json:"degree"`     // achieved degree of join parallelism
	TempIO   DeltaCI `json:"temp_io"`    // temporary-file I/O pages in the window
}

// Comparison bundles a paired head-to-head run of two strategies: the full
// replicated outcome of each side (identical seed lists) plus the paired
// per-metric aggregates.
type Comparison struct {
	A, B Replicated       // per-strategy replicated outcomes, same seeds
	Pair PairedComparison // paired deltas and improvements with CIs
}

// SplitCompare parses an "A,B" comparison spec — two comma-separated
// strategy names, as both commands' -compare flags take — into the
// baseline and challenger names. It trims surrounding spaces and rejects
// anything but exactly two non-empty parts.
func SplitCompare(spec string) (a, b string, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return "", "", fmt.Errorf("dynlb: comparison spec %q: want two comma-separated strategy names", spec)
	}
	a, b = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	if a == "" || b == "" {
		return "", "", fmt.Errorf("dynlb: comparison spec %q: want two comma-separated strategy names", spec)
	}
	return a, b, nil
}

// Compare runs strategies A and B once each on cfg's seed and returns the
// per-metric deltas and relative improvements (half-widths are zero with a
// single pair; replicate with CompareReplicated for confidence intervals).
//
// Deprecated: use the Experiment API over a single-point Sweep:
//
//	NewExperiment(Sweep{Base: cfg}, WithCompare(a, b)).Run(ctx)
func Compare(cfg Config, a, b Strategy) (Comparison, error) {
	return CompareReplicatedConf(cfg, a, b, []int64{cfg.Seed}, DefaultConfidence)
}

// CompareReplicated runs strategies A and B on identical replicate seeds —
// each seed simulated once per strategy, all runs fanned through the worker
// pool — and aggregates the paired per-replicate deltas at the default 95%
// confidence level. Derive seeds with ReplicateSeeds for the standard
// deterministic stream.
//
// Deprecated: use the Experiment API over a single-point Sweep (WithRuns
// recovers the per-replicate Results, {A, B}-interleaved per seed):
//
//	NewExperiment(Sweep{Base: cfg}, WithCompare(a, b), WithSeeds(seeds...), WithRuns()).Run(ctx)
func CompareReplicated(cfg Config, a, b Strategy, seeds []int64) (Comparison, error) {
	return CompareReplicatedConf(cfg, a, b, seeds, DefaultConfidence)
}

// CompareReplicatedConf is CompareReplicated at an explicit confidence
// level in (0, 1).
//
// Deprecated: use the Experiment API with WithConfidence(conf).
func CompareReplicatedConf(cfg Config, a, b Strategy, seeds []int64, conf float64) (Comparison, error) {
	if len(seeds) == 0 {
		return Comparison{}, fmt.Errorf("dynlb: CompareReplicated needs at least one seed")
	}
	rows, err := NewExperiment(Sweep{Base: cfg},
		WithCompare(a, b), WithSeeds(seeds...), WithConfidence(conf),
		WithRuns()).Run(context.Background())
	if err != nil {
		return Comparison{}, err
	}
	// The row's raw runs interleave the pair per seed: {A, B} per replicate.
	// Both sides aggregate here from those runs with the same pure functions
	// the pipeline uses (the row only carries B's aggregates, and A's are
	// needed symmetrically), so the values cannot diverge from the row's.
	raw := rows[0].Runs
	runsA := make([]Results, len(seeds))
	runsB := make([]Results, len(seeds))
	for i := range seeds {
		runsA[i] = raw[2*i]
		runsB[i] = raw[2*i+1]
	}
	meanA, repA := AggregateResults(runsA, conf)
	meanB, repB := AggregateResults(runsB, conf)
	return Comparison{
		A:    Replicated{Runs: runsA, Mean: meanA, Rep: repA},
		B:    Replicated{Runs: runsB, Mean: meanB, Rep: repB},
		Pair: *rows[0].Cmp,
	}, nil
}

// CompareResults computes the paired aggregates of two equal-length result
// slices where runsA[k] and runsB[k] simulated the same replicate seed
// under strategies A and B. Pairs are consumed in slice order, so the
// aggregate is deterministic for a fixed replicate set regardless of how
// many workers produced the runs.
func CompareResults(runsA, runsB []Results, conf float64) (PairedComparison, error) {
	if len(runsA) == 0 {
		return PairedComparison{}, fmt.Errorf("dynlb: CompareResults needs at least one pair")
	}
	if len(runsA) != len(runsB) {
		return PairedComparison{}, fmt.Errorf("dynlb: CompareResults pair mismatch: %d A runs vs %d B runs", len(runsA), len(runsB))
	}
	if err := checkConfidence(conf); err != nil {
		return PairedComparison{}, err
	}
	pc := PairedComparison{
		StrategyA: runsA[0].Strategy,
		StrategyB: runsB[0].Strategy,
		Reps:      len(runsA),
		Conf:      conf,
	}
	pair := func(dst *DeltaCI, get func(*Results) float64) {
		var p stats.Paired
		for k := range runsA {
			p.Add(get(&runsA[k]), get(&runsB[k]))
		}
		*dst = DeltaCI{
			A:                p.MeanA(),
			B:                p.MeanB(),
			Delta:            MeanCI{Mean: p.DeltaMean(), HW: p.DeltaHalfWidth(conf)},
			Improv:           MeanCI{Mean: p.ImprovementMean(), HW: p.ImprovementHalfWidth(conf)},
			UnpairedDeltaHW:  p.UnpairedDeltaHalfWidth(conf),
			UnpairedImprovHW: p.UnpairedImprovementHalfWidth(conf),
			Corr:             p.Correlation(),
		}
	}
	pair(&pc.JoinRTMS, func(r *Results) float64 { return r.JoinRT.MeanMS })
	pair(&pc.JoinTPS, func(r *Results) float64 { return r.JoinTPS })
	pair(&pc.OLTPRTMS, func(r *Results) float64 { return r.OLTPRT.MeanMS })
	pair(&pc.CPUUtil, func(r *Results) float64 { return r.CPUUtil })
	pair(&pc.DiskUtil, func(r *Results) float64 { return r.DiskUtil })
	pair(&pc.MemUtil, func(r *Results) float64 { return r.MemUtil })
	pair(&pc.Degree, func(r *Results) float64 { return r.AvgJoinDegree })
	pair(&pc.TempIO, func(r *Results) float64 { return float64(r.TempIOPages) })
	return pc, nil
}
