package dynlb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"time"

	"dynlb/internal/sim"
)

// WriteRowsJSON writes experiment rows as one pretty-printed JSON array so
// sweep results are machine-consumable without CSV parsing. Unlike the
// positional CSV columns, every row is self-describing: the coordinates and
// headline response time at the top level, the full run Results under
// "results", and — when present — the replicate aggregates under
// "replication", the paired A-vs-B aggregates under "comparison" and the
// windowed transient metrics inside "results" ("windows", "window_ms",
// "peak_window_rt_ms", "recovery_ms" — absent fields are omitted, so
// unreplicated and steady-state rows stay small). An empty row set encodes
// as [], not null.
//
// encoding/json rejects non-finite floats outright, which would fail an
// entire sweep export over one degenerate metric (a ±Inf improvement ratio
// against a zero baseline, a NaN correlation of constant replicates — the
// upstream aggregations guard the known cases, but the export must not be
// the component that dies). Any residual NaN/±Inf metric is therefore
// written as 0, on a copy: the caller's rows are never modified.
func WriteRowsJSON(out io.Writer, rows []Row) error {
	if rows == nil {
		rows = []Row{}
	}
	rows = sanitizeRows(rows)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// sanitizeRows returns rows with every reachable non-finite float replaced
// by 0. The clean case — every export but a degenerate one — returns the
// input slice untouched with no copying; a dirty set is scrubbed on copies,
// cloning shared pointers, slices and maps before mutating them.
func sanitizeRows(rows []Row) []Row {
	dirty := false
	for i := range rows {
		if hasNonFinite(reflect.ValueOf(rows[i])) {
			dirty = true
			break
		}
	}
	if !dirty {
		return rows
	}
	clone := make([]Row, len(rows))
	copy(clone, rows)
	for i := range clone {
		scrub(reflect.ValueOf(&clone[i]).Elem())
	}
	return clone
}

// scrub replaces every non-finite float reachable from v with 0. v must be
// addressable; nested pointers, slices and maps are cloned before mutation
// (and only when they actually contain a non-finite value), so data shared
// with the caller is never written to.
func scrub(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			v.SetFloat(0)
		}
	case reflect.Pointer:
		if v.IsNil() || !hasNonFinite(v.Elem()) {
			return
		}
		c := reflect.New(v.Type().Elem())
		c.Elem().Set(v.Elem())
		scrub(c.Elem())
		v.Set(c)
	case reflect.Slice:
		if v.IsNil() || !hasNonFinite(v) {
			return
		}
		c := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		reflect.Copy(c, v)
		for i := 0; i < c.Len(); i++ {
			scrub(c.Index(i))
		}
		v.Set(c)
	case reflect.Map:
		if v.IsNil() || !hasNonFinite(v) {
			return
		}
		c := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			// Map values are not addressable: scrub a settable copy.
			mv := reflect.New(iter.Value().Type()).Elem()
			mv.Set(iter.Value())
			scrub(mv)
			c.SetMapIndex(iter.Key(), mv)
		}
		v.Set(c)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				scrub(f)
			}
		}
	}
}

// MarshalRowJSON encodes one row as compact single-line JSON — the SSE
// data-frame form internal/service streams — with the same non-finite
// sanitization as WriteRowsJSON. The encoding round-trips exactly: every
// float64 is written in its shortest exact form, so a Row decoded from the
// output reproduces the original byte for byte through WriteRowsCSV.
func MarshalRowJSON(r Row) ([]byte, error) {
	return json.Marshal(sanitizeRows([]Row{r})[0])
}

// ExperimentRequest is the wire form of an Experiment: a JSON document
// selecting a point source — one of Figure or Sweep — plus the With*
// options, as submitted to the dynlbd service (POST /v1/experiments) or
// any other out-of-process driver. Zero-valued fields mean "option not
// given", so the document composes exactly like the functional options:
//
//	{"figure": "1c", "scale": "quick"}
//	{"sweep": {"base": {"NPE": 40}, "strategies": ["OPT-IO-CPU"],
//	           "axes": [{"name": "disks/PE", "field": "DisksPerPE", "values": [1, 2, 5, 10]}]},
//	 "reps": 5, "confidence": 0.99}
//
// Workers is a local parallelism hint only — rows are bit-identical at any
// worker count — and is therefore excluded from CacheKey.
type ExperimentRequest struct {
	Figure string     `json:"figure,omitempty"` // paper figure id (Figures lists them)
	Sweep  *SweepSpec `json:"sweep,omitempty"`  // user-defined sweep; mutually exclusive with Figure

	Scale      string   `json:"scale,omitempty"`      // "quick", "normal", "full" (WithScale)
	Seed       *int64   `json:"seed,omitempty"`       // WithSeed; nil keeps the source default
	Reps       int      `json:"reps,omitempty"`       // WithReps (>= 2 adds confidence intervals)
	Seeds      []int64  `json:"seeds,omitempty"`      // WithSeeds; mutually exclusive with Reps
	Confidence float64  `json:"confidence,omitempty"` // WithConfidence; 0 means DefaultConfidence
	Compare    []string `json:"compare,omitempty"`    // [baseline, challenger] strategy names (WithCompare)
	Profile    string   `json:"profile,omitempty"`    // load-profile spec (ParseProfile / WithProfile)
	Faults     string   `json:"faults,omitempty"`     // fault-plan spec (ParseFaults / WithFaults)
	Window     string   `json:"window,omitempty"`     // metrics window width, e.g. "1s" (WithMetricsWindow)
	Runs       bool     `json:"runs,omitempty"`       // WithRuns
	Workers    int      `json:"workers,omitempty"`    // WithWorkers hint; never changes rows
}

// SweepSpec is the wire form of a Sweep: the base configuration (absent
// fields keep their DefaultConfig values), the strategy names, and the
// axes. Decoding always materializes Base, so a decoded spec is
// self-contained.
type SweepSpec struct {
	Name       string     `json:"name,omitempty"`
	Base       *Config    `json:"base,omitempty"`
	Strategies []string   `json:"strategies,omitempty"`
	Axes       []AxisSpec `json:"axes,omitempty"`
}

// UnmarshalJSON decodes a sweep spec with DefaultConfig as the base-config
// baseline: a request only states the fields it changes, exactly like
// mutating DefaultConfig() in code.
func (s *SweepSpec) UnmarshalJSON(data []byte) error {
	type plain SweepSpec // drops the method, avoiding recursion
	base := DefaultConfig()
	p := plain{Base: &base}
	if err := json.Unmarshal(data, &p); err != nil {
		return err
	}
	*s = SweepSpec(p)
	return nil
}

// AxisSpec is the wire form of an Axis: either a numeric axis over a named
// Config field (NumAxis/IntAxis) or a profile axis over load-profile specs
// (ProfileAxis). Field is a dotted path of exported Config field names —
// "NPE", "JoinQPSPerPE", "OLTP.TPSPerNode", "Disk.CacheSize" — resolving
// to an integer, float or Duration field (Duration values are given in
// seconds).
type AxisSpec struct {
	Name     string    `json:"name"`
	Field    string    `json:"field,omitempty"`
	Values   []float64 `json:"values,omitempty"`
	Profiles []string  `json:"profiles,omitempty"` // ParseProfile specs; mutually exclusive with Field
}

// axis compiles the spec into an executable Axis, validating the field
// path and value domain up front so a bad request fails at build time, not
// mid-sweep.
func (a AxisSpec) axis() (Axis, error) {
	if a.Name == "" {
		return Axis{}, fmt.Errorf("dynlb: axis needs a name")
	}
	if len(a.Profiles) > 0 {
		if a.Field != "" || len(a.Values) > 0 {
			return Axis{}, fmt.Errorf("dynlb: axis %q mixes profiles with field/values", a.Name)
		}
		profiles := make([]LoadProfile, len(a.Profiles))
		for i, spec := range a.Profiles {
			p, err := ParseProfile(spec)
			if err != nil {
				return Axis{}, fmt.Errorf("dynlb: axis %q: %w", a.Name, err)
			}
			profiles[i] = p
		}
		return ProfileAxis(a.Name, profiles...), nil
	}
	if a.Field == "" || len(a.Values) == 0 {
		return Axis{}, fmt.Errorf("dynlb: axis %q needs a field and values (or profiles)", a.Name)
	}
	scratch := DefaultConfig()
	kind, err := configFieldKind(&scratch, a.Field)
	if err != nil {
		return Axis{}, fmt.Errorf("dynlb: axis %q: %w", a.Name, err)
	}
	if kind == reflect.Int || kind == reflect.Int64 {
		for _, v := range a.Values {
			if v != math.Trunc(v) {
				return Axis{}, fmt.Errorf("dynlb: axis %q: value %v for integer field %s", a.Name, v, a.Field)
			}
		}
	}
	field := a.Field
	return NumAxis(a.Name, func(c *Config, v float64) { setConfigField(c, field, v) }, a.Values...), nil
}

// durationType is the reflect.Type of sim.Duration, which JSON axes set in
// seconds rather than raw nanoseconds.
var durationType = reflect.TypeOf(sim.Duration(0))

// configFieldKind resolves a dotted field path on Config and reports the
// kind an axis may set (Int/Int64 for integer fields — Duration included —
// Float64 otherwise).
func configFieldKind(c *Config, path string) (reflect.Kind, error) {
	v, err := configField(c, path)
	if err != nil {
		return 0, err
	}
	switch v.Kind() {
	case reflect.Int, reflect.Int64:
		if v.Type() == durationType {
			return reflect.Float64, nil // set in (possibly fractional) seconds
		}
		return v.Kind(), nil
	case reflect.Float64:
		return reflect.Float64, nil
	default:
		return 0, fmt.Errorf("field %s is a %s, not a numeric axis target", path, v.Type())
	}
}

// configField walks a dotted path of exported field names from Config.
func configField(c *Config, path string) (reflect.Value, error) {
	v := reflect.ValueOf(c).Elem()
	for _, name := range strings.Split(path, ".") {
		if v.Kind() != reflect.Struct {
			return reflect.Value{}, fmt.Errorf("field %s does not resolve to a struct field", path)
		}
		f := v.FieldByName(name)
		if !f.IsValid() {
			return reflect.Value{}, fmt.Errorf("unknown Config field %q in path %s", name, path)
		}
		v = f
	}
	return v, nil
}

// setConfigField applies one axis value; the path was validated when the
// axis compiled, so resolution cannot fail here.
func setConfigField(c *Config, path string, val float64) {
	v, err := configField(c, path)
	if err != nil {
		return
	}
	switch {
	case v.Type() == durationType:
		v.SetInt(int64(sim.FromSeconds(val)))
	case v.Kind() == reflect.Int || v.Kind() == reflect.Int64:
		v.SetInt(int64(val))
	case v.Kind() == reflect.Float64:
		v.SetFloat(val)
	}
}

// Experiment compiles the request into a runnable Experiment, validating
// the source, strategy names and option values. The result is equivalent
// to building the same Sweep/Figure and options in code: bit-identical
// rows at any worker count.
func (r *ExperimentRequest) Experiment() (*Experiment, error) {
	src, err := r.source()
	if err != nil {
		return nil, err
	}
	var opts []Option
	if r.Scale != "" {
		sc, err := ParseScale(r.Scale)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithScale(sc))
	}
	if r.Seed != nil {
		opts = append(opts, WithSeed(*r.Seed))
	}
	if r.Reps != 0 {
		opts = append(opts, WithReps(r.Reps))
	}
	if len(r.Seeds) > 0 {
		opts = append(opts, WithSeeds(r.Seeds...))
	}
	if r.Confidence != 0 {
		opts = append(opts, WithConfidence(r.Confidence))
	}
	if len(r.Compare) > 0 {
		if len(r.Compare) != 2 {
			return nil, fmt.Errorf("dynlb: compare wants [baseline, challenger], got %d names", len(r.Compare))
		}
		sa, err := StrategyByName(r.Compare[0])
		if err != nil {
			return nil, err
		}
		sb, err := StrategyByName(r.Compare[1])
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithCompare(sa, sb))
	}
	if r.Profile != "" {
		p, err := ParseProfile(r.Profile)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithProfile(p))
	}
	if r.Faults != "" {
		fp, err := ParseFaults(r.Faults)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithFaults(fp))
	}
	if r.Window != "" {
		d, err := time.ParseDuration(r.Window)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("dynlb: window %q: want a positive duration like 1s or 500ms", r.Window)
		}
		opts = append(opts, WithMetricsWindow(Duration(d)))
	}
	if r.Runs {
		opts = append(opts, WithRuns())
	}
	if r.Workers != 0 {
		opts = append(opts, WithWorkers(r.Workers))
	}
	exp := NewExperiment(src, opts...)
	// Surface plan-time errors (unknown figure, empty axis, bad strategy
	// name) at request validation, not first execution.
	if _, err := exp.Plan(); err != nil {
		return nil, err
	}
	return exp, nil
}

// source builds the request's point source.
func (r *ExperimentRequest) source() (Source, error) {
	switch {
	case r.Figure != "" && r.Sweep != nil:
		return nil, fmt.Errorf("dynlb: request gives both figure and sweep; pick one")
	case r.Figure != "":
		return Figure(r.Figure), nil
	case r.Sweep != nil:
		return r.Sweep.sweep()
	default:
		return nil, fmt.Errorf("dynlb: request needs a figure or a sweep")
	}
}

// sweep compiles the spec into a Sweep.
func (s *SweepSpec) sweep() (Sweep, error) {
	sw := Sweep{Name: s.Name}
	if s.Base != nil {
		sw.Base = *s.Base
	} else {
		sw.Base = DefaultConfig()
	}
	for _, name := range s.Strategies {
		st, err := StrategyByName(name)
		if err != nil {
			return Sweep{}, err
		}
		sw.Strategies = append(sw.Strategies, st)
	}
	for _, as := range s.Axes {
		ax, err := as.axis()
		if err != nil {
			return Sweep{}, err
		}
		sw.Axes = append(sw.Axes, ax)
	}
	return sw, nil
}

// CacheKey returns the canonical form of the request — the result-cache
// key of the dynlbd service. Every field that can change a row is resolved
// to its effective value (scale, seed, reps, confidence, the full base
// config), so two spellings of the same experiment collide; Workers is
// dropped because rows are bit-identical at any parallelism.
func (r *ExperimentRequest) CacheKey() (string, error) {
	n := *r
	n.Workers = 0
	if n.Reps == 0 && len(n.Seeds) == 0 {
		n.Reps = 1
	}
	if n.Confidence == 0 {
		n.Confidence = DefaultConfidence
	}
	if n.Sweep != nil {
		sw := *n.Sweep
		if sw.Base == nil {
			base := DefaultConfig()
			sw.Base = &base
		}
		n.Sweep = &sw
	}
	if n.Seed == nil {
		seed := int64(1) // Figure default
		if n.Sweep != nil {
			seed = n.Sweep.Base.Seed
		}
		n.Seed = &seed
	}
	if n.Scale == "" && n.Figure != "" {
		n.Scale = ScaleNormal.String()
	}
	key, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	return string(key), nil
}

// hasNonFinite reports whether any float reachable from v is NaN or ±Inf.
func hasNonFinite(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		return math.IsNaN(f) || math.IsInf(f, 0)
	case reflect.Pointer:
		return !v.IsNil() && hasNonFinite(v.Elem())
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if hasNonFinite(v.Index(i)) {
				return true
			}
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			if hasNonFinite(iter.Value()) {
				return true
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if hasNonFinite(v.Field(i)) {
				return true
			}
		}
	}
	return false
}
