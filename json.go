package dynlb

import (
	"encoding/json"
	"io"
	"math"
	"reflect"
)

// WriteRowsJSON writes experiment rows as one pretty-printed JSON array so
// sweep results are machine-consumable without CSV parsing. Unlike the
// positional CSV columns, every row is self-describing: the coordinates and
// headline response time at the top level, the full run Results under
// "results", and — when present — the replicate aggregates under
// "replication", the paired A-vs-B aggregates under "comparison" and the
// windowed transient metrics inside "results" ("windows", "window_ms",
// "peak_window_rt_ms", "recovery_ms" — absent fields are omitted, so
// unreplicated and steady-state rows stay small). An empty row set encodes
// as [], not null.
//
// encoding/json rejects non-finite floats outright, which would fail an
// entire sweep export over one degenerate metric (a ±Inf improvement ratio
// against a zero baseline, a NaN correlation of constant replicates — the
// upstream aggregations guard the known cases, but the export must not be
// the component that dies). Any residual NaN/±Inf metric is therefore
// written as 0, on a copy: the caller's rows are never modified.
func WriteRowsJSON(out io.Writer, rows []Row) error {
	if rows == nil {
		rows = []Row{}
	}
	rows = sanitizeRows(rows)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// sanitizeRows returns rows with every reachable non-finite float replaced
// by 0. The clean case — every export but a degenerate one — returns the
// input slice untouched with no copying; a dirty set is scrubbed on copies,
// cloning shared pointers, slices and maps before mutating them.
func sanitizeRows(rows []Row) []Row {
	dirty := false
	for i := range rows {
		if hasNonFinite(reflect.ValueOf(rows[i])) {
			dirty = true
			break
		}
	}
	if !dirty {
		return rows
	}
	clone := make([]Row, len(rows))
	copy(clone, rows)
	for i := range clone {
		scrub(reflect.ValueOf(&clone[i]).Elem())
	}
	return clone
}

// scrub replaces every non-finite float reachable from v with 0. v must be
// addressable; nested pointers, slices and maps are cloned before mutation
// (and only when they actually contain a non-finite value), so data shared
// with the caller is never written to.
func scrub(v reflect.Value) {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		if f := v.Float(); math.IsNaN(f) || math.IsInf(f, 0) {
			v.SetFloat(0)
		}
	case reflect.Pointer:
		if v.IsNil() || !hasNonFinite(v.Elem()) {
			return
		}
		c := reflect.New(v.Type().Elem())
		c.Elem().Set(v.Elem())
		scrub(c.Elem())
		v.Set(c)
	case reflect.Slice:
		if v.IsNil() || !hasNonFinite(v) {
			return
		}
		c := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		reflect.Copy(c, v)
		for i := 0; i < c.Len(); i++ {
			scrub(c.Index(i))
		}
		v.Set(c)
	case reflect.Map:
		if v.IsNil() || !hasNonFinite(v) {
			return
		}
		c := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			// Map values are not addressable: scrub a settable copy.
			mv := reflect.New(iter.Value().Type()).Elem()
			mv.Set(iter.Value())
			scrub(mv)
			c.SetMapIndex(iter.Key(), mv)
		}
		v.Set(c)
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if f := v.Field(i); f.CanSet() {
				scrub(f)
			}
		}
	}
}

// hasNonFinite reports whether any float reachable from v is NaN or ±Inf.
func hasNonFinite(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Float32, reflect.Float64:
		f := v.Float()
		return math.IsNaN(f) || math.IsInf(f, 0)
	case reflect.Pointer:
		return !v.IsNil() && hasNonFinite(v.Elem())
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if hasNonFinite(v.Index(i)) {
				return true
			}
		}
	case reflect.Map:
		iter := v.MapRange()
		for iter.Next() {
			if hasNonFinite(iter.Value()) {
				return true
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if hasNonFinite(v.Field(i)) {
				return true
			}
		}
	}
	return false
}
