package dynlb

import (
	"encoding/json"
	"io"
)

// WriteRowsJSON writes experiment rows as one pretty-printed JSON array so
// sweep results are machine-consumable without CSV parsing. Unlike the
// positional CSV columns, every row is self-describing: the coordinates and
// headline response time at the top level, the full run Results under
// "results", and — when present — the replicate aggregates under
// "replication" and the paired A-vs-B aggregates under "comparison"
// (absent fields are omitted, so unreplicated rows stay small). An empty
// row set encodes as [], not null.
func WriteRowsJSON(out io.Writer, rows []Row) error {
	if rows == nil {
		rows = []Row{}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
