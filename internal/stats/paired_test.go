package stats

import (
	"math"
	"testing"
)

// tCrit95df2 is TQuantile(0.95, 2), cross-checked against published tables.
const tCrit95df2 = 4.302652729911275

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestPairedHandValues locks the accumulator against hand-computed
// statistics on perfectly correlated pairs: b_k is a constant 10% below
// a_k, so the improvement stream is exactly {10, 10, 10} (zero spread) and
// the implied correlation is exactly 1.
func TestPairedHandValues(t *testing.T) {
	var p Paired
	for _, pair := range [][2]float64{{100, 90}, {110, 99}, {120, 108}} {
		p.Add(pair[0], pair[1])
	}
	if p.N() != 3 || p.ImprovementN() != 3 {
		t.Fatalf("N=%d ImprovementN=%d, want 3", p.N(), p.ImprovementN())
	}
	approx(t, "MeanA", p.MeanA(), 110, 1e-12)
	approx(t, "MeanB", p.MeanB(), 99, 1e-12)
	approx(t, "DeltaMean", p.DeltaMean(), -11, 1e-12)
	// deltas {-10, -11, -12}: sd 1, HW = t·1/sqrt(3).
	approx(t, "DeltaHalfWidth", p.DeltaHalfWidth(0.95), tCrit95df2/math.Sqrt(3), 1e-9)
	approx(t, "ImprovementMean", p.ImprovementMean(), 10, 1e-12)
	approx(t, "ImprovementHalfWidth", p.ImprovementHalfWidth(0.95), 0, 1e-9)
	// s²A = 100, s²B = 81: unpaired HW = t·sqrt(181/3).
	wantUnpaired := tCrit95df2 * math.Sqrt(181.0/3)
	approx(t, "UnpairedDeltaHalfWidth", p.UnpairedDeltaHalfWidth(0.95), wantUnpaired, 1e-6)
	approx(t, "UnpairedImprovementHalfWidth", p.UnpairedImprovementHalfWidth(0.95), 100*wantUnpaired/110, 1e-6)
	// corr = (100 + 81 − 1) / (2·10·9) = 1 exactly.
	approx(t, "Correlation", p.Correlation(), 1, 1e-12)

	if hw, unp := p.DeltaHalfWidth(0.95), p.UnpairedDeltaHalfWidth(0.95); hw >= unp {
		t.Errorf("positively correlated pairs: paired HW %v not below unpaired %v", hw, unp)
	}
}

// TestPairedNegativeCorrelation: with anti-correlated pairs the variance
// cancellation reverses — the paired interval is WIDER than the unpaired
// one, and the implied correlation is −1. (Common random numbers only pay
// off with positive correlation; the accumulator must report, not assume.)
func TestPairedNegativeCorrelation(t *testing.T) {
	var p Paired
	for _, pair := range [][2]float64{{100, 108}, {110, 99}, {120, 90}} {
		p.Add(pair[0], pair[1])
	}
	approx(t, "Correlation", p.Correlation(), -1, 1e-12)
	if hw, unp := p.DeltaHalfWidth(0.95), p.UnpairedDeltaHalfWidth(0.95); hw <= unp {
		t.Errorf("anti-correlated pairs: paired HW %v not above unpaired %v", hw, unp)
	}
}

// TestPairedZeroBaseline: pairs whose A value is zero carry no relative
// improvement and are excluded from the ratio stream only.
func TestPairedZeroBaseline(t *testing.T) {
	var p Paired
	p.Add(0, 5)
	p.Add(100, 80)
	p.Add(200, 160)
	if p.N() != 3 {
		t.Errorf("N = %d, want 3", p.N())
	}
	if p.ImprovementN() != 2 {
		t.Errorf("ImprovementN = %d, want 2 (a=0 pair excluded)", p.ImprovementN())
	}
	approx(t, "ImprovementMean", p.ImprovementMean(), 20, 1e-12)
}

// TestPairedDegenerate: fewer than two pairs yield zero half-widths, and a
// constant column yields zero correlation.
func TestPairedDegenerate(t *testing.T) {
	var p Paired
	if p.DeltaHalfWidth(0.95) != 0 || p.UnpairedDeltaHalfWidth(0.95) != 0 || p.Correlation() != 0 {
		t.Error("empty accumulator not all-zero")
	}
	p.Add(10, 8)
	if p.DeltaHalfWidth(0.95) != 0 || p.UnpairedDeltaHalfWidth(0.95) != 0 {
		t.Error("single pair produced a half-width")
	}
	var c Paired
	c.Add(5, 1)
	c.Add(5, 2)
	c.Add(5, 3)
	if c.Correlation() != 0 {
		t.Errorf("constant A column: correlation %v, want 0", c.Correlation())
	}
	if c.UnpairedImprovementHalfWidth(0.95) == 0 {
		t.Error("nonzero A mean with varying B should give a nonzero unpaired improvement HW")
	}
	var z Paired
	z.Add(0, 1)
	z.Add(0, 2)
	if z.UnpairedImprovementHalfWidth(0.95) != 0 {
		t.Error("zero A mean must yield zero unpaired improvement HW")
	}
}

// TestPairedVarianceIdentity: on random-ish data the three variances must
// satisfy s²D = s²A + s²B − 2·corr·sA·sB (the identity Correlation inverts).
func TestPairedVarianceIdentity(t *testing.T) {
	var p Paired
	var a, b Welford
	vals := [][2]float64{{3, 7}, {1, 2}, {4, 1}, {1, 8}, {5, 2}, {9, 8}, {2, 1}, {6, 8}}
	for _, v := range vals {
		p.Add(v[0], v[1])
		a.Add(v[0])
		b.Add(v[1])
	}
	var d Welford
	for _, v := range vals {
		d.Add(v[1] - v[0])
	}
	got := a.Variance() + b.Variance() - 2*p.Correlation()*a.Stddev()*b.Stddev()
	approx(t, "variance identity", got, d.Variance(), 1e-9)
}
