package stats

// Replicate seed derivation. Replicated sweeps need one independent RNG
// stream per (sweep point, replicate) pair with two guarantees: replicate k
// of a sweep is a pure function of the base seed and k (so results are
// bit-identical no matter how many workers execute the runs or in which
// order), and replicate 0 is the base seed itself (so the first replicate of
// every point reproduces the unreplicated sweep exactly, and a reps=1
// "replicated" run is byte-identical to today's output).
//
// Replicates k >= 1 take the k-th output of a splitmix64 stream seeded at
// the base seed. splitmix64 (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014) walks its 64-bit state by a
// fixed odd increment (the golden-ratio constant) and scrambles it with an
// avalanching finalizer; the finalizer is a bijection and the increment is
// odd, so the derived seeds of one stream never collide with each other.

const splitmixGamma = 0x9E3779B97F4A7C15

// splitmix64 is the output (finalizer) function of the splitmix64 generator.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ReplicateSeed returns the seed of replicate rep derived from base:
// base itself for rep <= 0, and the rep-th splitmix64 output otherwise.
func ReplicateSeed(base int64, rep int) int64 {
	if rep <= 0 {
		return base
	}
	return int64(splitmix64(uint64(base) + splitmixGamma*uint64(rep)))
}

// ReplicateSeeds returns the seeds of replicates 0..reps-1 for the base
// seed (nil if reps <= 0). Element 0 is base itself.
func ReplicateSeeds(base int64, reps int) []int64 {
	if reps <= 0 {
		return nil
	}
	out := make([]int64, reps)
	for k := range out {
		out[k] = ReplicateSeed(base, k)
	}
	return out
}
