package stats

import "testing"

// TestPercentileCacheInvalidation: the cached sort must never serve a stale
// order after an Add or survive a Reset — the regression would silently
// skew every percentile read of a still-filling sample.
func TestPercentileCacheInvalidation(t *testing.T) {
	s := NewSample("c")
	for _, v := range []float64{30, 10, 20} {
		s.Add(v)
	}
	if got := s.Percentile(100); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	// The cache is now warm; a larger max must displace it.
	s.Add(40)
	if got := s.Percentile(100); got != 40 {
		t.Errorf("p100 after Add = %v, want 40 (stale sort served)", got)
	}
	if got := s.Percentile(50); got != 20 {
		t.Errorf("p50 after Add = %v, want 20", got)
	}

	s.Reset()
	if s.N() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Errorf("after Reset: n=%d mean=%v p50=%v, want zeros", s.N(), s.Mean(), s.Percentile(50))
	}
	s.Add(5)
	s.Add(1)
	if got := s.Percentile(100); got != 5 {
		t.Errorf("p100 after Reset+Add = %v, want 5", got)
	}
	if got := s.Mean(); got != 3 {
		t.Errorf("mean after Reset+Add = %v, want 3", got)
	}
}

// TestPercentileAllocs: percentile reads of a settled sample sort once and
// then allocate nothing — the windowed metrics read mean and p95 from the
// same scratch sample every window, so repeated reads must be free.
func TestPercentileAllocs(t *testing.T) {
	s := NewSample("a")
	for i := 0; i < 1000; i++ {
		s.Add(float64(i % 97))
	}
	s.Percentile(50) // warm the cache
	allocs := testing.AllocsPerRun(100, func() {
		s.Percentile(95)
		s.Percentile(50)
	})
	if allocs != 0 {
		t.Errorf("Percentile on a settled sample allocates %v per run, want 0", allocs)
	}
}
