package stats

import "math"

// Welford accumulates a stream of observations in O(1) memory using
// Welford's online algorithm, which is numerically stable where the naive
// sum/sum-of-squares update loses precision (large means, small spread). It
// backs the across-replicate aggregation of sweep metrics: one Welford per
// metric per sweep point, fed in replicate order, so the aggregate is
// deterministic for a fixed replicate set regardless of how many workers
// produced the underlying runs.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n-1)
	if v < 0 {
		return 0
	}
	return v
}

// Stddev returns the sample standard deviation (0 if n < 2).
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// HalfWidth returns the half-width of the two-sided confidence interval of
// the mean at confidence level conf (e.g. 0.95), using the Student-t
// critical value with n-1 degrees of freedom — the small-sample interval
// appropriate for the handful of replicates a sweep runs per point.
// Returns 0 if n < 2.
func (w *Welford) HalfWidth(conf float64) float64 {
	if w.n < 2 {
		return 0
	}
	return TQuantile(conf, w.n-1) * w.Stddev() / math.Sqrt(float64(w.n))
}
