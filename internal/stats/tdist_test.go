package stats

import (
	"math"
	"testing"
)

// TestTQuantileTable checks the computed critical values against standard
// Student-t table entries (two-sided, so conf = 0.95 is the 0.975 quantile).
func TestTQuantileTable(t *testing.T) {
	cases := []struct {
		conf float64
		df   int
		want float64
	}{
		{0.95, 1, 12.706},
		{0.95, 2, 4.3027},
		{0.95, 3, 3.1824},
		{0.95, 4, 2.7764},
		{0.95, 5, 2.5706},
		{0.95, 9, 2.2622},
		{0.95, 10, 2.2281},
		{0.95, 30, 2.0423},
		{0.95, 100, 1.9840},
		{0.95, 1000, 1.9623},
		{0.90, 5, 2.0150},
		{0.90, 10, 1.8125},
		{0.99, 5, 4.0321},
		{0.99, 10, 3.1693},
		{0.99, 30, 2.7500},
		{0.80, 10, 1.3722},
	}
	for _, c := range cases {
		got := TQuantile(c.conf, c.df)
		if math.Abs(got-c.want) > 5e-4*c.want {
			t.Errorf("TQuantile(%v, %d) = %v, want %v", c.conf, c.df, got, c.want)
		}
	}
}

// TestTQuantileApproachesNormal: for large df the critical value converges
// to the normal one.
func TestTQuantileApproachesNormal(t *testing.T) {
	if got := TQuantile(0.95, 100000); math.Abs(got-1.95996) > 1e-3 {
		t.Errorf("TQuantile(0.95, 1e5) = %v, want ~1.96", got)
	}
}

// TestTQuantileMonotone: critical values grow with confidence and shrink
// with degrees of freedom.
func TestTQuantileMonotone(t *testing.T) {
	for _, df := range []int{1, 2, 5, 20, 200} {
		prev := 0.0
		for _, conf := range []float64{0.5, 0.8, 0.9, 0.95, 0.99, 0.999} {
			got := TQuantile(conf, df)
			if got <= prev {
				t.Errorf("TQuantile(%v, %d) = %v not above TQuantile at lower conf (%v)", conf, df, got, prev)
			}
			prev = got
		}
	}
	for _, conf := range []float64{0.9, 0.95, 0.99} {
		prev := math.Inf(1)
		for _, df := range []int{1, 2, 3, 5, 10, 30, 100} {
			got := TQuantile(conf, df)
			if got >= prev {
				t.Errorf("TQuantile(%v, %d) = %v not below df-1 value %v", conf, df, got, prev)
			}
			prev = got
		}
	}
}

// TestTQuantileRoundTrip: the returned quantile must reproduce the target
// tail mass under the exact CDF it was inverted from.
func TestTQuantileRoundTrip(t *testing.T) {
	for _, df := range []int{1, 3, 7, 50} {
		for _, conf := range []float64{0.8, 0.95, 0.99} {
			q := TQuantile(conf, df)
			tail := studentTail(q, df)
			want := (1 - conf) / 2
			if math.Abs(tail-want) > 1e-9 {
				t.Errorf("df=%d conf=%v: tail(%v) = %v, want %v", df, conf, q, tail, want)
			}
		}
	}
}

func TestTQuantileDegenerateArgs(t *testing.T) {
	if got := TQuantile(0, 5); got != 0 {
		t.Errorf("conf=0: %v, want 0", got)
	}
	if got := TQuantile(-1, 5); got != 0 {
		t.Errorf("conf<0: %v, want 0", got)
	}
	if got := TQuantile(0.95, 0); got != 0 {
		t.Errorf("df=0: %v, want 0", got)
	}
	if got := TQuantile(1, 5); !math.IsInf(got, 1) {
		t.Errorf("conf=1: %v, want +Inf", got)
	}
	if got := TQuantile(math.NaN(), 5); got != 0 {
		t.Errorf("conf=NaN: %v, want 0", got)
	}
}

// TestRegIncBetaEdges pins the regularized incomplete beta endpoints and a
// closed-form interior case (I_x(1,1) = x).
func TestRegIncBetaEdges(t *testing.T) {
	if got := regIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := regIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) + I_{1-x}(b,a) = 1.
	for _, x := range []float64{0.2, 0.5, 0.7} {
		s := regIncBeta(2.5, 0.5, x) + regIncBeta(0.5, 2.5, 1-x)
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("symmetry broken at x=%v: sum %v", x, s)
		}
	}
}
