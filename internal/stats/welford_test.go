package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveTwoPass computes mean and unbiased sample variance the textbook way:
// one pass for the mean, one for the squared deviations.
func naiveTwoPass(vals []float64) (mean, variance float64) {
	n := float64(len(vals))
	if n == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	for _, v := range vals {
		d := v - mean
		variance += d * d
	}
	return mean, variance / (n - 1)
}

// TestWelfordMatchesTwoPass: on random data of varying size, scale and
// offset, the streaming accumulator must agree with the two-pass reference
// to tight relative tolerance.
func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(500)
		offset := math.Pow(10, float64(rng.Intn(7))) // up to 1e6: stress cancellation
		scale := math.Pow(10, float64(rng.Intn(4)-2))
		vals := make([]float64, n)
		var w Welford
		for i := range vals {
			vals[i] = offset + scale*rng.NormFloat64()
			w.Add(vals[i])
		}
		mean, variance := naiveTwoPass(vals)
		if w.N() != n {
			t.Fatalf("trial %d: N=%d, want %d", trial, w.N(), n)
		}
		if !closeRel(w.Mean(), mean, 1e-12) {
			t.Errorf("trial %d (n=%d offset=%g): mean %v, two-pass %v", trial, n, offset, w.Mean(), mean)
		}
		if !closeRel(w.Variance(), variance, 1e-9) {
			t.Errorf("trial %d (n=%d offset=%g): variance %v, two-pass %v", trial, n, offset, w.Variance(), variance)
		}
	}
}

func closeRel(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func TestWelfordEmptyAndSingleton(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 || w.HalfWidth(0.95) != 0 {
		t.Error("empty accumulator should report zeros")
	}
	w.Add(3.5)
	if w.N() != 1 || w.Mean() != 3.5 {
		t.Errorf("singleton: n=%d mean=%v", w.N(), w.Mean())
	}
	if w.Variance() != 0 || w.HalfWidth(0.95) != 0 {
		t.Error("singleton variance and half-width must be 0 (no spread estimate from one run)")
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.Mean() != 5 {
		t.Errorf("mean=%v, want 5", w.Mean())
	}
	want := 32.0 / 7.0 // sum of squared deviations 32, n-1 = 7
	if math.Abs(w.Variance()-want) > 1e-12 {
		t.Errorf("variance=%v, want %v", w.Variance(), want)
	}
}

// Property: the Welford mean is bounded by the data range and the variance
// is non-negative for arbitrary finite inputs.
func TestQuickWelfordBounds(t *testing.T) {
	f := func(vals []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			w.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if w.N() == 0 {
			return true
		}
		return w.Mean() >= lo-1e-6 && w.Mean() <= hi+1e-6 && w.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHalfWidthShrinksRootN: the CI half-width of the mean must shrink like
// ~1/sqrt(n). Feeding the same empirical distribution at 1x and 16x size
// must shrink the half-width by about 4 (t-quantile differences make it
// slightly more than 4 at small n).
func TestHalfWidthShrinksRootN(t *testing.T) {
	vals := []float64{1, 5, 3, 7, 2, 8, 4, 6}
	var small, big Welford
	for _, v := range vals {
		small.Add(v)
	}
	for i := 0; i < 16; i++ {
		for _, v := range vals {
			big.Add(v)
		}
	}
	ratio := small.HalfWidth(0.95) / big.HalfWidth(0.95)
	// The squared deviations replicate 16x but the variance denominator is
	// n-1, so sd_small/sd_big = sqrt(127/112); the remaining factors are
	// sqrt(16) from the standard error and the t-quantile ratio.
	want := 4 * math.Sqrt(127.0/112.0) * TQuantile(0.95, 7) / TQuantile(0.95, 127)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("half-width ratio %v, want %v (~1/sqrt(n) scaling)", ratio, want)
	}
	if ratio < 4 {
		t.Errorf("half-width ratio %v < 4: CI not shrinking at the 1/sqrt(n) rate", ratio)
	}
}

// TestWelfordHalfWidthCoversKnownCase: cross-check one interval end to end
// against a hand-computed Student-t interval.
func TestWelfordHalfWidthCoversKnownCase(t *testing.T) {
	var w Welford
	for _, v := range []float64{10, 12, 14} {
		w.Add(v)
	}
	// mean 12, sd 2, se 2/sqrt(3), t(0.95, df=2) = 4.3027
	want := 4.302652729911275 * 2 / math.Sqrt(3)
	if math.Abs(w.HalfWidth(0.95)-want) > 1e-4 {
		t.Errorf("half-width %v, want %v", w.HalfWidth(0.95), want)
	}
}
