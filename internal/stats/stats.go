// Package stats collects simulation metrics: response-time samples with a
// warm-up cut, counters, and summary statistics (mean, percentiles,
// confidence half-widths) used to report the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations (e.g. response times in
// milliseconds) taken after a warm-up boundary.
type Sample struct {
	name string
	vals []float64
	// sorted caches an ordered copy of vals for percentile reads. vals is
	// append-only between Resets and sorted is only ever written as a full
	// copy, so "len(sorted) == len(vals)" is a valid freshness tag: any Add
	// since the last sort changes len(vals) and invalidates the cache.
	sorted []float64
	sum    float64
	sum2   float64
}

// NewSample creates an empty named sample.
func NewSample(name string) *Sample { return &Sample{name: name} }

// Name returns the sample's name.
func (s *Sample) Name() string { return s.name }

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vals = append(s.vals, v)
	s.sum += v
	s.sum2 += v * v
}

// Reset empties the sample in place, keeping the backing arrays for reuse
// (windowed metrics fill and drain one scratch sample per window).
func (s *Sample) Reset() {
	s.vals = s.vals[:0]
	s.sorted = s.sorted[:0]
	s.sum, s.sum2 = 0, 0
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Stddev returns the sample standard deviation (0 if n < 2).
func (s *Sample) Stddev() float64 {
	n := float64(len(s.vals))
	if n < 2 {
		return 0
	}
	v := (s.sum2 - s.sum*s.sum/n) / (n - 1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
// The sorted order is computed once per snapshot and cached until the next
// Add, so reading several percentiles of a settled sample sorts (and
// allocates) at most once. Returns 0 if empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := s.sortedVals()
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// sortedVals returns the cached ordered copy of vals, refreshing it if any
// observation arrived since the last sort.
func (s *Sample) sortedVals() []float64 {
	if len(s.sorted) != len(s.vals) {
		s.sorted = append(s.sorted[:0], s.vals...)
		sort.Float64s(s.sorted)
	}
	return s.sorted
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// HalfWidth95 returns the approximate 95% confidence-interval half-width of
// the mean, using the normal critical value (valid for the sample sizes the
// harness produces).
func (s *Sample) HalfWidth95() float64 {
	n := float64(len(s.vals))
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(n)
}

// String summarizes the sample.
func (s *Sample) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.2f sd=%.2f p95=%.2f", s.name, s.N(), s.Mean(), s.Stddev(), s.Percentile(95))
}

// Counter is a named monotone event counter.
type Counter struct {
	name string
	n    int64
}

// NewCounter creates a counter.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Addn adds n (n may be zero, never negative).
func (c *Counter) Addn(n int64) {
	if n < 0 {
		panic("stats: counter decrement")
	}
	c.n += n
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Name returns the counter name.
func (c *Counter) Name() string { return c.name }
