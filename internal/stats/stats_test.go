package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleMean(t *testing.T) {
	s := NewSample("rt")
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Mean() != 2.5 {
		t.Errorf("mean=%v, want 2.5", s.Mean())
	}
	if s.N() != 4 {
		t.Errorf("n=%d, want 4", s.N())
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample("e")
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 || s.HalfWidth95() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleStddev(t *testing.T) {
	s := NewSample("sd")
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	// known population sd = 2; sample sd = sqrt(32/7)
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev()-want) > 1e-9 {
		t.Errorf("sd=%v, want %v", s.Stddev(), want)
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample("p")
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); got != 50 {
		t.Errorf("p50=%v, want 50", got)
	}
	if got := s.Percentile(95); got != 95 {
		t.Errorf("p95=%v, want 95", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSamplePercentileSingleton(t *testing.T) {
	s := NewSample("one")
	s.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if s.Percentile(p) != 7 {
			t.Errorf("p%v of singleton = %v, want 7", p, s.Percentile(p))
		}
	}
}

func TestHalfWidthShrinksWithN(t *testing.T) {
	small, big := NewSample("s"), NewSample("b")
	vals := []float64{1, 5, 3, 7, 2, 8, 4, 6}
	for _, v := range vals {
		small.Add(v)
	}
	for i := 0; i < 10; i++ {
		for _, v := range vals {
			big.Add(v)
		}
	}
	if big.HalfWidth95() >= small.HalfWidth95() {
		t.Errorf("half-width did not shrink: %v vs %v", big.HalfWidth95(), small.HalfWidth95())
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter("io")
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Errorf("value=%d, want 5", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative Addn did not panic")
		}
	}()
	c.Addn(-1)
}

// Property: mean is bounded by [min, max] and stddev is non-negative.
func TestQuickMeanBounds(t *testing.T) {
	f := func(vals []float64) bool {
		s := NewSample("q")
		ok := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Add(v)
			ok = true
		}
		if !ok {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6 && s.Stddev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(vals []uint16, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := NewSample("q")
		for _, v := range vals {
			s.Add(float64(v))
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
