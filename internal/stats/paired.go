package stats

import "math"

// Paired accumulates paired observations (a_k, b_k) — the k-th replicate
// seed run under strategy A and again under strategy B — and reports the
// paired-sample statistics of a head-to-head comparison under common random
// numbers. Because both columns of a pair share their random-number stream,
// the per-pair differences d_k = b_k − a_k cancel the seed-to-seed workload
// variation the two runs have in common: Var(d) = Var(a) + Var(b) −
// 2·Cov(a, b), so whenever the pairing induces positive correlation the
// paired-t interval on the mean difference is tighter than the interval a
// two-independent-sample experiment of the same size would give.
//
// All moments come from Welford accumulators fed in replicate order, so a
// Paired filled from a fixed replicate set is deterministic regardless of
// how many workers produced the underlying runs.
type Paired struct {
	a, b   Welford // per-strategy marginals
	delta  Welford // b_k − a_k
	improv Welford // 100·(a_k − b_k)/a_k; pairs with a_k = 0 are skipped
}

// Add records one pair: the same replicate's observation under A and
// under B.
func (p *Paired) Add(a, b float64) {
	p.a.Add(a)
	p.b.Add(b)
	p.delta.Add(b - a)
	if a != 0 {
		p.improv.Add(100 * (a - b) / a)
	}
}

// N returns the number of pairs.
func (p *Paired) N() int { return p.a.N() }

// MeanA returns the mean of the A column.
func (p *Paired) MeanA() float64 { return p.a.Mean() }

// MeanB returns the mean of the B column.
func (p *Paired) MeanB() float64 { return p.b.Mean() }

// DeltaMean returns the mean per-pair difference B − A.
func (p *Paired) DeltaMean() float64 { return p.delta.Mean() }

// DeltaHalfWidth returns the paired-t confidence half-width of the mean
// difference B − A at level conf: the one-sample interval on the per-pair
// deltas, with n−1 degrees of freedom (0 if fewer than two pairs).
func (p *Paired) DeltaHalfWidth(conf float64) float64 { return p.delta.HalfWidth(conf) }

// ImprovementMean returns the mean per-pair relative improvement of B over
// A in percent: 100·(a_k − b_k)/a_k, positive when B is smaller (better,
// on lower-is-better metrics such as response time). Pairs whose A value
// is exactly zero carry no relative information and are excluded.
func (p *Paired) ImprovementMean() float64 { return p.improv.Mean() }

// ImprovementN returns the number of pairs contributing to the improvement
// ratio (pairs with a_k = 0 are excluded).
func (p *Paired) ImprovementN() int { return p.improv.N() }

// ImprovementHalfWidth returns the paired-t confidence half-width of the
// mean relative improvement at level conf.
func (p *Paired) ImprovementHalfWidth(conf float64) float64 { return p.improv.HalfWidth(conf) }

// UnpairedDeltaHalfWidth returns the confidence half-width the mean
// difference would have if the two columns were treated as independent
// samples — the interval a two-independent-seed experiment of the same
// size reports: t(conf, n−1) · sqrt((s²_A + s²_B)/n). It uses the same
// conservative n−1 degrees of freedom as the paired interval, so the two
// half-widths differ only in their variance term; with positively
// correlated pairs (common random numbers) the paired width is the smaller
// one.
func (p *Paired) UnpairedDeltaHalfWidth(conf float64) float64 {
	n := p.a.N()
	if n < 2 {
		return 0
	}
	return TQuantile(conf, n-1) * math.Sqrt((p.a.Variance()+p.b.Variance())/float64(n))
}

// UnpairedImprovementHalfWidth maps UnpairedDeltaHalfWidth onto the
// relative-improvement scale by the delta method at the A mean:
// 100·HW/|mean(A)| (0 when the A mean is zero).
func (p *Paired) UnpairedImprovementHalfWidth(conf float64) float64 {
	if p.a.Mean() == 0 {
		return 0
	}
	return 100 * p.UnpairedDeltaHalfWidth(conf) / math.Abs(p.a.Mean())
}

// Correlation returns the sample correlation of the pairs implied by the
// marginal and delta variances, (s²_A + s²_B − s²_D) / (2·s_A·s_B),
// clamped to [−1, 1] (0 when either column is constant). It quantifies how
// much variance the common random numbers cancel.
func (p *Paired) Correlation() float64 {
	sa, sb := p.a.Stddev(), p.b.Stddev()
	if sa == 0 || sb == 0 {
		return 0
	}
	c := (p.a.Variance() + p.b.Variance() - p.delta.Variance()) / (2 * sa * sb)
	return math.Max(-1, math.Min(1, c))
}
