package stats

import "testing"

// TestReplicateSeedZeroIsBase: replicate 0 must be the base seed itself so
// replicated sweeps extend, rather than replace, the unreplicated run.
func TestReplicateSeedZeroIsBase(t *testing.T) {
	for _, base := range []int64{0, 1, -7, 1 << 40} {
		if got := ReplicateSeed(base, 0); got != base {
			t.Errorf("ReplicateSeed(%d, 0) = %d, want base", base, got)
		}
		if got := ReplicateSeed(base, -3); got != base {
			t.Errorf("ReplicateSeed(%d, -3) = %d, want base", base, got)
		}
	}
}

// TestReplicateSeedsDistinct: the derived stream must not collide with
// itself (the splitmix64 finalizer is a bijection over distinct states), so
// every replicate gets an independent RNG stream.
func TestReplicateSeedsDistinct(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -1, 1 << 62} {
		seeds := ReplicateSeeds(base, 1000)
		seen := make(map[int64]int, len(seeds))
		for k, s := range seeds {
			if prev, dup := seen[s]; dup {
				t.Fatalf("base %d: replicate %d and %d share seed %d", base, prev, k, s)
			}
			seen[s] = k
		}
	}
}

// TestReplicateSeedDeterministic: seed derivation is a pure function of
// (base, rep) — the property that makes replicated sweeps bit-identical
// regardless of worker count, scheduling order, or whether the seed is
// derived up front or on demand.
func TestReplicateSeedDeterministic(t *testing.T) {
	seeds := ReplicateSeeds(99, 64)
	for k, s := range seeds {
		if again := ReplicateSeed(99, k); again != s {
			t.Errorf("replicate %d: %d vs %d on re-derivation", k, s, again)
		}
	}
	// Different bases give different streams.
	other := ReplicateSeeds(100, 64)
	same := 0
	for k := 1; k < 64; k++ {
		if seeds[k] == other[k] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d of 63 derived seeds collide across bases 99 and 100", same)
	}
}

func TestReplicateSeedsDegenerate(t *testing.T) {
	if got := ReplicateSeeds(5, 0); got != nil {
		t.Errorf("reps=0: %v, want nil", got)
	}
	if got := ReplicateSeeds(5, -1); got != nil {
		t.Errorf("reps<0: %v, want nil", got)
	}
	if got := ReplicateSeeds(5, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("reps=1: %v, want [5]", got)
	}
}
