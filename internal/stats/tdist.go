package stats

import "math"

// TQuantile returns the two-sided Student-t critical value for confidence
// level conf (0 < conf < 1) with df degrees of freedom: the t such that a
// fraction conf of the distribution's mass lies within [-t, t]. For df -> inf
// it approaches the normal critical value (1.96 at conf = 0.95).
//
// The value is found by bisection on the exact tail probability (regularized
// incomplete beta function), so it is accurate over the full df range the
// replication harness uses (df = 1 upward) with no table interpolation.
// Invalid arguments degrade safely: conf <= 0 or df < 1 return 0, conf >= 1
// returns +Inf.
func TQuantile(conf float64, df int) float64 {
	if conf <= 0 || df < 1 || math.IsNaN(conf) {
		return 0
	}
	if conf >= 1 {
		return math.Inf(1)
	}
	tail := (1 - conf) / 2
	// Bracket the quantile: grow hi until its tail mass drops below target.
	hi := 1.0
	for studentTail(hi, df) > tail {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	lo := 0.0
	for i := 0; i < 128; i++ {
		mid := (lo + hi) / 2
		if studentTail(mid, df) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// studentTail returns P(T > t) for the Student-t distribution with df
// degrees of freedom and t >= 0, via the identity
// P(T > t) = I_x(df/2, 1/2) / 2 with x = df / (df + t^2).
func studentTail(t float64, df int) float64 {
	x := float64(df) / (float64(df) + t*t)
	return 0.5 * regIncBeta(float64(df)/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the standard continued-fraction expansion (converges fast when x is
// below the distribution mean; the symmetry I_x(a,b) = 1 - I_{1-x}(b,a)
// covers the rest).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lgab, _ := math.Lgamma(a + b)
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the incomplete-beta continued fraction by the modified
// Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
