package core

import (
	"fmt"
	"math"
	"math/rand"
)

// DegreePolicy determines the degree of join parallelism — the first step
// of an isolated strategy (Section 3.1).
type DegreePolicy interface {
	Name() string
	Degree(q QueryInfo, v *View) int
}

// SelectionPolicy selects k join processors — the second step of an
// isolated strategy (Section 3.2).
type SelectionPolicy interface {
	Name() string
	Select(k int, v *View, rng *rand.Rand) []int
}

// StaticSuOpt is the static policy using the single-user optimum p_su-opt.
type StaticSuOpt struct{}

// Name implements DegreePolicy.
func (StaticSuOpt) Name() string { return "psu-opt" }

// Degree implements DegreePolicy.
func (StaticSuOpt) Degree(q QueryInfo, v *View) int { return clampDegree(q.PsuOpt, v.N()) }

// StaticNoIO is the static policy using p_su-noIO (formula 3.1).
type StaticNoIO struct{}

// Name implements DegreePolicy.
func (StaticNoIO) Name() string { return "psu-noIO" }

// Degree implements DegreePolicy.
func (StaticNoIO) Degree(q QueryInfo, v *View) int { return clampDegree(q.PsuNoIO, v.N()) }

// StaticDegree fixes the degree to an explicit value (used by ablations and
// the Fig. 1 curves).
type StaticDegree struct{ P int }

// Name implements DegreePolicy.
func (s StaticDegree) Name() string { return fmt.Sprintf("p=%d", s.P) }

// Degree implements DegreePolicy.
func (s StaticDegree) Degree(q QueryInfo, v *View) int { return clampDegree(s.P, v.N()) }

// DynamicCPU implements formula 3.2: p_mu-cpu = p_su-opt * (1 - u_cpu^3),
// reducing parallelism mainly above 50% average CPU utilization.
type DynamicCPU struct{}

// Name implements DegreePolicy.
func (DynamicCPU) Name() string { return "pmu-cpu" }

// Degree implements DegreePolicy.
func (DynamicCPU) Degree(q QueryInfo, v *View) int {
	u := v.AvgCPU()
	p := int(math.Round(float64(q.PsuOpt) * (1 - u*u*u)))
	return clampDegree(p, v.N())
}

// RandomSelect picks k distinct PEs uniformly at random — the static
// selection baseline.
type RandomSelect struct{}

// Name implements SelectionPolicy.
func (RandomSelect) Name() string { return "RANDOM" }

// Select implements SelectionPolicy.
func (RandomSelect) Select(k int, v *View, rng *rand.Rand) []int {
	perm := rng.Perm(v.N())
	out := append([]int(nil), perm[:k]...)
	return out
}

// LUC selects the k least utilized CPUs, bumping the view so consecutive
// decisions between utilization reports spread out (the adaptive variation
// of [26]; disable via NoBump for the ablation).
type LUC struct {
	// Bump is the artificial utilization increase per selected PE.
	// Zero means use DefaultCPUBump.
	Bump   float64
	NoBump bool
}

// DefaultCPUBump is the artificial CPU utilization added to a selected PE
// in the control node's view.
const DefaultCPUBump = 0.15

// Name implements SelectionPolicy.
func (LUC) Name() string { return "LUC" }

// Select implements SelectionPolicy.
func (l LUC) Select(k int, v *View, rng *rand.Rand) []int {
	ids := v.byCPUR(rng)[:clampAlive(k, v)]
	out := append([]int(nil), ids...)
	if !l.NoBump {
		bump := l.Bump
		if bump == 0 {
			bump = DefaultCPUBump
		}
		for _, pe := range out {
			v.CPU[pe] += bump
		}
	}
	return out
}

// LUM selects the k PEs with the most available memory, decreasing their
// free memory in the view by the expected working-space demand.
type LUM struct {
	NoBump bool
	// MemPerPE is set by the caller before Select (the expected demand);
	// isolated strategies set it from the query's hash-table size.
	MemPerPE int
}

// Name implements SelectionPolicy.
func (LUM) Name() string { return "LUM" }

// Select implements SelectionPolicy.
func (l LUM) Select(k int, v *View, rng *rand.Rand) []int {
	ids := v.byFreeMemR(rng)[:clampAlive(k, v)]
	out := append([]int(nil), ids...)
	if !l.NoBump {
		for _, pe := range out {
			v.FreeMem[pe] -= min(l.MemPerPE, v.FreeMem[pe])
		}
	}
	return out
}

// Isolated combines a degree policy with a selection policy: the two
// consecutive steps of Section 3's isolated strategies.
type Isolated struct {
	Deg DegreePolicy
	Sel SelectionPolicy
}

// Name implements Strategy.
func (s Isolated) Name() string { return s.Deg.Name() + "+" + s.Sel.Name() }

// Decide implements Strategy.
func (s Isolated) Decide(q QueryInfo, v *View, rng *rand.Rand) Decision {
	k := s.Deg.Degree(q, v)
	mem := memPerPE(q, k)
	sel := s.Sel
	if lum, ok := sel.(LUM); ok {
		lum.MemPerPE = mem
		sel = lum
	}
	pes := sel.Select(k, v, rng)
	return Decision{JoinPEs: pes, MemPerPE: mem}
}

func clampDegree(p, n int) int {
	if p < 1 {
		return 1
	}
	if p > n {
		return n
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
