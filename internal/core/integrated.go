package core

import (
	"math"
	"math/rand"
)

// The integrated strategies of Section 3.3 determine the degree of join
// parallelism and the processor selection in a single step from the control
// node's AVAIL-MEMORY array (free memory per node, sorted descending), using
// the LUM placement for the chosen k.

// avoidanceDegrees returns, for the AVAIL-MEMORY order avail (free pages of
// the k-th most-free PE at index k-1), every k whose selection avoids
// temporary file I/O: AVAIL[k].free * k > hashPages (formula 3.3 uses the
// k-th node's free memory, the minimum over the selected k).
func avoidanceDegrees(avail []int, hashPages int) []int {
	var ks []int
	for k := 1; k <= len(avail); k++ {
		if avail[k-1]*k > hashPages {
			ks = append(ks, k)
		}
	}
	return ks
}

// criticalOverflow returns the temporary-I/O pages of the *critical* join
// processor — the selected node with the least available memory — when the
// hash table is split over the first k nodes of the AVAIL-MEMORY order.
// Section 3.3: "from the p_mu selected processors the one with the minimum
// amount of available memory ... determines response times under memory or
// disk bottlenecks"; footnote 5 minimizes exactly this quantity (k=1 on the
// 8-page node limits overflow to 2 versus "at least 2.5 MB per processor"
// for k=4).
func criticalOverflow(avail []int, hashPages, k int) int {
	per := (hashPages + k - 1) / k
	if d := per - avail[k-1]; d > 0 {
		return d
	}
	return 0
}

// minOverflowDegree returns the k in [1, maxK] minimizing the critical
// node's overflow, preferring smaller k on ties (fewer subqueries for the
// same worst-case I/O delay). Under global scarcity this metric grows the
// degree — spreading shrinks every processor's share — which is the
// behaviour the paper reports for MIN-IO(-SUOPT) on larger systems.
func minOverflowDegree(avail []int, hashPages, maxK int) int {
	best, bestSpill := 1, math.MaxInt
	for k := 1; k <= maxK && k <= len(avail); k++ {
		if s := criticalOverflow(avail, hashPages, k); s < bestSpill {
			best, bestSpill = k, s
		}
	}
	return best
}

// selectLUM returns the first k PEs of the AVAIL-MEMORY order (randomized
// tie-breaking) and applies the adaptive memory bump to the view.
func selectLUM(q QueryInfo, v *View, k int, bump bool, rng *rand.Rand) Decision {
	ids := v.byFreeMemR(rng)[:clampAlive(k, v)]
	out := append([]int(nil), ids...)
	mem := memPerPE(q, k)
	if bump {
		for _, pe := range out {
			v.FreeMem[pe] -= min(mem, v.FreeMem[pe])
		}
	}
	return Decision{JoinPEs: out, MemPerPE: mem}
}

// MinIO implements the MIN-IO strategy: the minimal number of join
// processors avoiding temporary file I/O (formula 3.3); if no selection
// avoids it, the degree minimizing the overflow volume. CPU utilization is
// ignored — the strategy's known weakness under CPU contention.
type MinIO struct {
	NoBump bool
}

// Name implements Strategy.
func (MinIO) Name() string { return "MIN-IO" }

// Decide implements Strategy.
func (s MinIO) Decide(q QueryInfo, v *View, rng *rand.Rand) Decision {
	avail := sortedFree(v)
	hp := q.HashPages()
	ks := avoidanceDegrees(avail, hp)
	k := 0
	if len(ks) > 0 {
		k = ks[0]
	} else {
		k = minOverflowDegree(avail, hp, v.N())
	}
	return selectLUM(q, v, k, !s.NoBump, rng)
}

// MinIOSuOpt implements MIN-IO-SUOPT: among the degrees avoiding temporary
// file I/O, the one closest to p_su-opt (larger on ties, to exploit CPU
// parallelism); same fallback as MIN-IO when avoidance is impossible.
type MinIOSuOpt struct {
	NoBump bool
}

// Name implements Strategy.
func (MinIOSuOpt) Name() string { return "MIN-IO-SUOPT" }

// Decide implements Strategy.
func (s MinIOSuOpt) Decide(q QueryInfo, v *View, rng *rand.Rand) Decision {
	avail := sortedFree(v)
	hp := q.HashPages()
	ks := avoidanceDegrees(avail, hp)
	var k int
	if len(ks) > 0 {
		k = closest(ks, q.PsuOpt)
	} else {
		k = minOverflowDegree(avail, hp, v.N())
	}
	return selectLUM(q, v, k, !s.NoBump, rng)
}

// OptIOCPU implements OPT-IO-CPU: the degree is capped by p_mu-cpu
// (formula 3.2, the CPU-dependent reduction of p_su-opt); within 1..cap the
// maximal degree avoiding temporary I/O is chosen, or the overflow-
// minimizing one if avoidance is impossible.
type OptIOCPU struct {
	NoBump bool
}

// Name implements Strategy.
func (OptIOCPU) Name() string { return "OPT-IO-CPU" }

// Decide implements Strategy.
func (s OptIOCPU) Decide(q QueryInfo, v *View, rng *rand.Rand) Decision {
	maxK := DynamicCPU{}.Degree(q, v)
	avail := sortedFree(v)
	hp := q.HashPages()
	var k int
	for _, cand := range avoidanceDegrees(avail, hp) {
		if cand <= maxK && cand > k {
			k = cand
		}
	}
	if k == 0 {
		k = minOverflowDegree(avail, hp, maxK)
	}
	return selectLUM(q, v, k, !s.NoBump, rng)
}

// sortedFree returns free memory in AVAIL-MEMORY order (descending). With
// failure information present, the values are failure-deweighted — a dead
// PE contributes zero usable memory, a degraded one proportionally less —
// so the avoidance formulas never count capacity on unusable nodes.
func sortedFree(v *View) []int {
	ids := v.ByFreeMem()
	out := make([]int, len(ids))
	for i, pe := range ids {
		out[i] = int(v.effFreeMem(pe))
	}
	return out
}

// closest returns the value of ks nearest to target, preferring the larger
// candidate on ties.
func closest(ks []int, target int) int {
	best := ks[0]
	for _, k := range ks[1:] {
		db, dk := abs(best-target), abs(k-target)
		if dk < db || (dk == db && k > best) {
			best = k
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
