package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testView(cpu []float64, free []int) *View {
	return &View{CPU: cpu, FreeMem: free}
}

func q(innerPages int64, psuOpt, psuNoIO int) QueryInfo {
	return QueryInfo{InnerPages: innerPages, Fudge: 1.05, PsuOpt: psuOpt, PsuNoIO: psuNoIO}
}

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestViewAvgCPU(t *testing.T) {
	v := testView([]float64{0.2, 0.4, 0.6}, []int{0, 0, 0})
	if got := v.AvgCPU(); got < 0.399 || got > 0.401 {
		t.Errorf("AvgCPU=%v, want 0.4", got)
	}
}

func TestViewOrderings(t *testing.T) {
	v := testView([]float64{0.5, 0.1, 0.9, 0.1}, []int{10, 40, 40, 5})
	byCPU := v.ByCPU()
	if byCPU[0] != 1 || byCPU[1] != 3 { // ties by id
		t.Errorf("ByCPU = %v", byCPU)
	}
	byMem := v.ByFreeMem()
	if byMem[0] != 1 || byMem[1] != 2 || byMem[3] != 3 {
		t.Errorf("ByFreeMem = %v", byMem)
	}
}

func TestHashPages(t *testing.T) {
	// 125 pages * 1.05 = 131.25 -> 132
	if got := q(125, 30, 3).HashPages(); got != 132 {
		t.Errorf("HashPages=%d, want 132", got)
	}
	if got := q(0, 1, 1).HashPages(); got != 1 {
		t.Errorf("HashPages(0)=%d, want at least 1", got)
	}
}

func TestStaticDegreesUseQueryInfo(t *testing.T) {
	v := testView(make([]float64, 40), make([]int, 40))
	if got := (StaticSuOpt{}).Degree(q(125, 30, 3), v); got != 30 {
		t.Errorf("StaticSuOpt=%d", got)
	}
	if got := (StaticNoIO{}).Degree(q(125, 30, 3), v); got != 3 {
		t.Errorf("StaticNoIO=%d", got)
	}
	// clamped by system size
	small := testView(make([]float64, 10), make([]int, 10))
	if got := (StaticSuOpt{}).Degree(q(125, 30, 3), small); got != 10 {
		t.Errorf("StaticSuOpt clamp=%d", got)
	}
}

func TestDynamicCPUFormula32(t *testing.T) {
	// p_mu-cpu = p_su-opt * (1 - u^3)
	cases := []struct {
		u    float64
		want int
	}{
		{0.0, 30},
		{0.5, 26}, // 30*(1-0.125) = 26.25 -> 26
		{0.8, 15}, // 30*(1-0.512) = 14.64 -> 15
		{1.0, 1},  // floor at 1
	}
	for _, c := range cases {
		cpu := make([]float64, 40)
		for i := range cpu {
			cpu[i] = c.u
		}
		v := testView(cpu, make([]int, 40))
		if got := (DynamicCPU{}).Degree(q(125, 30, 3), v); got != c.want {
			t.Errorf("u=%v: pmu-cpu=%d, want %d", c.u, got, c.want)
		}
	}
}

func TestRandomSelectDistinct(t *testing.T) {
	v := testView(make([]float64, 20), make([]int, 20))
	pes := (RandomSelect{}).Select(8, v, rng())
	if len(pes) != 8 {
		t.Fatalf("selected %d", len(pes))
	}
	seen := map[int]bool{}
	for _, pe := range pes {
		if seen[pe] {
			t.Fatalf("duplicate PE %d in %v", pe, pes)
		}
		seen[pe] = true
		if pe < 0 || pe >= 20 {
			t.Fatalf("PE %d out of range", pe)
		}
	}
}

func TestLUCSelectsLeastUtilizedAndBumps(t *testing.T) {
	v := testView([]float64{0.9, 0.1, 0.3, 0.2}, make([]int, 4))
	pes := (LUC{}).Select(2, v, rng())
	if pes[0] != 1 || pes[1] != 3 {
		t.Errorf("LUC selected %v, want [1 3]", pes)
	}
	if v.CPU[1] != 0.1+DefaultCPUBump || v.CPU[3] != 0.2+DefaultCPUBump {
		t.Errorf("LUC did not bump: %v", v.CPU)
	}
	// Bumping spreads the next equal-size selection elsewhere: PE 3 is now
	// at 0.35, above PE 2's 0.3.
	pes2 := (LUC{}).Select(2, v, rng())
	if pes2[0] == 1 && pes2[1] == 3 {
		t.Errorf("consecutive LUC selections identical despite bump: %v", pes2)
	}
}

func TestLUCNoBumpAblation(t *testing.T) {
	v := testView([]float64{0.9, 0.1, 0.5, 0.2}, make([]int, 4))
	(LUC{NoBump: true}).Select(2, v, rng())
	if v.CPU[1] != 0.1 {
		t.Errorf("NoBump still bumped: %v", v.CPU)
	}
}

func TestLUMSelectsMostMemoryAndBumps(t *testing.T) {
	v := testView(make([]float64, 4), []int{5, 50, 20, 40})
	l := LUM{MemPerPE: 30}
	pes := l.Select(2, v, rng())
	if pes[0] != 1 || pes[1] != 3 {
		t.Errorf("LUM selected %v, want [1 3]", pes)
	}
	if v.FreeMem[1] != 20 || v.FreeMem[3] != 10 {
		t.Errorf("LUM bump wrong: %v", v.FreeMem)
	}
	// Bump never goes negative.
	l2 := LUM{MemPerPE: 100}
	l2.Select(2, v, rng())
	for _, f := range v.FreeMem {
		if f < 0 {
			t.Errorf("negative free mem after bump: %v", v.FreeMem)
		}
	}
}

func TestIsolatedComposition(t *testing.T) {
	v := testView([]float64{0.1, 0.2, 0.3, 0.4}, []int{10, 20, 30, 40})
	s := Isolated{Deg: StaticNoIO{}, Sel: LUM{}}
	if s.Name() != "psu-noIO+LUM" {
		t.Errorf("name=%q", s.Name())
	}
	d := s.Decide(q(40, 4, 2), v, rng())
	if d.Degree() != 2 {
		t.Errorf("degree=%d, want 2", d.Degree())
	}
	if d.JoinPEs[0] != 3 || d.JoinPEs[1] != 2 {
		t.Errorf("selected %v, want [3 2]", d.JoinPEs)
	}
	// mem per PE: ceil(42/2) = 21
	if d.MemPerPE != 21 {
		t.Errorf("MemPerPE=%d, want 21", d.MemPerPE)
	}
}

func TestMinIOFormula33(t *testing.T) {
	// AVAIL sorted desc: 40, 30, 20, 10. Hash pages 55.
	// k=1: 40*1=40 <= 55; k=2: 30*2=60 > 55 -> k=2.
	v := testView(make([]float64, 4), []int{10, 40, 20, 30})
	d := (MinIO{}).Decide(q(52, 4, 2), v, rng()) // 52*1.05=54.6 -> 55
	if d.Degree() != 2 {
		t.Fatalf("MIN-IO degree=%d, want 2", d.Degree())
	}
	if d.JoinPEs[0] != 1 || d.JoinPEs[1] != 3 {
		t.Errorf("MIN-IO selected %v, want [1 3] (most memory first)", d.JoinPEs)
	}
}

func TestMinIOFootnote5Fallback(t *testing.T) {
	// Paper footnote 5: need 10 pages, availability 8,1,0,0: MIN-IO picks
	// p=1 on the 8-page node (overflow 2) over p=4 (overflow >= 2.5/PE).
	v := testView(make([]float64, 4), []int{8, 1, 0, 0})
	qi := QueryInfo{InnerPages: 10, Fudge: 1.0, PsuOpt: 4, PsuNoIO: 1}
	d := (MinIO{}).Decide(qi, v, rng())
	if d.Degree() != 1 {
		t.Fatalf("MIN-IO fallback degree=%d, want 1 (footnote 5)", d.Degree())
	}
	if d.JoinPEs[0] != 0 {
		t.Errorf("MIN-IO fallback selected PE %d, want 0 (8 pages free)", d.JoinPEs[0])
	}
}

func TestMinIOSuOptPicksClosestToSuOpt(t *testing.T) {
	// Plenty of memory everywhere: avoidance for every k with free*k > hp.
	// free=50 each, hp=132: k >= 3 avoids. psu-opt=30 on 40 nodes -> 30.
	free := make([]int, 40)
	for i := range free {
		free[i] = 50
	}
	v := testView(make([]float64, 40), free)
	dMin := (MinIO{}).Decide(q(125, 30, 3), v.Clone(), rng())
	if dMin.Degree() != 3 {
		t.Errorf("MIN-IO degree=%d, want 3 (minimal avoiding)", dMin.Degree())
	}
	dSu := (MinIOSuOpt{}).Decide(q(125, 30, 3), v.Clone(), rng())
	if dSu.Degree() != 30 {
		t.Errorf("MIN-IO-SUOPT degree=%d, want 30 (closest to psu-opt)", dSu.Degree())
	}
}

func TestOptIOCPUCapsByFormula32(t *testing.T) {
	// High CPU load: u=0.8 -> cap = 30*(1-0.512) = 15. Memory plentiful,
	// so the maximal avoiding k within the cap is 15.
	cpu := make([]float64, 40)
	for i := range cpu {
		cpu[i] = 0.8
	}
	free := make([]int, 40)
	for i := range free {
		free[i] = 50
	}
	v := testView(cpu, free)
	d := (OptIOCPU{}).Decide(q(125, 30, 3), v, rng())
	if d.Degree() != 15 {
		t.Errorf("OPT-IO-CPU degree=%d, want 15 (CPU cap)", d.Degree())
	}
}

func TestOptIOCPUAvoidsOLTPNodesUnderLowCPU(t *testing.T) {
	// Fig. 9a scenario: low average CPU, but some nodes memory-laden
	// (OLTP). pmu-cpu+LUM would use psu-opt nodes including busy ones;
	// OPT-IO-CPU picks a smaller degree avoiding I/O on the free nodes.
	n := 10
	cpu := make([]float64, n)
	free := make([]int, n)
	for i := range free {
		if i < 2 { // OLTP nodes: busy memory
			free[i] = 5
			cpu[i] = 0.5
		} else {
			free[i] = 50
			cpu[i] = 0.1
		}
	}
	v := testView(cpu, free)
	// hp = 132; avoidance needs free[k-1]*k > 132: k=3..8 on the 50-page
	// nodes (free sorted desc: 50 x8, then 5,5).
	qi := q(125, 10, 3) // psu-opt = n: static would use every node
	d := (OptIOCPU{}).Decide(qi, v, rng())
	for _, pe := range d.JoinPEs {
		if pe < 2 {
			t.Errorf("OPT-IO-CPU placed join on OLTP node %d: %v", pe, d.JoinPEs)
		}
	}
	if d.Degree() > 8 {
		t.Errorf("OPT-IO-CPU degree=%d, want <= 8 (only memory-free nodes)", d.Degree())
	}
}

func TestCriticalOverflowMetric(t *testing.T) {
	// Footnote 5: need 10 pages, availability 8,1,0,0.
	avail := []int{8, 1, 0, 0}
	if got := criticalOverflow(avail, 10, 1); got != 2 {
		t.Errorf("critical overflow k=1: %d, want 2", got)
	}
	if got := criticalOverflow(avail, 10, 2); got != 4 { // per=5, worst node has 1
		t.Errorf("critical overflow k=2: %d, want 4", got)
	}
	if got := criticalOverflow(avail, 10, 4); got != 3 { // per=3, worst node has 0
		t.Errorf("critical overflow k=4: %d, want 3", got)
	}
	if got := minOverflowDegree(avail, 10, 4); got != 1 {
		t.Errorf("minOverflowDegree=%d, want 1 (footnote 5)", got)
	}
}

func TestMinOverflowSpreadsUnderGlobalScarcity(t *testing.T) {
	// Every node almost full: spreading shrinks the per-node share, so the
	// overflow-minimizing degree grows toward the system size (the paper's
	// MIN-IO behaviour on larger systems).
	avail := make([]int, 80)
	for i := range avail {
		avail[i] = 2
	}
	if got := minOverflowDegree(avail, 132, 80); got < 60 {
		t.Errorf("minOverflowDegree=%d under scarcity, want >= 60", got)
	}
}

func TestControlNodeReportSmoothing(t *testing.T) {
	c := NewControlNode(2, 0.5, true)
	c.Report(0, 0.8, 40)
	if got := c.View().CPU[0]; got != 0.4 {
		t.Errorf("smoothed CPU=%v, want 0.4", got)
	}
	c.Report(0, 0.8, 35)
	if got := c.View().CPU[0]; got < 0.599 || got > 0.601 {
		t.Errorf("smoothed CPU=%v, want 0.6", got)
	}
	if c.View().FreeMem[0] != 35 {
		t.Errorf("free mem not replaced: %d", c.View().FreeMem[0])
	}
	if c.Reports() != 2 {
		t.Errorf("reports=%d", c.Reports())
	}
}

func TestControlNodeAdaptiveMutatesView(t *testing.T) {
	c := NewControlNode(4, 1, true)
	for pe := 0; pe < 4; pe++ {
		c.Report(pe, 0.1, 50)
	}
	c.Decide(Isolated{Deg: StaticDegree{P: 2}, Sel: LUM{}}, q(80, 4, 2), rng())
	bumped := 0
	for _, f := range c.View().FreeMem {
		if f < 50 {
			bumped++
		}
	}
	if bumped != 2 {
		t.Errorf("adaptive decide bumped %d nodes, want 2", bumped)
	}
}

func TestControlNodeNonAdaptiveKeepsView(t *testing.T) {
	c := NewControlNode(4, 1, false)
	for pe := 0; pe < 4; pe++ {
		c.Report(pe, 0.1, 50)
	}
	c.Decide(Isolated{Deg: StaticDegree{P: 2}, Sel: LUM{}}, q(80, 4, 2), rng())
	for pe, f := range c.View().FreeMem {
		if f != 50 {
			t.Errorf("non-adaptive decide mutated view: PE %d free=%d", pe, f)
		}
	}
}

func TestByNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) did not fail")
	}
	if _, err := ByName("psu-opt+bogus"); err == nil {
		t.Error("ByName(psu-opt+bogus) did not fail")
	}
	if _, err := ByName("bogus+LUM"); err == nil {
		t.Error("ByName(bogus+LUM) did not fail")
	}
}

// Property: every strategy returns a valid decision — degree within [1, n],
// distinct in-range PEs, positive memory demand.
func TestQuickAllStrategiesValidDecisions(t *testing.T) {
	strategies := make([]Strategy, 0, len(Names()))
	for _, name := range Names() {
		strategies = append(strategies, MustByName(name))
	}
	f := func(seed int64, nRaw, pagesRaw uint8, cpuRaw []uint8) bool {
		n := int(nRaw)%30 + 2
		r := rand.New(rand.NewSource(seed))
		cpu := make([]float64, n)
		free := make([]int, n)
		for i := range cpu {
			if len(cpuRaw) > 0 {
				cpu[i] = float64(cpuRaw[i%len(cpuRaw)]) / 255
			}
			free[i] = r.Intn(51)
		}
		qi := QueryInfo{
			InnerPages: int64(pagesRaw)%200 + 1,
			Fudge:      1.05,
			PsuOpt:     r.Intn(40) + 1,
			PsuNoIO:    r.Intn(10) + 1,
		}
		for _, s := range strategies {
			v := testView(append([]float64(nil), cpu...), append([]int(nil), free...))
			d := s.Decide(qi, v, r)
			if d.Degree() < 1 || d.Degree() > n || d.MemPerPE < 1 {
				return false
			}
			seen := map[int]bool{}
			for _, pe := range d.JoinPEs {
				if pe < 0 || pe >= n || seen[pe] {
					return false
				}
				seen[pe] = true
			}
			for _, fm := range v.FreeMem {
				if fm < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: MIN-IO's degree is minimal among avoidance degrees whenever one
// exists: no smaller k satisfies formula 3.3.
func TestQuickMinIOMinimality(t *testing.T) {
	f := func(freeRaw []uint8, pagesRaw uint16) bool {
		if len(freeRaw) < 2 {
			return true
		}
		n := len(freeRaw)
		if n > 40 {
			n = 40
		}
		free := make([]int, n)
		for i := 0; i < n; i++ {
			free[i] = int(freeRaw[i]) % 60
		}
		qi := QueryInfo{InnerPages: int64(pagesRaw)%500 + 1, Fudge: 1.05, PsuOpt: 10, PsuNoIO: 2}
		v := testView(make([]float64, n), free)
		avail := sortedFree(v)
		d := (MinIO{NoBump: true}).Decide(qi, v, rand.New(rand.NewSource(1)))
		k := d.Degree()
		hp := qi.HashPages()
		if avail[k-1]*k > hp {
			// avoidance achieved: verify minimality
			for j := 1; j < k; j++ {
				if avail[j-1]*j > hp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
