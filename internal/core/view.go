// Package core implements the paper's contribution: the control-node state
// and the family of static/dynamic, isolated/integrated multi-resource
// load-balancing strategies for parallel hash-join processing (Section 3 of
// Rahm & Marek, VLDB '95).
//
// The package is pure decision logic over a View of the system state; the
// simulation engine owns the message flow that keeps the view current
// (periodic utilization reports) and pays its communication costs.
package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// View is the control node's knowledge of the system: per-PE CPU
// utilization and free memory (the AVAIL-MEMORY array of Section 3.3). It
// is a snapshot — possibly stale, which is exactly why the adaptive bumping
// of Section 3.2 exists.
type View struct {
	CPU     []float64 // per-PE CPU utilization in [0,1]
	FreeMem []int     // per-PE available buffer pages

	// Health is the failure detector's knowledge of each PE: 1 healthy,
	// 0 down (crashed, unavailable), in between degraded (service times
	// stretched by roughly 1/Health — a straggling CPU or slow disk). nil
	// when no failure has ever been reported, which is the fault-free fast
	// path: every ordering and selection below then behaves exactly as if
	// all PEs were healthy.
	Health []float64
}

// N returns the number of PEs in the view.
func (v *View) N() int { return len(v.CPU) }

// Alive reports whether pe is selectable. A view without failure
// information treats every PE as alive.
func (v *View) Alive(pe int) bool { return v.Health == nil || v.Health[pe] > 0 }

// AliveN returns the number of selectable PEs (N without failure info).
func (v *View) AliveN() int {
	if v.Health == nil {
		return len(v.CPU)
	}
	n := 0
	for _, h := range v.Health {
		if h > 0 {
			n++
		}
	}
	return n
}

// effCPU is the failure-deweighted CPU key: a degraded PE looks
// proportionally busier (its service times are stretched), so load-based
// selection sheds work from it.
func (v *View) effCPU(pe int) float64 {
	if v.Health == nil {
		return v.CPU[pe]
	}
	h := v.Health[pe]
	if h <= 0 || h >= 1 {
		return v.CPU[pe]
	}
	return v.CPU[pe] / h
}

// effFreeMem is the failure-deweighted memory key: a degraded PE's memory
// is worth less (its I/O and CPU are slower), a dead PE's nothing.
func (v *View) effFreeMem(pe int) float64 {
	if v.Health == nil {
		return float64(v.FreeMem[pe])
	}
	return float64(v.FreeMem[pe]) * v.Health[pe]
}

// AvgCPU returns the mean CPU utilization over the alive PEs (the u_cpu of
// formula 3.2). Dead PEs report near-zero utilization and would drag the
// average down, inflating dynamic degrees exactly when capacity shrank.
func (v *View) AvgCPU() float64 {
	var s float64
	n := 0
	for pe, u := range v.CPU {
		if !v.Alive(pe) {
			continue
		}
		s += u
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// ByFreeMem returns PE ids sorted by free memory descending (AVAIL-MEMORY
// order), ties broken by PE id for determinism. With failure information
// present, alive PEs order first by deweighted free memory; dead PEs sink
// to the end.
func (v *View) ByFreeMem() []int {
	ids := idSlice(len(v.FreeMem))
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if aa, ab := v.Alive(a), v.Alive(b); aa != ab {
			return aa
		}
		if fa, fb := v.effFreeMem(a), v.effFreeMem(b); fa != fb {
			return fa > fb
		}
		return a < b
	})
	return ids
}

// ByCPU returns PE ids sorted by CPU utilization ascending (least utilized
// first), ties broken by PE id. With failure information present, alive
// PEs order first by deweighted utilization; dead PEs sink to the end.
func (v *View) ByCPU() []int {
	ids := idSlice(len(v.CPU))
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if aa, ab := v.Alive(a), v.Alive(b); aa != ab {
			return aa
		}
		if ca, cb := v.effCPU(a), v.effCPU(b); ca != cb {
			return ca < cb
		}
		return a < b
	})
	return ids
}

// byFreeMemR is ByFreeMem with randomized tie-breaking: PEs with equal free
// memory are ordered randomly, not by id. In a homogeneous system many PEs
// tie (all buffers equally free), and deterministic ties would herd every
// selection onto the same low-id nodes.
func (v *View) byFreeMemR(rng *rand.Rand) []int {
	ids := shuffled(len(v.FreeMem), rng)
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if aa, ab := v.Alive(a), v.Alive(b); aa != ab {
			return aa
		}
		return v.effFreeMem(a) > v.effFreeMem(b)
	})
	return ids
}

// byCPUR is ByCPU with randomized tie-breaking.
func (v *View) byCPUR(rng *rand.Rand) []int {
	ids := shuffled(len(v.CPU), rng)
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if aa, ab := v.Alive(a), v.Alive(b); aa != ab {
			return aa
		}
		return v.effCPU(a) < v.effCPU(b)
	})
	return ids
}

func shuffled(n int, rng *rand.Rand) []int {
	if rng == nil {
		return idSlice(n)
	}
	return rng.Perm(n)
}

// Clone deep-copies the view (strategies may bump it during selection).
func (v *View) Clone() *View {
	return &View{
		CPU:     append([]float64(nil), v.CPU...),
		FreeMem: append([]int(nil), v.FreeMem...),
		Health:  append([]float64(nil), v.Health...),
	}
}

// clampAlive bounds a selection size by the number of alive PEs (at least
// one): view-driven selections never place work on a PE known to be down.
func clampAlive(k int, v *View) int {
	if a := v.AliveN(); a > 0 && k > a {
		return a
	}
	if k < 1 {
		return 1
	}
	return k
}

func idSlice(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// QueryInfo carries the per-query quantities strategies reason about.
type QueryInfo struct {
	InnerPages int64   // b_i: pages of the (selected) inner join input
	Fudge      float64 // hash table fudge factor F
	PsuOpt     int     // single-user optimal degree (cost model)
	PsuNoIO    int     // formula 3.1 degree
}

// HashPages returns ceil(b_i * F): the pages the full inner hash table
// needs.
func (q QueryInfo) HashPages() int {
	hp := int64(float64(q.InnerPages)*q.Fudge + 0.9999)
	if hp < 1 {
		hp = 1
	}
	return int(hp)
}

// Decision is a strategy's output: where to run the join and how much
// working space each join process should request.
type Decision struct {
	JoinPEs  []int // selected join processors
	MemPerPE int   // desired working-space pages per join processor
}

// Degree returns the chosen degree of join parallelism.
func (d Decision) Degree() int { return len(d.JoinPEs) }

func (d Decision) String() string {
	return fmt.Sprintf("p=%d mem/PE=%d PEs=%v", len(d.JoinPEs), d.MemPerPE, d.JoinPEs)
}

// Strategy decides the degree of join parallelism and the join processors
// for one query, given the current control-node view.
type Strategy interface {
	// Name returns the paper's identifier, e.g. "psu-opt+RANDOM".
	Name() string
	// Decide picks join processors for q. Implementations must not retain
	// v. rng provides the only randomness (RANDOM selection).
	Decide(q QueryInfo, v *View, rng *rand.Rand) Decision
}

// memPerPE returns the working-space demand when the hash table is split
// over k join processors.
func memPerPE(q QueryInfo, k int) int {
	if k < 1 {
		k = 1
	}
	return (q.HashPages() + k - 1) / k
}
