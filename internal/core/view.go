// Package core implements the paper's contribution: the control-node state
// and the family of static/dynamic, isolated/integrated multi-resource
// load-balancing strategies for parallel hash-join processing (Section 3 of
// Rahm & Marek, VLDB '95).
//
// The package is pure decision logic over a View of the system state; the
// simulation engine owns the message flow that keeps the view current
// (periodic utilization reports) and pays its communication costs.
package core

import (
	"fmt"
	"math/rand"
	"sort"
)

// View is the control node's knowledge of the system: per-PE CPU
// utilization and free memory (the AVAIL-MEMORY array of Section 3.3). It
// is a snapshot — possibly stale, which is exactly why the adaptive bumping
// of Section 3.2 exists.
type View struct {
	CPU     []float64 // per-PE CPU utilization in [0,1]
	FreeMem []int     // per-PE available buffer pages
}

// N returns the number of PEs in the view.
func (v *View) N() int { return len(v.CPU) }

// AvgCPU returns the mean CPU utilization over all PEs (the u_cpu of
// formula 3.2).
func (v *View) AvgCPU() float64 {
	if len(v.CPU) == 0 {
		return 0
	}
	var s float64
	for _, u := range v.CPU {
		s += u
	}
	return s / float64(len(v.CPU))
}

// ByFreeMem returns PE ids sorted by free memory descending (AVAIL-MEMORY
// order), ties broken by PE id for determinism.
func (v *View) ByFreeMem() []int {
	ids := idSlice(len(v.FreeMem))
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if v.FreeMem[a] != v.FreeMem[b] {
			return v.FreeMem[a] > v.FreeMem[b]
		}
		return a < b
	})
	return ids
}

// ByCPU returns PE ids sorted by CPU utilization ascending (least utilized
// first), ties broken by PE id.
func (v *View) ByCPU() []int {
	ids := idSlice(len(v.CPU))
	sort.SliceStable(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if v.CPU[a] != v.CPU[b] {
			return v.CPU[a] < v.CPU[b]
		}
		return a < b
	})
	return ids
}

// byFreeMemR is ByFreeMem with randomized tie-breaking: PEs with equal free
// memory are ordered randomly, not by id. In a homogeneous system many PEs
// tie (all buffers equally free), and deterministic ties would herd every
// selection onto the same low-id nodes.
func (v *View) byFreeMemR(rng *rand.Rand) []int {
	ids := shuffled(len(v.FreeMem), rng)
	sort.SliceStable(ids, func(i, j int) bool {
		return v.FreeMem[ids[i]] > v.FreeMem[ids[j]]
	})
	return ids
}

// byCPUR is ByCPU with randomized tie-breaking.
func (v *View) byCPUR(rng *rand.Rand) []int {
	ids := shuffled(len(v.CPU), rng)
	sort.SliceStable(ids, func(i, j int) bool {
		return v.CPU[ids[i]] < v.CPU[ids[j]]
	})
	return ids
}

func shuffled(n int, rng *rand.Rand) []int {
	if rng == nil {
		return idSlice(n)
	}
	return rng.Perm(n)
}

// Clone deep-copies the view (strategies may bump it during selection).
func (v *View) Clone() *View {
	return &View{
		CPU:     append([]float64(nil), v.CPU...),
		FreeMem: append([]int(nil), v.FreeMem...),
	}
}

func idSlice(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// QueryInfo carries the per-query quantities strategies reason about.
type QueryInfo struct {
	InnerPages int64   // b_i: pages of the (selected) inner join input
	Fudge      float64 // hash table fudge factor F
	PsuOpt     int     // single-user optimal degree (cost model)
	PsuNoIO    int     // formula 3.1 degree
}

// HashPages returns ceil(b_i * F): the pages the full inner hash table
// needs.
func (q QueryInfo) HashPages() int {
	hp := int64(float64(q.InnerPages)*q.Fudge + 0.9999)
	if hp < 1 {
		hp = 1
	}
	return int(hp)
}

// Decision is a strategy's output: where to run the join and how much
// working space each join process should request.
type Decision struct {
	JoinPEs  []int // selected join processors
	MemPerPE int   // desired working-space pages per join processor
}

// Degree returns the chosen degree of join parallelism.
func (d Decision) Degree() int { return len(d.JoinPEs) }

func (d Decision) String() string {
	return fmt.Sprintf("p=%d mem/PE=%d PEs=%v", len(d.JoinPEs), d.MemPerPE, d.JoinPEs)
}

// Strategy decides the degree of join parallelism and the join processors
// for one query, given the current control-node view.
type Strategy interface {
	// Name returns the paper's identifier, e.g. "psu-opt+RANDOM".
	Name() string
	// Decide picks join processors for q. Implementations must not retain
	// v. rng provides the only randomness (RANDOM selection).
	Decide(q QueryInfo, v *View, rng *rand.Rand) Decision
}

// memPerPE returns the working-space demand when the hash table is split
// over k join processors.
func memPerPE(q QueryInfo, k int) int {
	if k < 1 {
		k = 1
	}
	return (q.HashPages() + k - 1) / k
}
