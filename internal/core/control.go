package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// ControlNode keeps the designated node's view of the system. PEs
// periodically report their CPU utilization and the memory demand of
// higher-priority work (pinned pages, OLTP workspaces); the engine carries
// the messages. Join working-space memory is not taken from the reports:
// the control node placed every join itself, so it keeps a reservation
// ledger (outstanding pages per PE, from placement until the query's
// completion notice). This is the paper's "adaptive variation" — the
// control node's information is adjusted for newly selected processors so
// consecutive queries between reports do not herd — made persistent and
// exact for memory. For CPU the classic transient bump applies (LUC).
type ControlNode struct {
	view         *View
	reportedFree []int // non-query available memory, from PE reports
	outstanding  []int // pages reserved by in-flight joins, per PE
	smoothing    float64
	adaptive     bool
	reports      int64
	decisions    int64
}

// NewControlNode creates a control node for n PEs with the given CPU
// report smoothing factor (0 < smoothing <= 1; 1 means replace) and
// the adaptive information adjustment enabled or not.
func NewControlNode(n int, smoothing float64, adaptive bool) *ControlNode {
	if smoothing <= 0 || smoothing > 1 {
		panic(fmt.Sprintf("core: smoothing %v outside (0,1]", smoothing))
	}
	return &ControlNode{
		view: &View{
			CPU:     make([]float64, n),
			FreeMem: make([]int, n),
		},
		reportedFree: make([]int, n),
		outstanding:  make([]int, n),
		smoothing:    smoothing,
		adaptive:     adaptive,
	}
}

// Report integrates a PE's periodic utilization report. CPU utilization is
// smoothed; freeMem is the PE's memory not taken by higher-priority work
// (the join reservations are tracked by the ledger instead).
func (c *ControlNode) Report(pe int, cpuUtil float64, freeMem int) {
	c.reports++
	c.view.CPU[pe] = (1-c.smoothing)*c.view.CPU[pe] + c.smoothing*cpuUtil
	c.reportedFree[pe] = freeMem
	c.refresh(pe)
}

func (c *ControlNode) refresh(pe int) {
	f := c.reportedFree[pe]
	if c.adaptive {
		f -= c.outstanding[pe]
	}
	if f < 0 {
		f = 0
	}
	c.view.FreeMem[pe] = f
}

// SetHealth records the failure detector's knowledge of a PE: 1 healthy,
// 0 down, in between degraded (see View.Health). The engine's fault events
// call this directly — an ideal, zero-latency failure detector; the view's
// Health vector is allocated lazily so fault-free runs keep the nil fast
// path and its bit-identical orderings.
func (c *ControlNode) SetHealth(pe int, h float64) {
	if c.view.Health == nil {
		c.view.Health = make([]float64, len(c.view.CPU))
		for i := range c.view.Health {
			c.view.Health[i] = 1
		}
	}
	c.view.Health[pe] = h
}

// Reports returns the number of reports received.
func (c *ControlNode) Reports() int64 { return c.reports }

// Decisions returns the number of Decide calls served.
func (c *ControlNode) Decisions() int64 { return c.decisions }

// View returns the current view (live; callers must not mutate).
func (c *ControlNode) View() *View { return c.view }

// Outstanding returns the ledgered join reservation of a PE.
func (c *ControlNode) Outstanding(pe int) int { return c.outstanding[pe] }

// Decide runs the strategy against the current view and, when adaptive,
// books the placement in the reservation ledger. The caller must pair it
// with Release when the query completes.
func (c *ControlNode) Decide(s Strategy, q QueryInfo, rng *rand.Rand) Decision {
	c.decisions++
	v := c.view
	if !c.adaptive {
		v = c.view.Clone()
	}
	d := s.Decide(q, v, rng)
	if len(d.JoinPEs) == 0 {
		panic(fmt.Sprintf("core: strategy %s returned empty selection", s.Name()))
	}
	if c.adaptive {
		for _, pe := range d.JoinPEs {
			c.outstanding[pe] += d.MemPerPE
			c.refresh(pe)
		}
	}
	return d
}

// Release returns a completed query's reservation to the ledger.
func (c *ControlNode) Release(d Decision) {
	if !c.adaptive {
		return
	}
	for _, pe := range d.JoinPEs {
		c.outstanding[pe] -= d.MemPerPE
		if c.outstanding[pe] < 0 {
			c.outstanding[pe] = 0
		}
		c.refresh(pe)
	}
}

// ByName constructs the strategies evaluated in the paper by their
// figure-label names. Recognized names:
//
//	psu-opt+RANDOM   psu-opt+LUC   psu-opt+LUM
//	psu-noIO+RANDOM  psu-noIO+LUC  psu-noIO+LUM
//	pmu-cpu+RANDOM   pmu-cpu+LUC   pmu-cpu+LUM
//	MIN-IO           MIN-IO-SUOPT  OPT-IO-CPU
//
// Fixed static degrees parse as "p=N" degree policies (e.g. "p=7+RANDOM"),
// so every built-in Strategy's Name() round-trips through ByName — the
// property remote executors rely on to reconstruct a strategy from its
// wire name.
func ByName(name string) (Strategy, error) {
	switch name {
	case "MIN-IO":
		return MinIO{}, nil
	case "MIN-IO-SUOPT":
		return MinIOSuOpt{}, nil
	case "OPT-IO-CPU":
		return OptIOCPU{}, nil
	}
	parts := strings.SplitN(name, "+", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("core: unknown strategy %q", name)
	}
	var deg DegreePolicy
	switch parts[0] {
	case "psu-opt":
		deg = StaticSuOpt{}
	case "psu-noIO":
		deg = StaticNoIO{}
	case "pmu-cpu":
		deg = DynamicCPU{}
	default:
		num, ok := strings.CutPrefix(parts[0], "p=")
		if !ok {
			return nil, fmt.Errorf("core: unknown degree policy %q", parts[0])
		}
		p, err := strconv.Atoi(num)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("core: bad fixed degree %q (want p=N with N >= 1)", parts[0])
		}
		deg = StaticDegree{P: p}
	}
	var sel SelectionPolicy
	switch parts[1] {
	case "RANDOM":
		sel = RandomSelect{}
	case "LUC":
		sel = LUC{}
	case "LUM":
		sel = LUM{}
	default:
		return nil, fmt.Errorf("core: unknown selection policy %q", parts[1])
	}
	return Isolated{Deg: deg, Sel: sel}, nil
}

// MustByName is ByName panicking on unknown names (static tables).
func MustByName(name string) Strategy {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all built-in strategy names, sorted.
func Names() []string {
	names := []string{"MIN-IO", "MIN-IO-SUOPT", "OPT-IO-CPU"}
	for _, d := range []string{"psu-opt", "psu-noIO", "pmu-cpu"} {
		for _, s := range []string{"RANDOM", "LUC", "LUM"} {
			names = append(names, d+"+"+s)
		}
	}
	sort.Strings(names)
	return names
}
