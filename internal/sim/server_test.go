package sim

import (
	"testing"
	"testing/quick"
)

func TestServerSingleExclusive(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "disk", 1)
	var done []Time
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) {
			srv.Use(p, 10*Millisecond)
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	want := []Time{10 * Millisecond, 20 * Millisecond, 30 * Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestServerMultiCapacityParallel(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "cpu", 2)
	var done []Time
	for i := 0; i < 4; i++ {
		k.Spawn("u", func(p *Proc) {
			srv.Use(p, 10*Millisecond)
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	// two at a time: finish at 10,10,20,20
	want := []Time{10 * Millisecond, 10 * Millisecond, 20 * Millisecond, 20 * Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestServerFCFSOrder(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.SpawnAt(Time(i)*Microsecond, "u", func(p *Proc) {
			srv.Use(p, 1*Millisecond)
			order = append(order, i)
		})
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v not FCFS", order)
		}
	}
}

func TestServerUtilization(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	k.Spawn("u", func(p *Proc) { srv.Use(p, 30*Millisecond) })
	k.Run(60 * Millisecond)
	u := srv.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestServerUtilizationMultiCap(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 4)
	// one of four servers busy the whole time => 25%
	k.Spawn("u", func(p *Proc) { srv.Use(p, 100*Millisecond) })
	k.Run(100 * Millisecond)
	u := srv.Utilization()
	if u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestServerUtilizationSinceWindow(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	// busy [0,50ms], idle [50,100ms]
	k.Spawn("u", func(p *Proc) { srv.Use(p, 50*Millisecond) })
	k.Run(50 * Millisecond)
	mark := srv.BusyIntegral()
	from := k.Now()
	k.Run(100 * Millisecond)
	u := srv.UtilizationSince(from, mark)
	if u != 0 {
		t.Fatalf("post-warmup utilization = %v, want 0", u)
	}
}

func TestServerAcquireReleaseBracket(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	var second Time
	k.Spawn("a", func(p *Proc) {
		srv.Acquire(p)
		p.Wait(5 * Millisecond)
		p.Wait(5 * Millisecond)
		srv.Release()
	})
	k.Spawn("b", func(p *Proc) {
		srv.Acquire(p)
		second = p.Now()
		srv.Release()
	})
	k.RunAll()
	if second != 10*Millisecond {
		t.Fatalf("second acquire at %v, want 10ms", second)
	}
}

func TestServerReleaseUnderflowPanics(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	defer func() {
		if recover() == nil {
			t.Error("release below zero did not panic")
		}
	}()
	srv.Release()
}

func TestServerQueueAndWaitStats(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) { srv.Use(p, 10*Millisecond) })
	}
	k.RunAll()
	if srv.Served() != 3 {
		t.Errorf("served=%d, want 3", srv.Served())
	}
	// waits: 0, 10ms, 20ms over 3 grants => mean 10ms
	if srv.MeanWait() != 10*Millisecond {
		t.Errorf("mean wait = %v, want 10ms", srv.MeanWait())
	}
	if srv.MeanQueueLen() <= 0 {
		t.Errorf("mean queue len = %v, want > 0", srv.MeanQueueLen())
	}
}

func TestServerBlockedCount(t *testing.T) {
	k := NewKernel()
	srv := NewServer(k, "s", 1)
	k.Spawn("hold", func(p *Proc) {
		srv.Acquire(p)
		p.Wait(10 * Millisecond)
		if k.Blocked() != 1 {
			t.Errorf("blocked=%d mid-hold, want 1", k.Blocked())
		}
		srv.Release()
	})
	k.Spawn("wait", func(p *Proc) { srv.Use(p, Millisecond) })
	k.RunAll()
	if k.Blocked() != 0 {
		t.Errorf("blocked=%d at end, want 0", k.Blocked())
	}
}

// Property: with a single server, total completion time of n jobs equals the
// sum of their service demands (work conservation), and utilization is the
// busy fraction.
func TestQuickServerWorkConservation(t *testing.T) {
	f := func(demands []uint8) bool {
		if len(demands) == 0 {
			return true
		}
		k := NewKernel()
		srv := NewServer(k, "s", 1)
		var sum Time
		for _, d := range demands {
			dd := Duration(int(d)+1) * Microsecond
			sum += dd
			k.Spawn("u", func(p *Proc) { srv.Use(p, dd) })
		}
		end := k.RunAll()
		return end == sum && srv.Served() == int64(len(demands))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
