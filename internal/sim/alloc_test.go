package sim

import "testing"

// Alloc-regression guard: the four hot paths of the simulator — the raw
// event path, the Wait loop, contended server handoff and mailbox
// ping-pong — must stay at zero steady-state allocations. The benchmarks
// document this; this test makes it a CI gate (-short safe, no -bench run
// needed). Any regression here means a new code path allocates per event
// and will show up as runtime.mallocgc in sweep profiles.

// measureSteadyAllocs reports the average allocations of advancing the
// kernel by `step` per call after a warm-up that populates the event pool,
// free lists and goroutine stacks.
func measureSteadyAllocs(t *testing.T, k *Kernel, step Duration) float64 {
	t.Helper()
	horizon := k.Now()
	advance := func() {
		horizon += step
		k.Run(horizon)
	}
	// Warm-up must cover several full calendar-wheel revolutions
	// (calBuckets << calShift ≈ 33.6 ms each): every bucket allocates its
	// backing array on first touch, and because event alignment against
	// the 4.1 µs bucket grid shifts between revolutions, a bucket may not
	// see its peak occupancy — and final capacity — until a few passes
	// in. Pools, free lists and goroutine stacks fill on the way.
	warm := horizon + 5*(Time(calBuckets)<<calShift) + step
	for horizon < warm {
		advance()
	}
	return testing.AllocsPerRun(100, advance)
}

func requireZeroAllocs(t *testing.T, name string, avg float64) {
	t.Helper()
	if avg != 0 {
		t.Errorf("%s: %.2f allocs per horizon advance, want 0", name, avg)
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	t.Run("eventDispatch", func(t *testing.T) {
		k := NewKernel()
		// Hold model with fixed 640 ns spacing: every 4.1 µs wheel bucket
		// holds 6-7 events at any grid alignment, so each bucket's first
		// fill grows its array to the power-of-two capacity (8) that also
		// covers the worst alignment — capacities saturate in one
		// revolution. (A sparser lattice leaves some buckets one growth
		// step short, and as alignment drifts between revolutions those
		// buckets keep reallocating — a property of the workload shape,
		// not an event-path allocation.)
		const population = 64
		const spacing = 640 * Nanosecond
		var fire func()
		fire = func() { k.At(k.Now()+population*spacing, fire) }
		for i := 0; i < population; i++ {
			k.At(Time(i+1)*spacing, fire)
		}
		requireZeroAllocs(t, "event dispatch", measureSteadyAllocs(t, k, 100*Microsecond))
	})

	t.Run("waitLoop", func(t *testing.T) {
		k := NewKernel()
		stop := false
		k.Spawn("waiter", func(p *Proc) {
			for !stop {
				p.Wait(Microsecond)
			}
		})
		requireZeroAllocs(t, "wait loop", measureSteadyAllocs(t, k, 100*Microsecond))
		stop = true
		k.RunAll()
	})

	t.Run("serverContention", func(t *testing.T) {
		k := NewKernel()
		srv := NewServer(k, "cpu", 2)
		stop := false
		for i := 0; i < 8; i++ {
			k.Spawn("worker", func(p *Proc) {
				for !stop {
					srv.Use(p, Microsecond)
				}
			})
		}
		requireZeroAllocs(t, "server contention", measureSteadyAllocs(t, k, 100*Microsecond))
		stop = true
		k.RunAll()
	})

	t.Run("chanPingPong", func(t *testing.T) {
		k := NewKernel()
		ping := NewChan[int](k, "ping")
		pong := NewChan[int](k, "pong")
		stop := false
		k.Spawn("echo", func(p *Proc) {
			for {
				v, ok := ping.Get(p)
				if !ok {
					return
				}
				pong.Put(v)
			}
		})
		k.Spawn("driver", func(p *Proc) {
			for !stop {
				ping.Put(1)
				pong.Get(p)
				p.Wait(Microsecond)
			}
			ping.Close()
		})
		requireZeroAllocs(t, "chan ping-pong", measureSteadyAllocs(t, k, 100*Microsecond))
		stop = true
		k.RunAll()
	})
}

// TestSpawnZeroAllocs is the PR-6 gate for the million-client scenario: a
// driver spawning one short-lived process per interval (the shape of every
// OLTP transaction and commit participant). With worker pooling the spawn
// path must not allocate in steady state — the Proc, its resume channel and
// its goroutine stack are all reused from the pool, and the body is hoisted
// so the only per-spawn state is the SpawnArg scalar.
func TestSpawnZeroAllocs(t *testing.T) {
	k := NewKernel()
	stop := false
	var sink int64
	child := func(c *Proc) {
		sink += c.Arg()
		c.Wait(Microsecond)
	}
	k.Spawn("driver", func(p *Proc) {
		for i := int64(0); !stop; i++ {
			k.SpawnArg("child", i, child)
			p.Wait(2 * Microsecond)
		}
	})
	requireZeroAllocs(t, "spawn ephemeral", measureSteadyAllocs(t, k, 100*Microsecond))
	stop = true
	k.RunAll()
	if s := k.Stats(); s.SpawnReuses == 0 {
		t.Error("pool never engaged (SpawnReuses = 0)")
	}
	_ = sink
}
