package sim

// Chan is an unbounded FIFO mailbox between processes. Put never blocks;
// Get blocks the calling process until an item is available. Waiting readers
// are served FCFS. Chan carries operator data flow (e.g. redistributed
// tuples arriving at a join process) and control signals.
type Chan[T any] struct {
	k       *Kernel
	name    string
	buf     []T // items live in buf[head:]; capacity is retained across drains
	head    int
	readers []*Proc
	puts    int64
	closed  bool
}

// NewChan creates an empty mailbox.
func NewChan[T any](k *Kernel, name string) *Chan[T] {
	return &Chan[T]{k: k, name: name}
}

// Name returns the mailbox name.
func (c *Chan[T]) Name() string { return c.name }

// Len returns the number of buffered items.
func (c *Chan[T]) Len() int { return len(c.buf) - c.head }

// Puts returns the total number of items ever put.
func (c *Chan[T]) Puts() int64 { return c.puts }

// Put appends v and wakes the longest-waiting reader, if any.
// It may be called from kernel or process context.
func (c *Chan[T]) Put(v T) {
	if c.closed {
		panic("sim: put on closed Chan " + c.name)
	}
	c.puts++
	c.buf = append(c.buf, v)
	c.wakeOne()
}

// Close marks the channel closed. Blocked and future Gets return the zero
// value with ok=false once the buffer drains.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for len(c.readers) > 0 {
		c.wakeOne()
	}
}

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

func (c *Chan[T]) wakeOne() {
	if len(c.readers) == 0 {
		return
	}
	r := c.readers[0]
	copy(c.readers, c.readers[1:])
	c.readers[len(c.readers)-1] = nil
	c.readers = c.readers[:len(c.readers)-1]
	r.unpark()
}

// take removes and returns the head item; the buffer must be nonempty.
func (c *Chan[T]) take() T {
	v := c.buf[c.head]
	var zero T
	c.buf[c.head] = zero
	c.head++
	if c.head == len(c.buf) {
		// Drained: rewind into the same backing array.
		c.buf = c.buf[:0]
		c.head = 0
	} else if c.head >= 64 && c.head*2 >= len(c.buf) {
		// Mostly-dead prefix: compact so a never-fully-drained mailbox
		// does not grow without bound.
		n := copy(c.buf, c.buf[c.head:])
		clear(c.buf[n:])
		c.buf = c.buf[:n]
		c.head = 0
	}
	return v
}

// Get removes and returns the head item, blocking while the mailbox is
// empty. ok is false iff the channel is closed and drained.
func (c *Chan[T]) Get(p *Proc) (v T, ok bool) {
	for c.Len() == 0 {
		if c.closed {
			return v, false
		}
		c.readers = append(c.readers, p)
		c.k.blocked++
		p.block()
		c.k.blocked--
	}
	return c.take(), true
}

// GetAll removes and returns every buffered item, blocking while the
// mailbox is empty: a burst of deliveries costs its consumer one wake-up
// instead of one per message. Items are appended to buf in FIFO order (pass
// batch[:0] of a retained slice for an alloc-free steady state). ok is
// false iff the channel is closed and drained, in which case buf is
// returned unchanged.
//
// Consuming a GetAll batch in order is dispatch-identical to a loop of
// single Gets: Get never blocks — and so never schedules an event — while
// items remain buffered, and items put while the consumer is processing an
// earlier batch are simply picked up by the next drain, exactly as a
// single-Get loop would take them one by one.
func (c *Chan[T]) GetAll(p *Proc, buf []T) (batch []T, ok bool) {
	for c.Len() == 0 {
		if c.closed {
			return buf, false
		}
		c.readers = append(c.readers, p)
		c.k.blocked++
		p.block()
		c.k.blocked--
	}
	c.k.batchedGets++
	c.k.batchedItems += int64(c.Len())
	buf = append(buf, c.buf[c.head:]...)
	clear(c.buf[c.head:])
	c.buf = c.buf[:0]
	c.head = 0
	return buf, true
}

// TryGet removes and returns the head item without blocking.
func (c *Chan[T]) TryGet() (v T, ok bool) {
	if c.Len() == 0 {
		return v, false
	}
	return c.take(), true
}

// Barrier counts down from n; processes calling Wait block until Done has
// been called n times. It implements phase synchronization (e.g. "all scan
// subqueries finished, start probing").
type Barrier struct {
	k       *Kernel
	name    string
	pending int
	waiters []*Proc
}

// NewBarrier creates a barrier expecting n Done calls.
func NewBarrier(k *Kernel, name string, n int) *Barrier {
	return &Barrier{k: k, name: name, pending: n}
}

// Done decrements the barrier count; at zero all waiters are released.
func (b *Barrier) Done() {
	b.pending--
	if b.pending < 0 {
		panic("sim: barrier " + b.name + " over-released")
	}
	if b.pending == 0 {
		for _, p := range b.waiters {
			p.unpark()
		}
		b.waiters = nil
	}
}

// Add increases the expected Done count (only valid before release).
func (b *Barrier) Add(n int) {
	if b.pending == 0 {
		panic("sim: barrier " + b.name + " add after release")
	}
	b.pending += n
}

// Wait blocks p until the barrier count reaches zero.
func (b *Barrier) Wait(p *Proc) {
	if b.pending == 0 {
		return
	}
	b.waiters = append(b.waiters, p)
	b.k.blocked++
	p.block()
	b.k.blocked--
}

// Pending returns the remaining Done count.
func (b *Barrier) Pending() int { return b.pending }
