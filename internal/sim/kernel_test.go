package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelEventOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30*Millisecond, func() { got = append(got, 3) })
	k.At(10*Millisecond, func() { got = append(got, 1) })
	k.At(20*Millisecond, func() { got = append(got, 2) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30*Millisecond {
		t.Fatalf("clock = %v, want 30ms", k.Now())
	}
}

func TestKernelTieBreakBySeq(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Millisecond, func() { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not in registration order: %v", got)
		}
	}
}

// TestKernelSameTimeOrderAcrossNowQueue pins the (time, seq) contract at
// the seam between the calendar queue and the same-instant FIFO: an event
// scheduled *for* time T from inside the first event *at* T goes to the
// now-FIFO, but a calendar event at T registered earlier (lower seq) must
// still fire before it.
func TestKernelSameTimeOrderAcrossNowQueue(t *testing.T) {
	k := NewKernel()
	var got []string
	const T = 10 * Millisecond
	k.At(T, func() {
		got = append(got, "cal1")
		k.At(k.Now(), func() {
			got = append(got, "now1")
			// Nested same-instant scheduling keeps FIFO order too.
			k.At(k.Now(), func() { got = append(got, "now2") })
		})
	})
	k.At(T, func() { got = append(got, "cal2") })
	k.RunAll()
	want := []string{"cal1", "cal2", "now1", "now2"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-time dispatch order %v, want %v", got, want)
		}
	}
}

// TestKernelUnparkFIFO: processes unparked at the same instant resume in
// unpark order (they ride the now-FIFO).
func TestKernelUnparkFIFO(t *testing.T) {
	k := NewKernel()
	var procs []*Proc
	var order []int64
	for i := 0; i < 5; i++ {
		p := k.Spawn("sleeper", func(p *Proc) {
			p.Park()
			order = append(order, p.ID())
		})
		procs = append(procs, p)
	}
	k.At(Millisecond, func() {
		// Wake in reverse spawn order; resumes must follow unpark order.
		for i := len(procs) - 1; i >= 0; i-- {
			procs[i].Unpark()
		}
	})
	k.RunAll()
	if len(order) != 5 {
		t.Fatalf("resumed %d procs, want 5", len(order))
	}
	for i := range order {
		if order[i] != int64(5-i) {
			t.Fatalf("resume order %v, want unpark (reverse-spawn) order", order)
		}
	}
}

// TestKernelHoldModelOrdering stresses the calendar queue with the hold
// model across all its regimes — same-instant events, wheel-bucket events
// and beyond-horizon overflow events — and requires a monotone clock and
// exact event accounting.
func TestKernelHoldModelOrdering(t *testing.T) {
	k := NewKernel()
	rng := rand.New(rand.NewSource(3))
	const population = 64
	fired, stop := 0, 200000
	var self func()
	self = func() {
		fired++
		if fired >= stop {
			return
		}
		// Offsets from 0 (now-FIFO) through mid-wheel to several times the
		// wheel horizon (overflow heap).
		switch rng.Intn(4) {
		case 0:
			k.At(k.Now(), self)
		case 1:
			k.After(Duration(rng.Intn(1000))*Nanosecond, self)
		case 2:
			k.After(Duration(rng.Intn(10))*Millisecond, self)
		default:
			k.After(Duration(rng.Intn(200))*Millisecond, self)
		}
	}
	for i := 0; i < population; i++ {
		k.At(Duration(rng.Intn(50))*Millisecond, self)
	}
	last := Time(-1)
	prev := 0
	for k.Pending() > 0 {
		if k.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", k.Now(), last)
		}
		last = k.Now()
		k.Run(last + 10*Millisecond)
		if fired < prev {
			t.Fatalf("fired count decreased")
		}
		prev = fired
	}
	if fired < stop {
		t.Fatalf("fired %d events, want >= %d", fired, stop)
	}
}

func TestKernelRunUntilStopsAndResumes(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(10*Millisecond, func() { fired++ })
	k.At(20*Millisecond, func() { fired++ })
	k.Run(15 * Millisecond)
	if fired != 1 {
		t.Fatalf("fired=%d after first horizon, want 1", fired)
	}
	if k.Now() != 15*Millisecond {
		t.Fatalf("now=%v, want 15ms", k.Now())
	}
	k.Run(25 * Millisecond)
	if fired != 2 {
		t.Fatalf("fired=%d after second horizon, want 2", fired)
	}
}

func TestKernelRunUntilInclusive(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(10*Millisecond, func() { fired = true })
	k.Run(10 * Millisecond)
	if !fired {
		t.Fatal("event exactly at horizon did not fire")
	}
}

func TestKernelPastEventPanics(t *testing.T) {
	k := NewKernel()
	k.At(10*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5*Millisecond, func() {})
	})
	k.RunAll()
}

func TestProcWaitAdvancesClock(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Wait(42 * Millisecond)
		woke = p.Now()
	})
	k.RunAll()
	if woke != 42*Millisecond {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
	if k.Live() != 0 {
		t.Fatalf("live=%d after completion, want 0", k.Live())
	}
}

func TestProcWaitZeroIsNoop(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Spawn("p", func(p *Proc) {
		p.Wait(0)
		ran = true
	})
	k.RunAll()
	if !ran {
		t.Fatal("process with zero wait did not complete")
	}
}

func TestProcWaitUntil(t *testing.T) {
	k := NewKernel()
	var ts []Time
	k.Spawn("p", func(p *Proc) {
		p.WaitUntil(5 * Millisecond)
		ts = append(ts, p.Now())
		p.WaitUntil(3 * Millisecond) // in the past: no-op
		ts = append(ts, p.Now())
	})
	k.RunAll()
	if ts[0] != 5*Millisecond || ts[1] != 5*Millisecond {
		t.Fatalf("WaitUntil times %v", ts)
	}
}

func TestSpawnWithinProcess(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("outer", func(p *Proc) {
		order = append(order, "outer-start")
		p.k.Spawn("inner", func(q *Proc) {
			order = append(order, "inner")
		})
		p.Wait(1 * Millisecond)
		order = append(order, "outer-end")
	})
	k.RunAll()
	want := []string{"outer-start", "inner", "outer-end"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSpawnAtFuture(t *testing.T) {
	k := NewKernel()
	var started Time
	k.SpawnAt(7*Millisecond, "late", func(p *Proc) { started = p.Now() })
	k.RunAll()
	if started != 7*Millisecond {
		t.Fatalf("started at %v, want 7ms", started)
	}
}

// TestDeterminism runs a small random process soup twice and requires
// identical traces: the kernel must be bit-reproducible for a fixed seed.
func TestDeterminism(t *testing.T) {
	trace := func(seed int64) []Time {
		k := NewKernel()
		srv := NewServer(k, "cpu", 2)
		rng := rand.New(rand.NewSource(seed))
		var out []Time
		for i := 0; i < 50; i++ {
			d := Duration(rng.Intn(1000)+1) * Microsecond
			start := Duration(rng.Intn(5000)) * Microsecond
			k.SpawnAt(start, "w", func(p *Proc) {
				srv.Use(p, d)
				out = append(out, p.Now())
			})
		}
		k.RunAll()
		return out
	}
	a, b := trace(7), trace(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if (1500 * Microsecond).Milliseconds() != 1.5 {
		t.Errorf("1500us = %v ms, want 1.5", (1500 * Microsecond).Milliseconds())
	}
	if FromMillis(2.5) != 2500*Microsecond {
		t.Errorf("FromMillis(2.5) = %v", FromMillis(2.5))
	}
	if FromSeconds(0.001) != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v", FromSeconds(0.001))
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Errorf("2s = %v s", (2 * Second).Seconds())
	}
}

func TestScale(t *testing.T) {
	if Scale(10*Millisecond, 0.5) != 5*Millisecond {
		t.Errorf("Scale(10ms, .5) = %v", Scale(10*Millisecond, 0.5))
	}
	if Scale(3, 1.0/3.0) != 1 {
		t.Errorf("Scale rounds wrong: %v", Scale(3, 1.0/3.0))
	}
	defer func() {
		if recover() == nil {
			t.Error("negative scale did not panic")
		}
	}()
	Scale(1, -1)
}

// Property: for any set of event offsets, events fire in sorted order and
// the final clock equals the maximum offset.
func TestQuickEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		k := NewKernel()
		var fired []Time
		var max Time
		for _, o := range offsets {
			at := Time(o) * Microsecond
			if at > max {
				max = at
			}
			k.At(at, func() { fired = append(fired, k.Now()) })
		}
		k.RunAll()
		if k.Now() != max {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
