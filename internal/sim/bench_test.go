package sim

import "testing"

// The process benchmarks drive b.N operations through a single long Run
// horizon, the regime the engine actually runs in (one Run(warmup), one
// Run(warmup+measure)): the continuation fast path is active and a blocked
// process dispatches its own wake-up in-context. Each has a Parked variant
// with the fast path disabled — the pre-continuation park/resume behavior —
// so the goroutine-switch cost the fast path removes is measured in the
// same binary.

// BenchmarkEventDispatch measures the raw event path — one calendar insert
// plus one extract and dispatch per operation — with no process handoff,
// using the classic hold model: a steady population of 256 pending events,
// each rescheduling itself one population-width ahead when it fires. This
// isolates the calendar queue and the event pool from goroutine-switch
// costs.
func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	const population = 256
	var fire func()
	fire = func() { k.At(k.Now()+population*Microsecond, fire) }
	for i := 0; i < population; i++ {
		k.At(Time(i+1)*Microsecond, fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(Time(i+1) * Microsecond) // exactly one event per horizon
	}
}

// benchWaitLoop measures the steady-state cost of one Proc.Wait: one
// calendar insert and one extract. With the fast path (inline=true) the
// waiter dispatches its own wake-up and never switches goroutines; without
// it every Wait pays the two switches of a park/resume pair. ns/op here
// bounds overall simulator throughput — Wait is the dominant primitive of
// every simulation run. allocs/op must be 0 in steady state either way.
func benchWaitLoop(b *testing.B, inline bool) {
	k := NewKernel()
	k.SetInlineDispatch(inline)
	n := 0
	k.Spawn("waiter", func(p *Proc) {
		for ; n < b.N; n++ {
			p.Wait(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkKernelWaitLoop(b *testing.B)       { benchWaitLoop(b, true) }
func BenchmarkKernelWaitLoopParked(b *testing.B) { benchWaitLoop(b, false) }

// benchServerContention measures a contended FCFS station: 8 processes
// sharing a 2-server station, so most Use calls queue (park on the waiter
// list) and every Release hands off to a queued process. The fast path
// turns each of those handoffs into a direct process-to-process switch
// instead of a round trip through the root loop.
func benchServerContention(b *testing.B, inline bool) {
	const procs = 8
	k := NewKernel()
	k.SetInlineDispatch(inline)
	srv := NewServer(k, "cpu", 2)
	n := 0
	for i := 0; i < procs; i++ {
		k.Spawn("worker", func(p *Proc) {
			for n < b.N {
				n++
				srv.Use(p, Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkServerContention(b *testing.B)       { benchServerContention(b, true) }
func BenchmarkServerContentionParked(b *testing.B) { benchServerContention(b, false) }

// benchChanPingPong measures mailbox latency: two processes bouncing a
// token through a pair of Chans, i.e. two Put/Get pairs (wake + handoff)
// per iteration, with the consumer always parked when Put arrives.
func benchChanPingPong(b *testing.B, inline bool) {
	k := NewKernel()
	k.SetInlineDispatch(inline)
	ping := NewChan[int](k, "ping")
	pong := NewChan[int](k, "pong")
	n := 0
	k.Spawn("echo", func(p *Proc) {
		for {
			v, ok := ping.Get(p)
			if !ok {
				return
			}
			pong.Put(v)
		}
	})
	k.Spawn("driver", func(p *Proc) {
		for ; n < b.N; n++ {
			ping.Put(1)
			pong.Get(p)
			p.Wait(Microsecond) // advance the clock between rounds
		}
		ping.Close()
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkChanPingPong(b *testing.B)       { benchChanPingPong(b, true) }
func BenchmarkChanPingPongParked(b *testing.B) { benchChanPingPong(b, false) }

// BenchmarkUncontendedUse measures Server.Use on a free station — the
// engine's hottest call shape (pe.compute charging a CPU hold): Acquire
// succeeds immediately and the timed hold is a pure continuation. With the
// fast path this is Acquire + calendar insert/extract + Release with zero
// goroutine switches.
func benchUncontendedUse(b *testing.B, inline bool) {
	k := NewKernel()
	k.SetInlineDispatch(inline)
	srv := NewServer(k, "cpu", 1)
	n := 0
	k.Spawn("worker", func(p *Proc) {
		for ; n < b.N; n++ {
			srv.Use(p, Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkUncontendedUse(b *testing.B)       { benchUncontendedUse(b, true) }
func BenchmarkUncontendedUseParked(b *testing.B) { benchUncontendedUse(b, false) }

// benchSpawnEphemeral measures the full lifecycle of a short-lived process
// — spawn, one timed hold, return — the shape of every OLTP transaction,
// commit participant and control helper in the engine. With pooling the
// spawn hands the body to a parked worker over its existing resume channel:
// no goroutine birth, no channel, no Proc allocation. The Unpooled variant
// pays a fresh goroutine per spawn — the pre-PR-6 behavior.
func benchSpawnEphemeral(b *testing.B, pooled bool) {
	k := NewKernel()
	k.SetSpawnPooling(pooled)
	n := 0
	child := func(c *Proc) {
		c.Wait(Microsecond)
	}
	k.Spawn("driver", func(p *Proc) {
		for ; n < b.N; n++ {
			k.Spawn("child", child)
			p.Wait(2 * Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
	b.StopTimer()
	k.Shutdown()
}

func BenchmarkSpawnEphemeral(b *testing.B)         { benchSpawnEphemeral(b, true) }
func BenchmarkSpawnEphemeralUnpooled(b *testing.B) { benchSpawnEphemeral(b, false) }

// BenchmarkLightSpawn measures a run-to-completion process — SpawnFn plus
// one UseFn hold on a free server — the light replacement for the ctl-send
// and ctrl-decide helper processes. One event per stage, no goroutine or
// Proc at all.
func BenchmarkLightSpawn(b *testing.B) {
	k := NewKernel()
	srv := NewServer(k, "ctl", 1)
	n := 0
	var drive func()
	drive = func() {
		if n < b.N {
			n++
			k.SpawnFn(func() {
				srv.UseFn(Microsecond, drive)
			})
		}
	}
	k.At(0, drive)
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

// benchChanBurst measures consuming a 16-message burst: with GetAll the
// consumer takes one wake-up and drains the buffer; with single Gets it
// pays one Get per message (only the first blocks). ns/op is per message.
func benchChanBurst(b *testing.B, batched bool) {
	const burst = 16
	k := NewKernel()
	mail := NewChan[int](k, "mail")
	n := 0
	k.Spawn("producer", func(p *Proc) {
		for ; n < b.N; n += burst {
			for i := 0; i < burst; i++ {
				mail.Put(i)
			}
			p.Wait(Microsecond)
		}
		mail.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		if batched {
			var buf []int
			for {
				var ok bool
				buf, ok = mail.GetAll(p, buf[:0])
				if !ok {
					return
				}
			}
		} else {
			for {
				if _, ok := mail.Get(p); !ok {
					return
				}
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.RunAll()
}

func BenchmarkChanBurstGetAll(b *testing.B)    { benchChanBurst(b, true) }
func BenchmarkChanBurstSingleGet(b *testing.B) { benchChanBurst(b, false) }
