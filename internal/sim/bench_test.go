package sim

import "testing"

// BenchmarkEventDispatch measures the raw event path — one calendar insert
// plus one extract and dispatch per operation — with no process handoff,
// using the classic hold model: a steady population of 256 pending events,
// each rescheduling itself one population-width ahead when it fires. This
// isolates the calendar queue and the event pool from goroutine-switch
// costs.
func BenchmarkEventDispatch(b *testing.B) {
	k := NewKernel()
	const population = 256
	var fire func()
	fire = func() { k.At(k.Now()+population*Microsecond, fire) }
	for i := 0; i < population; i++ {
		k.At(Time(i+1)*Microsecond, fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(Time(i+1) * Microsecond) // exactly one event per horizon
	}
}

// BenchmarkKernelWaitLoop measures the steady-state cost of one
// Wait: one calendar insert, one extract and one process handoff
// (park + resume). It is the dominant primitive of every simulation run, so
// ns/op here bounds overall simulator throughput. allocs/op should be ~0 in
// steady state: events come from the kernel pool and no closures are built.
func BenchmarkKernelWaitLoop(b *testing.B) {
	k := NewKernel()
	done := false
	k.Spawn("waiter", func(p *Proc) {
		for !done {
			p.Wait(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	// Each horizon extension executes exactly one Wait round trip.
	for i := 0; i < b.N; i++ {
		k.Run(Time(i+1) * Microsecond)
	}
	b.StopTimer()
	done = true
	k.RunAll()
}

// BenchmarkServerContention measures a contended FCFS station: 8 processes
// sharing a 2-server station, so most Use calls queue (park on the waiter
// list) and every Release hands off to a queued process.
func BenchmarkServerContention(b *testing.B) {
	const procs = 8
	k := NewKernel()
	srv := NewServer(k, "cpu", 2)
	done := false
	for i := 0; i < procs; i++ {
		k.Spawn("worker", func(p *Proc) {
			for !done {
				srv.Use(p, Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(Time(i+1) * Microsecond)
	}
	b.StopTimer()
	done = true
	k.RunAll()
}

// BenchmarkChanPingPong measures mailbox latency: two processes bouncing a
// token through a pair of Chans, i.e. two Put/Get pairs (wake + handoff) per
// iteration, with the consumer always parked when Put arrives.
func BenchmarkChanPingPong(b *testing.B) {
	k := NewKernel()
	ping := NewChan[int](k, "ping")
	pong := NewChan[int](k, "pong")
	done := false
	k.Spawn("echo", func(p *Proc) {
		for {
			v, ok := ping.Get(p)
			if !ok {
				return
			}
			pong.Put(v)
		}
	})
	k.Spawn("driver", func(p *Proc) {
		for !done {
			ping.Put(1)
			pong.Get(p)
			p.Wait(Microsecond) // advance the clock so Run horizons progress
		}
		ping.Close()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Run(Time(i+1) * Microsecond)
	}
	b.StopTimer()
	done = true
	k.RunAll()
}
