package sim

import "fmt"

// Store is a counting resource (memory frames, multiprogramming-level
// tokens). Get blocks FCFS until the requested amount is available; the head
// of the queue blocks all later requests even if those could be satisfied —
// exactly the paper's FCFS memory queue semantics.
type Store struct {
	k     *Kernel
	name  string
	cap   int
	level int
	q     []*storeWaiter
	free  []*storeWaiter // recycled waiters; Get/Put are alloc-free in steady state

	lastT   Time
	usedInt float64
	grants  int64
}

type storeWaiter struct {
	p       *Proc
	n       int
	arrived Time
}

// NewStore creates a store with the given capacity, initially full.
func NewStore(k *Kernel, name string, capacity int) *Store {
	if capacity < 0 {
		panic(fmt.Sprintf("sim: store %q capacity %d < 0", name, capacity))
	}
	return &Store{k: k, name: name, cap: capacity, level: capacity, lastT: k.Now()}
}

// Name returns the store's name.
func (st *Store) Name() string { return st.name }

// Cap returns the store capacity.
func (st *Store) Cap() int { return st.cap }

// Level returns the currently available amount.
func (st *Store) Level() int { return st.level }

// QueueLen returns the number of waiting requests.
func (st *Store) QueueLen() int { return len(st.q) }

func (st *Store) advance() {
	now := st.k.Now()
	dt := float64(now - st.lastT)
	st.usedInt += dt * float64(st.cap-st.level)
	st.lastT = now
}

// Get acquires n units, blocking FCFS while unavailable.
func (st *Store) Get(p *Proc, n int) {
	if n < 0 || n > st.cap {
		panic(fmt.Sprintf("sim: store %q get %d (cap %d)", st.name, n, st.cap))
	}
	st.advance()
	if len(st.q) == 0 && st.level >= n {
		st.level -= n
		st.grants++
		return
	}
	var w *storeWaiter
	if len(st.free) > 0 {
		w = st.free[len(st.free)-1]
		st.free = st.free[:len(st.free)-1]
	} else {
		w = &storeWaiter{}
	}
	w.p, w.n, w.arrived = p, n, st.k.Now()
	st.q = append(st.q, w)
	st.k.blocked++
	p.block()
	st.k.blocked--
}

// TryGet acquires n units if immediately available (and no earlier waiter is
// queued); it reports whether the acquisition happened.
func (st *Store) TryGet(n int) bool {
	st.advance()
	if len(st.q) == 0 && st.level >= n {
		st.level -= n
		st.grants++
		return true
	}
	return false
}

// Put returns n units and wakes queued requests that now fit, in FCFS order.
func (st *Store) Put(n int) {
	if n < 0 {
		panic(fmt.Sprintf("sim: store %q put %d", st.name, n))
	}
	st.advance()
	st.level += n
	if st.level > st.cap {
		panic(fmt.Sprintf("sim: store %q overfilled: level %d cap %d", st.name, st.level, st.cap))
	}
	st.drain()
}

func (st *Store) drain() {
	for len(st.q) > 0 && st.level >= st.q[0].n {
		w := st.q[0]
		copy(st.q, st.q[1:])
		st.q[len(st.q)-1] = nil
		st.q = st.q[:len(st.q)-1]
		st.level -= w.n
		st.grants++
		w.p.unpark()
		w.p = nil
		st.free = append(st.free, w)
	}
}

// MeanUsed returns the time-averaged amount in use.
func (st *Store) MeanUsed() float64 {
	st.advance()
	if st.lastT == 0 {
		return 0
	}
	return st.usedInt / float64(st.lastT)
}

// Utilization returns time-averaged used fraction of capacity.
func (st *Store) Utilization() float64 {
	if st.cap == 0 {
		return 0
	}
	return st.MeanUsed() / float64(st.cap)
}

// Grants returns the number of satisfied Get/TryGet requests.
func (st *Store) Grants() int64 { return st.grants }
