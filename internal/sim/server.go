package sim

import "fmt"

// Server models a multi-server FCFS queueing station (CPUs of a node, a disk
// arm, a disk controller, a network link, ...). Processes occupy one of cap
// identical servers for an explicit service duration via Use, or bracket a
// variable-length occupancy with Acquire/Release.
//
// Server keeps the time integral of busy servers and of queue length, from
// which utilization and mean queue length are derived.
type Server struct {
	k    *Kernel
	name string
	cap  int
	busy int
	q    []*serverWaiter
	free []*serverWaiter // recycled waiters; Acquire/Release are alloc-free in steady state

	lastT     Time
	busyInt   float64 // integral of busy servers over time
	queueInt  float64 // integral of queue length over time
	served    int64
	totalWait Time
}

// serverWaiter is a queued request for one server: a blocked process
// (Acquire) or a continuation to grant the server to (UseFn). Exactly one
// of p and fn is set.
type serverWaiter struct {
	p       *Proc
	fn      func()
	arrived Time
}

// NewServer creates a server station with the given capacity (>= 1).
func NewServer(k *Kernel, name string, capacity int) *Server {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: server %q capacity %d < 1", name, capacity))
	}
	return &Server{k: k, name: name, cap: capacity, lastT: k.Now()}
}

// Name returns the server's name.
func (s *Server) Name() string { return s.name }

// Cap returns the number of identical servers at this station.
func (s *Server) Cap() int { return s.cap }

// InUse returns the number of currently busy servers.
func (s *Server) InUse() int { return s.busy }

// QueueLen returns the number of processes waiting for a server.
func (s *Server) QueueLen() int { return len(s.q) }

func (s *Server) advance() {
	now := s.k.Now()
	dt := float64(now - s.lastT)
	s.busyInt += dt * float64(s.busy)
	s.queueInt += dt * float64(len(s.q))
	s.lastT = now
}

// Acquire obtains one server, queueing FCFS if all are busy.
// The matching Release must be called by the same logical activity.
func (s *Server) Acquire(p *Proc) {
	s.advance()
	if s.busy < s.cap {
		s.busy++
		s.served++
		return
	}
	var w *serverWaiter
	if n := len(s.free); n > 0 {
		w = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		w = &serverWaiter{}
	}
	w.p, w.arrived = p, s.k.Now()
	s.q = append(s.q, w)
	s.k.blocked++
	p.block()
	s.k.blocked--
}

// Release frees one server and hands it to the head waiter, if any.
// It may be called from process or kernel context.
func (s *Server) Release() {
	s.advance()
	if s.busy <= 0 {
		panic(fmt.Sprintf("sim: server %q released below zero", s.name))
	}
	if len(s.q) == 0 {
		s.busy--
		return
	}
	w := s.q[0]
	copy(s.q, s.q[1:])
	s.q[len(s.q)-1] = nil
	s.q = s.q[:len(s.q)-1]
	s.served++
	s.totalWait += s.k.Now() - w.arrived
	if w.p != nil {
		// A blocked process: resume it. Its Acquire returns holding the
		// server (busy is unchanged — the server passed hand to hand).
		w.p.unpark()
		w.p = nil
	} else {
		// A light waiter: schedule its grant continuation at the same
		// (time, seq) position the unpark event would have had.
		fn := w.fn
		w.fn = nil
		s.k.At(s.k.Now(), fn)
	}
	s.free = append(s.free, w)
}

// Use occupies one server for service time d: Acquire, hold d, Release.
func (s *Server) Use(p *Proc, d Duration) {
	s.Acquire(p)
	p.Wait(d)
	s.Release()
}

// UseFn is Use for run-to-completion light processes (Kernel.SpawnFn):
// occupy one server for d, then run fn in kernel context. Grant, hold and
// release events are allocated at exactly the (time, seq) positions Use's
// are — uncontended with d > 0 one hold event, uncontended with d == 0
// none, contended one grant event per hand-over — so converting a Use call
// site to UseFn is dispatch-order-neutral and results stay bit-identical.
func (s *Server) UseFn(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: server %q UseFn negative duration %v", s.name, d))
	}
	s.advance()
	if s.busy < s.cap {
		s.busy++
		s.served++
		s.holdFn(d, fn)
		return
	}
	var w *serverWaiter
	if n := len(s.free); n > 0 {
		w = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		w = &serverWaiter{}
	}
	w.p, w.arrived = nil, s.k.Now()
	w.fn = func() {
		s.k.blocked--
		s.holdFn(d, fn)
	}
	s.q = append(s.q, w)
	s.k.blocked++
}

// holdFn holds an already-granted server for d, then releases and runs fn.
// It mirrors the Wait(d)+Release tail of Use: d == 0 releases inline (Wait
// is a no-op), d > 0 schedules one event at now+d.
func (s *Server) holdFn(d Duration, fn func()) {
	if d == 0 {
		s.Release()
		fn()
		return
	}
	s.k.At(s.k.Now()+d, func() {
		s.Release()
		fn()
	})
}

// Utilization returns the fraction of server-capacity-time spent busy since
// the given origin-relative accounting began (time 0 or the last Reset).
func (s *Server) Utilization() float64 {
	s.advance()
	elapsed := float64(s.lastT) * float64(s.cap)
	if elapsed == 0 {
		return 0
	}
	return s.busyInt / elapsed
}

// UtilizationSince returns utilization over the window [from, now] given the
// integral snapshot taken at from. Pair with BusyIntegral for warm-up cuts.
func (s *Server) UtilizationSince(from Time, busyIntAtFrom float64) float64 {
	s.advance()
	window := float64(s.lastT-from) * float64(s.cap)
	if window <= 0 {
		return 0
	}
	return (s.busyInt - busyIntAtFrom) / window
}

// BusyIntegral returns the current integral of busy servers over time.
func (s *Server) BusyIntegral() float64 {
	s.advance()
	return s.busyInt
}

// MeanQueueLen returns the time-averaged queue length.
func (s *Server) MeanQueueLen() float64 {
	s.advance()
	if s.lastT == 0 {
		return 0
	}
	return s.queueInt / float64(s.lastT)
}

// Served returns the number of service grants so far.
func (s *Server) Served() int64 { return s.served }

// MeanWait returns the average queueing delay of grants that had to wait,
// averaged over all grants.
func (s *Server) MeanWait() Duration {
	if s.served == 0 {
		return 0
	}
	return Duration(int64(s.totalWait) / s.served)
}
