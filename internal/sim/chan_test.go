package sim

import (
	"testing"
	"testing/quick"
)

func TestChanPutThenGet(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	var got []int
	c.Put(1)
	c.Put(2)
	k.Spawn("r", func(p *Proc) {
		for i := 0; i < 2; i++ {
			v, ok := c.Get(p)
			if !ok {
				t.Error("Get returned !ok on open chan with data")
			}
			got = append(got, v)
		}
	})
	k.RunAll()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestChanGetBlocksUntilPut(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, "c")
	var at Time
	k.Spawn("r", func(p *Proc) {
		v, _ := c.Get(p)
		if v != "x" {
			t.Errorf("got %q", v)
		}
		at = p.Now()
	})
	k.Spawn("w", func(p *Proc) {
		p.Wait(7 * Millisecond)
		c.Put("x")
	})
	k.RunAll()
	if at != 7*Millisecond {
		t.Fatalf("reader resumed at %v, want 7ms", at)
	}
}

func TestChanMultipleReadersFCFS(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt(Time(i)*Microsecond, "r", func(p *Proc) {
			v, _ := c.Get(p)
			order = append(order, i*10+v)
		})
	}
	k.Spawn("w", func(p *Proc) {
		p.Wait(Millisecond)
		c.Put(0)
		c.Put(1)
		c.Put(2)
	})
	k.RunAll()
	// reader i (in arrival order) receives item i
	want := []int{0, 11, 22}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestChanClose(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	var results []bool
	k.Spawn("r", func(p *Proc) {
		c.Put(5)
		c.Close()
		_, ok1 := c.Get(p) // drains buffered item
		_, ok2 := c.Get(p) // closed and empty
		results = append(results, ok1, ok2)
	})
	k.RunAll()
	if !results[0] || results[1] {
		t.Fatalf("close semantics wrong: %v", results)
	}
}

func TestChanCloseWakesBlockedReaders(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	woken := 0
	for i := 0; i < 3; i++ {
		k.Spawn("r", func(p *Proc) {
			if _, ok := c.Get(p); !ok {
				woken++
			}
		})
	}
	k.Spawn("closer", func(p *Proc) {
		p.Wait(Millisecond)
		c.Close()
	})
	k.RunAll()
	if woken != 3 {
		t.Fatalf("woken=%d, want 3", woken)
	}
	if k.Live() != 0 {
		t.Fatalf("live=%d, want 0", k.Live())
	}
}

func TestChanPutAfterClosePanics(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	c.Close()
	defer func() {
		if recover() == nil {
			t.Error("Put after Close did not panic")
		}
	}()
	c.Put(1)
}

func TestChanTryGet(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	if _, ok := c.TryGet(); ok {
		t.Fatal("TryGet on empty chan succeeded")
	}
	c.Put(9)
	v, ok := c.TryGet()
	if !ok || v != 9 {
		t.Fatalf("TryGet = %v,%v", v, ok)
	}
}

func TestBarrierReleasesAllWaiters(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "phase", 3)
	var released []Time
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(p *Proc) {
			b.Wait(p)
			released = append(released, p.Now())
		})
	}
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("d", func(p *Proc) {
			p.Wait(Duration(i+1) * Millisecond)
			b.Done()
		})
	}
	k.RunAll()
	if len(released) != 2 {
		t.Fatalf("released %d waiters, want 2", len(released))
	}
	for _, at := range released {
		if at != 3*Millisecond {
			t.Fatalf("released at %v, want 3ms", at)
		}
	}
}

func TestBarrierWaitAfterRelease(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "phase", 1)
	b.Done()
	done := false
	k.Spawn("w", func(p *Proc) {
		b.Wait(p) // should not block
		done = true
	})
	k.RunAll()
	if !done {
		t.Fatal("Wait on released barrier blocked")
	}
}

func TestBarrierOverReleasePanics(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "phase", 1)
	b.Done()
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	b.Done()
}

// Property: a chan delivers every item exactly once and in FIFO order,
// regardless of interleaving of producer and consumer delays.
func TestQuickChanFIFO(t *testing.T) {
	f := func(delays []uint8) bool {
		k := NewKernel()
		c := NewChan[int](k, "c")
		n := len(delays)
		var got []int
		k.Spawn("producer", func(p *Proc) {
			for i, d := range delays {
				p.Wait(Duration(d) * Microsecond)
				c.Put(i)
			}
			c.Close()
		})
		k.Spawn("consumer", func(p *Proc) {
			for {
				v, ok := c.Get(p)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		k.RunAll()
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
