package sim

import "fmt"

// Proc is the handle a simulated process uses to interact with the kernel.
// A process is an ordinary function running on its own goroutine; every
// blocking operation (Wait, Server.Use, Store.Get, Chan.Get, ...) suspends
// the process and transfers dispatch to the kernel, which resumes it when
// the corresponding event fires. Exactly one process runs at any instant.
//
// Suspension does not necessarily suspend the goroutine: with the
// continuation fast path (Kernel.SetInlineDispatch, on by default) a
// blocking process keeps dispatching events in its own context — run-fn
// events execute inline, its own resume event simply returns control, and
// only another process's resume costs a goroutine switch (a direct
// process-to-process handoff). An uncontended timed hold — Wait after an
// immediate Acquire, Server.Use on a free station — therefore runs entirely
// switch-free when no other process has an intervening turn.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	resume chan struct{}
	done   bool
}

// Spawn creates a process named name running fn and schedules its start at
// the current simulated time. It returns immediately; fn runs when the
// kernel reaches the start event.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process whose execution starts at absolute time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	// resume has capacity 1 for the same reason as Kernel.yield: the
	// handoff send completes without blocking, halving the synchronization
	// cost of a process switch. Between a handoff send and the matching
	// receive neither side touches simulation state, so the brief overlap
	// is race-free.
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{}, 1)}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		// The finishing process holds the ball; hand it to the root loop.
		p.done = true
		k.live--
		k.yield <- struct{}{}
	}()
	k.atProc(t, p)
	return p
}

// block suspends the calling process until its next resume event — a Wait
// wake-up scheduled by the caller, or an Unpark/grant from a resource queue
// — is dispatched. The caller must already have arranged for that event (or
// for an eventual unpark).
//
// Fast path: the blocking process becomes the dispatcher. It pops events in
// exactly the (time, seq) order the root loop would, runs fn events inline,
// and returns the moment its own resume event comes up — zero goroutine
// switches. A resume event for another process transfers the ball directly
// to that process (one switch; the old park/resume pair cost two). Draining
// the horizon yields the ball to the root Run loop, which then returns to
// its caller. Because the fast path dispatches the identical event sequence
// a parked process would have had dispatched on its behalf, simulation
// results are bit-identical with the fast path on or off.
func (p *Proc) block() {
	k := p.k
	if !k.inline {
		// Legacy path: park the goroutine, let the root loop dispatch.
		k.yield <- struct{}{}
		<-p.resume
		return
	}
	for {
		e := k.next(k.horizon)
		if e == nil {
			// Nothing left at or before the horizon: give the ball back
			// to the root loop (Run returns) and sleep until a later Run
			// dispatches our resume event.
			k.yield <- struct{}{}
			<-p.resume
			return
		}
		if q := e.p; q != nil {
			k.freeEvent(e)
			if q == p {
				// Our own wake: continue in-context, no switch at all.
				k.inlineWakes++
				return
			}
			if q.done {
				panic(fmt.Sprintf("sim: resuming finished process %q", q.name))
			}
			// Another process's turn: direct handoff, then sleep until
			// some ball holder dispatches our resume event.
			k.handoffs++
			q.resume <- struct{}{}
			<-p.resume
			return
		}
		fn := e.fn
		k.freeEvent(e)
		fn()
	}
}

// unpark schedules p to resume at the current simulated time, bypassing the
// calendar through the kernel's same-instant FIFO. It must be called from
// kernel context (an event function or another process's turn).
func (p *Proc) unpark() {
	p.k.atProc(p.k.now, p)
}

// Park suspends the calling process until another component calls Unpark.
// It is the extension point for custom blocking primitives outside package
// sim (lock tables, buffer memory queues, ...). The caller must have
// registered itself somewhere an Unpark will find it.
func (p *Proc) Park() {
	p.k.blocked++
	p.block()
	p.k.blocked--
}

// Unpark schedules a process parked via Park to resume at the current
// simulated time. Calling it for a process that is not parked is a bug the
// kernel will surface as a double-resume panic.
func (p *Proc) Unpark() { p.unpark() }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (assigned in spawn order).
func (p *Proc) ID() int64 { return p.id }

// Wait suspends the process for d of simulated time. This is the simulator's
// dominant primitive (every timed hold is a Wait); on the continuation fast
// path an undisturbed Wait costs one calendar insert and one extract, with
// no goroutine switch.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.k.atProc(p.k.now+d, p)
	p.block()
}

// WaitUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.Wait(t - p.k.now)
}
