package sim

import "fmt"

// Proc is the handle a simulated process uses to interact with the kernel.
// A process is an ordinary function running on a kernel-owned goroutine;
// every blocking operation (Wait, Server.Use, Store.Get, Chan.Get, ...)
// suspends the process and transfers dispatch to the kernel, which resumes
// it when the corresponding event fires. Exactly one process runs at any
// instant.
//
// Suspension does not necessarily suspend the goroutine: with the
// continuation fast path (Kernel.SetInlineDispatch, on by default) a
// blocking process keeps dispatching events in its own context — run-fn
// events execute inline, its own resume event simply returns control, and
// only another process's resume costs a goroutine switch (a direct
// process-to-process handoff). An uncontended timed hold — Wait after an
// immediate Acquire, Server.Use on a free station — therefore runs entirely
// switch-free when no other process has an intervening turn.
//
// Goroutines are pooled (Kernel.SetSpawnPooling, on by default): a process
// that returns parks its worker goroutine on the kernel's free list instead
// of exiting, and the next Spawn reuses it — identity fields (ID, Name, Arg)
// are reset on reuse, so spawning is allocation-free in steady state and the
// goroutine count is bounded by the peak number of live processes, not by
// the total number ever spawned.
type Proc struct {
	k       *Kernel
	id      int64
	name    string
	resume  chan struct{}
	done    bool
	arg     int64
	w       *worker // owning pooled worker; nil for unpooled processes
	liveIdx int     // index in Kernel.procs while live
}

// worker is a pooled process goroutine: a parked goroutine plus the Proc
// whose identity it lends to successive spawns. fn holds the next body
// between assignment (Spawn) and execution (first resume); it is nil while
// the worker is parked on the free list.
type worker struct {
	proc Proc
	fn   func(*Proc)
}

// killSentinel is the panic payload Shutdown injects into a blocked process
// to unwind its goroutine; runBody recovers exactly this type and re-panics
// everything else.
type killSentinel struct{}

// runBody executes a process body, absorbing the Shutdown kill sentinel so
// the caller can run the finish protocol either way. Its deferred recover
// also means a killed body's own defers run — resources held across the
// kill (admission tokens, buffer spaces) are returned like on any return.
func runBody(p *Proc, fn func(*Proc)) (killed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				panic(r)
			}
			killed = true
		}
	}()
	fn(p)
	return false
}

// newWorker starts a pooled worker goroutine. The loop runs one process
// body per resume cycle: a finishing body parks the worker on the kernel
// free list and hands the ball to the root loop; a nil fn on wake means the
// pool is being dismissed (ReleaseWorkers adjusts the counters); a wake
// with killing set is a Shutdown kill arriving before the start event.
func (k *Kernel) newWorker() *worker {
	w := &worker{}
	w.proc.k = k
	// resume has capacity 1 for the same reason as Kernel.yield: the
	// handoff send completes without blocking, halving the synchronization
	// cost of a process switch. Between a handoff send and the matching
	// receive neither side touches simulation state, so the brief overlap
	// is race-free — and the same edge orders the spawner's writes to
	// w.fn and the Proc identity fields before the worker reads them.
	w.proc.resume = make(chan struct{}, 1)
	w.proc.w = w
	k.goroutines++
	go func() {
		for {
			<-w.proc.resume
			fn := w.fn
			if fn == nil {
				// Dismissed from the free list; the dismisser owns the
				// goroutine counter, so touch nothing.
				return
			}
			w.fn = nil
			p := &w.proc
			if k.killing {
				// Killed between spawn and the start event: the body
				// never ran, just retire the process.
				k.finishProc(p)
				k.goroutines--
				k.yield <- struct{}{}
				return
			}
			killed := runBody(p, fn)
			k.finishProc(p)
			if killed {
				k.goroutines--
				k.yield <- struct{}{}
				return
			}
			// Park for reuse, then hand the ball to the root loop.
			k.freeW = append(k.freeW, w)
			k.yield <- struct{}{}
		}
	}()
	return w
}

// runUnpooled is the body wrapper of a non-pooled process goroutine
// (SetSpawnPooling(false)): one spawn, one goroutine, exit on return.
func (k *Kernel) runUnpooled(p *Proc, fn func(*Proc)) {
	<-p.resume
	if !k.killing {
		runBody(p, fn)
	}
	k.finishProc(p)
	k.goroutines--
	k.yield <- struct{}{}
}

// finishProc retires a returning (or killed) process: marks it done and
// removes it from the live registry.
func (k *Kernel) finishProc(p *Proc) {
	p.done = true
	last := len(k.procs) - 1
	q := k.procs[last]
	k.procs[p.liveIdx] = q
	q.liveIdx = p.liveIdx
	k.procs[last] = nil
	k.procs = k.procs[:last]
}

// Spawn creates a process named name running fn and schedules its start at
// the current simulated time. It returns immediately; fn runs when the
// kernel reaches the start event.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.spawn(k.now, name, 0, fn)
}

// SpawnAt creates a process whose execution starts at absolute time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	return k.spawn(t, name, 0, fn)
}

// SpawnArg is Spawn carrying a small scalar argument the process reads via
// Proc.Arg. Arrival loops use it to reuse one hoisted closure for every
// spawn — the per-iteration value rides the Proc instead of forcing a fresh
// capture per spawned process.
func (k *Kernel) SpawnArg(name string, arg int64, fn func(p *Proc)) *Proc {
	return k.spawn(k.now, name, arg, fn)
}

func (k *Kernel) spawn(t Time, name string, arg int64, fn func(p *Proc)) *Proc {
	k.procSeq++
	var p *Proc
	if k.pooling {
		var w *worker
		if n := len(k.freeW); n > 0 {
			w = k.freeW[n-1]
			k.freeW[n-1] = nil
			k.freeW = k.freeW[:n-1]
			k.spawnReuses++
		} else {
			w = k.newWorker()
		}
		w.fn = fn
		p = &w.proc
		p.done = false
	} else {
		p = &Proc{k: k, resume: make(chan struct{}, 1)}
		k.goroutines++
		go k.runUnpooled(p, fn)
	}
	p.id = k.procSeq
	p.name = name
	p.arg = arg
	p.liveIdx = len(k.procs)
	k.procs = append(k.procs, p)
	k.atProc(t, p)
	return p
}

// block suspends the calling process until its next resume event — a Wait
// wake-up scheduled by the caller, or an Unpark/grant from a resource queue
// — is dispatched. The caller must already have arranged for that event (or
// for an eventual unpark).
//
// Fast path: the blocking process becomes the dispatcher. It pops events in
// exactly the (time, seq) order the root loop would, runs fn events inline,
// and returns the moment its own resume event comes up — zero goroutine
// switches. A resume event for another process transfers the ball directly
// to that process (one switch; the old park/resume pair cost two). Draining
// the horizon yields the ball to the root Run loop, which then returns to
// its caller. Because the fast path dispatches the identical event sequence
// a parked process would have had dispatched on its behalf, simulation
// results are bit-identical with the fast path on or off.
func (p *Proc) block() {
	k := p.k
	if !k.inline {
		// Legacy path: park the goroutine, let the root loop dispatch.
		k.yield <- struct{}{}
		<-p.resume
		if k.killing {
			panic(killSentinel{})
		}
		return
	}
	for {
		e := k.next(k.horizon)
		if e == nil {
			// Nothing left at or before the horizon: give the ball back
			// to the root loop (Run returns) and sleep until a later Run
			// dispatches our resume event.
			k.yield <- struct{}{}
			<-p.resume
			if k.killing {
				panic(killSentinel{})
			}
			return
		}
		if q := e.p; q != nil {
			k.freeEvent(e)
			if q == p {
				// Our own wake: continue in-context, no switch at all.
				k.inlineWakes++
				return
			}
			if q.done {
				panic(fmt.Sprintf("sim: resuming finished process %q", q.name))
			}
			// Another process's turn: direct handoff, then sleep until
			// some ball holder dispatches our resume event.
			k.handoffs++
			q.resume <- struct{}{}
			<-p.resume
			if k.killing {
				panic(killSentinel{})
			}
			return
		}
		fn := e.fn
		k.freeEvent(e)
		fn()
	}
}

// unpark schedules p to resume at the current simulated time, bypassing the
// calendar through the kernel's same-instant FIFO. It must be called from
// kernel context (an event function or another process's turn).
func (p *Proc) unpark() {
	p.k.atProc(p.k.now, p)
}

// Park suspends the calling process until another component calls Unpark.
// It is the extension point for custom blocking primitives outside package
// sim (lock tables, buffer memory queues, ...). The caller must have
// registered itself somewhere an Unpark will find it.
func (p *Proc) Park() {
	p.k.blocked++
	p.block()
	p.k.blocked--
}

// Unpark schedules a process parked via Park to resume at the current
// simulated time. Calling it for a process that is not parked is a bug the
// kernel will surface as a double-resume panic.
func (p *Proc) Unpark() { p.unpark() }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (assigned in spawn order).
func (p *Proc) ID() int64 { return p.id }

// Arg returns the scalar argument passed to SpawnArg (zero for processes
// started by Spawn/SpawnAt).
func (p *Proc) Arg() int64 { return p.arg }

// Wait suspends the process for d of simulated time. This is the simulator's
// dominant primitive (every timed hold is a Wait); on the continuation fast
// path an undisturbed Wait costs one calendar insert and one extract, with
// no goroutine switch.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.k.atProc(p.k.now+d, p)
	p.block()
}

// WaitUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.Wait(t - p.k.now)
}
