package sim

import "fmt"

// Proc is the handle a simulated process uses to interact with the kernel.
// A process is an ordinary function running on its own goroutine; every
// blocking operation (Wait, Server.Use, Store.Get, Chan.Get, ...) suspends
// the goroutine and returns control to the kernel, which resumes it when the
// corresponding event fires. Exactly one process runs at any instant.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	resume chan struct{}
	done   bool
}

// Spawn creates a process named name running fn and schedules its start at
// the current simulated time. It returns immediately; fn runs when the
// kernel reaches the start event.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt creates a process whose execution starts at absolute time t.
func (k *Kernel) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	k.procSeq++
	// resume has capacity 1 for the same reason as Kernel.yield: the
	// kernel's handoff send completes without blocking, halving the
	// synchronization cost of a process switch. Between its yield send and
	// resume receive a process touches no simulation state, so the brief
	// overlap with the kernel is race-free.
	p := &Proc{k: k, id: k.procSeq, name: name, resume: make(chan struct{}, 1)}
	k.live++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		k.yield <- struct{}{}
	}()
	k.atProc(t, p)
	return p
}

// step transfers control to p until it parks or finishes.
func (k *Kernel) step(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished process %q", p.name))
	}
	p.resume <- struct{}{}
	<-k.yield
	if p.done {
		k.live--
	}
}

// park suspends the calling process until the kernel resumes it. The caller
// must already have arranged for a future k.step(p) (via an event or a
// resource queue).
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// unpark schedules p to resume at the current simulated time, bypassing the
// calendar through the kernel's same-instant FIFO. It must be called from
// kernel context (an event function or another process's turn).
func (p *Proc) unpark() {
	p.k.atProc(p.k.now, p)
}

// Park suspends the calling process until another component calls Unpark.
// It is the extension point for custom blocking primitives outside package
// sim (lock tables, buffer memory queues, ...). The caller must have
// registered itself somewhere an Unpark will find it.
func (p *Proc) Park() {
	p.k.blocked++
	p.park()
	p.k.blocked--
}

// Unpark schedules a process parked via Park to resume at the current
// simulated time. Calling it for a process that is not parked is a bug the
// kernel will surface as a double-resume panic.
func (p *Proc) Unpark() { p.unpark() }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the unique process id (assigned in spawn order).
func (p *Proc) ID() int64 { return p.id }

// Wait suspends the process for d of simulated time.
func (p *Proc) Wait(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.k.atProc(p.k.now+d, p)
	p.park()
}

// WaitUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.Wait(t - p.k.now)
}
