package sim

import "fmt"

// event is a calendar entry: at time t, resume process p (the hot path:
// Wait wake-ups, unparks) or run fn in kernel context (the general path:
// At/After). Exactly one of p and fn is set. fn must never block; blocking
// work belongs in processes. Events are pooled by the kernel, so neither
// payload allocates in steady state.
type event struct {
	t   Time
	seq int64
	fn  func() // run-fn payload; nil for resume-proc events
	p   *Proc  // resume-proc payload
}

// maxTime is the largest representable simulated time.
const maxTime = Time(1<<63 - 1)

// Kernel owns the simulated clock and the event calendar and drives all
// processes. A Kernel and everything attached to it must be used from a
// single OS-level goroutine (the one that calls Run); process goroutines are
// scheduled by the kernel itself and never run concurrently with it.
//
// Scheduling structure: events in the future live in the calendar queue
// (calQueue, O(1) amortized); events at the current instant — unparks and
// mailbox wake-ups — bypass it through the nowQ FIFO. The global order is
// still exactly (time, seq): nowQ entries carry sequence numbers and the
// dispatch loop lets same-time calendar events with lower sequence numbers
// (scheduled earlier, from a past instant) fire first.
type Kernel struct {
	now     Time
	seq     int64
	cq      calQueue
	nowQ    []*event
	nowHead int
	pool    []*event
	yield   chan struct{}
	running bool
	live    int // processes spawned and not yet finished
	blocked int // processes parked on a resource or mailbox
	procSeq int64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	// Capacity 1 makes the yield/resume rendezvous a single blocking
	// receive instead of a send/receive pair on both sides: the sender
	// never blocks, and the happens-before edge of the buffered send still
	// orders all simulation state written before a handoff.
	return &Kernel{yield: make(chan struct{}, 1)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Live reports the number of processes that have been spawned and have not
// yet returned.
func (k *Kernel) Live() int { return k.live }

// Blocked reports the number of processes currently parked waiting for a
// resource, store or mailbox (not those sleeping on the calendar).
func (k *Kernel) Blocked() int { return k.blocked }

// newEvent returns a pooled event stamped with the next sequence number.
func (k *Kernel) newEvent(t Time) *event {
	var e *event
	if n := len(k.pool); n > 0 {
		e = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		e = &event{}
	}
	k.seq++
	e.t = t
	e.seq = k.seq
	return e
}

func (k *Kernel) freeEvent(e *event) {
	e.fn = nil
	e.p = nil
	k.pool = append(k.pool, e)
}

// schedule files e under the (time, seq) order: same-instant events go to
// the nowQ FIFO, future events to the calendar queue.
func (k *Kernel) schedule(e *event) {
	if e.t == k.now {
		k.nowQ = append(k.nowQ, e)
		return
	}
	k.cq.enqueue(e)
}

// At schedules fn to run in kernel context at absolute time t.
// It panics if t is in the simulated past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	e := k.newEvent(t)
	e.fn = fn
	k.schedule(e)
}

// atProc schedules p to be resumed at absolute time t (closure-free).
func (k *Kernel) atProc(t Time, p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	e := k.newEvent(t)
	e.p = p
	k.schedule(e)
}

// After schedules fn to run in kernel context d from now.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// next extracts the next event in (time, seq) order with time <= until,
// advancing the clock; it returns nil when no such event exists.
func (k *Kernel) next(until Time) *event {
	if k.nowHead < len(k.nowQ) {
		if k.now > until {
			return nil
		}
		// A same-time calendar event was necessarily scheduled from an
		// earlier instant, so its sequence number is lower than every
		// nowQ entry's: it goes first.
		if t, ok := k.cq.peekTime(); ok && t == k.now {
			return k.cq.pop(k.now)
		}
		e := k.nowQ[k.nowHead]
		k.nowQ[k.nowHead] = nil
		k.nowHead++
		if k.nowHead == len(k.nowQ) {
			k.nowQ = k.nowQ[:0]
			k.nowHead = 0
		}
		return e
	}
	e := k.cq.pop(until)
	if e != nil {
		k.now = e.t
	}
	return e
}

// dispatch recycles e and performs its action: a direct process handoff for
// resume-proc events, a call for run-fn events.
func (k *Kernel) dispatch(e *event) {
	if p := e.p; p != nil {
		k.freeEvent(e)
		k.step(p)
		return
	}
	fn := e.fn
	k.freeEvent(e)
	fn()
}

// Run executes events in timestamp order until the calendar is empty or the
// clock would pass until. It returns the simulated time at which it stopped.
// Events exactly at until are executed. Run may be called repeatedly with
// increasing horizons.
func (k *Kernel) Run(until Time) Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		e := k.next(until)
		if e == nil {
			break
		}
		k.dispatch(e)
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// RunAll executes events until the calendar is empty, leaving the clock at
// the time of the last event executed.
func (k *Kernel) RunAll() Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for {
		e := k.next(maxTime)
		if e == nil {
			break
		}
		k.dispatch(e)
	}
	return k.now
}

// Pending reports the number of scheduled events (calendar and same-instant
// queue).
func (k *Kernel) Pending() int {
	return k.cq.len() + len(k.nowQ) - k.nowHead
}
