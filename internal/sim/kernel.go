package sim

import (
	"container/heap"
	"fmt"
)

// event is a calendar entry: at time t, run fn in kernel context.
// fn must never block; blocking work belongs in processes.
type event struct {
	t   Time
	seq int64
	fn  func()
}

// calendar is a min-heap of events ordered by (time, sequence).
type calendar []*event

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].t != c[j].t {
		return c[i].t < c[j].t
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x any)   { *c = append(*c, x.(*event)) }
func (c *calendar) Pop() any {
	old := *c
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*c = old[:n-1]
	return e
}

// Kernel owns the simulated clock and the event calendar and drives all
// processes. A Kernel and everything attached to it must be used from a
// single OS-level goroutine (the one that calls Run); process goroutines are
// scheduled by the kernel itself and never run concurrently with it.
type Kernel struct {
	now     Time
	seq     int64
	cal     calendar
	yield   chan struct{}
	running bool
	live    int // processes spawned and not yet finished
	blocked int // processes parked on a resource or mailbox
	procSeq int64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Live reports the number of processes that have been spawned and have not
// yet returned.
func (k *Kernel) Live() int { return k.live }

// Blocked reports the number of processes currently parked waiting for a
// resource, store or mailbox (not those sleeping on the calendar).
func (k *Kernel) Blocked() int { return k.blocked }

// At schedules fn to run in kernel context at absolute time t.
// It panics if t is in the simulated past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.cal, &event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run in kernel context d from now.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// Run executes events in timestamp order until the calendar is empty or the
// clock would pass until. It returns the simulated time at which it stopped.
// Events exactly at until are executed. Run may be called repeatedly with
// increasing horizons.
func (k *Kernel) Run(until Time) Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.cal) > 0 {
		next := k.cal[0]
		if next.t > until {
			k.now = until
			return k.now
		}
		heap.Pop(&k.cal)
		k.now = next.t
		next.fn()
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// RunAll executes events until the calendar is empty, leaving the clock at
// the time of the last event executed.
func (k *Kernel) RunAll() Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	defer func() { k.running = false }()
	for len(k.cal) > 0 {
		e := heap.Pop(&k.cal).(*event)
		k.now = e.t
		e.fn()
	}
	return k.now
}

// Pending reports the number of scheduled calendar events.
func (k *Kernel) Pending() int { return len(k.cal) }
