package sim

import "fmt"

// event is a calendar entry: at time t, resume process p (the hot path:
// Wait wake-ups, unparks) or run fn in kernel context (the general path:
// At/After). Exactly one of p and fn is set. fn must never block; blocking
// work belongs in processes. Events are pooled by the kernel, so neither
// payload allocates in steady state.
type event struct {
	t   Time
	seq int64
	fn  func() // run-fn payload; nil for resume-proc events
	p   *Proc  // resume-proc payload
}

// maxTime is the largest representable simulated time.
const maxTime = Time(1<<63 - 1)

// Kernel owns the simulated clock and the event calendar and drives all
// processes. A Kernel and everything attached to it must be used from a
// single OS-level goroutine (the one that calls Run); process goroutines are
// scheduled by the kernel itself and never run concurrently with it.
//
// Scheduling structure: events in the future live in the calendar queue
// (calQueue, O(1) amortized); events at the current instant — unparks and
// mailbox wake-ups — bypass it through the nowQ FIFO. The global order is
// still exactly (time, seq): nowQ entries carry sequence numbers and the
// dispatch loop lets same-time calendar events with lower sequence numbers
// (scheduled earlier, from a past instant) fire first.
//
// Dispatch is cooperative ("the ball"): exactly one goroutine at a time —
// the root Run loop or one process — pops and dispatches events. A blocking
// process does not hand control back to the root loop; it keeps dispatching
// in its own context until its own resume event comes up (continuation fast
// path, zero goroutine switches) or another process's turn arrives (direct
// handoff, one switch). See Proc.block.
type Kernel struct {
	now     Time
	seq     int64
	cq      calQueue
	nowQ    []*event
	nowHead int
	pool    []*event
	yield   chan struct{}
	running bool
	inline  bool // continuation fast path enabled (default true)
	pooling bool // spawn reuses parked worker goroutines (default true)
	killing bool // Shutdown in progress: resumes unwind via the kill sentinel
	horizon Time // until of the active Run; valid while running
	blocked int  // processes parked on a resource or mailbox
	procSeq int64

	procs []*Proc   // live processes (spawned, not yet finished), registry order
	freeW []*worker // parked pooled worker goroutines awaiting reuse

	dispatched   int64 // events dispatched since kernel creation
	inlineWakes  int64 // blocks resolved in-context, without a goroutine switch
	handoffs     int64 // goroutine switches into a process (direct or from root)
	goroutines   int   // worker goroutines alive (parked, running, or blocked)
	spawnReuses  int64 // spawns served by a pooled worker instead of a new goroutine
	lightSpawns  int64 // run-to-completion processes started via SpawnFn
	batchedGets  int64 // Chan.GetAll drains
	batchedItems int64 // messages delivered through GetAll drains
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	// Capacity 1 makes every handoff rendezvous a single blocking receive
	// instead of a send/receive pair on both sides: the sender never
	// blocks, and the happens-before edge of the buffered send still
	// orders all simulation state written before a handoff.
	k := &Kernel{yield: make(chan struct{}, 1), inline: true, pooling: true}
	k.cq.shift = calShift
	return k
}

// SetSpawnPooling toggles worker-goroutine pooling. With it disabled every
// Spawn starts a fresh goroutine that exits when the process returns (the
// pre-pool behavior). Dispatch order — and therefore every simulation result
// — is identical either way; the switch exists for benchmarks and
// equivalence tests. It must not be called while Run is active.
func (k *Kernel) SetSpawnPooling(enabled bool) {
	if k.running {
		panic("sim: SetSpawnPooling during Run")
	}
	k.pooling = enabled
}

// SetInlineDispatch toggles the continuation fast path. With it disabled
// every block is a park/resume pair through the root Run loop (the
// pre-fast-path behavior). Dispatch order — and therefore every simulation
// result — is identical either way; the switch exists for benchmarks and
// determinism tests. It must not be called while Run is active.
func (k *Kernel) SetInlineDispatch(enabled bool) {
	if k.running {
		panic("sim: SetInlineDispatch during Run")
	}
	k.inline = enabled
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Live reports the number of processes that have been spawned and have not
// yet returned.
func (k *Kernel) Live() int { return len(k.procs) }

// Blocked reports the number of processes currently parked waiting for a
// resource, store or mailbox (not those sleeping on the calendar).
func (k *Kernel) Blocked() int { return k.blocked }

// KernelStats is a snapshot of scheduling counters: how events are being
// dispatched, what the process model is costing, and how the calendar queue
// is coping with the workload's event horizon.
//
// Spawns/SpawnReuses/LiveGoroutines characterize the process pool: in steady
// state SpawnReuses tracks Spawns (every spawn reuses a parked worker) and
// LiveGoroutines stays O(peak live processes) — not O(total spawned).
// LightSpawns counts run-to-completion processes (SpawnFn) that needed no
// goroutine at all; BatchedGets/BatchedItems measure mailbox-drain leverage
// (items per wake-up). OverflowLen/OverflowPeak/OverflowPushes/Migrations
// diagnose a wheel-width mismatch; WheelShift/WidthResizes record how the
// self-tuning calendar responded (see calQueue.maybeWiden).
type KernelStats struct {
	Dispatched  int64 // events dispatched since kernel creation
	InlineWakes int64 // blocks resolved in-context (continuation fast path, no switch)
	Handoffs    int64 // goroutine switches into a process

	Spawns         int64 // processes ever spawned (Spawn/SpawnAt/SpawnArg)
	SpawnReuses    int64 // spawns served by a parked pooled worker (no goroutine birth)
	LiveGoroutines int   // worker goroutines alive: parked in the pool, running, or blocked
	LightSpawns    int64 // run-to-completion processes started via SpawnFn
	BatchedGets    int64 // Chan.GetAll drains
	BatchedItems   int64 // messages delivered through GetAll drains

	WheelLen       int   // events currently in the calendar wheel
	WheelShift     int   // current bucket-width exponent (bucket width = 1<<shift ns)
	WidthResizes   int64 // times the self-tuning wheel doubled its bucket width
	OverflowLen    int   // events currently in the overflow heap
	OverflowPeak   int   // high-water overflow-heap residency
	OverflowPushes int64 // enqueues that landed beyond the wheel horizon
	Migrations     int64 // events migrated overflow → wheel as the cursor advanced
}

// Stats returns the kernel's scheduling counters.
func (k *Kernel) Stats() KernelStats {
	return KernelStats{
		Dispatched:     k.dispatched,
		InlineWakes:    k.inlineWakes,
		Handoffs:       k.handoffs,
		Spawns:         k.procSeq,
		SpawnReuses:    k.spawnReuses,
		LiveGoroutines: k.goroutines,
		LightSpawns:    k.lightSpawns,
		BatchedGets:    k.batchedGets,
		BatchedItems:   k.batchedItems,
		WheelLen:       k.cq.wheelN,
		WheelShift:     int(k.cq.shift),
		WidthResizes:   k.cq.resizes,
		OverflowLen:    len(k.cq.overflow),
		OverflowPeak:   k.cq.overflowPeak,
		OverflowPushes: k.cq.overflowPushes,
		Migrations:     k.cq.migrations,
	}
}

// newEvent returns a pooled event stamped with the next sequence number.
func (k *Kernel) newEvent(t Time) *event {
	var e *event
	if n := len(k.pool); n > 0 {
		e = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		e = &event{}
	}
	k.seq++
	e.t = t
	e.seq = k.seq
	return e
}

func (k *Kernel) freeEvent(e *event) {
	e.fn = nil
	e.p = nil
	k.pool = append(k.pool, e)
}

// schedule files e under the (time, seq) order: same-instant events go to
// the nowQ FIFO, future events to the calendar queue.
func (k *Kernel) schedule(e *event) {
	if e.t == k.now {
		k.nowQ = append(k.nowQ, e)
		return
	}
	k.cq.enqueue(e)
}

// At schedules fn to run in kernel context at absolute time t.
// It panics if t is in the simulated past.
//
// "Kernel context" is wherever dispatch is happening: with the
// continuation fast path (the default) fn may execute on a blocked
// process's goroutine rather than the goroutine that called Run, so a
// panic escaping fn unwinds that process goroutine and cannot be recovered
// around Run. Treat a panic in an event function as fatal (it is a
// simulation bug either way); recover inside fn if a callback must be
// panic-safe.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	e := k.newEvent(t)
	e.fn = fn
	k.schedule(e)
}

// atProc schedules p to be resumed at absolute time t (closure-free).
func (k *Kernel) atProc(t Time, p *Proc) {
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, k.now))
	}
	e := k.newEvent(t)
	e.p = p
	k.schedule(e)
}

// After schedules fn to run in kernel context d from now.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.At(k.now+d, fn)
}

// next extracts the next event in (time, seq) order with time <= until,
// advancing the clock; it returns nil when no such event exists.
func (k *Kernel) next(until Time) *event {
	if k.nowHead < len(k.nowQ) {
		if k.now > until {
			return nil
		}
		// A same-time calendar event was necessarily scheduled from an
		// earlier instant, so its sequence number is lower than every
		// nowQ entry's: it goes first.
		if t, ok := k.cq.peekTime(); ok && t == k.now {
			k.dispatched++
			return k.cq.pop(k.now)
		}
		e := k.nowQ[k.nowHead]
		k.nowQ[k.nowHead] = nil
		k.nowHead++
		if k.nowHead == len(k.nowQ) {
			k.nowQ = k.nowQ[:0]
			k.nowHead = 0
		}
		k.dispatched++
		return e
	}
	e := k.cq.pop(until)
	if e != nil {
		k.now = e.t
		k.dispatched++
	}
	return e
}

// switchTo hands the ball to p and waits for it to come back to the root
// loop: p runs — possibly dispatching further events in its own context,
// possibly handing off directly to other processes — until some ball holder
// drains the horizon or finishes, which yields to the root.
func (k *Kernel) switchTo(p *Proc) {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished process %q", p.name))
	}
	k.handoffs++
	p.resume <- struct{}{}
	<-k.yield
}

// dispatch recycles e and performs its action from the root loop: a process
// handoff for resume-proc events, a call for run-fn events.
func (k *Kernel) dispatch(e *event) {
	if p := e.p; p != nil {
		k.freeEvent(e)
		k.switchTo(p)
		return
	}
	fn := e.fn
	k.freeEvent(e)
	fn()
}

// Run executes events in timestamp order until the calendar is empty or the
// clock would pass until. It returns the simulated time at which it stopped.
// Events exactly at until are executed. Run may be called repeatedly with
// increasing horizons.
func (k *Kernel) Run(until Time) Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	k.horizon = until
	defer func() { k.running = false }()
	for {
		e := k.next(until)
		if e == nil {
			break
		}
		k.dispatch(e)
	}
	if k.now < until {
		k.now = until
	}
	return k.now
}

// RunAll executes events until the calendar is empty, leaving the clock at
// the time of the last event executed.
func (k *Kernel) RunAll() Time {
	if k.running {
		panic("sim: Kernel.Run re-entered")
	}
	k.running = true
	k.horizon = maxTime
	defer func() { k.running = false }()
	for {
		e := k.next(maxTime)
		if e == nil {
			break
		}
		k.dispatch(e)
	}
	return k.now
}

// Pending reports the number of scheduled events (calendar and same-instant
// queue).
func (k *Kernel) Pending() int {
	return k.cq.len() + len(k.nowQ) - k.nowHead
}

// SpawnFn starts a run-to-completion "light" process: fn is scheduled as an
// ordinary event at the current time and runs in kernel context — no
// goroutine, no resume channel, no Proc allocation. fn must never block
// (there is no process identity to suspend); timed holds are expressed
// through the continuation primitives (Server.UseFn, netw.SendFn), which
// schedule their follow-up events at exactly the (time, seq) positions the
// equivalent Proc-based body would have, so converting a non-blocking Spawn
// call site to SpawnFn leaves every simulation result bit-identical.
func (k *Kernel) SpawnFn(fn func()) {
	k.lightSpawns++
	e := k.newEvent(k.now)
	e.fn = fn
	k.schedule(e)
}

// Shutdown terminates every live process and dismisses the worker pool,
// releasing all goroutines and the memory their stacks and captured state
// pin. Call it when a simulation is complete (after the final Run and after
// results have been read): without it, a long sweep of independent
// simulations would accumulate one pool of parked goroutines per kernel.
//
// Each live process is killed by injecting a panic sentinel at its blocked
// resume point; the unwind runs the process's defers (admission tokens,
// buffer space and locks are returned normally) and is recovered at the
// spawn boundary. Pending calendar events are left in place — they will
// simply never be dispatched. The kernel must not be used for further
// simulation after Shutdown.
func (k *Kernel) Shutdown() {
	if k.running {
		panic("sim: Shutdown during Run")
	}
	k.killing = true
	for len(k.procs) > 0 {
		p := k.procs[len(k.procs)-1]
		// Every live process is parked at a resume receive with an empty
		// buffer (Run only returns once all ready events are dispatched),
		// so this send is the kill signal, and the yield receive observes
		// the goroutine's exit protocol.
		p.resume <- struct{}{}
		<-k.yield
	}
	k.killing = false
	k.ReleaseWorkers()
}

// ReleaseWorkers dismisses the parked worker-goroutine pool (a nil-fn
// resume makes a pooled worker return). Shutdown calls it; it is exported
// for callers that never spawn blocking processes but still want to drop
// the pool between simulations.
func (k *Kernel) ReleaseWorkers() {
	if k.running {
		panic("sim: ReleaseWorkers during Run")
	}
	for i, w := range k.freeW {
		w.proc.resume <- struct{}{}
		k.freeW[i] = nil
	}
	k.goroutines -= len(k.freeW)
	k.freeW = k.freeW[:0]
}
