package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// modelTrace is the reference workload for process-model equivalence: a
// randomized mix of spawned workers (timed holds on a contended server,
// mailbox puts) plus a control side and a mailbox consumer, each of which
// can run through the legacy mechanism or its PR-6 replacement:
//
//	pooled  — Spawn reuses parked worker goroutines vs one goroutine each
//	light   — the control side runs via SpawnFn/UseFn vs a spawned Proc
//	batched — the consumer drains via GetAll vs single Gets
//
// Every combination must produce the identical (time, value) trace.
func modelTrace(seed int64, pooled, light, batched bool) []Time {
	k := NewKernel()
	k.SetSpawnPooling(pooled)
	srv := NewServer(k, "cpu", 2)
	ctl := NewServer(k, "ctl", 1)
	mail := NewChan[int](k, "mail")
	rng := rand.New(rand.NewSource(seed))
	var out []Time

	const workers = 40
	for i := 0; i < workers; i++ {
		d := Duration(rng.Intn(900)+1) * Microsecond
		start := Duration(rng.Intn(4000)) * Microsecond
		k.SpawnAt(start, "w", func(p *Proc) {
			srv.Use(p, d)
			out = append(out, p.Now())
			mail.Put(i)
			// Fire-and-forget control message: charge the control server,
			// then record. Never blocks on anything but the CPU hold, so
			// it qualifies for the light path.
			if light {
				k.SpawnFn(func() {
					ctl.UseFn(d/3, func() {
						out = append(out, k.Now())
					})
				})
			} else {
				k.Spawn("ctl", func(cp *Proc) {
					ctl.Use(cp, d/3)
					out = append(out, cp.Now())
				})
			}
			p.Wait(d / 2)
			out = append(out, p.Now())
		})
	}
	k.Spawn("reader", func(p *Proc) {
		if batched {
			var batch []int
			for got := 0; got < workers; {
				batch, _ = mail.GetAll(p, batch[:0])
				for _, v := range batch {
					out = append(out, p.Now()+Time(v))
					got++
				}
			}
		} else {
			for got := 0; got < workers; got++ {
				v, _ := mail.Get(p)
				out = append(out, p.Now()+Time(v))
			}
		}
	})
	// Run in horizon slices so the drain-to-horizon handoff is exercised.
	for h := 500 * Microsecond; k.Pending() > 0; h += 500 * Microsecond {
		k.Run(h)
	}
	k.Shutdown()
	return out
}

func requireSameTrace(t *testing.T, name string, seed int64, got, want []Time) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s seed %d: trace lengths differ: %d vs %d", name, seed, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s seed %d: traces diverge at %d: %v vs %v", name, seed, i, got[i], want[i])
		}
	}
}

// TestProcessModelEquivalence pins the PR-6 contract: pooled spawns, light
// processes and batched mailbox drains each produce bit-identical traces to
// the mechanisms they replace — individually and all together.
func TestProcessModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		base := modelTrace(seed, false, false, false)
		requireSameTrace(t, "pooled", seed, modelTrace(seed, true, false, false), base)
		requireSameTrace(t, "light", seed, modelTrace(seed, false, true, false), base)
		requireSameTrace(t, "batched", seed, modelTrace(seed, false, false, true), base)
		requireSameTrace(t, "all", seed, modelTrace(seed, true, true, true), base)
	}
}

// TestSpawnPoolReuse verifies the pool actually engages: sequential
// ephemeral processes share one worker goroutine, and identity fields are
// reset on each reuse.
func TestSpawnPoolReuse(t *testing.T) {
	k := NewKernel()
	var ids []int64
	var names []string
	var args []int64
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < 10; i++ {
			k.SpawnArg("child", int64(100+i), func(c *Proc) {
				ids = append(ids, c.ID())
				names = append(names, c.Name())
				args = append(args, c.Arg())
			})
			p.Wait(Millisecond)
		}
	})
	k.RunAll()
	s := k.Stats()
	if s.Spawns != 11 {
		t.Errorf("Spawns = %d, want 11", s.Spawns)
	}
	// The driver takes one worker; after the first child returns its worker,
	// every later child reuses it.
	if s.SpawnReuses != 9 {
		t.Errorf("SpawnReuses = %d, want 9", s.SpawnReuses)
	}
	if s.LiveGoroutines != 2 {
		t.Errorf("LiveGoroutines = %d, want 2 (parked driver + child workers)", s.LiveGoroutines)
	}
	for i := 0; i < 10; i++ {
		if names[i] != "child" || args[i] != int64(100+i) {
			t.Fatalf("child %d identity: name=%q arg=%d", i, names[i], args[i])
		}
		for j := 0; j < i; j++ {
			if ids[i] == ids[j] {
				t.Fatalf("children %d and %d share ID %d", j, i, ids[i])
			}
		}
	}
	k.Shutdown()
	if s := k.Stats(); s.LiveGoroutines != 0 {
		t.Errorf("LiveGoroutines = %d after Shutdown, want 0", s.LiveGoroutines)
	}
}

// TestShutdownKillsBlockedProcs: Shutdown unwinds processes blocked on every
// primitive (calendar wait, server queue, store, mailbox, park), runs their
// defers, and releases all worker goroutines.
func TestShutdownKillsBlockedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	k := NewKernel()
	srv := NewServer(k, "cpu", 1)
	st := NewStore(k, "mem", 1)
	mail := NewChan[int](k, "mail")
	defersRun := 0
	body := []func(p *Proc){
		func(p *Proc) { p.Wait(Time(1) * Second) },
		func(p *Proc) { srv.Use(p, Second) },
		func(p *Proc) { srv.Use(p, Second) }, // queued behind the first
		func(p *Proc) { st.Get(p, 1); defer st.Put(1); p.Wait(Second) },
		func(p *Proc) { mail.Get(p) },
		func(p *Proc) { p.Park() },
	}
	for _, fn := range body {
		k.Spawn("victim", func(p *Proc) {
			defer func() { defersRun++ }()
			fn(p)
		})
	}
	k.Run(100 * Millisecond)
	if k.Live() != len(body) {
		t.Fatalf("Live = %d before Shutdown, want %d", k.Live(), len(body))
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Errorf("Live = %d after Shutdown, want 0", k.Live())
	}
	if defersRun != len(body) {
		t.Errorf("defers ran on %d of %d killed processes", defersRun, len(body))
	}
	if s := k.Stats(); s.LiveGoroutines != 0 {
		t.Errorf("LiveGoroutines = %d after Shutdown, want 0", s.LiveGoroutines)
	}
	// The OS-level goroutines must actually exit (give the scheduler a
	// moment: the workers' final channel receives race the counter).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines alive after Shutdown, %d before kernel creation", g, before)
	}
}

// TestGetAllBatch exercises the drain semantics directly: a burst is
// delivered in one batch in FIFO order, the buffer is reused, and the
// batched counters advance.
func TestGetAllBatch(t *testing.T) {
	k := NewKernel()
	mail := NewChan[int](k, "mail")
	var batches [][]int
	k.Spawn("consumer", func(p *Proc) {
		var buf []int
		for rounds := 0; rounds < 2; rounds++ {
			buf, _ = mail.GetAll(p, buf[:0])
			batches = append(batches, append([]int(nil), buf...))
		}
	})
	k.At(Millisecond, func() {
		for i := 1; i <= 5; i++ {
			mail.Put(i)
		}
	})
	k.At(2*Millisecond, func() {
		mail.Put(6)
		mail.Put(7)
	})
	k.RunAll()
	want := [][]int{{1, 2, 3, 4, 5}, {6, 7}}
	if len(batches) != len(want) {
		t.Fatalf("batches = %v, want %v", batches, want)
	}
	for i := range want {
		if len(batches[i]) != len(want[i]) {
			t.Fatalf("batch %d = %v, want %v", i, batches[i], want[i])
		}
		for j := range want[i] {
			if batches[i][j] != want[i][j] {
				t.Fatalf("batch %d = %v, want %v", i, batches[i], want[i])
			}
		}
	}
	s := k.Stats()
	if s.BatchedGets != 2 || s.BatchedItems != 7 {
		t.Errorf("BatchedGets/Items = %d/%d, want 2/7", s.BatchedGets, s.BatchedItems)
	}
	if mail.Len() != 0 {
		t.Errorf("mailbox holds %d items after drains", mail.Len())
	}
}

// TestCalendarSelfTuning: a workload whose event gaps dwarf the initial
// wheel horizon must trigger widen-only retuning until the gaps fit, while
// preserving exact (time, seq) dispatch order.
func TestCalendarSelfTuning(t *testing.T) {
	k := NewKernel()
	// 100 ms gaps: beyond the 33.6 ms initial horizon (shift 12) and the
	// 67 ms horizon after one doubling; inside the 134 ms horizon of shift
	// 14. Every enqueue overflows until the second widen.
	const gap = 100 * Millisecond
	const population = 8
	fired := 0
	last := Time(-1)
	var tick func()
	tick = func() {
		if k.Now() < last {
			t.Fatalf("clock went backwards: %v after %v", k.Now(), last)
		}
		last = k.Now()
		fired++
		if fired < 3*tuneWindow {
			k.After(gap, tick)
		}
	}
	for i := 0; i < population; i++ {
		k.At(Time(i+1)*Millisecond, tick)
	}
	k.RunAll()
	s := k.Stats()
	if s.WidthResizes != 2 {
		t.Errorf("WidthResizes = %d, want 2", s.WidthResizes)
	}
	if s.WheelShift != calShift+2 {
		t.Errorf("WheelShift = %d, want %d", s.WheelShift, calShift+2)
	}
	if fired < 3*tuneWindow {
		t.Errorf("fired %d events, want >= %d", fired, 3*tuneWindow)
	}
}

// TestCalendarSelfTuningDeterminism: retuning decisions depend only on the
// event stream, so a widened run stays bit-reproducible.
func TestCalendarSelfTuningDeterminism(t *testing.T) {
	trace := func() []Time {
		k := NewKernel()
		rng := rand.New(rand.NewSource(11))
		var out []Time
		n := 0
		var tick func()
		tick = func() {
			out = append(out, k.Now())
			n++
			if n < 2*tuneWindow {
				k.After(Duration(rng.Intn(200)+50)*Millisecond, tick)
			}
		}
		for i := 0; i < 16; i++ {
			k.At(Time(i)*Millisecond, tick)
		}
		k.RunAll()
		if k.Stats().WidthResizes == 0 {
			t.Fatal("workload did not trigger a resize")
		}
		return out
	}
	a, b := trace(), trace()
	requireSameTrace(t, "selftune", 11, a, b)
}
