// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. Each simulated process is a goroutine, but the kernel
// runs exactly one process at a time and orders all wake-ups on a single
// event calendar keyed by (time, sequence), so simulations are reproducible
// bit-for-bit for a given seed.
//
// The kernel replaces the DeNet simulation environment used by Rahm & Marek
// (VLDB '95). Processes model database operators and node services; shared
// resources are modelled with Server (multi-server FCFS queue), Store
// (counting resource with a FCFS wait queue) and Chan (mailbox).
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
// Integer nanoseconds keep arithmetic exact and runs reproducible.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Milliseconds converts t to floating-point milliseconds, the unit used
// throughout the paper's figures.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a time.Duration for display.
func (t Time) Std() time.Duration { return time.Duration(t) }

func (t Time) String() string { return t.Std().String() }

// FromMillis builds a Duration from floating-point milliseconds.
func FromMillis(ms float64) Duration { return Duration(ms * float64(Millisecond)) }

// FromSeconds builds a Duration from floating-point seconds.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Scale multiplies d by a non-negative factor, rounding to the nearest
// nanosecond. It panics on negative factors, which always indicate a bug in
// cost accounting.
func Scale(d Duration, f float64) Duration {
	if f < 0 {
		panic(fmt.Sprintf("sim: negative scale factor %g", f))
	}
	return Duration(float64(d)*f + 0.5)
}
