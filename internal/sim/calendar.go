package sim

import "math/bits"

// calQueue is the kernel's event calendar: a bucketed calendar queue
// (timing wheel over the near future plus an overflow min-heap for distant
// events). Insert and extract are O(1) amortized for the near-future events
// that dominate discrete-event simulation; only events beyond the wheel
// horizon pay an O(log m) heap operation, and each such event pays it once.
//
// Total order is (time, seq), exactly the contract of the old binary-heap
// calendar: the wheel maps a time to bucket (t>>shift)&calMask, each
// bucket is kept sorted, and the overflow heap compares (t, seq).
//
// Invariants (cur is the time of the last extracted event):
//   - every wheel event e has cur <= e.t < wheelLimit(cur)
//   - every overflow event e has e.t >= wheelLimit at its insertion time;
//     migrate() moves events into the wheel as the limit advances
//
// Because the wheel horizon is exactly calBuckets<<shift, each bucket
// holds times from a single revolution, so circular bucket order from the
// cursor equals time order and the earliest wheel event beats every
// overflow event. A one-bit-per-bucket occupancy bitmap makes the scan for
// the next nonempty bucket O(1) in practice.
//
// The bucket width is self-tuning (widen-only): when a sampling window of
// enqueues is dominated by overflow pushes — the workload's event gaps
// dwarf the wheel horizon, so most inserts pay the O(log m) heap and a
// later migration — the wheel doubles its bucket width and rehashes. See
// maybeWiden.
type calQueue struct {
	buckets  [calBuckets][]*event
	bitmap   [calBuckets / 64]uint64
	wheelN   int  // events in the wheel
	shift    uint // bucket width exponent: bucket width = 1<<shift ns
	cur      Time
	head     *event // cached minimum, still stored in its bucket; nil = unknown
	overflow overflowHeap
	scratch  []*event // reusable buffer for widen() rehashes

	// Observability counters (surfaced via Kernel.Stats). The push counters
	// double as the self-tuning signal: maybeWiden compares overflow and
	// wheel pushes over a sampling window and widens when overflow wins.
	overflowPushes int64 // enqueues that landed beyond the wheel horizon
	overflowPeak   int   // high-water overflow residency
	migrations     int64 // events moved overflow → wheel
	wheelPushes    int64 // enqueues that landed in the wheel directly
	resizes        int64 // bucket-width doublings performed
	tuneOverflow   int64 // overflowPushes at the last width check
	tuneWheel      int64 // wheelPushes at the last width check
}

const (
	calShift   = 12      // initial bucket width 4096ns ≈ 4.1µs
	calBuckets = 1 << 13 // 8192 buckets → initial wheel horizon ≈ 33.6ms
	calMask    = calBuckets - 1

	// Self-tuning parameters: after every tuneWindow overflow pushes,
	// double the bucket width if overflow pushes outnumbered direct wheel
	// pushes over the window (most inserts are paying for a wheel that is
	// too narrow). The window is large enough that transient bursts —
	// e.g. the start-up wave of arrival processes scheduled across a long
	// warm-up — don't trigger a resize, and maxShift caps the width at
	// ~67ms buckets (~9.2min horizon) so a pathological far-future tail
	// can't widen the wheel into a coarse single bucket.
	tuneWindow = 4096
	maxShift   = 26
)

// wheelLimit returns the first time beyond the wheel horizon as of cur.
func (q *calQueue) wheelLimit() Time {
	return (q.cur>>q.shift + calBuckets) << q.shift
}

func (q *calQueue) len() int { return q.wheelN + len(q.overflow) }

// enqueue inserts e (e.t must be >= the time of the last extraction).
func (q *calQueue) enqueue(e *event) {
	if e.t >= q.wheelLimit() {
		q.overflow.push(e)
		q.overflowPushes++
		if len(q.overflow) > q.overflowPeak {
			q.overflowPeak = len(q.overflow)
		}
		q.maybeWiden()
		return
	}
	q.wheelPushes++
	q.wheelInsert(e)
	if q.head != nil && e.t < q.head.t {
		q.head = e // strictly earlier; on a time tie the older head has the lower seq
	}
}

// maybeWiden checks the self-tuning criterion after an overflow push:
// across the last sampling window, did enqueues land in the overflow heap
// at least as often as in the wheel? If so the bucket width doubles. The
// decision depends only on the event stream, so it is bit-reproducible;
// and since both widths order events identically, retuning never changes
// simulation results — only the insert/extract cost.
func (q *calQueue) maybeWiden() {
	if q.overflowPushes-q.tuneOverflow < tuneWindow {
		return
	}
	recentWheel := q.wheelPushes - q.tuneWheel
	q.tuneOverflow, q.tuneWheel = q.overflowPushes, q.wheelPushes
	if q.shift >= maxShift || recentWheel > tuneWindow {
		return
	}
	q.widen()
}

// widen doubles the bucket width: every wheel event rehashes under the new
// shift, then overflow events now inside the doubled horizon migrate in.
// Rehashing preserves the single-revolution invariant because the horizon
// is still exactly calBuckets<<shift.
func (q *calQueue) widen() {
	q.shift++
	q.resizes++
	evs := q.scratch[:0]
	for i := range q.buckets {
		b := q.buckets[i]
		evs = append(evs, b...)
		for j := range b {
			b[j] = nil
		}
		q.buckets[i] = b[:0]
	}
	for i := range q.bitmap {
		q.bitmap[i] = 0
	}
	q.wheelN = 0
	q.head = nil
	for i, e := range evs {
		q.wheelInsert(e)
		evs[i] = nil
	}
	q.scratch = evs[:0]
	q.migrate()
}

func (q *calQueue) wheelInsert(e *event) {
	idx := int(e.t>>q.shift) & calMask
	b := q.buckets[idx]
	// Sorted insert by (t, seq), scanning from the back: arrivals are
	// usually the latest event in their bucket.
	i := len(b)
	b = append(b, e)
	for i > 0 && (b[i-1].t > e.t || (b[i-1].t == e.t && b[i-1].seq > e.seq)) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	q.buckets[idx] = b
	q.bitmap[idx>>6] |= 1 << (idx & 63)
	q.wheelN++
}

// migrate moves overflow events that now fit under the wheel horizon.
func (q *calQueue) migrate() {
	limit := q.wheelLimit()
	for len(q.overflow) > 0 && q.overflow[0].t < limit {
		q.wheelInsert(q.overflow.pop())
		q.migrations++
	}
}

// ensureHead locates and caches the earliest event (by time, then seq).
// It may only be called when the wheel is nonempty: jumping the cursor past
// an empty wheel is pop's job, because the caller of pop immediately
// advances the simulation clock to the popped time, which keeps the
// "enqueues never precede the cursor" invariant. A peek must not move the
// cursor.
func (q *calQueue) ensureHead() {
	idx := q.nextBucket(int(q.cur>>q.shift) & calMask)
	q.head = q.buckets[idx][0]
}

// nextBucket returns the first nonempty bucket at or circularly after from.
// The wheel must be nonempty.
func (q *calQueue) nextBucket(from int) int {
	w := from >> 6
	if word := q.bitmap[w] >> (from & 63); word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	for i := 1; i <= len(q.bitmap); i++ {
		wi := (w + i) & (len(q.bitmap) - 1)
		if q.bitmap[wi] != 0 {
			return wi<<6 + bits.TrailingZeros64(q.bitmap[wi])
		}
	}
	panic("sim: calendar bitmap empty with wheelN > 0")
}

// peekTime reports the earliest scheduled time, if any. It never moves the
// cursor, so it is safe to peek while the simulation clock lags the
// earliest event.
func (q *calQueue) peekTime() (Time, bool) {
	if q.head != nil {
		return q.head.t, true
	}
	if q.len() == 0 {
		return 0, false
	}
	q.migrate()
	if q.wheelN == 0 {
		// Everything lives beyond the wheel horizon; the heap minimum is
		// the global minimum. Leave the cursor alone.
		return q.overflow[0].t, true
	}
	q.ensureHead()
	return q.head.t, true
}

// pop extracts the earliest event if its time is <= limit, else nil.
func (q *calQueue) pop(limit Time) *event {
	if q.head == nil {
		if q.len() == 0 {
			return nil
		}
		q.migrate()
		if q.wheelN == 0 {
			// All remaining events are beyond the horizon: jump the
			// cursor to the overflow minimum and pull its window in.
			// Safe here because the caller advances the clock to the
			// popped event's time before any further enqueue.
			if q.overflow[0].t > limit {
				return nil
			}
			q.cur = q.overflow[0].t
			q.migrate()
		}
		q.ensureHead()
	}
	e := q.head
	if e.t > limit {
		return nil
	}
	idx := int(e.t>>q.shift) & calMask
	b := q.buckets[idx]
	copy(b, b[1:])
	b[len(b)-1] = nil
	q.buckets[idx] = b[:len(b)-1]
	if len(b) == 1 {
		q.bitmap[idx>>6] &^= 1 << (idx & 63)
	}
	q.wheelN--
	q.cur = e.t
	q.head = nil
	return e
}

// overflowHeap is a hand-rolled min-heap of events ordered by (t, seq); it
// avoids the interface boxing and allocation of container/heap.
type overflowHeap []*event

func (h overflowHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *overflowHeap) push(e *event) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !a.less(i, parent) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *overflowHeap) pop() *event {
	a := *h
	e := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	*h = a
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && a.less(l, min) {
			min = l
		}
		if r < n && a.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return e
}
