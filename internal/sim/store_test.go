package sim

import (
	"testing"
	"testing/quick"
)

func TestStoreImmediateGrant(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 50)
	k.Spawn("p", func(p *Proc) {
		st.Get(p, 30)
		if st.Level() != 20 {
			t.Errorf("level=%d after get 30, want 20", st.Level())
		}
		st.Put(30)
	})
	k.RunAll()
	if st.Level() != 50 {
		t.Errorf("level=%d at end, want 50", st.Level())
	}
}

func TestStoreFCFSHeadBlocksSmallerRequests(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 10)
	var order []string
	k.SpawnAt(0, "big-holder", func(p *Proc) {
		st.Get(p, 8)
		p.Wait(20 * Millisecond)
		st.Put(8)
	})
	k.SpawnAt(1*Microsecond, "wants6", func(p *Proc) {
		st.Get(p, 6)
		order = append(order, "six")
		st.Put(6)
	})
	k.SpawnAt(2*Microsecond, "wants1", func(p *Proc) {
		st.Get(p, 1) // could fit immediately, but FCFS: must wait behind wants6
		order = append(order, "one")
		st.Put(1)
	})
	k.RunAll()
	if len(order) != 2 || order[0] != "six" || order[1] != "one" {
		t.Fatalf("grant order %v; FCFS store must not leapfrog the head waiter", order)
	}
}

func TestStoreTryGet(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 5)
	if !st.TryGet(5) {
		t.Fatal("TryGet(5) on full store failed")
	}
	if st.TryGet(1) {
		t.Fatal("TryGet(1) on empty store succeeded")
	}
	st.Put(2)
	if !st.TryGet(2) {
		t.Fatal("TryGet(2) after Put(2) failed")
	}
}

func TestStoreTryGetRespectsQueue(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 10)
	k.Spawn("holder", func(p *Proc) {
		st.Get(p, 10)
		p.Wait(10 * Millisecond)
		st.Put(10)
	})
	k.SpawnAt(Microsecond, "waiter", func(p *Proc) {
		st.Get(p, 4)
		p.Wait(10 * Millisecond)
		st.Put(4)
	})
	k.SpawnAt(2*Microsecond, "try", func(p *Proc) {
		p.Wait(10 * Millisecond) // now holder released, waiter holds 4, level 6
		if !st.TryGet(6) {
			t.Error("TryGet(6) with empty queue and level 6 failed")
		}
		st.Put(6)
	})
	k.RunAll()
}

func TestStoreOverfillPanics(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 5)
	defer func() {
		if recover() == nil {
			t.Error("overfill did not panic")
		}
	}()
	st.Put(1)
}

func TestStoreGetMoreThanCapPanics(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 5)
	panicked := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		st.Get(p, 6)
	})
	k.RunAll()
	if !panicked {
		t.Error("get > cap did not panic")
	}
}

func TestStoreUtilization(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 10)
	k.Spawn("p", func(p *Proc) {
		st.Get(p, 5)
		p.Wait(100 * Millisecond)
		st.Put(5)
	})
	k.Run(100 * Millisecond)
	u := st.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization=%v, want 0.5", u)
	}
}

func TestStoreMultipleWaitersDrainInOrder(t *testing.T) {
	k := NewKernel()
	st := NewStore(k, "mem", 6)
	var order []int
	k.Spawn("holder", func(p *Proc) {
		st.Get(p, 6)
		p.Wait(5 * Millisecond)
		st.Put(6)
	})
	for i := 0; i < 3; i++ {
		i := i
		k.SpawnAt(Time(i+1)*Microsecond, "w", func(p *Proc) {
			st.Get(p, 2)
			order = append(order, i)
			st.Put(2)
		})
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("drain order %v not FCFS", order)
		}
	}
}

// Property: the store never goes negative and conservation holds — after all
// processes complete (each puts back what it got), level == cap.
func TestQuickStoreConservation(t *testing.T) {
	f := func(reqs []uint8) bool {
		k := NewKernel()
		st := NewStore(k, "mem", 100)
		for _, r := range reqs {
			n := int(r)%100 + 1
			k.Spawn("p", func(p *Proc) {
				st.Get(p, n)
				if st.Level() < 0 {
					t.Fatal("negative store level")
				}
				p.Wait(Duration(n) * Microsecond)
				st.Put(n)
			})
		}
		k.RunAll()
		return st.Level() == 100 && st.QueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
