package sim

import (
	"math/rand"
	"testing"
)

// soupTrace runs a randomized mix of every dispatch shape the kernel has —
// timed holds, contended server queues, store grants, mailbox wake-ups and
// plain fn timers — and records (time, value) at every observation point.
// It is the reference workload for fast-path equivalence: the continuation
// fast path must dispatch the identical event sequence the parked path
// does.
func soupTrace(seed int64, inline bool) []Time {
	k := NewKernel()
	k.SetInlineDispatch(inline)
	srv := NewServer(k, "cpu", 2)
	st := NewStore(k, "mem", 3)
	mail := NewChan[int](k, "mail")
	rng := rand.New(rand.NewSource(seed))
	var out []Time

	for i := 0; i < 40; i++ {
		d := Duration(rng.Intn(900)+1) * Microsecond
		start := Duration(rng.Intn(4000)) * Microsecond
		n := rng.Intn(3) + 1
		k.SpawnAt(start, "w", func(p *Proc) {
			srv.Use(p, d)
			out = append(out, p.Now())
			st.Get(p, n)
			p.Wait(d / 2)
			st.Put(n)
			mail.Put(i)
			out = append(out, p.Now())
		})
	}
	k.Spawn("reader", func(p *Proc) {
		for j := 0; j < 40; j++ {
			v, ok := mail.Get(p)
			if !ok {
				return
			}
			out = append(out, p.Now()+Time(v))
		}
	})
	// fn timers interleaved with the process soup.
	for i := 0; i < 20; i++ {
		at := Duration(rng.Intn(6000)) * Microsecond
		k.At(at, func() { out = append(out, k.Now()) })
	}
	// Run in horizon slices so the drain-to-horizon handoff is exercised
	// too, not just the open-ended RunAll path.
	for h := 500 * Microsecond; k.Pending() > 0; h += 500 * Microsecond {
		k.Run(h)
	}
	return out
}

// TestInlineDispatchMatchesParked pins the tentpole contract: with the
// continuation fast path on or off, the dispatch order — and therefore
// every observable simulation value — is bit-identical.
func TestInlineDispatchMatchesParked(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		fast, parked := soupTrace(seed, true), soupTrace(seed, false)
		if len(fast) != len(parked) {
			t.Fatalf("seed %d: trace lengths differ: inline %d vs parked %d", seed, len(fast), len(parked))
		}
		for i := range fast {
			if fast[i] != parked[i] {
				t.Fatalf("seed %d: traces diverge at %d: inline %v vs parked %v", seed, i, fast[i], parked[i])
			}
		}
	}
}

// TestInlineWaitNoSwitch verifies the fast path actually takes effect: an
// undisturbed waiter resolves every Wait in-context, so the kernel records
// inline wakes and only the spawn handoff.
func TestInlineWaitNoSwitch(t *testing.T) {
	k := NewKernel()
	const waits = 1000
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < waits; i++ {
			p.Wait(Microsecond)
		}
	})
	k.RunAll()
	s := k.Stats()
	if s.InlineWakes != waits {
		t.Errorf("InlineWakes = %d, want %d", s.InlineWakes, waits)
	}
	if s.Handoffs != 1 { // the spawn start event only
		t.Errorf("Handoffs = %d, want 1 (spawn only)", s.Handoffs)
	}
	if s.Dispatched != waits+1 {
		t.Errorf("Dispatched = %d, want %d", s.Dispatched, waits+1)
	}
}

// TestKernelStatsCalendar verifies the calendar-queue observability
// counters: events beyond the wheel horizon land in the overflow heap and
// migrate back as the cursor advances.
func TestKernelStatsCalendar(t *testing.T) {
	k := NewKernel()
	const horizon = Time(calBuckets) << calShift // wheel span from time 0
	// Half inside the wheel, half far beyond it.
	for i := 0; i < 8; i++ {
		k.At(Time(i+1)*Millisecond, func() {})
		k.At(horizon+Time(i+1)*Millisecond, func() {})
	}
	s := k.Stats()
	if s.OverflowPushes != 8 || s.OverflowLen != 8 {
		t.Errorf("overflow pushes/len = %d/%d, want 8/8", s.OverflowPushes, s.OverflowLen)
	}
	if s.OverflowPeak != 8 {
		t.Errorf("OverflowPeak = %d, want 8", s.OverflowPeak)
	}
	if s.WheelLen != 8 {
		t.Errorf("WheelLen = %d, want 8", s.WheelLen)
	}
	k.RunAll()
	s = k.Stats()
	if s.Migrations != 8 {
		t.Errorf("Migrations = %d, want 8", s.Migrations)
	}
	if s.OverflowLen != 0 || s.WheelLen != 0 {
		t.Errorf("residual events: overflow %d wheel %d", s.OverflowLen, s.WheelLen)
	}
	if s.Dispatched != 16 {
		t.Errorf("Dispatched = %d, want 16", s.Dispatched)
	}
}

// TestSetInlineDispatchDuringRunPanics: the knob is a construction-time
// choice; flipping it mid-run would tear the dispatch invariants.
func TestSetInlineDispatchDuringRunPanics(t *testing.T) {
	k := NewKernel()
	k.At(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("SetInlineDispatch during Run did not panic")
			}
		}()
		k.SetInlineDispatch(false)
	})
	k.RunAll()
}
