package netw

import (
	"testing"
	"testing/quick"

	"dynlb/internal/sim"
)

func TestPacketsCalculation(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	cases := []struct {
		bytes int64
		want  int
	}{
		{0, 1}, {1, 1}, {8192, 1}, {8193, 2}, {16384, 2}, {100_000, 13},
	}
	for _, c := range cases {
		if got := nw.Packets(c.bytes); got != c.want {
			t.Errorf("Packets(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestLocalDeliveryBypassesWire(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	var elapsed sim.Time
	delivered := false
	k.Spawn("s", func(p *sim.Proc) {
		start := p.Now()
		nw.Send(p, 1, 1, 8192, func() { delivered = true })
		elapsed = p.Now() - start
	})
	k.RunAll()
	if !delivered {
		t.Fatal("local message not delivered")
	}
	if elapsed != 0 {
		t.Errorf("local send took %v, want 0", elapsed)
	}
	if nw.PacketsSent() != 0 {
		t.Errorf("local send put %d packets on wire", nw.PacketsSent())
	}
	if nw.LocalMsgs() != 1 {
		t.Errorf("localMsgs=%d", nw.LocalMsgs())
	}
}

func TestRemoteDeliveryTiming(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	var deliveredAt sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		nw.Send(p, 0, 1, 16384, func() { deliveredAt = k.Now() })
	})
	k.RunAll()
	// 2 packets * 0.4ms wire + 50us latency
	want := sim.FromMillis(0.8) + 50*sim.Microsecond
	if deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestSenderLinkSerializes(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 3, Defaults())
	var done []sim.Time
	for i := 0; i < 2; i++ {
		k.Spawn("s", func(p *sim.Proc) {
			nw.Send(p, 0, 1+0, 8192, func() {})
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	// same outbound link: second send waits for the first (0.4ms each)
	if done[0] != sim.FromMillis(0.4) || done[1] != sim.FromMillis(0.8) {
		t.Errorf("sends completed at %v, want [0.4ms 0.8ms]", done)
	}
}

func TestDistinctLinksParallel(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 3, Defaults())
	var done []sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("s", func(p *sim.Proc) {
			nw.Send(p, i, 2, 8192, func() {})
			done = append(done, p.Now())
		})
	}
	k.RunAll()
	if done[0] != done[1] {
		t.Errorf("sends from distinct PEs completed at %v, want simultaneous", done)
	}
}

func TestSendAsyncDoesNotBlock(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	delivered := false
	var elapsed sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		start := p.Now()
		nw.SendAsync(0, 1, 8192, func() { delivered = true })
		elapsed = p.Now() - start
	})
	k.RunAll()
	if elapsed != 0 {
		t.Errorf("SendAsync blocked for %v", elapsed)
	}
	if !delivered {
		t.Error("async message not delivered")
	}
}

func TestCounters(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	k.Spawn("s", func(p *sim.Proc) {
		nw.Send(p, 0, 1, 20_000, func() {})
		nw.Send(p, 0, 0, 100, func() {})
	})
	k.RunAll()
	if nw.Msgs() != 2 {
		t.Errorf("msgs=%d, want 2", nw.Msgs())
	}
	if nw.PacketsSent() != 3 {
		t.Errorf("packets=%d, want 3", nw.PacketsSent())
	}
	if nw.Bytes() != 20_100 {
		t.Errorf("bytes=%d", nw.Bytes())
	}
}

func TestInvalidPEPanics(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, 2, Defaults())
	defer func() {
		if recover() == nil {
			t.Error("out-of-range PE did not panic")
		}
	}()
	nw.SendAsync(0, 5, 1, func() {})
}

// Property: delivery count equals send count, and packet count matches the
// per-message packet arithmetic.
func TestQuickDeliveryConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		k := sim.NewKernel()
		nw := New(k, 4, Defaults())
		delivered := 0
		var wantPkts int64
		for i, sz := range sizes {
			from, to := i%4, (i+1)%4
			b := int64(sz)
			wantPkts += int64(nw.Packets(b))
			nw.SendAsync(from, to, b, func() { delivered++ })
		}
		k.RunAll()
		return delivered == len(sizes) && nw.PacketsSent() == wantPkts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
