// Package netw models the communication network of the Shared Nothing
// system: messages are disassembled into fixed-size packets (8 KB by
// default, one database page), each occupying the sender's outbound link for
// a transmission time, then delivered after a fixed propagation latency.
//
// The paper charges communication CPU (send / receive / copy instructions,
// Fig. 4) at the processing nodes; that accounting is done by the engine's
// communication manager via the cost helpers here, keeping this package a
// pure wire model. Parameters follow the EDS prototype: the interconnect is
// fast and never the bottleneck in the reproduced experiments — the
// load-relevant cost of communication is the CPU overhead.
package netw

import (
	"fmt"

	"dynlb/internal/sim"
)

// Params configure the wire model.
type Params struct {
	PacketBytes   int          // fixed packet size (message disassembly unit)
	WirePerPacket sim.Duration // link occupancy per packet
	Latency       sim.Duration // propagation delay per message
}

// Defaults returns EDS-like parameters: 8 KB packets at 20 MB/s links
// (0.4 ms per packet) with 50 us propagation latency.
func Defaults() Params {
	return Params{
		PacketBytes:   8 * 1024,
		WirePerPacket: sim.FromMillis(0.4),
		Latency:       50 * sim.Microsecond,
	}
}

// Network connects n PEs with one outbound link server each.
type Network struct {
	k      *sim.Kernel
	links  []*sim.Server
	params Params

	msgs      int64
	packets   int64
	localMsgs int64
	bytes     int64
}

// New creates a network for n PEs.
func New(k *sim.Kernel, n int, p Params) *Network {
	if n < 1 {
		panic(fmt.Sprintf("netw: %d PEs", n))
	}
	if p.PacketBytes < 1 {
		panic("netw: packet size < 1")
	}
	nw := &Network{k: k, params: p}
	for i := 0; i < n; i++ {
		nw.links = append(nw.links, sim.NewServer(k, fmt.Sprintf("link%d", i), 1))
	}
	return nw
}

// Packets returns the number of packets a payload of the given size needs
// (at least 1: control messages occupy one packet).
func (nw *Network) Packets(bytes int64) int {
	if bytes <= 0 {
		return 1
	}
	return int((bytes + int64(nw.params.PacketBytes) - 1) / int64(nw.params.PacketBytes))
}

// Send transmits a message of the given payload size from PE from to PE to,
// blocking the calling process for the sender-side link occupancy, and runs
// deliver (in kernel context) once the message arrives. Messages between
// co-located processes bypass the wire and deliver immediately.
func (nw *Network) Send(p *sim.Proc, from, to int, bytes int64, deliver func()) {
	nw.check(from)
	nw.check(to)
	nw.msgs++
	nw.bytes += bytes
	if from == to {
		nw.localMsgs++
		deliver()
		return
	}
	pkts := nw.Packets(bytes)
	nw.packets += int64(pkts)
	nw.links[from].Use(p, sim.Duration(pkts)*nw.params.WirePerPacket)
	nw.k.After(nw.params.Latency, deliver)
}

// SendFn is Send for run-to-completion light processes (sim.Kernel.SpawnFn):
// the sender-side link occupancy is charged through Server.UseFn, then
// `then` continues the caller at the point where Send would have returned
// (deliver still runs after the propagation latency). Events land at the
// same (time, seq) positions as Send's, so converting a call site is
// dispatch-order-neutral.
func (nw *Network) SendFn(from, to int, bytes int64, deliver, then func()) {
	nw.check(from)
	nw.check(to)
	nw.msgs++
	nw.bytes += bytes
	if from == to {
		nw.localMsgs++
		deliver()
		then()
		return
	}
	pkts := nw.Packets(bytes)
	nw.packets += int64(pkts)
	nw.links[from].UseFn(sim.Duration(pkts)*nw.params.WirePerPacket, func() {
		nw.k.After(nw.params.Latency, deliver)
		then()
	})
}

// SendAsync transmits without blocking the caller: a light process carries
// the message through the sender link. Used for fire-and-forget control
// messages (utilization reports, commit acknowledgements).
func (nw *Network) SendAsync(from, to int, bytes int64, deliver func()) {
	nw.check(from)
	nw.check(to)
	if from == to {
		nw.msgs++
		nw.localMsgs++
		deliver()
		return
	}
	nw.k.SpawnFn(func() {
		nw.SendFn(from, to, bytes, deliver, func() {})
	})
}

func (nw *Network) check(pe int) {
	if pe < 0 || pe >= len(nw.links) {
		panic(fmt.Sprintf("netw: PE %d of %d", pe, len(nw.links)))
	}
}

// N returns the number of PEs.
func (nw *Network) N() int { return len(nw.links) }

// Msgs returns total messages sent (including local ones).
func (nw *Network) Msgs() int64 { return nw.msgs }

// LocalMsgs returns messages that bypassed the wire.
func (nw *Network) LocalMsgs() int64 { return nw.localMsgs }

// PacketsSent returns total packets put on the wire.
func (nw *Network) PacketsSent() int64 { return nw.packets }

// Bytes returns the total payload bytes offered.
func (nw *Network) Bytes() int64 { return nw.bytes }

// LinkUtilization returns the mean utilization over all outbound links.
func (nw *Network) LinkUtilization() float64 {
	var u float64
	for _, l := range nw.links {
		u += l.Utilization()
	}
	return u / float64(len(nw.links))
}
