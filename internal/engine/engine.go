// Package engine assembles the simulated Shared Nothing database system of
// Rahm & Marek (VLDB '95, Section 4): processing elements with CPU servers,
// a buffer manager, a disk subsystem, a lock table, a transaction manager
// (multiprogramming-level admission) and a communication manager over the
// packet network — plus the workload drivers (parallel hash-join queries
// and debit-credit-style OLTP transactions) and the control node that feeds
// the load-balancing strategies of internal/core.
package engine

import (
	"fmt"
	"math/rand"

	"dynlb/internal/buffer"
	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/costmodel"
	"dynlb/internal/disk"
	"dynlb/internal/lock"
	"dynlb/internal/netw"
	"dynlb/internal/sim"
	"dynlb/internal/stats"
)

// PE is one processing element of the Shared Nothing system.
type PE struct {
	id      int
	sys     *System
	cpu     *sim.Server
	disks   *disk.Subsystem
	logDisk *disk.Subsystem
	buf     *buffer.Manager
	locks   *lock.Table
	mpl     *sim.Store

	// cpuSlow > 1 stretches every CPU charge by that factor (fault
	// injection: a straggler PE). 1 is the unmodified fast path.
	cpuSlow float64

	// utilization snapshot for periodic control reports.
	lastReportAt   sim.Time
	lastReportBusy float64
}

// ID returns the PE id.
func (pe *PE) ID() int { return pe.id }

// compute charges instr instructions on this PE's CPU for process p.
func (pe *PE) compute(p *sim.Proc, instr int64) {
	if instr <= 0 {
		return
	}
	pe.cpu.Use(p, pe.stretchCPU(pe.sys.cfg.CPUTime(instr)))
}

// stretchCPU applies the straggler degradation factor to a CPU duration.
// cpuSlow == 1 (the fault-free state) returns d untouched — no float
// multiply, bit-identical.
func (pe *PE) stretchCPU(d sim.Duration) sim.Duration {
	if pe.cpuSlow > 1 {
		return sim.Duration(float64(d) * pe.cpuSlow)
	}
	return d
}

// computeT charges a pre-converted CPU duration (see costT). The inner
// loops batch their loop-invariant instruction counts into durations once
// per run; each charge is then a single uncontended Server.Use, which the
// kernel's continuation fast path executes without a goroutine switch.
//
// The skip sentinel (d < 0, see newCostT) mirrors compute's instr <= 0
// guard exactly: a positive instruction count whose duration rounds to
// zero still passes through the CPU server — a zero-length Use queues
// FCFS like any other — so results match compute bit-for-bit in every
// config corner.
func (pe *PE) computeT(p *sim.Proc, d sim.Duration) {
	if d < 0 {
		return
	}
	pe.cpu.Use(p, pe.stretchCPU(d))
}

// computeTFn is computeT for run-to-completion light processes
// (sim.Kernel.SpawnFn): charge a pre-converted CPU duration, then continue
// with fn. The skip sentinel (d < 0) mirrors computeT exactly, and UseFn
// schedules the identical events Use would, so a light conversion of a
// computeT call site leaves the dispatch order bit-identical.
func (pe *PE) computeTFn(d sim.Duration, fn func()) {
	if d < 0 {
		fn()
		return
	}
	pe.cpu.UseFn(pe.stretchCPU(d), fn)
}

// costT holds the cost-model segments the hot inner loops charge with
// constant instruction counts, pre-converted to simulated durations. Each
// value is CPUTime of exactly the instruction expression the call site used
// to pass, so the event stream — and every simulation result — is
// unchanged; only the per-call float conversion is hoisted out of the
// loops. Variable-count charges (per-tuple batches, message copies) keep
// calling compute.
type costT struct {
	initTxn     sim.Duration // transaction setup
	termTxn     sim.Duration // commit processing
	termTxnHalf sim.Duration // abort cleanup (TermTxn/2)
	io          sim.Duration // CPU overhead of one physical I/O
	sendMsg     sim.Duration // control-message send
	recvMsg     sim.Duration // control-message receive
	oltpIndex   sim.Duration // OLTP non-clustered index traversal (3·ReadTuple + ExtraInstr)
	tupleRW     sim.Duration // one tuple read + update (ReadTuple + WriteTuple)
	scanDescent sim.Duration // resident B+-tree descent (3·ReadTuple)
	ctrlDecide  sim.Duration // control-node placement computation
}

func newCostT(cfg *config.Config) costT {
	// A non-positive instruction count means "skip the CPU entirely"
	// (compute's guard); encode it as -1 so computeT can distinguish it
	// from a positive count that rounds to a zero duration, which must
	// still occupy the FCFS server.
	conv := func(instr int64) sim.Duration {
		if instr <= 0 {
			return -1
		}
		return cfg.CPUTime(instr)
	}
	return costT{
		initTxn:     conv(cfg.Costs.InitTxn),
		termTxn:     conv(cfg.Costs.TermTxn),
		termTxnHalf: conv(cfg.Costs.TermTxn / 2),
		io:          conv(cfg.Costs.IO),
		sendMsg:     conv(cfg.Costs.SendMsg),
		recvMsg:     conv(cfg.Costs.RecvMsg),
		oltpIndex:   conv(3*cfg.Costs.ReadTuple + cfg.OLTP.ExtraInstr),
		tupleRW:     conv(cfg.Costs.ReadTuple + cfg.Costs.WriteTuple),
		scanDescent: conv(3 * cfg.Costs.ReadTuple),
		ctrlDecide:  conv(2000),
	}
}

// cpuSince returns the CPU utilization since the last report and rolls the
// snapshot forward.
func (pe *PE) cpuSince() float64 {
	now := pe.sys.k.Now()
	u := pe.cpu.UtilizationSince(pe.lastReportAt, pe.lastReportBusy)
	pe.lastReportAt = now
	pe.lastReportBusy = pe.cpu.BusyIntegral()
	return u
}

// System is one configured simulation instance.
type System struct {
	cfg      config.Config
	k        *sim.Kernel
	rng      *rand.Rand
	net      *netw.Network
	pes      []*PE
	ctrl     *core.ControlNode
	ctrlPE   int
	strategy core.Strategy
	detector *lock.Detector
	model    *costmodel.Model
	qinfo    core.QueryInfo

	ct costT // pre-converted constant cost segments of the hot loops

	// profileConst caches cfg.Profile.IsConstant(): the arrival loops and
	// initWeights branch on it so a constant profile keeps the exact
	// steady-state code path (and its bit-identical event stream).
	profileConst bool

	// faults is the fault-injection state, nil when Config.Faults is empty
	// so fault-free runs take the original code path (see faults.go).
	faults *faultState

	nextSpace int64
	nextTxn   lock.TxnID
	nextQuery int64

	// memBudget is the control node's query-atomic memory admission: each
	// join debits its aggregate working-space demand before starting and
	// credits it on completion (nil when disabled). This is the FCFS
	// "memory queue" of Section 4 lifted to query granularity, which keeps
	// partially-placed queries from deadlocking each other.
	memBudget *sim.Store

	// Measurement state (reset at warm-up end).
	measuring    bool
	measureFrom  sim.Time
	cpuBusy0     []float64
	diskBusy0    []float64
	memUsed0     []float64
	tempIO0      int64
	joinRT       *stats.Sample
	oltpRT       *stats.Sample
	scanRT       *stats.Sample
	degrees      *stats.Sample
	memWaitMS    *stats.Sample
	tempIOPages  int64
	joinsStarted int64
	oltpStarted  int64
	aborts       int64

	// win collects fixed-width metric windows (nil unless
	// cfg.MetricsWindow > 0; created at warm-up end).
	win *windowState
}

// New builds a system for cfg with the given load-balancing strategy.
func New(cfg config.Config, strategy core.Strategy) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("engine: nil strategy")
	}
	k := sim.NewKernel()
	s := &System{
		cfg:      cfg,
		k:        k,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		net:      netw.New(k, cfg.NPE, cfg.Net),
		ctrl:     core.NewControlNode(cfg.NPE, cfg.CtrlSmoothing, cfg.AdaptiveBump),
		ctrlPE:   0,
		strategy: strategy,
		detector: lock.NewDetector(k, sim.Second),
		model:    costmodel.New(cfg),
		ct:       newCostT(&cfg),

		profileConst: cfg.Profile.IsConstant(),

		joinRT:    stats.NewSample("join-rt-ms"),
		oltpRT:    stats.NewSample("oltp-rt-ms"),
		scanRT:    stats.NewSample("scan-rt-ms"),
		degrees:   stats.NewSample("join-degree"),
		memWaitMS: stats.NewSample("mem-wait-ms"),
	}
	s.qinfo = core.QueryInfo{
		InnerPages: cfg.AScanPages(),
		Fudge:      cfg.FudgeFactor,
		PsuOpt:     s.model.PsuOpt(),
		PsuNoIO:    s.model.PsuNoIO(),
	}
	for i := 0; i < cfg.NPE; i++ {
		pe := &PE{
			id:      i,
			sys:     s,
			cpu:     sim.NewServer(k, fmt.Sprintf("pe%d/cpu", i), cfg.CPUsPerPE),
			disks:   disk.New(k, fmt.Sprintf("pe%d", i), cfg.DisksPerPE, cfg.Disk),
			mpl:     sim.NewStore(k, fmt.Sprintf("pe%d/mpl", i), cfg.MPL),
			locks:   lock.NewTable(k, fmt.Sprintf("pe%d/locks", i)),
			cpuSlow: 1,
		}
		logParams := cfg.Disk
		logParams.CacheSize = 0
		logParams.Prefetch = 1
		logParams.AvgAccess = sim.Millisecond // sequential append, no seek
		pe.logDisk = disk.New(k, fmt.Sprintf("pe%d/log", i), 1, logParams)
		pe.buf = buffer.NewManager(k, fmt.Sprintf("pe%d/buf", i), cfg.BufferPages, buffer.DiskHooks{
			ReadPage: func(p *sim.Proc, pg disk.PageID, seq bool) {
				pe.computeT(p, s.ct.io)
				pe.disks.Read(p, dataDisk(pe, pg), pg, seq)
			},
			WriteAsync: func(pg disk.PageID) {
				pe.disks.WriteAsync(dataDisk(pe, pg), pg)
			},
		})
		s.detector.Register(pe.locks)
		s.pes = append(s.pes, pe)
	}
	// Every PE starts with a full buffer: seed the control view so early
	// decisions see real capacities instead of zeros.
	for i := range s.pes {
		s.ctrl.Report(i, 0, cfg.BufferPages)
	}
	if cfg.MemAdmitFrac > 0 {
		budget := int(cfg.MemAdmitFrac * float64(cfg.NPE*cfg.BufferPages))
		s.memBudget = sim.NewStore(k, "mem-admission", budget)
	}
	if !cfg.Faults.IsEmpty() {
		s.faults = newFaultState(s)
	}
	return s, nil
}

// dataDisk spreads database pages of a space across the PE's disks
// (space ids may be negative).
func dataDisk(pe *PE, pg disk.PageID) int {
	n := int64(pe.disks.NDisks())
	d := ((pg.Space+pg.Page)%n + n) % n
	return int(d)
}

// MustNew is New panicking on error (tests, benches).
func MustNew(cfg config.Config, strategy core.Strategy) *System {
	s, err := New(cfg, strategy)
	if err != nil {
		panic(err)
	}
	return s
}

// Kernel exposes the simulation kernel (tests).
func (s *System) Kernel() *sim.Kernel { return s.k }

// Config returns the system configuration.
func (s *System) Config() config.Config { return s.cfg }

// QueryInfo returns the per-query planning constants (psu-opt etc.).
func (s *System) QueryInfo() core.QueryInfo { return s.qinfo }

// Control returns the control node (tests, ablations).
func (s *System) Control() *core.ControlNode { return s.ctrl }

// newSpace allocates a fresh storage-space id.
func (s *System) newSpace() int64 {
	s.nextSpace++
	return s.nextSpace
}

// newTxnID allocates a transaction id (ascending: larger = younger).
func (s *System) newTxnID() lock.TxnID {
	s.nextTxn++
	return s.nextTxn
}

// pe returns the PE with the given id.
func (s *System) pe(id int) *PE { return s.pes[id] }

// beginMeasurement zeroes all windowed statistics at warm-up end.
func (s *System) beginMeasurement() {
	s.measuring = true
	s.measureFrom = s.k.Now()
	s.cpuBusy0 = make([]float64, len(s.pes))
	s.diskBusy0 = make([]float64, len(s.pes))
	s.memUsed0 = make([]float64, len(s.pes))
	for i, pe := range s.pes {
		s.cpuBusy0[i] = pe.cpu.BusyIntegral()
		s.diskBusy0[i] = pe.disks.BusyIntegral()
		s.memUsed0[i] = pe.buf.UsedIntegral()
	}
	s.tempIO0 = s.tempIOPages
	s.joinRT = stats.NewSample("join-rt-ms")
	s.oltpRT = stats.NewSample("oltp-rt-ms")
	s.scanRT = stats.NewSample("scan-rt-ms")
	s.degrees = stats.NewSample("join-degree")
	s.memWaitMS = stats.NewSample("mem-wait-ms")
	s.joinsStarted = 0
	s.oltpStarted = 0
	if s.cfg.MetricsWindow > 0 {
		s.win = newWindowState(s, s.cfg.MetricsWindow)
	}
}
