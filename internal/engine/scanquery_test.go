package engine

import (
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

func scanClassCfg(class config.ScanClass) config.Config {
	cfg := config.Default()
	cfg.NPE = 10
	cfg.JoinQPSPerPE = 0.02 // keep a trickle of joins alongside
	cfg.ScanClasses = []config.ScanClass{class}
	cfg.Warmup = 2 * sim.Second
	cfg.MeasureTime = 10 * sim.Second
	return cfg
}

func TestClusteredScanClassCompletes(t *testing.T) {
	cfg := scanClassCfg(config.ScanClass{
		Name: "sel-b", QPSPerPE: 0.1, OnB: true, Selectivity: 0.005, Clustered: true,
	})
	res := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	if res.ScanRT.N == 0 {
		t.Fatal("no scan queries completed")
	}
	if res.ScanRT.MeanMS <= 0 || res.ScanRT.MeanMS > 5000 {
		t.Fatalf("scan query RT %.1fms implausible", res.ScanRT.MeanMS)
	}
	if res.JoinsDone == 0 {
		t.Error("joins starved by scan class")
	}
}

func TestNonClusteredScanSlowerThanClustered(t *testing.T) {
	run := func(clustered bool) Results {
		cfg := scanClassCfg(config.ScanClass{
			Name: "x", QPSPerPE: 0.05, OnB: false, Selectivity: 0.002, Clustered: clustered,
		})
		cfg.JoinQPSPerPE = 0.001
		return MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	}
	cl := run(true)
	ncl := run(false)
	if cl.ScanRT.N == 0 || ncl.ScanRT.N == 0 {
		t.Fatalf("missing completions: clustered n=%d non-clustered n=%d", cl.ScanRT.N, ncl.ScanRT.N)
	}
	// Random per-tuple page accesses must cost more than a sequential
	// sweep of the matching pages.
	if ncl.ScanRT.MeanMS <= cl.ScanRT.MeanMS {
		t.Errorf("non-clustered scan (%.0fms) not slower than clustered (%.0fms)",
			ncl.ScanRT.MeanMS, cl.ScanRT.MeanMS)
	}
}

func TestLargeRelationScanClass(t *testing.T) {
	// Selectivity 0.1 with the clustered path sweeps 10% of A: about 625
	// pages per A node; sequential I/O dominates the response time.
	cfg := scanClassCfg(config.ScanClass{
		Name: "tenth-a", QPSPerPE: 0.05, OnB: false, Selectivity: 0.1, Clustered: true,
	})
	cfg.JoinQPSPerPE = 0.001
	cfg.MeasureTime = 25 * sim.Second
	res := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	if res.ScanRT.N == 0 {
		t.Fatal("no large scans completed")
	}
	// Reading ~625 pages sequentially costs seconds, not milliseconds.
	if res.ScanRT.MeanMS < 1000 {
		t.Errorf("large relation scan RT %.0fms suspiciously fast", res.ScanRT.MeanMS)
	}
}

func TestScanClassValidation(t *testing.T) {
	cfg := config.Default()
	cfg.ScanClasses = []config.ScanClass{{Name: "bad", QPSPerPE: 0, Selectivity: 0.1}}
	if err := cfg.Validate(); err == nil {
		t.Error("zero-rate scan class accepted")
	}
	cfg.ScanClasses = []config.ScanClass{{Name: "bad", QPSPerPE: 1, Selectivity: 1.5}}
	if err := cfg.Validate(); err == nil {
		t.Error("selectivity > 1 accepted")
	}
}
