package engine

import (
	"math"
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

func TestInitWeightsNormalized(t *testing.T) {
	cfg := config.Default()
	cfg.RedistributionSkew = 1.0
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	q := &joinQuery{s: s}
	q.joinMail = make([]*sim.Chan[jmsg], 8)
	q.initWeights(8)
	if q.weights == nil {
		t.Fatal("weights not initialized")
	}
	var sum float64
	for i := 1; i < len(q.weights); i++ {
		if q.weights[i] > q.weights[i-1] {
			t.Errorf("weights not decreasing: %v", q.weights)
		}
	}
	for _, w := range q.weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	// Zipf-1 over 8: first share is about 2.9x the uniform share.
	if q.weights[0] < 2*q.weights[7] {
		t.Errorf("skew too weak: first=%v last=%v", q.weights[0], q.weights[7])
	}
}

func TestNoSkewMeansNilWeights(t *testing.T) {
	cfg := config.Default()
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	q := &joinQuery{s: s}
	q.initWeights(8)
	if q.weights != nil {
		t.Error("weights allocated without skew")
	}
}

func TestExpectedShareSkewed(t *testing.T) {
	cfg := config.Default()
	cfg.RedistributionSkew = 1.0
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	q := &joinQuery{s: s}
	q.joinMail = make([]*sim.Chan[jmsg], 4)
	q.initWeights(4)
	first := q.expectedShare(1000, 0)
	last := q.expectedShare(1000, 3)
	if first <= last {
		t.Errorf("skewed shares: first=%d last=%d", first, last)
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += q.expectedShare(1000, i)
	}
	if total < 990 || total > 1000 {
		t.Errorf("shares sum to %d of 1000", total)
	}
}

func TestSkewedRunCompletesAndCostsMore(t *testing.T) {
	run := func(skew float64) Results {
		cfg := config.Default()
		cfg.NPE = 20
		cfg.JoinQPSPerPE = 0.15
		cfg.RedistributionSkew = skew
		cfg.Warmup = 2 * sim.Second
		cfg.MeasureTime = 12 * sim.Second
		return MustNew(cfg, core.MustByName("pmu-cpu+LUM")).Run()
	}
	uniform := run(0)
	skewed := run(1.0)
	if skewed.JoinsDone == 0 {
		t.Fatal("skewed run completed no joins")
	}
	// Skew concentrates work on few join processes: response times must
	// not improve, and typically worsen markedly.
	if skewed.JoinRT.MeanMS < uniform.JoinRT.MeanMS*0.9 {
		t.Errorf("skewed run faster than uniform: %.0f vs %.0f ms",
			skewed.JoinRT.MeanMS, uniform.JoinRT.MeanMS)
	}
}

func TestSkewValidation(t *testing.T) {
	cfg := config.Default()
	cfg.RedistributionSkew = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative skew accepted")
	}
	cfg.RedistributionSkew = 2.5
	if err := cfg.Validate(); err == nil {
		t.Error("excessive skew accepted")
	}
}
