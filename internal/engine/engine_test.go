package engine

import (
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// quickCfg returns a small, fast configuration for engine tests.
func quickCfg() config.Config {
	cfg := config.Default()
	cfg.NPE = 10
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = 2 * sim.Second
	cfg.MeasureTime = 10 * sim.Second
	return cfg
}

func TestSystemSmokeMultiUser(t *testing.T) {
	s := MustNew(quickCfg(), core.MustByName("pmu-cpu+LUM"))
	res := s.Run()
	if res.JoinsDone == 0 {
		t.Fatal("no joins completed")
	}
	if res.JoinRT.MeanMS <= 0 {
		t.Fatalf("join response time %v", res.JoinRT.MeanMS)
	}
	if res.CPUUtil <= 0 || res.CPUUtil > 1 {
		t.Fatalf("CPU utilization %v", res.CPUUtil)
	}
	if res.AvgJoinDegree < 1 {
		t.Fatalf("avg degree %v", res.AvgJoinDegree)
	}
}

func TestSystemSingleUser(t *testing.T) {
	cfg := quickCfg()
	cfg.JoinQPSPerPE = 0 // closed loop, one query at a time
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	res := s.Run()
	if res.JoinsDone == 0 {
		t.Fatal("no joins completed in single-user mode")
	}
	// Single-user: no concurrent queries, so no memory-queue waits.
	if res.MeanMemWaitMS > 1 {
		t.Errorf("single-user memory wait %vms", res.MeanMemWaitMS)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() Results {
		return MustNew(quickCfg(), core.MustByName("OPT-IO-CPU")).Run()
	}
	a, b := run(), run()
	if a.JoinsDone != b.JoinsDone || a.JoinRT.MeanMS != b.JoinRT.MeanMS ||
		a.TempIOPages != b.TempIOPages || a.CPUUtil != b.CPUUtil {
		t.Fatalf("runs diverged:\n%v\n%v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := quickCfg()
	a := MustNew(cfg, core.MustByName("pmu-cpu+LUM")).Run()
	cfg.Seed = 99
	b := MustNew(cfg, core.MustByName("pmu-cpu+LUM")).Run()
	if a.JoinRT.MeanMS == b.JoinRT.MeanMS && a.JoinsDone == b.JoinsDone {
		t.Fatal("different seeds produced identical results; RNG not wired")
	}
}

func TestAllStrategiesComplete(t *testing.T) {
	for _, name := range core.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := quickCfg()
			cfg.MeasureTime = 6 * sim.Second
			res := MustNew(cfg, core.MustByName(name)).Run()
			if res.JoinsDone == 0 {
				t.Fatalf("%s: no joins completed", name)
			}
		})
	}
}

func TestHeterogeneousWorkloadRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.DisksPerPE = 5
	cfg.OLTP.Placement = config.OLTPOnANode
	cfg.OLTP.TPSPerNode = 50
	cfg.JoinQPSPerPE = 0.075
	s := MustNew(cfg, core.MustByName("OPT-IO-CPU"))
	res := s.Run()
	if res.OLTPDone == 0 {
		t.Fatal("no OLTP transactions completed")
	}
	if res.JoinsDone == 0 {
		t.Fatal("no joins completed alongside OLTP")
	}
	if res.OLTPRT.MeanMS <= 0 || res.OLTPRT.MeanMS > 1000 {
		t.Fatalf("OLTP response time %vms implausible", res.OLTPRT.MeanMS)
	}
}

func TestMemoryPressureCausesTempIO(t *testing.T) {
	// Tiny memory: hash tables cannot fit, so temporary I/O must appear.
	cfg := quickCfg()
	cfg.BufferPages = 8
	cfg.MeasureTime = 6 * sim.Second
	res := MustNew(cfg, core.MustByName("pmu-cpu+LUM")).Run()
	if res.TempIOPages == 0 {
		t.Fatal("no temporary I/O despite 8-page buffers")
	}
}

func TestAmpleMemoryAvoidsTempIO(t *testing.T) {
	cfg := quickCfg()
	cfg.BufferPages = 400
	cfg.MeasureTime = 6 * sim.Second
	res := MustNew(cfg, core.MustByName("MIN-IO")).Run()
	if res.TempIOPages != 0 {
		t.Fatalf("temporary I/O %d despite ample memory and MIN-IO", res.TempIOPages)
	}
}

func TestControlNodeReceivesReports(t *testing.T) {
	cfg := quickCfg()
	cfg.MeasureTime = 5 * sim.Second
	s := MustNew(cfg, core.MustByName("pmu-cpu+LUM"))
	s.Run()
	// 10 PEs reporting every 500ms for ~7s simulated.
	if s.Control().Reports() < int64(cfg.NPE)*5 {
		t.Fatalf("only %d reports received", s.Control().Reports())
	}
}

func TestValidationErrors(t *testing.T) {
	cfg := quickCfg()
	cfg.NPE = 1
	if _, err := New(cfg, core.MustByName("MIN-IO")); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := New(quickCfg(), nil); err == nil {
		t.Error("nil strategy accepted")
	}
}

func TestNoLeakedProcessesBlockedForever(t *testing.T) {
	cfg := quickCfg()
	cfg.MeasureTime = 5 * sim.Second
	s := MustNew(cfg, core.MustByName("pmu-cpu+LUM"))
	s.Run()
	// Arrival drivers and reporters stay alive by design; anything beyond
	// a small bound suggests stuck queries. At most: drivers (2) +
	// reporters (NPE) + detector + in-flight queries (~MPL*NPE worst).
	if got := s.Kernel().Live(); got > 200 {
		t.Fatalf("%d live processes after run; queries leaking?", got)
	}
}
