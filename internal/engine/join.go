package engine

import (
	"fmt"
	"math"

	"dynlb/internal/core"
	"dynlb/internal/lock"
	"dynlb/internal/pphj"
	"dynlb/internal/sim"
)

// Space ids 1 and 2 are reserved for the A and B relations (their lock
// keys); dynamically allocated spaces start above reservedSpaces.
const (
	spaceRelA      = -1
	spaceRelB      = -2
	spaceOLTPBase  = -1000 // acctSpace = spaceOLTPBase - 2*pe, leaf = -1
	spaceIndexBase = -4000 // index descent pages of relation fragments
)

// joinQuery carries the runtime state of one parallel hash-join query.
type joinQuery struct {
	s       *System
	id      int64
	txn     lock.TxnID
	coordPE int
	arrival sim.Time
	dec     core.Decision

	aPEs, bPEs []int
	joinMail   []*sim.Chan[jmsg]
	coordMail  *sim.Chan[cmsg]

	// weights are the redistribution shares of the join processes (nil =
	// uniform). With RedistributionSkew > 0 process i receives a share
	// proportional to 1/(i+1)^skew — the partitioning skew the paper's
	// outlook discusses.
	weights []float64
}

// initWeights fills q.weights for a skewed configuration. Under a
// non-constant load profile the skew is sampled at the query's placement
// instant (profile time runs from the measurement start), so drifting or
// flash-crowd skew applies to queries planned inside the hot interval.
func (q *joinQuery) initWeights(deg int) {
	z := q.s.cfg.RedistributionSkew
	if !q.s.profileConst {
		z = q.s.cfg.Profile.SkewAt(q.s.k.Now()-q.s.cfg.Warmup, z)
	}
	if z == 0 {
		return
	}
	q.weights = make([]float64, deg)
	var sum float64
	for i := range q.weights {
		q.weights[i] = 1 / math.Pow(float64(i+1), z)
		sum += q.weights[i]
	}
	for i := range q.weights {
		q.weights[i] /= sum
	}
}

// expectedShare returns join process idx's expected share of total tuples.
func (q *joinQuery) expectedShare(total int64, idx int) int64 {
	if q.weights == nil {
		return share(total, len(q.joinMail), idx)
	}
	return int64(q.weights[idx] * float64(total))
}

// runJoinQuery executes one two-way join query in the calling process (the
// coordinator on coordPE) and returns its response time. The flow follows
// Sections 2 and 4: decision round trip, parallel A scans redistributing
// into the join processes (building), parallel B scans (probing), deferred
// partition joins, result merge at the coordinator, read-only two-phase
// commit with a single round.
//
// Under fault injection each attempt runs the same flow; a participant
// crash is detected at the phase checkpoints inside joinAttempt, the
// attempt aborts (locks and the placement reservation release) and the
// query is resubmitted after capped exponential backoff, re-entering the
// coordinator placement on the next live PE. Without a fault plan the
// single attempt is the original code path.
func (s *System) runJoinQuery(p *sim.Proc, coordPE int, arrival sim.Time) sim.Duration {
	if s.faults == nil {
		rt, _ := s.joinAttempt(p, coordPE, arrival)
		return rt
	}
	for attempt := 0; ; attempt++ {
		if rt, ok := s.joinAttempt(p, s.faults.liveHost(coordPE), arrival); ok {
			return rt
		}
		s.faults.noteAbort()
		p.Wait(retryBackoff(attempt))
		s.faults.noteRetry()
	}
}

// joinAttempt runs one attempt of a join query on the given (live)
// coordinator PE. It reports ok=false when a participant failure aborted
// the attempt after teardown; the caller retries.
func (s *System) joinAttempt(p *sim.Proc, coordPE int, arrival sim.Time) (sim.Duration, bool) {
	attemptStart := s.k.Now()
	pe := s.pe(coordPE)
	pe.mpl.Get(p, 1)
	defer pe.mpl.Put(1)

	s.nextQuery++
	q := &joinQuery{
		s:       s,
		id:      s.nextQuery,
		txn:     s.newTxnID(),
		coordPE: coordPE,
		arrival: arrival,
		aPEs:    s.cfg.ANodes(),
		bPEs:    s.cfg.BNodes(),
	}
	if s.faults != nil {
		// Fragments of a crashed PE are scanned at its chained-declustering
		// buddy (the next live PE), so placements avoiding the dead node
		// complete during the outage.
		q.aPEs = s.faults.liveHosts(q.aPEs)
		q.bPEs = s.faults.liveHosts(q.bPEs)
	}
	q.coordMail = sim.NewChan[cmsg](s.k, fmt.Sprintf("q%d/coord", q.id))

	pe.computeT(p, s.ct.initTxn)

	q.dec = s.requestDecision(p, coordPE)
	deg := q.dec.Degree()
	if s.measuring {
		s.joinsStarted++
		s.degrees.Add(float64(deg))
	}

	// Query-atomic memory admission: the paper's "a join query is only
	// started if its minimal space requirement is available" enforced at
	// query granularity — a query enters only when the *minimum* working
	// space of all its join processes fits the admission budget. Without
	// this, queries whose subjoins sit at their minimum on one node while
	// waiting on another can deadlock each other under extreme memory
	// scarcity (e.g. the Fig. 7 configuration).
	if s.memBudget != nil {
		perProc := clampMinSpace(
			pphj.NumPartitions(pagesFor(share(s.cfg.AScanTuples(), deg, 0), s.cfg.Blocking), s.cfg.FudgeFactor),
			s.cfg.BufferPages)
		demand := deg * perProc
		if demand > s.memBudget.Cap() {
			demand = s.memBudget.Cap()
		}
		memWaitStart := s.k.Now()
		s.memBudget.Get(p, demand)
		defer s.memBudget.Put(demand)
		if s.measuring {
			s.memWaitMS.Add((s.k.Now() - memWaitStart).Milliseconds())
		}
	}

	// Start the join processes, then the A scans (building phase).
	q.joinMail = make([]*sim.Chan[jmsg], deg)
	q.initWeights(deg)
	for i := 0; i < deg; i++ {
		q.joinMail[i] = sim.NewChan[jmsg](s.k, fmt.Sprintf("q%d/join%d", q.id, i))
		jpe := s.pe(q.dec.JoinPEs[i])
		s.sendCtl(p, coordPE, jpe.id, func() {
			s.k.Spawn(fmt.Sprintf("q%d/joinproc%d", q.id, i), func(jp *sim.Proc) {
				s.runJoinProc(jp, q, jpe, i)
			})
		})
	}
	for i, ape := range q.aPEs {
		s.sendCtl(p, coordPE, ape, func() {
			s.k.Spawn(fmt.Sprintf("q%d/scanA%d", q.id, i), func(sp *sim.Proc) {
				s.runScan(sp, q, s.pe(ape), true, i)
			})
		})
	}

	// Building phase: collect scan completions, then signal end-of-build
	// to the join processes and wait for their reports.
	for done := 0; done < len(q.aPEs); {
		m, _ := q.coordMail.Get(p)
		switch m.kind {
		case cmsgScanADone:
			s.recvCtlCPU(p, coordPE)
			done++
		case cmsgResult:
			s.recvDataCPU(p, coordPE, m.tuples)
		default:
			panic(fmt.Sprintf("engine: q%d unexpected %v during A scans", q.id, m.kind))
		}
	}
	q.broadcastJoin(p, jmsgAEOF)
	for done := 0; done < deg; {
		m, _ := q.coordMail.Get(p)
		switch m.kind {
		case cmsgBuildDone:
			s.recvCtlCPU(p, coordPE)
			done++
		case cmsgResult:
			s.recvDataCPU(p, coordPE, m.tuples)
		default:
			panic(fmt.Sprintf("engine: q%d unexpected %v during build", q.id, m.kind))
		}
	}
	// Fault checkpoint: a participant crashed during the building phase —
	// its hash-table partitions are lost, so abort before probing. The join
	// processes wait in their probe loops and must be told to stop.
	if s.faults != nil && q.anyFailedSince(attemptStart) {
		s.abortJoinAttempt(p, q, true)
		return 0, false
	}

	// Probing phase: start the B scans.
	for i, bpe := range q.bPEs {
		s.sendCtl(p, coordPE, bpe, func() {
			s.k.Spawn(fmt.Sprintf("q%d/scanB%d", q.id, i), func(sp *sim.Proc) {
				s.runScan(sp, q, s.pe(bpe), false, i)
			})
		})
	}
	for done := 0; done < len(q.bPEs); {
		m, _ := q.coordMail.Get(p)
		switch m.kind {
		case cmsgScanBDone:
			s.recvCtlCPU(p, coordPE)
			done++
		case cmsgResult:
			s.recvDataCPU(p, coordPE, m.tuples)
		default:
			panic(fmt.Sprintf("engine: q%d unexpected %v during B scans", q.id, m.kind))
		}
	}
	q.broadcastJoin(p, jmsgBEOF)
	for done := 0; done < deg; {
		m, _ := q.coordMail.Get(p)
		switch m.kind {
		case cmsgResult:
			s.recvDataCPU(p, coordPE, m.tuples)
		case cmsgJoinDone:
			s.recvCtlCPU(p, coordPE)
			done++
		default:
			panic(fmt.Sprintf("engine: q%d unexpected %v during probe", q.id, m.kind))
		}
	}
	// Fault checkpoint: a participant crashed during probing or the
	// deferred joins — results are incomplete, abort. The join processes
	// have already terminated, so only locks and the reservation release.
	if s.faults != nil && q.anyFailedSince(attemptStart) {
		s.abortJoinAttempt(p, q, false)
		return 0, false
	}

	// Read-only optimization: one commit round releases the read locks.
	q.releaseRound(p)
	pe.computeT(p, s.ct.termTxn)

	// Return the placement's reservation to the control node's ledger.
	q.releaseDecision()

	rt := s.k.Now() - arrival
	if s.measuring {
		s.joinRT.Add(rt.Milliseconds())
		if s.win != nil {
			s.win.addRT(rt.Milliseconds())
		}
	}
	return rt, true
}

// anyFailedSince reports whether any participant of the attempt — the
// coordinator, a join process host, or a scan host — has failed since the
// attempt started.
func (q *joinQuery) anyFailedSince(start sim.Time) bool {
	fs := q.s.faults
	if fs.failedSince(q.coordPE, start) {
		return true
	}
	for _, pe := range q.dec.JoinPEs {
		if fs.failedSince(pe, start) {
			return true
		}
	}
	for _, pe := range q.aPEs {
		if fs.failedSince(pe, start) {
			return true
		}
	}
	for _, pe := range q.bPEs {
		if fs.failedSince(pe, start) {
			return true
		}
	}
	return false
}

// releaseRound sends the single commit/abort round to every scan host: each
// participant releases the query's read locks and acks. The participant
// side only charges CPU and wire holds, so it runs as a light process.
func (q *joinQuery) releaseRound(p *sim.Proc) {
	s := q.s
	participants := 0
	releaseOne := func(target int) {
		participants++
		s.sendCtl(p, q.coordPE, target, func() {
			s.k.SpawnFn(func() {
				s.recvCtlCPUFn(target, func() {
					s.pe(target).locks.ReleaseAll(q.txn)
					s.sendCtlFn(target, q.coordPE, func() {
						q.coordMail.Put(cmsg{kind: cmsgAck, from: target})
					}, nopThen)
				})
			})
		})
	}
	for _, ape := range q.aPEs {
		releaseOne(ape)
	}
	for _, bpe := range q.bPEs {
		releaseOne(bpe)
	}
	for acks := 0; acks < participants; {
		m, _ := q.coordMail.Get(p)
		if m.kind != cmsgAck {
			panic(fmt.Sprintf("engine: q%d unexpected %v during commit", q.id, m.kind))
		}
		s.recvCtlCPU(p, q.coordPE)
		acks++
	}
}

// releaseDecision returns the placement's reservation to the control
// node's ledger (asynchronously; the coordinator does not wait).
func (q *joinQuery) releaseDecision() {
	s := q.s
	dec := q.dec
	s.sendCtlAsync(q.coordPE, s.ctrlPE, func() {
		s.k.SpawnFn(func() {
			s.recvCtlCPUFn(s.ctrlPE, func() {
				s.ctrl.Release(dec)
			})
		})
	})
}

// abortJoinAttempt tears a failed attempt down: the join processes are told
// to stop (stopProcs — needed only while they still wait in their probe
// loops), the read locks release at every scan host, abort cleanup is
// charged at the coordinator, and the placement reservation returns to the
// control node.
func (s *System) abortJoinAttempt(p *sim.Proc, q *joinQuery, stopProcs bool) {
	if stopProcs {
		q.broadcastJoin(p, jmsgStop)
	}
	q.releaseRound(p)
	s.pe(q.coordPE).computeT(p, s.ct.termTxnHalf)
	q.releaseDecision()
}

// scanSpacePages returns a scan subquery's working-space request:
// input/prefetch buffers plus redistribution output buffering, scaled down
// on small buffers. Scans take what is available without blocking and give
// frames back under pressure (they degrade to smaller buffers, not to
// waiting).
func scanSpacePages(bufferPages int) int {
	pages := bufferPages / 8
	if pages > 6 {
		pages = 6
	}
	if pages < 1 {
		pages = 1
	}
	return pages
}

// runScan executes one scan subquery: a clustered-index selection over the
// local fragment whose output is redistributed among the join processes.
// The page loop charges its loop-invariant segments through pre-converted
// costT durations (the per-page batch of tuple costs stays a compute call:
// its count varies on the last page).
func (s *System) runScan(p *sim.Proc, q *joinQuery, pe *PE, inner bool, fragIdx int) {
	start := s.k.Now()
	done := cmsgScanBDone
	if inner {
		done = cmsgScanADone
	}
	if s.faults != nil && !s.faults.hostUp(pe.id) {
		// The host crashed before the start message arrived. The failure
		// detector synthesizes the completion report the coordinator is
		// counting; the coordinator aborts at its next checkpoint.
		q.coordMail.Put(cmsg{kind: done, from: pe.id})
		return
	}
	s.recvCtlCPU(p, pe.id) // start message
	c := &s.cfg
	ct := &s.ct

	space := pe.buf.NewSpace(fmt.Sprintf("q%d/scan%d", q.id, pe.id), bufferQueryPriority, 0)
	space.AcquireBestEffort(p, scanSpacePages(c.BufferPages))
	space.SetStealHandler(func(need int) int {
		// Scan buffers shrink to one page under memory pressure.
		give := space.Pages() - 1
		if give > need {
			give = need
		}
		if give <= 0 {
			return 0
		}
		space.Release(give)
		return give
	})
	defer space.Close()

	relSpace := int64(spaceRelA)
	total, nodes := c.ATuples, len(q.aPEs)
	if !inner {
		relSpace = spaceRelB
		total, nodes = c.BTuples, len(q.bPEs)
	}
	// Long read lock on the fragment (released by the commit round).
	if err := pe.locks.Lock(p, q.txn, lock.Key{Space: relSpace, Item: 0}, lock.Shared); err != nil {
		panic("engine: scan read lock aborted") // queries never deadlock: single S lock
	}

	match := share(selTuples(total, c.ScanSelectivity), nodes, fragIdx)

	// Index descent: root is memory-resident, inner levels come from the
	// disk cache most of the time.
	for lvl := int64(0); lvl < 2; lvl++ {
		pg := pageID(spaceIndexBase-int64(pe.id), lvl)
		if !pe.disks.Read(p, dataDiskFor(pe, lvl), pg, false) {
			pe.computeT(p, ct.io)
		}
	}

	// Read matching pages and redistribute by hash partitioning: one
	// output buffer per join process, flushed when a packet fills and at
	// scan end. With a high degree of parallelism most messages carry only
	// partially filled packets — the redistribution overhead that grows
	// with the degree of parallelism (Section 5.2).
	deg := q.dec.Degree()
	kind := jmsgProbe
	if inner {
		kind = jmsgBuild
	}
	tpp := c.TuplesPerPacket()
	bufs := make([]int64, deg)
	sendBuf := func(idx int) {
		n := bufs[idx]
		if n == 0 {
			return
		}
		bufs[idx] = 0
		mail := q.joinMail[idx]
		s.sendData(p, pe.id, q.dec.JoinPEs[idx], n, func() {
			mail.Put(jmsg{kind: kind, tuples: n})
		})
	}
	rr := (int(q.id) + fragIdx) % deg
	credit := make([]float64, 0)
	if q.weights != nil {
		credit = make([]float64, deg)
	}
	var sent int64
	var pageCursor int64
	for remaining := match; remaining > 0; {
		if s.faults != nil && s.faults.failedSince(pe.id, start) {
			break // crashed mid-scan: stop doing real work
		}
		pg := pageID(relSpace*1_000_000-int64(fragIdx)*100_000, pageCursor)
		if !pe.disks.Read(p, dataDiskFor(pe, pageCursor), pg, true) {
			pe.computeT(p, ct.io)
		}
		pageCursor++
		n := int64(c.Blocking)
		if remaining < n {
			n = remaining
		}
		remaining -= n
		pe.compute(p, n*(c.Costs.ReadTuple+c.Costs.WriteTuple))
		// The page's tuples hash-partition over the join processes —
		// uniformly round-robin, or by the configured skew weights; full
		// output buffers are transmitted immediately.
		if q.weights == nil {
			sent += n
			for ; n > 0; n-- {
				bufs[rr]++
				if bufs[rr] >= tpp {
					sendBuf(rr)
				}
				rr = (rr + 1) % deg
			}
		} else {
			for i := range credit {
				credit[i] += float64(n) * q.weights[i]
				if add := int64(credit[i]); add > 0 {
					credit[i] -= float64(add)
					bufs[i] += add
					sent += add
					for bufs[i] >= tpp {
						sendBuf(i)
					}
				}
			}
		}
	}
	if s.faults != nil && s.faults.failedSince(pe.id, start) {
		// Crashed under the scan: the buffered output is lost; report
		// completion so the coordinator's counting closes, then abort at
		// its checkpoint. (The abort round still releases the read lock.)
		q.coordMail.Put(cmsg{kind: done, from: pe.id})
		return
	}
	// Skewed apportionment truncates fractions; hand leftovers out
	// round-robin so every matching tuple is shipped.
	for ; sent < match; sent++ {
		bufs[rr]++
		if bufs[rr] >= tpp {
			sendBuf(rr)
		}
		rr = (rr + 1) % deg
	}
	// Scan end: transmit the partially filled output buffers, then report
	// completion to the coordinator (which broadcasts end-of-phase to the
	// join processes once all scans are in).
	for i := range bufs {
		sendBuf(i)
	}
	s.sendCtl(p, pe.id, q.coordPE, func() {
		q.coordMail.Put(cmsg{kind: done, from: pe.id})
	})
}

// broadcastJoin sends a control message to every join process.
func (q *joinQuery) broadcastJoin(p *sim.Proc, kind jmsgKind) {
	for i := range q.joinMail {
		mail := q.joinMail[i]
		q.s.sendCtl(p, q.coordPE, q.dec.JoinPEs[i], func() {
			mail.Put(jmsg{kind: kind})
		})
	}
}

// jmsgCursor drains a join-process mailbox in batches, handing out one
// message at a time. Each phase loop runs until its end-of-phase marker
// (jmsgAEOF/jmsgBEOF), so the mailbox must never close while a drain is
// outstanding — a closed-and-drained mailbox here means the coordinator
// tore the query down without completing the protocol, and is diagnosed
// explicitly instead of surfacing as an index-out-of-range on the empty
// batch GetAll returns after close.
type jmsgCursor struct {
	qid   int64
	idx   int
	mail  *sim.Chan[jmsg]
	batch []jmsg
	cur   int
}

func (c *jmsgCursor) next(p *sim.Proc) jmsg {
	if c.cur == len(c.batch) {
		batch, ok := c.mail.GetAll(p, c.batch[:0])
		if !ok {
			panic(fmt.Sprintf("engine: q%d/join%d mailbox closed mid-phase with no end-of-phase marker (protocol violation)", c.qid, c.idx))
		}
		c.batch, c.cur = batch, 0
	}
	m := c.batch[c.cur]
	c.cur++
	return m
}

// runJoinProc executes one join process: working-space acquisition (the
// FCFS memory queue), PPHJ building/probing, deferred partition joins, and
// result shipping.
func (s *System) runJoinProc(p *sim.Proc, q *joinQuery, pe *PE, idx int) {
	start := s.k.Now()
	if s.faults != nil && !s.faults.hostUp(pe.id) {
		s.deadJoinProc(p, q, idx, pe.id)
		return
	}
	// failed reports whether this PE has crashed under the process. The
	// process then stops doing real work (arriving data vanishes) but keeps
	// draining its mailbox and reporting phase completions, so the
	// coordinator's protocol closes and aborts at its checkpoint.
	failed := func() bool { return s.faults != nil && s.faults.failedSince(pe.id, start) }
	s.recvCtlCPU(p, pe.id) // start message
	c := &s.cfg
	mail := q.joinMail[idx]

	expInnerTuples := q.expectedShare(s.cfg.AScanTuples(), idx)
	expInnerPages := pagesFor(expInnerTuples, c.Blocking)
	minPages := clampMinSpace(pphj.NumPartitions(expInnerPages, c.FudgeFactor), c.BufferPages)
	desired := q.dec.MemPerPE
	if desired < minPages {
		desired = minPages
	}

	space := pe.buf.NewSpace(fmt.Sprintf("q%d/j%d", q.id, idx), bufferQueryPriority, minPages)
	waitStart := s.k.Now()
	got := space.Acquire(p, desired)
	if s.measuring {
		s.memWaitMS.Add((s.k.Now() - waitStart).Milliseconds())
	}
	defer space.Close()

	j := pphj.New(expInnerPages, c.FudgeFactor, c.Blocking, got)
	temp := pe.newTemp()
	space.SetStealHandler(func(need int) int {
		avail := space.Pages() - j.MinPages()
		if avail <= 0 {
			return 0
		}
		release := need
		if release > avail {
			release = avail
		}
		w := j.SetMem(space.Pages() - release)
		temp.writeAsync(w)
		space.Release(release)
		return release
	})

	res := &resultEmitter{s: s, q: q, pe: pe}

	// The mailbox is drained in batches: a redistribution burst costs this
	// process one wake-up instead of one per packet. The cursor carries
	// unconsumed messages across the phase boundary — a drain behind
	// jmsgAEOF may already hold the first probe packets, exactly the
	// messages a single-Get loop would have left queued.
	mc := jmsgCursor{qid: q.id, idx: idx, mail: mail}
	next := func() jmsg { return mc.next(p) }

	// --- Building phase ---
	for building := true; building; {
		m := next()
		switch m.kind {
		case jmsgBuild:
			if failed() {
				continue // crashed: arriving build data vanishes
			}
			s.recvDataCPU(p, pe.id, m.tuples)
			pe.compute(p, m.tuples*(c.Costs.HashTuple+c.Costs.InsertHash))
			temp.write(p, j.Build(m.tuples))
		case jmsgAEOF:
			if failed() {
				building = false
				continue
			}
			s.recvCtlCPU(p, pe.id)
			building = false
		case jmsgStop:
			return // coordinator aborted the attempt
		default:
			panic("engine: unexpected probe data during build")
		}
	}
	if failed() {
		q.coordMail.Put(cmsg{kind: cmsgBuildDone, from: pe.id})
	} else {
		j.EndBuild()
		// Memory may have freed up since acquisition: revive partitions.
		if grown := space.TryGrow(desired - space.Pages()); grown > 0 {
			j.SetMem(space.Pages())
			temp.read(p, j.Revive())
		}
		s.sendCtl(p, pe.id, q.coordPE, func() {
			q.coordMail.Put(cmsg{kind: cmsgBuildDone, from: pe.id})
		})
	}

	// --- Probing phase ---
	for probing := true; probing; {
		m := next()
		switch m.kind {
		case jmsgProbe:
			if failed() {
				continue // crashed: arriving probe data vanishes
			}
			s.recvDataCPU(p, pe.id, m.tuples)
			direct, spilled, w := j.Probe(m.tuples)
			pe.compute(p, direct*(c.Costs.HashTuple+c.Costs.ProbeHash)+
				spilled*(c.Costs.HashTuple+c.Costs.WriteTuple))
			temp.write(p, w)
			res.probe(p, direct)
		case jmsgBEOF:
			if failed() {
				probing = false
				continue
			}
			s.recvCtlCPU(p, pe.id)
			probing = false
		case jmsgStop:
			return // coordinator aborted the attempt
		default:
			panic("engine: unexpected build data during probe")
		}
	}
	if !failed() {
		temp.flush(p)

		// --- Deferred partition joins ---
		for _, d := range j.DeferredPlan() {
			if failed() {
				break
			}
			if d.APages > 0 {
				temp.read(p, d.APages)
				pe.compute(p, d.ATuples*(c.Costs.ReadTuple+c.Costs.InsertHash))
			}
			if d.BPages > 0 {
				temp.read(p, d.BPages)
				pe.compute(p, d.BTuples*(c.Costs.ReadTuple+c.Costs.ProbeHash))
				res.probe(p, d.BTuples)
			}
		}
	}
	if failed() {
		q.coordMail.Put(cmsg{kind: cmsgJoinDone, from: pe.id})
		return
	}
	res.flush(p)

	s.sendCtl(p, pe.id, q.coordPE, func() {
		q.coordMail.Put(cmsg{kind: cmsgJoinDone, from: pe.id})
	})
}

// deadJoinProc stands in for a join process whose host crashed before the
// start message arrived: arriving redistribution data vanishes, and the
// failure detector synthesizes the end-of-phase reports the coordinator is
// counting, so the protocol completes and the coordinator aborts at its
// next checkpoint.
func (s *System) deadJoinProc(p *sim.Proc, q *joinQuery, idx, peID int) {
	mail := q.joinMail[idx]
	for {
		m, ok := mail.Get(p)
		if !ok {
			return
		}
		switch m.kind {
		case jmsgAEOF:
			q.coordMail.Put(cmsg{kind: cmsgBuildDone, from: peID})
		case jmsgBEOF:
			q.coordMail.Put(cmsg{kind: cmsgJoinDone, from: peID})
			return
		case jmsgStop:
			return
		}
	}
}

// resultEmitter converts probed outer tuples into result tuples (the join
// result is ResultFraction of the inner scan output, so each outer tuple
// matches with ratio |result| / |sel(B)|) and ships full packets to the
// coordinator.
type resultEmitter struct {
	s     *System
	q     *joinQuery
	pe    *PE
	carry int64 // numerator remainder of probed*|result| / |sel(B)|
	buf   int64 // result tuples awaiting a full packet
}

func (r *resultEmitter) probe(p *sim.Proc, probed int64) {
	c := &r.s.cfg
	totalB := c.BScanTuples()
	if totalB == 0 {
		return
	}
	totalRes := int64(float64(c.AScanTuples()) * c.ResultFraction)
	r.carry += probed * totalRes
	emit := r.carry / totalB
	r.carry %= totalB
	if emit == 0 {
		return
	}
	r.pe.compute(p, emit*c.Costs.WriteTuple)
	r.buf += emit
	tpp := c.TuplesPerPacket()
	for r.buf >= tpp {
		r.send(p, tpp)
		r.buf -= tpp
	}
}

func (r *resultEmitter) flush(p *sim.Proc) {
	if r.buf > 0 {
		r.send(p, r.buf)
		r.buf = 0
	}
}

func (r *resultEmitter) send(p *sim.Proc, tuples int64) {
	mail := r.q.coordMail
	r.s.sendData(p, r.pe.id, r.q.coordPE, tuples, func() {
		mail.Put(cmsg{kind: cmsgResult, tuples: tuples, from: r.pe.id})
	})
}

// --- small helpers -----------------------------------------------------

func share(total int64, parts, idx int) int64 {
	base := total / int64(parts)
	if int64(idx) < total%int64(parts) {
		base++
	}
	return base
}

func selTuples(n int64, sel float64) int64 {
	if sel <= 0 {
		return 0
	}
	if sel >= 1 {
		return n
	}
	t := int64(float64(n)*sel + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

func pagesFor(tuples int64, blocking int) int64 {
	if tuples <= 0 {
		return 0
	}
	return (tuples + int64(blocking) - 1) / int64(blocking)
}

func dataDiskFor(pe *PE, page int64) int {
	return int(page % int64(pe.disks.NDisks()))
}

// clampMinSpace bounds a join process's minimal working space by half the
// node's buffer: on very small buffers PPHJ runs with fewer, larger
// partitions instead of demanding more memory than a node can ever grant.
func clampMinSpace(parts, bufferPages int) int {
	cap := bufferPages / 2
	if cap < 1 {
		cap = 1
	}
	if parts > cap {
		return cap
	}
	if parts < 1 {
		return 1
	}
	return parts
}
