package engine

import (
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// Behavioural tests: lock in the qualitative effects the paper's figures
// depend on, at small scale so they stay fast.

func TestSingleUserPsuOptAvoidsTempIO(t *testing.T) {
	// Section 2: in single-user mode psu-opt is at least psu-noIO, so no
	// temporary file I/O occurs with the default 1% query.
	cfg := config.Default()
	cfg.NPE = 40
	cfg.JoinQPSPerPE = 0
	cfg.Warmup = 2 * sim.Second
	cfg.MeasureTime = 8 * sim.Second
	res := MustNew(cfg, core.MustByName("psu-opt+RANDOM")).Run()
	if res.TempIOPages != 0 {
		t.Errorf("single-user psu-opt produced %d temp I/O pages", res.TempIOPages)
	}
	if res.AvgJoinDegree != float64(res.PsuOpt) {
		t.Errorf("degree %.1f != psu-opt %d", res.AvgJoinDegree, res.PsuOpt)
	}
}

func TestPmuCpuReducesDegreeUnderLoad(t *testing.T) {
	// Formula 3.2: under high CPU utilization the dynamic degree drops
	// below the single-user optimum.
	cfg := config.Default()
	cfg.NPE = 40
	cfg.JoinQPSPerPE = 0.3 // drives CPU utilization up
	cfg.Warmup = 3 * sim.Second
	cfg.MeasureTime = 10 * sim.Second
	res := MustNew(cfg, core.MustByName("pmu-cpu+RANDOM")).Run()
	if res.CPUUtil < 0.3 {
		t.Skipf("load did not materialize (cpu %.2f)", res.CPUUtil)
	}
	if res.AvgJoinDegree >= float64(res.PsuOpt) {
		t.Errorf("pmu-cpu degree %.1f did not drop below psu-opt %d at cpu %.0f%%",
			res.AvgJoinDegree, res.PsuOpt, 100*res.CPUUtil)
	}
}

func TestMinIOSuOptRaisesDegreeWhenMemoryBound(t *testing.T) {
	// Fig. 7: under memory scarcity the integrated strategy pushes the
	// degree above the (memory-blind) single-user optimum.
	cfg := config.Default()
	cfg.NPE = 80
	cfg.BufferPages = 5
	cfg.DisksPerPE = 1
	cfg.JoinQPSPerPE = 0.025
	cfg.Warmup = 3 * sim.Second
	cfg.MeasureTime = 15 * sim.Second
	res := MustNew(cfg, core.MustByName("MIN-IO-SUOPT")).Run()
	if res.AvgJoinDegree <= float64(res.PsuOpt) {
		t.Errorf("MIN-IO-SUOPT degree %.1f did not exceed psu-opt %d in the memory-bound setup",
			res.AvgJoinDegree, res.PsuOpt)
	}
}

func TestLUMBeatsRandomUnderOLTPSkew(t *testing.T) {
	// Fig. 9: with OLTP loading a subset of nodes, memory-aware selection
	// must clearly beat random selection for the small static degree.
	run := func(name string) Results {
		cfg := config.Default()
		cfg.NPE = 20
		cfg.DisksPerPE = 5
		cfg.JoinQPSPerPE = 0.05
		cfg.OLTP.Placement = config.OLTPOnANode
		cfg.OLTP.TPSPerNode = 100
		cfg.Warmup = 3 * sim.Second
		cfg.MeasureTime = 15 * sim.Second
		return MustNew(cfg, core.MustByName(name)).Run()
	}
	random := run("psu-noIO+RANDOM")
	lum := run("psu-noIO+LUM")
	if lum.JoinsDone == 0 || random.JoinsDone == 0 {
		t.Fatalf("no joins completed: lum=%d random=%d", lum.JoinsDone, random.JoinsDone)
	}
	if lum.JoinRT.MeanMS >= random.JoinRT.MeanMS {
		t.Errorf("LUM (%.0fms) not better than RANDOM (%.0fms) under OLTP skew",
			lum.JoinRT.MeanMS, random.JoinRT.MeanMS)
	}
}

func TestOLTPUtilizationCalibration(t *testing.T) {
	// Section 5.3 reports ~50% CPU, ~60% disk, ~45% memory per OLTP node
	// at 100 TPS. Verify our calibration stays in the right region
	// (generous bands; exact values recorded in EXPERIMENTS.md).
	cfg := config.Default()
	cfg.NPE = 10
	cfg.DisksPerPE = 5
	cfg.JoinQPSPerPE = 0.0001
	cfg.OLTP.Placement = config.OLTPOnANode // 2 of 10 nodes
	cfg.OLTP.TPSPerNode = 100
	cfg.Warmup = 2 * sim.Second
	cfg.MeasureTime = 10 * sim.Second
	res := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	// Utilizations are averaged over all 10 PEs; per-OLTP-node values are
	// 5x the reported means (2 busy nodes of 10).
	perNodeCPU := res.CPUUtil * 5
	perNodeDisk := res.DiskUtil * 5
	if perNodeCPU < 0.30 || perNodeCPU > 0.80 {
		t.Errorf("OLTP node CPU %.0f%%, want ~50%%", 100*perNodeCPU)
	}
	if perNodeDisk < 0.30 || perNodeDisk > 0.85 {
		t.Errorf("OLTP node disk %.0f%%, want ~60%%", 100*perNodeDisk)
	}
	if res.OLTPRT.MeanMS > 300 {
		t.Errorf("OLTP response time %.0fms implausible for debit-credit", res.OLTPRT.MeanMS)
	}
	if res.OLTPTPS < 150 { // 2 nodes x 100 TPS offered
		t.Errorf("OLTP throughput %.0f/s below offered load", res.OLTPTPS)
	}
}

func TestControlLedgerReturnsReservations(t *testing.T) {
	// After a light run every completed query must have released its
	// placement; at most a handful of in-flight queries may remain booked.
	cfg := config.Default()
	cfg.NPE = 10
	cfg.JoinQPSPerPE = 0.05
	cfg.Warmup = 2 * sim.Second
	cfg.MeasureTime = 10 * sim.Second
	s := MustNew(cfg, core.MustByName("pmu-cpu+LUM"))
	s.Run()
	var outstanding int
	for pe := 0; pe < cfg.NPE; pe++ {
		outstanding += s.Control().Outstanding(pe)
	}
	// A couple of in-flight queries at ~132 pages each is the ceiling.
	if outstanding > 3*140 {
		t.Errorf("outstanding ledger %d pages; releases not flowing", outstanding)
	}
}

func TestScanSpaceScaling(t *testing.T) {
	cases := []struct {
		buffer, want int
	}{{50, 6}, {5, 1}, {8, 1}, {16, 2}, {100, 6}}
	for _, c := range cases {
		if got := scanSpacePages(c.buffer); got != c.want {
			t.Errorf("scanSpacePages(%d) = %d, want %d", c.buffer, got, c.want)
		}
	}
}

func TestClampMinSpace(t *testing.T) {
	cases := []struct {
		parts, buffer, want int
	}{{12, 5, 2}, {3, 50, 3}, {40, 50, 25}, {0, 50, 1}, {5, 2, 1}}
	for _, c := range cases {
		if got := clampMinSpace(c.parts, c.buffer); got != c.want {
			t.Errorf("clampMinSpace(%d, %d) = %d, want %d", c.parts, c.buffer, got, c.want)
		}
	}
}

func TestResultTupleAccounting(t *testing.T) {
	// The result emitter's fixed-point arithmetic must conserve tuples:
	// feeding exactly the whole outer input emits exactly the configured
	// result size, with no drift across uneven packet boundaries.
	cfg := config.Default()
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	q := &joinQuery{s: s, coordPE: 0}
	q.coordMail = sim.NewChan[cmsg](s.Kernel(), "test/coord")
	re := &resultEmitter{s: s, q: q, pe: s.pe(1)}
	totalB := cfg.BScanTuples()
	totalRes := int64(float64(cfg.AScanTuples()) * cfg.ResultFraction)

	k := s.Kernel()
	k.Spawn("emit", func(p *sim.Proc) {
		for fed := int64(0); fed < totalB; {
			n := int64(17)
			if totalB-fed < n {
				n = totalB - fed
			}
			re.probe(p, n)
			fed += n
		}
		re.flush(p)
	})
	k.RunAll()

	var sent int64
	for {
		m, ok := q.coordMail.TryGet()
		if !ok {
			break
		}
		if m.kind == cmsgResult {
			sent += m.tuples
		}
	}
	if sent != totalRes {
		t.Errorf("emitted %d result tuples, want %d", sent, totalRes)
	}
	if re.carry != 0 || re.buf != 0 {
		t.Errorf("emitter residue: carry=%d buf=%d", re.carry, re.buf)
	}
}
