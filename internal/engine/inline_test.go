package engine

import (
	"reflect"
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
)

// TestInlineDispatchIdenticalResults pins the continuation fast path at the
// system level: a full multi-user run — joins, OLTP, lock waits, buffer
// steals, network traffic — must produce bit-identical Results with the
// fast path on (default) and off (every block a park/resume through the
// root loop). Together with the sim-level trace test and the golden CSVs
// this enforces that the fast path never alters a simulation outcome.
func TestInlineDispatchIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := quickCfg()
	cfg.OLTP.Placement = config.OLTPOnANode
	cfg.OLTP.TPSPerNode = 50

	fast := MustNew(cfg, core.MustByName("OPT-IO-CPU"))
	fastRes := fast.Run()

	parked := MustNew(cfg, core.MustByName("OPT-IO-CPU"))
	parked.Kernel().SetInlineDispatch(false)
	parkedRes := parked.Run()

	if !reflect.DeepEqual(fastRes, parkedRes) {
		t.Fatalf("results differ between inline and parked dispatch:\ninline: %+v\nparked: %+v", fastRes, parkedRes)
	}

	// The fast path must also actually engage: in a run of this size the
	// bulk of wake-ups resolve in-context.
	s := fast.Kernel().Stats()
	if s.InlineWakes == 0 {
		t.Fatal("fast path never engaged (InlineWakes = 0)")
	}
	if p := parked.Kernel().Stats(); p.InlineWakes != 0 {
		t.Fatalf("parked kernel recorded %d inline wakes", p.InlineWakes)
	}
}
