package engine

import (
	"fmt"

	"dynlb/internal/buffer"
	"dynlb/internal/config"
	"dynlb/internal/lock"
	"dynlb/internal/sim"
)

// Standalone scan query classes (Section 4's relation scan, clustered index
// scan and non-clustered index scan query types): a coordinator starts one
// scan subquery per home PE of the relation; subqueries select matching
// tuples and stream them back; the coordinator merges and commits with the
// read-only optimization.

// runScanQuery executes one standalone scan query in the calling process.
// Under fault injection a participant crash aborts the attempt at the
// post-collection checkpoint and the query is resubmitted after capped
// exponential backoff (see runJoinQuery); without a fault plan the single
// attempt is the original code path.
func (s *System) runScanQuery(p *sim.Proc, coordPE int, class config.ScanClass, arrival sim.Time) {
	if s.faults == nil {
		s.scanQueryAttempt(p, coordPE, class, arrival)
		return
	}
	for attempt := 0; ; attempt++ {
		if s.scanQueryAttempt(p, s.faults.liveHost(coordPE), class, arrival) {
			return
		}
		s.faults.noteAbort()
		p.Wait(retryBackoff(attempt))
		s.faults.noteRetry()
	}
}

// scanQueryAttempt runs one attempt of a standalone scan query on the given
// (live) coordinator PE, reporting false when a participant failure aborted
// it after lock teardown.
func (s *System) scanQueryAttempt(p *sim.Proc, coordPE int, class config.ScanClass, arrival sim.Time) bool {
	attemptStart := s.k.Now()
	pe := s.pe(coordPE)
	pe.mpl.Get(p, 1)
	defer pe.mpl.Put(1)

	s.nextQuery++
	qid := s.nextQuery
	txn := s.newTxnID()
	pe.computeT(p, s.ct.initTxn)

	relSpace := int64(spaceRelA)
	total := s.cfg.ATuples
	homes := s.cfg.ANodes()
	if class.OnB {
		relSpace = spaceRelB
		total = s.cfg.BTuples
		homes = s.cfg.BNodes()
	}
	if s.faults != nil {
		homes = s.faults.liveHosts(homes)
	}

	mail := sim.NewChan[cmsg](s.k, fmt.Sprintf("sq%d/coord", qid))
	for i, home := range homes {
		s.sendCtl(p, coordPE, home, func() {
			s.k.Spawn(fmt.Sprintf("sq%d/scan%d", qid, i), func(sp *sim.Proc) {
				s.runScanFragment(sp, scanFragment{
					qid: qid, txn: txn, class: class,
					relSpace: relSpace, total: total,
					nodes: len(homes), fragIdx: i,
					coordPE: coordPE, mail: mail,
				}, s.pe(home))
			})
		})
	}

	for done := 0; done < len(homes); {
		m, _ := mail.Get(p)
		switch m.kind {
		case cmsgScanADone:
			s.recvCtlCPU(p, coordPE)
			done++
		case cmsgResult:
			s.recvDataCPU(p, coordPE, m.tuples)
		default:
			panic(fmt.Sprintf("engine: sq%d unexpected %v", qid, m.kind))
		}
	}

	// Read-only commit round releases the fragment locks (also sent on
	// abort — the release round is the same protocol). The participant
	// side only charges CPU and wire holds: run-to-completion, no process.
	releaseRound := func() {
		for _, home := range homes {
			s.sendCtl(p, coordPE, home, func() {
				s.k.SpawnFn(func() {
					s.recvCtlCPUFn(home, func() {
						s.pe(home).locks.ReleaseAll(txn)
						s.sendCtlFn(home, coordPE, func() {
							mail.Put(cmsg{kind: cmsgAck, from: home})
						}, nopThen)
					})
				})
			})
		}
		for acks := 0; acks < len(homes); {
			m, _ := mail.Get(p)
			if m.kind != cmsgAck {
				panic("engine: scan query commit protocol violation")
			}
			s.recvCtlCPU(p, coordPE)
			acks++
		}
	}

	// Fault checkpoint: a participant crashed during the scans — the
	// streamed results are incomplete, so release the locks and abort.
	if s.faults != nil {
		failed := s.faults.failedSince(coordPE, attemptStart)
		for _, home := range homes {
			failed = failed || s.faults.failedSince(home, attemptStart)
		}
		if failed {
			releaseRound()
			pe.computeT(p, s.ct.termTxnHalf)
			return false
		}
	}

	releaseRound()
	pe.computeT(p, s.ct.termTxn)

	if s.measuring {
		s.scanRT.Add((s.k.Now() - arrival).Milliseconds())
	}
	return true
}

type scanFragment struct {
	qid      int64
	txn      lock.TxnID
	class    config.ScanClass
	relSpace int64
	total    int64
	nodes    int
	fragIdx  int
	coordPE  int
	mail     *sim.Chan[cmsg]
}

// runScanFragment executes one scan subquery of a standalone scan query.
// Its inner loops charge the loop-invariant cost segments through the
// pre-converted costT durations; each hold rides the kernel's continuation
// fast path when uncontended.
func (s *System) runScanFragment(p *sim.Proc, f scanFragment, pe *PE) {
	start := s.k.Now()
	if s.faults != nil && !s.faults.hostUp(pe.id) {
		// Crashed before the start message arrived: the failure detector
		// synthesizes the completion report; the coordinator aborts at its
		// checkpoint.
		f.mail.Put(cmsg{kind: cmsgScanADone, from: pe.id})
		return
	}
	// failed reports whether this PE crashed under the fragment; the scan
	// then stops doing real work and synthesizes its completion report.
	failed := func() bool { return s.faults != nil && s.faults.failedSince(pe.id, start) }
	s.recvCtlCPU(p, pe.id)
	c := &s.cfg
	ct := &s.ct

	if err := pe.locks.Lock(p, f.txn, lock.Key{Space: f.relSpace, Item: 0}, lock.Shared); err != nil {
		panic("engine: scan fragment read lock aborted")
	}

	match := share(selTuples(f.total, f.class.Selectivity), f.nodes, f.fragIdx)
	tpp := c.TuplesPerPacket()

	if f.class.Clustered {
		// Matching pages are contiguous: sequential reads with prefetch,
		// one result packet per filled buffer.
		var pageCursor, buf int64
		for remaining := match; remaining > 0; {
			if failed() {
				break
			}
			pg := pageID(f.relSpace*1_000_000-int64(f.fragIdx)*100_000-500_000, pageCursor)
			if !pe.disks.Read(p, dataDiskFor(pe, pageCursor), pg, true) {
				pe.computeT(p, ct.io)
			}
			pageCursor++
			n := int64(c.Blocking)
			if remaining < n {
				n = remaining
			}
			remaining -= n
			pe.compute(p, n*(c.Costs.ReadTuple+c.Costs.WriteTuple))
			buf += n
			for buf >= tpp {
				buf -= tpp
				s.sendResult(p, pe, f, tpp)
			}
		}
		if buf > 0 && !failed() {
			s.sendResult(p, pe, f, buf)
		}
	} else {
		// Non-clustered index: an index descent (upper levels resident)
		// plus one random data page access per matching tuple, through the
		// buffer (repeated hits on hot pages are free).
		fragPages := pagesFor(share(f.total, f.nodes, f.fragIdx), c.Blocking)
		if fragPages < 1 {
			fragPages = 1
		}
		var buf int64
		for i := int64(0); i < match; i++ {
			if failed() {
				break
			}
			pe.computeT(p, ct.scanDescent) // B+-tree descent, resident
			page := (i*2654435761 + int64(f.qid)) % fragPages
			pg := pageID(f.relSpace*1_000_000-int64(f.fragIdx)*100_000-700_000, page)
			pe.buf.Fix(p, pg, false, false, buffer.PriorityQuery)
			pe.computeT(p, ct.tupleRW)
			pe.buf.Unfix(pg)
			buf++
			if buf == tpp {
				buf = 0
				s.sendResult(p, pe, f, tpp)
			}
		}
		if buf > 0 && !failed() {
			s.sendResult(p, pe, f, buf)
		}
	}

	if failed() {
		f.mail.Put(cmsg{kind: cmsgScanADone, from: pe.id})
		return
	}
	s.sendCtl(p, pe.id, f.coordPE, func() {
		f.mail.Put(cmsg{kind: cmsgScanADone, from: pe.id})
	})
}

func (s *System) sendResult(p *sim.Proc, pe *PE, f scanFragment, tuples int64) {
	pe.compute(p, 0) // WriteTuple already charged per tuple above
	mail := f.mail
	s.sendData(p, pe.id, f.coordPE, tuples, func() {
		mail.Put(cmsg{kind: cmsgResult, tuples: tuples, from: pe.id})
	})
}
