package engine

import (
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// Communication manager: every message charges the Fig. 4 CPU costs at the
// sender when transmitted and at the receiver when consumed, plus the wire
// occupancy modelled by internal/netw. Data messages carry one packet of
// tuples; control messages are small single-packet messages.

// controlBytes is the payload size of control messages (start, EOF, commit,
// utilization reports).
const controlBytes = 256

// jmsg is a message into a join process's mailbox.
type jmsg struct {
	kind   jmsgKind
	tuples int64
}

type jmsgKind int

const (
	jmsgBuild jmsgKind = iota // packet of inner tuples
	jmsgProbe                 // packet of outer tuples
	jmsgAEOF                  // an A-scan finished
	jmsgBEOF                  // a B-scan finished
	jmsgStop                  // query aborted / teardown
)

// cmsg is a message into a query coordinator's mailbox.
type cmsg struct {
	kind   cmsgKind
	tuples int64
	from   int
}

type cmsgKind int

const (
	cmsgBuildDone cmsgKind = iota // a join process finished building
	cmsgResult                    // packet of result tuples
	cmsgJoinDone                  // a join process finished completely
	cmsgAck                       // commit acknowledgement
	cmsgScanADone                 // an A-scan subquery finished
	cmsgScanBDone                 // a B-scan subquery finished
)

// copyInstr returns the buffer-copy cost of a message carrying the given
// tuple count: the Copy8KB table entry scaled to the actual payload (the
// paper's cost is per 8 KB copied; partially filled packets copy less).
func (s *System) copyInstr(tuples int64) int64 {
	bytes := tuples * int64(s.cfg.TupleBytes)
	instr := s.cfg.Costs.Copy8KB * bytes / int64(s.cfg.Net.PacketBytes)
	if instr < s.cfg.Costs.Copy8KB/8 {
		instr = s.cfg.Costs.Copy8KB / 8 // header copy floor
	}
	return instr
}

// sendData transmits a data packet of tuples: sender pays SendMsg plus the
// proportional copy and the wire; the receiver pays on consumption via
// recvDataCPU.
func (s *System) sendData(p *sim.Proc, from, to int, tuples int64, deliver func()) {
	pe := s.pe(from)
	pe.compute(p, s.cfg.Costs.SendMsg+s.copyInstr(tuples))
	bytes := tuples * int64(s.cfg.TupleBytes)
	s.net.Send(p, from, to, bytes, deliver)
}

// recvDataCPU charges the receiver-side cost of one data packet.
func (s *System) recvDataCPU(p *sim.Proc, at int, tuples int64) {
	s.pe(at).compute(p, s.cfg.Costs.RecvMsg+s.copyInstr(tuples))
}

// sendCtl transmits a small control message, blocking the sender for its
// CPU cost and wire occupancy.
func (s *System) sendCtl(p *sim.Proc, from, to int, deliver func()) {
	s.pe(from).computeT(p, s.ct.sendMsg)
	s.net.Send(p, from, to, controlBytes, deliver)
}

// sendCtlFn is sendCtl for run-to-completion light processes: sender CPU,
// then wire, then `then` continues the caller where sendCtl would have
// returned.
func (s *System) sendCtlFn(from, to int, deliver, then func()) {
	s.pe(from).computeTFn(s.ct.sendMsg, func() {
		s.net.SendFn(from, to, controlBytes, deliver, then)
	})
}

// sendCtlAsync transmits a control message without blocking the caller,
// still charging the sender CPU through a light helper process.
func (s *System) sendCtlAsync(from, to int, deliver func()) {
	s.k.SpawnFn(func() {
		s.sendCtlFn(from, to, deliver, nopThen)
	})
}

// recvCtlCPU charges the receiver-side cost of one control message.
func (s *System) recvCtlCPU(p *sim.Proc, at int) {
	s.pe(at).computeT(p, s.ct.recvMsg)
}

// recvCtlCPUFn is recvCtlCPU for light processes.
func (s *System) recvCtlCPUFn(at int, then func()) {
	s.pe(at).computeTFn(s.ct.recvMsg, then)
}

// nopThen terminates a light-process continuation chain whose caller has
// nothing left to do once the message is on the wire.
func nopThen() {}

// requestDecision models the round trip to the control node: the
// coordinator asks for a placement, the control node computes it (charging
// its CPU), and replies. Local requests skip the wire but still pay CPU.
// The control-node side — receive, decide, reply — never blocks on anything
// but CPU and wire holds, so it runs as a light process.
func (s *System) requestDecision(p *sim.Proc, coordPE int) core.Decision {
	reply := sim.NewChan[core.Decision](s.k, "decision-reply")
	s.sendCtl(p, coordPE, s.ctrlPE, func() {
		s.k.SpawnFn(func() {
			s.recvCtlCPUFn(s.ctrlPE, func() {
				d := s.ctrl.Decide(s.strategy, s.qinfo, s.rng)
				s.pe(s.ctrlPE).computeTFn(s.ct.ctrlDecide, func() { // placement computation
					s.sendCtlFn(s.ctrlPE, coordPE, func() {
						reply.Put(d)
					}, nopThen)
				})
			})
		})
	})
	d, _ := reply.Get(p)
	s.recvCtlCPU(p, coordPE)
	return d
}
