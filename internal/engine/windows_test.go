package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

func TestWindowedMetricsBasics(t *testing.T) {
	cfg := quickCfg()
	cfg.MetricsWindow = sim.Second
	res := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()

	if len(res.Windows) != 10 {
		t.Fatalf("got %d windows for a 10s measurement at 1s width, want 10", len(res.Windows))
	}
	if res.WindowMS != 1000 {
		t.Errorf("WindowMS = %v, want 1000", res.WindowMS)
	}
	joins := 0
	for i, w := range res.Windows {
		if w.StartMS != float64(i*1000) || w.EndMS != float64((i+1)*1000) {
			t.Errorf("window %d spans [%v, %v] ms, want [%d, %d]", i, w.StartMS, w.EndMS, i*1000, (i+1)*1000)
		}
		// Throughput must be joins over the window width, exactly.
		if want := float64(w.Joins); math.Abs(w.JoinTPS-want) > 1e-9 {
			t.Errorf("window %d: tps %v inconsistent with %d joins in 1s", i, w.JoinTPS, w.Joins)
		}
		if w.Joins > 0 && (w.RTMeanMS <= 0 || w.RTP95MS < w.RTMeanMS/2) {
			t.Errorf("window %d: rt mean %v p95 %v", i, w.RTMeanMS, w.RTP95MS)
		}
		for _, u := range []float64{w.CPUUtil, w.DiskUtil, w.MemUtil} {
			if u < 0 || u > 1 {
				t.Errorf("window %d: utilization %v outside [0,1]", i, u)
			}
		}
		joins += w.Joins
	}
	// Every measured completion lands in exactly one window.
	if joins != res.JoinRT.N {
		t.Errorf("windows count %d joins, run measured %d", joins, res.JoinRT.N)
	}
	if res.PeakWindowRTMS <= 0 {
		t.Errorf("peak window rt %v", res.PeakWindowRTMS)
	}
}

// TestWindowsDoNotPerturbRun: window boundary events consume no randomness
// and touch no simulated resource, so enabling them must leave the
// simulation itself bit-identical — only the report grows.
func TestWindowsDoNotPerturbRun(t *testing.T) {
	plain := MustNew(quickCfg(), core.MustByName("OPT-IO-CPU")).Run()
	cfg := quickCfg()
	cfg.MetricsWindow = 500 * sim.Millisecond
	windowed := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()

	if plain.JoinsDone != windowed.JoinsDone || plain.JoinRT.MeanMS != windowed.JoinRT.MeanMS ||
		plain.TempIOPages != windowed.TempIOPages || plain.CPUUtil != windowed.CPUUtil {
		t.Fatalf("windowed run diverged from plain run:\nplain:    %+v\nwindowed: %+v",
			plain.JoinRT, windowed.JoinRT)
	}
	if len(windowed.Windows) != 20 {
		t.Errorf("got %d windows at 500ms over 10s, want 20", len(windowed.Windows))
	}
}

// TestConstantProfileBitIdentical: an explicit constant profile takes the
// same arrival code path bit for bit — the issue's acceptance criterion for
// backward compatibility.
func TestConstantProfileBitIdentical(t *testing.T) {
	plain := MustNew(quickCfg(), core.MustByName("OPT-IO-CPU")).Run()
	cfg := quickCfg()
	cfg.Profile = config.ConstantProfile()
	withProfile := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()

	if plain.JoinsDone != withProfile.JoinsDone || plain.JoinRT.MeanMS != withProfile.JoinRT.MeanMS ||
		plain.JoinRT.P95MS != withProfile.JoinRT.P95MS || plain.TempIOPages != withProfile.TempIOPages ||
		plain.CPUUtil != withProfile.CPUUtil || plain.DiskUtil != withProfile.DiskUtil {
		t.Fatalf("constant profile diverged from no profile:\nplain: %+v\nconst: %+v", plain, withProfile)
	}
}

// TestBurstProfileShiftsLoad: a flash crowd multiplies the arrival rate, so
// the run completes far more joins than the steady workload, and the
// mounting queueing delay tilts completions toward the later windows.
func TestBurstProfileShiftsLoad(t *testing.T) {
	steady := MustNew(quickCfg(), core.MustByName("OPT-IO-CPU")).Run()

	cfg := quickCfg()
	cfg.Profile = config.FlashCrowd(0, 10*sim.Second, 5, 0)
	cfg.MetricsWindow = sim.Second
	burst := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()

	if burst.JoinsDone < 2*steady.JoinsDone {
		t.Errorf("5x flash crowd completed %d joins, steady %d — burst should add load",
			burst.JoinsDone, steady.JoinsDone)
	}
	// The overload builds a queue, so response times — and with them the
	// derived peak — must climb well above the steady mean.
	if burst.PeakWindowRTMS < 2*steady.JoinRT.MeanMS {
		t.Errorf("peak window rt %v under 5x load vs steady mean %v", burst.PeakWindowRTMS, steady.JoinRT.MeanMS)
	}
	var firstHalf, secondHalf int
	for _, w := range burst.Windows {
		if w.EndMS <= 5000 {
			firstHalf += w.Joins
		} else {
			secondHalf += w.Joins
		}
	}
	if secondHalf <= firstHalf {
		t.Errorf("completions first half %d vs second half %d — queue growth not visible in windows",
			firstHalf, secondHalf)
	}
}

// TestJoinMailboxClosedPanics: a join-phase mailbox closing before the
// end-of-phase marker is a protocol violation the cursor must name loudly,
// not an index panic three frames later.
func TestJoinMailboxClosedPanics(t *testing.T) {
	k := sim.NewKernel()
	mail := sim.NewChan[jmsg](k, "m")
	var msg string
	k.Spawn("join", func(p *sim.Proc) {
		defer func() {
			if r := recover(); r != nil {
				msg = fmt.Sprint(r)
			}
		}()
		mc := jmsgCursor{qid: 7, idx: 3, mail: mail}
		mc.next(p) // blocks empty, then the close wakes it with ok=false
	})
	k.Spawn("closer", func(p *sim.Proc) {
		p.Wait(sim.Millisecond)
		mail.Close()
	})
	k.RunAll()
	if msg == "" {
		t.Fatal("closed mailbox did not panic the join process")
	}
	for _, want := range []string{"protocol violation", "q7/join3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("panic message %q missing %q", msg, want)
		}
	}
}
