package engine

import (
	"reflect"
	"runtime"
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// TestPooledSpawnIdenticalResults pins the PR-6 process model at the system
// level, the same way TestInlineDispatchIdenticalResults pins the
// continuation fast path: a full multi-user run — joins, OLTP, commit
// rounds, control traffic — must produce bit-identical Results with worker
// pooling on (default) and off (one goroutine per spawn). Together with the
// sim-level trace tests and the golden CSVs this enforces that pooling,
// light processes and batched mailboxes never alter a simulation outcome.
func TestPooledSpawnIdenticalResults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	cfg := quickCfg()
	cfg.OLTP.Placement = config.OLTPOnANode
	cfg.OLTP.TPSPerNode = 50

	pooled := MustNew(cfg, core.MustByName("OPT-IO-CPU"))
	pooledRes := pooled.Run()
	pooledStats := pooled.Kernel().Stats()

	unpooled := MustNew(cfg, core.MustByName("OPT-IO-CPU"))
	unpooled.Kernel().SetSpawnPooling(false)
	unpooledRes := unpooled.Run()

	if !reflect.DeepEqual(pooledRes, unpooledRes) {
		t.Fatalf("results differ between pooled and unpooled spawn:\npooled:   %+v\nunpooled: %+v", pooledRes, unpooledRes)
	}

	// The pool must actually engage: nearly every spawn in a run of this
	// size reuses a parked worker.
	if pooledStats.SpawnReuses == 0 {
		t.Fatal("pool never engaged (SpawnReuses = 0)")
	}
	if u := unpooled.Kernel().Stats(); u.SpawnReuses != 0 {
		t.Fatalf("unpooled kernel recorded %d spawn reuses", u.SpawnReuses)
	}
	// Light processes and batched mailbox drains must engage too.
	if pooledStats.LightSpawns == 0 {
		t.Fatal("no light processes ran (LightSpawns = 0)")
	}
	if pooledStats.BatchedGets == 0 {
		t.Fatal("no batched mailbox drains ran (BatchedGets = 0)")
	}
}

// TestGoroutineCeiling verifies the pool's scaling contract during a real
// multi-user run: the worker-goroutine count stays bounded by the peak
// number of live simulated processes — not by the tens of thousands of
// processes spawned — and Shutdown (called by System.Run) releases
// everything afterwards.
func TestGoroutineCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep in -short mode")
	}
	before := runtime.NumGoroutine()
	cfg := quickCfg()
	cfg.OLTP.Placement = config.OLTPOnANode
	cfg.OLTP.TPSPerNode = 50
	s := MustNew(cfg, core.MustByName("OPT-IO-CPU"))

	// Sample from inside the simulation: a monitor process wakes every
	// simulated 100 ms and records the OS goroutine count and the kernel's
	// own census.
	maxOS, maxLive, maxWorkers := 0, 0, 0
	s.Kernel().Spawn("monitor", func(p *sim.Proc) {
		for {
			p.Wait(100 * sim.Millisecond)
			if g := runtime.NumGoroutine(); g > maxOS {
				maxOS = g
			}
			if l := s.Kernel().Live(); l > maxLive {
				maxLive = l
			}
			if w := s.Kernel().Stats().LiveGoroutines; w > maxWorkers {
				maxWorkers = w
			}
		}
	})
	s.Run()
	st := s.Kernel().Stats()

	if st.Spawns < 1000 {
		t.Fatalf("run spawned only %d processes; workload too small to test the ceiling", st.Spawns)
	}
	// Worker goroutines are parked-or-live workers: bounded by the peak
	// live process count (each live process holds one worker; the pool
	// holds at most the peak ever needed), never by total spawns. The
	// sampled live maximum can miss the true inter-sample peak, so the
	// bound carries slack — the point is the order, not the constant.
	if maxWorkers > 4*(maxLive+8) {
		t.Errorf("worker goroutines peaked at %d with peak %d sampled live processes", maxWorkers, maxLive)
	}
	if int64(maxWorkers) >= st.Spawns/10 {
		t.Errorf("worker peak %d is not far below %d total spawns", maxWorkers, st.Spawns)
	}
	// The OS count tracks the workers plus the test harness's own
	// goroutines.
	if maxOS > before+maxWorkers+10 {
		t.Errorf("OS goroutines peaked at %d (baseline %d, workers %d)", maxOS, before, maxWorkers)
	}
	// System.Run shut the kernel down: all workers gone.
	if st.LiveGoroutines != 0 {
		t.Errorf("LiveGoroutines = %d after Run, want 0", st.LiveGoroutines)
	}
}
