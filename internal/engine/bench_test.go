package engine

import (
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// Engine-level benchmarks isolating the inner-loop cost the kernel's
// continuation fast path removes: an OLTP transaction is a tight chain of
// short CPU holds, lock calls, buffer fixes and a forced log write — a few
// dozen timed holds per transaction that previously each paid two
// goroutine switches. The Parked variants run the identical workload with
// the fast path disabled, so the switch cost is visible above the
// microbenchmark layer in the same binary.

// benchOLTP runs b.N debit-credit transactions on a minimal system with no
// competing query workload: a closed loop calling runOLTP directly, so
// ns/op is per transaction, not per simulated second.
func benchOLTP(b *testing.B, inline bool) {
	cfg := config.Default()
	cfg.NPE = 2
	cfg.JoinQPSPerPE = 0
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	s.Kernel().SetInlineDispatch(inline)
	pe := s.pe(0)
	s.k.Spawn("oltp-driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			s.runOLTP(p, pe, s.k.Now())
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.k.RunAll()
}

func BenchmarkOLTPTransaction(b *testing.B)       { benchOLTP(b, true) }
func BenchmarkOLTPTransactionParked(b *testing.B) { benchOLTP(b, false) }

// benchOLTPSpawned measures the arrival-loop shape — one process spawned
// per transaction, exactly what startWorkload's open OLTP loop does — so
// process birth is part of ns/op. With pooling the spawn hands the body to
// a parked worker; the Unpooled variant pays a fresh goroutine, Proc and
// resume channel per transaction (the pre-pool behavior).
func benchOLTPSpawned(b *testing.B, pooled bool) {
	cfg := config.Default()
	cfg.NPE = 2
	cfg.JoinQPSPerPE = 0
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	s.Kernel().SetSpawnPooling(pooled)
	pe := s.pe(0)
	done := sim.NewChan[int](s.k, "done")
	runTxn := func(tp *sim.Proc) {
		s.runOLTP(tp, pe, tp.Now())
		done.Put(1)
	}
	s.k.Spawn("oltp-driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			s.k.Spawn("oltp-txn", runTxn)
			done.Get(p)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.k.RunAll()
	b.StopTimer()
	s.k.Shutdown()
}

func BenchmarkOLTPSpawned(b *testing.B)         { benchOLTPSpawned(b, true) }
func BenchmarkOLTPSpawnedUnpooled(b *testing.B) { benchOLTPSpawned(b, false) }

// benchScanQuery measures one full standalone clustered scan query:
// coordinator, fragment scans (sequential page reads with prefetch,
// per-page tuple processing, result packets over the network) and the
// read-only commit round.
func benchScanQuery(b *testing.B, inline bool) {
	cfg := config.Default()
	cfg.NPE = 2
	cfg.JoinQPSPerPE = 0
	s := MustNew(cfg, core.MustByName("psu-opt+RANDOM"))
	s.Kernel().SetInlineDispatch(inline)
	class := config.ScanClass{Name: "bench", Selectivity: 0.01, Clustered: true}
	s.k.Spawn("scan-driver", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			s.runScanQuery(p, 0, class, s.k.Now())
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.k.RunAll()
}

func BenchmarkScanQuery(b *testing.B)       { benchScanQuery(b, true) }
func BenchmarkScanQueryParked(b *testing.B) { benchScanQuery(b, false) }
