package engine

import (
	"reflect"
	"testing"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// faultCfg is quickCfg with enough load that work is in flight when a
// mid-run fault strikes.
func faultCfg() config.Config {
	cfg := quickCfg()
	cfg.JoinQPSPerPE = 0.3
	return cfg
}

// mustFaults parses a fault plan spec or fails the test.
func mustFaults(t *testing.T, spec string) config.FaultPlan {
	t.Helper()
	p, err := config.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFaultDeterminism: every fault kind replays bit-identically — two runs
// of the same faulted configuration agree on every counter, including the
// abort/retry bookkeeping the fault layer adds.
func TestFaultDeterminism(t *testing.T) {
	for _, spec := range []string{
		"crash(pe=3,at=2s,down=3s)",
		"slowdisk(pe=2,at=1s,for=4s,factor=6)",
		"straggler(pe=1,at=1s,for=0s,factor=3)",
		"crash(pe=4,at=2s,down=2s);slowdisk(pe=2,at=1s,for=4s,factor=4);straggler(pe=1,at=3s,factor=2)",
	} {
		t.Run(spec, func(t *testing.T) {
			cfg := faultCfg()
			cfg.Faults = mustFaults(t, spec)
			run := func() Results {
				return MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("faulted runs diverged:\n%+v\n%+v", a, b)
			}
			if a.FaultSpec != cfg.Faults.String() {
				t.Errorf("FaultSpec %q, want %q", a.FaultSpec, cfg.Faults.String())
			}
		})
	}
}

// TestEmptyPlanIdenticalToNone: a config carrying an explicitly empty
// FaultPlan takes the exact fault-free code path — results deep-equal a run
// without any plan, and no fault fields leak into the output.
func TestEmptyPlanIdenticalToNone(t *testing.T) {
	cfg := faultCfg()
	plain := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	cfg.Faults = config.FaultPlan{}
	empty := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	if !reflect.DeepEqual(plain, empty) {
		t.Fatalf("empty plan changed results:\n%+v\n%+v", plain, empty)
	}
	if plain.FaultSpec != "" || plain.Aborts != 0 || plain.Availability != 0 {
		t.Errorf("fault fields set on a fault-free run: %+v", plain)
	}
}

// TestCrashAbortsAndRecovers: a mid-run crash aborts the work in flight on
// the dead PE (availability dips below 1, retries land), yet the system
// keeps completing joins — the retry path re-enters the normal arrival flow
// and the recovered PE rejoins. The failure-blind static selection keeps
// placing work on the dead PE, so it reliably exercises the abort path.
func TestCrashAbortsAndRecovers(t *testing.T) {
	cfg := faultCfg()
	cfg.Faults = mustFaults(t, "crash(pe=3,at=2s,down=3s)")
	res := MustNew(cfg, core.MustByName("psu-opt+RANDOM")).Run()
	if res.JoinsDone == 0 {
		t.Fatal("no joins completed through the crash")
	}
	if res.Aborts == 0 || res.Retries == 0 {
		t.Fatalf("crash with work in flight caused %d aborts, %d retries; want > 0", res.Aborts, res.Retries)
	}
	if !(res.Availability > 0 && res.Availability < 1) {
		t.Fatalf("availability %v, want in (0, 1) under a crash", res.Availability)
	}
}

// TestCrashShedsLoadFromDeadPE: while a PE is down the control layer marks
// it unavailable, so a failure-aware dynamic strategy completes measurably
// more of its offered work than the failure-blind static selection on the
// identical seed.
func TestCrashShedsLoadFromDeadPE(t *testing.T) {
	cfg := faultCfg()
	cfg.Faults = mustFaults(t, "crash(pe=3,at=2s,down=5s)")
	dynamic := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	static := MustNew(cfg, core.MustByName("psu-opt+RANDOM")).Run()
	if dynamic.Availability <= static.Availability {
		t.Errorf("dynamic availability %.4f not above static %.4f under crash",
			dynamic.Availability, static.Availability)
	}
	if dynamic.Aborts >= static.Aborts {
		t.Errorf("dynamic aborts %d not below static %d: dead-PE work not shed",
			dynamic.Aborts, static.Aborts)
	}
}

// TestDegradationStretchesResponseTime: slowdisk and straggler faults slow
// the afflicted PE's service without aborting anything, so response time
// rises against the fault-free baseline on the same seed. Measured at the
// light quickCfg load, where the comparison is not confounded by saturation
// (an overloaded run completes only its fastest queries, which can drag the
// mean of the degraded run below the baseline's).
func TestDegradationStretchesResponseTime(t *testing.T) {
	base := quickCfg()
	clean := MustNew(base, core.MustByName("psu-opt+RANDOM")).Run()
	for _, spec := range []string{
		"slowdisk(pe=2,at=0s,for=0s,factor=8)",
		"straggler(pe=2,at=0s,for=0s,factor=8)",
	} {
		cfg := base
		cfg.Faults = mustFaults(t, spec)
		res := MustNew(cfg, core.MustByName("psu-opt+RANDOM")).Run()
		if res.JoinRT.MeanMS <= clean.JoinRT.MeanMS {
			t.Errorf("%s: mean RT %.2fms not above fault-free %.2fms", spec, res.JoinRT.MeanMS, clean.JoinRT.MeanMS)
		}
		if res.Aborts != 0 {
			t.Errorf("%s: degradation aborted %d attempts; only crashes abort", spec, res.Aborts)
		}
		if res.Availability != 1 {
			t.Errorf("%s: availability %v, want 1 without aborts", spec, res.Availability)
		}
	}
}

// TestFaultWindowsCarrySeries: a windowed faulted run fills the per-window
// abort and availability series, and the abort total matches the windows'.
func TestFaultWindowsCarrySeries(t *testing.T) {
	cfg := faultCfg()
	cfg.MetricsWindow = sim.Second
	cfg.Faults = mustFaults(t, "crash(pe=3,at=2s,down=3s)")
	res := MustNew(cfg, core.MustByName("OPT-IO-CPU")).Run()
	if len(res.Windows) == 0 {
		t.Fatal("no windows collected")
	}
	sum := 0
	for _, w := range res.Windows {
		sum += w.Aborts
	}
	if int64(sum) != res.Aborts {
		t.Errorf("window aborts sum %d != total %d", sum, res.Aborts)
	}
	for i, w := range res.Windows {
		if w.Availability < 0 || w.Availability > 1 {
			t.Errorf("window %d availability %v outside [0,1]", i, w.Availability)
		}
	}
}
