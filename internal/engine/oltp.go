package engine

import (
	"fmt"

	"dynlb/internal/buffer"
	"dynlb/internal/disk"
	"dynlb/internal/lock"
	"dynlb/internal/sim"
)

const bufferQueryPriority = buffer.PriorityQuery

func pageID(space, page int64) disk.PageID { return disk.PageID{Space: space, Page: page} }

// acctSpaceFor returns the storage-space id of pe's account relation.
func acctSpaceFor(pe int) int64 { return spaceOLTPBase - 2*int64(pe) }

// maxOLTPRetries bounds deadlock-abort retries.
const maxOLTPRetries = 3

// scratchPagesPerTxn is each transaction's pinned private workspace.
const scratchPagesPerTxn = 2

// runOLTP executes one debit-credit-style transaction on its home PE: four
// non-clustered index selects on the local account relation with updates of
// the selected tuples, strict 2PL, a forced log write at commit, and pages
// pinned until commit (the transaction's memory footprint). OLTP has
// priority over join working spaces in the buffer (Section 4, footnote 4).
func (s *System) runOLTP(p *sim.Proc, pe *PE, arrival sim.Time) {
	pe.mpl.Get(p, 1)
	defer pe.mpl.Put(1)

	o := &s.cfg.OLTP
	c := &s.cfg
	ct := &s.ct
	acct := acctSpaceFor(pe.id)

	// Fault retries (fAttempt) are counted separately from deadlock retries
	// (attempt): a crashed home PE is not the transaction's fault, so it
	// backs off and resubmits without consuming the deadlock budget. OLTP
	// has node affinity — the account fragment lives on the home PE — so it
	// keeps retrying until the PE recovers.
	fAttempt := 0
	for attempt := 0; attempt <= maxOLTPRetries; {
		if s.faults != nil && !s.faults.hostUp(pe.id) {
			s.faults.noteAbort()
			p.Wait(retryBackoff(fAttempt))
			s.faults.noteRetry()
			fAttempt++
			continue
		}
		txnStart := s.k.Now()
		txn := s.newTxnID()
		pe.computeT(p, ct.initTxn)

		var pinned []disk.PageID
		unpin := func() {
			for _, pg := range pinned {
				pe.buf.Unfix(pg)
			}
			pinned = nil
		}

		// Private workspace (log buffer, update workspace) reserved for the
		// transaction's duration: the OLTP memory footprint the control
		// node's AVAIL-MEMORY sees. High priority: taken ahead of queued
		// join reservations, stealing join frames if necessary.
		scratch := pe.buf.NewSpace(fmt.Sprintf("pe%d/oltp%d", pe.id, txn), buffer.PriorityOLTP, 0)
		scratch.AcquireBestEffort(p, scratchPagesPerTxn)

		aborted := false
		faultAborted := false
		for i := 0; i < o.AccessesPerTx && !aborted; i++ {
			if s.faults != nil && s.faults.failedSince(pe.id, txnStart) {
				faultAborted = true
				break
			}
			var page int64
			if s.rng.Float64() < o.HotAccessProb {
				page = s.rng.Int63n(o.HotSetPages)
			} else {
				page = o.HotSetPages + s.rng.Int63n(o.AccountPages-o.HotSetPages)
			}
			// Non-clustered index traversal: the account index is hot and
			// memory resident (three levels of key comparisons, CPU only).
			pe.computeT(p, ct.oltpIndex)

			// Long write lock on the selected tuple.
			tuple := page*int64(c.Blocking) + s.rng.Int63n(int64(c.Blocking))
			if err := pe.locks.Lock(p, txn, lock.Key{Space: acct, Item: tuple}, lock.Exclusive); err != nil {
				aborted = true
				break
			}
			dataPg := pageID(acct, page)
			pe.buf.Fix(p, dataPg, true, false, buffer.PriorityOLTP)
			pinned = append(pinned, dataPg)
			pe.computeT(p, ct.tupleRW)
		}

		if faultAborted {
			// The home PE crashed mid-transaction: the work is lost. Clean
			// up (pure bookkeeping — no CPU is charged on a dead PE), back
			// off and resubmit once the retry timer fires.
			unpin()
			scratch.Close()
			pe.locks.ReleaseAll(txn)
			s.faults.noteAbort()
			p.Wait(retryBackoff(fAttempt))
			s.faults.noteRetry()
			fAttempt++
			continue
		}
		if aborted {
			s.aborts++
			unpin()
			scratch.Close()
			pe.locks.ReleaseAll(txn)
			pe.computeT(p, ct.termTxnHalf)
			attempt++
			continue // retry
		}

		// Commit: force the log, then release everything.
		pe.computeT(p, ct.termTxn)
		pe.computeT(p, ct.io)
		pe.logDisk.Write(p, 0, pageID(-int64(pe.id)-1, s.nextQuery+int64(s.oltpStarted)))
		unpin()
		scratch.Close()
		pe.locks.ReleaseAll(txn)

		if s.measuring {
			s.oltpStarted++
			s.oltpRT.Add((s.k.Now() - arrival).Milliseconds())
		}
		return
	}
	// Retries exhausted: give up (counted in aborts).
}
