package engine

import (
	"time"

	"dynlb/internal/config"
	"dynlb/internal/retry"
	"dynlb/internal/sim"
)

// Fault injection. The plan's faults are scheduled as plain kernel events
// that flip per-PE state and notify the control node (an ideal, zero-latency
// failure detector), so a faulted run is an ordinary deterministic
// simulation: bit-identical per seed at any worker parallelism.
//
// Failure semantics follow a "dying participants still report" protocol:
// work in flight on a crashed PE stops doing real work (no CPU, no disk, no
// data) but the failure detector still synthesizes the end-of-phase control
// messages its coordinator is counting, so no protocol loop ever hangs and
// every deferred resource release runs. The coordinator then notices the
// failure at its next phase checkpoint, aborts the attempt (releasing locks
// and the placement reservation) and retries with capped exponential
// backoff through the normal decision path. Crashed fragments are served by
// the next live PE (chained-declustering buddy), so queries that avoid the
// dead PE complete during the outage.
//
// s.faults is nil when Config.Faults is empty; every check below sits
// behind that nil guard, so fault-free runs take exactly the original code
// path (golden-verified).

// faultState tracks injected failures at run time.
type faultState struct {
	s       *System
	down    []bool
	crashAt []sim.Time // last crash instant per PE (-1 = never crashed)

	cpuFactor  []float64 // current straggler factor per PE (1 = normal)
	diskFactor []float64 // current disk slowdown per PE (1 = normal)

	aborts    int64 // fault-aborted attempts inside the measurement window
	retries   int64 // retries issued inside the measurement window
	winAborts int   // aborts in the current metrics window (reset per window)
}

func newFaultState(s *System) *faultState {
	n := s.cfg.NPE
	fs := &faultState{
		s:          s,
		down:       make([]bool, n),
		crashAt:    make([]sim.Time, n),
		cpuFactor:  make([]float64, n),
		diskFactor: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		fs.crashAt[i] = -1
		fs.cpuFactor[i] = 1
		fs.diskFactor[i] = 1
	}
	return fs
}

// schedule registers the plan's failure and recovery events. Fault times
// are measured from the measurement start (like LoadProfile time), so a
// crash at at=20s lands 20 s into the metrics windows.
func (fs *faultState) schedule() {
	w := fs.s.cfg.Warmup
	for _, f := range fs.s.cfg.Faults.Faults {
		f := f
		at := w + f.At
		switch f.Kind {
		case config.FaultCrash:
			fs.s.k.At(at, func() { fs.crash(f.PE) })
			if f.Down > 0 {
				fs.s.k.At(at+f.Down, func() { fs.recoverPE(f.PE) })
			}
		case config.FaultSlowDisk:
			fs.s.k.At(at, func() { fs.setDiskFactor(f.PE, f.Factor) })
			if f.For > 0 {
				fs.s.k.At(at+f.For, func() { fs.setDiskFactor(f.PE, 1) })
			}
		case config.FaultStraggler:
			fs.s.k.At(at, func() { fs.setCPUFactor(f.PE, f.Factor) })
			if f.For > 0 {
				fs.s.k.At(at+f.For, func() { fs.setCPUFactor(f.PE, 1) })
			}
		}
	}
}

func (fs *faultState) crash(pe int) {
	fs.down[pe] = true
	fs.crashAt[pe] = fs.s.k.Now()
	fs.updateHealth(pe)
}

func (fs *faultState) recoverPE(pe int) {
	fs.down[pe] = false
	fs.updateHealth(pe)
}

func (fs *faultState) setDiskFactor(pe int, f float64) {
	fs.diskFactor[pe] = f
	fs.s.pes[pe].disks.SetSlowdown(f)
	fs.updateHealth(pe)
}

func (fs *faultState) setCPUFactor(pe int, f float64) {
	fs.cpuFactor[pe] = f
	fs.s.pes[pe].cpuSlow = f
	fs.updateHealth(pe)
}

// updateHealth pushes the PE's current health to the control node: 0 down,
// 1/worst-degradation-factor degraded, 1 healthy. Overlapping degradations
// of the same kind on one PE are not tracked separately — the most recent
// event wins.
func (fs *faultState) updateHealth(pe int) {
	h := 1.0
	worst := fs.cpuFactor[pe]
	if fs.diskFactor[pe] > worst {
		worst = fs.diskFactor[pe]
	}
	if worst > 1 {
		h = 1 / worst
	}
	if fs.down[pe] {
		h = 0
	}
	fs.s.ctrl.SetHealth(pe, h)
}

// hostUp reports whether pe is currently up.
func (fs *faultState) hostUp(pe int) bool { return !fs.down[pe] }

// failedSince reports whether pe is down now or has crashed at or after
// start — work begun at start on pe is lost either way.
func (fs *faultState) failedSince(pe int, start sim.Time) bool {
	return fs.down[pe] || fs.crashAt[pe] >= start
}

// liveHost returns pe if it is up, else the next live PE in id order (the
// chained-declustering buddy holding the fragment's replica). PE 0 hosts
// the control node and can never crash, so the search always terminates.
func (fs *faultState) liveHost(pe int) int {
	for fs.down[pe] {
		pe = (pe + 1) % len(fs.down)
	}
	return pe
}

// liveHosts maps every PE of ids to its live host, in place.
func (fs *faultState) liveHosts(ids []int) []int {
	for i, pe := range ids {
		ids[i] = fs.liveHost(pe)
	}
	return ids
}

// noteAbort counts one fault-aborted attempt (measurement-gated).
func (fs *faultState) noteAbort() {
	if fs.s.measuring {
		fs.aborts++
		fs.winAborts++
	}
}

// noteRetry counts one retry actually issued after backoff.
func (fs *faultState) noteRetry() {
	if fs.s.measuring {
		fs.retries++
	}
}

// faultRetry is the engine's retry policy: 100 ms doubling up to 3.2 s,
// the schedule the failover goldens are pinned to (retry.TestDelayMatchesEngineTable).
var faultRetry = retry.Backoff{Base: 100 * time.Millisecond, Cap: 3200 * time.Millisecond}

// retryBackoff returns the capped exponential backoff before retry n
// (0-based). Deterministic — no jitter — so the retry stream replays
// bit-identically and the fault-free rng sequence is never touched. Both
// retry delays and sim durations are integer nanoseconds, so the
// conversion is exact.
func retryBackoff(attempt int) sim.Duration {
	return sim.Duration(faultRetry.Delay(attempt))
}

// availability is completed attempts over all attempts. Both zero (nothing
// ran) counts as fully available.
func availability(completed, aborted int64) float64 {
	if completed+aborted == 0 {
		return 1
	}
	return float64(completed) / float64(completed+aborted)
}
