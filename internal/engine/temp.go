package engine

import (
	"dynlb/internal/disk"
	"dynlb/internal/sim"
)

// tempFile is a sequential temporary file (PPHJ partition spills) on one of
// a PE's disks. Writes are buffered into prefetch-sized runs so a partition
// flush costs one arm operation per run, matching the paper's prefetching
// on temporary files; reads walk the file sequentially and benefit from the
// controller cache for recently written pages.
type tempFile struct {
	pe          *PE
	space       int64
	dsk         int
	writeCursor int64 // pages durably written
	readCursor  int64
	pending     int // buffered pages not yet flushed
}

// newTemp creates a temporary file on the PE's least recently assigned
// temp disk (stable hash of the space id).
func (pe *PE) newTemp() *tempFile {
	space := pe.sys.newSpace()
	return &tempFile{
		pe:    pe,
		space: space,
		dsk:   pe.disks.DiskFor(space),
	}
}

// write appends pages, flushing full runs. The calling process pays the
// I/O CPU overhead and waits for the flushed runs.
func (tf *tempFile) write(p *sim.Proc, pages int64) {
	if pages <= 0 {
		return
	}
	tf.pending += int(pages)
	run := tf.pe.sys.cfg.Disk.Prefetch
	for tf.pending >= run {
		tf.flushRun(p, run)
	}
}

// flush forces out any buffered pages.
func (tf *tempFile) flush(p *sim.Proc) {
	if tf.pending > 0 {
		tf.flushRun(p, tf.pending)
	}
}

func (tf *tempFile) flushRun(p *sim.Proc, n int) {
	tf.pe.computeT(p, tf.pe.sys.ct.io)
	tf.pe.disks.WriteRun(p, tf.dsk, disk.PageID{Space: tf.space, Page: tf.writeCursor}, n)
	tf.writeCursor += int64(n)
	tf.pending -= n
	tf.pe.sys.tempIOPages += int64(n)
}

// writeAsync flushes pages in a background process (partition flush forced
// by a frame steal: the stealer should not wait for the full partition
// write, only the join's future reads depend on it).
func (tf *tempFile) writeAsync(pages int64) {
	if pages <= 0 {
		return
	}
	tf.pending += int(pages)
	n := tf.pending
	tf.pending = 0
	start := tf.writeCursor
	tf.writeCursor += int64(n)
	tf.pe.sys.tempIOPages += int64(n)
	s := tf.pe.sys
	s.k.Spawn("temp-flush", func(p *sim.Proc) {
		run := s.cfg.Disk.Prefetch
		for off := 0; off < n; off += run {
			m := run
			if n-off < m {
				m = n - off
			}
			tf.pe.computeT(p, s.ct.io)
			tf.pe.disks.WriteRun(p, tf.dsk, disk.PageID{Space: tf.space, Page: start + int64(off)}, m)
		}
	})
}

// read walks pages sequentially from the read cursor, charging I/O CPU per
// physical access. Pages not yet durably written (still pending or in
// flight) are served as cache hits — they are in the controller cache or
// still in a write buffer.
func (tf *tempFile) read(p *sim.Proc, pages int64) {
	s := tf.pe.sys
	for i := int64(0); i < pages; i++ {
		pg := disk.PageID{Space: tf.space, Page: tf.readCursor}
		tf.readCursor++
		if tf.readCursor > tf.writeCursor {
			// Reading buffered, never-written pages: memory access only.
			continue
		}
		hit := tf.pe.disks.Read(p, tf.dsk, pg, true)
		if !hit {
			tf.pe.computeT(p, s.ct.io)
		}
		s.tempIOPages++
	}
}

// resetRead rewinds the read cursor (each deferred partition pass walks its
// own region; sequential approximation).
func (tf *tempFile) resetRead() { tf.readCursor = 0 }
