package engine

import (
	"dynlb/internal/sim"
	"dynlb/internal/stats"
)

// Window is one fixed-width slice of the measurement interval: the join
// response-time distribution of the queries that *completed* inside it,
// their throughput, and the mean CPU/disk/memory utilization across PEs
// over exactly the slice. Start/End are relative to the measurement start,
// matching LoadProfile time, so a burst configured at profile time t shows
// up in the windows covering t.
type Window struct {
	StartMS  float64 `json:"start_ms"`
	EndMS    float64 `json:"end_ms"`
	Joins    int     `json:"joins"`      // join completions in the window
	RTMeanMS float64 `json:"rt_mean_ms"` // mean join response time (0 if no completions)
	RTP95MS  float64 `json:"rt_p95_ms"`
	JoinTPS  float64 `json:"join_tps"`
	CPUUtil  float64 `json:"cpu_util"`
	DiskUtil float64 `json:"disk_util"`
	MemUtil  float64 `json:"mem_util"`

	// Fault-injection series, populated only when Config.Faults was
	// non-empty (omitted otherwise so fault-free serialization is
	// unchanged): attempts aborted by injected failures inside the window,
	// and the window's availability Joins/(Joins+Aborts) (1 when idle).
	Aborts       int     `json:"aborts,omitempty"`
	Availability float64 `json:"availability,omitempty"`
}

// windowState drives windowed metric collection: a boundary event fires
// every width, closing the current window against per-PE busy/used-integral
// snapshots taken at its start. One scratch Sample is reused across all
// windows (Reset per close), so the steady-state cost of collection is one
// event per window plus one float append per join completion.
type windowState struct {
	s     *System
	width sim.Duration
	start sim.Time // current window start (absolute simulation time)
	rt    *stats.Sample
	cpu0  []float64
	disk0 []float64
	mem0  []float64
	out   []Window
}

// newWindowState starts collection at the current instant (the measurement
// start) and schedules the first boundary.
func newWindowState(s *System, width sim.Duration) *windowState {
	w := &windowState{
		s:     s,
		width: width,
		start: s.k.Now(),
		rt:    stats.NewSample("win-rt-ms"),
		cpu0:  make([]float64, len(s.pes)),
		disk0: make([]float64, len(s.pes)),
		mem0:  make([]float64, len(s.pes)),
	}
	w.snapshot()
	s.k.At(w.start+width, w.roll)
	return w
}

// addRT records one join completion into the current window.
func (w *windowState) addRT(ms float64) { w.rt.Add(ms) }

// roll closes the window ending now and schedules the next boundary. The
// kernel executes events exactly at the run horizon, so the final in-range
// boundary always fires; the next one lands past the horizon and never
// runs (Shutdown discards it).
func (w *windowState) roll() {
	w.close(w.s.k.Now())
	w.s.k.At(w.s.k.Now()+w.width, w.roll)
}

// close seals [w.start, end) into a Window and re-bases the snapshots.
func (w *windowState) close(end sim.Time) {
	s := w.s
	var cpu, dsk, mem float64
	for i, pe := range s.pes {
		cpu += pe.cpu.UtilizationSince(w.start, w.cpu0[i])
		dsk += pe.disks.UtilizationSince(w.start, w.disk0[i])
		mem += pe.buf.MeanUtilization(w.start, w.mem0[i])
	}
	n := float64(len(s.pes))
	win := Window{
		StartMS:  (w.start - s.measureFrom).Milliseconds(),
		EndMS:    (end - s.measureFrom).Milliseconds(),
		Joins:    w.rt.N(),
		RTMeanMS: w.rt.Mean(),
		RTP95MS:  w.rt.Percentile(95),
		JoinTPS:  float64(w.rt.N()) / (end - w.start).Seconds(),
		CPUUtil:  cpu / n,
		DiskUtil: dsk / n,
		MemUtil:  mem / n,
	}
	if s.faults != nil {
		win.Aborts = s.faults.winAborts
		s.faults.winAborts = 0
		win.Availability = availability(int64(win.Joins), int64(win.Aborts))
	}
	w.out = append(w.out, win)
	w.rt.Reset()
	w.start = end
	w.snapshot()
}

// snapshot re-bases the per-PE integral baselines at the current instant.
func (w *windowState) snapshot() {
	for i, pe := range w.s.pes {
		w.cpu0[i] = pe.cpu.BusyIntegral()
		w.disk0[i] = pe.disks.BusyIntegral()
		w.mem0[i] = pe.buf.UsedIntegral()
	}
}

// finish closes the trailing partial window (when the horizon is not a
// multiple of the width) and returns the series. A boundary that fired
// exactly at the horizon leaves a zero-width current window, which is
// dropped — its utilization integral is empty and its throughput undefined.
func (w *windowState) finish(now sim.Time) []Window {
	if now > w.start {
		w.close(now)
	}
	return w.out
}

// transientMetrics derives the burst-response summary from a window series.
//
// peakRT is the largest per-window mean response time over windows with at
// least one completion. recoveryMS is the time from the end of the peak
// window to the start of the first later window whose mean response time is
// back within 10% of the pre-peak baseline — the completion-weighted mean
// RT of the windows before the peak. Windows without completions carry no
// response-time information and are skipped on both sides. Conventions:
// recovery is 0 when the series has no completions at all or no pre-peak
// baseline exists (the disturbance spans the whole run, so there is nothing
// to recover to), and −1 when the system never returns to within 10% of
// baseline inside the measured horizon.
func transientMetrics(wins []Window) (peakRT, recoveryMS float64) {
	peak := -1
	for i, w := range wins {
		if w.Joins > 0 && (peak < 0 || w.RTMeanMS > peakRT) {
			peak, peakRT = i, w.RTMeanMS
		}
	}
	if peak < 0 {
		return 0, 0
	}
	var rtSum, joins float64
	for _, w := range wins[:peak] {
		rtSum += w.RTMeanMS * float64(w.Joins)
		joins += float64(w.Joins)
	}
	if joins == 0 {
		return peakRT, 0
	}
	base := rtSum / joins
	for _, w := range wins[peak+1:] {
		if w.Joins > 0 && w.RTMeanMS <= 1.1*base {
			return peakRT, w.StartMS - wins[peak].EndMS
		}
	}
	return peakRT, -1
}
