package engine

import (
	"fmt"

	"dynlb/internal/config"
	"dynlb/internal/sim"
)

// startReporters launches the periodic utilization reports every PE sends
// to the control node (Section 3: "a designated control node is
// periodically informed by the processors about their current utilization").
func (s *System) startReporters() {
	for _, pe := range s.pes {
		// Stagger first reports across the interval to avoid a thundering
		// herd at the control node.
		offset := sim.Duration(int64(pe.id)) * s.cfg.ReportInterval / sim.Duration(s.cfg.NPE)
		s.k.SpawnAt(offset, fmt.Sprintf("pe%d/reporter", pe.id), func(p *sim.Proc) {
			for {
				p.Wait(s.cfg.ReportInterval)
				u := pe.cpuSince()
				free := pe.buf.AvailNonQuery()
				peID := pe.id
				s.sendCtl(p, pe.id, s.ctrlPE, func() {
					// The control-node side only charges CPU and updates
					// the utilization table: run-to-completion, no process.
					s.k.SpawnFn(func() {
						s.recvCtlCPUFn(s.ctrlPE, func() {
							s.ctrl.Report(peID, u, free)
						})
					})
				})
			}
		})
	}
}

// startWorkload launches the arrival processes.
func (s *System) startWorkload() {
	c := &s.cfg
	// The per-arrival bodies below are hoisted out of the arrival loops and
	// shared across every spawn: the coordinator PE rides the process as its
	// SpawnArg scalar (the rng draw must stay in the arrival loop to keep
	// the global rng consumption order), and the arrival timestamp is
	// recovered as qp.Now() at body start — the start event fires at the
	// spawn instant, before the clock can advance. One closure per loop
	// instead of one per arrival.
	if c.JoinQPSPerPE > 0 {
		rate := c.JoinQPSPerPE * float64(c.NPE) // queries per second
		s.k.Spawn("join-arrivals", func(p *sim.Proc) {
			runQuery := func(qp *sim.Proc) {
				s.runJoinQuery(qp, int(qp.Arg()), qp.Now())
			}
			for {
				p.Wait(s.interarrival(rate))
				s.k.SpawnArg("join-coord", int64(s.rng.Intn(c.NPE)), runQuery)
			}
		})
	} else {
		// Single-user mode: a closed loop running one query at a time.
		s.k.Spawn("join-single-user", func(p *sim.Proc) {
			for {
				coord := s.rng.Intn(c.NPE)
				s.runJoinQuery(p, coord, s.k.Now())
			}
		})
	}
	for i := range c.ScanClasses {
		class := c.ScanClasses[i]
		rate := class.QPSPerPE * float64(c.NPE)
		s.k.Spawn(fmt.Sprintf("scanq-arrivals/%s", class.Name), func(p *sim.Proc) {
			runQuery := func(qp *sim.Proc) {
				s.runScanQuery(qp, int(qp.Arg()), class, qp.Now())
			}
			for {
				p.Wait(s.interarrival(rate))
				s.k.SpawnArg("scanq-coord", int64(s.rng.Intn(c.NPE)), runQuery)
			}
		})
	}
	for _, peID := range s.oltpNodes() {
		pe := s.pe(peID)
		s.k.Spawn(fmt.Sprintf("pe%d/oltp-arrivals", peID), func(p *sim.Proc) {
			runTxn := func(tp *sim.Proc) {
				s.runOLTP(tp, pe, tp.Now())
			}
			for {
				p.Wait(s.interarrival(s.cfg.OLTP.TPSPerNode))
				s.k.Spawn("oltp-txn", runTxn)
			}
		})
	}
}

// interarrival draws the next exponential interarrival delay of an open
// arrival stream with the given base rate, modulated by the load profile at
// the current instant (non-homogeneous Poisson by rate scaling: the
// multiplier stretches or compresses the draw, so every arrival consumes
// exactly one ExpFloat64 regardless of the profile and the rng consumption
// order stays identical across profile shapes). With a constant profile the
// expression reduces to the unmodulated draw, bit for bit. The single-user
// closed loop has no arrival process and is unaffected by profiles.
func (s *System) interarrival(rate float64) sim.Duration {
	draw := s.rng.ExpFloat64()
	if !s.profileConst {
		rate *= s.cfg.Profile.RateMult(s.k.Now() - s.cfg.Warmup)
	}
	return sim.FromSeconds(draw / rate)
}

// oltpNodes returns the PEs running the OLTP workload.
func (s *System) oltpNodes() []int {
	switch s.cfg.OLTP.Placement {
	case config.OLTPOnANode:
		return s.cfg.ANodes()
	case config.OLTPOnBNode:
		return s.cfg.BNodes()
	case config.OLTPOnAll:
		all := make([]int, s.cfg.NPE)
		for i := range all {
			all[i] = i
		}
		return all
	default:
		return nil
	}
}

// Run executes the configured workload: warm-up, then the measurement
// window, returning the aggregated results.
func (s *System) Run() Results {
	s.startReporters()
	s.detector.Start()
	s.startWorkload()
	if s.faults != nil {
		s.faults.schedule()
	}
	s.k.Run(s.cfg.Warmup)
	s.beginMeasurement()
	s.k.Run(s.cfg.Warmup + s.cfg.MeasureTime)
	s.detector.Stop()
	res := s.results()
	// Tear the process model down once the metrics are read: kill the live
	// processes and dismiss the worker pool, so a sweep of many Systems
	// does not accumulate one pool of parked goroutines per kernel.
	s.k.Shutdown()
	return res
}

// Summary condenses a response-time sample. The JSON tags give sweep
// exports (dynlb.WriteRowsJSON) stable snake_case keys.
type Summary struct {
	N      int     `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P95MS  float64 `json:"p95_ms"`
	HW95MS float64 `json:"hw95_ms"` // 95% confidence half-width of the mean
}

// Results are the windowed metrics of one run, the quantities the paper's
// figures report.
type Results struct {
	Strategy string `json:"strategy"`
	NPE      int    `json:"npe"`

	JoinRT Summary `json:"join_rt"`
	OLTPRT Summary `json:"oltp_rt"`
	ScanRT Summary `json:"scan_rt"` // standalone scan query classes, if configured

	AvgJoinDegree float64 `json:"avg_join_degree"`  // achieved degree of join parallelism
	MeanMemWaitMS float64 `json:"mean_mem_wait_ms"` // memory-queue wait per join process

	CPUUtil  float64 `json:"cpu_util"` // mean over PEs in the window
	DiskUtil float64 `json:"disk_util"`
	MemUtil  float64 `json:"mem_util"`
	MaxCPU   float64 `json:"max_cpu"` // hottest PE

	TempIOPages int64   `json:"temp_io_pages"` // temporary-file pages in the window
	MemWaits    int64   `json:"mem_waits"`     // buffer memory-queue entries (whole run)
	MemSteals   int64   `json:"mem_steals"`    // frame steals from working spaces (whole run)
	StolenPages int64   `json:"stolen_pages"`
	JoinsDone   int64   `json:"joins_done"`
	OLTPDone    int64   `json:"oltp_done"`
	OLTPAborts  int64   `json:"oltp_aborts"` // deadlock-victim aborts (retried)
	JoinTPS     float64 `json:"join_tps"`
	OLTPTPS     float64 `json:"oltp_tps"`
	Deadlocks   int64   `json:"deadlocks"`
	PsuOpt      int     `json:"psu_opt"`
	PsuNoIO     int     `json:"psu_no_io"`

	// Windowed transient metrics, present only when Config.MetricsWindow
	// was set (nil/zero otherwise, so steady-state serialization is
	// unchanged). Windows slices the measurement interval into
	// WindowMS-wide pieces; PeakWindowRTMS is the largest per-window mean
	// response time, and RecoveryMS the time from the peak window's end
	// until the mean response time returns to within 10% of the pre-peak
	// baseline (0 without a pre-peak baseline, −1 when it never recovers
	// inside the horizon — see transientMetrics).
	Windows        []Window `json:"windows,omitempty"`
	WindowMS       float64  `json:"window_ms,omitempty"`
	PeakWindowRTMS float64  `json:"peak_window_rt_ms,omitempty"`
	RecoveryMS     float64  `json:"recovery_ms,omitempty"`

	// Fault-injection metrics, present only when Config.Faults was
	// non-empty (zero values otherwise, so fault-free serialization is
	// unchanged). Aborts counts attempts lost to injected failures (distinct
	// from deadlock-victim OLTPAborts), Retries the backoff re-submissions,
	// and Availability the fraction of attempts that completed:
	// completed / (completed + Aborts).
	FaultSpec    string  `json:"fault_spec,omitempty"`
	Aborts       int64   `json:"aborts,omitempty"`
	Retries      int64   `json:"retries,omitempty"`
	Availability float64 `json:"availability,omitempty"`
}

func (s *System) results() Results {
	window := s.k.Now() - s.measureFrom
	res := Results{
		Strategy:    s.strategy.Name(),
		NPE:         s.cfg.NPE,
		TempIOPages: s.tempIOPages - s.tempIO0,
		JoinsDone:   int64(s.joinRT.N()),
		OLTPDone:    int64(s.oltpRT.N()),
		Deadlocks:   s.detector.Victims(),
		OLTPAborts:  s.aborts,
		PsuOpt:      s.qinfo.PsuOpt,
		PsuNoIO:     s.qinfo.PsuNoIO,
	}
	res.JoinRT = Summary{
		N:      s.joinRT.N(),
		MeanMS: s.joinRT.Mean(),
		P95MS:  s.joinRT.Percentile(95),
		HW95MS: s.joinRT.HalfWidth95(),
	}
	res.OLTPRT = Summary{
		N:      s.oltpRT.N(),
		MeanMS: s.oltpRT.Mean(),
		P95MS:  s.oltpRT.Percentile(95),
		HW95MS: s.oltpRT.HalfWidth95(),
	}
	res.ScanRT = Summary{
		N:      s.scanRT.N(),
		MeanMS: s.scanRT.Mean(),
		P95MS:  s.scanRT.Percentile(95),
		HW95MS: s.scanRT.HalfWidth95(),
	}
	res.AvgJoinDegree = s.degrees.Mean()
	res.MeanMemWaitMS = s.memWaitMS.Mean()
	if window > 0 {
		secs := window.Seconds()
		res.JoinTPS = float64(res.JoinsDone) / secs
		res.OLTPTPS = float64(res.OLTPDone) / secs
		var cpu, dsk, mem, maxCPU float64
		for i, pe := range s.pes {
			u := pe.cpu.UtilizationSince(s.measureFrom, s.cpuBusy0[i])
			cpu += u
			if u > maxCPU {
				maxCPU = u
			}
			dsk += pe.disks.UtilizationSince(s.measureFrom, s.diskBusy0[i])
			mem += pe.buf.MeanUtilization(s.measureFrom, s.memUsed0[i])
		}
		n := float64(len(s.pes))
		res.CPUUtil, res.DiskUtil, res.MemUtil, res.MaxCPU = cpu/n, dsk/n, mem/n, maxCPU
	}
	for _, pe := range s.pes {
		res.MemWaits += pe.buf.Waits()
		res.MemSteals += pe.buf.Steals()
		res.StolenPages += pe.buf.StolenPages()
	}
	if s.win != nil {
		res.Windows = s.win.finish(s.k.Now())
		res.WindowMS = s.win.width.Milliseconds()
		res.PeakWindowRTMS, res.RecoveryMS = transientMetrics(res.Windows)
	}
	if s.faults != nil {
		res.FaultSpec = s.cfg.Faults.String()
		res.Aborts = s.faults.aborts
		res.Retries = s.faults.retries
		completed := res.JoinsDone + res.OLTPDone + int64(s.scanRT.N())
		res.Availability = availability(completed, s.faults.aborts)
	}
	return res
}

// String renders a one-line report.
func (r Results) String() string {
	return fmt.Sprintf(
		"%-16s n=%-3d joinRT=%7.0fms (n=%d ±%.0f) deg=%4.1f cpu=%3.0f%% disk=%3.0f%% mem=%3.0f%% tempIO=%d oltpRT=%5.1fms (n=%d)",
		r.Strategy, r.NPE, r.JoinRT.MeanMS, r.JoinRT.N, r.JoinRT.HW95MS, r.AvgJoinDegree,
		100*r.CPUUtil, 100*r.DiskUtil, 100*r.MemUtil, r.TempIOPages, r.OLTPRT.MeanMS, r.OLTPRT.N)
}
