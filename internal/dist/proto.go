package dist

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"

	"dynlb"
)

// Wire protocol between coordinator and workers. One POST /v1/jobs request
// carries a batch of jobs (a slot-aligned range of the plan); the response
// carries one wireResult per job, in any order (matched by ID).
//
// A job travels as its exact simulation inputs: the fully resolved Config
// and the strategy's wire name. Jobs are pure functions of that pair, so
// any worker — or the coordinator itself, when falling back locally —
// computes bit-identical Results.

// wireJob is one physical simulation job.
type wireJob struct {
	// ID is the job's index in the coordinator's plan, echoed back with the
	// result.
	ID int `json:"id"`
	// Config is the fully resolved simulation configuration (base config,
	// axis values, scale, replicate seed all applied by the coordinator's
	// planner).
	Config dynlb.Config `json:"config"`
	// Strategy is the strategy's wire name, reconstructed on the worker via
	// dynlb.StrategyByName.
	Strategy string `json:"strategy"`
}

// runRequest is the body of POST /v1/jobs.
type runRequest struct {
	Jobs []wireJob `json:"jobs"`
}

// wireResult carries one job's outcome.
type wireResult struct {
	ID int `json:"id"`
	// Err is the job's simulation error, if any. Exactly one of Err and
	// Results is meaningful.
	Err string `json:"err,omitempty"`
	// Results is the encoded dynlb.Results. encoding/json round-trips
	// float64 exactly (shortest-form encoding), so this is lossless except
	// for non-finite values, which JSON cannot represent at all —
	// those are carried by NonFinite instead.
	Results json.RawMessage `json:"results,omitempty"`
	// NonFinite patches NaN/±Inf float64 values back into Results after
	// decoding: each entry names a position in the deterministic float64
	// walk order of the Results value (walkFloat64s) and the value to
	// restore there. The corresponding position in Results is encoded as 0.
	NonFinite []nonFinite `json:"non_finite,omitempty"`
}

// runResponse is the body of a successful POST /v1/jobs reply.
type runResponse struct {
	Results []wireResult `json:"results"`
}

// nonFinite is one NaN/±Inf patch of a wireResult.
type nonFinite struct {
	Index int    `json:"i"` // position in walkFloat64s order
	Kind  string `json:"k"` // "nan", "+inf" or "-inf"
}

// walkFloat64s visits every float64 in v in a deterministic order — depth
// first, struct fields in declaration order, slice/array elements in index
// order — and calls fn with a running index and an addressable handle to
// each. v must be an addressable reflect.Value (pass the Elem of a
// pointer). Pointers and maps are not traversed; Results and its members
// contain neither, and the walk is only defined for such values.
func walkFloat64s(v reflect.Value, idx *int, fn func(i int, f reflect.Value)) {
	switch v.Kind() {
	case reflect.Float64:
		fn(*idx, v)
		*idx++
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			walkFloat64s(v.Field(i), idx, fn)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			walkFloat64s(v.Index(i), idx, fn)
		}
	}
}

// encodeResults encodes r losslessly: the common all-finite case is a
// plain json.Marshal; non-finite float64s (which JSON rejects) are zeroed
// in a scratch copy and carried as walk-order patches.
func encodeResults(r dynlb.Results) (json.RawMessage, []nonFinite, error) {
	dirty := false
	idx := 0
	walkFloat64s(reflect.ValueOf(&r).Elem(), &idx, func(_ int, f reflect.Value) {
		x := f.Float()
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dirty = true
		}
	})
	if dirty {
		// Scrub a deep copy — Windows is the only reference field.
		r.Windows = append([]dynlb.Window(nil), r.Windows...)
		var patches []nonFinite
		idx = 0
		walkFloat64s(reflect.ValueOf(&r).Elem(), &idx, func(i int, f reflect.Value) {
			x := f.Float()
			switch {
			case math.IsNaN(x):
				patches = append(patches, nonFinite{Index: i, Kind: "nan"})
			case math.IsInf(x, +1):
				patches = append(patches, nonFinite{Index: i, Kind: "+inf"})
			case math.IsInf(x, -1):
				patches = append(patches, nonFinite{Index: i, Kind: "-inf"})
			default:
				return
			}
			f.SetFloat(0)
		})
		raw, err := json.Marshal(r)
		return raw, patches, err
	}
	raw, err := json.Marshal(r)
	return raw, nil, err
}

// decodeResults reverses encodeResults.
func decodeResults(raw json.RawMessage, patches []nonFinite) (dynlb.Results, error) {
	var r dynlb.Results
	if err := json.Unmarshal(raw, &r); err != nil {
		return dynlb.Results{}, err
	}
	if len(patches) == 0 {
		return r, nil
	}
	byIndex := make(map[int]string, len(patches))
	for _, p := range patches {
		byIndex[p.Index] = p.Kind
	}
	applied := 0
	idx := 0
	walkFloat64s(reflect.ValueOf(&r).Elem(), &idx, func(i int, f reflect.Value) {
		kind, ok := byIndex[i]
		if !ok {
			return
		}
		applied++
		switch kind {
		case "nan":
			f.SetFloat(math.NaN())
		case "+inf":
			f.SetFloat(math.Inf(+1))
		case "-inf":
			f.SetFloat(math.Inf(-1))
		}
	})
	if applied != len(byIndex) {
		return dynlb.Results{}, fmt.Errorf("dist: %d non-finite patches out of range (walk has %d float64s)", len(byIndex)-applied, idx)
	}
	return r, nil
}

// portableStrategy reports whether st survives the wire: its Name() must
// reconstruct, via dynlb.StrategyByName, a strategy identical to st. All
// built-in strategies do; user-defined Strategy implementations generally
// do not, and their jobs are pinned to local execution.
func portableStrategy(st dynlb.Strategy) (string, bool) {
	name := st.Name()
	back, err := dynlb.StrategyByName(name)
	if err != nil {
		return name, false
	}
	return name, reflect.DeepEqual(st, back)
}

// encodeJob builds the wire form of plan job i, or reports that the job is
// not portable (non-round-trippable strategy, or a config JSON cannot
// carry, e.g. non-finite floats in user-set fields).
func encodeJob(p *dynlb.Plan, i int) (wireJob, bool) {
	cfg, st := p.Job(i)
	name, ok := portableStrategy(st)
	if !ok {
		return wireJob{}, false
	}
	if _, err := json.Marshal(cfg); err != nil {
		return wireJob{}, false
	}
	return wireJob{ID: i, Config: cfg, Strategy: name}, true
}
