package dist

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dynlb"
	"dynlb/internal/retry"
)

// tinySweep returns a small but non-trivial experiment: 2 strategies × 3
// sweep points × 2 replicates = 12 physical jobs across 6 slots.
func tinySweep() *dynlb.Experiment {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 8
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = dynlb.Seconds(1)
	cfg.MeasureTime = dynlb.Seconds(3)
	sweep := dynlb.Sweep{
		Name: "dist-test",
		Base: cfg,
		Strategies: []dynlb.Strategy{
			dynlb.MustStrategy("psu-opt+RANDOM"),
			dynlb.MustStrategy("MIN-IO-SUOPT"),
		},
		Axes: []dynlb.Axis{
			dynlb.IntAxis("#PE", func(c *dynlb.Config, n int) { c.NPE = n }, 4, 6, 8),
		},
	}
	return dynlb.NewExperiment(sweep, dynlb.WithReps(2))
}

func localRows(t *testing.T) []dynlb.Row {
	t.Helper()
	rows, err := tinySweep().Run(context.Background())
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return rows
}

func rowBytes(t *testing.T, rows []dynlb.Row) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dynlb.WriteRowsJSON(&buf, rows); err != nil {
		t.Fatalf("encode rows: %v", err)
	}
	return buf.Bytes()
}

// TestDistributedBitIdentical is the tentpole acceptance test: the same
// sweep through a coordinator with two live workers must produce rows
// byte-identical to plain local execution.
func TestDistributedBitIdentical(t *testing.T) {
	want := rowBytes(t, localRows(t))

	w1 := httptest.NewServer(NewWorker(2))
	defer w1.Close()
	w2 := httptest.NewServer(NewWorker(2))
	defer w2.Close()

	coord := New(Options{
		Workers:      []string{w1.URL, w2.URL},
		ChunkJobs:    2,
		DisableLocal: true, // prove the remote path ran
	})
	defer coord.Close()

	exp := tinySweep()
	dynlb.WithDistributed(coord)(exp)
	rows, err := exp.Run(context.Background())
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	if got := rowBytes(t, rows); !bytes.Equal(got, want) {
		t.Fatalf("distributed rows differ from local rows:\n got: %s\nwant: %s", got, want)
	}

	rep := coord.Report()
	if rep == nil {
		t.Fatal("no report after ExecutePlan")
	}
	if rep.LiveAtStart != 2 {
		t.Fatalf("LiveAtStart = %d, want 2", rep.LiveAtStart)
	}
	if rep.LocalJobs != 0 {
		t.Fatalf("LocalJobs = %d, want 0 with DisableLocal", rep.LocalJobs)
	}
	seen := map[string]int{}
	for _, s := range rep.Slots {
		seen[s.Worker]++
	}
	if len(seen) != 2 {
		t.Fatalf("placement used %d workers (%v), want both", len(seen), seen)
	}
}

// crashingHandler proxies to a real worker but hard-drops every connection
// after the first okAfter successful job batches — the coordinator sees a
// mid-sweep worker death and must re-dispatch to the survivor.
type crashingHandler struct {
	inner   http.Handler
	served  atomic.Int64
	okAfter int64
}

func (h *crashingHandler) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/v1/jobs" {
		if h.served.Add(1) > h.okAfter {
			panic(http.ErrAbortHandler) // kills the connection without a response
		}
		h.inner.ServeHTTP(rw, req)
		return
	}
	if h.served.Load() >= h.okAfter {
		// Quota used up: the whole worker is dead — health probes fail too,
		// so it never rejoins the fleet.
		panic(http.ErrAbortHandler)
	}
	h.inner.ServeHTTP(rw, req)
}

// TestWorkerDeathRedispatch kills one of two workers after its first job
// batch; the sweep must still complete with rows bit-identical to local
// execution, exercising the re-dispatch path (asserted via the report).
func TestWorkerDeathRedispatch(t *testing.T) {
	want := rowBytes(t, localRows(t))

	healthy := httptest.NewServer(NewWorker(2))
	defer healthy.Close()
	crash := &crashingHandler{inner: NewWorker(2), okAfter: 1}
	crashing := httptest.NewServer(crash)
	defer crashing.Close()

	coord := New(Options{
		Workers:   []string{healthy.URL, crashing.URL},
		ChunkJobs: 2,
		// DisableLocal keeps the re-dispatch remote, proving the failover
		// lands on the healthy worker rather than the local fallback.
		DisableLocal: true,
		Backoff:      retry.Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
		MaxAttempts:  5,
		Logf:         t.Logf,
	})
	defer coord.Close()

	exp := tinySweep()
	dynlb.WithDistributed(coord)(exp)
	rows, err := exp.Run(context.Background())
	if err != nil {
		t.Fatalf("distributed run with crashing worker: %v", err)
	}
	if got := rowBytes(t, rows); !bytes.Equal(got, want) {
		t.Fatal("rows after worker death differ from local rows")
	}
	rep := coord.Report()
	if rep.Redispatches == 0 {
		t.Fatalf("Redispatches = 0, want > 0 (crash not exercised); report %+v", rep)
	}
	for _, s := range rep.Slots {
		if s.Worker == "local" {
			t.Fatalf("slot %d ran locally despite DisableLocal", s.Slot)
		}
	}
}

// TestNoWorkersLocalFallback: an empty (and an unreachable) fleet must
// degrade to local execution with identical rows.
func TestNoWorkersLocalFallback(t *testing.T) {
	want := rowBytes(t, localRows(t))

	for _, workers := range [][]string{nil, {"http://127.0.0.1:1"}} {
		coord := New(Options{
			Workers:      workers,
			ProbeTimeout: 200 * time.Millisecond,
		})
		exp := tinySweep()
		dynlb.WithDistributed(coord)(exp)
		rows, err := exp.Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%v: %v", workers, err)
		}
		if got := rowBytes(t, rows); !bytes.Equal(got, want) {
			t.Fatalf("workers=%v: local-fallback rows differ", workers)
		}
		rep := coord.Report()
		if rep.LiveAtStart != 0 {
			t.Fatalf("workers=%v: LiveAtStart = %d, want 0", workers, rep.LiveAtStart)
		}
		for _, s := range rep.Slots {
			if s.Worker != "local" {
				t.Fatalf("workers=%v: slot %d placed on %q, want local", workers, s.Slot, s.Worker)
			}
		}
		coord.Close()
	}
}

// slowOnce delays the first job batch long past the coordinator's
// RequestTimeout but answers it eventually, forcing the abandoned
// request's late reply to collide with the re-dispatched copy — a genuine
// duplicate completion.
type slowOnce struct {
	inner http.Handler
	n     atomic.Int64
	delay time.Duration
}

func (h *slowOnce) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/v1/jobs" && h.n.Add(1) == 1 {
		time.Sleep(h.delay)
	}
	h.inner.ServeHTTP(rw, req)
}

// TestLateDuplicateDropped exercises the abandon-without-cancel path: the
// slow worker's reply arrives after the range was re-dispatched, so one
// copy must be dropped (byte-verified) and the rows stay bit-identical.
func TestLateDuplicateDropped(t *testing.T) {
	want := rowBytes(t, localRows(t))

	slow := &slowOnce{inner: NewWorker(2), delay: 1500 * time.Millisecond}
	sl := httptest.NewServer(slow)
	defer sl.Close()
	fast := httptest.NewServer(NewWorker(2))
	defer fast.Close()

	coord := New(Options{
		Workers:        []string{sl.URL, fast.URL},
		ChunkJobs:      2,
		RequestTimeout: 200 * time.Millisecond,
		Backoff:        retry.Backoff{Base: 10 * time.Millisecond, Cap: 20 * time.Millisecond},
		MaxAttempts:    10,
		DisableLocal:   true,
	})
	defer coord.Close()

	exp := tinySweep()
	dynlb.WithDistributed(coord)(exp)
	rows, err := exp.Run(context.Background())
	if err != nil {
		t.Fatalf("distributed run with slow worker: %v", err)
	}
	if got := rowBytes(t, rows); !bytes.Equal(got, want) {
		t.Fatal("rows with duplicate completion differ from local rows")
	}
	// The slow request is only a duplicate if its range re-ran elsewhere
	// before the late reply landed; with a 1.5 s delay vs a 200 ms abandon
	// that is deterministic in practice.
	if rep := coord.Report(); rep.Duplicates == 0 && rep.Redispatches == 0 {
		t.Fatalf("neither duplicates nor redispatches recorded: %+v", rep)
	}
}

// TestDuplicateMismatchFails pins the byte-equality assertion on
// duplicate completions: differing Results for the same job must fail the
// sweep as a determinism violation.
func TestDuplicateMismatchFails(t *testing.T) {
	a := dynlb.Results{Strategy: "x", NPE: 4, CPUUtil: 0.5}
	b := a
	if err := verifySameResults(a, b, 7); err != nil {
		t.Fatalf("identical results rejected: %v", err)
	}
	b.CPUUtil = 0.75
	if err := verifySameResults(a, b, 7); err == nil {
		t.Fatal("differing duplicate accepted")
	}
}

// TestResultsCodecRoundTrip: the wire codec must round-trip Results
// exactly, including NaN/±Inf (which plain JSON cannot carry) and nested
// Window floats.
func TestResultsCodecRoundTrip(t *testing.T) {
	r := dynlb.Results{
		Strategy:      "psu-opt+RANDOM",
		NPE:           8,
		AvgJoinDegree: 3.0000000000000004, // forces shortest-form float fidelity
		CPUUtil:       math.NaN(),
		DiskUtil:      math.Inf(1),
		MemUtil:       math.Inf(-1),
		Windows: []dynlb.Window{
			{StartMS: 0, RTMeanMS: math.NaN(), JoinTPS: 0.1 + 0.2},
			{StartMS: 1000, RTMeanMS: 42.5, JoinTPS: math.Inf(1)},
		},
	}
	raw, patches, err := encodeResults(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if len(patches) != 5 {
		t.Fatalf("got %d non-finite patches, want 5", len(patches))
	}
	got, err := decodeResults(raw, patches)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// reflect.DeepEqual treats NaN != NaN, so compare via re-encoding.
	raw2, patches2, err := encodeResults(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(raw, raw2) || !reflect.DeepEqual(patches, patches2) {
		t.Fatalf("round trip changed results:\n %s\n %s", raw, raw2)
	}

	// The all-finite fast path carries no patches.
	r2 := dynlb.Results{Strategy: "s", JoinTPS: 0.30000000000000004}
	raw, patches, err = encodeResults(r2)
	if err != nil {
		t.Fatalf("encode finite: %v", err)
	}
	if patches != nil {
		t.Fatalf("finite results produced patches: %v", patches)
	}
	got, err = decodeResults(raw, nil)
	if err != nil {
		t.Fatalf("decode finite: %v", err)
	}
	if !reflect.DeepEqual(got, r2) {
		t.Fatalf("finite round trip changed results: %+v != %+v", got, r2)
	}
}

// TestPortableStrategy: every built-in strategy must survive the wire;
// a user-defined strategy must be detected as non-portable.
func TestPortableStrategy(t *testing.T) {
	for _, name := range dynlb.StrategyNames() {
		st := dynlb.MustStrategy(name)
		got, ok := portableStrategy(st)
		if !ok || got != name {
			t.Errorf("built-in %q not portable (got %q, %v)", name, got, ok)
		}
	}
	fd, err := dynlb.FixedDegree(7, "LUC")
	if err != nil {
		t.Fatal(err)
	}
	if name, ok := portableStrategy(fd); !ok || name != "p=7+LUC" {
		t.Errorf("FixedDegree(7, LUC) not portable: %q %v", name, ok)
	}
	if _, ok := portableStrategy(opaqueStrategy{}); ok {
		t.Error("user-defined strategy reported portable")
	}
}

type opaqueStrategy struct{ dynlb.Strategy }

func (opaqueStrategy) Name() string { return "MIN-IO" } // lies about its identity

// TestPoolRunPlanJob drives the service-backend path: per-job remote
// execution with failover, storing results in the plan.
func TestPoolRunPlanJob(t *testing.T) {
	srv := httptest.NewServer(NewWorker(2))
	defer srv.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer dead.Close()

	pool := NewPool(Options{
		Workers: []string{dead.URL, srv.URL},
		Backoff: retry.Backoff{Base: 5 * time.Millisecond, Cap: 10 * time.Millisecond},
	})
	defer pool.Close()

	p, err := tinySweep().Plan()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumJobs(); i++ {
		if err := pool.RunPlanJob(context.Background(), p, i); err != nil {
			t.Fatalf("RunPlanJob(%d): %v", i, err)
		}
		batch, err := p.Complete(i)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, batch...)
	}
	if !p.Done() {
		t.Fatal("plan not done")
	}
	if got, want := rowBytes(t, rows), rowBytes(t, localRows(t)); !bytes.Equal(got, want) {
		t.Fatal("pool-executed rows differ from local rows")
	}
	if pool.NumLive() != 1 {
		t.Fatalf("NumLive = %d after failover, want 1 (dead worker stays down)", pool.NumLive())
	}
}
