package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
)

// client is the coordinator-side handle of one worker.
type client struct {
	base     string // normalized base URL, no trailing slash
	http     *http.Client
	inflight atomic.Int64 // dispatched ranges not yet resolved
}

func newClient(base string, hc *http.Client) *client {
	return &client{base: strings.TrimRight(base, "/"), http: hc}
}

// run posts a batch of jobs and returns the per-job results keyed by job
// ID. Any transport, HTTP-status or decode failure is returned as an
// error; per-job simulation errors ride inside the map as wireResult.Err.
func (c *client) run(ctx context.Context, jobs []wireJob) (map[int]wireResult, error) {
	body, err := json.Marshal(runRequest{Jobs: jobs})
	if err != nil {
		return nil, fmt.Errorf("dist: marshal request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("dist: worker %s: %s: %s", c.base, resp.Status, bytes.TrimSpace(msg))
	}
	var out runResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("dist: worker %s: decode response: %w", c.base, err)
	}
	byID := make(map[int]wireResult, len(out.Results))
	for _, r := range out.Results {
		byID[r.ID] = r
	}
	for _, j := range jobs {
		if _, ok := byID[j.ID]; !ok {
			return nil, fmt.Errorf("dist: worker %s: job %d missing from response", c.base, j.ID)
		}
	}
	return byID, nil
}

// health probes GET /healthz; nil means the worker is up.
func (c *client) health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: worker %s: %s", c.base, resp.Status)
	}
	return nil
}
