package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"dynlb"
)

// Coordinator executes experiment plans across the worker fleet. It
// implements dynlb.Executor, so it plugs into an experiment with
// dynlb.WithDistributed(coord).
//
// ExecutePlan cuts the plan's slots into slot-aligned job ranges, keeps
// one range in flight per live worker, and merges completions through the
// plan's Complete hook from a single event loop — rows therefore assemble
// in the library's deterministic order and the output is bit-identical to
// local execution regardless of worker count, placement, re-dispatch or
// duplicate delivery. See the package comment for the failure model.
type Coordinator struct {
	o    Options
	pool *Pool
	last *Report // placement report of the most recent ExecutePlan
}

// New builds a coordinator (and its fleet pool) from opts.
func New(opts Options) *Coordinator {
	o := opts.withDefaults()
	return &Coordinator{o: o, pool: NewPool(o)}
}

// Pool exposes the coordinator's fleet pool (shared health state; also the
// per-job executor used by the service backend).
func (c *Coordinator) Pool() *Pool { return c.pool }

// Close releases the fleet pool.
func (c *Coordinator) Close() { c.pool.Close() }

// Report returns the placement report of the most recent ExecutePlan, or
// nil before the first run. Coordinators are driven by one experiment at a
// time; Report is meaningful after ExecutePlan returns.
func (c *Coordinator) Report() *Report { return c.last }

// SlotPlacement records where one plan slot was finally computed.
type SlotPlacement struct {
	Slot     int     `json:"slot"`
	Worker   string  `json:"worker"`   // worker base URL, or "local"
	Attempts int     `json:"attempts"` // dispatch attempts of the slot's range (1 = first try)
	MS       float64 `json:"ms"`       // wall-clock ms from sweep start to slot completion
}

// Report summarizes one distributed sweep: where every slot ran and how
// the failure machinery was exercised. It never influences the rows — the
// same experiment produces the same rows under any Report.
type Report struct {
	Workers      []string        `json:"workers"`       // configured fleet
	LiveAtStart  int             `json:"live_at_start"` // workers that answered the initial probe
	Slots        []SlotPlacement `json:"slots"`
	Duplicates   int             `json:"duplicates"`   // completions dropped as already-done (byte-verified)
	Redispatches int             `json:"redispatches"` // ranges re-queued after a failure or timeout
	LocalJobs    int             `json:"local_jobs"`   // jobs that ran on the coordinator
	ElapsedMS    float64         `json:"elapsed_ms"`
}

// jobRange is the coordinator's unit of dispatch: one or more whole slots.
type jobRange struct {
	id      int
	jobs    []wireJob // wire forms, empty for local-only ranges
	jobIDs  []int     // plan job indices of the range
	local   bool      // pinned to local execution (non-portable strategy)
	seq     int       // dispatch sequence number (increments per dispatch)
	live    bool      // currently in flight on a worker
	worker  *client
	tries   int // failed/abandoned dispatch attempts so far
	started time.Time
}

// event kinds of the coordinator loop.
const (
	evDone    = iota // a worker request returned results
	evFail           // a worker request failed at the transport/protocol level
	evAbandon        // a dispatch exceeded RequestTimeout
	evReady          // a range's re-dispatch backoff elapsed
	evUp             // a downed worker came back
	evLocal          // a local job finished
)

type event struct {
	kind    int
	rg      *jobRange
	seq     int
	worker  *client
	results map[int]wireResult
	err     error
	jobID   int
	res     dynlb.Results
}

var errAbandoned = errors.New("dist: request exceeded RequestTimeout (abandoned, not cancelled)")

// ExecutePlan implements dynlb.Executor.
func (c *Coordinator) ExecutePlan(ctx context.Context, p *dynlb.Plan, deliver func([]dynlb.Row)) error {
	start := time.Now()
	report := &Report{Workers: append([]string(nil), c.o.Workers...)}
	defer func() {
		report.ElapsedMS = float64(time.Since(start)) / 1e6
		sort.Slice(report.Slots, func(i, j int) bool { return report.Slots[i].Slot < report.Slots[j].Slot })
		c.last = report
	}()

	nJobs := p.NumJobs()
	if nJobs == 0 {
		return nil
	}

	// The loop-lifetime plumbing: events carry every completion and state
	// change into the single loop goroutine (this one); loopDone unblocks
	// stragglers after the loop returns; runCtx aborts outstanding HTTP
	// requests and local jobs on return.
	events := make(chan event, 16)
	loopDone := make(chan struct{})
	defer close(loopDone)
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	post := func(e event) {
		select {
		case events <- e:
		case <-loopDone:
		}
	}
	c.pool.setOnUp(func(w *client) { post(event{kind: evUp, worker: w}) })

	// Cut the plan into slot-aligned ranges.
	ranges, rangeOf := buildRanges(p, c.o.ChunkJobs)

	// Local fallback executor: LocalWorkers goroutines pulling job indices.
	// The channel holds every job, so the loop never blocks feeding it.
	localJobs := make(chan int, nJobs)
	for w := 0; w < c.o.LocalWorkers; w++ {
		go func() {
			for {
				var id int
				select {
				case <-loopDone:
					return
				case id = <-localJobs:
				}
				if runCtx.Err() != nil {
					continue // drain without simulating; the loop is exiting
				}
				cfg, st := p.Job(id)
				r, err := dynlb.Run(cfg, st)
				post(event{kind: evLocal, jobID: id, res: r, err: err})
			}
		}()
	}

	// Loop state.
	done := make([]bool, nJobs)
	jobsLeft := nJobs
	slotLeft := make([]int, p.NumSlots())
	for s := range slotLeft {
		_, n := p.SlotRange(s)
		slotLeft[s] = n
	}
	busy := make(map[*client]bool)
	var pending []*jobRange

	// queueLocal hands a job to the local executor at most once — repeat
	// requests (an exhausted range plus a late per-job error reply) would
	// both waste a simulation and, past the channel capacity, deadlock the
	// loop.
	queuedLocal := make([]bool, nJobs)
	queueLocal := func(id int) {
		if queuedLocal[id] || done[id] {
			return
		}
		queuedLocal[id] = true
		report.LocalJobs++
		localJobs <- id
	}

	toLocal := func(rg *jobRange) error {
		if c.o.DisableLocal {
			return fmt.Errorf("dist: range %d exhausted %d remote attempts and local execution is disabled", rg.id, rg.tries)
		}
		for _, id := range rg.jobIDs {
			queueLocal(id)
		}
		return nil
	}

	requeue := func(rg *jobRange, why error) error {
		rg.tries++
		if rg.tries >= c.o.MaxAttempts {
			c.o.Logf("dist: range %d exhausted remote attempts (%v), running locally", rg.id, why)
			return toLocal(rg)
		}
		report.Redispatches++
		delay := c.o.Backoff.Delay(rg.tries - 1)
		c.o.Logf("dist: range %d re-dispatching in %v (%v)", rg.id, delay, why)
		time.AfterFunc(delay, func() { post(event{kind: evReady, rg: rg}) })
		return nil
	}

	allDone := func(rg *jobRange) bool {
		for _, id := range rg.jobIDs {
			if !done[id] {
				return false
			}
		}
		return true
	}

	dispatch := func(rg *jobRange, w *client) {
		var jobs []wireJob
		for _, j := range rg.jobs {
			if !done[j.ID] {
				jobs = append(jobs, j)
			}
		}
		rg.seq++
		rg.live = true
		rg.worker = w
		rg.started = time.Now()
		busy[w] = true
		seq := rg.seq
		w.inflight.Add(1)
		go func() {
			res, err := w.run(runCtx, jobs)
			w.inflight.Add(-1)
			if err != nil {
				post(event{kind: evFail, rg: rg, seq: seq, worker: w, err: err})
				return
			}
			post(event{kind: evDone, rg: rg, seq: seq, worker: w, results: res})
		}()
		time.AfterFunc(c.o.RequestTimeout, func() { post(event{kind: evAbandon, rg: rg, seq: seq, worker: w}) })
	}

	freeWorker := func() *client {
		live := c.pool.liveSet()
		sort.Slice(live, func(i, j int) bool { return live[i].base < live[j].base })
		for _, w := range live {
			if !busy[w] {
				return w
			}
		}
		return nil
	}

	tryDispatch := func() error {
		for len(pending) > 0 {
			if c.pool.NumLive() == 0 && !c.o.DisableLocal {
				// Fleet is (currently) dead: degrade every queued range to
				// local execution rather than stalling. Workers revived by
				// the probers pick up later ranges.
				c.o.Logf("dist: no live workers, degrading %d pending ranges to local execution", len(pending))
				for _, rg := range pending {
					if err := toLocal(rg); err != nil {
						return err
					}
				}
				pending = nil
				return nil
			}
			w := freeWorker()
			if w == nil {
				return nil
			}
			rg := pending[0]
			pending = pending[1:]
			if allDone(rg) {
				continue
			}
			dispatch(rg, w)
		}
		return nil
	}

	// complete folds one finished job into the plan, or byte-verifies it
	// against the accepted result when it is a duplicate delivery.
	complete := func(id int, res dynlb.Results, src string) error {
		if done[id] {
			report.Duplicates++
			if err := verifySameResults(p.JobResult(id), res, id); err != nil {
				return err
			}
			return nil
		}
		p.SetJobResult(id, res)
		done[id] = true
		jobsLeft--
		rows, err := p.Complete(id)
		if err != nil {
			return err
		}
		deliver(rows)
		s := p.SlotOf(id)
		if slotLeft[s]--; slotLeft[s] == 0 {
			rg := rangeOf[id]
			report.Slots = append(report.Slots, SlotPlacement{
				Slot:     s,
				Worker:   src,
				Attempts: rg.tries + 1,
				MS:       float64(time.Since(start)) / 1e6,
			})
		}
		return nil
	}

	// Seed the queues: probe the fleet, then enqueue every range.
	nLive := c.pool.Probe(ctx)
	report.LiveAtStart = nLive
	if nLive == 0 && c.o.DisableLocal {
		return errors.New("dist: no live workers and local execution is disabled")
	}
	if nLive == 0 {
		c.o.Logf("dist: no live workers, running %d jobs locally", nJobs)
	}
	for _, rg := range ranges {
		if rg.local {
			if err := toLocal(rg); err != nil {
				return err
			}
			continue
		}
		pending = append(pending, rg)
	}
	if err := tryDispatch(); err != nil {
		return err
	}

	for jobsLeft > 0 {
		var e event
		select {
		case <-ctx.Done():
			return ctx.Err()
		case e = <-events:
		}
		switch e.kind {
		case evDone:
			if e.rg.live && e.rg.seq == e.seq {
				e.rg.live = false
				delete(busy, e.worker)
			}
			for id, wr := range e.results {
				if wr.Err != "" {
					// Deterministic simulation error, or a worker-side
					// panic: the local run resolves either (surfacing the
					// former as this sweep's failure).
					c.o.Logf("dist: worker %s: job %d failed (%s), resolving locally", e.worker.base, id, wr.Err)
					if c.o.DisableLocal {
						return fmt.Errorf("dist: worker %s: job %d: %s", e.worker.base, id, wr.Err)
					}
					queueLocal(id)
					continue
				}
				r, err := decodeResults(wr.Results, wr.NonFinite)
				if err != nil {
					return err
				}
				if err := complete(id, r, e.worker.base); err != nil {
					return err
				}
			}
		case evFail:
			if runCtx.Err() != nil {
				break // request aborted by our own shutdown path
			}
			if e.rg.live && e.rg.seq == e.seq {
				e.rg.live = false
				delete(busy, e.worker)
				c.pool.markDown(e.worker, e.err)
				if err := requeue(e.rg, e.err); err != nil {
					return err
				}
			}
			// A stale failure (already abandoned) changes nothing: the
			// range was re-queued when the abandon fired.
		case evAbandon:
			if e.rg.live && e.rg.seq == e.seq {
				e.rg.live = false
				delete(busy, e.worker)
				// The request keeps running — if its reply arrives first it
				// still wins; meanwhile the range races it on another
				// worker. Mark the slow worker down so nothing else is
				// dispatched to it until it answers a probe again.
				c.pool.markDown(e.worker, errAbandoned)
				if err := requeue(e.rg, errAbandoned); err != nil {
					return err
				}
			}
		case evReady:
			if !allDone(e.rg) {
				pending = append(pending, e.rg)
			}
		case evUp:
			// Worker rejoined; tryDispatch below hands it work.
		case evLocal:
			if e.err != nil {
				return e.err
			}
			if err := complete(e.jobID, e.res, "local"); err != nil {
				return err
			}
		}
		if err := tryDispatch(); err != nil {
			return err
		}
	}
	return nil
}

// buildRanges cuts the plan's slots into dispatch ranges: consecutive
// portable slots are batched until chunkJobs physical jobs accumulate (a
// single larger slot still travels whole — ranges are always slot-aligned);
// slots with non-portable jobs become local-pinned ranges. Also returns
// the job-index → range mapping.
func buildRanges(p *dynlb.Plan, chunkJobs int) ([]*jobRange, []*jobRange) {
	var ranges []*jobRange
	rangeOf := make([]*jobRange, p.NumJobs())
	var cur *jobRange
	flush := func() {
		if cur != nil {
			ranges = append(ranges, cur)
			cur = nil
		}
	}
	for s := 0; s < p.NumSlots(); s++ {
		first, n := p.SlotRange(s)
		jobs := make([]wireJob, 0, n)
		portable := true
		for i := first; i < first+n; i++ {
			j, ok := encodeJob(p, i)
			if !ok {
				portable = false
				break
			}
			jobs = append(jobs, j)
		}
		ids := make([]int, 0, n)
		for i := first; i < first+n; i++ {
			ids = append(ids, i)
		}
		if !portable {
			flush()
			rg := &jobRange{id: len(ranges), jobIDs: ids, local: true}
			ranges = append(ranges, rg)
			for _, i := range ids {
				rangeOf[i] = rg
			}
			continue
		}
		if cur == nil {
			cur = &jobRange{id: len(ranges)}
		}
		cur.jobs = append(cur.jobs, jobs...)
		cur.jobIDs = append(cur.jobIDs, ids...)
		for _, i := range ids {
			rangeOf[i] = cur
		}
		if len(cur.jobIDs) >= chunkJobs {
			flush()
		}
	}
	flush()
	return ranges, rangeOf
}

// verifySameResults asserts that a duplicate delivery of job id matches
// the accepted result byte for byte (in canonical wire encoding) — the
// determinism guarantee duplicates are silently dropped under.
func verifySameResults(accepted, dup dynlb.Results, id int) error {
	a, ap, err := encodeResults(accepted)
	if err != nil {
		return err
	}
	b, bp, err := encodeResults(dup)
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) || len(ap) != len(bp) {
		return fmt.Errorf("dist: duplicate completion of job %d differs from the accepted result — determinism violation", id)
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return fmt.Errorf("dist: duplicate completion of job %d differs from the accepted result — determinism violation", id)
		}
	}
	return nil
}
