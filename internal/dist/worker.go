package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"

	"dynlb"
)

// Worker is the HTTP handler of one fleet member (cmd/dynlbworker mounts
// it on a plain net/http server). It is stateless between requests: every
// job arrives as its full simulation inputs and is executed with the same
// dynlb.Run the library uses locally, so results are bit-identical to any
// other placement of the job.
//
// Endpoints:
//
//	POST /v1/jobs  — run a batch of jobs; body runRequest, reply runResponse.
//	GET  /healthz  — liveness + load: {"status":"ok","slots":N,"busy":B,"jobs_done":D}.
type Worker struct {
	mux      *http.ServeMux
	sem      chan struct{} // execution slots shared across requests
	busy     atomic.Int64
	jobsDone atomic.Int64
}

// NewWorker returns a worker executing at most slots simulations at once
// (<= 0 selects runtime.NumCPU()). Batches beyond the limit queue on the
// shared semaphore, so an overloaded worker slows down rather than
// oversubscribing its CPUs.
func NewWorker(slots int) *Worker {
	if slots < 1 {
		slots = runtime.NumCPU()
	}
	w := &Worker{
		mux: http.NewServeMux(),
		sem: make(chan struct{}, slots),
	}
	w.mux.HandleFunc("POST /v1/jobs", w.handleJobs)
	w.mux.HandleFunc("GET /healthz", w.handleHealth)
	return w
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, req *http.Request) {
	w.mux.ServeHTTP(rw, req)
}

// Slots returns the worker's execution-slot count.
func (w *Worker) Slots() int { return cap(w.sem) }

// JobsDone returns the number of jobs executed since start.
func (w *Worker) JobsDone() int64 { return w.jobsDone.Load() }

func (w *Worker) handleHealth(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(rw, `{"status":"ok","slots":%d,"busy":%d,"jobs_done":%d}`+"\n",
		cap(w.sem), w.busy.Load(), w.jobsDone.Load())
}

func (w *Worker) handleJobs(rw http.ResponseWriter, req *http.Request) {
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	var in runRequest
	if err := dec.Decode(&in); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp := runResponse{Results: make([]wireResult, len(in.Jobs))}
	for i, j := range in.Jobs {
		// The client waits for the whole batch anyway (ranges are the unit
		// of dispatch), so jobs run sequentially here; parallelism comes
		// from the coordinator keeping several ranges in flight per worker
		// fleet. The semaphore still bounds concurrent simulations across
		// overlapping requests.
		select {
		case w.sem <- struct{}{}:
		case <-req.Context().Done():
			return // coordinator gave up; nothing can read the reply
		}
		w.busy.Add(1)
		resp.Results[i] = w.runOne(j)
		w.busy.Add(-1)
		<-w.sem
	}
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(resp); err != nil {
		// Connection-level failure; the coordinator's timeout handles it.
		return
	}
}

// runOne executes a single job, converting panics and simulation errors
// into an error result so one bad job cannot take down the batch.
func (w *Worker) runOne(j wireJob) (res wireResult) {
	res.ID = j.ID
	defer func() {
		if p := recover(); p != nil {
			res = wireResult{ID: j.ID, Err: fmt.Sprintf("worker panic: %v", p)}
		}
	}()
	st, err := dynlb.StrategyByName(j.Strategy)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	r, err := dynlb.Run(j.Config, st)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	w.jobsDone.Add(1)
	raw, patches, err := encodeResults(r)
	if err != nil {
		res.Err = "encode results: " + err.Error()
		return res
	}
	res.Results = raw
	res.NonFinite = patches
	return res
}
