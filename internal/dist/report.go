package dist

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes the per-slot placement table as CSV: one row per slot
// with the worker it ran on, the dispatch attempts and the completion
// time, followed by no summary rows (the JSON form carries the totals).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "worker", "attempts", "ms"}); err != nil {
		return err
	}
	for _, s := range r.Slots {
		rec := []string{
			strconv.Itoa(s.Slot),
			s.Worker,
			strconv.Itoa(s.Attempts),
			fmt.Sprintf("%.1f", s.MS),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
