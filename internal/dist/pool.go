package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dynlb"
)

// Pool tracks the health of a worker fleet and hands out clients. Workers
// that fail a request are marked down and re-probed in the background with
// the pool's backoff until they answer /healthz again, at which point they
// rejoin the fleet (and the onUp hook, if set, is notified).
//
// Pool is also a standalone per-job executor: RunPlanJob runs one plan job
// on the least-loaded live worker with failover and local fallback — the
// execution backend internal/service's scheduler plugs in via UseRemote.
type Pool struct {
	o Options

	mu      sync.Mutex
	clients []*client
	live    map[*client]bool
	down    map[*client]bool // a prober goroutine is active for these
	onUp    func(*client)

	closed    chan struct{}
	closeOnce sync.Once
}

// NewPool builds a pool over opts.Workers. All workers start presumed
// live; call Probe to ground the presumption, or let the first failed
// request correct it.
func NewPool(opts Options) *Pool {
	o := opts.withDefaults()
	p := &Pool{
		o:      o,
		live:   make(map[*client]bool),
		down:   make(map[*client]bool),
		closed: make(chan struct{}),
	}
	for _, u := range o.Workers {
		c := newClient(u, o.Client)
		p.clients = append(p.clients, c)
		p.live[c] = true
	}
	return p
}

// Probe health-checks every worker in parallel and demotes the
// unreachable ones (starting their background probers). It returns the
// number of live workers.
func (p *Pool) Probe(ctx context.Context) int {
	var wg sync.WaitGroup
	for _, c := range p.clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.o.ProbeTimeout)
			defer cancel()
			if err := c.health(pctx); err != nil {
				p.markDown(c, err)
			}
		}(c)
	}
	wg.Wait()
	return p.NumLive()
}

// NumLive returns the current live worker count.
func (p *Pool) NumLive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.live)
}

// NumWorkers returns the configured fleet size.
func (p *Pool) NumWorkers() int { return len(p.clients) }

// setOnUp registers the recovered-worker hook (coordinator wakes its
// dispatcher). Must be set before probers can fire, i.e. before any
// request or Probe.
func (p *Pool) setOnUp(fn func(*client)) {
	p.mu.Lock()
	p.onUp = fn
	p.mu.Unlock()
}

// markDown removes c from the live set and starts its re-probe loop.
// Idempotent while the prober is running.
func (p *Pool) markDown(c *client, err error) {
	p.mu.Lock()
	if p.down[c] {
		p.mu.Unlock()
		return
	}
	delete(p.live, c)
	p.down[c] = true
	p.mu.Unlock()
	p.o.Logf("dist: worker %s down: %v", c.base, err)
	go p.probeUntilUp(c)
}

func (p *Pool) probeUntilUp(c *client) {
	for attempt := 0; ; attempt++ {
		select {
		case <-p.closed:
			return
		case <-time.After(p.o.Backoff.Delay(attempt)):
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.o.ProbeTimeout)
		err := c.health(ctx)
		cancel()
		if err != nil {
			continue
		}
		p.mu.Lock()
		delete(p.down, c)
		p.live[c] = true
		up := p.onUp
		p.mu.Unlock()
		p.o.Logf("dist: worker %s back up", c.base)
		if up != nil {
			up(c)
		}
		return
	}
}

// pick returns the live worker with the fewest in-flight requests (ties
// broken by URL so placement is reproducible), or nil when none are live.
func (p *Pool) pick() *client {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *client
	var bestN int64
	for c := range p.live {
		n := c.inflight.Load()
		if best == nil || n < bestN || (n == bestN && c.base < best.base) {
			best, bestN = c, n
		}
	}
	return best
}

// liveSet returns a snapshot of the live workers.
func (p *Pool) liveSet() []*client {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*client, 0, len(p.live))
	for c := range p.live {
		out = append(out, c)
	}
	return out
}

// Close stops the background probers and releases idle connections.
// In-flight requests are not interrupted.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.o.Client.CloseIdleConnections()
	})
}

// RunPlanJob executes plan job i remotely with failover: least-loaded live
// worker first, marking failed workers down and backing off between
// attempts, falling back to in-process execution when the job is not
// portable, the fleet is dead, or remote attempts are exhausted (unless
// Options.DisableLocal). On success the result is stored in the plan
// (Plan.SetJobResult), exactly as Plan.RunJob would have.
//
// The method is safe for concurrent use with distinct job indices — the
// contract of internal/service's per-slot runner, which plugs it in via
// Scheduler.UseRemote.
func (p *Pool) RunPlanJob(ctx context.Context, plan *dynlb.Plan, i int) error {
	j, ok := encodeJob(plan, i)
	if !ok {
		if p.o.DisableLocal {
			return fmt.Errorf("dist: job %d is not portable and local execution is disabled", i)
		}
		return plan.RunJob(i)
	}
	var lastErr error
	for attempt := 0; attempt < p.o.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(p.o.Backoff.Delay(attempt - 1)):
			}
		}
		c := p.pick()
		if c == nil {
			lastErr = errors.New("dist: no live workers")
			break
		}
		rctx, cancel := context.WithTimeout(ctx, p.o.RequestTimeout)
		c.inflight.Add(1)
		res, err := c.run(rctx, []wireJob{j})
		c.inflight.Add(-1)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			p.markDown(c, err)
			lastErr = err
			continue
		}
		wr := res[i]
		if wr.Err != "" {
			// A per-job error is either deterministic (the local fallback
			// will reproduce it) or a worker-side panic (the local fallback
			// will resolve it) — either way, stop retrying remotely.
			lastErr = fmt.Errorf("dist: worker %s: job %d: %s", c.base, i, wr.Err)
			break
		}
		r, err := decodeResults(wr.Results, wr.NonFinite)
		if err != nil {
			lastErr = err
			break
		}
		plan.SetJobResult(i, r)
		return nil
	}
	if p.o.DisableLocal {
		return lastErr
	}
	p.o.Logf("dist: job %d falling back to local execution: %v", i, lastErr)
	return plan.RunJob(i)
}
