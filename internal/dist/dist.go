// Package dist shards the execution of a compiled dynlb experiment Plan
// across a fleet of remote workers over plain HTTP/JSON.
//
// The topology is a single coordinator plus N stateless workers (cmd/
// dynlbworker). The coordinator plans an experiment once, cuts the plan's
// slot ranges into contiguous chunks, and feeds them through a shared
// range queue that the per-worker drivers claim from — work-stealing falls
// out naturally, because a fast worker returns sooner and simply claims
// the next range. Each dispatched job travels as its exact simulation
// inputs (the fully resolved Config plus the strategy's wire name), the
// worker simulates it with the same engine the library uses, and the
// Results travel back in a lossless JSON envelope. Completions are merged
// through the Plan's Start/Complete hooks, so rows assemble in the
// library's deterministic order and the merged output is bit-identical to
// local execution at any worker count or placement — the per-slot
// splitmix64 seed discipline makes every job a pure function of its wire
// form.
//
// Failure tolerance: a worker death or timeout re-dispatches the range to
// a live worker after a capped exponential backoff (internal/retry), dead
// workers are re-probed in the background and rejoin when healthy,
// duplicate completions are idempotently dropped (first result wins, and
// byte-equality is asserted when both copies arrive), and when no workers
// are reachable — or a range exhausts its remote attempts — the
// coordinator degrades gracefully to local execution, so a sweep always
// terminates with the same rows.
//
// The same fleet also backs the dynlbd service: Pool.RunPlanJob is a
// per-job remote executor with local failover that internal/service's
// scheduler routes claimed slots through (Scheduler.UseRemote), fanning a
// daemon's jobs out to the workers while keeping its round-robin fairness
// and result cache intact.
package dist

import (
	"net/http"
	"runtime"
	"time"

	"dynlb/internal/retry"
)

// Options configures a worker fleet client (Pool) and the coordinator
// built on top of it. The zero value of every field selects a sensible
// default; Workers is the only field without one.
type Options struct {
	// Workers lists the base URLs of the worker fleet, e.g.
	// "http://10.0.0.7:9090". Workers that are down at start are probed in
	// the background and join the fleet when they become healthy. An empty
	// list (or an all-dead fleet) degrades to local execution unless
	// DisableLocal is set.
	Workers []string

	// Client is the HTTP client used for worker requests. Defaults to a
	// dedicated client without a global timeout (per-request contexts
	// bound every call).
	Client *http.Client

	// ChunkJobs caps the physical jobs per dispatched range (>= 1). Ranges
	// are always slot-aligned — a slot's jobs never split across workers —
	// and one slot with more jobs than the cap still travels whole.
	// Default 4.
	ChunkJobs int

	// RequestTimeout is how long the coordinator waits for a dispatched
	// range before abandoning it: the range re-queues for another worker
	// while the original request keeps running in the background, so a
	// slow-but-alive worker's result is not wasted — whichever copy lands
	// first wins and the loser is dropped as a duplicate. Default 2m.
	RequestTimeout time.Duration

	// ProbeTimeout bounds a single health probe. Default 2s.
	ProbeTimeout time.Duration

	// MaxAttempts is the number of remote dispatch attempts per range
	// before it falls back to local execution (which also surfaces any
	// deterministic job error instead of retrying it forever). Default 3.
	MaxAttempts int

	// Backoff delays a range's re-dispatch after a failed attempt.
	// Default 200ms doubling to 5s.
	Backoff retry.Backoff

	// LocalWorkers is the parallelism of the coordinator's local fallback
	// executor. Default runtime.NumCPU().
	LocalWorkers int

	// DisableLocal makes an unreachable fleet (or an exhausted range) a
	// hard error instead of degrading to local execution. Intended for
	// tests and benchmarks that must prove the remote path ran.
	DisableLocal bool

	// Logf, when set, receives human-oriented progress notes (worker
	// deaths, re-dispatches, fallback transitions). Never required for
	// correctness.
	Logf func(format string, args ...any)
}

// withDefaults returns o with every unset field resolved.
func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.ChunkJobs < 1 {
		o.ChunkJobs = 4
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Minute
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.Backoff == (retry.Backoff{}) {
		o.Backoff = retry.Backoff{Base: 200 * time.Millisecond, Cap: 5 * time.Second}
	}
	if o.LocalWorkers < 1 {
		o.LocalWorkers = runtime.NumCPU()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}
