// Package prof is the shared CPU- and memory-profiling setup of the dynlb
// commands.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins writing a CPU profile to path. The returned stop function
// stops the profile and closes the file, reporting the close error that a
// bare deferred pprof.StopCPUProfile would swallow (ENOSPC, NFS flush).
func Start(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path, preceded by a GC
// so the live-heap numbers are current. Call it at the end of a run; the
// profile's alloc_space/alloc_objects samples cover the whole process
// lifetime, which is what a hot-path allocation hunt needs (the simulator's
// steady state should be allocation-free — see the sim alloc guard test).
func WriteHeap(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	runtime.GC() // materialize up-to-date heap statistics
	return pprof.Lookup("allocs").WriteTo(f, 0)
}
