// Package prof is the shared CPU-profiling setup of the dynlb commands.
package prof

import (
	"os"
	"runtime/pprof"
)

// Start begins writing a CPU profile to path. The returned stop function
// stops the profile and closes the file, reporting the close error that a
// bare deferred pprof.StopCPUProfile would swallow (ENOSPC, NFS flush).
func Start(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
