// Package prof is the shared CPU- and memory-profiling setup of the dynlb
// commands.
package prof

import (
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
)

// Start begins writing a CPU profile to path. The returned stop function
// stops the profile and closes the file, reporting the close error that a
// bare deferred pprof.StopCPUProfile would swallow (ENOSPC, NFS flush).
func Start(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeap writes an allocs-space heap profile to path, preceded by a GC
// so the live-heap numbers are current. Call it at the end of a run; the
// profile's alloc_space/alloc_objects samples cover the whole process
// lifetime, which is what a hot-path allocation hunt needs (the simulator's
// steady state should be allocation-free — see the sim alloc guard test).
func WriteHeap(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	runtime.GC() // materialize up-to-date heap statistics
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// LiveBytes returns the process's resident simulation footprint: heap plus
// goroutine stacks actually in use, after garbage has been collected and
// free spans returned to the OS. It is the measurement behind the
// clients-per-GB capacity figures (BENCH_kernel.json): sample it before and
// after standing up a simulation and divide the delta into the client
// count. The forced GC makes it expensive — call it between runs, not
// inside one.
func LiveBytes() uint64 {
	debug.FreeOSMemory() // GC + scavenge so retained spans don't inflate the gauge
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.StackInuse + m.HeapInuse
}
