// Package buffer models the main-memory buffer of one processing element as
// described in Section 4 of Rahm & Marek (VLDB '95): a global LRU buffer
// shared by all transactions (no-force, asynchronous writes) plus private
// working spaces reserved per (sub)query (e.g. hash-join hash tables).
//
// Memory is the central contended resource of the paper. The manager
// implements:
//
//   - page-granular Fix/Unfix on the global pool with LRU replacement and
//     asynchronous write-back of dirty victims;
//   - working-space reservation with a FCFS memory queue — a join subquery
//     starts only once its minimal requirement is available (Section 4);
//   - priority-based frame stealing: higher-priority requesters (OLTP) may
//     take frames back from lower-priority working spaces, which is what
//     makes PPHJ "partially preemptible";
//   - free-memory reporting for the control node's LUM / MIN-IO /
//     OPT-IO-CPU strategies.
//
// Accounting: a frame is "in use" if it is pinned by an ongoing operation or
// reserved by a working space. Resident but unpinned global pages are cache
// content, not demand — they are reclaimable and count as available, which
// is what the control node's AVAIL-MEMORY array reports.
package buffer

import (
	"fmt"

	"dynlb/internal/disk"
	"dynlb/internal/sim"
)

// Priority orders requesters for frame stealing; higher values steal from
// lower ones. The paper gives OLTP transactions priority over join queries.
type Priority int

// Priorities used by the engine.
const (
	PriorityQuery Priority = 1
	PriorityOLTP  Priority = 2
)

// DiskHooks let the manager perform page I/O without depending on the
// engine: the engine wires them to the PE's disk subsystem (and charges I/O
// CPU overhead inside the hooks).
type DiskHooks struct {
	// ReadPage synchronously reads pg for the calling process.
	ReadPage func(p *sim.Proc, pg disk.PageID, sequential bool)
	// WriteAsync schedules a background write of pg (no-force policy).
	WriteAsync func(pg disk.PageID)
}

// Manager is the buffer manager of one PE.
type Manager struct {
	k     *sim.Kernel
	name  string
	cap   int
	hooks DiskHooks

	// Global pool state. resident == len(frames); pinned counts frames
	// with pins > 0; reserved counts working-space frames. Frames holding
	// nothing: cap - resident - reserved.
	frames   map[disk.PageID]*frame
	head     *frame // most recently used
	tail     *frame
	resident int
	pinned   int
	reserved int

	spaces []*Space

	frameQ   []*frameWaiter // global Fix waits (served first)
	memQ     []*spaceWaiter // FCFS working-space acquisitions
	draining bool

	fixes, hits, evictions, dirtyEvictions, steals, stolenPages, waits int64
	usedIntegral                                                       float64
	lastAccounted                                                      sim.Time
}

type frame struct {
	id         disk.PageID
	pins       int
	dirty      bool
	prev, next *frame
}

type frameWaiter struct {
	p       *sim.Proc
	granted bool
}

type spaceWaiter struct {
	p       *sim.Proc
	s       *Space
	min     int
	desired int
	granted int
}

// NewManager creates a buffer manager over capacity frames.
func NewManager(k *sim.Kernel, name string, capacity int, hooks DiskHooks) *Manager {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: %s capacity %d", name, capacity))
	}
	return &Manager{
		k: k, name: name, cap: capacity,
		hooks:  hooks,
		frames: make(map[disk.PageID]*frame),
	}
}

// Cap returns total frames.
func (m *Manager) Cap() int { return m.cap }

// Avail returns frames neither pinned nor reserved: the "free memory" the
// control node sees (resident-but-unpinned cache pages are reclaimable).
func (m *Manager) Avail() int { return m.cap - m.pinned - m.reserved }

// AvailNonQuery returns frames not pinned and not reserved by spaces at or
// above OLTP priority: the free memory PEs report to the control node,
// which ledgers join working-space reservations itself.
func (m *Manager) AvailNonQuery() int {
	var r int
	for _, s := range m.spaces {
		if s.prio >= PriorityOLTP {
			r += s.pages
		}
	}
	return m.cap - m.pinned - r
}

// Used returns pinned + reserved frames (demand, not cache content).
func (m *Manager) Used() int { return m.pinned + m.reserved }

// Reserved returns frames reserved by working spaces.
func (m *Manager) Reserved() int { return m.reserved }

// Pinned returns currently pinned global-pool frames.
func (m *Manager) Pinned() int { return m.pinned }

// Resident returns global-pool pages currently in memory.
func (m *Manager) Resident() int { return m.resident }

// Utilization returns the used fraction right now.
func (m *Manager) Utilization() float64 { return float64(m.Used()) / float64(m.cap) }

// account integrates used frames over time for mean utilization.
func (m *Manager) account() {
	now := m.k.Now()
	m.usedIntegral += float64(now-m.lastAccounted) * float64(m.Used())
	m.lastAccounted = now
}

// MeanUtilization returns the time-averaged used fraction since from, given
// a UsedIntegral snapshot taken at from.
func (m *Manager) MeanUtilization(from sim.Time, usedIntAtFrom float64) float64 {
	m.account()
	window := float64(m.k.Now()-from) * float64(m.cap)
	if window <= 0 {
		return 0
	}
	return (m.usedIntegral - usedIntAtFrom) / window
}

// UsedIntegral returns the integral of used frames over time.
func (m *Manager) UsedIntegral() float64 {
	m.account()
	return m.usedIntegral
}

// Fixes returns the number of Fix calls.
func (m *Manager) Fixes() int64 { return m.fixes }

// Hits returns the number of Fix calls that found the page resident.
func (m *Manager) Hits() int64 { return m.hits }

// Evictions returns replaced global pages; DirtyEvictions those that needed
// a write-back.
func (m *Manager) Evictions() int64 { return m.evictions }

// DirtyEvictions returns evictions that scheduled an asynchronous write.
func (m *Manager) DirtyEvictions() int64 { return m.dirtyEvictions }

// Steals returns the number of successful steal operations.
func (m *Manager) Steals() int64 { return m.steals }

// StolenPages returns the total frames taken from working spaces.
func (m *Manager) StolenPages() int64 { return m.stolenPages }

// Waits returns how many requests had to queue for memory.
func (m *Manager) Waits() int64 { return m.waits }

// rawFree returns frames holding nothing at all.
func (m *Manager) rawFree() int { return m.cap - m.resident - m.reserved }

// Fix pins page pg in the global pool, reading it from disk on a miss (the
// calling process pays the I/O). dirty marks the page modified. It reports
// whether the page was already resident.
func (m *Manager) Fix(p *sim.Proc, pg disk.PageID, dirty, sequential bool, prio Priority) bool {
	m.fixes++
	if f, ok := m.frames[pg]; ok {
		m.hits++
		m.pin(f, dirty)
		m.moveFront(f)
		return true
	}
	m.takeFrame(p, prio)
	// Frame secured (accounted as resident+pinned placeholder); pay the read.
	m.account()
	m.resident++
	m.pinned++
	m.hooks.ReadPage(p, pg, sequential)
	// A concurrent Fix may have inserted pg while we were reading.
	if f, ok := m.frames[pg]; ok {
		m.account()
		m.resident--
		m.pinned--
		m.pin(f, dirty)
		m.moveFront(f)
		m.drain()
		return false
	}
	f := &frame{id: pg, pins: 1, dirty: dirty}
	m.frames[pg] = f
	m.pushFront(f)
	return false
}

func (m *Manager) pin(f *frame, dirty bool) {
	if f.pins == 0 {
		m.account()
		m.pinned++
	}
	f.pins++
	f.dirty = f.dirty || dirty
}

// Unfix releases one pin on pg.
func (m *Manager) Unfix(pg disk.PageID) {
	f, ok := m.frames[pg]
	if !ok {
		panic(fmt.Sprintf("buffer: %s unfix of non-resident page %v", m.name, pg))
	}
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: %s unfix of unpinned page %v", m.name, pg))
	}
	f.pins--
	if f.pins == 0 {
		m.account()
		m.pinned--
		m.drain()
	}
}

// takeFrame secures one physical frame: raw free list, LRU eviction of an
// unpinned page, steal from a lower-priority working space, then wait.
// On return the frame is NOT yet counted; the caller accounts it.
func (m *Manager) takeFrame(p *sim.Proc, prio Priority) {
	for {
		if m.rawFree() > 0 {
			return
		}
		if m.evictOne() {
			continue
		}
		if m.stealFrames(1, prio) > 0 {
			continue
		}
		m.waits++
		w := &frameWaiter{p: p}
		m.frameQ = append(m.frameQ, w)
		p.Park()
		if w.granted {
			return
		}
	}
}

// evictOne removes the least recently used unpinned global page, scheduling
// an asynchronous write if dirty. It reports success.
func (m *Manager) evictOne() bool {
	for f := m.tail; f != nil; f = f.prev {
		if f.pins > 0 {
			continue
		}
		m.evictions++
		if f.dirty {
			m.dirtyEvictions++
			if m.hooks.WriteAsync != nil {
				m.hooks.WriteAsync(f.id)
			}
		}
		m.remove(f)
		delete(m.frames, f.id)
		m.account()
		m.resident--
		return true
	}
	return false
}

// Evict removes pg from the pool if resident and unpinned (used when a
// temporary file is dropped). It reports whether a frame was freed.
func (m *Manager) Evict(pg disk.PageID) bool {
	f, ok := m.frames[pg]
	if !ok || f.pins > 0 {
		return false
	}
	m.remove(f)
	delete(m.frames, pg)
	m.account()
	m.resident--
	m.drain()
	return true
}

// stealFrames asks working spaces with priority below prio to release
// frames. Handlers flush partitions and call Space.Release, which raises
// rawFree. Returns the number of frames released.
func (m *Manager) stealFrames(need int, prio Priority) int {
	var got int
	for _, s := range m.spaces {
		if s.prio >= prio || s.onSteal == nil || s.pages <= s.min {
			continue
		}
		got += s.onSteal(need - got)
		if got >= need {
			break
		}
	}
	if got > 0 {
		m.steals++
		m.stolenPages += int64(got)
	}
	return got
}

// drain serves waiters after memory became available: global frame waiters
// first (they model higher-priority page demand), then the FCFS memory queue
// of working-space acquisitions. Re-entrant calls (steal handlers release
// frames mid-drain) fall through to the outer loop.
func (m *Manager) drain() {
	if m.draining {
		return
	}
	m.draining = true
	defer func() { m.draining = false }()
	for len(m.frameQ) > 0 {
		if m.rawFree() < 1 && !m.evictOne() {
			break
		}
		w := m.frameQ[0]
		copy(m.frameQ, m.frameQ[1:])
		m.frameQ[len(m.frameQ)-1] = nil
		m.frameQ = m.frameQ[:len(m.frameQ)-1]
		w.granted = true
		w.p.Unpark()
	}
	for len(m.memQ) > 0 {
		w := m.memQ[0]
		if m.Avail() < w.min {
			// Liveness breaker: reclaim above-minimum frames from running
			// query spaces so the queue head can start with its minimum.
			// Without this, queries whose subjoins hold memory on one node
			// while waiting on another can deadlock each other.
			if m.stealFrames(w.min-m.Avail(), PriorityOLTP) == 0 {
				break
			}
			if m.Avail() < w.min {
				break
			}
		}
		grant := min(w.desired, m.Avail())
		m.reclaim(grant)
		m.account()
		m.reserved += grant
		w.s.pages += grant
		w.granted = grant
		copy(m.memQ, m.memQ[1:])
		m.memQ[len(m.memQ)-1] = nil
		m.memQ = m.memQ[:len(m.memQ)-1]
		w.p.Unpark()
	}
}

// reclaim turns n available frames into raw-free frames by evicting
// unpinned pages as needed. Caller guarantees Avail() >= n.
func (m *Manager) reclaim(n int) {
	for m.rawFree() < n {
		if !m.evictOne() {
			panic(fmt.Sprintf("buffer: %s reclaim(%d) with avail %d: accounting bug", m.name, n, m.Avail()))
		}
	}
}

// lru list helpers.
func (m *Manager) pushFront(f *frame) {
	f.next = m.head
	if m.head != nil {
		m.head.prev = f
	}
	m.head = f
	if m.tail == nil {
		m.tail = f
	}
}

func (m *Manager) remove(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		m.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		m.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (m *Manager) moveFront(f *frame) {
	if m.head == f {
		return
	}
	m.remove(f)
	m.pushFront(f)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
