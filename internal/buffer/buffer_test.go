package buffer

import (
	"testing"

	"dynlb/internal/disk"
	"dynlb/internal/sim"
)

// testHooks counts I/O and charges a fixed simulated delay per read.
type testHooks struct {
	reads  int
	writes int
}

func (h *testHooks) hooks() DiskHooks {
	return DiskHooks{
		ReadPage: func(p *sim.Proc, pg disk.PageID, seq bool) {
			h.reads++
			p.Wait(10 * sim.Millisecond)
		},
		WriteAsync: func(pg disk.PageID) { h.writes++ },
	}
}

func pg(n int64) disk.PageID { return disk.PageID{Space: 1, Page: n} }

func TestFixMissThenHit(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("p", func(p *sim.Proc) {
		if m.Fix(p, pg(1), false, false, PriorityOLTP) {
			t.Error("first fix reported hit")
		}
		m.Unfix(pg(1))
		if !m.Fix(p, pg(1), false, false, PriorityOLTP) {
			t.Error("second fix reported miss")
		}
		m.Unfix(pg(1))
	})
	k.RunAll()
	if h.reads != 1 {
		t.Errorf("reads=%d, want 1", h.reads)
	}
	if m.Hits() != 1 || m.Fixes() != 2 {
		t.Errorf("hits=%d fixes=%d", m.Hits(), m.Fixes())
	}
}

func TestPinAccounting(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("p", func(p *sim.Proc) {
		m.Fix(p, pg(1), false, false, PriorityOLTP)
		m.Fix(p, pg(2), false, false, PriorityOLTP)
		if m.Pinned() != 2 || m.Avail() != 8 {
			t.Errorf("pinned=%d avail=%d, want 2/8", m.Pinned(), m.Avail())
		}
		m.Unfix(pg(1))
		if m.Pinned() != 1 || m.Avail() != 9 {
			t.Errorf("after unfix pinned=%d avail=%d, want 1/9", m.Pinned(), m.Avail())
		}
		if m.Resident() != 2 {
			t.Errorf("resident=%d, want 2 (unpinned page stays cached)", m.Resident())
		}
		m.Unfix(pg(2))
	})
	k.RunAll()
}

func TestLRUEvictionOrderAndDirtyWriteback(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 3, h.hooks())
	k.Spawn("p", func(p *sim.Proc) {
		for i := int64(1); i <= 3; i++ {
			m.Fix(p, pg(i), i == 1, false, PriorityOLTP) // page 1 dirty
			m.Unfix(pg(i))
		}
		// touch page 1 so page 2 becomes LRU
		m.Fix(p, pg(1), false, false, PriorityOLTP)
		m.Unfix(pg(1))
		// new page must evict page 2 (clean), no writeback yet
		m.Fix(p, pg(4), false, false, PriorityOLTP)
		m.Unfix(pg(4))
		if h.writes != 0 {
			t.Errorf("clean eviction wrote back: writes=%d", h.writes)
		}
		// next eviction victim is page 3 (clean), then page 1 (dirty)
		m.Fix(p, pg(5), false, false, PriorityOLTP)
		m.Unfix(pg(5))
		m.Fix(p, pg(6), false, false, PriorityOLTP)
		m.Unfix(pg(6))
		if h.writes != 1 {
			t.Errorf("dirty eviction writebacks=%d, want 1", h.writes)
		}
	})
	k.RunAll()
	if m.Evictions() != 3 || m.DirtyEvictions() != 1 {
		t.Errorf("evictions=%d dirty=%d, want 3/1", m.Evictions(), m.DirtyEvictions())
	}
}

func TestFixWaitsWhenAllPinnedAndWakesOnUnfix(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 2, h.hooks())
	var blockedAt, resumedAt sim.Time
	k.Spawn("holder", func(p *sim.Proc) {
		m.Fix(p, pg(1), false, false, PriorityOLTP)
		m.Fix(p, pg(2), false, false, PriorityOLTP)
		p.Wait(50 * sim.Millisecond)
		m.Unfix(pg(1))
		m.Unfix(pg(2))
	})
	k.SpawnAt(30*sim.Millisecond, "waiter", func(p *sim.Proc) {
		blockedAt = p.Now()
		m.Fix(p, pg(3), false, false, PriorityOLTP)
		resumedAt = p.Now()
		m.Unfix(pg(3))
	})
	k.RunAll()
	if blockedAt != 30*sim.Millisecond {
		t.Fatalf("waiter started at %v", blockedAt)
	}
	// holder unfixes at 70ms (two 10ms reads + 50ms), waiter then reads 10ms
	if resumedAt != 80*sim.Millisecond {
		t.Errorf("waiter resumed at %v, want 80ms", resumedAt)
	}
	if m.Waits() == 0 {
		t.Error("wait not counted")
	}
}

func TestSpaceAcquireFastPath(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("j", func(p *sim.Proc) {
		s := m.NewSpace("join", PriorityQuery, 2)
		got := s.Acquire(p, 6)
		if got != 6 {
			t.Errorf("granted %d, want 6", got)
		}
		if m.Reserved() != 6 || m.Avail() != 4 {
			t.Errorf("reserved=%d avail=%d", m.Reserved(), m.Avail())
		}
		s.Close()
		if m.Reserved() != 0 || m.Avail() != 10 {
			t.Errorf("after close reserved=%d avail=%d", m.Reserved(), m.Avail())
		}
	})
	k.RunAll()
}

func TestSpaceAcquireTakesWhatIsAvailable(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("j", func(p *sim.Proc) {
		s1 := m.NewSpace("j1", PriorityQuery, 2)
		if got := s1.Acquire(p, 7); got != 7 {
			t.Fatalf("j1 granted %d", got)
		}
		s2 := m.NewSpace("j2", PriorityQuery, 2)
		// only 3 available; desired 8 -> grant 3 (>= min 2)
		if got := s2.Acquire(p, 8); got != 3 {
			t.Errorf("j2 granted %d, want 3", got)
		}
	})
	k.RunAll()
}

func TestSpaceAcquireQueuesFCFSUntilMin(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	var order []string
	k.Spawn("j1", func(p *sim.Proc) {
		s := m.NewSpace("j1", PriorityQuery, 2)
		s.Acquire(p, 10) // takes all 10
		p.Wait(20 * sim.Millisecond)
		s.Close()
	})
	k.SpawnAt(sim.Millisecond, "j2", func(p *sim.Proc) {
		s := m.NewSpace("j2", PriorityQuery, 4)
		got := s.Acquire(p, 4)
		order = append(order, "j2")
		if got != 4 {
			t.Errorf("j2 granted %d, want 4", got)
		}
		s.Close()
	})
	k.SpawnAt(2*sim.Millisecond, "j3", func(p *sim.Proc) {
		s := m.NewSpace("j3", PriorityQuery, 1)
		s.Acquire(p, 1)
		order = append(order, "j3")
		s.Close()
	})
	k.RunAll()
	if len(order) != 2 || order[0] != "j2" || order[1] != "j3" {
		t.Fatalf("memory queue order %v; want FCFS [j2 j3]", order)
	}
}

func TestSpaceAcquireReclaimsUnpinnedPages(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 4, h.hooks())
	k.Spawn("p", func(p *sim.Proc) {
		for i := int64(1); i <= 4; i++ {
			m.Fix(p, pg(i), false, false, PriorityOLTP)
			m.Unfix(pg(i))
		}
		if m.Resident() != 4 || m.Avail() != 4 {
			t.Fatalf("resident=%d avail=%d", m.Resident(), m.Avail())
		}
		s := m.NewSpace("j", PriorityQuery, 3)
		if got := s.Acquire(p, 3); got != 3 {
			t.Fatalf("granted %d", got)
		}
		if m.Resident() > 1 {
			t.Errorf("resident=%d after reclaim, want <= 1", m.Resident())
		}
		s.Close()
	})
	k.RunAll()
}

func TestStealFromLowerPrioritySpace(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	var stealAsked int
	k.Spawn("join", func(p *sim.Proc) {
		s := m.NewSpace("join", PriorityQuery, 2)
		s.Acquire(p, 10)
		s.SetStealHandler(func(need int) int {
			stealAsked += need
			give := 3 // flush one partition worth
			s.Release(give)
			return give
		})
		p.Wait(100 * sim.Millisecond)
		s.Close()
	})
	k.SpawnAt(10*sim.Millisecond, "oltp", func(p *sim.Proc) {
		m.Fix(p, pg(99), false, false, PriorityOLTP)
		m.Unfix(pg(99))
	})
	k.RunAll()
	if stealAsked == 0 {
		t.Fatal("steal handler never invoked")
	}
	if m.Steals() != 1 || m.StolenPages() != 3 {
		t.Errorf("steals=%d stolenPages=%d, want 1/3", m.Steals(), m.StolenPages())
	}
}

func TestStealRespectsMinAndPriority(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 4, h.hooks())
	k.Spawn("join", func(p *sim.Proc) {
		s := m.NewSpace("join", PriorityQuery, 4)
		s.Acquire(p, 4) // at min: not stealable
		s.SetStealHandler(func(need int) int {
			t.Error("steal handler called on space at its minimum")
			return 0
		})
		p.Wait(30 * sim.Millisecond)
		s.Close()
	})
	var fixedAt sim.Time
	k.SpawnAt(5*sim.Millisecond, "oltp", func(p *sim.Proc) {
		m.Fix(p, pg(50), false, false, PriorityOLTP) // must wait for Close
		fixedAt = p.Now()
		m.Unfix(pg(50))
	})
	k.RunAll()
	if fixedAt < 30*sim.Millisecond {
		t.Errorf("OLTP fix completed at %v; should have waited for space close", fixedAt)
	}
}

func TestQueryCannotStealFromQuery(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 4, h.hooks())
	stolen := false
	k.Spawn("join1", func(p *sim.Proc) {
		s := m.NewSpace("join1", PriorityQuery, 1)
		s.Acquire(p, 4)
		s.SetStealHandler(func(need int) int {
			stolen = true
			s.Release(need)
			return need
		})
		p.Wait(20 * sim.Millisecond)
		s.Close()
	})
	k.SpawnAt(sim.Millisecond, "join2-page", func(p *sim.Proc) {
		// equal priority: must wait, not steal
		m.Fix(p, pg(7), false, false, PriorityQuery)
		m.Unfix(pg(7))
	})
	k.RunAll()
	if stolen {
		t.Error("equal-priority requester stole frames")
	}
}

func TestTryGrowRespectsQueue(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("j1", func(p *sim.Proc) {
		s := m.NewSpace("j1", PriorityQuery, 2)
		s.Acquire(p, 8)
		p.Wait(10 * sim.Millisecond)
		// j2 is queued needing 4: growth must be denied
		if got := s.TryGrow(2); got != 0 {
			t.Errorf("TryGrow granted %d with queued waiter", got)
		}
		s.Release(6)
		p.Wait(10 * sim.Millisecond)
		s.Close()
	})
	k.SpawnAt(sim.Millisecond, "j2", func(p *sim.Proc) {
		s := m.NewSpace("j2", PriorityQuery, 4)
		s.Acquire(p, 4)
		s.Close()
	})
	k.RunAll()
}

func TestTryGrowGrantsWhenFree(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("j", func(p *sim.Proc) {
		s := m.NewSpace("j", PriorityQuery, 2)
		s.Acquire(p, 4)
		if got := s.TryGrow(3); got != 3 {
			t.Errorf("TryGrow granted %d, want 3", got)
		}
		if s.Pages() != 7 {
			t.Errorf("pages=%d, want 7", s.Pages())
		}
		s.Close()
	})
	k.RunAll()
}

func TestMeanUtilizationWindow(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 10, h.hooks())
	k.Spawn("j", func(p *sim.Proc) {
		s := m.NewSpace("j", PriorityQuery, 5)
		s.Acquire(p, 5)
		p.Wait(100 * sim.Millisecond)
		s.Close()
	})
	k.Run(100 * sim.Millisecond)
	u := m.MeanUtilization(0, 0)
	if u < 0.49 || u > 0.51 {
		t.Errorf("mean utilization = %v, want ~0.5", u)
	}
}

func TestUnfixPanics(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 4, h.hooks())
	defer func() {
		if recover() == nil {
			t.Error("unfix of non-resident page did not panic")
		}
	}()
	m.Unfix(pg(1))
}

func TestEvictDropsUnpinnedPage(t *testing.T) {
	k := sim.NewKernel()
	h := &testHooks{}
	m := NewManager(k, "pe0", 4, h.hooks())
	k.Spawn("p", func(p *sim.Proc) {
		m.Fix(p, pg(1), false, false, PriorityOLTP)
		if m.Evict(pg(1)) {
			t.Error("evicted a pinned page")
		}
		m.Unfix(pg(1))
		if !m.Evict(pg(1)) {
			t.Error("failed to evict unpinned page")
		}
		if m.Resident() != 0 {
			t.Errorf("resident=%d", m.Resident())
		}
	})
	k.RunAll()
}
