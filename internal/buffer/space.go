package buffer

import (
	"fmt"

	"dynlb/internal/sim"
)

// Space is a private working space: a block of frames reserved for one
// (sub)query, e.g. the hash table of a PPHJ join process. Acquisition goes
// through the manager's FCFS memory queue; a lower-priority space may later
// lose frames above its minimum to higher-priority demand via the steal
// handler.
type Space struct {
	m       *Manager
	name    string
	prio    Priority
	min     int
	pages   int
	onSteal func(need int) int
	closed  bool
}

// NewSpace registers an empty working space. min is the smallest reservation
// the owner can operate with (p pages for a PPHJ join with p partitions).
func (m *Manager) NewSpace(name string, prio Priority, minPages int) *Space {
	if minPages < 0 {
		panic(fmt.Sprintf("buffer: space %s min %d", name, minPages))
	}
	s := &Space{m: m, name: name, prio: prio, min: minPages}
	m.spaces = append(m.spaces, s)
	return s
}

// Name returns the space name.
func (s *Space) Name() string { return s.name }

// Pages returns the frames currently reserved.
func (s *Space) Pages() int { return s.pages }

// Min returns the minimal reservation.
func (s *Space) Min() int { return s.min }

// SetStealHandler installs fn, called (in the stealer's context) when a
// higher-priority requester needs frames. fn must release frames via
// Release and return how many it released; it must not block.
func (s *Space) SetStealHandler(fn func(need int) int) { s.onSteal = fn }

// Acquire blocks in the FCFS memory queue until at least Min frames are
// available, then reserves up to desired frames (whatever is available at
// grant time, at least Min). It returns the number granted.
//
// Acquire models the paper's join start rule: "a join query is only started
// at a node if the minimal space requirements of p pages are available;
// otherwise the join is forced to wait in a memory queue (FCFS)".
func (s *Space) Acquire(p *sim.Proc, desired int) int {
	if s.closed {
		panic(fmt.Sprintf("buffer: acquire on closed space %s", s.name))
	}
	if desired < s.min {
		desired = s.min
	}
	m := s.m
	if len(m.memQ) == 0 && len(m.frameQ) == 0 && m.Avail() >= s.min {
		grant := min(desired, m.Avail())
		m.reclaim(grant)
		m.account()
		m.reserved += grant
		s.pages += grant
		return grant
	}
	m.waits++
	w := &spaceWaiter{p: p, s: s, min: s.min, desired: desired}
	m.memQ = append(m.memQ, w)
	// Let the queue make progress immediately: the liveness breaker in
	// drain may reclaim above-minimum frames from running spaces for the
	// queue head (the grant, if any, arrives via Unpark).
	m.drain()
	p.Park()
	return w.granted
}

// AcquireBestEffort reserves up to n frames without blocking and without
// entering the FCFS memory queue, stealing from lower-priority spaces when
// the pool is short. It returns the number granted (possibly 0). This is
// the high-priority path: OLTP private workspaces take their frames ahead
// of queued join reservations (the paper's OLTP memory priority).
func (s *Space) AcquireBestEffort(p *sim.Proc, n int) int {
	if s.closed {
		panic(fmt.Sprintf("buffer: acquire on closed space %s", s.name))
	}
	m := s.m
	if n <= 0 {
		return 0
	}
	if m.Avail() < n {
		m.stealFrames(n-m.Avail(), s.prio)
	}
	grant := min(n, m.Avail())
	if grant <= 0 {
		return 0
	}
	m.reclaim(grant)
	m.account()
	m.reserved += grant
	s.pages += grant
	return grant
}

// TryGrow attempts to reserve up to n additional frames without blocking
// and without overtaking queued requests. It returns the number granted.
// PPHJ uses this to bring disk-resident partitions back when memory frees
// up ("if more memory becomes available for join processing...").
func (s *Space) TryGrow(n int) int {
	m := s.m
	if s.closed || n <= 0 || len(m.memQ) > 0 || len(m.frameQ) > 0 {
		return 0
	}
	grant := min(n, m.Avail())
	if grant <= 0 {
		return 0
	}
	m.reclaim(grant)
	m.account()
	m.reserved += grant
	s.pages += grant
	return grant
}

// Release returns n reserved frames to the pool and wakes waiters.
func (s *Space) Release(n int) {
	if n < 0 || n > s.pages {
		panic(fmt.Sprintf("buffer: space %s release %d of %d", s.name, n, s.pages))
	}
	if n == 0 {
		return
	}
	m := s.m
	m.account()
	s.pages -= n
	m.reserved -= n
	m.drain()
}

// Close releases all frames and deregisters the space.
func (s *Space) Close() {
	if s.closed {
		return
	}
	s.Release(s.pages)
	s.closed = true
	for i, sp := range s.m.spaces {
		if sp == s {
			s.m.spaces = append(s.m.spaces[:i], s.m.spaces[i+1:]...)
			break
		}
	}
}
