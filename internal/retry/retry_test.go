package retry

import (
	"testing"
	"time"
)

// TestDelayMatchesEngineTable pins the exact schedule the engine's fault
// retry path used before the extraction (100 ms << min(n, 5), capped at
// 3.2 s): the golden failover CSVs depend on these values bit for bit.
func TestDelayMatchesEngineTable(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: 3200 * time.Millisecond}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		3200 * time.Millisecond, // capped from here on
	}
	for n, w := range want {
		if got := b.Delay(n); got != w {
			t.Errorf("Delay(%d) = %v, want %v", n, got, w)
		}
	}
	if got := b.Delay(1000); got != 3200*time.Millisecond {
		t.Errorf("Delay(1000) = %v, want cap", got)
	}
}

func TestDelayEdgeCases(t *testing.T) {
	b := Backoff{Base: 250 * time.Millisecond, Cap: 5 * time.Second}
	if got := b.Delay(-3); got != b.Base {
		t.Errorf("negative attempt: got %v, want Base %v", got, b.Base)
	}
	// Attempt counts far beyond the doubling range must saturate at Cap,
	// never overflow into a negative duration.
	if got := b.Delay(200); got != b.Cap {
		t.Errorf("Delay(200) = %v, want Cap %v", got, b.Cap)
	}
	// Base above Cap degrades to Cap rather than exceeding the bound.
	odd := Backoff{Base: time.Minute, Cap: time.Second}
	if got := odd.Delay(0); got != time.Second {
		t.Errorf("Base>Cap: got %v, want Cap", got)
	}
	var zero Backoff
	if got := zero.Delay(7); got != 0 {
		t.Errorf("zero policy: got %v, want 0", got)
	}
}
