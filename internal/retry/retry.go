// Package retry provides the deterministic capped exponential backoff
// policy shared by the simulation engine's fault-retry path (aborted
// attempts re-entering the arrival flow after a simulated PE crash) and the
// distributed coordinator's re-dispatch path (slot ranges re-sent after a
// worker death or timeout).
//
// The policy is intentionally jitter-free: the engine schedules backoff in
// simulated time, where any randomness would perturb the seed-deterministic
// event stream, and the coordinator's correctness never depends on delay
// spreading (ranges re-dispatch to a different worker, not the same one).
package retry

import "time"

// Backoff is a capped exponential backoff policy: the delay before retry
// attempt n (0-based) is Base·2ⁿ, saturating at Cap. The zero value is
// degenerate (all delays 0); both fields should be positive with Cap >=
// Base.
type Backoff struct {
	Base time.Duration // delay before the first retry (attempt 0)
	Cap  time.Duration // upper bound the doubling saturates at
}

// Delay returns the backoff before retry attempt n (0-based). Negative
// attempts are treated as 0. The doubling loop stops at Cap, so large
// attempt counts can never overflow into negative delays.
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	if d > b.Cap {
		return b.Cap
	}
	for ; attempt > 0 && d < b.Cap; attempt-- {
		d <<= 1
	}
	if d > b.Cap {
		d = b.Cap
	}
	return d
}
