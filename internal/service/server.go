package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dynlb"
)

// Server is the HTTP/JSON surface of the experiment service:
//
//	POST   /v1/experiments            submit an ExperimentRequest document
//	GET    /v1/experiments            list jobs (submission order)
//	GET    /v1/experiments/{id}       job status
//	DELETE /v1/experiments/{id}       cancel a job (prompt, ctx.Err())
//	GET    /v1/experiments/{id}/rows  stream rows over SSE as slots complete
//	GET    /healthz                   liveness + pool/cache stats
//
// The rows endpoint streams Server-Sent Events: one "row" event per
// experiment row (compact dynlb.Row JSON, in the library's deterministic
// order — late subscribers replay the full prefix first), then a single
// "done" event carrying the final Status, or an "error" event for a failed
// or cancelled job. With ?format=csv or ?format=json it instead blocks
// until the job is terminal and returns the whole row set through
// dynlb.WriteRowsCSV / dynlb.WriteRowsJSON — byte-identical to the same
// experiment exported by cmd/experiments.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wraps a scheduler in the HTTP API.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/experiments", s.submit)
	s.mux.HandleFunc("GET /v1/experiments", s.list)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.status)
	s.mux.HandleFunc("DELETE /v1/experiments/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/experiments/{id}/rows", s.rows)
	s.mux.HandleFunc("GET /healthz", s.health)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes a JSON response body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the transport owns write failures
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields() // a typoed option must not silently become a default
	var req dynlb.ExperimentRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	j, err := s.sched.Submit(&req)
	switch {
	case errors.Is(err, ErrBusy):
		// The hint tracks the pool's actual drain rate (backlog x observed
		// mean slot time) instead of a fixed second, so clients back off
		// proportionally to how overloaded the scheduler really is.
		w.Header().Set("Retry-After", strconv.Itoa(s.sched.RetryAfter()))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if st.State == string(JobDone) { // cache hit (or simulation-free plan)
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.List())
}

// job resolves the {id} path value, answering 404 itself on a miss.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.sched.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	j, err := s.sched.Cancel(j.ID())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) rows(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "sse":
		s.streamSSE(w, r, j)
	case "csv", "json":
		s.collect(w, r, j, format)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want sse, csv or json)", format))
	}
}

// streamSSE streams the job's rows as Server-Sent Events in deterministic
// order: replay everything emitted so far, then follow completions until
// the job is terminal or the client goes away.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sent := 0
	for {
		batch, state, jobErr, change := j.snapshotFrom(sent)
		for _, row := range batch {
			data, err := dynlb.MarshalRowJSON(row)
			if err != nil {
				fmt.Fprintf(w, "event: error\ndata: {\"error\": %q}\n\n", err.Error())
				flusher.Flush()
				return
			}
			fmt.Fprintf(w, "event: row\nid: %d\ndata: %s\n\n", sent, data)
			sent++
		}
		if len(batch) > 0 {
			flusher.Flush()
		}
		switch state {
		case JobDone:
			st, _ := json.Marshal(j.Status())
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", st)
			flusher.Flush()
			return
		case JobFailed, JobCancelled:
			fmt.Fprintf(w, "event: error\ndata: {\"error\": %q}\n\n", jobErr.Error())
			flusher.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-change:
		}
	}
}

// collect blocks until the job is terminal and writes the complete row set
// in the requested format — the same writers cmd/experiments uses, so the
// bytes match a local export exactly.
func (s *Server) collect(w http.ResponseWriter, r *http.Request, j *Job, format string) {
	select {
	case <-r.Context().Done():
		return
	case <-j.Done():
	}
	if err := j.Err(); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	rows := j.Rows()
	if format == "csv" {
		w.Header().Set("Content-Type", "text/csv")
		dynlb.WriteRowsCSV(w, rows) //nolint:errcheck // the transport owns write failures
		return
	}
	w.Header().Set("Content-Type", "application/json")
	dynlb.WriteRowsJSON(w, rows) //nolint:errcheck
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	entries, hits, misses := s.sched.Cache().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"workers":      s.sched.Workers(),
		"jobs":         len(s.sched.List()),
		"cache_rows":   entries,
		"cache_hits":   hits,
		"cache_misses": misses,
	})
}
