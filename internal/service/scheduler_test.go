package service

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynlb"
)

// tinyBase is the cheapest meaningful simulation configuration: tiny
// system, sub-second windows.
func tinyBase() dynlb.Config {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 5
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = dynlb.Seconds(0.5)
	cfg.MeasureTime = dynlb.Seconds(1)
	return cfg
}

// tinyReq is a four-slot sweep request (4 system sizes x 1 strategy).
func tinyReq(name string, seed int64) *dynlb.ExperimentRequest {
	base := tinyBase()
	return &dynlb.ExperimentRequest{
		Seed: &seed,
		Sweep: &dynlb.SweepSpec{
			Name:       name,
			Base:       &base,
			Strategies: []string{"MIN-IO"},
			Axes: []dynlb.AxisSpec{
				{Name: "#PE", Field: "NPE", Values: []float64{4, 5, 6, 7}},
			},
		},
	}
}

// idleScheduler returns a scheduler with no worker goroutines, so tests
// can drive claim/slotDone by hand and observe the dispatch discipline.
func idleScheduler(capacity, cacheSize int) *Scheduler {
	s := &Scheduler{
		workers:  1,
		capacity: capacity,
		cache:    NewCache(cacheSize),
		jobs:     make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// waitJob fails the test if the job does not reach a terminal state
// quickly.
func waitJob(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID(), j.Status())
	}
}

// TestRoundRobinFairness: with two competing jobs, the dispatch ring hands
// out one slot per job per rotation — interleaved slot completion, so a
// long sweep cannot starve a short one — and the rows that come out of the
// interleaved schedule are exactly the library's.
func TestRoundRobinFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := idleScheduler(4, 0)
	ja, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	jb, err := s.Submit(tinyReq("b", 2))
	if err != nil {
		t.Fatal(err)
	}

	var order []string
	for k := 0; k < 8; k++ {
		j, i, ok := s.claim()
		if !ok {
			t.Fatal("claim returned stopped")
		}
		order = append(order, j.ID())
		// Drive the slot to completion in claim order, as a 1-worker pool
		// would: completions interleave between the jobs.
		if err := j.plan.RunJob(i); err != nil {
			t.Fatal(err)
		}
		s.slotDone(j, i, nil)
	}
	want := []string{ja.ID(), jb.ID(), ja.ID(), jb.ID(), ja.ID(), jb.ID(), ja.ID(), jb.ID()}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("claim order %v, want round-robin %v", order, want)
	}
	for _, j := range []*Job{ja, jb} {
		st := j.Status()
		if st.State != string(JobDone) || st.Rows != st.RowsTotal || st.Simulated != 4 {
			t.Errorf("job %s not cleanly done: %+v", j.ID(), st)
		}
	}

	// The interleaved schedule changed nothing: rows match a plain
	// library run of the same request.
	exp, err := tinyReq("a", 1).Experiment()
	if err != nil {
		t.Fatal(err)
	}
	want2, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ja.Rows(), want2) {
		t.Errorf("scheduler rows differ from library rows")
	}
}

// TestBackpressure: admission is bounded — beyond capacity concurrent
// jobs, Submit reports ErrBusy (HTTP 429) instead of queueing without
// limit.
func TestBackpressure(t *testing.T) {
	s := idleScheduler(2, 0) // no workers: nothing drains
	if _, err := s.Submit(tinyReq("a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tinyReq("b", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tinyReq("c", 3)); !errors.Is(err, ErrBusy) {
		t.Fatalf("third submit: error %v, want ErrBusy", err)
	}
	// A finished job frees its admission slot.
	ja, _ := s.Job("j1")
	if _, err := s.Cancel(ja.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tinyReq("c", 3)); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
}

// TestCancelPrompt: DELETE-style cancellation turns the job terminal
// immediately with ctx.Err(), without waiting for queued slots, and the
// dispatch ring stops handing out its slots.
func TestCancelPrompt(t *testing.T) {
	s := idleScheduler(4, 0) // no workers: every slot still queued
	j, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if d := time.Since(start); d > time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
	if !errors.Is(j.Err(), context.Canceled) {
		t.Errorf("cancelled job error %v, want context.Canceled", j.Err())
	}
	if st := j.Status(); st.State != string(JobCancelled) {
		t.Errorf("state %q, want cancelled", st.State)
	}
	// Its slots are no longer claimable: submit a fresh job and verify the
	// next claims all belong to it.
	j2, err := s.Submit(tinyReq("b", 2))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		got, _, ok := s.claim()
		if !ok || got != j2 {
			t.Fatalf("claim %d handed out job %v, want %s", k, got, j2.ID())
		}
	}
	// Cancelling twice (or after terminal) is a no-op.
	if _, err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel("nope"); err == nil {
		t.Error("cancel of unknown id succeeded")
	}
}

// TestCancelDiscardsInFlight: a slot simulating while its job is cancelled
// finishes in the background and is discarded — the job stays cancelled
// with ctx.Err() and emits no further rows.
func TestCancelDiscardsInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := idleScheduler(4, 0)
	j, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	_, i, ok := s.claim()
	if !ok {
		t.Fatal("claim failed")
	}
	if err := j.plan.RunJob(i); err != nil { // slot "in flight"
		t.Fatal(err)
	}
	if _, err := s.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	s.slotDone(j, i, nil) // the in-flight slot lands after cancellation
	st := j.Status()
	if st.State != string(JobCancelled) || st.Rows != 0 {
		t.Errorf("post-cancel completion changed the job: %+v", st)
	}
	if !errors.Is(j.Err(), context.Canceled) {
		t.Errorf("error %v, want context.Canceled", j.Err())
	}
}

// TestCacheHitBitIdentical: resubmitting an identical request is served
// from the result cache — zero simulations executed, Cached marker set —
// and the rows are byte-identical through the CSV writer.
func TestCacheHitBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := New(2, 4, 8)
	defer s.Close()
	j1, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j1)
	if st := j1.Status(); st.Cached || st.Simulated != 4 {
		t.Fatalf("first run unexpectedly cached: %+v", st)
	}

	j2, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2) // already terminal: cache hits complete at submit
	st := j2.Status()
	if !st.Cached {
		t.Fatalf("resubmit not served from cache: %+v", st)
	}
	if st.Simulated != 0 {
		t.Errorf("cache hit executed %d simulations, want 0", st.Simulated)
	}
	var csv1, csv2 bytes.Buffer
	if err := dynlb.WriteRowsCSV(&csv1, j1.Rows()); err != nil {
		t.Fatal(err)
	}
	if err := dynlb.WriteRowsCSV(&csv2, j2.Rows()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Error("cache-hit rows are not byte-identical to the original run")
	}
	// The parallelism hint is not part of the identity: a different
	// workers value still hits.
	req := tinyReq("a", 1)
	req.Workers = 7
	j3, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !j3.Status().Cached {
		t.Error("workers-only difference missed the cache")
	}
	// A row-changing difference does not.
	j4, err := s.Submit(tinyReq("a", 99))
	if err != nil {
		t.Fatal(err)
	}
	if j4.Status().Cached {
		t.Error("different seed hit the cache")
	}
	waitJob(t, j4)
}

// TestSubmitValidation: malformed requests are rejected at submit, before
// consuming an admission slot.
func TestSubmitValidation(t *testing.T) {
	s := idleScheduler(1, 0)
	if _, err := s.Submit(&dynlb.ExperimentRequest{}); err == nil {
		t.Error("empty request admitted")
	}
	if _, err := s.Submit(&dynlb.ExperimentRequest{Figure: "nope"}); err == nil {
		t.Error("unknown figure admitted")
	}
	// Neither consumed capacity.
	if _, err := s.Submit(tinyReq("a", 1)); err != nil {
		t.Fatalf("valid submit after rejects: %v", err)
	}
}

// TestCacheEviction: the cache is bounded FIFO.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", nil)
	c.Put("b", nil)
	c.Put("c", nil) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %q evicted early", k)
		}
	}
	entries, hits, misses := c.Stats()
	if entries != 2 || hits != 2 || misses != 1 {
		t.Errorf("stats (%d, %d, %d), want (2, 2, 1)", entries, hits, misses)
	}
	// Size 0 disables caching entirely.
	c0 := NewCache(0)
	c0.Put("a", nil)
	if _, ok := c0.Get("a"); ok {
		t.Error("zero-size cache stored an entry")
	}
}

// TestWorkerPanicFailsJobOnly: a panic inside one job's simulation slot is
// recovered by the worker — the job turns failed with the panic visible in
// its error state, while the pool keeps serving other jobs instead of
// crashing the daemon.
func TestWorkerPanicFailsJobOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	s := New(1, 4, 0)
	defer s.Close()
	// No wire request can make a plan panic, so inject one through the slot
	// executor: the job named "boom" poisons every slot it is handed.
	s.runSlot = func(j *Job, i int) error {
		if j.label == "boom" {
			panic("injected simulation panic")
		}
		return j.plan.RunJob(i)
	}

	boom, err := s.Submit(tinyReq("boom", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, boom)
	st := boom.Status()
	if st.State != string(JobFailed) {
		t.Fatalf("panicking job in state %q, want failed: %+v", st.State, st)
	}
	if !strings.Contains(st.Error, "panicked") || !strings.Contains(st.Error, "injected simulation panic") {
		t.Errorf("error state %q does not surface the panic", st.Error)
	}

	// The worker survived: a healthy job submitted afterwards completes.
	ok, err := s.Submit(tinyReq("ok", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, ok)
	if st := ok.Status(); st.State != string(JobDone) || st.Rows != st.RowsTotal {
		t.Errorf("job after panic not cleanly done: %+v", st)
	}
}

// TestRetryAfter: the 429 hint scales with the unclaimed backlog and the
// observed mean slot time, falls back to 1 s before any observation, and
// clamps so a pathological backlog still yields an honorable header.
func TestRetryAfter(t *testing.T) {
	s := idleScheduler(4, 0)
	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter with no backlog = %d, want 1", got)
	}
	// Two 4-slot jobs queued, nothing claimed: backlog 8 on 1 worker.
	for i, name := range []string{"a", "b"} {
		if _, err := s.Submit(tinyReq(name, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter before any observation = %d, want 1", got)
	}
	s.noteSlotTime(2 * time.Second)
	if got := s.RetryAfter(); got != 16 {
		t.Errorf("RetryAfter(backlog 8, mean 2s, 1 worker) = %d, want 16", got)
	}
	// Sub-second drains round up to the minimum of 1.
	s2 := idleScheduler(4, 0)
	if _, err := s2.Submit(tinyReq("a", 1)); err != nil {
		t.Fatal(err)
	}
	s2.noteSlotTime(10 * time.Millisecond)
	if got := s2.RetryAfter(); got != 1 {
		t.Errorf("RetryAfter(tiny mean) = %d, want 1", got)
	}
	// A huge mean clamps at the 60 s ceiling.
	s2.noteSlotTime(10 * time.Hour)
	if got := s2.RetryAfter(); got != 60 {
		t.Errorf("RetryAfter(huge mean) = %d, want 60", got)
	}
}

// TestClose: closing the scheduler cancels outstanding jobs and rejects
// new submissions.
func TestClose(t *testing.T) {
	s := New(1, 4, 0)
	j, err := s.Submit(tinyReq("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	waitJob(t, j)
	st := j.Status()
	if st.State != string(JobDone) && st.State != string(JobCancelled) {
		t.Errorf("job after Close in state %q", st.State)
	}
	if _, err := s.Submit(tinyReq("b", 2)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestUseRemote: a scheduler with an external slot executor must route
// every claimed slot through it and still produce rows identical to the
// default in-process executor — the contract dist.Pool.RunPlanJob plugs
// into.
func TestUseRemote(t *testing.T) {
	want := func() []dynlb.Row {
		s := New(2, 4, 0)
		defer s.Close()
		j, err := s.Submit(tinyReq("remote", 7))
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		return j.Rows()
	}()

	var calls atomic.Int64
	s := New(2, 4, 0)
	defer s.Close()
	s.UseRemote(func(ctx context.Context, p *dynlb.Plan, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		calls.Add(1)
		// Stand-in for a remote worker: compute the job from its exact
		// inputs and store the result, exactly like dist.Pool.RunPlanJob.
		cfg, st := p.Job(i)
		r, err := dynlb.Run(cfg, st)
		if err != nil {
			return err
		}
		p.SetJobResult(i, r)
		return nil
	})
	j, err := s.Submit(tinyReq("remote", 7))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if err := j.Err(); err != nil {
		t.Fatalf("remote-executed job failed: %v", err)
	}
	if got := calls.Load(); got != int64(j.Status().Simulations) {
		t.Errorf("remote executor ran %d slots, want %d", got, j.Status().Simulations)
	}
	if !reflect.DeepEqual(j.Rows(), want) {
		t.Error("remote-executed rows differ from in-process rows")
	}
}
