package service

import (
	"encoding/json"
	"fmt"
	"testing"

	"dynlb"
)

func rowsN(n int) []dynlb.Row {
	rows := make([]dynlb.Row, n)
	for i := range rows {
		rows[i].X = float64(i)
	}
	return rows
}

// TestCacheFIFOEviction pins the eviction discipline: insertion order,
// oldest first, untouched by Get (no LRU promotion).
func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(3)
	c.Put("a", rowsN(1))
	c.Put("b", rowsN(2))
	c.Put("c", rowsN(3))
	// Touch "a" heavily; FIFO must still evict it first.
	for i := 0; i < 5; i++ {
		if _, ok := c.Get("a"); !ok {
			t.Fatal("a missing before eviction")
		}
	}
	c.Put("d", rowsN(4))
	if _, ok := c.Get("a"); ok {
		t.Error("a survived eviction; eviction is not insertion-ordered")
	}
	for _, k := range []string{"b", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted out of order", k)
		}
	}
	c.Put("e", rowsN(5))
	if _, ok := c.Get("b"); ok {
		t.Error("b survived; want second-oldest evicted next")
	}
	if n, _, _ := c.Stats(); n != 3 {
		t.Errorf("entries = %d, want 3", n)
	}
}

// TestCacheDuplicatePut: re-putting an existing key keeps the first value
// and does not disturb the eviction order or the row accounting.
func TestCacheDuplicatePut(t *testing.T) {
	c := NewCache(2)
	c.Put("a", rowsN(1))
	c.Put("a", rowsN(9))
	got, ok := c.Get("a")
	if !ok || len(got) != 1 {
		t.Fatalf("duplicate Put replaced entry: len %d, want 1", len(got))
	}
	if c.RowsRetained() != 1 {
		t.Errorf("RowsRetained = %d, want 1", c.RowsRetained())
	}
}

// TestCacheRowBudget: the cache bounds total retained rows, evicting
// oldest entries to fit new ones and refusing entries larger than the
// whole budget.
func TestCacheRowBudget(t *testing.T) {
	c := NewCache(100)
	c.SetRowBudget(10)
	c.Put("a", rowsN(4))
	c.Put("b", rowsN(4))
	if c.RowsRetained() != 8 {
		t.Fatalf("RowsRetained = %d, want 8", c.RowsRetained())
	}
	c.Put("c", rowsN(4)) // 12 > 10: evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Error("a survived the row budget")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b evicted too eagerly")
	}
	if c.RowsRetained() != 8 {
		t.Errorf("RowsRetained = %d, want 8 after eviction", c.RowsRetained())
	}
	// An entry larger than the whole budget is skipped, not thrashed in.
	c.Put("huge", rowsN(11))
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget entry cached")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("rejected oversized Put evicted existing entries")
	}
	// Shrinking the budget evicts immediately.
	c.SetRowBudget(4)
	if c.RowsRetained() > 4 {
		t.Errorf("RowsRetained = %d after shrink, want <= 4", c.RowsRetained())
	}
}

// decodeReq unmarshals a wire request like the HTTP server does.
func decodeReq(t *testing.T, body string) *dynlb.ExperimentRequest {
	t.Helper()
	var req dynlb.ExperimentRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	return &req
}

func keyOf(t *testing.T, body string) string {
	t.Helper()
	key, err := decodeReq(t, body).CacheKey()
	if err != nil {
		t.Fatalf("CacheKey(%s): %v", body, err)
	}
	return key
}

// TestCacheKeyStability pins the canonicalization the cache depends on:
// requests that run the same simulations must collide, requests that do
// not must not — in particular around the optional faults field, whose
// empty form must equal its absent form.
func TestCacheKeyStability(t *testing.T) {
	base := `{"figure":"6","scale":"quick"}`
	same := []string{
		`{"figure":"6","scale":"quick","faults":""}`,   // empty == absent
		`{"figure":"6","scale":"quick","workers":7}`,   // parallelism never changes rows
		`{"figure":"6","scale":"quick","workers":123}`, // any parallelism
	}
	for _, body := range same {
		if keyOf(t, base) != keyOf(t, body) {
			t.Errorf("key(%s) != key(%s); want identical", body, base)
		}
	}
	diff := []string{
		`{"figure":"6","scale":"quick","faults":"crash(pe=3,at=2s,down=1s)"}`,
		`{"figure":"6","scale":"quick","seed":42}`,
		`{"figure":"6","scale":"quick","reps":3}`,
		`{"figure":"6"}`, // scale default may differ from explicit quick? pinned below
	}
	for _, body := range diff[:3] {
		if keyOf(t, base) == keyOf(t, body) {
			t.Errorf("key(%s) == key(%s); want distinct", body, base)
		}
	}
	// A fault plan's key must be stable across submissions of the same
	// spec string.
	f := `{"figure":"6","scale":"quick","faults":"crash(pe=3,at=2s,down=1s)"}`
	if keyOf(t, f) != keyOf(t, f) {
		t.Error("fault-plan key not stable across encodes")
	}
}

// TestCacheKeyScaleDefault documents how the scale default canonicalizes:
// an absent scale resolves to the same key as its explicit default, so
// the two submissions share cache entries.
func TestCacheKeyScaleDefault(t *testing.T) {
	abs := keyOf(t, `{"figure":"6"}`)
	var match string
	for _, s := range []string{"quick", "normal", "full"} {
		if keyOf(t, fmt.Sprintf(`{"figure":"6","scale":%q}`, s)) == abs {
			match = s
			break
		}
	}
	if match == "" {
		t.Fatal("absent scale resolves to no explicit scale; default not canonicalized")
	}
}
