package service

import (
	"sync"

	"dynlb"
)

// Cache is the in-memory result cache of the experiment service, keyed on
// the canonicalized request (ExperimentRequest.CacheKey: full effective
// config + seed, parallelism excluded). Because rows are a pure function
// of the canonical request, a hit can be served byte-identically without
// re-running a single simulation. Cached row slices are shared and must be
// treated as immutable by every reader.
type Cache struct {
	mu      sync.Mutex
	max     int
	entries map[string][]dynlb.Row
	order   []string // insertion order; evicted oldest-first
	hits    int64
	misses  int64
}

// NewCache returns a cache holding at most max completed experiments
// (max <= 0 disables caching).
func NewCache(max int) *Cache {
	return &Cache{max: max, entries: make(map[string][]dynlb.Row)}
}

// Get returns the cached rows for key, if present.
func (c *Cache) Get(key string) ([]dynlb.Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rows, ok
}

// Put stores the rows of a completed experiment, evicting the oldest entry
// when full. The cache takes ownership of rows; callers must not mutate
// the slice afterwards.
func (c *Cache) Put(key string, rows []dynlb.Row) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = rows
	c.order = append(c.order, key)
}

// Stats reports entry count and hit/miss totals (for /healthz and tests).
func (c *Cache) Stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
