package service

import (
	"sync"

	"dynlb"
)

// Cache is the in-memory result cache of the experiment service, keyed on
// the canonicalized request (ExperimentRequest.CacheKey: full effective
// config + seed, parallelism excluded). Because rows are a pure function
// of the canonical request, a hit can be served byte-identically without
// re-running a single simulation. Cached row slices are shared and must be
// treated as immutable by every reader.
type Cache struct {
	mu        sync.Mutex
	max       int
	rowBudget int
	rows      int // total rows retained across entries
	entries   map[string][]dynlb.Row
	order     []string // insertion order; evicted oldest-first
	hits      int64
	misses    int64
}

// defaultRowBudget caps the total rows retained across all entries.
// Retention is bounded in rows rather than measured bytes — a Row is a
// flat struct of fixed-size numeric fields plus a few short strings (and,
// only under WithRuns, a per-replicate Results slice), so row count is a
// faithful proxy for memory while costing one len() per Put instead of a
// deep walk of every slice. A million rows is well under a gigabyte in the
// worst (WithRuns) case and a few tens of megabytes typically.
const defaultRowBudget = 1 << 20

// NewCache returns a cache holding at most max completed experiments
// (max <= 0 disables caching) and at most defaultRowBudget total rows;
// SetRowBudget adjusts the latter.
func NewCache(max int) *Cache {
	return &Cache{max: max, rowBudget: defaultRowBudget, entries: make(map[string][]dynlb.Row)}
}

// SetRowBudget bounds the total rows retained across entries (<= 0
// restores the default). Existing entries are evicted oldest-first until
// the new budget holds.
func (c *Cache) SetRowBudget(rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rows <= 0 {
		rows = defaultRowBudget
	}
	c.rowBudget = rows
	c.evictLocked(0)
}

// RowsRetained reports the total rows currently retained.
func (c *Cache) RowsRetained() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}

// Get returns the cached rows for key, if present.
func (c *Cache) Get(key string) ([]dynlb.Row, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rows, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rows, ok
}

// Put stores the rows of a completed experiment, evicting the oldest entry
// when full. The cache takes ownership of rows; callers must not mutate
// the slice afterwards.
func (c *Cache) Put(key string, rows []dynlb.Row) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.entries[key]; dup {
		return
	}
	if len(rows) > c.rowBudget {
		// One oversized experiment would evict everything else and still
		// not fit; skip it rather than thrash the cache.
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		c.dropOldestLocked()
	}
	c.evictLocked(len(rows))
	c.entries[key] = rows
	c.order = append(c.order, key)
	c.rows += len(rows)
}

// evictLocked drops oldest entries until incoming more rows fit in the
// row budget; callers hold c.mu.
func (c *Cache) evictLocked(incoming int) {
	for c.rows+incoming > c.rowBudget && len(c.order) > 0 {
		c.dropOldestLocked()
	}
}

// dropOldestLocked removes the oldest entry; callers hold c.mu.
func (c *Cache) dropOldestLocked() {
	oldest := c.order[0]
	c.order = c.order[1:]
	c.rows -= len(c.entries[oldest])
	delete(c.entries, oldest)
}

// Stats reports entry count and hit/miss totals (for /healthz and tests).
func (c *Cache) Stats() (entries int, hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
