package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dynlb"
)

// newTestServer wires a live scheduler into an httptest server.
func newTestServer(t *testing.T, workers, capacity, cacheSize int) (*httptest.Server, *Scheduler) {
	t.Helper()
	sched := New(workers, capacity, cacheSize)
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(NewServer(sched))
	t.Cleanup(ts.Close)
	return ts, sched
}

// postJSON submits a request document and decodes the response status doc.
func postJSON(t *testing.T, url string, body any) (int, Status, http.Header) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/experiments", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
	}
	return resp.StatusCode, st, resp.Header
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes a whole SSE stream.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.event != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// streamRows streams a job's rows over SSE and decodes them.
func streamRows(t *testing.T, base, id string) ([]dynlb.Row, []sseEvent) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/experiments/%s/rows", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	events := readSSE(t, resp.Body)
	var rows []dynlb.Row
	for _, ev := range events {
		if ev.event != "row" {
			continue
		}
		var r dynlb.Row
		if err := json.Unmarshal([]byte(ev.data), &r); err != nil {
			t.Fatalf("decode row %q: %v", ev.data, err)
		}
		rows = append(rows, r)
	}
	return rows, events
}

// TestServerEndToEnd: submit over HTTP, stream rows over SSE, and the CSV
// written from the streamed rows is byte-identical to running the same
// experiment directly through the library — then a resubmit is served from
// the cache, marker set, with the same bytes. This is the in-process twin
// of the CI `service` job.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ts, _ := newTestServer(t, 2, 4, 8)
	req := tinyReq("e2e", 1)

	code, st, _ := postJSON(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st.Cached || st.Source != "e2e" || st.Simulations != 4 {
		t.Fatalf("submit doc %+v", st)
	}

	rows, events := streamRows(t, ts.URL, st.ID)
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("stream ended with %q (%s), want done", last.event, last.data)
	}
	var final Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != string(JobDone) || final.Rows != final.RowsTotal {
		t.Fatalf("final status %+v", final)
	}

	exp, err := tinyReq("e2e", 1).Experiment()
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.Run(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var gotCSV, wantCSV bytes.Buffer
	if err := dynlb.WriteRowsCSV(&gotCSV, rows); err != nil {
		t.Fatal(err)
	}
	if err := dynlb.WriteRowsCSV(&wantCSV, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("SSE-collected CSV differs from library CSV:\n got:\n%s\nwant:\n%s", &gotCSV, &wantCSV)
	}

	// Resubmit: cache hit, marker set, identical bytes, zero simulations.
	code, st2, _ := postJSON(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", code)
	}
	if !st2.Cached || st2.Simulated != 0 {
		t.Fatalf("resubmit not a cache hit: %+v", st2)
	}
	rows2, _ := streamRows(t, ts.URL, st2.ID)
	var cachedCSV bytes.Buffer
	if err := dynlb.WriteRowsCSV(&cachedCSV, rows2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cachedCSV.Bytes(), wantCSV.Bytes()) {
		t.Error("cache-hit stream is not byte-identical")
	}

	// The collect form returns the same bytes in one response.
	resp, err := http.Get(fmt.Sprintf("%s/v1/experiments/%s/rows?format=csv", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	collected, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(collected, wantCSV.Bytes()) {
		t.Error("format=csv bytes differ from library CSV")
	}
}

// TestServerLifecycle: status, list, cancel and error paths of the job
// endpoints.
func TestServerLifecycle(t *testing.T) {
	ts, sched := newTestServer(t, 1, 2, 0)
	// Keep the pool idle so jobs stay pending: occupy the single worker is
	// racy, so instead use an idle scheduler via direct Submit... simpler:
	// cancel before the tiny job can matter; states are checked loosely.
	code, st, _ := postJSON(t, ts.URL, tinyReq("a", 1))
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.ID != st.ID || got.Source != "a" {
		t.Errorf("status doc %+v", got)
	}

	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Errorf("list %+v", list)
	}

	// DELETE cancels (a no-op if the tiny job already finished).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/experiments/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("cancel status %d", resp.StatusCode)
	}
	j, err := sched.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)

	// A cancelled-before-running job streams a single error event.
	if got.State == string(JobCancelled) {
		_, events := streamRows(t, ts.URL, st.ID)
		if len(events) == 0 || events[len(events)-1].event != "error" {
			t.Errorf("cancelled stream events %+v, want trailing error", events)
		}
	}

	// Error paths.
	for _, tc := range []struct {
		method, path string
		wantCode     int
	}{
		{http.MethodGet, "/v1/experiments/nope", http.StatusNotFound},
		{http.MethodDelete, "/v1/experiments/nope", http.StatusNotFound},
		{http.MethodGet, "/v1/experiments/nope/rows", http.StatusNotFound},
		{http.MethodGet, "/v1/experiments/" + st.ID + "/rows?format=yaml", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantCode)
		}
	}
}

// TestServerBadRequest: malformed and invalid documents answer 400 with a
// diagnosis, including unknown fields (a typoed option must not silently
// become a default).
func TestServerBadRequest(t *testing.T) {
	ts, _ := newTestServer(t, 1, 2, 0)
	for _, body := range []string{
		`{`,
		`{}`,
		`{"figure": "nope"}`,
		`{"figure": "6", "scael": "quick"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, resp.StatusCode, raw)
		}
	}
}

// TestServerBackpressure: a full admission queue answers 429 with a
// Retry-After hint.
func TestServerBackpressure(t *testing.T) {
	sched := idleScheduler(1, 0) // no workers: the one admitted job never drains
	ts := httptest.NewServer(NewServer(sched))
	defer ts.Close()
	code, _, _ := postJSON(t, ts.URL, tinyReq("a", 1))
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	code, _, hdr := postJSON(t, ts.URL, tinyReq("b", 2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestServerHealth: the liveness endpoint reports pool and cache stats.
func TestServerHealth(t *testing.T) {
	ts, _ := newTestServer(t, 3, 2, 4)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "ok" || doc["workers"] != 3.0 {
		t.Errorf("health doc %+v", doc)
	}
}
