// Package service is the experiment service behind cmd/dynlbd: a
// scheduler multiplexing many concurrent experiment jobs over one shared
// bounded worker pool — round-robin fairness across jobs, bounded
// admission with backpressure — plus an HTTP/JSON API (Server) with
// per-job lifecycle endpoints, SSE row streaming in the library's
// deterministic row order, and an in-memory result cache keyed on the
// canonicalized request, so resubmitted sweeps are served byte-identically
// without re-running a single simulation.
//
// The scheduler is itself the thing the paper studies: a load balancer.
// Each submitted experiment compiles (via dynlb.Experiment.Plan) into
// independent simulation slots; the pool's workers claim one slot at a
// time from the active jobs in round-robin order, so a long sweep cannot
// starve a short one — the multi-queue fairness discipline of Rahm &
// Marek's integrated strategies, applied to the simulator's own capacity
// planning.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dynlb"
)

// ErrBusy is returned by Submit when the scheduler's admission queue is
// full; HTTP maps it to 429 with a Retry-After hint.
var ErrBusy = errors.New("service: admission queue full, retry later")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: scheduler closed")

// errNotFound wraps unknown job ids; HTTP maps it to 404.
var errNotFound = errors.New("service: no such job")

// JobState is the lifecycle state of a submitted experiment.
type JobState string

// Job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one submitted experiment: its compiled plan, the rows emitted so
// far (always a deterministic prefix of the full row slice), and the
// lifecycle state. Scheduler-owned scheduling fields (next, ring
// membership) are guarded by the scheduler mutex; everything else by
// j.mu.
type Job struct {
	id    string
	key   string // canonical cache key
	label string // figure id or sweep name, for listings
	total int    // physical simulations in the plan

	ctx     context.Context
	cancel  context.CancelFunc
	started atomic.Bool // a worker claimed at least one slot

	next int // next unclaimed physical job index (scheduler mutex)

	mu        sync.Mutex
	plan      *dynlb.Plan
	state     JobState
	rows      []dynlb.Row
	rowsTotal int
	completed int // simulations folded into rows
	simulated int // simulations actually executed (0 on a cache hit)
	err       error
	cached    bool
	change    chan struct{} // closed and replaced on every visible change
	done      chan struct{} // closed once terminal
}

// Status is the wire form of a job's state, served by the HTTP API.
type Status struct {
	ID          string `json:"id"`
	Source      string `json:"source"` // figure id or sweep name
	State       string `json:"state"`  // queued | running | done | failed | cancelled
	Simulations int    `json:"simulations"`
	Simulated   int    `json:"simulated"` // executed here; 0 when served from cache
	Rows        int    `json:"rows"`      // emitted so far
	RowsTotal   int    `json:"rows_total"`
	Cached      bool   `json:"cached"` // result served from the cache
	Error       string `json:"error,omitempty"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the terminal error of a failed or cancelled job (nil while
// non-terminal and after success).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Rows returns the rows emitted so far — a deterministic prefix of the
// experiment's full row slice (the complete slice once the job is done).
// The result is shared and must not be mutated.
func (j *Job) Rows() []dynlb.Row {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rows[:len(j.rows):len(j.rows)]
}

// Status snapshots the job for the API.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.state
	if st == JobQueued && (j.started.Load() || j.simulated > 0) {
		st = JobRunning
	}
	s := Status{
		ID:          j.id,
		Source:      j.label,
		State:       string(st),
		Simulations: j.total,
		Simulated:   j.simulated,
		Rows:        len(j.rows),
		RowsTotal:   j.rowsTotal,
		Cached:      j.cached,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// snapshotFrom returns the rows emitted since index from, the current
// state, the terminal error, and a channel closed on the next change —
// taken atomically, so an SSE stream never misses a wake-up.
func (j *Job) snapshotFrom(from int) (batch []dynlb.Row, st JobState, err error, change <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.rows) {
		batch = j.rows[from:len(j.rows):len(j.rows)]
	}
	return batch, j.state, j.err, j.change
}

// bump wakes every watcher; callers hold j.mu.
func (j *Job) bump() {
	close(j.change)
	j.change = make(chan struct{})
}

// terminalLocked reports whether the job is in a terminal state; callers
// hold j.mu.
func (j *Job) terminalLocked() bool {
	return j.state == JobDone || j.state == JobFailed || j.state == JobCancelled
}

// finishLocked moves the job to a terminal state; callers hold j.mu.
func (j *Job) finishLocked(st JobState, err error) {
	j.state = st
	j.err = err
	close(j.done)
	j.bump()
}

// Scheduler multiplexes submitted experiments over one bounded worker
// pool. Admission is bounded (capacity non-terminal jobs; Submit returns
// ErrBusy beyond that) and dispatch is round-robin across active jobs:
// every worker claims one simulation slot from the next job in the ring,
// so concurrent sweeps progress at the same slot rate regardless of size.
type Scheduler struct {
	workers  int
	capacity int
	cache    *Cache

	// runSlot executes one claimed simulation slot; the default delegates
	// to the plan. Tests swap it to inject failures (panics, errors) that
	// no wire request can produce.
	runSlot func(j *Job, i int) error

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []*Job // submission order, for listings
	ring     []*Job // jobs with unclaimed slots, claimed round-robin
	rr       int
	active   int // non-terminal jobs admitted against capacity
	nextID   int
	stopped  bool
	slotTime time.Duration // total wall time of completed slots (Retry-After hint)
	slots    int64         // completed slots backing slotTime
	wg       sync.WaitGroup
}

// New starts a scheduler with the given worker-pool size (<= 0 means
// runtime.NumCPU), admission capacity (<= 0 means 16 concurrent jobs) and
// result-cache size in completed experiments (0 disables caching).
func New(workers, capacity, cacheSize int) *Scheduler {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if capacity <= 0 {
		capacity = 16
	}
	s := &Scheduler{
		workers:  workers,
		capacity: capacity,
		cache:    NewCache(cacheSize),
		jobs:     make(map[string]*Job),
	}
	s.runSlot = func(j *Job, i int) error { return j.plan.RunJob(i) }
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.worker()
	}
	return s
}

// Workers reports the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// UseRemote swaps the scheduler's slot executor for an external one — the
// distributed backend: run receives the claimed slot's job context, plan
// and physical job index, and must leave the job's Results in the plan
// (dynlb.Plan.SetJobResult) before returning, exactly as Plan.RunJob
// would. The scheduler keeps everything else — round-robin fairness,
// cancellation, the result cache — unchanged; rows stay bit-identical
// because jobs are pure functions of their plan inputs wherever they run.
// Call UseRemote before the first Submit; distinct slots may be claimed
// concurrently, so run must be safe for concurrent calls with distinct
// indices (dist.Pool.RunPlanJob is).
func (s *Scheduler) UseRemote(run func(ctx context.Context, p *dynlb.Plan, i int) error) {
	s.mu.Lock()
	s.runSlot = func(j *Job, i int) error { return run(j.ctx, j.plan, i) }
	s.mu.Unlock()
}

// Cache exposes the result cache (for stats endpoints and tests).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Submit validates and admits one experiment request. A request whose
// canonical form is cached completes immediately with the cached rows and
// Status.Cached true — zero simulations. Otherwise the request is compiled
// into a plan and its slots queued on the shared pool; ErrBusy reports a
// full admission queue. The returned job is already registered for the
// lifecycle endpoints.
func (s *Scheduler) Submit(req *dynlb.ExperimentRequest) (*Job, error) {
	exp, err := req.Experiment()
	if err != nil {
		return nil, err
	}
	key, err := req.CacheKey()
	if err != nil {
		return nil, err
	}
	label := req.Figure
	if label == "" {
		label = "sweep"
		if req.Sweep != nil && req.Sweep.Name != "" {
			label = req.Sweep.Name
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return nil, ErrClosed
	}
	if rows, hit := s.cache.Get(key); hit {
		j := s.newJobLocked(key, label, 0)
		j.cached = true
		j.rows = rows
		j.rowsTotal = len(rows)
		j.state = JobDone
		close(j.done)
		return j, nil
	}
	if s.active >= s.capacity {
		return nil, ErrBusy
	}
	plan, err := exp.Plan()
	if err != nil {
		return nil, err
	}
	rows0, err := plan.Start() // rows with no simulation deps
	if err != nil {
		return nil, err
	}
	j := s.newJobLocked(key, label, plan.NumJobs())
	j.plan = plan
	j.rows = rows0
	j.rowsTotal = plan.NumRows()
	if plan.NumJobs() == 0 {
		j.state = JobDone
		close(j.done)
		s.cache.Put(key, j.rows)
		return j, nil
	}
	s.active++
	s.ring = append(s.ring, j)
	s.cond.Broadcast()
	return j, nil
}

// newJobLocked allocates and registers a job; callers hold s.mu.
func (s *Scheduler) newJobLocked(key, label string, total int) *Job {
	s.nextID++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		id:     fmt.Sprintf("j%d", s.nextID),
		key:    key,
		label:  label,
		total:  total,
		ctx:    ctx,
		cancel: cancel,
		state:  JobQueued,
		change: make(chan struct{}),
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	return j
}

// Job looks up a submitted job by id.
func (s *Scheduler) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", errNotFound, id)
	}
	return j, nil
}

// List snapshots every job in submission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel aborts a job promptly: its context is cancelled, no further slots
// are claimed, and the job turns terminal with ctx.Err() as its error.
// In-flight simulations are indivisible and finish in the background; their
// results are discarded. Cancelling a terminal job is a no-op.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	j, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	j.cancel()
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return j, nil
	}
	j.finishLocked(JobCancelled, j.ctx.Err())
	j.mu.Unlock()
	s.release(j)
	return j, nil
}

// Close stops the pool: queued slots are abandoned, every non-terminal job
// is cancelled, and the workers drain. In-flight simulations finish first.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	s.ring = nil
	jobs := append([]*Job(nil), s.order...)
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
		j.mu.Lock()
		if !j.terminalLocked() {
			j.finishLocked(JobCancelled, j.ctx.Err())
		}
		j.mu.Unlock()
	}
	s.wg.Wait()
}

// claim hands the calling worker the next (job, slot) pair in round-robin
// order across the active jobs, blocking until one exists or the scheduler
// stops. It touches only scheduler-owned fields — never j.mu — so dispatch
// and completion can never deadlock.
func (s *Scheduler) claim() (*Job, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, 0, false
		}
		for len(s.ring) > 0 {
			if s.rr >= len(s.ring) {
				s.rr = 0
			}
			j := s.ring[s.rr]
			if j.ctx.Err() != nil || j.next >= j.total {
				// Cancelled or fully claimed: drop from the ring. The element
				// shifting into rr is scanned next, keeping the rotation fair.
				s.ring = append(s.ring[:s.rr], s.ring[s.rr+1:]...)
				continue
			}
			i := j.next
			j.next++
			j.started.Store(true)
			if j.next >= j.total {
				s.ring = append(s.ring[:s.rr], s.ring[s.rr+1:]...)
			} else {
				s.rr++
			}
			return j, i, true
		}
		s.cond.Wait()
	}
}

// worker is one goroutine of the shared pool: claim a slot, simulate it,
// fold the completion into its job. Slot wall time feeds the Retry-After
// estimate; it is advisory only and never influences rows.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		j, i, ok := s.claim()
		if !ok {
			return
		}
		start := time.Now()
		err := s.safeRun(j, i)
		s.noteSlotTime(time.Since(start))
		s.slotDone(j, i, err)
	}
}

// safeRun executes one slot, converting a panic inside the simulation into
// a job-level error: one poisoned experiment must fail visibly through its
// own status (and the rows endpoints' error events) without taking the
// shared pool — and every other job on it — down with the daemon.
func (s *Scheduler) safeRun(j *Job, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: simulation slot %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	s.mu.Lock()
	run := s.runSlot
	s.mu.Unlock()
	return run(j, i)
}

// noteSlotTime folds one slot's wall time into the running mean.
func (s *Scheduler) noteSlotTime(d time.Duration) {
	s.mu.Lock()
	s.slotTime += d
	s.slots++
	s.mu.Unlock()
}

// RetryAfter estimates, in whole seconds, how long a client rejected with
// ErrBusy should wait before resubmitting: the backlog of unclaimed
// simulation slots across the active jobs, costed at the observed mean
// slot wall time and divided across the pool. Before any slot has
// completed there is no observation and the hint falls back to 1 s; the
// result is clamped to [1, 60] so a pathological backlog still yields a
// header a client will honor.
func (s *Scheduler) RetryAfter() int {
	s.mu.Lock()
	backlog := 0
	for _, j := range s.ring {
		backlog += j.total - j.next
	}
	slotTime, slots, workers := s.slotTime, s.slots, s.workers
	s.mu.Unlock()
	if slots == 0 || backlog == 0 {
		return 1
	}
	mean := slotTime / time.Duration(slots)
	wait := int((mean*time.Duration(backlog)/time.Duration(workers) + time.Second - 1) / time.Second)
	if wait < 1 {
		return 1
	}
	if wait > 60 {
		return 60
	}
	return wait
}

// slotDone folds one finished simulation into its job: Complete under the
// job mutex (serializing the plan's emission state), append the newly
// deterministic rows, and finish the job when it was the last slot. A job
// cancelled while the slot simulated discards the result.
func (s *Scheduler) slotDone(j *Job, i int, runErr error) {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return
	}
	j.simulated++
	var rows []dynlb.Row
	err := runErr
	if err == nil {
		rows, err = j.plan.Complete(i)
	}
	if err != nil {
		j.finishLocked(JobFailed, err)
		j.mu.Unlock()
		s.release(j)
		return
	}
	j.rows = append(j.rows, rows...)
	j.completed++
	finished := j.completed == j.total
	if finished {
		j.state = JobDone
		close(j.done)
	}
	j.bump()
	key, cacheRows := j.key, j.rows
	j.mu.Unlock()
	if finished {
		// The rows slice is append-only and final here, so the cache can
		// share it.
		s.cache.Put(key, cacheRows)
		s.release(j)
	}
}

// release returns a terminal job's admission slot and drops it from the
// dispatch ring.
func (s *Scheduler) release(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, r := range s.ring {
		if r == j {
			s.ring = append(s.ring[:k], s.ring[k+1:]...)
			if s.rr > k {
				s.rr--
			}
			break
		}
	}
	if s.active > 0 {
		s.active--
	}
}
