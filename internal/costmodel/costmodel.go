// Package costmodel implements the analytic single-user response-time model
// the paper uses to derive the static degrees of join parallelism (Section
// 2, referencing [17, 34]):
//
//   - p_su-opt: the degree minimizing the estimated single-user response
//     time R(p), found numerically over 1..n (the paper sets the derivative
//     of the analytic formula to zero; the curve is the one sketched in
//     Fig. 1a);
//   - p_su-noIO = MIN(n, ceil(b_i*F / m)): the smallest degree avoiding
//     temporary file I/O in single-user mode (formula 3.1).
//
// The model mirrors the simulator's cost accounting (same instruction table,
// same sequential-I/O timing with prefetching) so the static strategies in
// internal/core are driven by numbers consistent with the simulation.
package costmodel

import (
	"dynlb/internal/config"
	"dynlb/internal/sim"
)

// Model evaluates single-user join response times for a configuration.
type Model struct {
	cfg config.Config
}

// New creates a model for the given configuration.
func New(cfg config.Config) *Model { return &Model{cfg: cfg} }

// PsuNoIO returns formula 3.1: the minimal number of join processors whose
// aggregate memory holds the inner hash table, capped by the system size.
func (m *Model) PsuNoIO() int {
	c := &m.cfg
	need := float64(c.AScanPages()) * c.FudgeFactor
	perPE := float64(c.BufferPages)
	p := int(ceil(need / perPE))
	if p < 1 {
		p = 1
	}
	if p > c.NPE {
		p = c.NPE
	}
	return p
}

// PsuOpt returns the degree of join parallelism minimizing the estimated
// single-user response time. Like the analytic models the paper builds on
// ([17, 34], Fig. 1a), the optimum balances per-processor work against
// startup/communication overhead and is memory-blind: temporary-file I/O is
// not part of the formula (that is p_su-noIO's job). This matters in
// memory-bound configurations (Fig. 7), where the paper's p_su-opt stays at
// its CPU-derived value although it no longer avoids overflow.
func (m *Model) PsuOpt() int {
	best, bestRT := 1, sim.Time(1<<62)
	for p := 1; p <= m.cfg.NPE; p++ {
		rt := m.ResponseTimeMem(p, 1<<30)
		if rt < bestRT {
			best, bestRT = p, rt
		}
	}
	return best
}

// Curve returns R(p) for p = 1..maxP (the Fig. 1a response-time curve).
func (m *Model) Curve(maxP int) []sim.Duration {
	out := make([]sim.Duration, maxP)
	for p := 1; p <= maxP; p++ {
		out[p-1] = m.ResponseTime(p)
	}
	return out
}

// ResponseTime estimates the single-user response time of the two-way join
// query with p join processors, assuming an otherwise idle system with the
// full buffer available for join processing on every node.
func (m *Model) ResponseTime(p int) sim.Duration {
	return m.ResponseTimeMem(p, m.cfg.BufferPages)
}

// ResponseTimeMem estimates response time with p join processors of which
// each contributes memPerPE buffer pages to the hash join — the quantity
// integrated strategies reason about under memory contention.
func (m *Model) ResponseTimeMem(p int, memPerPE int) sim.Duration {
	if p < 1 {
		p = 1
	}
	c := &m.cfg
	nA, nB := c.NANodes(), c.NBNodes()
	tA, tB := c.AScanTuples(), c.BScanTuples()
	tpp := c.TuplesPerPacket()

	// --- Coordinator: startup and termination -------------------------
	participants := int64(nA + nB + p)
	startInstr := c.Costs.InitTxn + participants*c.Costs.SendMsg
	// participants acknowledge during commit; read-only 2PC: one round.
	commitInstr := c.Costs.TermTxn + participants*(c.Costs.SendMsg+c.Costs.RecvMsg)
	coord := c.CPUTime(startInstr + commitInstr)
	// Each participant pays receive+send control overhead; the slowest
	// path adds one participant's share.
	partInstr := 2*(c.Costs.RecvMsg+c.Costs.SendMsg) + c.Costs.InitTxn/4
	coord += c.CPUTime(partInstr)

	// --- Scan phases (parallel across the data nodes) -----------------
	scanA := m.scanElapsed(tA, c.ATuples, nA)
	scanB := m.scanElapsed(tB, c.BTuples, nB)

	// --- Join processing per join PE ----------------------------------
	tAj := ceilDiv(tA, int64(p))
	tBj := ceilDiv(tB, int64(p))
	pktAj := ceilDiv(tAj, tpp)
	pktBj := ceilDiv(tBj, tpp)

	buildInstr := pktAj*(c.Costs.RecvMsg+c.Costs.Copy8KB) +
		tAj*(c.Costs.HashTuple+c.Costs.InsertHash)

	// Result tuples: ResultFraction of the inner scan output, produced at
	// the join PEs and shipped to the coordinator.
	resTuples := int64(float64(tA)*c.ResultFraction) / int64(p)
	resPkts := ceilDiv(resTuples, tpp)
	probeInstr := pktBj*(c.Costs.RecvMsg+c.Costs.Copy8KB) +
		tBj*(c.Costs.HashTuple+c.Costs.ProbeHash) +
		resTuples*c.Costs.WriteTuple +
		resPkts*(c.Costs.Copy8KB+c.Costs.SendMsg)

	// --- Temporary file I/O (hash-table overflow) ---------------------
	pagesAj := ceilDiv(tAj, int64(c.Blocking))
	hashPages := int64(float64(pagesAj)*c.FudgeFactor + 0.9999)
	var spillA, spillB int64
	if int64(memPerPE) < hashPages {
		spillA = hashPages - int64(memPerPE)
		frac := float64(spillA) / float64(hashPages)
		spillB = int64(frac * float64(ceilDiv(tBj, int64(c.Blocking))))
	}
	// Spilled pages are written once and read back once.
	tempPages := 2 * (spillA + spillB)
	tempIO := sim.Scale(m.seqPageIO(), float64(tempPages))
	tempCPU := c.CPUTime(ceilDiv(tempPages, int64(c.Disk.Prefetch)) * c.Costs.IO)

	build := c.CPUTime(buildInstr)
	probe := c.CPUTime(probeInstr) + tempIO + tempCPU

	// The analytic model sums component times (no pipelining credit),
	// like the formula-based models of [17, 34] the paper builds on; the
	// simulator gives the pipeline its real overlap.
	buildPhase := scanA + build
	probePhase := scanB + probe

	// Coordinator merges the result stream.
	mergeInstr := int64(p) * resPkts * (c.Costs.RecvMsg + c.Costs.Copy8KB)
	merge := c.CPUTime(mergeInstr)

	return coord + buildPhase + probePhase + merge
}

// scanElapsed estimates the elapsed time of the slowest scan subquery when
// tuples matching tuples of a relation with total totTuples are read via
// clustered index on nodes data nodes and shipped to the join processors.
func (m *Model) scanElapsed(matching, totTuples int64, nodes int) sim.Duration {
	c := &m.cfg
	tFrag := ceilDiv(matching, int64(nodes))
	pages := ceilDiv(tFrag, int64(c.Blocking))
	// Index descent: a few random reads; then sequential leaf/data pages.
	descent := sim.Scale(m.randPageIO(), 2)
	seq := sim.Scale(m.seqPageIO(), float64(pages))
	pkts := ceilDiv(tFrag, c.TuplesPerPacket())
	physIOs := ceilDiv(pages, int64(c.Disk.Prefetch)) + 2
	cpu := c.CPUTime(physIOs*c.Costs.IO +
		tFrag*(c.Costs.ReadTuple+c.Costs.WriteTuple) +
		pkts*(c.Costs.Copy8KB+c.Costs.SendMsg))
	wire := sim.Duration(pkts) * c.Net.WirePerPacket
	return descent + seq + cpu + wire
}

// seqPageIO returns the average elapsed time per page of a sequential read
// or write run with prefetching: every Prefetch pages pay one physical
// access, the rest are controller-cache hits.
func (m *Model) seqPageIO() sim.Duration {
	d := &m.cfg.Disk
	run := d.CtrlPerPage + d.AvgAccess + sim.Duration(d.Prefetch)*d.PrefetchPerPage + d.TransferPerPage +
		sim.Duration(d.Prefetch-1)*(d.CtrlPerPage+d.TransferPerPage)
	return run / sim.Duration(d.Prefetch)
}

// randPageIO returns the elapsed time of one random page read.
func (m *Model) randPageIO() sim.Duration {
	d := &m.cfg.Disk
	return d.CtrlPerPage + d.AvgAccess + d.PrefetchPerPage + d.TransferPerPage
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func ceil(f float64) float64 {
	i := float64(int64(f))
	if f > i {
		return i + 1
	}
	return i
}

func maxT(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
