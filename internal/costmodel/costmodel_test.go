package costmodel

import (
	"testing"

	"dynlb/internal/config"
)

func TestPsuNoIOPaperValues(t *testing.T) {
	// Paper (5.2): 1% selectivity => p_su-noIO = 3; (5.2 "join
	// complexity"): 0.1% => 1, 5% => 14.
	cases := []struct {
		sel  float64
		want int
	}{
		{0.01, 3},
		{0.001, 1},
		{0.05, 14},
	}
	for _, c := range cases {
		cfg := config.Default()
		cfg.ScanSelectivity = c.sel
		got := New(cfg).PsuNoIO()
		if got != c.want {
			t.Errorf("sel=%v: PsuNoIO=%d, want %d", c.sel, got, c.want)
		}
	}
}

func TestPsuNoIOCappedBySystemSize(t *testing.T) {
	cfg := config.Default()
	cfg.NPE = 10
	cfg.ScanSelectivity = 1.0 // whole relation: would need 263 PEs
	if got := New(cfg).PsuNoIO(); got != 10 {
		t.Errorf("PsuNoIO=%d, want cap 10", got)
	}
}

func TestPsuOptPaperRegion(t *testing.T) {
	// Paper: p_su-opt = 30 at 1% selectivity on 80 PEs. Our model mirrors
	// our simulator, not the authors' testbed; require the same region.
	cfg := config.Default()
	got := New(cfg).PsuOpt()
	if got < 15 || got > 45 {
		t.Errorf("PsuOpt=%d, want within [15,45] (paper: 30)", got)
	}
}

func TestPsuOptIncreasesWithJoinSize(t *testing.T) {
	// Paper (Fig. 8 discussion): p_su-opt grows from 10 (0.1%) to 70 (5%).
	var prev int
	for _, sel := range []float64{0.001, 0.01, 0.02, 0.05} {
		cfg := config.Default()
		cfg.NPE = 60
		cfg.ScanSelectivity = sel
		got := New(cfg).PsuOpt()
		if got < prev {
			t.Errorf("PsuOpt not monotone in selectivity: sel=%v got %d after %d", sel, got, prev)
		}
		prev = got
	}
	// 0.1%: small optimum; 5%: near system size.
	cfg := config.Default()
	cfg.NPE = 60
	cfg.ScanSelectivity = 0.001
	small := New(cfg).PsuOpt()
	cfg.ScanSelectivity = 0.05
	large := New(cfg).PsuOpt()
	if small > 25 {
		t.Errorf("PsuOpt(0.1%%)=%d, want small (paper: 10)", small)
	}
	if large < 40 {
		t.Errorf("PsuOpt(5%%)=%d, want close to system size (paper: 70)", large)
	}
}

func TestResponseTimeCurveShapeFig1a(t *testing.T) {
	// Fig. 1a: response time falls, reaches a minimum, then rises.
	m := New(config.Default())
	curve := m.Curve(80)
	opt := m.PsuOpt()
	if curve[0] <= curve[opt-1] {
		t.Errorf("R(1)=%v not above R(opt)=%v", curve[0], curve[opt-1])
	}
	if curve[79] <= curve[opt-1] {
		t.Errorf("R(80)=%v not above R(opt)=%v; no startup penalty visible", curve[79], curve[opt-1])
	}
	// Decreasing before the optimum (allow small plateaus).
	if curve[0] < curve[opt/2] {
		t.Errorf("curve not decreasing towards optimum: R(1)=%v R(%d)=%v", curve[0], opt/2+1, curve[opt/2])
	}
}

func TestResponseTimeMemOverflowPenalty(t *testing.T) {
	// With tiny memory the same degree must cost more (temporary file I/O).
	m := New(config.Default())
	p := 4
	full := m.ResponseTimeMem(p, 50)
	tiny := m.ResponseTimeMem(p, 5)
	if tiny <= full {
		t.Errorf("overflow not penalized: tiny-mem RT %v <= full-mem RT %v", tiny, full)
	}
}

func TestResponseTimeMemNoIOBeyondThreshold(t *testing.T) {
	// Once per-PE memory covers the per-PE hash table, more memory must
	// not change the estimate.
	m := New(config.Default())
	p := 10
	a := m.ResponseTimeMem(p, 50)
	b := m.ResponseTimeMem(p, 500)
	if a != b {
		t.Errorf("memory above hash-table size changed estimate: %v vs %v", a, b)
	}
}

func TestSeqPageIOFasterThanRandom(t *testing.T) {
	m := New(config.Default())
	if m.seqPageIO() >= m.randPageIO() {
		t.Errorf("sequential per-page I/O %v not faster than random %v", m.seqPageIO(), m.randPageIO())
	}
}

func TestCurveLength(t *testing.T) {
	m := New(config.Default())
	if got := len(m.Curve(25)); got != 25 {
		t.Errorf("curve length %d, want 25", got)
	}
}

// TestPsuNoIOBoundaries: formula 3.1 is ceil(b_i * F / m) clamped to
// [1, n]. The table pins the exact boundary behavior with a hand-sized
// relation: 2000 tuples at blocking 20 and selectivity 1 give b_i = 100
// pages, so need = 100 * F buffer pages.
func TestPsuNoIOBoundaries(t *testing.T) {
	mk := func(buffer int, fudge float64, npe int) config.Config {
		cfg := config.Default()
		cfg.ATuples = 2000
		cfg.Blocking = 20
		cfg.ScanSelectivity = 1.0
		cfg.FudgeFactor = fudge
		cfg.BufferPages = buffer
		cfg.NPE = npe
		return cfg
	}
	cases := []struct {
		name   string
		buffer int
		fudge  float64
		npe    int
		want   int
	}{
		{"exact multiple: 105/5", 5, 1.05, 80, 21},
		{"exact fit in one PE", 105, 1.05, 80, 1},
		{"one page short of a PE forces one more", 104, 1.05, 80, 2},
		{"fudge=1 exact division", 50, 1.0, 80, 2},
		{"fudge=1 remainder rounds up", 49, 1.0, 80, 3},
		{"tiny need clamps to 1", 200, 1.0, 80, 1},
		{"capped by system size", 2, 1.05, 10, 10},
		{"cap exactly reached: 105/7 = 15", 7, 1.05, 15, 15},
	}
	for _, c := range cases {
		if got := New(mk(c.buffer, c.fudge, c.npe)).PsuNoIO(); got != c.want {
			t.Errorf("%s: PsuNoIO = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestDegreesMonotoneInRelationSize: scaling both relations up can only
// demand more join processors — for p_su-noIO because the hash table grows
// (formula 3.1 is monotone in b_i), for p_su-opt because the per-processor
// work term grows relative to the fixed startup overhead.
func TestDegreesMonotoneInRelationSize(t *testing.T) {
	prevNoIO, prevOpt := 0, 0
	for _, mult := range []int64{1, 2, 4, 8} {
		cfg := config.Default()
		cfg.ATuples *= mult
		cfg.BTuples *= mult
		m := New(cfg)
		noIO, opt := m.PsuNoIO(), m.PsuOpt()
		if noIO < prevNoIO {
			t.Errorf("PsuNoIO not monotone in relation size: %d after %d (mult=%d)", noIO, prevNoIO, mult)
		}
		if opt < prevOpt {
			t.Errorf("PsuOpt not monotone in relation size: %d after %d (mult=%d)", opt, prevOpt, mult)
		}
		prevNoIO, prevOpt = noIO, opt
	}
}

// TestPsuNoIOAtMostPsuOpt: with the paper's default memory (50 buffer
// pages/PE) the no-I/O degree stays at or below the response-time optimum
// across the evaluation grid — the property that makes psu-noIO a
// "minimal" static strategy in Figs. 5/6/8.
func TestPsuNoIOAtMostPsuOpt(t *testing.T) {
	for _, npe := range []int{10, 20, 40, 60, 80} {
		for _, sel := range []float64{0.001, 0.005, 0.01, 0.02, 0.05} {
			cfg := config.Default()
			cfg.NPE = npe
			cfg.ScanSelectivity = sel
			m := New(cfg)
			noIO, opt := m.PsuNoIO(), m.PsuOpt()
			if noIO > opt {
				t.Errorf("npe=%d sel=%v: PsuNoIO %d > PsuOpt %d", npe, sel, noIO, opt)
			}
		}
	}
}

// TestPsuNoIOExceedsPsuOptWhenMemoryBound: the complement of the invariant
// above. PsuOpt is memory-blind by design, so in the Fig. 7 memory-bound
// environment the no-I/O degree overtakes it — the divergence the paper's
// MIN-IO-SUOPT strategy exploits.
func TestPsuNoIOExceedsPsuOptWhenMemoryBound(t *testing.T) {
	cfg := config.Default()
	cfg.BufferPages = 2
	m := New(cfg)
	noIO, opt := m.PsuNoIO(), m.PsuOpt()
	if noIO <= opt {
		t.Errorf("memory-bound (2 pages/PE): PsuNoIO %d <= PsuOpt %d; expected inversion", noIO, opt)
	}
	// PsuOpt must be unchanged from the default-memory value: it ignores
	// memory entirely.
	if defOpt := New(config.Default()).PsuOpt(); opt != defOpt {
		t.Errorf("PsuOpt changed with memory: %d vs %d (must be memory-blind)", opt, defOpt)
	}
}
