package costmodel

import (
	"testing"

	"dynlb/internal/config"
)

func TestPsuNoIOPaperValues(t *testing.T) {
	// Paper (5.2): 1% selectivity => p_su-noIO = 3; (5.2 "join
	// complexity"): 0.1% => 1, 5% => 14.
	cases := []struct {
		sel  float64
		want int
	}{
		{0.01, 3},
		{0.001, 1},
		{0.05, 14},
	}
	for _, c := range cases {
		cfg := config.Default()
		cfg.ScanSelectivity = c.sel
		got := New(cfg).PsuNoIO()
		if got != c.want {
			t.Errorf("sel=%v: PsuNoIO=%d, want %d", c.sel, got, c.want)
		}
	}
}

func TestPsuNoIOCappedBySystemSize(t *testing.T) {
	cfg := config.Default()
	cfg.NPE = 10
	cfg.ScanSelectivity = 1.0 // whole relation: would need 263 PEs
	if got := New(cfg).PsuNoIO(); got != 10 {
		t.Errorf("PsuNoIO=%d, want cap 10", got)
	}
}

func TestPsuOptPaperRegion(t *testing.T) {
	// Paper: p_su-opt = 30 at 1% selectivity on 80 PEs. Our model mirrors
	// our simulator, not the authors' testbed; require the same region.
	cfg := config.Default()
	got := New(cfg).PsuOpt()
	if got < 15 || got > 45 {
		t.Errorf("PsuOpt=%d, want within [15,45] (paper: 30)", got)
	}
}

func TestPsuOptIncreasesWithJoinSize(t *testing.T) {
	// Paper (Fig. 8 discussion): p_su-opt grows from 10 (0.1%) to 70 (5%).
	var prev int
	for _, sel := range []float64{0.001, 0.01, 0.02, 0.05} {
		cfg := config.Default()
		cfg.NPE = 60
		cfg.ScanSelectivity = sel
		got := New(cfg).PsuOpt()
		if got < prev {
			t.Errorf("PsuOpt not monotone in selectivity: sel=%v got %d after %d", sel, got, prev)
		}
		prev = got
	}
	// 0.1%: small optimum; 5%: near system size.
	cfg := config.Default()
	cfg.NPE = 60
	cfg.ScanSelectivity = 0.001
	small := New(cfg).PsuOpt()
	cfg.ScanSelectivity = 0.05
	large := New(cfg).PsuOpt()
	if small > 25 {
		t.Errorf("PsuOpt(0.1%%)=%d, want small (paper: 10)", small)
	}
	if large < 40 {
		t.Errorf("PsuOpt(5%%)=%d, want close to system size (paper: 70)", large)
	}
}

func TestResponseTimeCurveShapeFig1a(t *testing.T) {
	// Fig. 1a: response time falls, reaches a minimum, then rises.
	m := New(config.Default())
	curve := m.Curve(80)
	opt := m.PsuOpt()
	if curve[0] <= curve[opt-1] {
		t.Errorf("R(1)=%v not above R(opt)=%v", curve[0], curve[opt-1])
	}
	if curve[79] <= curve[opt-1] {
		t.Errorf("R(80)=%v not above R(opt)=%v; no startup penalty visible", curve[79], curve[opt-1])
	}
	// Decreasing before the optimum (allow small plateaus).
	if curve[0] < curve[opt/2] {
		t.Errorf("curve not decreasing towards optimum: R(1)=%v R(%d)=%v", curve[0], opt/2+1, curve[opt/2])
	}
}

func TestResponseTimeMemOverflowPenalty(t *testing.T) {
	// With tiny memory the same degree must cost more (temporary file I/O).
	m := New(config.Default())
	p := 4
	full := m.ResponseTimeMem(p, 50)
	tiny := m.ResponseTimeMem(p, 5)
	if tiny <= full {
		t.Errorf("overflow not penalized: tiny-mem RT %v <= full-mem RT %v", tiny, full)
	}
}

func TestResponseTimeMemNoIOBeyondThreshold(t *testing.T) {
	// Once per-PE memory covers the per-PE hash table, more memory must
	// not change the estimate.
	m := New(config.Default())
	p := 10
	a := m.ResponseTimeMem(p, 50)
	b := m.ResponseTimeMem(p, 500)
	if a != b {
		t.Errorf("memory above hash-table size changed estimate: %v vs %v", a, b)
	}
}

func TestSeqPageIOFasterThanRandom(t *testing.T) {
	m := New(config.Default())
	if m.seqPageIO() >= m.randPageIO() {
		t.Errorf("sequential per-page I/O %v not faster than random %v", m.seqPageIO(), m.randPageIO())
	}
}

func TestCurveLength(t *testing.T) {
	m := New(config.Default())
	if got := len(m.Curve(25)); got != 25 {
		t.Errorf("curve length %d, want 25", got)
	}
}
