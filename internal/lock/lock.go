// Package lock implements the concurrency-control substrate of the
// simulation: distributed strict two-phase locking with long read and write
// locks (one lock table per PE) and a central deadlock detection scheme that
// periodically builds the global waits-for graph and aborts a victim, as
// described in Section 4 of Rahm & Marek (VLDB '95).
package lock

import (
	"errors"
	"fmt"
	"sort"

	"dynlb/internal/sim"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// TxnID identifies a transaction globally. IDs are assigned in start order,
// so a larger ID means a younger transaction (the deadlock victim choice).
type TxnID int64

// Key identifies a lockable object (a tuple or a partition).
type Key struct {
	Space int64
	Item  int64
}

// ErrDeadlock is returned from Lock when the requester was chosen as the
// deadlock victim; the caller must release all its locks and abort.
var ErrDeadlock = errors.New("lock: aborted as deadlock victim")

// Table is the lock table of one PE.
type Table struct {
	k       *sim.Kernel
	name    string
	entries map[Key]*entry
	held    map[TxnID]map[Key]Mode

	locks, waits, deadlocks int64
}

type entry struct {
	holders map[TxnID]Mode
	queue   []*request
}

type request struct {
	p       *sim.Proc
	txn     TxnID
	mode    Mode
	upgrade bool
	granted bool
	aborted bool
}

// NewTable creates an empty lock table.
func NewTable(k *sim.Kernel, name string) *Table {
	return &Table{
		k: k, name: name,
		entries: make(map[Key]*entry),
		held:    make(map[TxnID]map[Key]Mode),
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Locks returns the number of granted lock requests.
func (t *Table) Locks() int64 { return t.locks }

// Waits returns the number of requests that had to block.
func (t *Table) Waits() int64 { return t.waits }

// Deadlocks returns the number of aborts issued by deadlock resolution.
func (t *Table) Deadlocks() int64 { return t.deadlocks }

// compatible reports whether mode m can be granted alongside the current
// holders (ignoring holder self, for upgrades).
func (e *entry) compatible(txn TxnID, m Mode) bool {
	for h, hm := range e.holders {
		if h == txn {
			continue
		}
		if m == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Lock acquires key in the given mode for txn, blocking behind incompatible
// holders and earlier waiters (FCFS, except that lock upgrades go to the
// front). Re-requesting a held mode is a no-op; requesting Exclusive while
// holding Shared performs an upgrade. Returns ErrDeadlock if aborted.
func (t *Table) Lock(p *sim.Proc, txn TxnID, key Key, m Mode) error {
	e := t.entries[key]
	if e == nil {
		e = &entry{holders: make(map[TxnID]Mode)}
		t.entries[key] = e
	}
	if held, ok := e.holders[txn]; ok {
		if held == Exclusive || m == Shared {
			return nil // already sufficient
		}
		// Upgrade S -> X.
		if e.compatible(txn, Exclusive) && !t.upgradeQueued(e, txn) {
			e.holders[txn] = Exclusive
			t.setHeld(txn, key, Exclusive)
			t.locks++
			return nil
		}
		return t.wait(p, e, &request{p: p, txn: txn, mode: Exclusive, upgrade: true}, key)
	}
	if len(e.queue) == 0 && e.compatible(txn, m) {
		e.holders[txn] = m
		t.setHeld(txn, key, m)
		t.locks++
		return nil
	}
	return t.wait(p, e, &request{p: p, txn: txn, mode: m}, key)
}

func (t *Table) upgradeQueued(e *entry, txn TxnID) bool {
	for _, r := range e.queue {
		if r.upgrade && r.txn != txn {
			return true
		}
	}
	return false
}

func (t *Table) wait(p *sim.Proc, e *entry, r *request, key Key) error {
	t.waits++
	if r.upgrade {
		// Upgrades wait in front of ordinary requests to avoid starving
		// behind requests they are incompatible with anyway.
		i := 0
		for i < len(e.queue) && e.queue[i].upgrade {
			i++
		}
		e.queue = append(e.queue, nil)
		copy(e.queue[i+1:], e.queue[i:])
		e.queue[i] = r
	} else {
		e.queue = append(e.queue, r)
	}
	p.Park()
	if r.aborted {
		return ErrDeadlock
	}
	if !r.granted {
		panic(fmt.Sprintf("lock: %s spurious wakeup txn %d", t.name, r.txn))
	}
	t.setHeld(r.txn, key, r.mode)
	t.locks++
	return nil
}

func (t *Table) setHeld(txn TxnID, key Key, m Mode) {
	hm := t.held[txn]
	if hm == nil {
		hm = make(map[Key]Mode)
		t.held[txn] = hm
	}
	hm[key] = m
}

// Unlock releases txn's lock on key and grants compatible waiters.
func (t *Table) Unlock(txn TxnID, key Key) {
	e := t.entries[key]
	if e == nil {
		panic(fmt.Sprintf("lock: %s unlock of unheld key %v", t.name, key))
	}
	if _, ok := e.holders[txn]; !ok {
		panic(fmt.Sprintf("lock: %s txn %d unlock of unheld key %v", t.name, txn, key))
	}
	delete(e.holders, txn)
	if hm := t.held[txn]; hm != nil {
		delete(hm, key)
		if len(hm) == 0 {
			delete(t.held, txn)
		}
	}
	t.grant(e, key)
}

// ReleaseAll releases every lock txn holds in this table (commit/abort under
// strict 2PL) and removes it from all wait queues.
func (t *Table) ReleaseAll(txn TxnID) {
	keys := make([]Key, 0, len(t.held[txn]))
	for key := range t.held[txn] {
		keys = append(keys, key)
	}
	// Deterministic release order.
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Space != keys[j].Space {
			return keys[i].Space < keys[j].Space
		}
		return keys[i].Item < keys[j].Item
	})
	for _, key := range keys {
		t.Unlock(txn, key)
	}
}

func (t *Table) grant(e *entry, key Key) {
	for len(e.queue) > 0 {
		r := e.queue[0]
		if !e.compatible(r.txn, r.mode) {
			return
		}
		e.queue = e.queue[1:]
		e.holders[r.txn] = r.mode
		r.granted = true
		r.p.Unpark()
	}
}

// WaitsFor appends to edges the (waiter, holder) pairs of this table's
// current wait relationships; the central detector combines all tables.
func (t *Table) WaitsFor(edges map[TxnID][]TxnID) {
	for _, e := range t.entries {
		for _, r := range e.queue {
			for h := range e.holders {
				if h != r.txn {
					edges[r.txn] = append(edges[r.txn], h)
				}
			}
			// Waiters also wait for incompatible earlier queue entries.
			for _, q := range e.queue {
				if q == r {
					break
				}
				if q.txn != r.txn && (r.mode == Exclusive || q.mode == Exclusive) {
					edges[r.txn] = append(edges[r.txn], q.txn)
				}
			}
		}
	}
}

// Abort removes txn's queued requests (waking them with ErrDeadlock) and
// releases its held locks. Used by deadlock resolution.
func (t *Table) Abort(txn TxnID) {
	// Collect and sort the affected keys before touching anything: the
	// Unparks and grants below assign event sequence numbers, so waking in
	// entry-map iteration order would make every run with a deadlock abort
	// nondeterministic (the same reason ReleaseAll sorts).
	keys := make([]Key, 0, len(t.held[txn]))
	for key, e := range t.entries {
		if _, ok := e.holders[txn]; ok {
			keys = append(keys, key)
			continue
		}
		for _, r := range e.queue {
			if r.txn == txn {
				keys = append(keys, key)
				break
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Space != keys[j].Space {
			return keys[i].Space < keys[j].Space
		}
		return keys[i].Item < keys[j].Item
	})
	aborted := false
	for _, key := range keys {
		e := t.entries[key]
		for i := 0; i < len(e.queue); {
			r := e.queue[i]
			if r.txn == txn {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				r.aborted = true
				aborted = true
				r.p.Unpark()
				continue
			}
			i++
		}
		if _, ok := e.holders[txn]; ok {
			delete(e.holders, txn)
			if hm := t.held[txn]; hm != nil {
				delete(hm, key)
			}
			t.grant(e, key)
		}
	}
	delete(t.held, txn)
	if aborted {
		t.deadlocks++
	}
}
