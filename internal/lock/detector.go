package lock

import (
	"sort"

	"dynlb/internal/sim"
)

// Detector implements the paper's central deadlock detection scheme: a
// designated node periodically collects the waits-for relationships of all
// lock tables, searches the combined graph for cycles and aborts the
// youngest transaction of each cycle found.
type Detector struct {
	k        *sim.Kernel
	tables   []*Table
	interval sim.Duration
	victims  int64
	stopped  bool
}

// NewDetector creates a detector scanning at the given interval.
func NewDetector(k *sim.Kernel, interval sim.Duration) *Detector {
	return &Detector{k: k, interval: interval}
}

// Register adds a PE's lock table to the global scan.
func (d *Detector) Register(t *Table) { d.tables = append(d.tables, t) }

// Victims returns the number of transactions aborted so far.
func (d *Detector) Victims() int64 { return d.victims }

// Start launches the periodic scan process.
func (d *Detector) Start() {
	d.k.Spawn("deadlock-detector", func(p *sim.Proc) {
		for !d.stopped {
			p.Wait(d.interval)
			d.ScanOnce()
		}
	})
}

// Stop ends the periodic scan after the current sleep.
func (d *Detector) Stop() { d.stopped = true }

// ScanOnce builds the waits-for graph and aborts one victim per cycle.
// It returns the victims aborted in this scan.
func (d *Detector) ScanOnce() []TxnID {
	edges := make(map[TxnID][]TxnID)
	for _, t := range d.tables {
		t.WaitsFor(edges)
	}
	var victims []TxnID
	for {
		cycle := findCycle(edges)
		if len(cycle) == 0 {
			break
		}
		// Victim: the youngest transaction (largest ID) in the cycle.
		victim := cycle[0]
		for _, txn := range cycle {
			if txn > victim {
				victim = txn
			}
		}
		victims = append(victims, victim)
		d.victims++
		for _, t := range d.tables {
			t.Abort(victim)
		}
		delete(edges, victim)
		for w, hs := range edges {
			out := hs[:0]
			for _, h := range hs {
				if h != victim {
					out = append(out, h)
				}
			}
			edges[w] = out
		}
	}
	return victims
}

// findCycle returns the transactions of one cycle in the waits-for graph,
// or nil. Iteration order is made deterministic by sorting the nodes.
func findCycle(edges map[TxnID][]TxnID) []TxnID {
	nodes := make([]TxnID, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxnID]int)
	parent := make(map[TxnID]TxnID)

	var cycle []TxnID
	var dfs func(n TxnID) bool
	dfs = func(n TxnID) bool {
		color[n] = grey
		next := append([]TxnID(nil), edges[n]...)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, m := range next {
			switch color[m] {
			case white:
				parent[m] = n
				if dfs(m) {
					return true
				}
			case grey:
				// Found a cycle m -> ... -> n -> m.
				cycle = append(cycle, m)
				for v := n; v != m; v = parent[v] {
					cycle = append(cycle, v)
				}
				return true
			}
		}
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}
