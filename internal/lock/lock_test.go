package lock

import (
	"testing"

	"dynlb/internal/sim"
)

func key(i int64) Key { return Key{Space: 1, Item: i} }

func TestSharedLocksCompatible(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	var grants []sim.Time
	for i := 0; i < 3; i++ {
		txn := TxnID(i + 1)
		k.Spawn("r", func(p *sim.Proc) {
			if err := tbl.Lock(p, txn, key(7), Shared); err != nil {
				t.Errorf("txn %d: %v", txn, err)
			}
			grants = append(grants, p.Now())
			p.Wait(10 * sim.Millisecond)
			tbl.ReleaseAll(txn)
		})
	}
	k.RunAll()
	for _, g := range grants {
		if g != 0 {
			t.Fatalf("shared lock delayed: grants at %v", grants)
		}
	}
}

func TestExclusiveBlocksShared(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	var readerAt sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(5), Exclusive)
		p.Wait(20 * sim.Millisecond)
		tbl.ReleaseAll(1)
	})
	k.SpawnAt(sim.Millisecond, "reader", func(p *sim.Proc) {
		tbl.Lock(p, 2, key(5), Shared)
		readerAt = p.Now()
		tbl.ReleaseAll(2)
	})
	k.RunAll()
	if readerAt != 20*sim.Millisecond {
		t.Errorf("reader granted at %v, want 20ms", readerAt)
	}
	if tbl.Waits() != 1 {
		t.Errorf("waits=%d", tbl.Waits())
	}
}

func TestSharedBlocksExclusiveFCFS(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	var order []TxnID
	k.Spawn("reader", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(5), Shared)
		p.Wait(10 * sim.Millisecond)
		tbl.ReleaseAll(1)
	})
	k.SpawnAt(sim.Millisecond, "writer", func(p *sim.Proc) {
		tbl.Lock(p, 2, key(5), Exclusive)
		order = append(order, 2)
		tbl.ReleaseAll(2)
	})
	k.SpawnAt(2*sim.Millisecond, "reader2", func(p *sim.Proc) {
		// Arrives after the writer: FCFS means it waits behind the writer
		// even though it would be compatible with the current holder.
		tbl.Lock(p, 3, key(5), Shared)
		order = append(order, 3)
		tbl.ReleaseAll(3)
	})
	k.RunAll()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("grant order %v, want [2 3]", order)
	}
}

func TestReentrantLockIsNoop(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	k.Spawn("txn", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(3), Shared)
		tbl.Lock(p, 1, key(3), Shared)    // held: no-op
		tbl.Lock(p, 1, key(3), Exclusive) // sole holder: instant upgrade
		tbl.Lock(p, 1, key(3), Shared)    // X covers S: no-op
		tbl.ReleaseAll(1)
	})
	end := k.RunAll()
	if end != 0 {
		t.Errorf("reentrant locking blocked until %v", end)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	var upgradedAt sim.Time
	k.Spawn("other-reader", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(9), Shared)
		p.Wait(15 * sim.Millisecond)
		tbl.ReleaseAll(1)
	})
	k.SpawnAt(sim.Millisecond, "upgrader", func(p *sim.Proc) {
		tbl.Lock(p, 2, key(9), Shared)
		if err := tbl.Lock(p, 2, key(9), Exclusive); err != nil {
			t.Errorf("upgrade: %v", err)
		}
		upgradedAt = p.Now()
		tbl.ReleaseAll(2)
	})
	k.RunAll()
	if upgradedAt != 15*sim.Millisecond {
		t.Errorf("upgrade granted at %v, want 15ms", upgradedAt)
	}
}

func TestDeadlockDetectionAbortsYoungest(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	det := NewDetector(k, 10*sim.Millisecond)
	det.Register(tbl)

	var abortedTxn TxnID
	completed := 0
	// txn 1: lock A then B; txn 2: lock B then A -> deadlock.
	k.Spawn("t1", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(1), Exclusive)
		p.Wait(2 * sim.Millisecond)
		if err := tbl.Lock(p, 1, key(2), Exclusive); err != nil {
			abortedTxn = 1
			tbl.ReleaseAll(1)
			return
		}
		completed++
		tbl.ReleaseAll(1)
	})
	k.Spawn("t2", func(p *sim.Proc) {
		tbl.Lock(p, 2, key(2), Exclusive)
		p.Wait(2 * sim.Millisecond)
		if err := tbl.Lock(p, 2, key(1), Exclusive); err != nil {
			abortedTxn = 2
			tbl.ReleaseAll(2)
			return
		}
		completed++
		tbl.ReleaseAll(2)
	})
	k.Spawn("scan", func(p *sim.Proc) {
		p.Wait(10 * sim.Millisecond)
		det.ScanOnce()
	})
	k.RunAll()
	if abortedTxn != 2 {
		t.Errorf("aborted txn %d, want 2 (youngest)", abortedTxn)
	}
	if completed != 1 {
		t.Errorf("completed=%d, want 1 (survivor finishes)", completed)
	}
	if det.Victims() != 1 {
		t.Errorf("victims=%d", det.Victims())
	}
}

func TestDetectorNoFalsePositives(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	det := NewDetector(k, sim.Millisecond)
	det.Register(tbl)
	k.Spawn("holder", func(p *sim.Proc) {
		tbl.Lock(p, 1, key(1), Exclusive)
		p.Wait(20 * sim.Millisecond)
		tbl.ReleaseAll(1)
	})
	k.SpawnAt(sim.Microsecond, "waiter", func(p *sim.Proc) {
		if err := tbl.Lock(p, 2, key(1), Exclusive); err != nil {
			t.Errorf("non-deadlocked waiter aborted: %v", err)
		}
		tbl.ReleaseAll(2)
	})
	k.Spawn("scan", func(p *sim.Proc) {
		for i := 0; i < 15; i++ {
			p.Wait(sim.Millisecond)
			if v := det.ScanOnce(); len(v) > 0 {
				t.Errorf("false positive victims %v", v)
			}
		}
	})
	k.RunAll()
}

func TestDeadlockAcrossTables(t *testing.T) {
	k := sim.NewKernel()
	tbl0 := NewTable(k, "pe0")
	tbl1 := NewTable(k, "pe1")
	det := NewDetector(k, 5*sim.Millisecond)
	det.Register(tbl0)
	det.Register(tbl1)
	aborted := 0
	k.Spawn("t1", func(p *sim.Proc) {
		tbl0.Lock(p, 1, key(1), Exclusive)
		p.Wait(sim.Millisecond)
		if err := tbl1.Lock(p, 1, key(1), Exclusive); err != nil {
			aborted++
			tbl0.ReleaseAll(1)
			tbl1.ReleaseAll(1)
		}
	})
	k.Spawn("t2", func(p *sim.Proc) {
		tbl1.Lock(p, 2, key(1), Exclusive)
		p.Wait(sim.Millisecond)
		if err := tbl0.Lock(p, 2, key(1), Exclusive); err != nil {
			aborted++
			tbl0.ReleaseAll(2)
			tbl1.ReleaseAll(2)
		}
	})
	k.Spawn("scan", func(p *sim.Proc) {
		p.Wait(5 * sim.Millisecond)
		det.ScanOnce()
	})
	k.RunAll()
	if aborted != 1 {
		t.Errorf("aborted=%d, want exactly 1 (distributed deadlock resolved)", aborted)
	}
	if k.Blocked() != 0 {
		t.Errorf("blocked=%d at end; deadlock not fully resolved", k.Blocked())
	}
}

func TestDetectorStartStop(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	det := NewDetector(k, 2*sim.Millisecond)
	det.Register(tbl)
	det.Start()
	k.Spawn("stopper", func(p *sim.Proc) {
		p.Wait(10 * sim.Millisecond)
		det.Stop()
	})
	k.RunAll()
	if k.Live() != 0 {
		t.Errorf("detector process still live after Stop")
	}
}

func TestUnlockUnheldPanics(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	defer func() {
		if recover() == nil {
			t.Error("unlock of unheld key did not panic")
		}
	}()
	tbl.Unlock(1, key(1))
}

// TestAbortWakeOrderDeterministic pins the wake-up order of deadlock
// resolution: Abort must grant the victim's released locks and abort its
// queued requests in sorted key order, not lock-table map order — with 17
// parked processes woken in one Abort call, map iteration would scramble
// the event sequence (and therefore the whole simulation) on every run.
func TestAbortWakeOrderDeterministic(t *testing.T) {
	k := sim.NewKernel()
	tbl := NewTable(k, "pe0")
	const held = 16
	var order []int64

	// txn 50 holds key 21, which the victim will queue on.
	k.Spawn("blocker", func(p *sim.Proc) {
		tbl.Lock(p, 50, key(21), Exclusive)
		p.Wait(10 * sim.Millisecond)
		tbl.ReleaseAll(50)
	})
	// The victim (txn 99) holds keys 1..16 and waits on key 21.
	k.Spawn("victim", func(p *sim.Proc) {
		for i := int64(1); i <= held; i++ {
			tbl.Lock(p, 99, key(i), Exclusive)
		}
		if err := tbl.Lock(p, 99, key(21), Exclusive); err == nil {
			t.Error("victim lock on key 21 granted, want ErrDeadlock")
		}
		order = append(order, 21)
		tbl.ReleaseAll(99)
	})
	// One waiter per held key, queued behind the victim.
	for i := int64(1); i <= held; i++ {
		k.SpawnAt(sim.Millisecond, "waiter", func(p *sim.Proc) {
			if err := tbl.Lock(p, TxnID(i), key(i), Exclusive); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order = append(order, i)
			tbl.ReleaseAll(TxnID(i))
		})
	}
	k.At(2*sim.Millisecond, func() { tbl.Abort(99) })
	k.RunAll()

	want := make([]int64, 0, held+1)
	for i := int64(1); i <= held; i++ {
		want = append(want, i)
	}
	want = append(want, 21)
	if len(order) != len(want) {
		t.Fatalf("woke %d processes, want %d (order %v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}
