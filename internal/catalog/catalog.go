// Package catalog models the simulated database: relations declustered
// horizontally across processing elements (PEs) and disks, page/tuple
// geometry, and B+-tree indices. It mirrors the database model of Rahm &
// Marek's simulation system (Section 4): a partition is a set of pages, each
// holding blocking-factor objects, with optional clustered or unclustered
// B+-tree indices.
package catalog

import (
	"fmt"
	"math"
)

// IndexKind describes the index available on a relation's join/select key.
type IndexKind int

// Index kinds.
const (
	NoIndex IndexKind = iota
	ClusteredBTree
	UnclusteredBTree
)

func (ik IndexKind) String() string {
	switch ik {
	case NoIndex:
		return "none"
	case ClusteredBTree:
		return "clustered-b+tree"
	case UnclusteredBTree:
		return "unclustered-b+tree"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(ik))
	}
}

// Relation is a horizontally declustered table.
type Relation struct {
	Name     string
	Tuples   int64
	Blocking int       // tuples per page (blocking factor)
	Index    IndexKind // index on the scan/join attribute
	HomePEs  []int     // PEs owning fragments, in declustering order
	Fanout   int       // B+-tree fanout (entries per index page)
}

// Validate checks structural invariants.
func (r *Relation) Validate() error {
	switch {
	case r.Name == "":
		return fmt.Errorf("catalog: relation without name")
	case r.Tuples <= 0:
		return fmt.Errorf("catalog: relation %s: tuples %d <= 0", r.Name, r.Tuples)
	case r.Blocking <= 0:
		return fmt.Errorf("catalog: relation %s: blocking factor %d <= 0", r.Name, r.Blocking)
	case len(r.HomePEs) == 0:
		return fmt.Errorf("catalog: relation %s: no home PEs", r.Name)
	case r.Index != NoIndex && r.Fanout < 2:
		return fmt.Errorf("catalog: relation %s: indexed with fanout %d < 2", r.Name, r.Fanout)
	}
	seen := make(map[int]bool, len(r.HomePEs))
	for _, pe := range r.HomePEs {
		if pe < 0 {
			return fmt.Errorf("catalog: relation %s: negative PE %d", r.Name, pe)
		}
		if seen[pe] {
			return fmt.Errorf("catalog: relation %s: duplicate home PE %d", r.Name, pe)
		}
		seen[pe] = true
	}
	return nil
}

// Pages returns the total data pages of the relation.
func (r *Relation) Pages() int64 {
	return ceilDiv(r.Tuples, int64(r.Blocking))
}

// PagesFor returns the pages needed to hold n tuples of this relation.
func (r *Relation) PagesFor(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return ceilDiv(n, int64(r.Blocking))
}

// FragmentTuples returns the tuple count of the fragment on the idx-th home
// PE (uniform declustering; the first Tuples mod n fragments hold one extra).
func (r *Relation) FragmentTuples(idx int) int64 {
	n := int64(len(r.HomePEs))
	if idx < 0 || int64(idx) >= n {
		panic(fmt.Sprintf("catalog: relation %s: fragment index %d of %d", r.Name, idx, n))
	}
	base := r.Tuples / n
	if int64(idx) < r.Tuples%n {
		base++
	}
	return base
}

// FragmentPages returns the data pages of the idx-th fragment.
func (r *Relation) FragmentPages(idx int) int64 {
	return r.PagesFor(r.FragmentTuples(idx))
}

// HomeIndex returns the fragment index of pe, or -1 if pe holds no fragment.
func (r *Relation) HomeIndex(pe int) int {
	for i, h := range r.HomePEs {
		if h == pe {
			return i
		}
	}
	return -1
}

// IndexHeight returns the number of index levels above the data (clustered)
// or above the leaf/RID level (unclustered) for the idx-th fragment: the
// pages traversed by one key lookup before reaching data.
func (r *Relation) IndexHeight(idx int) int {
	if r.Index == NoIndex {
		return 0
	}
	leaves := r.FragmentPages(idx)
	if r.Index == UnclusteredBTree {
		// RID-list leaf level: one entry per tuple.
		leaves = ceilDiv(r.FragmentTuples(idx), int64(r.Fanout))
	}
	h := 1 // the leaf level itself is traversed
	for leaves > 1 {
		leaves = ceilDiv(leaves, int64(r.Fanout))
		h++
	}
	return h
}

// Database is a named set of relations.
type Database struct {
	rels map[string]*Relation
	ord  []string
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Add validates and registers a relation; it rejects duplicates.
func (db *Database) Add(r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := db.rels[r.Name]; dup {
		return fmt.Errorf("catalog: duplicate relation %s", r.Name)
	}
	db.rels[r.Name] = r
	db.ord = append(db.ord, r.Name)
	return nil
}

// MustAdd is Add that panics on error, for static setup code.
func (db *Database) MustAdd(r *Relation) {
	if err := db.Add(r); err != nil {
		panic(err)
	}
}

// Get returns the named relation, or nil.
func (db *Database) Get(name string) *Relation { return db.rels[name] }

// Relations returns all relations in registration order.
func (db *Database) Relations() []*Relation {
	out := make([]*Relation, 0, len(db.ord))
	for _, n := range db.ord {
		out = append(out, db.rels[n])
	}
	return out
}

// SelectivityTuples returns the number of tuples matching a predicate with
// the given selectivity (fraction in [0,1]) over n tuples, rounded to
// nearest, at least 1 for any positive selectivity.
func SelectivityTuples(n int64, sel float64) int64 {
	if sel <= 0 {
		return 0
	}
	if sel >= 1 {
		return n
	}
	t := int64(math.Round(float64(n) * sel))
	if t < 1 {
		t = 1
	}
	return t
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("catalog: ceilDiv by non-positive")
	}
	return (a + b - 1) / b
}

// Range splits [0,total) tuples into parts nearly equal shares and returns
// the size of share idx. It is the uniform redistribution used when scan
// output is partitioned among join processors without skew.
func Range(total int64, parts, idx int) int64 {
	if parts <= 0 || idx < 0 || idx >= parts {
		panic(fmt.Sprintf("catalog: Range(%d, %d, %d)", total, parts, idx))
	}
	base := total / int64(parts)
	if int64(idx) < total%int64(parts) {
		base++
	}
	return base
}
