package catalog

import (
	"testing"
	"testing/quick"
)

func relA() *Relation {
	return &Relation{
		Name: "A", Tuples: 250_000, Blocking: 20,
		Index: ClusteredBTree, HomePEs: []int{0, 1, 2, 3}, Fanout: 200,
	}
}

func TestRelationPagesPaperGeometry(t *testing.T) {
	a := relA()
	if got := a.Pages(); got != 12_500 {
		t.Errorf("A pages = %d, want 12500 (250k tuples / 20 per page)", got)
	}
	b := &Relation{Name: "B", Tuples: 1_000_000, Blocking: 20, Index: ClusteredBTree, HomePEs: []int{4}, Fanout: 200}
	if got := b.Pages(); got != 50_000 {
		t.Errorf("B pages = %d, want 50000", got)
	}
}

func TestPagesForRounding(t *testing.T) {
	a := relA()
	cases := []struct {
		tuples int64
		want   int64
	}{{0, 0}, {1, 1}, {20, 1}, {21, 2}, {2500, 125}}
	for _, c := range cases {
		if got := a.PagesFor(c.tuples); got != c.want {
			t.Errorf("PagesFor(%d) = %d, want %d", c.tuples, got, c.want)
		}
	}
}

func TestFragmentTuplesSumToTotal(t *testing.T) {
	r := &Relation{Name: "R", Tuples: 10, Blocking: 3, HomePEs: []int{0, 1, 2}}
	var sum int64
	for i := range r.HomePEs {
		sum += r.FragmentTuples(i)
	}
	if sum != r.Tuples {
		t.Errorf("fragments sum to %d, want %d", sum, r.Tuples)
	}
	// 10 over 3 -> 4,3,3
	if r.FragmentTuples(0) != 4 || r.FragmentTuples(1) != 3 || r.FragmentTuples(2) != 3 {
		t.Errorf("fragments = %d,%d,%d", r.FragmentTuples(0), r.FragmentTuples(1), r.FragmentTuples(2))
	}
}

func TestHomeIndex(t *testing.T) {
	r := relA()
	if r.HomeIndex(2) != 2 {
		t.Errorf("HomeIndex(2) = %d", r.HomeIndex(2))
	}
	if r.HomeIndex(99) != -1 {
		t.Errorf("HomeIndex(99) = %d, want -1", r.HomeIndex(99))
	}
}

func TestIndexHeight(t *testing.T) {
	r := relA() // 4 fragments of 62500 tuples = 3125 pages; fanout 200
	// clustered: leaves=3125 -> 16 -> 1: height 3
	if h := r.IndexHeight(0); h != 3 {
		t.Errorf("clustered height = %d, want 3", h)
	}
	r.Index = UnclusteredBTree
	// RID leaves = ceil(62500/200)=313 -> 2 -> 1: height 3
	if h := r.IndexHeight(0); h != 3 {
		t.Errorf("unclustered height = %d, want 3", h)
	}
	r.Index = NoIndex
	if h := r.IndexHeight(0); h != 0 {
		t.Errorf("no-index height = %d, want 0", h)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Relation{
		{Name: "", Tuples: 1, Blocking: 1, HomePEs: []int{0}},
		{Name: "x", Tuples: 0, Blocking: 1, HomePEs: []int{0}},
		{Name: "x", Tuples: 1, Blocking: 0, HomePEs: []int{0}},
		{Name: "x", Tuples: 1, Blocking: 1, HomePEs: nil},
		{Name: "x", Tuples: 1, Blocking: 1, HomePEs: []int{0, 0}},
		{Name: "x", Tuples: 1, Blocking: 1, HomePEs: []int{-1}},
		{Name: "x", Tuples: 1, Blocking: 1, HomePEs: []int{0}, Index: ClusteredBTree, Fanout: 1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid relation %+v", i, r)
		}
	}
	if err := relA().Validate(); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
}

func TestDatabaseAddGet(t *testing.T) {
	db := NewDatabase()
	if err := db.Add(relA()); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(relA()); err == nil {
		t.Error("duplicate Add accepted")
	}
	if db.Get("A") == nil {
		t.Error("Get(A) = nil")
	}
	if db.Get("nope") != nil {
		t.Error("Get(nope) != nil")
	}
	if len(db.Relations()) != 1 {
		t.Errorf("Relations() len = %d", len(db.Relations()))
	}
}

func TestSelectivityTuples(t *testing.T) {
	cases := []struct {
		n    int64
		sel  float64
		want int64
	}{
		{250_000, 0.01, 2500},
		{1_000_000, 0.01, 10_000},
		{250_000, 0.001, 250},
		{250_000, 0.05, 12_500},
		{100, 0, 0},
		{100, 1, 100},
		{100, 0.00001, 1}, // clamps to at least one tuple
	}
	for _, c := range cases {
		if got := SelectivityTuples(c.n, c.sel); got != c.want {
			t.Errorf("SelectivityTuples(%d, %v) = %d, want %d", c.n, c.sel, got, c.want)
		}
	}
}

func TestRangeShares(t *testing.T) {
	var sum int64
	for i := 0; i < 7; i++ {
		sum += Range(100, 7, i)
	}
	if sum != 100 {
		t.Errorf("Range shares sum to %d, want 100", sum)
	}
	if Range(100, 7, 0) != 15 || Range(100, 7, 6) != 14 {
		t.Errorf("Range uneven split wrong: first=%d last=%d", Range(100, 7, 0), Range(100, 7, 6))
	}
}

// Property: fragment tuple counts always sum to the relation total and
// differ by at most 1 (uniform declustering).
func TestQuickFragmentUniformity(t *testing.T) {
	f := func(tuples uint32, parts uint8) bool {
		n := int(parts)%64 + 1
		tot := int64(tuples)%1_000_000 + 1
		pes := make([]int, n)
		for i := range pes {
			pes[i] = i
		}
		r := &Relation{Name: "q", Tuples: tot, Blocking: 20, HomePEs: pes}
		var sum, min, max int64
		min = 1 << 62
		for i := 0; i < n; i++ {
			ft := r.FragmentTuples(i)
			sum += ft
			if ft < min {
				min = ft
			}
			if ft > max {
				max = ft
			}
		}
		return sum == tot && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Range shares sum to total and are within 1 of each other.
func TestQuickRangeShares(t *testing.T) {
	f := func(total uint32, parts uint8) bool {
		p := int(parts)%32 + 1
		tot := int64(total) % 100_000
		var sum, min, max int64
		min = 1 << 62
		for i := 0; i < p; i++ {
			s := Range(tot, p, i)
			sum += s
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		return sum == tot && max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
