// Package pphj implements the memory-adaptive local hash-join algorithm of
// the paper (Section 4): the Partially Preemptible Hash Join of Pang, Carey
// & Livny (SIGMOD '93), as used by each join process.
//
// Both join inputs are split into p = ceil(sqrt(F*b_A)) partitions. As many
// A (inner) partitions as fit are kept memory-resident so arriving B
// (outer) tuples can be probed directly. When memory is taken away by
// higher-priority transactions, resident partitions are flushed to
// temporary files; when it grows, disk-resident partitions can be revived.
// B tuples hitting a non-resident partition are spilled, and those
// partitions are joined in a deferred pass after the probe input drains.
//
// The type is a pure state machine over tuple and page counts: it decides
// partitioning, residency and spilling, and reports the I/O volume each
// operation implies. The engine executes the I/O against the simulated
// disks and charges CPU per the cost table, keeping this package
// independently testable.
package pphj

import (
	"fmt"
	"math"
)

// Join is the PPHJ state of one join process.
type Join struct {
	blocking int
	fudge    float64
	nParts   int
	memPages int

	aTuples  []int64 // inner tuples received per partition
	bSpilled []int64 // outer tuples spilled per partition
	resident []bool
	buildRR  int // round-robin distribution cursor for builds
	probeRR  int // and for probes

	buildDone bool

	directProbes, spilledProbes     int64
	tempWritePages, tempReadPlanned int64
	flushes, revivals               int64
}

// NumPartitions returns p = ceil(sqrt(F * innerPages)), at least 1.
func NumPartitions(innerPages int64, fudge float64) int {
	if innerPages <= 0 {
		return 1
	}
	p := int(math.Ceil(math.Sqrt(fudge * float64(innerPages))))
	if p < 1 {
		p = 1
	}
	return p
}

// New creates the join state for an expected local inner input of
// expectedInnerPages pages with memPages (>= 1) of working space. The
// partition count is p = ceil(sqrt(F*b)) capped by memPages — with less
// memory than the ideal partition count the join runs with fewer, larger
// partitions (more spilling), never below one page per partition.
func New(expectedInnerPages int64, fudge float64, blocking, memPages int) *Join {
	if blocking < 1 {
		panic(fmt.Sprintf("pphj: blocking %d", blocking))
	}
	if fudge < 1 {
		panic(fmt.Sprintf("pphj: fudge %v", fudge))
	}
	if memPages < 1 {
		panic(fmt.Sprintf("pphj: memPages %d < 1", memPages))
	}
	n := NumPartitions(expectedInnerPages, fudge)
	if n > memPages {
		n = memPages
	}
	j := &Join{
		blocking: blocking,
		fudge:    fudge,
		nParts:   n,
		memPages: memPages,
		aTuples:  make([]int64, n),
		bSpilled: make([]int64, n),
		resident: make([]bool, n),
	}
	for i := range j.resident {
		j.resident[i] = true
	}
	return j
}

// NParts returns the partition count p.
func (j *Join) NParts() int { return j.nParts }

// MinPages returns the minimal working space (one page per partition).
func (j *Join) MinPages() int { return j.nParts }

// MemPages returns the current working-space size the join plans with.
func (j *Join) MemPages() int { return j.memPages }

// Flushes returns how many partitions were flushed due to memory pressure.
func (j *Join) Flushes() int64 { return j.flushes }

// Revivals returns how many disk-resident partitions were brought back.
func (j *Join) Revivals() int64 { return j.revivals }

// DirectProbes returns outer tuples probed directly against memory.
func (j *Join) DirectProbes() int64 { return j.directProbes }

// SpilledProbes returns outer tuples spilled to temporary files.
func (j *Join) SpilledProbes() int64 { return j.spilledProbes }

// TempWritePages returns the total temporary pages this state asked the
// engine to write so far.
func (j *Join) TempWritePages() int64 { return j.tempWritePages }

// hashPagesFor returns hash-table pages for t inner tuples: the fudge
// factor applied to the fractional data pages, so the per-partition sum
// stays consistent with the strategies' aggregate ceil(F*b_i).
func (j *Join) hashPagesFor(t int64) int64 {
	if t <= 0 {
		return 0
	}
	return int64(math.Ceil(j.fudge * float64(t) / float64(j.blocking)))
}

// ResidentHashPages returns the memory the resident partitions occupy.
// Residency is accounted over the aggregate resident tuples (page rounding
// once, not per partition), keeping the join's true demand equal to the
// ceil(F*b_i) the strategies plan with.
func (j *Join) ResidentHashPages() int64 {
	var tuples int64
	for i, t := range j.aTuples {
		if j.resident[i] {
			tuples += t
		}
	}
	return j.hashPagesFor(tuples)
}

// ResidentParts returns how many partitions are memory-resident.
func (j *Join) ResidentParts() int {
	var n int
	for _, r := range j.resident {
		if r {
			n++
		}
	}
	return n
}

// Build accepts a batch of arriving inner tuples, distributing them evenly
// over the partitions. It returns the temporary pages the engine must write
// now: growth of non-resident partitions plus any partitions flushed to
// stay within the working space.
func (j *Join) Build(tuples int64) (writePages int64) {
	if j.buildDone {
		panic("pphj: Build after EndBuild")
	}
	writePages += j.distribute(tuples, &j.buildRR, func(part int, n int64) int64 {
		before := j.aTuples[part]
		j.aTuples[part] += n
		if j.resident[part] {
			return 0
		}
		// Non-resident: appended to its temporary file.
		return pageGrowth(before, j.aTuples[part], int64(j.blocking))
	})
	writePages += j.enforceMemory()
	j.tempWritePages += writePages
	return writePages
}

// EndBuild marks the building phase complete.
func (j *Join) EndBuild() { j.buildDone = true }

// Probe accepts a batch of outer tuples. Tuples of resident partitions are
// probed directly; the rest are spilled. It returns the split and the
// temporary pages to write now.
func (j *Join) Probe(tuples int64) (direct, spilled, writePages int64) {
	writePages = j.distribute(tuples, &j.probeRR, func(part int, n int64) int64 {
		if j.resident[part] {
			direct += n
			return 0
		}
		spilled += n
		before := j.bSpilled[part]
		j.bSpilled[part] += n
		return pageGrowth(before, j.bSpilled[part], int64(j.blocking))
	})
	j.directProbes += direct
	j.spilledProbes += spilled
	j.tempWritePages += writePages
	return direct, spilled, writePages
}

// distribute spreads a batch round-robin over partitions, calling f with
// each partition's share, and sums f's returned page counts.
func (j *Join) distribute(tuples int64, rr *int, f func(part int, n int64) int64) int64 {
	if tuples <= 0 {
		return 0
	}
	var pages int64
	base := tuples / int64(j.nParts)
	rem := tuples % int64(j.nParts)
	for i := 0; i < j.nParts; i++ {
		part := (*rr + i) % j.nParts
		n := base
		if int64(i) < rem {
			n++
		}
		if n > 0 {
			pages += f(part, n)
		}
	}
	*rr = (*rr + int(rem)) % j.nParts
	return pages
}

// enforceMemory flushes resident partitions (largest first) until the
// resident hash pages fit the working space. It returns pages to write.
func (j *Join) enforceMemory() int64 {
	var written int64
	for j.ResidentHashPages() > int64(j.memPages) {
		victim, victimPages := -1, int64(-1)
		for i, t := range j.aTuples {
			if !j.resident[i] {
				continue
			}
			if hp := j.hashPagesFor(t); hp > victimPages {
				victim, victimPages = i, hp
			}
		}
		if victim < 0 {
			break // nothing resident; counts are tiny
		}
		j.resident[victim] = false
		j.flushes++
		// The partition's data pages go to its temporary file.
		written += (j.aTuples[victim] + int64(j.blocking) - 1) / int64(j.blocking)
	}
	return written
}

// SetMem adjusts the working-space size (after a steal or growth). When
// shrinking it flushes partitions and returns the pages the engine must
// write; growing returns 0 (use Revive to bring partitions back).
// newPages below MinPages is clamped to MinPages: the join never operates
// below the paper's minimal space requirement.
func (j *Join) SetMem(newPages int) (writePages int64) {
	if newPages < j.MinPages() {
		newPages = j.MinPages()
	}
	j.memPages = newPages
	w := j.enforceMemory()
	j.tempWritePages += w
	return w
}

// Revive marks disk-resident partitions resident again while their hash
// tables fit the (possibly grown) working space, returning the temporary
// pages the engine must read back. Revived partitions serve future probes
// directly; their already-spilled B tuples stay deferred.
func (j *Join) Revive() (readPages int64) {
	for {
		// Smallest disk-resident partition first: most revivals per page.
		victim, victimPages := -1, int64(math.MaxInt64)
		for i, t := range j.aTuples {
			if j.resident[i] {
				continue
			}
			if hp := j.hashPagesFor(t); hp < victimPages {
				victim, victimPages = i, hp
			}
		}
		if victim < 0 {
			return readPages
		}
		if j.ResidentHashPages()+victimPages > int64(j.memPages) {
			return readPages
		}
		j.resident[victim] = true
		j.revivals++
		readPages += (j.aTuples[victim] + int64(j.blocking) - 1) / int64(j.blocking)
	}
}

// Deferred describes one disk-resident partition pair requiring the delayed
// join pass: read the A partition, rebuild its hash table, then read and
// probe the spilled B tuples.
type Deferred struct {
	Part    int
	ATuples int64
	APages  int64
	BTuples int64
	BPages  int64
}

// DeferredPlan returns the delayed work for all non-resident partitions
// plus resident partitions that have spilled B tuples (spilled before a
// revival). The engine executes the plan after the probe input drains.
func (j *Join) DeferredPlan() []Deferred {
	var out []Deferred
	for i := range j.aTuples {
		if j.resident[i] && j.bSpilled[i] == 0 {
			continue
		}
		if !j.resident[i] || j.bSpilled[i] > 0 {
			d := Deferred{
				Part:    i,
				BTuples: j.bSpilled[i],
				BPages:  (j.bSpilled[i] + int64(j.blocking) - 1) / int64(j.blocking),
			}
			if !j.resident[i] {
				d.ATuples = j.aTuples[i]
				d.APages = (j.aTuples[i] + int64(j.blocking) - 1) / int64(j.blocking)
			}
			if d.ATuples == 0 && d.BTuples == 0 {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

func pageGrowth(before, after, blocking int64) int64 {
	pb := (before + blocking - 1) / blocking
	pa := (after + blocking - 1) / blocking
	return pa - pb
}
