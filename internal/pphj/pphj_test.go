package pphj

import (
	"testing"
	"testing/quick"
)

func TestNumPartitions(t *testing.T) {
	cases := []struct {
		pages int64
		fudge float64
		want  int
	}{
		{0, 1.05, 1},
		{1, 1.05, 2},   // ceil(sqrt(1.05))
		{100, 1.0, 10}, // sqrt(100)
		{131, 1.05, 12},
		{656, 1.05, 27},
	}
	for _, c := range cases {
		if got := NumPartitions(c.pages, c.fudge); got != c.want {
			t.Errorf("NumPartitions(%d, %v) = %d, want %d", c.pages, c.fudge, got, c.want)
		}
	}
}

func TestNewCapsPartitionsByMemory(t *testing.T) {
	j := New(100, 1.0, 20, 5) // ideal 10 partitions, memory allows 5
	if j.NParts() != 5 {
		t.Errorf("nParts=%d, want capped to 5", j.NParts())
	}
	if j.MinPages() != 5 {
		t.Errorf("minPages=%d", j.MinPages())
	}
	defer func() {
		if recover() == nil {
			t.Error("memPages < 1 did not panic")
		}
	}()
	New(100, 1.0, 20, 0)
}

func TestAllInMemoryNoSpill(t *testing.T) {
	// 100 inner pages = 2000 tuples, memory 110 >= fudge*100
	j := New(100, 1.05, 20, 110)
	if w := j.Build(2000); w != 0 {
		t.Errorf("in-memory build wrote %d pages", w)
	}
	j.EndBuild()
	direct, spilled, w := j.Probe(8000)
	if spilled != 0 || w != 0 {
		t.Errorf("in-memory probe spilled %d tuples, %d pages", spilled, w)
	}
	if direct != 8000 {
		t.Errorf("direct=%d, want 8000", direct)
	}
	if len(j.DeferredPlan()) != 0 {
		t.Errorf("deferred plan non-empty: %v", j.DeferredPlan())
	}
	if j.Flushes() != 0 {
		t.Errorf("flushes=%d", j.Flushes())
	}
}

func TestMemoryPressureFlushesPartitions(t *testing.T) {
	// 100 inner pages but only half the memory: roughly half the
	// partitions must flush.
	j := New(100, 1.0, 20, 55)
	w := j.Build(2000)
	if w == 0 {
		t.Fatal("overcommitted build wrote nothing")
	}
	if j.Flushes() == 0 {
		t.Fatal("no partitions flushed")
	}
	if j.ResidentHashPages() > 55 {
		t.Errorf("resident pages %d exceed memory 55", j.ResidentHashPages())
	}
	j.EndBuild()
	direct, spilled, _ := j.Probe(8000)
	if spilled == 0 {
		t.Error("no probe tuples spilled despite non-resident partitions")
	}
	if direct == 0 {
		t.Error("no direct probes despite resident partitions")
	}
	// Deferred plan covers exactly the non-resident partitions.
	plan := j.DeferredPlan()
	nonRes := j.NParts() - j.ResidentParts()
	if len(plan) != nonRes {
		t.Errorf("deferred plan %d entries, want %d", len(plan), nonRes)
	}
	var defA, defB int64
	for _, d := range plan {
		defA += d.ATuples
		defB += d.BTuples
	}
	if defB != spilled {
		t.Errorf("deferred B tuples %d != spilled %d", defB, spilled)
	}
	if defA == 0 {
		t.Error("deferred plan without inner tuples")
	}
}

func TestTupleConservationThroughProbe(t *testing.T) {
	j := New(100, 1.0, 20, 60)
	j.Build(2000)
	j.EndBuild()
	var direct, spilled int64
	for i := 0; i < 10; i++ {
		d, s, _ := j.Probe(800)
		direct += d
		spilled += s
	}
	if direct+spilled != 8000 {
		t.Errorf("direct %d + spilled %d != 8000", direct, spilled)
	}
	if direct != j.DirectProbes() || spilled != j.SpilledProbes() {
		t.Errorf("stats mismatch: %d/%d vs %d/%d", direct, spilled, j.DirectProbes(), j.SpilledProbes())
	}
}

func TestSetMemShrinkFlushes(t *testing.T) {
	j := New(100, 1.0, 20, 110)
	j.Build(2000)
	if j.Flushes() != 0 {
		t.Fatal("unexpected early flush")
	}
	w := j.SetMem(40) // steal 70 pages
	if w == 0 {
		t.Fatal("shrink wrote nothing")
	}
	if j.ResidentHashPages() > 40 {
		t.Errorf("resident %d > 40 after shrink", j.ResidentHashPages())
	}
	if j.MemPages() != 40 {
		t.Errorf("memPages=%d", j.MemPages())
	}
}

func TestSetMemClampsToMinimum(t *testing.T) {
	j := New(100, 1.0, 20, 20)
	j.SetMem(1)
	if j.MemPages() != j.MinPages() {
		t.Errorf("memPages=%d, want clamped to min %d", j.MemPages(), j.MinPages())
	}
}

func TestReviveBringsPartitionsBack(t *testing.T) {
	j := New(100, 1.0, 20, 40)
	j.Build(2000) // flushes most partitions
	nonResBefore := j.NParts() - j.ResidentParts()
	if nonResBefore == 0 {
		t.Fatal("setup: nothing flushed")
	}
	j.SetMem(110)
	read := j.Revive()
	if read == 0 {
		t.Fatal("revive read nothing")
	}
	if j.ResidentParts() != j.NParts() {
		t.Errorf("resident %d/%d after full revive", j.ResidentParts(), j.NParts())
	}
	if j.Revivals() != int64(nonResBefore) {
		t.Errorf("revivals=%d, want %d", j.Revivals(), nonResBefore)
	}
	// Future probes are all direct now.
	j.EndBuild()
	_, spilled, _ := j.Probe(1000)
	if spilled != 0 {
		t.Errorf("spilled %d after full revive", spilled)
	}
}

func TestReviveRespectsMemory(t *testing.T) {
	j := New(100, 1.0, 20, 40)
	j.Build(2000)
	j.SetMem(45) // tiny growth: at most one small partition revives
	j.Revive()
	if j.ResidentHashPages() > 45 {
		t.Errorf("revive overcommitted: %d > 45", j.ResidentHashPages())
	}
}

func TestSpilledBeforeRevivalStaysDeferred(t *testing.T) {
	j := New(100, 1.0, 20, 40)
	j.Build(2000)
	j.EndBuild()
	_, spilledEarly, _ := j.Probe(4000)
	if spilledEarly == 0 {
		t.Fatal("setup: nothing spilled")
	}
	j.SetMem(110)
	j.Revive()
	_, spilledLate, _ := j.Probe(4000)
	if spilledLate != 0 {
		t.Errorf("spilled %d after revive", spilledLate)
	}
	var defB int64
	for _, d := range j.DeferredPlan() {
		defB += d.BTuples
	}
	if defB != spilledEarly {
		t.Errorf("deferred B %d != early spills %d", defB, spilledEarly)
	}
}

func TestBuildAfterEndBuildPanics(t *testing.T) {
	j := New(10, 1.0, 20, 12)
	j.EndBuild()
	defer func() {
		if recover() == nil {
			t.Error("Build after EndBuild did not panic")
		}
	}()
	j.Build(10)
}

func TestDistributionEven(t *testing.T) {
	j := New(100, 1.0, 20, 110)
	// 7 batches of 13 tuples across 10 partitions: max-min <= 1 overall
	for i := 0; i < 7; i++ {
		j.Build(13)
	}
	var minT, maxT int64 = 1 << 62, -1
	for _, c := range j.aTuples {
		if c < minT {
			minT = c
		}
		if c > maxT {
			maxT = c
		}
	}
	if maxT-minT > 1 {
		t.Errorf("round-robin skewed: min=%d max=%d (%v)", minT, maxT, j.aTuples)
	}
}

// Property: resident hash pages never exceed the working space, and probe
// tuple conservation holds, under arbitrary operation sequences.
func TestQuickInvariants(t *testing.T) {
	f := func(ops []uint16, memRaw uint8) bool {
		mem := int(memRaw)%100 + 15
		j := New(100, 1.05, 20, mem)
		var direct, spilled, probed int64
		building := true
		for _, op := range ops {
			kind := op % 4
			n := int64(op%97) + 1
			switch kind {
			case 0:
				if building {
					j.Build(n)
				}
			case 1:
				if building {
					j.EndBuild()
					building = false
				}
				d, s, _ := j.Probe(n)
				direct += d
				spilled += s
				probed += n
			case 2:
				j.SetMem(int(op%120) + 1)
			case 3:
				j.Revive()
			}
			if j.ResidentHashPages() > int64(j.MemPages()) {
				return false
			}
		}
		return direct+spilled == probed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: total temporary write pages grow monotonically and deferred
// B pages equal ceil(spilled/blocking) summed per partition.
func TestQuickDeferredConsistency(t *testing.T) {
	f := func(batches []uint8, memRaw uint8) bool {
		mem := int(memRaw)%60 + 15
		j := New(100, 1.0, 20, mem)
		j.Build(2000)
		j.EndBuild()
		var spilled int64
		for _, b := range batches {
			_, s, _ := j.Probe(int64(b))
			spilled += s
		}
		var defB int64
		for _, d := range j.DeferredPlan() {
			defB += d.BTuples
			if d.BPages < (d.BTuples+19)/20 {
				return false
			}
		}
		return defB == spilled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
