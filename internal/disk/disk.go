// Package disk models the I/O subsystem of one processing element: a set of
// disk servers behind a controller with an LRU disk cache and sequential
// prefetching, following Section 4 of Rahm & Marek (VLDB '95):
//
//   - I/O duration = controller service time (per page) + disk access time +
//     transmission time (per page);
//   - prefetching reads several succeeding pages per physical access at
//     base-access + per-page delay (15 ms + 1 ms/page by default) and caches
//     them, so a 4-page prefetch takes 19 ms;
//   - the controller holds an LRU page cache (200 pages by default).
//
// CPU overhead per I/O (3000 instructions) is charged by the engine at the
// host CPU, not here.
package disk

import (
	"fmt"

	"dynlb/internal/sim"
)

// PageID identifies one page of one storage space (a relation fragment,
// index, log, or temporary partition file).
type PageID struct {
	Space int64
	Page  int64
}

// Params are the timing and cache parameters of the subsystem (paper
// defaults in Defaults).
type Params struct {
	CtrlPerPage     sim.Duration // controller service time per page
	TransferPerPage sim.Duration // transmission time per page
	AvgAccess       sim.Duration // base disk access time per physical I/O
	PrefetchPerPage sim.Duration // additional access delay per prefetched page
	CacheSize       int          // controller LRU cache capacity in pages (0 disables)
	Prefetch        int          // pages fetched per sequential physical I/O (>=1)
}

// Defaults returns the paper's Fig. 4 disk parameters.
func Defaults() Params {
	return Params{
		CtrlPerPage:     1 * sim.Millisecond,
		TransferPerPage: sim.FromMillis(0.4),
		AvgAccess:       15 * sim.Millisecond,
		PrefetchPerPage: 1 * sim.Millisecond,
		CacheSize:       200,
		Prefetch:        4,
	}
}

// Subsystem is the disk subsystem of one PE.
type Subsystem struct {
	k      *sim.Kernel
	ctrl   *sim.Server
	disks  []*sim.Server
	cache  *lru
	params Params

	// slow > 1 stretches every controller and disk service time by that
	// factor (fault injection: a degraded disk subsystem). 0 or 1 is the
	// unmodified fast path — no float multiply touches the durations, so
	// fault-free runs stay bit-identical.
	slow float64

	reads     int64
	writes    int64
	cacheHits int64
	physReads int64 // physical accesses (a prefetch run counts once)
}

// New creates a subsystem with ndisks disk servers and one controller.
func New(k *sim.Kernel, name string, ndisks int, p Params) *Subsystem {
	if ndisks < 1 {
		panic(fmt.Sprintf("disk: %s with %d disks", name, ndisks))
	}
	if p.Prefetch < 1 {
		p.Prefetch = 1
	}
	s := &Subsystem{
		k:      k,
		ctrl:   sim.NewServer(k, name+"/ctrl", 1),
		params: p,
	}
	for i := 0; i < ndisks; i++ {
		s.disks = append(s.disks, sim.NewServer(k, fmt.Sprintf("%s/disk%d", name, i), 1))
	}
	if p.CacheSize > 0 {
		s.cache = newLRU(p.CacheSize)
	}
	return s
}

// SetSlowdown sets the service-time stretch factor of the whole subsystem
// (fault injection). 1 restores normal speed.
func (s *Subsystem) SetSlowdown(f float64) {
	if f <= 1 {
		f = 0 // keep the zero-value fast path
	}
	s.slow = f
}

// stretch applies the degradation factor to a service time.
func (s *Subsystem) stretch(d sim.Duration) sim.Duration {
	if s.slow > 1 {
		return sim.Duration(float64(d) * s.slow)
	}
	return d
}

// NDisks returns the number of disk servers.
func (s *Subsystem) NDisks() int { return len(s.disks) }

// DiskFor maps a storage space to a disk index (stable assignment).
func (s *Subsystem) DiskFor(space int64) int {
	if space < 0 {
		space = -space
	}
	return int(space % int64(len(s.disks)))
}

// Read performs a synchronous page read by the calling process.
// sequential enables prefetching on a cache miss. It reports whether the
// page was served from the controller cache.
func (s *Subsystem) Read(p *sim.Proc, dsk int, pg PageID, sequential bool) bool {
	s.reads++
	if s.cache != nil && s.cache.get(pg) {
		s.cacheHits++
		s.ctrl.Use(p, s.stretch(s.params.CtrlPerPage+s.params.TransferPerPage))
		return true
	}
	n := 1
	if sequential && s.params.Prefetch > 1 {
		n = s.params.Prefetch
	}
	s.physReads++
	s.ctrl.Use(p, s.stretch(s.params.CtrlPerPage))
	access := s.stretch(s.params.AvgAccess + sim.Duration(n)*s.params.PrefetchPerPage)
	s.disk(dsk).Use(p, access)
	s.ctrl.Use(p, s.stretch(s.params.TransferPerPage))
	if s.cache != nil {
		for i := 0; i < n; i++ {
			s.cache.put(PageID{Space: pg.Space, Page: pg.Page + int64(i)})
		}
	}
	return false
}

// Write performs a synchronous page write by the calling process. Written
// pages are inserted into the controller cache (they are frequently re-read
// shortly after, e.g. temporary join partitions).
func (s *Subsystem) Write(p *sim.Proc, dsk int, pg PageID) {
	s.writes++
	s.ctrl.Use(p, s.stretch(s.params.CtrlPerPage))
	s.disk(dsk).Use(p, s.stretch(s.params.AvgAccess+s.params.PrefetchPerPage))
	s.ctrl.Use(p, s.stretch(s.params.TransferPerPage))
	if s.cache != nil {
		s.cache.put(pg)
	}
}

// WriteAsync schedules a background page write that occupies the controller
// and disk without blocking any process (used for no-force buffer flushes).
func (s *Subsystem) WriteAsync(dsk int, pg PageID) {
	s.k.Spawn("disk-write-async", func(p *sim.Proc) {
		s.Write(p, dsk, pg)
	})
}

// WriteRun writes n consecutive pages starting at pg with a single physical
// arm operation (sequential temporary-file output): controller and transfer
// per page, one access plus the per-page sequential delay on the disk.
// Written pages enter the controller cache — temporary partitions are
// typically re-read shortly after.
func (s *Subsystem) WriteRun(p *sim.Proc, dsk int, pg PageID, n int) {
	if n < 1 {
		return
	}
	s.writes += int64(n)
	s.ctrl.Use(p, s.stretch(sim.Duration(n)*s.params.CtrlPerPage))
	s.disk(dsk).Use(p, s.stretch(s.params.AvgAccess+sim.Duration(n)*s.params.PrefetchPerPage))
	s.ctrl.Use(p, s.stretch(sim.Duration(n)*s.params.TransferPerPage))
	if s.cache != nil {
		for i := 0; i < n; i++ {
			s.cache.put(PageID{Space: pg.Space, Page: pg.Page + int64(i)})
		}
	}
}

func (s *Subsystem) disk(i int) *sim.Server {
	if i < 0 || i >= len(s.disks) {
		panic(fmt.Sprintf("disk: index %d of %d", i, len(s.disks)))
	}
	return s.disks[i]
}

// Utilization returns the average utilization across the disk servers.
func (s *Subsystem) Utilization() float64 {
	var u float64
	for _, d := range s.disks {
		u += d.Utilization()
	}
	return u / float64(len(s.disks))
}

// BusyIntegral returns the summed busy-time integral of all disk servers
// (for warm-up-windowed utilization).
func (s *Subsystem) BusyIntegral() float64 {
	var b float64
	for _, d := range s.disks {
		b += d.BusyIntegral()
	}
	return b
}

// UtilizationSince returns average disk utilization over [from, now] given a
// BusyIntegral snapshot at from.
func (s *Subsystem) UtilizationSince(from sim.Time, busyAtFrom float64) float64 {
	window := float64(s.k.Now()-from) * float64(len(s.disks))
	if window <= 0 {
		return 0
	}
	return (s.BusyIntegral() - busyAtFrom) / window
}

// Reads returns the number of logical page reads.
func (s *Subsystem) Reads() int64 { return s.reads }

// Writes returns the number of page writes.
func (s *Subsystem) Writes() int64 { return s.writes }

// CacheHits returns the number of reads served from the controller cache.
func (s *Subsystem) CacheHits() int64 { return s.cacheHits }

// PhysReads returns physical read accesses (prefetch runs count once).
func (s *Subsystem) PhysReads() int64 { return s.physReads }

// lru is a fixed-capacity LRU set of PageIDs.
type lru struct {
	cap   int
	items map[PageID]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	id         PageID
	prev, next *lruNode
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, items: make(map[PageID]*lruNode, capacity)}
}

func (l *lru) get(id PageID) bool {
	n, ok := l.items[id]
	if !ok {
		return false
	}
	l.moveFront(n)
	return true
}

func (l *lru) put(id PageID) {
	if n, ok := l.items[id]; ok {
		l.moveFront(n)
		return
	}
	n := &lruNode{id: id}
	l.items[id] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		evict := l.tail
		l.remove(evict)
		delete(l.items, evict.id)
	}
}

func (l *lru) pushFront(n *lruNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lru) remove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lru) moveFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.remove(n)
	l.pushFront(n)
}

func (l *lru) len() int { return len(l.items) }
