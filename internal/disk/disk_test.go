package disk

import (
	"testing"
	"testing/quick"

	"dynlb/internal/sim"
)

func newTestSub(k *sim.Kernel, ndisks int) *Subsystem {
	return New(k, "pe0", ndisks, Defaults())
}

func TestReadMissTiming(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var took sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		hit := s.Read(p, 0, PageID{Space: 1, Page: 0}, false)
		took = p.Now() - start
		if hit {
			t.Error("cold read reported cache hit")
		}
	})
	k.RunAll()
	// ctrl 1ms + access (15 + 1*1)ms + transfer 0.4ms = 17.4ms
	want := sim.FromMillis(17.4)
	if took != want {
		t.Errorf("random read took %v, want %v", took, want)
	}
}

func TestSequentialPrefetchTimingAndCaching(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var first, rest sim.Time
	k.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		s.Read(p, 0, PageID{Space: 1, Page: 0}, true)
		first = p.Now() - start
		start = p.Now()
		for pg := int64(1); pg < 4; pg++ {
			if !s.Read(p, 0, PageID{Space: 1, Page: pg}, true) {
				t.Errorf("page %d not served from prefetch cache", pg)
			}
		}
		rest = p.Now() - start
	})
	k.RunAll()
	// first: ctrl 1 + access (15+4)ms + transfer 0.4 = 20.4ms
	if first != sim.FromMillis(20.4) {
		t.Errorf("prefetch read took %v, want 20.4ms", first)
	}
	// cached: 3 * (1 + 0.4)ms = 4.2ms
	if rest != sim.FromMillis(4.2) {
		t.Errorf("cached reads took %v, want 4.2ms", rest)
	}
	if s.PhysReads() != 1 {
		t.Errorf("phys reads = %d, want 1", s.PhysReads())
	}
	if s.CacheHits() != 3 {
		t.Errorf("cache hits = %d, want 3", s.CacheHits())
	}
}

func TestWriteTiming(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var took sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		s.Write(p, 0, PageID{Space: 2, Page: 7})
		took = p.Now() - start
	})
	k.RunAll()
	if took != sim.FromMillis(17.4) {
		t.Errorf("write took %v, want 17.4ms", took)
	}
	if s.Writes() != 1 {
		t.Errorf("writes = %d", s.Writes())
	}
}

func TestWrittenPageIsCached(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	k.Spawn("rw", func(p *sim.Proc) {
		pg := PageID{Space: 3, Page: 1}
		s.Write(p, 0, pg)
		if !s.Read(p, 0, pg, false) {
			t.Error("read after write missed the cache")
		}
	})
	k.RunAll()
}

func TestDisksQueueIndependently(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 2)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("r", func(p *sim.Proc) {
			s.Read(p, i, PageID{Space: int64(10 + i), Page: 0}, false)
			done[i] = p.Now()
		})
	}
	k.RunAll()
	// The two reads share the controller (1ms serial) but use distinct
	// disks, so completion times differ by about the controller slot, not
	// by a full disk access.
	diff := done[1] - done[0]
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.FromMillis(2) {
		t.Errorf("parallel disk reads completed %v apart; disks appear serialized", diff)
	}
}

func TestSameDiskSerializes(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var last sim.Time
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("r", func(p *sim.Proc) {
			s.Read(p, 0, PageID{Space: int64(20 + i), Page: 0}, false)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	k.RunAll()
	// two misses on one disk: >= 2*16ms of arm time
	if last < sim.FromMillis(32) {
		t.Errorf("two reads on one disk finished at %v; want >= 32ms", last)
	}
}

func TestCacheEviction(t *testing.T) {
	k := sim.NewKernel()
	p := Defaults()
	p.CacheSize = 4
	p.Prefetch = 1
	s := New(k, "pe0", 1, p)
	k.Spawn("r", func(pr *sim.Proc) {
		for pg := int64(0); pg < 5; pg++ { // fills cache past capacity
			s.Read(pr, 0, PageID{Space: 1, Page: pg}, false)
		}
		// page 0 is the LRU victim: must miss
		if s.Read(pr, 0, PageID{Space: 1, Page: 0}, false) {
			t.Error("evicted page still in cache")
		}
		// page 4 is recent: must hit
		if !s.Read(pr, 0, PageID{Space: 1, Page: 4}, false) {
			t.Error("recent page evicted")
		}
	})
	k.RunAll()
}

func TestCacheDisabled(t *testing.T) {
	k := sim.NewKernel()
	p := Defaults()
	p.CacheSize = 0
	s := New(k, "pe0", 1, p)
	k.Spawn("r", func(pr *sim.Proc) {
		pg := PageID{Space: 1, Page: 0}
		s.Read(pr, 0, pg, false)
		if s.Read(pr, 0, pg, false) {
			t.Error("cache hit with caching disabled")
		}
	})
	k.RunAll()
}

func TestDiskForStable(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 10)
	for space := int64(0); space < 100; space++ {
		a, b := s.DiskFor(space), s.DiskFor(space)
		if a != b {
			t.Fatalf("DiskFor(%d) unstable: %d vs %d", space, a, b)
		}
		if a < 0 || a >= 10 {
			t.Fatalf("DiskFor(%d) = %d out of range", space, a)
		}
	}
	if s.DiskFor(-3) < 0 {
		t.Error("DiskFor negative space out of range")
	}
}

func TestUtilizationWindow(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	k.Spawn("r", func(p *sim.Proc) {
		s.Read(p, 0, PageID{Space: 1, Page: 0}, false)
	})
	k.Run(sim.FromMillis(32)) // read busies the disk 16ms of 32ms => 50%
	u := s.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("disk utilization = %v, want ~0.5", u)
	}
}

func TestWriteAsyncDoesNotBlock(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var elapsed sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		s.WriteAsync(0, PageID{Space: 5, Page: 0})
		elapsed = p.Now() - start
	})
	k.RunAll()
	if elapsed != 0 {
		t.Errorf("WriteAsync blocked caller for %v", elapsed)
	}
	if s.Writes() != 1 {
		t.Errorf("async write not performed: writes=%d", s.Writes())
	}
}

func TestWriteRunTimingAndCaching(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	var took sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		s.WriteRun(p, 0, PageID{Space: 9, Page: 0}, 4)
		took = p.Now() - start
		// run pages are cached for the read-back
		for i := int64(0); i < 4; i++ {
			if !s.Read(p, 0, PageID{Space: 9, Page: i}, true) {
				t.Errorf("page %d of written run not cached", i)
			}
		}
	})
	k.RunAll()
	// ctrl 4ms + access (15+4)ms + transfer 1.6ms = 24.6ms
	if took != sim.FromMillis(24.6) {
		t.Errorf("4-page write run took %v, want 24.6ms", took)
	}
	if s.Writes() != 4 {
		t.Errorf("writes=%d, want 4", s.Writes())
	}
}

func TestWriteRunZeroPagesNoop(t *testing.T) {
	k := sim.NewKernel()
	s := newTestSub(k, 1)
	k.Spawn("w", func(p *sim.Proc) {
		s.WriteRun(p, 0, PageID{Space: 9, Page: 0}, 0)
	})
	if end := k.RunAll(); end != 0 {
		t.Errorf("zero-page run took %v", end)
	}
	if s.Writes() != 0 {
		t.Errorf("writes=%d", s.Writes())
	}
}

// Property: LRU never exceeds capacity and always contains the most
// recently touched page.
func TestQuickLRU(t *testing.T) {
	f := func(ops []uint8) bool {
		l := newLRU(8)
		var lastPut *PageID
		for _, op := range ops {
			id := PageID{Space: 1, Page: int64(op % 32)}
			l.put(id)
			lastPut = &id
			if l.len() > 8 {
				return false
			}
		}
		if lastPut != nil && !l.get(*lastPut) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
