package config

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"dynlb/internal/sim"
)

// ProfileKind selects the shape of a LoadProfile.
type ProfileKind int

// Profile kinds.
const (
	// ProfileConstant is the steady-state workload of the paper's main
	// experiments: arrival rates and skew never change. The zero value of
	// LoadProfile, and bit-identical to a config without a profile.
	ProfileConstant ProfileKind = iota
	// ProfileSquare is a square-wave burst: the arrival rate is multiplied
	// by Factor for the first Duty fraction of every Period, and unscaled
	// for the rest.
	ProfileSquare
	// ProfileDiurnal is a sinusoid: the arrival rate is multiplied by
	// 1 + Amp·sin(2πt/Period), the day/night load curve compressed to
	// simulation scale.
	ProfileDiurnal
	// ProfileDrift leaves arrival rates alone but drifts the redistribution
	// skew linearly: SkewSlope is added per simulated second from the
	// measurement start, so partitioning imbalance grows under the run.
	ProfileDrift
	// ProfileFlash is a flash crowd on a hot partition: inside the window
	// [Start, Start+Duration) the arrival rate is multiplied by Factor and
	// the redistribution skew is raised by HotSkew, concentrating the extra
	// load on the first join processes.
	ProfileFlash
)

func (k ProfileKind) String() string {
	switch k {
	case ProfileConstant:
		return "constant"
	case ProfileSquare:
		return "square"
	case ProfileDiurnal:
		return "diurnal"
	case ProfileDrift:
		return "drift"
	case ProfileFlash:
		return "flash"
	default:
		return fmt.Sprintf("ProfileKind(%d)", int(k))
	}
}

// maxProfileSkew caps the redistribution skew a profile can drive. The
// static RedistributionSkew is validated to [0, 2]; profiles may push past
// that (the point of a hot-partition event) but stay bounded so the
// 1/(i+1)^z shares cannot degenerate to a single processor numerically.
const maxProfileSkew = 4.0

// LoadProfile modulates the workload over simulated time: a rate multiplier
// applied to every open arrival stream (join, scan-class and OLTP
// arrivals), and a time-varying redistribution skew for the join
// partitioning. Profile time is measured from the end of the warm-up (the
// measurement start), so Start/Period phases line up with the metrics
// windows; the warm-up sits at negative profile time, where periodic
// profiles extend cyclically and event profiles (flash) have not begun.
//
// The modulation keeps the event stream deterministic per seed: each
// arrival still consumes exactly one exponential draw (thinning-free
// non-homogeneous Poisson via rate scaling), so a constant profile is
// bit-identical to a config without one, and two profiles differing only
// in shape parameters replay the same underlying random sequence.
//
// The zero value is the constant profile.
type LoadProfile struct {
	Kind ProfileKind `json:"kind"`

	Factor    float64      `json:"factor,omitempty"`     // Square, Flash: rate multiplier in the high phase (> 0)
	Period    sim.Duration `json:"period,omitempty"`     // Square, Diurnal: cycle length (> 0)
	Duty      float64      `json:"duty,omitempty"`       // Square: high-phase fraction of each period, in (0, 1)
	Amp       float64      `json:"amp,omitempty"`        // Diurnal: relative amplitude, in [0, 1)
	SkewSlope float64      `json:"skew_slope,omitempty"` // Drift: skew added per simulated second (>= 0)
	Start     sim.Duration `json:"start,omitempty"`      // Flash: window start, from measurement start (>= 0)
	Duration  sim.Duration `json:"duration,omitempty"`   // Flash: window length (> 0)
	HotSkew   float64      `json:"hot_skew,omitempty"`   // Flash: extra skew inside the window (>= 0)
}

// ConstantProfile returns the steady-state (identity) profile.
func ConstantProfile() LoadProfile { return LoadProfile{} }

// SquareWave returns a square-wave burst profile: rate × factor for the
// first duty fraction of every period.
func SquareWave(factor float64, period sim.Duration, duty float64) LoadProfile {
	return LoadProfile{Kind: ProfileSquare, Factor: factor, Period: period, Duty: duty}
}

// Diurnal returns a sinusoidal profile: rate × (1 + amp·sin(2πt/period)).
func Diurnal(amp float64, period sim.Duration) LoadProfile {
	return LoadProfile{Kind: ProfileDiurnal, Amp: amp, Period: period}
}

// SkewDrift returns a profile drifting the redistribution skew by slope per
// simulated second from the measurement start.
func SkewDrift(slope float64) LoadProfile {
	return LoadProfile{Kind: ProfileDrift, SkewSlope: slope}
}

// FlashCrowd returns a flash-crowd profile: inside [start, start+duration)
// the arrival rate is multiplied by factor and the redistribution skew is
// raised by hotSkew.
func FlashCrowd(start, duration sim.Duration, factor, hotSkew float64) LoadProfile {
	return LoadProfile{Kind: ProfileFlash, Start: start, Duration: duration, Factor: factor, HotSkew: hotSkew}
}

// IsConstant reports whether the profile is the identity (the engine keeps
// its unmodulated arrival path in that case).
func (lp LoadProfile) IsConstant() bool { return lp.Kind == ProfileConstant }

// Validate checks the profile parameters. Every validated profile keeps the
// rate multiplier strictly positive at all times, so interarrival draws
// never divide by zero.
func (lp LoadProfile) Validate() error {
	switch lp.Kind {
	case ProfileConstant:
		return nil
	case ProfileSquare:
		switch {
		case lp.Factor <= 0:
			return fmt.Errorf("config: square profile factor %v <= 0", lp.Factor)
		case lp.Period <= 0:
			return fmt.Errorf("config: square profile period %v <= 0", lp.Period)
		case lp.Duty <= 0 || lp.Duty >= 1:
			return fmt.Errorf("config: square profile duty %v outside (0,1)", lp.Duty)
		}
	case ProfileDiurnal:
		switch {
		case lp.Amp < 0 || lp.Amp >= 1:
			return fmt.Errorf("config: diurnal profile amplitude %v outside [0,1)", lp.Amp)
		case lp.Period <= 0:
			return fmt.Errorf("config: diurnal profile period %v <= 0", lp.Period)
		}
	case ProfileDrift:
		if lp.SkewSlope < 0 {
			return fmt.Errorf("config: drift profile skew slope %v < 0", lp.SkewSlope)
		}
	case ProfileFlash:
		switch {
		case lp.Factor <= 0:
			return fmt.Errorf("config: flash profile factor %v <= 0", lp.Factor)
		case lp.Start < 0:
			return fmt.Errorf("config: flash profile start %v < 0", lp.Start)
		case lp.Duration <= 0:
			return fmt.Errorf("config: flash profile duration %v <= 0", lp.Duration)
		case lp.HotSkew < 0:
			return fmt.Errorf("config: flash profile hot skew %v < 0", lp.HotSkew)
		}
	default:
		return fmt.Errorf("config: unknown profile kind %d", int(lp.Kind))
	}
	return nil
}

// RateMult returns the arrival-rate multiplier at profile time t (measured
// from the measurement start; negative during warm-up). Always > 0 for a
// validated profile.
func (lp LoadProfile) RateMult(t sim.Duration) float64 {
	switch lp.Kind {
	case ProfileSquare:
		if phaseOf(t, lp.Period) < lp.Duty {
			return lp.Factor
		}
		return 1
	case ProfileDiurnal:
		return 1 + lp.Amp*math.Sin(2*math.Pi*phaseOf(t, lp.Period))
	case ProfileFlash:
		if t >= lp.Start && t < lp.Start+lp.Duration {
			return lp.Factor
		}
		return 1
	default:
		return 1
	}
}

// SkewAt returns the redistribution skew at profile time t given the
// configured base skew, clamped to [0, maxProfileSkew].
func (lp LoadProfile) SkewAt(t sim.Duration, base float64) float64 {
	z := base
	switch lp.Kind {
	case ProfileDrift:
		if t > 0 {
			z += lp.SkewSlope * t.Seconds()
		}
	case ProfileFlash:
		if t >= lp.Start && t < lp.Start+lp.Duration {
			z += lp.HotSkew
		}
	}
	if z > maxProfileSkew {
		z = maxProfileSkew
	}
	if z < 0 {
		z = 0
	}
	return z
}

// phaseOf returns the cycle phase of t in [0, 1), extending cyclically for
// negative t (the warm-up side of the time axis).
func phaseOf(t, period sim.Duration) float64 {
	p := t % period
	if p < 0 {
		p += period
	}
	return float64(p) / float64(period)
}

// String renders the profile in the spec syntax ParseProfile accepts.
func (lp LoadProfile) String() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := func(v sim.Duration) string { return time.Duration(v).String() }
	switch lp.Kind {
	case ProfileConstant:
		return "constant"
	case ProfileSquare:
		return fmt.Sprintf("square:factor=%s,period=%s,duty=%s", f(lp.Factor), d(lp.Period), f(lp.Duty))
	case ProfileDiurnal:
		return fmt.Sprintf("diurnal:amp=%s,period=%s", f(lp.Amp), d(lp.Period))
	case ProfileDrift:
		return fmt.Sprintf("drift:slope=%s", f(lp.SkewSlope))
	case ProfileFlash:
		return fmt.Sprintf("flash:start=%s,dur=%s,factor=%s,skew=%s",
			d(lp.Start), d(lp.Duration), f(lp.Factor), f(lp.HotSkew))
	default:
		return lp.Kind.String()
	}
}

// ParseProfile parses a load-profile spec as the commands' -profile flags
// take it: a kind, optionally followed by ":" and comma-separated key=value
// parameters. Durations use Go syntax ("2s", "500ms"); omitted keys keep
// the kind's defaults.
//
//	constant
//	square:factor=4,period=2s,duty=0.5
//	diurnal:amp=0.6,period=10s
//	drift:slope=0.2
//	flash:start=2s,dur=3s,factor=4,skew=1.5
func ParseProfile(spec string) (LoadProfile, error) {
	kind, params, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kind = strings.TrimSpace(kind)
	var lp LoadProfile
	durs := map[string]*sim.Duration{}
	nums := map[string]*float64{}
	switch strings.ToLower(kind) {
	case "constant", "":
		lp = ConstantProfile()
	case "square":
		lp = SquareWave(4, 2*sim.Second, 0.5)
		nums["factor"], nums["duty"], durs["period"] = &lp.Factor, &lp.Duty, &lp.Period
	case "diurnal":
		lp = Diurnal(0.6, 10*sim.Second)
		nums["amp"], durs["period"] = &lp.Amp, &lp.Period
	case "drift":
		lp = SkewDrift(0.2)
		nums["slope"] = &lp.SkewSlope
	case "flash":
		lp = FlashCrowd(2*sim.Second, 3*sim.Second, 4, 1.5)
		nums["factor"], nums["skew"] = &lp.Factor, &lp.HotSkew
		durs["start"], durs["dur"] = &lp.Start, &lp.Duration
	default:
		return LoadProfile{}, fmt.Errorf("config: unknown profile kind %q (want constant, square, diurnal, drift or flash)", kind)
	}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch {
			case !ok, durs[key] == nil && nums[key] == nil:
				return LoadProfile{}, fmt.Errorf("config: profile %q: unknown parameter %q for kind %s", spec, kv, lp.Kind)
			case durs[key] != nil:
				d, err := time.ParseDuration(val)
				if err != nil {
					return LoadProfile{}, fmt.Errorf("config: profile %q: %s: %v", spec, key, err)
				}
				*durs[key] = sim.Duration(d)
			default:
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return LoadProfile{}, fmt.Errorf("config: profile %q: %s: %v", spec, key, err)
				}
				*nums[key] = v
			}
		}
	}
	if err := lp.Validate(); err != nil {
		return LoadProfile{}, err
	}
	return lp, nil
}
