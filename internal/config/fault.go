package config

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"dynlb/internal/sim"
)

// FaultKind selects what a Fault breaks.
type FaultKind int

// Fault kinds.
const (
	// FaultCrash takes a PE offline at At: work in flight on it aborts,
	// arrivals for it are refused, and the control node marks it
	// unavailable. After Down the PE recovers (Down = 0 keeps it down for
	// the rest of the run).
	FaultCrash FaultKind = iota
	// FaultSlowDisk degrades the PE's disk subsystem: every disk service
	// time is multiplied by Factor for For (For = 0: rest of the run).
	FaultSlowDisk
	// FaultStraggler stretches the PE's CPU: every compute cost is
	// multiplied by Factor for For (For = 0: rest of the run).
	FaultStraggler
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultSlowDisk:
		return "slowdisk"
	case FaultStraggler:
		return "straggler"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled failure event. Times are measured from the end of
// the warm-up (the measurement start), like LoadProfile time, so fault
// onsets line up with the metrics windows.
type Fault struct {
	Kind FaultKind    `json:"kind"`
	PE   int          `json:"pe"`
	At   sim.Duration `json:"at"`

	Down   sim.Duration `json:"down,omitempty"`   // Crash: downtime before recovery (0 = never recovers)
	For    sim.Duration `json:"for,omitempty"`    // SlowDisk, Straggler: degradation window (0 = rest of run)
	Factor float64      `json:"factor,omitempty"` // SlowDisk, Straggler: service-time multiplier (>= 1)
}

// Crash returns a crash fault: pe goes down at `at` and recovers after
// `down` (0 = never).
func Crash(pe int, at, down sim.Duration) Fault {
	return Fault{Kind: FaultCrash, PE: pe, At: at, Down: down}
}

// SlowDisk returns a disk-degradation fault: pe's disk service times are
// multiplied by factor during [at, at+for) (for = 0: rest of run).
func SlowDisk(pe int, at, dur sim.Duration, factor float64) Fault {
	return Fault{Kind: FaultSlowDisk, PE: pe, At: at, For: dur, Factor: factor}
}

// Straggler returns a CPU-degradation fault: pe's compute costs are
// multiplied by factor during [at, at+for) (for = 0: rest of run).
func Straggler(pe int, at, dur sim.Duration, factor float64) Fault {
	return Fault{Kind: FaultStraggler, PE: pe, At: at, For: dur, Factor: factor}
}

// Validate checks one fault against the configured PE count.
func (f Fault) Validate(npe int) error {
	if f.PE < 0 || f.PE >= npe {
		return fmt.Errorf("config: fault %s: pe %d outside [0,%d)", f.Kind, f.PE, npe)
	}
	if f.At < 0 {
		return fmt.Errorf("config: fault %s: at %v < 0", f.Kind, time.Duration(f.At))
	}
	switch f.Kind {
	case FaultCrash:
		if f.PE == 0 {
			// PE 0 hosts the control node; the paper's load-balancing
			// question assumes the scheduler itself survives.
			return fmt.Errorf("config: crash fault: pe 0 hosts the control node and cannot crash")
		}
		if f.Down < 0 {
			return fmt.Errorf("config: crash fault: down %v < 0", time.Duration(f.Down))
		}
	case FaultSlowDisk, FaultStraggler:
		if f.For < 0 {
			return fmt.Errorf("config: fault %s: for %v < 0", f.Kind, time.Duration(f.For))
		}
		if f.Factor < 1 {
			return fmt.Errorf("config: fault %s: factor %v < 1", f.Kind, f.Factor)
		}
	default:
		return fmt.Errorf("config: unknown fault kind %d", int(f.Kind))
	}
	return nil
}

// String renders the fault in the spec syntax ParseFault accepts.
func (f Fault) String() string {
	d := func(v sim.Duration) string { return time.Duration(v).String() }
	switch f.Kind {
	case FaultCrash:
		return fmt.Sprintf("crash(pe=%d,at=%s,down=%s)", f.PE, d(f.At), d(f.Down))
	case FaultSlowDisk:
		return fmt.Sprintf("slowdisk(pe=%d,at=%s,for=%s,factor=%s)",
			f.PE, d(f.At), d(f.For), strconv.FormatFloat(f.Factor, 'g', -1, 64))
	case FaultStraggler:
		return fmt.Sprintf("straggler(pe=%d,at=%s,for=%s,factor=%s)",
			f.PE, d(f.At), d(f.For), strconv.FormatFloat(f.Factor, 'g', -1, 64))
	default:
		return f.Kind.String()
	}
}

// FaultPlan is the ordered set of failures injected into one run. The zero
// value (no faults) is the fault-free fast path: the engine takes exactly
// the original code path, bit-identical to a config without a plan.
type FaultPlan struct {
	Faults []Fault `json:"faults,omitempty"`
}

// IsEmpty reports whether the plan injects nothing.
func (p FaultPlan) IsEmpty() bool { return len(p.Faults) == 0 }

// Validate checks every fault against the configured PE count.
func (p FaultPlan) Validate(npe int) error {
	for _, f := range p.Faults {
		if err := f.Validate(npe); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plan in the spec syntax ParseFaults accepts:
// semicolon-separated fault specs, "" for the empty plan.
func (p FaultPlan) String() string {
	specs := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		specs[i] = f.String()
	}
	return strings.Join(specs, ";")
}

// ParseFault parses one fault spec as the commands' -faults flags take it:
// a kind with optional parenthesized comma-separated key=value parameters.
// Durations use Go syntax ("20s", "500ms"); omitted keys keep the kind's
// defaults.
//
//	crash(pe=3,at=20s,down=10s)
//	slowdisk(pe=2,at=15s,for=20s,factor=4)
//	straggler(pe=1,at=10s,factor=2)
func ParseFault(spec string) (Fault, error) {
	s := strings.TrimSpace(spec)
	kind := s
	params := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Fault{}, fmt.Errorf("config: fault %q: missing closing parenthesis", spec)
		}
		kind, params = s[:i], s[i+1:len(s)-1]
	}
	var f Fault
	ints := map[string]*int{}
	durs := map[string]*sim.Duration{}
	nums := map[string]*float64{}
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "crash":
		f = Crash(1, 20*sim.Second, 10*sim.Second)
		ints["pe"], durs["at"], durs["down"] = &f.PE, &f.At, &f.Down
	case "slowdisk":
		f = SlowDisk(1, 15*sim.Second, 20*sim.Second, 4)
		ints["pe"], durs["at"], durs["for"], nums["factor"] = &f.PE, &f.At, &f.For, &f.Factor
	case "straggler":
		f = Straggler(1, 10*sim.Second, 0, 2)
		ints["pe"], durs["at"], durs["for"], nums["factor"] = &f.PE, &f.At, &f.For, &f.Factor
	default:
		return Fault{}, fmt.Errorf("config: unknown fault kind %q (want crash, slowdisk or straggler)", kind)
	}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			switch {
			case !ok, ints[key] == nil && durs[key] == nil && nums[key] == nil:
				return Fault{}, fmt.Errorf("config: fault %q: unknown parameter %q for kind %s", spec, kv, f.Kind)
			case ints[key] != nil:
				n, err := strconv.Atoi(val)
				if err != nil {
					return Fault{}, fmt.Errorf("config: fault %q: %s: %v", spec, key, err)
				}
				*ints[key] = n
			case durs[key] != nil:
				d, err := time.ParseDuration(val)
				if err != nil {
					return Fault{}, fmt.Errorf("config: fault %q: %s: %v", spec, key, err)
				}
				*durs[key] = sim.Duration(d)
			default:
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return Fault{}, fmt.Errorf("config: fault %q: %s: %v", spec, key, err)
				}
				*nums[key] = v
			}
		}
	}
	return f, nil
}

// ParseFaults parses a fault plan: semicolon-separated fault specs ("" or
// "none" is the empty plan). Each spec is validated syntactically here;
// PE ranges are checked by Config.Validate, which knows NPE.
//
//	crash(pe=3,at=20s,down=10s);straggler(pe=1,at=10s,factor=2)
func ParseFaults(spec string) (FaultPlan, error) {
	s := strings.TrimSpace(spec)
	if s == "" || strings.EqualFold(s, "none") {
		return FaultPlan{}, nil
	}
	var p FaultPlan
	for _, one := range strings.Split(s, ";") {
		if strings.TrimSpace(one) == "" {
			continue
		}
		f, err := ParseFault(one)
		if err != nil {
			return FaultPlan{}, err
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}
