// Package config holds the simulation parameter sets of Rahm & Marek
// (VLDB '95), Fig. 4: system configuration, CPU cost table, database and
// query profile, and workload rates. All packages derive their timing from
// these shared values, so the analytic cost model (internal/costmodel) and
// the simulator (internal/engine) account costs identically.
package config

import (
	"fmt"

	"dynlb/internal/disk"
	"dynlb/internal/netw"
	"dynlb/internal/sim"
)

// CPUCosts is the instruction-count table of Fig. 4.
type CPUCosts struct {
	InitTxn    int64 // initiate a query/transaction (BOT)
	TermTxn    int64 // terminate a query/transaction (commit processing)
	IO         int64 // CPU overhead per I/O operation
	SendMsg    int64 // send a message
	RecvMsg    int64 // receive a message
	Copy8KB    int64 // copy an 8 KB message buffer
	ReadTuple  int64 // read a tuple from a memory page
	HashTuple  int64 // hash a tuple
	InsertHash int64 // insert a tuple into a hash table
	WriteTuple int64 // write a tuple into an output buffer
	ProbeHash  int64 // probe a hash table
}

// DefaultCosts returns the paper's instruction counts.
func DefaultCosts() CPUCosts {
	return CPUCosts{
		InitTxn:    25000,
		TermTxn:    25000,
		IO:         3000,
		SendMsg:    5000,
		RecvMsg:    10000,
		Copy8KB:    5000,
		ReadTuple:  500,
		HashTuple:  500,
		InsertHash: 100,
		WriteTuple: 100,
		ProbeHash:  200,
	}
}

// OLTPPlacement selects which PEs run the OLTP workload in heterogeneous
// experiments (Section 5.3).
type OLTPPlacement int

// Placements.
const (
	OLTPNone    OLTPPlacement = iota
	OLTPOnANode               // the 20% of PEs holding relation A fragments
	OLTPOnBNode               // the 80% of PEs holding relation B fragments
	OLTPOnAll
)

func (p OLTPPlacement) String() string {
	switch p {
	case OLTPNone:
		return "none"
	case OLTPOnANode:
		return "a-nodes"
	case OLTPOnBNode:
		return "b-nodes"
	case OLTPOnAll:
		return "all"
	default:
		return fmt.Sprintf("OLTPPlacement(%d)", int(p))
	}
}

// OLTP configures the debit-credit-like transaction type: four non-clustered
// index selects on per-node account relations with updates of the
// corresponding tuples, affinity-routed to their home node.
type OLTP struct {
	Placement     OLTPPlacement
	TPSPerNode    float64 // arrival rate per OLTP node
	AccessesPerTx int     // tuple accesses (4)
	AccountPages  int64   // per-node account relation size in pages
	HotSetPages   int64   // hot portion kept memory-resident
	HotAccessProb float64 // probability an access hits the hot set
	ExtraInstr    int64   // per-access path length beyond the cost table
}

// DefaultOLTP returns a TPC-B-like profile calibrated so that 100 TPS per
// node yields roughly the paper's 50% CPU / 60% disk / 45% memory
// utilization on OLTP nodes (see EXPERIMENTS.md for the measured values).
func DefaultOLTP() OLTP {
	return OLTP{
		Placement:     OLTPNone,
		TPSPerNode:    100,
		AccessesPerTx: 4,
		AccountPages:  20_000,
		HotSetPages:   30,
		HotAccessProb: 0.85,
		ExtraInstr:    10_000,
	}
}

// ScanClass is an additional standalone query class of the multi-class
// workload model (Section 4 lists relation scans and clustered and
// non-clustered index scans next to join queries). Each class is an open
// arrival stream of single-relation selection queries executed in parallel
// on the relation's home PEs, merging at a random coordinator.
type ScanClass struct {
	Name        string
	QPSPerPE    float64
	OnB         bool    // scan relation B (default: relation A)
	Selectivity float64 // fraction of tuples selected
	// Access path: Clustered reads the matching pages sequentially;
	// otherwise a non-clustered index is used (one random page access per
	// matching tuple, through the buffer). A selectivity of 1 with
	// Clustered models a full relation scan.
	Clustered bool
}

// Config is the complete parameter set of one simulation run.
type Config struct {
	// System configuration.
	NPE         int     // number of processing elements (10..80)
	CPUsPerPE   int     // CPU servers per PE
	MIPS        float64 // capacity per CPU in MIPS
	BufferPages int     // main-memory buffer per PE (50 pages = 0.4 MB)
	PageBytes   int     // page size (8 KB)
	DisksPerPE  int     // database/temp disks per PE
	Disk        disk.Params
	Net         netw.Params
	MPL         int // max concurrent transactions per PE

	Costs CPUCosts

	// Database profile.
	ATuples     int64   // inner relation A (250,000)
	BTuples     int64   // outer relation B (1,000,000)
	TupleBytes  int     // 400 B
	Blocking    int     // tuples per page (20)
	IndexFanout int     // B+-tree fanout
	AFraction   float64 // fraction of PEs holding A (0.2); B gets the rest

	// Join query profile.
	ScanSelectivity float64 // fraction of tuples matching the scan predicates
	FudgeFactor     float64 // hash table overhead F (1.05)
	ResultFraction  float64 // result size relative to inner scan output (1.0)
	JoinQPSPerPE    float64 // multi-user arrival rate per PE (0 = single-user)
	// RedistributionSkew models skew in the join attribute's hash
	// partitioning (the paper's Section 7 outlook): join process i receives
	// a share proportional to 1/(i+1)^skew. 0 = uniform (the paper's main
	// experiments assume "no or only little redistribution skew").
	RedistributionSkew float64

	OLTP OLTP

	// ScanClasses are additional standalone scan query streams.
	ScanClasses []ScanClass

	// Control node behaviour (Section 3).
	// MemAdmitFrac > 0 enables query-atomic memory admission: the control
	// node hands out at most this fraction of aggregate buffer memory to
	// concurrent joins before queueing new ones. Off by default — the
	// paper's per-node FCFS memory queue (with the buffer manager's
	// liveness breaker) is the primary mechanism; this exists for the
	// admission ablation.
	MemAdmitFrac   float64
	ReportInterval sim.Duration // PE utilization reporting period
	CtrlSmoothing  float64      // EWMA weight of the newest CPU report
	AdaptiveBump   bool         // LUC/LUM adaptive info adjustment

	// Profile modulates arrival rates and redistribution skew over
	// simulated time (see LoadProfile). The zero value is the constant
	// profile — bit-identical to the steady-state behaviour.
	Profile LoadProfile

	// MetricsWindow > 0 slices the measurement interval into fixed-width
	// windows, each reporting response-time mean/p95, throughput and
	// CPU/disk/memory utilization (engine.Results.Windows), plus derived
	// transient metrics (peak-window RT, recovery time). 0 disables
	// windowed collection; steady-state results are unchanged either way.
	MetricsWindow sim.Duration

	// Faults injects PE crashes and disk/CPU degradations at scheduled
	// simulated times (see FaultPlan). The zero value injects nothing and
	// is bit-identical to a config without a plan.
	Faults FaultPlan

	// Simulation horizon.
	Seed        int64
	Warmup      sim.Duration
	MeasureTime sim.Duration
}

// Default returns the paper's Fig. 4 settings with a 1% scan selectivity,
// 80 PEs and multi-user join arrivals disabled.
func Default() Config {
	return Config{
		NPE:         80,
		CPUsPerPE:   1,
		MIPS:        20,
		BufferPages: 50,
		PageBytes:   8 * 1024,
		DisksPerPE:  10,
		Disk:        disk.Defaults(),
		Net:         netw.Defaults(),
		MPL:         8,

		Costs: DefaultCosts(),

		ATuples:     250_000,
		BTuples:     1_000_000,
		TupleBytes:  400,
		Blocking:    20,
		IndexFanout: 200,
		AFraction:   0.2,

		ScanSelectivity: 0.01,
		FudgeFactor:     1.05,
		ResultFraction:  1.0,
		JoinQPSPerPE:    0,

		OLTP: DefaultOLTP(),

		MemAdmitFrac:   0.9,
		ReportInterval: 500 * sim.Millisecond,
		CtrlSmoothing:  0.5,
		AdaptiveBump:   true,

		Seed:        1,
		Warmup:      5 * sim.Second,
		MeasureTime: 60 * sim.Second,
	}
}

// Validate checks the configuration for structural errors.
func (c *Config) Validate() error {
	switch {
	case c.NPE < 2:
		return fmt.Errorf("config: NPE %d < 2", c.NPE)
	case c.CPUsPerPE < 1:
		return fmt.Errorf("config: CPUsPerPE %d < 1", c.CPUsPerPE)
	case c.MIPS <= 0:
		return fmt.Errorf("config: MIPS %v <= 0", c.MIPS)
	case c.BufferPages < 2:
		return fmt.Errorf("config: BufferPages %d < 2", c.BufferPages)
	case c.DisksPerPE < 1:
		return fmt.Errorf("config: DisksPerPE %d < 1", c.DisksPerPE)
	case c.MPL < 1:
		return fmt.Errorf("config: MPL %d < 1", c.MPL)
	case c.ATuples <= 0 || c.BTuples <= 0:
		return fmt.Errorf("config: relation sizes %d/%d", c.ATuples, c.BTuples)
	case c.Blocking < 1:
		return fmt.Errorf("config: blocking factor %d", c.Blocking)
	case c.ScanSelectivity < 0 || c.ScanSelectivity > 1:
		return fmt.Errorf("config: scan selectivity %v outside [0,1]", c.ScanSelectivity)
	case c.FudgeFactor < 1:
		return fmt.Errorf("config: fudge factor %v < 1", c.FudgeFactor)
	case c.AFraction <= 0 || c.AFraction >= 1:
		return fmt.Errorf("config: A fraction %v outside (0,1)", c.AFraction)
	case c.RedistributionSkew < 0 || c.RedistributionSkew > 2:
		return fmt.Errorf("config: redistribution skew %v outside [0,2]", c.RedistributionSkew)
	case c.MeasureTime <= 0:
		return fmt.Errorf("config: measure time %v <= 0", c.MeasureTime)
	case c.MetricsWindow < 0:
		return fmt.Errorf("config: metrics window %v < 0", c.MetricsWindow)
	case c.MetricsWindow > 0 && c.MetricsWindow < sim.Millisecond:
		// A sub-millisecond window would produce millions of near-empty
		// windows per run; treat it as a unit confusion, not a request.
		return fmt.Errorf("config: metrics window %v < 1ms", c.MetricsWindow)
	}
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.NPE); err != nil {
		return err
	}
	for i, sc := range c.ScanClasses {
		if sc.QPSPerPE <= 0 || sc.Selectivity <= 0 || sc.Selectivity > 1 {
			return fmt.Errorf("config: scan class %d (%s) invalid: %+v", i, sc.Name, sc)
		}
	}
	if c.OLTP.Placement != OLTPNone {
		o := c.OLTP
		if o.TPSPerNode <= 0 || o.AccessesPerTx < 1 || o.AccountPages < 1 {
			return fmt.Errorf("config: OLTP profile %+v invalid", o)
		}
		if o.HotAccessProb < 0 || o.HotAccessProb > 1 {
			return fmt.Errorf("config: OLTP hot access probability %v", o.HotAccessProb)
		}
	}
	return nil
}

// CPUTime converts an instruction count to simulated time at MIPS speed.
func (c *Config) CPUTime(instr int64) sim.Duration {
	if instr <= 0 {
		return 0
	}
	return sim.Duration(float64(instr) * 1000.0 / c.MIPS) // ns per instruction = 1000/MIPS
}

// NANodes returns the number of PEs holding A fragments (at least 1).
func (c *Config) NANodes() int {
	n := int(float64(c.NPE)*c.AFraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n >= c.NPE {
		n = c.NPE - 1
	}
	return n
}

// NBNodes returns the number of PEs holding B fragments.
func (c *Config) NBNodes() int { return c.NPE - c.NANodes() }

// ANodes returns the PE ids of the A data nodes (the first NANodes PEs).
func (c *Config) ANodes() []int {
	out := make([]int, c.NANodes())
	for i := range out {
		out[i] = i
	}
	return out
}

// BNodes returns the PE ids of the B data nodes.
func (c *Config) BNodes() []int {
	na := c.NANodes()
	out := make([]int, c.NPE-na)
	for i := range out {
		out[i] = na + i
	}
	return out
}

// TuplesPerPacket returns how many tuples fit one network packet.
func (c *Config) TuplesPerPacket() int64 {
	n := int64(c.Net.PacketBytes / c.TupleBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// AScanTuples returns the join's inner input size |sel(A)| in tuples.
func (c *Config) AScanTuples() int64 {
	return selTuples(c.ATuples, c.ScanSelectivity)
}

// BScanTuples returns the join's outer input size |sel(B)| in tuples.
func (c *Config) BScanTuples() int64 {
	return selTuples(c.BTuples, c.ScanSelectivity)
}

// AScanPages returns the pages of the inner join input b_i.
func (c *Config) AScanPages() int64 {
	return pagesFor(c.AScanTuples(), c.Blocking)
}

func selTuples(n int64, sel float64) int64 {
	if sel <= 0 {
		return 0
	}
	if sel >= 1 {
		return n
	}
	t := int64(float64(n)*sel + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

func pagesFor(tuples int64, blocking int) int64 {
	if tuples <= 0 {
		return 0
	}
	return (tuples + int64(blocking) - 1) / int64(blocking)
}
