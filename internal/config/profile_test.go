package config

import (
	"math"
	"strings"
	"testing"

	"dynlb/internal/sim"
)

func TestProfileRateMult(t *testing.T) {
	sq := SquareWave(4, 2*sim.Second, 0.5)
	cases := []struct {
		name string
		p    LoadProfile
		t    sim.Duration
		want float64
	}{
		{"constant", ConstantProfile(), 5 * sim.Second, 1},
		{"square high phase", sq, 0, 4},
		{"square just inside duty", sq, sim.Second - 1, 4},
		{"square low phase", sq, sim.Second, 1},
		{"square wraps next period", sq, 2 * sim.Second, 4},
		{"square cyclic during warmup", sq, -sim.Second - 1, 4},
		{"drift leaves rate alone", SkewDrift(0.5), 10 * sim.Second, 1},
		{"flash before window", FlashCrowd(2*sim.Second, 3*sim.Second, 4, 1), sim.Second, 1},
		{"flash inside window", FlashCrowd(2*sim.Second, 3*sim.Second, 4, 1), 2 * sim.Second, 4},
		{"flash window end exclusive", FlashCrowd(2*sim.Second, 3*sim.Second, 4, 1), 5 * sim.Second, 1},
		{"flash not during warmup", FlashCrowd(0, 3*sim.Second, 4, 1), -sim.Second, 1},
	}
	for _, c := range cases {
		if got := c.p.RateMult(c.t); got != c.want {
			t.Errorf("%s: RateMult(%v) = %v, want %v", c.name, c.t, got, c.want)
		}
	}

	// Diurnal: quarter period is the sine peak, three quarters the trough.
	di := Diurnal(0.6, 8*sim.Second)
	if got := di.RateMult(2 * sim.Second); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("diurnal peak: RateMult = %v, want 1.6", got)
	}
	if got := di.RateMult(6 * sim.Second); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("diurnal trough: RateMult = %v, want 0.4", got)
	}
	// A validated diurnal profile never reaches rate 0 (Amp < 1).
	for ts := -16 * sim.Second; ts <= 16*sim.Second; ts += 100 * sim.Millisecond {
		if m := di.RateMult(ts); m <= 0 {
			t.Fatalf("diurnal RateMult(%v) = %v <= 0", ts, m)
		}
	}
}

func TestProfileSkewAt(t *testing.T) {
	dr := SkewDrift(0.5)
	if got := dr.SkewAt(-sim.Second, 1); got != 1 {
		t.Errorf("drift during warmup: SkewAt = %v, want base 1", got)
	}
	if got := dr.SkewAt(4*sim.Second, 1); got != 3 {
		t.Errorf("drift at 4s: SkewAt = %v, want 3", got)
	}
	if got := dr.SkewAt(100*sim.Second, 1); got != maxProfileSkew {
		t.Errorf("drift clamp: SkewAt = %v, want %v", got, maxProfileSkew)
	}

	fl := FlashCrowd(2*sim.Second, 3*sim.Second, 4, 1.5)
	if got := fl.SkewAt(sim.Second, 0.5); got != 0.5 {
		t.Errorf("flash before window: SkewAt = %v, want 0.5", got)
	}
	if got := fl.SkewAt(3*sim.Second, 0.5); got != 2 {
		t.Errorf("flash inside window: SkewAt = %v, want 2", got)
	}

	if got := ConstantProfile().SkewAt(10*sim.Second, 1.25); got != 1.25 {
		t.Errorf("constant: SkewAt = %v, want 1.25", got)
	}
}

func TestProfileValidate(t *testing.T) {
	valid := []LoadProfile{
		ConstantProfile(),
		SquareWave(4, 2*sim.Second, 0.5),
		Diurnal(0, 10*sim.Second),
		SkewDrift(0),
		FlashCrowd(0, sim.Second, 2, 0),
	}
	for _, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: unexpected Validate error: %v", p, err)
		}
	}
	invalid := []LoadProfile{
		SquareWave(0, 2*sim.Second, 0.5),
		SquareWave(4, 0, 0.5),
		SquareWave(4, 2*sim.Second, 1),
		Diurnal(1, 10*sim.Second),
		Diurnal(-0.1, 10*sim.Second),
		Diurnal(0.5, 0),
		SkewDrift(-1),
		FlashCrowd(-sim.Second, sim.Second, 2, 0),
		FlashCrowd(0, 0, 2, 0),
		FlashCrowd(0, sim.Second, 0, 0),
		FlashCrowd(0, sim.Second, 2, -1),
		{Kind: ProfileKind(99)},
	}
	for _, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v: Validate accepted an invalid profile", p)
		}
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	specs := []string{
		"constant",
		"square:factor=4,period=2s,duty=0.5",
		"diurnal:amp=0.6,period=10s",
		"drift:slope=0.2",
		"flash:start=2s,dur=3s,factor=4,skew=1.5",
	}
	for _, spec := range specs {
		p, err := ParseProfile(spec)
		if err != nil {
			t.Fatalf("ParseProfile(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseProfile(%q).String() = %q", spec, got)
		}
		again, err := ParseProfile(p.String())
		if err != nil || again != p {
			t.Errorf("round trip of %q: %+v, %v", spec, again, err)
		}
	}
}

func TestParseProfileDefaultsAndErrors(t *testing.T) {
	// Omitted keys keep the kind's defaults; given keys override.
	p, err := ParseProfile("square:factor=8")
	if err != nil {
		t.Fatal(err)
	}
	if p.Factor != 8 || p.Period != 2*sim.Second || p.Duty != 0.5 {
		t.Errorf("square defaults: %+v", p)
	}
	if p, err = ParseProfile("flash"); err != nil || p.Kind != ProfileFlash {
		t.Errorf("bare kind: %+v, %v", p, err)
	}
	if p, err = ParseProfile(" square : factor=2 , duty=0.25 "); err != nil || p.Factor != 2 || p.Duty != 0.25 {
		t.Errorf("spaced spec: %+v, %v", p, err)
	}

	bad := map[string]string{
		"wave":                 "unknown profile kind",
		"square:speed=3":       "unknown parameter",
		"square:factor":        "unknown parameter", // no "=" value
		"square:period=fast":   "period",
		"square:duty=two":      "duty",
		"square:factor=0":      "<= 0", // parses, fails validation
		"flash:dur=0s":         "<= 0",
		"diurnal:amp=1.5":      "outside [0,1)",
		"drift:slope=-1":       "< 0",
		"constant:factor=2":    "unknown parameter", // constant takes none
		"square:period=-2s":    "<= 0",
		"flash:start=-1s":      "< 0",
		"square:duty=0.5,p=2s": "unknown parameter",
	}
	for spec, frag := range bad {
		if _, err := ParseProfile(spec); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseProfile(%q): err = %v, want substring %q", spec, err, frag)
		}
	}
}
