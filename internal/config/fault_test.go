package config

import (
	"strings"
	"testing"

	"dynlb/internal/sim"
)

func TestFaultValidate(t *testing.T) {
	valid := []Fault{
		Crash(1, 20*sim.Second, 10*sim.Second),
		Crash(9, 0, 0), // at 0, never recovers
		SlowDisk(2, 15*sim.Second, 20*sim.Second, 4),
		SlowDisk(0, 0, 0, 1), // PE 0 may degrade, just not crash
		Straggler(1, 10*sim.Second, 0, 2),
	}
	for _, f := range valid {
		if err := f.Validate(10); err != nil {
			t.Errorf("%s: unexpected Validate error: %v", f, err)
		}
	}
	invalid := []Fault{
		Crash(0, 20*sim.Second, 0),  // control node
		Crash(10, 20*sim.Second, 0), // out of range
		Crash(-1, 20*sim.Second, 0),
		Crash(1, -sim.Second, 0),
		Crash(1, sim.Second, -sim.Second),
		SlowDisk(2, sim.Second, -sim.Second, 4),
		SlowDisk(2, sim.Second, sim.Second, 0.5), // factor < 1
		Straggler(1, sim.Second, 0, 0),
		{Kind: FaultKind(99), PE: 1},
	}
	for _, f := range invalid {
		if err := f.Validate(10); err == nil {
			t.Errorf("%+v: Validate accepted an invalid fault", f)
		}
	}

	// The plan validates element-wise; the zero plan always passes.
	if err := (FaultPlan{}).Validate(1); err != nil {
		t.Errorf("empty plan: %v", err)
	}
	p := FaultPlan{Faults: []Fault{Crash(1, 0, 0), Crash(0, 0, 0)}}
	if err := p.Validate(10); err == nil {
		t.Error("plan with a control-node crash validated")
	}
}

func TestParseFaultRoundTrip(t *testing.T) {
	specs := []string{
		"crash(pe=3,at=20s,down=10s)",
		"crash(pe=7,at=1m40s,down=0s)",
		"slowdisk(pe=2,at=15s,for=20s,factor=4)",
		"slowdisk(pe=1,at=500ms,for=0s,factor=1.5)",
		"straggler(pe=1,at=10s,for=0s,factor=2)",
	}
	for _, spec := range specs {
		f, err := ParseFault(spec)
		if err != nil {
			t.Fatalf("ParseFault(%q): %v", spec, err)
		}
		if got := f.String(); got != spec {
			t.Errorf("ParseFault(%q).String() = %q", spec, got)
		}
		again, err := ParseFault(f.String())
		if err != nil || again != f {
			t.Errorf("round trip of %q: %+v, %v", spec, again, err)
		}
	}
}

func TestParseFaultDefaultsAndErrors(t *testing.T) {
	// Omitted keys keep the kind's defaults; given keys override.
	f, err := ParseFault("crash(pe=5)")
	if err != nil {
		t.Fatal(err)
	}
	if f.PE != 5 || f.At != 20*sim.Second || f.Down != 10*sim.Second {
		t.Errorf("crash defaults: %+v", f)
	}
	if f, err = ParseFault("straggler"); err != nil || f.Kind != FaultStraggler || f.Factor != 2 {
		t.Errorf("bare kind: %+v, %v", f, err)
	}
	if f, err = ParseFault(" SlowDisk( pe=2 , factor=8 ) "); err != nil || f.PE != 2 || f.Factor != 8 {
		t.Errorf("spaced spec: %+v, %v", f, err)
	}

	bad := map[string]string{
		"meteor":                 "unknown fault kind",
		"crash(pe=3":             "missing closing parenthesis",
		"crash(speed=3)":         "unknown parameter",
		"crash(pe)":              "unknown parameter", // no "=" value
		"crash(pe=two)":          "pe",
		"crash(at=fast)":         "at",
		"slowdisk(factor=huge)":  "factor",
		"crash(factor=2)":        "unknown parameter", // crash takes no factor
		"straggler(down=5s)":     "unknown parameter", // down is crash-only
		"crash(pe=3,at=1s,x=2)":  "unknown parameter",
		"crash(pe=3)(pe=4)":      "pe", // second group lands inside the params
		"slowdisk(for=1s,pe=1))": "pe", // stray paren corrupts the pe value
	}
	for spec, frag := range bad {
		if _, err := ParseFault(spec); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("ParseFault(%q): err = %v, want substring %q", spec, err, frag)
		}
	}
}

func TestParseFaultsPlan(t *testing.T) {
	for _, spec := range []string{"", "  ", "none", "None"} {
		p, err := ParseFaults(spec)
		if err != nil || !p.IsEmpty() {
			t.Errorf("ParseFaults(%q) = %+v, %v; want empty plan", spec, p, err)
		}
		if p.String() != "" {
			t.Errorf("empty plan String() = %q", p.String())
		}
	}

	spec := "crash(pe=3,at=20s,down=10s);straggler(pe=1,at=10s,for=0s,factor=2)"
	p, err := ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 2 || p.Faults[0].Kind != FaultCrash || p.Faults[1].Kind != FaultStraggler {
		t.Fatalf("plan %+v", p)
	}
	if got := p.String(); got != spec {
		t.Errorf("plan String() = %q, want %q", got, spec)
	}
	// Stray separators are tolerated; a bad element fails the whole plan.
	if p, err = ParseFaults("; crash(pe=2) ;"); err != nil || len(p.Faults) != 1 {
		t.Errorf("stray separators: %+v, %v", p, err)
	}
	if _, err = ParseFaults("crash(pe=2);meteor"); err == nil {
		t.Error("plan with an unknown kind parsed")
	}
}

// FuzzParseFault checks the parser never panics and that every accepted
// fault round-trips exactly through its String form — the property the
// result cache and CSV fault columns rely on.
func FuzzParseFault(f *testing.F) {
	for _, seed := range []string{
		"crash(pe=3,at=20s,down=10s)",
		"slowdisk(pe=2,at=15s,for=20s,factor=4)",
		"straggler(pe=1,at=10s,factor=2)",
		"crash", "none", "", "crash(", "crash()", "crash(pe=)",
		"CRASH(PE=1)", " slowdisk ( factor = 1.5 ) ",
		"crash(pe=3,at=20s,down=10s);straggler(pe=1)",
		"crash(pe=-1,at=-5s)", "slowdisk(factor=1e308)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		flt, err := ParseFault(spec)
		if err != nil {
			return
		}
		again, err := ParseFault(flt.String())
		if err != nil {
			t.Fatalf("ParseFault(%q) ok but its String %q does not re-parse: %v", spec, flt.String(), err)
		}
		if again != flt {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, flt)
		}
	})
}

// FuzzParseProfile is the same no-panic/round-trip property for the load
// profile parser.
func FuzzParseProfile(f *testing.F) {
	for _, seed := range []string{
		"constant",
		"square:factor=4,period=2s,duty=0.5",
		"diurnal:amp=0.6,period=10s",
		"drift:slope=0.2",
		"flash:start=2s,dur=3s,factor=4,skew=1.5",
		"square", "", "none", "square:", "square:factor=",
		" FLASH : factor = 2 ", "square:duty=1", "diurnal:amp=1",
		"flash:start=-1s", "square:period=1e9s",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseProfile(spec)
		if err != nil {
			return
		}
		again, err := ParseProfile(p.String())
		if err != nil {
			t.Fatalf("ParseProfile(%q) ok but its String %q does not re-parse: %v", spec, p.String(), err)
		}
		if again != p {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, p)
		}
	})
}
