module dynlb

go 1.24
