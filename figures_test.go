package dynlb

import (
	"reflect"
	"testing"
)

// TestRunFigureParallelMatchesSequential: a figure sweep must produce
// bit-identical rows (values, order, and per-run Results) whether its
// points run sequentially or on a worker pool. Every point simulates on an
// independent kernel and RNG, so the worker count must be invisible in the
// output.
func TestRunFigureParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	seq, err := RunFigureParallel("1c", ScaleQuick, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureParallel("1c", ScaleQuick, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("row %d differs between -parallel 1 and -parallel 8:\nseq: %+v\npar: %+v",
				i, seq[i], par[i])
		}
	}
}

// TestRunFigureParallelUnknownFigure: the parallel entry point reports
// unknown figures like the sequential one.
func TestRunFigureParallelUnknownFigure(t *testing.T) {
	if _, err := RunFigureParallel("nope", ScaleQuick, 1, 4); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}
