package dynlb

import (
	"reflect"
	"testing"
)

// TestRunFigureParallelMatchesSequential: a figure sweep must produce
// bit-identical rows (values, order, and per-run Results) whether its
// points run sequentially or on a worker pool. Every point simulates on an
// independent kernel and RNG, so the worker count must be invisible in the
// output.
func TestRunFigureParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	seq, err := RunFigureParallel("1c", ScaleQuick, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFigureParallel("1c", ScaleQuick, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Fatalf("row %d differs between -parallel 1 and -parallel 8:\nseq: %+v\npar: %+v",
				i, seq[i], par[i])
		}
	}
}

// TestRunFigureParallelUnknownFigure: the parallel entry point reports
// unknown figures like the sequential one.
func TestRunFigureParallelUnknownFigure(t *testing.T) {
	if _, err := RunFigureParallel("nope", ScaleQuick, 1, 4); err == nil {
		t.Fatal("expected error for unknown figure")
	}
	if _, err := RunFigureReplicated("nope", ScaleQuick, 1, 2, 4); err == nil {
		t.Fatal("expected error for unknown figure (replicated)")
	}
	if _, err := RunFigureReplicatedConf("1c", ScaleQuick, 1, 2, 2.0, 4); err == nil {
		t.Fatal("expected error for confidence outside (0,1)")
	}
	// Invalid confidence must be rejected even when reps=1 short-circuits
	// into the unreplicated path.
	if _, err := RunFigureReplicatedConf("1c", ScaleQuick, 1, 1, 2.0, 4); err == nil {
		t.Fatal("expected error for confidence outside (0,1) at reps=1")
	}
}

// TestRunFigureReplicatedMatchesSequential mirrors the parallel-vs-
// sequential test for the replication layer: a replicated sweep is a pure
// function of (fig, scale, seed, reps), so rows — means, half-widths, and
// the replicate-aggregated Results — must be bit-identical whether the
// point x replicate jobs run sequentially, on a small pool, or on NumCPU
// workers.
func TestRunFigureReplicatedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	const reps = 2
	seq, err := RunFigureReplicated("1c", ScaleQuick, 3, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 0 /* NumCPU */} {
		par, err := RunFigureReplicated("1c", ScaleQuick, 3, reps, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(par) {
			t.Fatalf("row counts differ: sequential %d, workers=%d %d", len(seq), workers, len(par))
		}
		for i := range seq {
			if !reflect.DeepEqual(seq[i], par[i]) {
				t.Fatalf("row %d differs between workers=1 and workers=%d:\nseq: %+v\npar: %+v",
					i, workers, seq[i], par[i])
			}
		}
	}
	for i, r := range seq {
		if r.Rep == nil || r.Rep.Reps != reps {
			t.Fatalf("row %d missing replicate aggregates: %+v", i, r.Rep)
		}
		if r.Rep.Conf != DefaultConfidence {
			t.Fatalf("row %d confidence %v, want %v", i, r.Rep.Conf, DefaultConfidence)
		}
		if r.JoinRTMS != r.Rep.JoinRTMS.Mean {
			t.Fatalf("row %d JoinRTMS %v != replicate mean %v", i, r.JoinRTMS, r.Rep.JoinRTMS.Mean)
		}
	}
}

// TestRunFigureReplicatedRepsOneIdentical: a reps=1 "replicated" sweep must
// be byte-identical to RunFigureParallel — same rows, Rep nil — so golden
// comparisons and existing consumers survive the replication layer.
func TestRunFigureReplicatedRepsOneIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	plain, err := RunFigureParallel("1c", ScaleQuick, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := RunFigureReplicated("1c", ScaleQuick, 3, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, rep1) {
		t.Fatalf("reps=1 rows differ from RunFigureParallel:\nplain: %+v\nrep1:  %+v", plain, rep1)
	}
	for i, r := range rep1 {
		if r.Rep != nil {
			t.Fatalf("row %d has non-nil Rep at reps=1", i)
		}
	}
}
