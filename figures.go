package dynlb

import (
	"fmt"
	"sort"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/engine"
	"dynlb/internal/sim"
)

// Scale selects the simulation window of the experiment harness: Quick for
// smoke runs and benchmarks, Normal for day-to-day reproduction, Full for
// the numbers recorded in EXPERIMENTS.md (tighter confidence intervals).
type Scale int

// Scales.
const (
	ScaleQuick Scale = iota
	ScaleNormal
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleNormal:
		return "normal"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// windows returns warm-up and measurement durations.
func (s Scale) windows() (warmup, measure sim.Duration) {
	switch s {
	case ScaleQuick:
		return 2 * sim.Second, 8 * sim.Second
	case ScaleFull:
		return 5 * sim.Second, 45 * sim.Second
	default:
		return 3 * sim.Second, 20 * sim.Second
	}
}

// Row is one point of a reproduced figure: one (series, x) coordinate with
// the measured response time and the full run results.
type Row struct {
	Figure string
	Series string  // curve label: strategy name or mode
	X      float64 // x coordinate (system size, degree, selectivity %)
	XLabel string  // "#PE", "degree", "selectivity%"

	JoinRTMS float64
	Extra    map[string]float64 // figure-specific values (improvement %, degree, ...)
	Res      Results
}

// Figures lists the reproducible figure identifiers of the paper's
// evaluation, in paper order.
func Figures() []string {
	return []string{"1a", "1b", "1c", "5", "6", "7", "8", "9a", "9b"}
}

// FigureDoc returns a one-line description of a figure experiment.
func FigureDoc(fig string) string {
	docs := map[string]string{
		"1a": "single-user response time vs degree of join parallelism (analytic + simulated)",
		"1b": "response time vs degree under CPU contention (multi-user)",
		"1c": "response time vs degree under memory/disk bottleneck",
		"5":  "static degrees psu-noIO/psu-opt x RANDOM/LUC/LUM vs system size (homogeneous, 0.25 QPS/PE)",
		"6":  "dynamic strategies MIN-IO/MIN-IO-SUOPT/pmu-cpu/OPT-IO-CPU vs system size (homogeneous)",
		"7":  "memory-bound environment (mem/10, 1 disk/PE): MIN-IO-SUOPT vs pmu-cpu+LUM",
		"8":  "relative improvement over psu-opt+RANDOM vs join complexity (selectivity, 60 PE)",
		"9a": "heterogeneous workload, OLTP on the A nodes (20%): static vs dynamic strategies",
		"9b": "heterogeneous workload, OLTP on the B nodes (80%): static vs dynamic strategies",
	}
	return docs[fig]
}

// RunFigure regenerates one of the paper's figures at the given scale and
// seed, returning the measured rows in deterministic order.
func RunFigure(fig string, scale Scale, seed int64) ([]Row, error) {
	switch fig {
	case "1a":
		return fig1a(scale, seed)
	case "1b":
		return fig1bc(scale, seed, false)
	case "1c":
		return fig1bc(scale, seed, true)
	case "5":
		return fig5(scale, seed)
	case "6":
		return fig6(scale, seed)
	case "7":
		return fig7(scale, seed)
	case "8":
		return fig8(scale, seed)
	case "9a":
		return fig9(scale, seed, config.OLTPOnANode, "9a")
	case "9b":
		return fig9(scale, seed, config.OLTPOnBNode, "9b")
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (known: %v)", fig, Figures())
	}
}

func baseCfg(scale Scale, seed int64) Config {
	cfg := config.Default()
	cfg.Seed = seed
	cfg.Warmup, cfg.MeasureTime = scale.windows()
	return cfg
}

func runOne(cfg Config, name string) (Results, error) {
	s, err := core.ByName(name)
	if err != nil {
		return Results{}, err
	}
	sys, err := engine.New(cfg, s)
	if err != nil {
		return Results{}, err
	}
	return sys.Run(), nil
}

// fig1Degrees are the degree sweep points of the Fig. 1 curves.
var fig1Degrees = []int{1, 2, 4, 8, 12, 16, 20, 24, 32, 40}

// fig1a: the single-user response-time curve — analytic model plus
// simulated single-user points at fixed degrees with RANDOM selection.
func fig1a(scale Scale, seed int64) ([]Row, error) {
	cfg := baseCfg(scale, seed)
	cfg.NPE = 40
	curve := ResponseTimeCurve(cfg, cfg.NPE)
	var rows []Row
	for p := 1; p <= cfg.NPE; p++ {
		rows = append(rows, Row{
			Figure: "1a", Series: "analytic", X: float64(p), XLabel: "degree",
			JoinRTMS: curve[p-1],
		})
	}
	for _, p := range fig1Degrees {
		c := cfg
		c.JoinQPSPerPE = 0 // single-user closed loop
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		sys, err := engine.New(c, st)
		if err != nil {
			return nil, err
		}
		res := sys.Run()
		rows = append(rows, Row{
			Figure: "1a", Series: "simulated", X: float64(p), XLabel: "degree",
			JoinRTMS: res.JoinRT.MeanMS, Res: res,
		})
	}
	return rows, nil
}

// fig1bc: response time vs degree in multi-user mode — under CPU contention
// (1b) the optimum shifts below the single-user optimum; under a
// memory/disk bottleneck (1c) it shifts above.
func fig1bc(scale Scale, seed int64, memBound bool) ([]Row, error) {
	figure := "1b"
	var rows []Row
	for _, p := range fig1Degrees {
		cfg := baseCfg(scale, seed)
		cfg.NPE = 40
		if memBound {
			figure = "1c"
			cfg.BufferPages = 5
			cfg.DisksPerPE = 1
			cfg.JoinQPSPerPE = 0.05
		} else {
			cfg.JoinQPSPerPE = 0.3 // drives high CPU utilization
		}
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		sys, err := engine.New(cfg, st)
		if err != nil {
			return nil, err
		}
		res := sys.Run()
		rows = append(rows, Row{
			Figure: figure, Series: "multi-user", X: float64(p), XLabel: "degree",
			JoinRTMS: res.JoinRT.MeanMS,
			Extra:    map[string]float64{"cpu%": 100 * res.CPUUtil, "tempIO": float64(res.TempIOPages)},
			Res:      res,
		})
	}
	return rows, nil
}

// figSizes are the system sizes of the Fig. 5/6/9 sweeps.
var figSizes = []int{10, 20, 40, 60, 80}

func fig5(scale Scale, seed int64) ([]Row, error) {
	strategies := []string{
		"psu-noIO+RANDOM", "psu-noIO+LUC", "psu-noIO+LUM",
		"psu-opt+RANDOM", "psu-opt+LUC", "psu-opt+LUM",
	}
	var rows []Row
	for _, n := range figSizes {
		for _, name := range strategies {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.JoinQPSPerPE = 0.25
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, sizeRow("5", name, n, res))
		}
		// Single-user reference with psu-opt processors.
		cfg := baseCfg(scale, seed)
		cfg.NPE = n
		cfg.JoinQPSPerPE = 0
		res, err := runOne(cfg, "psu-opt+RANDOM")
		if err != nil {
			return nil, err
		}
		rows = append(rows, sizeRow("5", "single-user (psu-opt)", n, res))
	}
	return rows, nil
}

func fig6(scale Scale, seed int64) ([]Row, error) {
	strategies := []string{
		"MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+RANDOM", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	var rows []Row
	for _, n := range figSizes {
		for _, name := range strategies {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.JoinQPSPerPE = 0.25
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, sizeRow("6", name, n, res))
		}
		cfg := baseCfg(scale, seed)
		cfg.NPE = n
		cfg.JoinQPSPerPE = 0
		res, err := runOne(cfg, "psu-opt+RANDOM")
		if err != nil {
			return nil, err
		}
		rows = append(rows, sizeRow("6", "single-user (psu-opt)", n, res))
	}
	return rows, nil
}

// fig7 uses the memory-bound environment: one tenth of the memory, one disk
// per PE, lower arrival rates; it reports the achieved degrees alongside
// the response times (the paper annotates them on the bars).
func fig7(scale Scale, seed int64) ([]Row, error) {
	sizes := []int{20, 30, 40, 60, 80}
	mk := func(n int, qps float64) Config {
		cfg := baseCfg(scale, seed)
		cfg.NPE = n
		cfg.BufferPages = 5
		cfg.DisksPerPE = 1
		cfg.JoinQPSPerPE = qps
		return cfg
	}
	var rows []Row
	for _, n := range sizes {
		for _, series := range []struct {
			qps   float64
			label string
		}{
			{0.05, "multi-user 0.05 QPS/PE"},
			{0.025, "multi-user 0.025 QPS/PE"},
			{0, "single-user"},
		} {
			for _, name := range []string{"pmu-cpu+LUM", "MIN-IO-SUOPT"} {
				res, err := runOne(mk(n, series.qps), name)
				if err != nil {
					return nil, err
				}
				r := sizeRow("7", name+" / "+series.label, n, res)
				rows = append(rows, r)
			}
		}
	}
	return rows, nil
}

// fig8Rates are the per-selectivity arrival rates (QPS/PE at 60 PE) chosen,
// like the paper's, so that at least one resource is highly utilized.
var fig8Rates = map[float64]float64{
	0.001: 0.90,
	0.01:  0.30,
	0.02:  0.16,
	0.05:  0.065,
}

func fig8(scale Scale, seed int64) ([]Row, error) {
	selectivities := []float64{0.001, 0.01, 0.02, 0.05}
	strategies := []string{
		"psu-noIO+LUM", "MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	var rows []Row
	for _, sel := range selectivities {
		mk := func() Config {
			cfg := baseCfg(scale, seed)
			cfg.NPE = 60
			cfg.ScanSelectivity = sel
			cfg.JoinQPSPerPE = fig8Rates[sel]
			return cfg
		}
		base, err := runOne(mk(), "psu-opt+RANDOM")
		if err != nil {
			return nil, err
		}
		for _, name := range strategies {
			res, err := runOne(mk(), name)
			if err != nil {
				return nil, err
			}
			improvement := 0.0
			if base.JoinRT.MeanMS > 0 {
				improvement = 100 * (base.JoinRT.MeanMS - res.JoinRT.MeanMS) / base.JoinRT.MeanMS
			}
			rows = append(rows, Row{
				Figure: "8", Series: name, X: sel * 100, XLabel: "selectivity%",
				JoinRTMS: res.JoinRT.MeanMS,
				Extra: map[string]float64{
					"improvement%": improvement,
					"baselineMS":   base.JoinRT.MeanMS,
					"degree":       res.AvgJoinDegree,
				},
				Res: res,
			})
		}
	}
	return rows, nil
}

func fig9(scale Scale, seed int64, placement config.OLTPPlacement, figure string) ([]Row, error) {
	strategies := []string{
		"psu-opt+RANDOM", "psu-noIO+RANDOM", "psu-noIO+LUM", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	var rows []Row
	for _, n := range figSizes {
		for _, name := range strategies {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.DisksPerPE = 5
			cfg.JoinQPSPerPE = 0.075
			cfg.OLTP.Placement = placement
			cfg.OLTP.TPSPerNode = 100
			res, err := runOne(cfg, name)
			if err != nil {
				return nil, err
			}
			r := sizeRow(figure, name, n, res)
			r.Extra["oltpRTms"] = res.OLTPRT.MeanMS
			rows = append(rows, r)
		}
	}
	return rows, nil
}

func sizeRow(fig, series string, n int, res Results) Row {
	return Row{
		Figure: fig, Series: series, X: float64(n), XLabel: "#PE",
		JoinRTMS: res.JoinRT.MeanMS,
		Extra: map[string]float64{
			"degree": res.AvgJoinDegree,
			"cpu%":   100 * res.CPUUtil,
			"disk%":  100 * res.DiskUtil,
			"mem%":   100 * res.MemUtil,
			"tempIO": float64(res.TempIOPages),
		},
		Res: res,
	}
}

// FormatRows renders rows as an aligned text table grouped by x value.
func FormatRows(rows []Row) string {
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
		}
	}
	sort.Float64s(xs)
	out := fmt.Sprintf("Figure %s: %s\n", rows[0].Figure, FigureDoc(rows[0].Figure))
	for _, x := range xs {
		out += fmt.Sprintf("%s = %g\n", rows[0].XLabel, x)
		for _, r := range rows {
			if r.X != x {
				continue
			}
			line := fmt.Sprintf("  %-38s rt=%9.1fms", r.Series, r.JoinRTMS)
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf("  %s=%.1f", k, r.Extra[k])
			}
			if r.Res.JoinRT.N > 0 {
				line += fmt.Sprintf("  (n=%d ±%.0f)", r.Res.JoinRT.N, r.Res.JoinRT.HW95MS)
			}
			out += line + "\n"
		}
	}
	return out
}
