package dynlb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/engine"
	"dynlb/internal/sim"
	"dynlb/internal/stats"
)

// Scale selects the simulation window of the experiment harness: Quick for
// smoke runs and benchmarks, Normal for day-to-day reproduction, Full for
// the numbers recorded in EXPERIMENTS.md (tighter confidence intervals).
type Scale int

// Scales.
const (
	ScaleQuick Scale = iota
	ScaleNormal
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleNormal:
		return "normal"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// windows returns warm-up and measurement durations.
func (s Scale) windows() (warmup, measure sim.Duration) {
	switch s {
	case ScaleQuick:
		return 2 * sim.Second, 8 * sim.Second
	case ScaleFull:
		return 5 * sim.Second, 45 * sim.Second
	default:
		return 3 * sim.Second, 20 * sim.Second
	}
}

// Row is one point of a reproduced figure: one (series, x) coordinate with
// the measured response time and the full run results. In a replicated
// sweep (RunFigureReplicated, reps >= 2) the scalar metrics — JoinRTMS,
// Extra, Res — are across-replicate means and Rep carries the confidence
// half-widths; in an unreplicated sweep Rep is nil.
type Row struct {
	Figure string
	Series string  // curve label: strategy name or mode
	X      float64 // x coordinate (system size, degree, selectivity %)
	XLabel string  // "#PE", "degree", "selectivity%"

	JoinRTMS float64
	Extra    map[string]float64 // figure-specific values (improvement %, degree, ...)
	Res      Results
	Rep      *Replication // replicate aggregates; nil when the sweep ran one seed per point
}

// Figures lists the reproducible figure identifiers of the paper's
// evaluation, in paper order.
func Figures() []string {
	return []string{"1a", "1b", "1c", "5", "6", "7", "8", "9a", "9b"}
}

// FigureDoc returns a one-line description of a figure experiment.
func FigureDoc(fig string) string {
	docs := map[string]string{
		"1a": "single-user response time vs degree of join parallelism (analytic + simulated)",
		"1b": "response time vs degree under CPU contention (multi-user)",
		"1c": "response time vs degree under memory/disk bottleneck",
		"5":  "static degrees psu-noIO/psu-opt x RANDOM/LUC/LUM vs system size (homogeneous, 0.25 QPS/PE)",
		"6":  "dynamic strategies MIN-IO/MIN-IO-SUOPT/pmu-cpu/OPT-IO-CPU vs system size (homogeneous)",
		"7":  "memory-bound environment (mem/10, 1 disk/PE): MIN-IO-SUOPT vs pmu-cpu+LUM",
		"8":  "relative improvement over psu-opt+RANDOM vs join complexity (selectivity, 60 PE)",
		"9a": "heterogeneous workload, OLTP on the A nodes (20%): static vs dynamic strategies",
		"9b": "heterogeneous workload, OLTP on the B nodes (80%): static vs dynamic strategies",
	}
	return docs[fig]
}

// RunFigure regenerates one of the paper's figures at the given scale and
// seed, returning the measured rows in deterministic order. It runs the
// sweep's simulation points sequentially; use RunFigureParallel to spread
// them over a worker pool.
func RunFigure(fig string, scale Scale, seed int64) ([]Row, error) {
	return RunFigureParallel(fig, scale, seed, 1)
}

// RunFigureParallel is RunFigure with the figure's independent (config,
// strategy) points executed by up to workers concurrent simulations
// (workers <= 0 means runtime.NumCPU()). Every point runs its own kernel
// seeded from the figure seed, so the rows are bit-identical at any
// parallelism level and arrive in the same deterministic order.
func RunFigureParallel(fig string, scale Scale, seed int64, workers int) ([]Row, error) {
	p, err := planFigure(fig, scale, seed)
	if err != nil {
		return nil, err
	}
	results, err := runJobs(p.jobs, workers)
	if err != nil {
		return nil, err
	}
	outs := make([]runOut, len(results))
	for i, res := range results {
		outs[i] = runOut{res: res}
	}
	return p.build(outs)
}

// RunFigureReplicated is RunFigureParallel with every sweep point simulated
// reps times under independent replicate seeds (ReplicateSeeds(seed, reps):
// replicate 0 is the figure seed itself, further replicates come from a
// splitmix64 stream). All point x replicate jobs share one worker pool, and
// each row reports across-replicate means with Student-t confidence
// half-widths at the default 95% level in Row.Rep.
//
// At reps <= 1 it is exactly RunFigureParallel — same rows, byte for byte,
// with Rep nil. At reps >= 2 the rows are a pure function of (fig, scale,
// seed, reps): bit-identical at any worker count.
func RunFigureReplicated(fig string, scale Scale, seed int64, reps, workers int) ([]Row, error) {
	return RunFigureReplicatedConf(fig, scale, seed, reps, DefaultConfidence, workers)
}

// RunFigureReplicatedConf is RunFigureReplicated at an explicit confidence
// level in (0, 1).
func RunFigureReplicatedConf(fig string, scale Scale, seed int64, reps int, conf float64, workers int) ([]Row, error) {
	if err := checkConfidence(conf); err != nil {
		return nil, err
	}
	if reps <= 1 {
		return RunFigureParallel(fig, scale, seed, workers)
	}
	p, err := planFigure(fig, scale, seed)
	if err != nil {
		return nil, err
	}
	seeds := stats.ReplicateSeeds(seed, reps)
	all := make([]runJob, 0, len(p.jobs)*reps)
	for _, j := range p.jobs {
		for _, s := range seeds {
			c := j.cfg
			c.Seed = s
			all = append(all, runJob{cfg: c, st: j.st})
		}
	}
	results, err := runJobs(all, workers)
	if err != nil {
		return nil, err
	}
	outs := make([]runOut, len(p.jobs))
	for i := range p.jobs {
		mean, rep := AggregateResults(results[i*reps:(i+1)*reps], conf)
		outs[i] = runOut{res: mean, rep: &rep}
	}
	return p.build(outs)
}

// runJob is one independent simulation point of a figure sweep: a full
// configuration plus the strategy to run it under.
type runJob struct {
	cfg Config
	st  core.Strategy
}

// runOut is the outcome of one sweep point handed to a figure's row
// builder: the (possibly replicate-averaged) results plus the replicate
// aggregates when the sweep ran more than one seed per point.
type runOut struct {
	res Results
	rep *Replication
}

// figurePlan separates a figure into its independent simulation jobs and
// the pure function that shapes their outcomes into rows. RunFigureParallel
// executes the jobs once; RunFigureReplicated fans every job out across
// replicate seeds and feeds the builder replicate-aggregated outcomes — the
// row-shaping logic is shared, so replication covers every figure for free.
type figurePlan struct {
	jobs  []runJob
	build func(outs []runOut) ([]Row, error)
}

func planFigure(fig string, scale Scale, seed int64) (*figurePlan, error) {
	switch fig {
	case "1a":
		return plan1a(scale, seed)
	case "1b":
		return plan1bc(scale, seed, false)
	case "1c":
		return plan1bc(scale, seed, true)
	case "5":
		return plan5(scale, seed)
	case "6":
		return plan6(scale, seed)
	case "7":
		return plan7(scale, seed)
	case "8":
		return plan8(scale, seed)
	case "9a":
		return plan9(scale, seed, config.OLTPOnANode, "9a")
	case "9b":
		return plan9(scale, seed, config.OLTPOnBNode, "9b")
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (known: %v)", fig, Figures())
	}
}

func jobFor(cfg Config, name string) (runJob, error) {
	st, err := core.ByName(name)
	if err != nil {
		return runJob{}, err
	}
	return runJob{cfg: cfg, st: st}, nil
}

// runJobs executes jobs with up to workers concurrent simulations and
// returns the results indexed like jobs. Each job runs a fully independent
// kernel and RNG (strategies are stateless values), so results do not
// depend on the worker count or on scheduling order.
func runJobs(jobs []runJob, workers int) ([]Results, error) {
	results := make([]Results, len(jobs))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			sys, err := engine.New(j.cfg, j.st)
			if err != nil {
				return nil, err
			}
			results[i] = sys.Run()
		}
		return results, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		jobErr  error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || failed.Load() {
					return
				}
				sys, err := engine.New(jobs[i].cfg, jobs[i].st)
				if err != nil {
					errOnce.Do(func() { jobErr = err })
					failed.Store(true)
					return
				}
				results[i] = sys.Run()
			}
		}()
	}
	wg.Wait()
	if jobErr != nil {
		return nil, jobErr
	}
	return results, nil
}

func baseCfg(scale Scale, seed int64) Config {
	cfg := config.Default()
	cfg.Seed = seed
	cfg.Warmup, cfg.MeasureTime = scale.windows()
	return cfg
}

// fig1Degrees are the degree sweep points of the Fig. 1 curves.
var fig1Degrees = []int{1, 2, 4, 8, 12, 16, 20, 24, 32, 40}

// plan1a: the single-user response-time curve — analytic model plus
// simulated single-user points at fixed degrees with RANDOM selection.
func plan1a(scale Scale, seed int64) (*figurePlan, error) {
	cfg := baseCfg(scale, seed)
	cfg.NPE = 40
	var jobs []runJob
	for _, p := range fig1Degrees {
		c := cfg
		c.JoinQPSPerPE = 0 // single-user closed loop
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runJob{cfg: c, st: st})
	}
	build := func(outs []runOut) ([]Row, error) {
		curve := ResponseTimeCurve(cfg, cfg.NPE)
		var rows []Row
		for p := 1; p <= cfg.NPE; p++ {
			rows = append(rows, Row{
				Figure: "1a", Series: "analytic", X: float64(p), XLabel: "degree",
				JoinRTMS: curve[p-1],
			})
		}
		for i, p := range fig1Degrees {
			rows = append(rows, Row{
				Figure: "1a", Series: "simulated", X: float64(p), XLabel: "degree",
				JoinRTMS: outs[i].res.JoinRT.MeanMS, Res: outs[i].res, Rep: outs[i].rep,
			})
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

// plan1bc: response time vs degree in multi-user mode — under CPU
// contention (1b) the optimum shifts below the single-user optimum; under a
// memory/disk bottleneck (1c) it shifts above.
func plan1bc(scale Scale, seed int64, memBound bool) (*figurePlan, error) {
	figure := "1b"
	if memBound {
		figure = "1c"
	}
	var jobs []runJob
	for _, p := range fig1Degrees {
		cfg := baseCfg(scale, seed)
		cfg.NPE = 40
		if memBound {
			cfg.BufferPages = 5
			cfg.DisksPerPE = 1
			cfg.JoinQPSPerPE = 0.05
		} else {
			cfg.JoinQPSPerPE = 0.3 // drives high CPU utilization
		}
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runJob{cfg: cfg, st: st})
	}
	build := func(outs []runOut) ([]Row, error) {
		var rows []Row
		for i, p := range fig1Degrees {
			res := outs[i].res
			rows = append(rows, Row{
				Figure: figure, Series: "multi-user", X: float64(p), XLabel: "degree",
				JoinRTMS: res.JoinRT.MeanMS,
				Extra:    map[string]float64{"cpu%": 100 * res.CPUUtil, "tempIO": float64(res.TempIOPages)},
				Res:      res,
				Rep:      outs[i].rep,
			})
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

// figSizes are the system sizes of the Fig. 5/6/9 sweeps.
var figSizes = []int{10, 20, 40, 60, 80}

// sizeSweep accumulates (config, series label, system size) sweep points
// and maps the pooled outcomes onto sizeRow rows. It is the shared scaffold
// of every "#PE on the x axis" figure.
type sizeSweep struct {
	fig    string
	jobs   []runJob
	labels []string
	sizes  []int
}

func (s *sizeSweep) add(cfg Config, name, label string, n int) error {
	j, err := jobFor(cfg, name)
	if err != nil {
		return err
	}
	s.jobs = append(s.jobs, j)
	s.labels = append(s.labels, label)
	s.sizes = append(s.sizes, n)
	return nil
}

// plan wraps the accumulated points into a figurePlan whose builder labels
// the rows in point order; post, if non-nil, decorates each row from its
// run.
func (s *sizeSweep) plan(post func(r *Row, res Results)) *figurePlan {
	build := func(outs []runOut) ([]Row, error) {
		rows := make([]Row, len(outs))
		for i, out := range outs {
			rows[i] = sizeRow(s.fig, s.labels[i], s.sizes[i], out)
			if post != nil {
				post(&rows[i], out.res)
			}
		}
		return rows, nil
	}
	return &figurePlan{jobs: s.jobs, build: build}
}

// planBySize builds the standard "strategies × system sizes plus
// single-user reference" sweep shared by Figs. 5 and 6.
func planBySize(fig string, scale Scale, seed int64, strategies []string) (*figurePlan, error) {
	sweep := sizeSweep{fig: fig}
	for _, n := range figSizes {
		for _, name := range strategies {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.JoinQPSPerPE = 0.25
			if err := sweep.add(cfg, name, name, n); err != nil {
				return nil, err
			}
		}
		// Single-user reference with psu-opt processors.
		cfg := baseCfg(scale, seed)
		cfg.NPE = n
		cfg.JoinQPSPerPE = 0
		if err := sweep.add(cfg, "psu-opt+RANDOM", "single-user (psu-opt)", n); err != nil {
			return nil, err
		}
	}
	return sweep.plan(nil), nil
}

func plan5(scale Scale, seed int64) (*figurePlan, error) {
	return planBySize("5", scale, seed, []string{
		"psu-noIO+RANDOM", "psu-noIO+LUC", "psu-noIO+LUM",
		"psu-opt+RANDOM", "psu-opt+LUC", "psu-opt+LUM",
	})
}

func plan6(scale Scale, seed int64) (*figurePlan, error) {
	return planBySize("6", scale, seed, []string{
		"MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+RANDOM", "pmu-cpu+LUM", "OPT-IO-CPU",
	})
}

// plan7 uses the memory-bound environment: one tenth of the memory, one
// disk per PE, lower arrival rates; it reports the achieved degrees
// alongside the response times (the paper annotates them on the bars).
func plan7(scale Scale, seed int64) (*figurePlan, error) {
	sizes := []int{20, 30, 40, 60, 80}
	mk := func(n int, qps float64) Config {
		cfg := baseCfg(scale, seed)
		cfg.NPE = n
		cfg.BufferPages = 5
		cfg.DisksPerPE = 1
		cfg.JoinQPSPerPE = qps
		return cfg
	}
	sweep := sizeSweep{fig: "7"}
	for _, n := range sizes {
		for _, series := range []struct {
			qps   float64
			label string
		}{
			{0.05, "multi-user 0.05 QPS/PE"},
			{0.025, "multi-user 0.025 QPS/PE"},
			{0, "single-user"},
		} {
			for _, name := range []string{"pmu-cpu+LUM", "MIN-IO-SUOPT"} {
				if err := sweep.add(mk(n, series.qps), name, name+" / "+series.label, n); err != nil {
					return nil, err
				}
			}
		}
	}
	return sweep.plan(nil), nil
}

// fig8Rates are the per-selectivity arrival rates (QPS/PE at 60 PE) chosen,
// like the paper's, so that at least one resource is highly utilized.
var fig8Rates = map[float64]float64{
	0.001: 0.90,
	0.01:  0.30,
	0.02:  0.16,
	0.05:  0.065,
}

func plan8(scale Scale, seed int64) (*figurePlan, error) {
	selectivities := []float64{0.001, 0.01, 0.02, 0.05}
	strategies := []string{
		"psu-noIO+LUM", "MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	// The psu-opt+RANDOM baseline of each selectivity is itself a sweep
	// point: job layout is [base, strategies...] per selectivity, and the
	// improvement percentages are computed after the pool drains.
	var jobs []runJob
	for _, sel := range selectivities {
		mk := func() Config {
			cfg := baseCfg(scale, seed)
			cfg.NPE = 60
			cfg.ScanSelectivity = sel
			cfg.JoinQPSPerPE = fig8Rates[sel]
			return cfg
		}
		for _, name := range append([]string{"psu-opt+RANDOM"}, strategies...) {
			j, err := jobFor(mk(), name)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	build := func(outs []runOut) ([]Row, error) {
		var rows []Row
		perSel := 1 + len(strategies)
		for si, sel := range selectivities {
			base := outs[si*perSel].res
			for ni, name := range strategies {
				out := outs[si*perSel+1+ni]
				res := out.res
				improvement := 0.0
				if base.JoinRT.MeanMS > 0 {
					improvement = 100 * (base.JoinRT.MeanMS - res.JoinRT.MeanMS) / base.JoinRT.MeanMS
				}
				rows = append(rows, Row{
					Figure: "8", Series: name, X: sel * 100, XLabel: "selectivity%",
					JoinRTMS: res.JoinRT.MeanMS,
					Extra: map[string]float64{
						"improvement%": improvement,
						"baselineMS":   base.JoinRT.MeanMS,
						"degree":       res.AvgJoinDegree,
					},
					Res: res,
					Rep: out.rep,
				})
			}
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

func plan9(scale Scale, seed int64, placement config.OLTPPlacement, figure string) (*figurePlan, error) {
	strategies := []string{
		"psu-opt+RANDOM", "psu-noIO+RANDOM", "psu-noIO+LUM", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	sweep := sizeSweep{fig: figure}
	for _, n := range figSizes {
		for _, name := range strategies {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.DisksPerPE = 5
			cfg.JoinQPSPerPE = 0.075
			cfg.OLTP.Placement = placement
			cfg.OLTP.TPSPerNode = 100
			if err := sweep.add(cfg, name, name, n); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(func(r *Row, res Results) {
		r.Extra["oltpRTms"] = res.OLTPRT.MeanMS
	}), nil
}

func sizeRow(fig, series string, n int, out runOut) Row {
	res := out.res
	return Row{
		Figure: fig, Series: series, X: float64(n), XLabel: "#PE",
		JoinRTMS: res.JoinRT.MeanMS,
		Extra: map[string]float64{
			"degree": res.AvgJoinDegree,
			"cpu%":   100 * res.CPUUtil,
			"disk%":  100 * res.DiskUtil,
			"mem%":   100 * res.MemUtil,
			"tempIO": float64(res.TempIOPages),
		},
		Res: res,
		Rep: out.rep,
	}
}

// FormatRows renders rows as an aligned text table grouped by x value.
func FormatRows(rows []Row) string {
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
		}
	}
	sort.Float64s(xs)
	out := fmt.Sprintf("Figure %s: %s\n", rows[0].Figure, FigureDoc(rows[0].Figure))
	for _, x := range xs {
		out += fmt.Sprintf("%s = %g\n", rows[0].XLabel, x)
		for _, r := range rows {
			if r.X != x {
				continue
			}
			line := fmt.Sprintf("  %-38s rt=%9.1fms", r.Series, r.JoinRTMS)
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf("  %s=%.1f", k, r.Extra[k])
			}
			if r.Res.JoinRT.N > 0 {
				line += fmt.Sprintf("  (n=%d ±%.0f)", r.Res.JoinRT.N, r.Res.JoinRT.HW95MS)
			}
			if r.Rep != nil {
				line += fmt.Sprintf("  [%d reps: ±%.1fms @%g%%]", r.Rep.Reps, r.Rep.JoinRTMS.HW, 100*r.Rep.Conf)
			}
			out += line + "\n"
		}
	}
	return out
}
