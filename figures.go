package dynlb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/engine"
	"dynlb/internal/sim"
	"dynlb/internal/stats"
)

// Scale selects the simulation window of the experiment harness: Quick for
// smoke runs and benchmarks, Normal for day-to-day reproduction, Full for
// the numbers recorded in EXPERIMENTS.md (tighter confidence intervals).
type Scale int

// Scales.
const (
	ScaleQuick Scale = iota
	ScaleNormal
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleNormal:
		return "normal"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// windows returns warm-up and measurement durations.
func (s Scale) windows() (warmup, measure sim.Duration) {
	switch s {
	case ScaleQuick:
		return 2 * sim.Second, 8 * sim.Second
	case ScaleFull:
		return 5 * sim.Second, 45 * sim.Second
	default:
		return 3 * sim.Second, 20 * sim.Second
	}
}

// Row is one point of a reproduced figure: one (series, x) coordinate with
// the measured response time and the full run results. In a replicated
// sweep (RunFigureReplicated, reps >= 2) the scalar metrics — JoinRTMS,
// Extra, Res — are across-replicate means and Rep carries the confidence
// half-widths; in an unreplicated sweep Rep is nil. In a compared sweep
// (RunFigureCompared) the scalar metrics are the challenger strategy B's
// and Cmp carries the paired A-vs-B deltas; otherwise Cmp is nil.
type Row struct {
	Figure string
	Series string  // curve label: strategy name or mode
	X      float64 // x coordinate (system size, degree, selectivity %)
	XLabel string  // "#PE", "degree", "selectivity%"

	JoinRTMS float64
	Extra    map[string]float64 // figure-specific values (improvement %, degree, ...)
	Res      Results
	Rep      *Replication      // replicate aggregates; nil when the sweep ran one seed per point
	Cmp      *PairedComparison // paired A-vs-B aggregates; nil outside compared sweeps
}

// Figures lists the reproducible figure identifiers of the paper's
// evaluation, in paper order.
func Figures() []string {
	return []string{"1a", "1b", "1c", "5", "6", "7", "8", "9a", "9b"}
}

// FigureDoc returns a one-line description of a figure experiment.
func FigureDoc(fig string) string {
	docs := map[string]string{
		"1a": "single-user response time vs degree of join parallelism (analytic + simulated)",
		"1b": "response time vs degree under CPU contention (multi-user)",
		"1c": "response time vs degree under memory/disk bottleneck",
		"5":  "static degrees psu-noIO/psu-opt x RANDOM/LUC/LUM vs system size (homogeneous, 0.25 QPS/PE)",
		"6":  "dynamic strategies MIN-IO/MIN-IO-SUOPT/pmu-cpu/OPT-IO-CPU vs system size (homogeneous)",
		"7":  "memory-bound environment (mem/10, 1 disk/PE): MIN-IO-SUOPT vs pmu-cpu+LUM",
		"8":  "relative improvement over psu-opt+RANDOM vs join complexity (selectivity, 60 PE)",
		"9a": "heterogeneous workload, OLTP on the A nodes (20%): static vs dynamic strategies",
		"9b": "heterogeneous workload, OLTP on the B nodes (80%): static vs dynamic strategies",
	}
	return docs[fig]
}

// RunFigure regenerates one of the paper's figures at the given scale and
// seed, returning the measured rows in deterministic order. It runs the
// sweep's simulation points sequentially; use RunFigureParallel to spread
// them over a worker pool.
func RunFigure(fig string, scale Scale, seed int64) ([]Row, error) {
	return RunFigureParallel(fig, scale, seed, 1)
}

// RunFigureParallel is RunFigure with the figure's independent (config,
// strategy) points executed by up to workers concurrent simulations
// (workers <= 0 means runtime.NumCPU()). Every point runs its own kernel
// seeded from the figure seed, so the rows are bit-identical at any
// parallelism level and arrive in the same deterministic order.
func RunFigureParallel(fig string, scale Scale, seed int64, workers int) ([]Row, error) {
	p, err := planFigure(fig, scale, seed)
	if err != nil {
		return nil, err
	}
	results, err := runJobs(p.jobs, workers)
	if err != nil {
		return nil, err
	}
	outs := make([]runOut, len(results))
	for i, res := range results {
		outs[i] = runOut{res: res}
	}
	return p.build(outs)
}

// RunFigureReplicated is RunFigureParallel with every sweep point simulated
// reps times under independent replicate seeds (ReplicateSeeds(seed, reps):
// replicate 0 is the figure seed itself, further replicates come from a
// splitmix64 stream). All point x replicate jobs share one worker pool, and
// each row reports across-replicate means with Student-t confidence
// half-widths at the default 95% level in Row.Rep.
//
// At reps <= 1 it is exactly RunFigureParallel — same rows, byte for byte,
// with Rep nil. At reps >= 2 the rows are a pure function of (fig, scale,
// seed, reps): bit-identical at any worker count.
func RunFigureReplicated(fig string, scale Scale, seed int64, reps, workers int) ([]Row, error) {
	return RunFigureReplicatedConf(fig, scale, seed, reps, DefaultConfidence, workers)
}

// RunFigureReplicatedConf is RunFigureReplicated at an explicit confidence
// level in (0, 1).
func RunFigureReplicatedConf(fig string, scale Scale, seed int64, reps int, conf float64, workers int) ([]Row, error) {
	if err := checkConfidence(conf); err != nil {
		return nil, err
	}
	if reps <= 1 {
		return RunFigureParallel(fig, scale, seed, workers)
	}
	p, err := planFigure(fig, scale, seed)
	if err != nil {
		return nil, err
	}
	seeds := stats.ReplicateSeeds(seed, reps)
	all := make([]runJob, 0, len(p.jobs)*reps)
	for _, j := range p.jobs {
		for _, s := range seeds {
			c := j.cfg
			c.Seed = s
			all = append(all, runJob{cfg: c, st: j.st})
		}
	}
	results, err := runJobs(all, workers)
	if err != nil {
		return nil, err
	}
	outs := make([]runOut, len(p.jobs))
	for i := range p.jobs {
		mean, rep := AggregateResults(results[i*reps:(i+1)*reps], conf)
		outs[i] = runOut{res: mean, rep: &rep}
	}
	return p.build(outs)
}

// CompareFigures lists the distinct workload sweeps RunFigureCompared
// accepts: the strategy-sweep figures, whose x axis is a configuration
// axis (system size, selectivity) that two strategies can be swept along
// head to head. Figure "5" is also accepted but not listed — it shares
// figure 6's workload axis (the two differ only in which strategies they
// sweep, the dimension a comparison replaces), so listing both would make
// "-fig all -compare" simulate the identical sweep twice. Figures
// 1a/1b/1c sweep the degree of parallelism through their strategies and
// have no config axis to compare on.
func CompareFigures() []string {
	return []string{"6", "7", "8", "9a", "9b"}
}

// comparePoint is one workload configuration of a figure sweep — a point
// of the figure's config axis with its row coordinates, stripped of the
// strategy dimension. singleUser marks the zero-arrival-rate reference
// points, which some planners route differently (fig 5/6 run the
// single-user reference under psu-opt only).
type comparePoint struct {
	series     string
	x          float64
	xlabel     string
	singleUser bool
	cfg        Config
}

// planCompareFigure lists the distinct workload configurations of a
// strategy-sweep figure — the figure's config axis with its per-point
// arrival rates, stripped of the strategy dimension. It is the single
// source of those workloads: the figure planners (planBySize, plan7,
// plan8, plan9) expand the same points across their strategy lists, so a
// compared sweep always runs exactly the configurations the plain figure
// sweep runs.
func planCompareFigure(fig string, scale Scale, seed int64) ([]comparePoint, error) {
	var pts []comparePoint
	switch fig {
	case "5", "6":
		for _, n := range figSizes {
			mu := baseCfg(scale, seed)
			mu.NPE = n
			mu.JoinQPSPerPE = 0.25
			su := mu
			su.JoinQPSPerPE = 0
			pts = append(pts,
				comparePoint{series: "multi-user 0.25 QPS/PE", x: float64(n), xlabel: "#PE", cfg: mu},
				comparePoint{series: "single-user", x: float64(n), xlabel: "#PE", singleUser: true, cfg: su})
		}
	case "7":
		for _, n := range []int{20, 30, 40, 60, 80} {
			for _, series := range []struct {
				qps   float64
				label string
			}{
				{0.05, "multi-user 0.05 QPS/PE"},
				{0.025, "multi-user 0.025 QPS/PE"},
				{0, "single-user"},
			} {
				cfg := baseCfg(scale, seed)
				cfg.NPE = n
				cfg.BufferPages = 5
				cfg.DisksPerPE = 1
				cfg.JoinQPSPerPE = series.qps
				pts = append(pts, comparePoint{
					series: series.label, x: float64(n), xlabel: "#PE",
					singleUser: series.qps == 0, cfg: cfg,
				})
			}
		}
	case "8":
		for _, sel := range []float64{0.001, 0.01, 0.02, 0.05} {
			cfg := baseCfg(scale, seed)
			cfg.NPE = 60
			cfg.ScanSelectivity = sel
			cfg.JoinQPSPerPE = fig8Rates[sel]
			pts = append(pts, comparePoint{series: "60 PE", x: sel * 100, xlabel: "selectivity%", cfg: cfg})
		}
	case "9a", "9b":
		placement := config.OLTPOnANode
		if fig == "9b" {
			placement = config.OLTPOnBNode
		}
		for _, n := range figSizes {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.DisksPerPE = 5
			cfg.JoinQPSPerPE = 0.075
			cfg.OLTP.Placement = placement
			cfg.OLTP.TPSPerNode = 100
			pts = append(pts, comparePoint{series: "OLTP on " + placement.String(), x: float64(n), xlabel: "#PE", cfg: cfg})
		}
	case "1a", "1b", "1c":
		return nil, fmt.Errorf("dynlb: figure %s sweeps the degree through its strategies and has no config axis to compare on (comparable figures: %v)", fig, CompareFigures())
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (comparable: %v)", fig, CompareFigures())
	}
	return pts, nil
}

// RunFigureCompared sweeps a figure's workload configurations under two
// strategies head to head: every (point, replicate) pair simulates once
// under the baseline stratA and once under the challenger stratB on the
// identical replicate seed (common random numbers), all jobs sharing one
// worker pool. Each returned row carries strategy B's across-replicate
// means in the scalar metrics and the paired per-metric deltas and relative
// improvements — with paired-t confidence half-widths at the default 95%
// level — in Row.Cmp (plus B's Replication in Row.Rep when reps >= 2).
//
// Because both strategies of a pair share their seed, the per-replicate
// deltas cancel the workload noise common to the two runs: the paired
// half-widths are tighter than the UnpairedDeltaHW/UnpairedImprovHW an
// independent-seed experiment of the same size yields. Rows are a pure
// function of (fig, scale, seed, strategies, reps): bit-identical at any
// worker count.
func RunFigureCompared(fig string, scale Scale, seed int64, stratA, stratB string, reps, workers int) ([]Row, error) {
	return RunFigureComparedConf(fig, scale, seed, stratA, stratB, reps, DefaultConfidence, workers)
}

// RunFigureComparedConf is RunFigureCompared at an explicit confidence
// level in (0, 1).
func RunFigureComparedConf(fig string, scale Scale, seed int64, stratA, stratB string, reps int, conf float64, workers int) ([]Row, error) {
	if reps < 1 {
		return nil, fmt.Errorf("dynlb: RunFigureCompared needs reps >= 1, got %d", reps)
	}
	if err := checkConfidence(conf); err != nil {
		return nil, err
	}
	sa, err := core.ByName(stratA)
	if err != nil {
		return nil, err
	}
	sb, err := core.ByName(stratB)
	if err != nil {
		return nil, err
	}
	pts, err := planCompareFigure(fig, scale, seed)
	if err != nil {
		return nil, err
	}
	seeds := stats.ReplicateSeeds(seed, reps)
	// Job layout: ((point*reps)+replicate)*2 + {A: 0, B: 1} — fixed, so the
	// paired aggregation below is independent of worker scheduling.
	jobs := make([]runJob, 0, len(pts)*reps*2)
	for _, pt := range pts {
		for _, s := range seeds {
			c := pt.cfg
			c.Seed = s
			jobs = append(jobs, runJob{cfg: c, st: sa}, runJob{cfg: c, st: sb})
		}
	}
	results, err := runJobs(jobs, workers)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(pts))
	for i, pt := range pts {
		runsA := make([]Results, reps)
		runsB := make([]Results, reps)
		for k := 0; k < reps; k++ {
			runsA[k] = results[(i*reps+k)*2]
			runsB[k] = results[(i*reps+k)*2+1]
		}
		meanB, repB := AggregateResults(runsB, conf)
		pair, err := CompareResults(runsA, runsB, conf)
		if err != nil {
			return nil, err
		}
		rows[i] = Row{
			Figure: fig, Series: pt.series, X: pt.x, XLabel: pt.xlabel,
			JoinRTMS: meanB.JoinRT.MeanMS,
			Res:      meanB,
			Cmp:      &pair,
		}
		if reps >= 2 {
			rep := repB
			rows[i].Rep = &rep
		}
	}
	return rows, nil
}

// runJob is one independent simulation point of a figure sweep: a full
// configuration plus the strategy to run it under.
type runJob struct {
	cfg Config
	st  core.Strategy
}

// runOut is the outcome of one sweep point handed to a figure's row
// builder: the (possibly replicate-averaged) results plus the replicate
// aggregates when the sweep ran more than one seed per point.
type runOut struct {
	res Results
	rep *Replication
}

// figurePlan separates a figure into its independent simulation jobs and
// the pure function that shapes their outcomes into rows. RunFigureParallel
// executes the jobs once; RunFigureReplicated fans every job out across
// replicate seeds and feeds the builder replicate-aggregated outcomes — the
// row-shaping logic is shared, so replication covers every figure for free.
type figurePlan struct {
	jobs  []runJob
	build func(outs []runOut) ([]Row, error)
}

func planFigure(fig string, scale Scale, seed int64) (*figurePlan, error) {
	switch fig {
	case "1a":
		return plan1a(scale, seed)
	case "1b":
		return plan1bc(scale, seed, false)
	case "1c":
		return plan1bc(scale, seed, true)
	case "5":
		return plan5(scale, seed)
	case "6":
		return plan6(scale, seed)
	case "7":
		return plan7(scale, seed)
	case "8":
		return plan8(scale, seed)
	case "9a", "9b":
		return plan9(scale, seed, fig)
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (known: %v)", fig, Figures())
	}
}

func jobFor(cfg Config, name string) (runJob, error) {
	st, err := core.ByName(name)
	if err != nil {
		return runJob{}, err
	}
	return runJob{cfg: cfg, st: st}, nil
}

// runJobs executes jobs with up to workers concurrent simulations and
// returns the results indexed like jobs. Each job runs a fully independent
// kernel and RNG (strategies are stateless values), so results do not
// depend on the worker count or on scheduling order.
func runJobs(jobs []runJob, workers int) ([]Results, error) {
	results := make([]Results, len(jobs))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			sys, err := engine.New(j.cfg, j.st)
			if err != nil {
				return nil, err
			}
			results[i] = sys.Run()
		}
		return results, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		wg      sync.WaitGroup
		errOnce sync.Once
		jobErr  error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) || failed.Load() {
					return
				}
				sys, err := engine.New(jobs[i].cfg, jobs[i].st)
				if err != nil {
					errOnce.Do(func() { jobErr = err })
					failed.Store(true)
					return
				}
				results[i] = sys.Run()
			}
		}()
	}
	wg.Wait()
	if jobErr != nil {
		return nil, jobErr
	}
	return results, nil
}

func baseCfg(scale Scale, seed int64) Config {
	cfg := config.Default()
	cfg.Seed = seed
	cfg.Warmup, cfg.MeasureTime = scale.windows()
	return cfg
}

// fig1Degrees are the degree sweep points of the Fig. 1 curves.
var fig1Degrees = []int{1, 2, 4, 8, 12, 16, 20, 24, 32, 40}

// plan1a: the single-user response-time curve — analytic model plus
// simulated single-user points at fixed degrees with RANDOM selection.
func plan1a(scale Scale, seed int64) (*figurePlan, error) {
	cfg := baseCfg(scale, seed)
	cfg.NPE = 40
	var jobs []runJob
	for _, p := range fig1Degrees {
		c := cfg
		c.JoinQPSPerPE = 0 // single-user closed loop
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runJob{cfg: c, st: st})
	}
	build := func(outs []runOut) ([]Row, error) {
		curve := ResponseTimeCurve(cfg, cfg.NPE)
		var rows []Row
		for p := 1; p <= cfg.NPE; p++ {
			rows = append(rows, Row{
				Figure: "1a", Series: "analytic", X: float64(p), XLabel: "degree",
				JoinRTMS: curve[p-1],
			})
		}
		for i, p := range fig1Degrees {
			rows = append(rows, Row{
				Figure: "1a", Series: "simulated", X: float64(p), XLabel: "degree",
				JoinRTMS: outs[i].res.JoinRT.MeanMS, Res: outs[i].res, Rep: outs[i].rep,
			})
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

// plan1bc: response time vs degree in multi-user mode — under CPU
// contention (1b) the optimum shifts below the single-user optimum; under a
// memory/disk bottleneck (1c) it shifts above.
func plan1bc(scale Scale, seed int64, memBound bool) (*figurePlan, error) {
	figure := "1b"
	if memBound {
		figure = "1c"
	}
	var jobs []runJob
	for _, p := range fig1Degrees {
		cfg := baseCfg(scale, seed)
		cfg.NPE = 40
		if memBound {
			cfg.BufferPages = 5
			cfg.DisksPerPE = 1
			cfg.JoinQPSPerPE = 0.05
		} else {
			cfg.JoinQPSPerPE = 0.3 // drives high CPU utilization
		}
		st, err := FixedDegree(p, "RANDOM")
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, runJob{cfg: cfg, st: st})
	}
	build := func(outs []runOut) ([]Row, error) {
		var rows []Row
		for i, p := range fig1Degrees {
			res := outs[i].res
			rows = append(rows, Row{
				Figure: figure, Series: "multi-user", X: float64(p), XLabel: "degree",
				JoinRTMS: res.JoinRT.MeanMS,
				Extra:    map[string]float64{"cpu%": 100 * res.CPUUtil, "tempIO": float64(res.TempIOPages)},
				Res:      res,
				Rep:      outs[i].rep,
			})
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

// figSizes are the system sizes of the Fig. 5/6/9 sweeps.
var figSizes = []int{10, 20, 40, 60, 80}

// sizeSweep accumulates (config, series label, system size) sweep points
// and maps the pooled outcomes onto sizeRow rows. It is the shared scaffold
// of every "#PE on the x axis" figure.
type sizeSweep struct {
	fig    string
	jobs   []runJob
	labels []string
	sizes  []int
}

func (s *sizeSweep) add(cfg Config, name, label string, n int) error {
	j, err := jobFor(cfg, name)
	if err != nil {
		return err
	}
	s.jobs = append(s.jobs, j)
	s.labels = append(s.labels, label)
	s.sizes = append(s.sizes, n)
	return nil
}

// plan wraps the accumulated points into a figurePlan whose builder labels
// the rows in point order; post, if non-nil, decorates each row from its
// run.
func (s *sizeSweep) plan(post func(r *Row, res Results)) *figurePlan {
	build := func(outs []runOut) ([]Row, error) {
		rows := make([]Row, len(outs))
		for i, out := range outs {
			rows[i] = sizeRow(s.fig, s.labels[i], s.sizes[i], out)
			if post != nil {
				post(&rows[i], out.res)
			}
		}
		return rows, nil
	}
	return &figurePlan{jobs: s.jobs, build: build}
}

// planBySize builds the standard "strategies × system sizes plus
// single-user reference" sweep shared by Figs. 5 and 6, expanding the
// shared workload axis (planCompareFigure) across the strategy list.
func planBySize(fig string, scale Scale, seed int64, strategies []string) (*figurePlan, error) {
	pts, err := planCompareFigure("6", scale, seed) // figs 5 and 6 share the workload axis
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: fig}
	for _, pt := range pts {
		n := int(pt.x)
		if pt.singleUser {
			// Single-user reference with psu-opt processors.
			if err := sweep.add(pt.cfg, "psu-opt+RANDOM", "single-user (psu-opt)", n); err != nil {
				return nil, err
			}
			continue
		}
		for _, name := range strategies {
			if err := sweep.add(pt.cfg, name, name, n); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(nil), nil
}

func plan5(scale Scale, seed int64) (*figurePlan, error) {
	return planBySize("5", scale, seed, []string{
		"psu-noIO+RANDOM", "psu-noIO+LUC", "psu-noIO+LUM",
		"psu-opt+RANDOM", "psu-opt+LUC", "psu-opt+LUM",
	})
}

func plan6(scale Scale, seed int64) (*figurePlan, error) {
	return planBySize("6", scale, seed, []string{
		"MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+RANDOM", "pmu-cpu+LUM", "OPT-IO-CPU",
	})
}

// plan7 uses the memory-bound environment: one tenth of the memory, one
// disk per PE, lower arrival rates; it reports the achieved degrees
// alongside the response times (the paper annotates them on the bars).
func plan7(scale Scale, seed int64) (*figurePlan, error) {
	pts, err := planCompareFigure("7", scale, seed)
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: "7"}
	for _, pt := range pts {
		for _, name := range []string{"pmu-cpu+LUM", "MIN-IO-SUOPT"} {
			if err := sweep.add(pt.cfg, name, name+" / "+pt.series, int(pt.x)); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(nil), nil
}

// fig8Rates are the per-selectivity arrival rates (QPS/PE at 60 PE) chosen,
// like the paper's, so that at least one resource is highly utilized.
var fig8Rates = map[float64]float64{
	0.001: 0.90,
	0.01:  0.30,
	0.02:  0.16,
	0.05:  0.065,
}

func plan8(scale Scale, seed int64) (*figurePlan, error) {
	strategies := []string{
		"psu-noIO+LUM", "MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	pts, err := planCompareFigure("8", scale, seed)
	if err != nil {
		return nil, err
	}
	// The psu-opt+RANDOM baseline of each selectivity is itself a sweep
	// point: job layout is [base, strategies...] per selectivity, and the
	// improvement percentages are computed after the pool drains.
	var jobs []runJob
	for _, pt := range pts {
		for _, name := range append([]string{"psu-opt+RANDOM"}, strategies...) {
			j, err := jobFor(pt.cfg, name)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, j)
		}
	}
	build := func(outs []runOut) ([]Row, error) {
		var rows []Row
		perSel := 1 + len(strategies)
		for si, pt := range pts {
			base := outs[si*perSel].res
			for ni, name := range strategies {
				out := outs[si*perSel+1+ni]
				res := out.res
				improvement := 0.0
				if base.JoinRT.MeanMS > 0 {
					improvement = 100 * (base.JoinRT.MeanMS - res.JoinRT.MeanMS) / base.JoinRT.MeanMS
				}
				rows = append(rows, Row{
					Figure: "8", Series: name, X: pt.x, XLabel: pt.xlabel,
					JoinRTMS: res.JoinRT.MeanMS,
					Extra: map[string]float64{
						"improvement%": improvement,
						"baselineMS":   base.JoinRT.MeanMS,
						"degree":       res.AvgJoinDegree,
					},
					Res: res,
					Rep: out.rep,
				})
			}
		}
		return rows, nil
	}
	return &figurePlan{jobs: jobs, build: build}, nil
}

func plan9(scale Scale, seed int64, figure string) (*figurePlan, error) {
	strategies := []string{
		"psu-opt+RANDOM", "psu-noIO+RANDOM", "psu-noIO+LUM", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	pts, err := planCompareFigure(figure, scale, seed)
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: figure}
	for _, pt := range pts {
		for _, name := range strategies {
			if err := sweep.add(pt.cfg, name, name, int(pt.x)); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(func(r *Row, res Results) {
		r.Extra["oltpRTms"] = res.OLTPRT.MeanMS
	}), nil
}

func sizeRow(fig, series string, n int, out runOut) Row {
	res := out.res
	return Row{
		Figure: fig, Series: series, X: float64(n), XLabel: "#PE",
		JoinRTMS: res.JoinRT.MeanMS,
		Extra: map[string]float64{
			"degree": res.AvgJoinDegree,
			"cpu%":   100 * res.CPUUtil,
			"disk%":  100 * res.DiskUtil,
			"mem%":   100 * res.MemUtil,
			"tempIO": float64(res.TempIOPages),
		},
		Res: res,
		Rep: out.rep,
	}
}

// FormatRows renders rows as an aligned text table grouped by x value.
func FormatRows(rows []Row) string {
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
		}
	}
	sort.Float64s(xs)
	out := fmt.Sprintf("Figure %s: %s\n", rows[0].Figure, FigureDoc(rows[0].Figure))
	for _, x := range xs {
		out += fmt.Sprintf("%s = %g\n", rows[0].XLabel, x)
		for _, r := range rows {
			if r.X != x {
				continue
			}
			line := fmt.Sprintf("  %-38s rt=%9.1fms", r.Series, r.JoinRTMS)
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf("  %s=%.1f", k, r.Extra[k])
			}
			if r.Res.JoinRT.N > 0 {
				line += fmt.Sprintf("  (n=%d ±%.0f)", r.Res.JoinRT.N, r.Res.JoinRT.HW95MS)
			}
			if r.Rep != nil {
				line += fmt.Sprintf("  [%d reps: ±%.1fms @%g%%]", r.Rep.Reps, r.Rep.JoinRTMS.HW, 100*r.Rep.Conf)
			}
			if r.Cmp != nil {
				c := r.Cmp.JoinRTMS
				line += fmt.Sprintf("  [%s vs %s: Δ%+.1fms ±%.1f, improv %.1f%% ±%.1f (unpaired ±%.1f)]",
					r.Cmp.StrategyB, r.Cmp.StrategyA, c.Delta.Mean, c.Delta.HW,
					c.Improv.Mean, c.Improv.HW, c.UnpairedImprovHW)
			}
			out += line + "\n"
		}
	}
	return out
}
