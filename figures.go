package dynlb

import (
	"context"
	"fmt"
	"sort"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/sim"
)

// Scale selects the simulation window of the experiment harness: Quick for
// smoke runs and benchmarks, Normal for day-to-day reproduction, Full for
// the numbers recorded in EXPERIMENTS.md (tighter confidence intervals).
type Scale int

// Scales.
const (
	ScaleQuick Scale = iota
	ScaleNormal
	ScaleFull
)

func (s Scale) String() string {
	switch s {
	case ScaleQuick:
		return "quick"
	case ScaleNormal:
		return "normal"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale parses a scale name ("quick", "normal", "full") as produced
// by Scale.String — the -scale flag syntax of the commands and the "scale"
// field of an ExperimentRequest.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return ScaleQuick, nil
	case "normal":
		return ScaleNormal, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("dynlb: unknown scale %q (want quick, normal or full)", s)
	}
}

// windows returns warm-up and measurement durations.
func (s Scale) windows() (warmup, measure sim.Duration) {
	switch s {
	case ScaleQuick:
		return 2 * sim.Second, 8 * sim.Second
	case ScaleFull:
		return 5 * sim.Second, 45 * sim.Second
	default:
		return 3 * sim.Second, 20 * sim.Second
	}
}

// Row is one point of an experiment sweep: one (series, x) coordinate with
// the measured response time and the full run results. In a replicated
// sweep (WithReps >= 2 or WithSeeds) the scalar metrics — JoinRTMS, Extra,
// Res — are across-replicate means and Rep carries the confidence
// half-widths; in an unreplicated sweep Rep is nil. In a compared sweep
// (WithCompare) the scalar metrics are the challenger strategy B's and Cmp
// carries the paired A-vs-B deltas; otherwise Cmp is nil.
type Row struct {
	Figure string  `json:"figure"` // source label: figure id or sweep name
	Series string  `json:"series"` // curve label: strategy name or mode
	X      float64 `json:"x"`      // x coordinate (system size, degree, selectivity %)
	XLabel string  `json:"xlabel"` // "#PE", "degree", "selectivity%"

	JoinRTMS float64            `json:"join_rt_ms"`
	Extra    map[string]float64 `json:"extra,omitempty"` // figure-specific values (improvement %, degree, ...)
	Res      Results            `json:"results"`
	Rep      *Replication       `json:"replication,omitempty"` // replicate aggregates; nil when the sweep ran one seed per point
	Cmp      *PairedComparison  `json:"comparison,omitempty"`  // paired A-vs-B aggregates; nil outside compared sweeps
	Runs     []Results          `json:"runs,omitempty"`        // raw per-replicate results; set only under WithRuns (compared sweeps interleave {A, B} per seed)
}

// Figures lists the reproducible figure identifiers of the paper's
// evaluation, in paper order.
func Figures() []string {
	return []string{"1a", "1b", "1c", "5", "6", "7", "8", "9a", "9b"}
}

// FigureDoc returns a one-line description of a figure experiment.
func FigureDoc(fig string) string {
	docs := map[string]string{
		"1a": "single-user response time vs degree of join parallelism (analytic + simulated)",
		"1b": "response time vs degree under CPU contention (multi-user)",
		"1c": "response time vs degree under memory/disk bottleneck",
		"5":  "static degrees psu-noIO/psu-opt x RANDOM/LUC/LUM vs system size (homogeneous, 0.25 QPS/PE)",
		"6":  "dynamic strategies MIN-IO/MIN-IO-SUOPT/pmu-cpu/OPT-IO-CPU vs system size (homogeneous)",
		"7":  "memory-bound environment (mem/10, 1 disk/PE): MIN-IO-SUOPT vs pmu-cpu+LUM",
		"8":  "relative improvement over psu-opt+RANDOM vs join complexity (selectivity, 60 PE)",
		"9a": "heterogeneous workload, OLTP on the A nodes (20%): static vs dynamic strategies",
		"9b": "heterogeneous workload, OLTP on the B nodes (80%): static vs dynamic strategies",
	}
	return docs[fig]
}

// RunFigure regenerates one of the paper's figures at the given scale and
// seed, returning the measured rows in deterministic order. It runs the
// sweep's simulation points sequentially.
//
// Deprecated: use the Experiment API, which composes scale, seeding,
// replication, comparison and parallelism as options over one entry point:
//
//	NewExperiment(Figure(fig), WithScale(scale), WithSeed(seed), WithWorkers(1)).Run(ctx)
func RunFigure(fig string, scale Scale, seed int64) ([]Row, error) {
	return NewExperiment(Figure(fig),
		WithScale(scale), WithSeed(seed), WithWorkers(1)).Run(context.Background())
}

// RunFigureParallel is RunFigure with the figure's independent (config,
// strategy) points executed by up to workers concurrent simulations
// (workers <= 0 means runtime.NumCPU()). Every point runs its own kernel
// seeded from the figure seed, so the rows are bit-identical at any
// parallelism level and arrive in the same deterministic order.
//
// Deprecated: use the Experiment API:
//
//	NewExperiment(Figure(fig), WithScale(scale), WithSeed(seed), WithWorkers(workers)).Run(ctx)
func RunFigureParallel(fig string, scale Scale, seed int64, workers int) ([]Row, error) {
	return NewExperiment(Figure(fig),
		WithScale(scale), WithSeed(seed), WithWorkers(workers)).Run(context.Background())
}

// RunFigureReplicated is RunFigureParallel with every sweep point simulated
// reps times under independent replicate seeds (ReplicateSeeds(seed, reps):
// replicate 0 is the figure seed itself, further replicates come from a
// splitmix64 stream). All point x replicate jobs share one worker pool, and
// each row reports across-replicate means with Student-t confidence
// half-widths at the default 95% level in Row.Rep.
//
// At reps <= 1 it is exactly RunFigureParallel — same rows, byte for byte,
// with Rep nil. At reps >= 2 the rows are a pure function of (fig, scale,
// seed, reps): bit-identical at any worker count.
//
// Deprecated: use the Experiment API:
//
//	NewExperiment(Figure(fig), WithScale(scale), WithSeed(seed), WithReps(reps), WithWorkers(workers)).Run(ctx)
func RunFigureReplicated(fig string, scale Scale, seed int64, reps, workers int) ([]Row, error) {
	return RunFigureReplicatedConf(fig, scale, seed, reps, DefaultConfidence, workers)
}

// RunFigureReplicatedConf is RunFigureReplicated at an explicit confidence
// level in (0, 1).
//
// Deprecated: use the Experiment API with WithConfidence(conf).
func RunFigureReplicatedConf(fig string, scale Scale, seed int64, reps int, conf float64, workers int) ([]Row, error) {
	return NewExperiment(Figure(fig),
		WithScale(scale), WithSeed(seed), WithReps(reps),
		WithConfidence(conf), WithWorkers(workers)).Run(context.Background())
}

// CompareFigures lists the distinct workload sweeps a compared figure
// experiment accepts: the strategy-sweep figures, whose x axis is a
// configuration axis (system size, selectivity) that two strategies can be
// swept along head to head. Figure "5" is also accepted but not listed — it
// shares figure 6's workload axis (the two differ only in which strategies
// they sweep, the dimension a comparison replaces), so listing both would
// make "-fig all -compare" simulate the identical sweep twice. Figures
// 1a/1b/1c sweep the degree of parallelism through their strategies and
// have no config axis to compare on.
func CompareFigures() []string {
	return []string{"6", "7", "8", "9a", "9b"}
}

// comparePoint is one workload configuration of a sweep — a point of the
// source's config axis with its row coordinates, stripped of the strategy
// dimension. singleUser marks the zero-arrival-rate reference points, which
// some planners route differently (fig 5/6 run the single-user reference
// under psu-opt only).
type comparePoint struct {
	series     string
	x          float64
	xlabel     string
	singleUser bool
	cfg        Config
}

// planCompareFigure lists the distinct workload configurations of a
// strategy-sweep figure — the figure's config axis with its per-point
// arrival rates, stripped of the strategy dimension. It is the single
// source of those workloads: the figure planners (planBySize, plan7,
// plan8, plan9) expand the same points across their strategy lists, so a
// compared sweep always runs exactly the configurations the plain figure
// sweep runs.
func planCompareFigure(fig string, scale Scale, seed int64) ([]comparePoint, error) {
	var pts []comparePoint
	switch fig {
	case "5", "6":
		for _, n := range figSizes {
			mu := baseCfg(scale, seed)
			mu.NPE = n
			mu.JoinQPSPerPE = 0.25
			su := mu
			su.JoinQPSPerPE = 0
			pts = append(pts,
				comparePoint{series: "multi-user 0.25 QPS/PE", x: float64(n), xlabel: "#PE", cfg: mu},
				comparePoint{series: "single-user", x: float64(n), xlabel: "#PE", singleUser: true, cfg: su})
		}
	case "7":
		for _, n := range []int{20, 30, 40, 60, 80} {
			for _, series := range []struct {
				qps   float64
				label string
			}{
				{0.05, "multi-user 0.05 QPS/PE"},
				{0.025, "multi-user 0.025 QPS/PE"},
				{0, "single-user"},
			} {
				cfg := baseCfg(scale, seed)
				cfg.NPE = n
				cfg.BufferPages = 5
				cfg.DisksPerPE = 1
				cfg.JoinQPSPerPE = series.qps
				pts = append(pts, comparePoint{
					series: series.label, x: float64(n), xlabel: "#PE",
					singleUser: series.qps == 0, cfg: cfg,
				})
			}
		}
	case "8":
		for _, sel := range []float64{0.001, 0.01, 0.02, 0.05} {
			cfg := baseCfg(scale, seed)
			cfg.NPE = 60
			cfg.ScanSelectivity = sel
			cfg.JoinQPSPerPE = fig8Rates[sel]
			pts = append(pts, comparePoint{series: "60 PE", x: sel * 100, xlabel: "selectivity%", cfg: cfg})
		}
	case "9a", "9b":
		placement := config.OLTPOnANode
		if fig == "9b" {
			placement = config.OLTPOnBNode
		}
		for _, n := range figSizes {
			cfg := baseCfg(scale, seed)
			cfg.NPE = n
			cfg.DisksPerPE = 5
			cfg.JoinQPSPerPE = 0.075
			cfg.OLTP.Placement = placement
			cfg.OLTP.TPSPerNode = 100
			pts = append(pts, comparePoint{series: "OLTP on " + placement.String(), x: float64(n), xlabel: "#PE", cfg: cfg})
		}
	case "1a", "1b", "1c":
		return nil, fmt.Errorf("dynlb: figure %s sweeps the degree through its strategies and has no config axis to compare on (comparable figures: %v)", fig, CompareFigures())
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (comparable: %v)", fig, CompareFigures())
	}
	return pts, nil
}

// RunFigureCompared sweeps a figure's workload configurations under two
// strategies head to head: every (point, replicate) pair simulates once
// under the baseline stratA and once under the challenger stratB on the
// identical replicate seed (common random numbers), all jobs sharing one
// worker pool. Each returned row carries strategy B's across-replicate
// means in the scalar metrics and the paired per-metric deltas and relative
// improvements — with paired-t confidence half-widths at the default 95%
// level — in Row.Cmp (plus B's Replication in Row.Rep when reps >= 2).
//
// Because both strategies of a pair share their seed, the per-replicate
// deltas cancel the workload noise common to the two runs: the paired
// half-widths are tighter than the UnpairedDeltaHW/UnpairedImprovHW an
// independent-seed experiment of the same size yields. Rows are a pure
// function of (fig, scale, seed, strategies, reps): bit-identical at any
// worker count.
//
// Deprecated: use the Experiment API:
//
//	NewExperiment(Figure(fig), WithScale(scale), WithSeed(seed),
//		WithCompare(a, b), WithReps(reps), WithWorkers(workers)).Run(ctx)
func RunFigureCompared(fig string, scale Scale, seed int64, stratA, stratB string, reps, workers int) ([]Row, error) {
	return RunFigureComparedConf(fig, scale, seed, stratA, stratB, reps, DefaultConfidence, workers)
}

// RunFigureComparedConf is RunFigureCompared at an explicit confidence
// level in (0, 1).
//
// Deprecated: use the Experiment API with WithCompare and WithConfidence.
func RunFigureComparedConf(fig string, scale Scale, seed int64, stratA, stratB string, reps int, conf float64, workers int) ([]Row, error) {
	if reps < 1 {
		return nil, fmt.Errorf("dynlb: RunFigureCompared needs reps >= 1, got %d", reps)
	}
	sa, err := core.ByName(stratA)
	if err != nil {
		return nil, err
	}
	sb, err := core.ByName(stratB)
	if err != nil {
		return nil, err
	}
	return NewExperiment(Figure(fig),
		WithScale(scale), WithSeed(seed), WithCompare(sa, sb), WithReps(reps),
		WithConfidence(conf), WithWorkers(workers)).Run(context.Background())
}

// runJob is one independent simulation of an experiment schedule: a full
// configuration plus the strategy to run it under.
type runJob struct {
	cfg Config
	st  core.Strategy
}

// runOut is the outcome of one sweep point handed to a row builder: the
// (possibly replicate-averaged) results plus the replicate aggregates when
// the point ran more than one seed, plus the paired aggregates when the
// point ran a strategy comparison.
type runOut struct {
	res  Results
	rep  *Replication
	cmp  *PairedComparison
	runs []Results // raw per-replicate results (only under WithRuns)
}

func planFigure(fig string, scale Scale, seed int64) (*pointPlan, error) {
	switch fig {
	case "1a":
		return plan1a(scale, seed)
	case "1b":
		return plan1bc(scale, seed, false)
	case "1c":
		return plan1bc(scale, seed, true)
	case "5":
		return plan5(scale, seed)
	case "6":
		return plan6(scale, seed)
	case "7":
		return plan7(scale, seed)
	case "8":
		return plan8(scale, seed)
	case "9a", "9b":
		return plan9(scale, seed, fig)
	default:
		return nil, fmt.Errorf("dynlb: unknown figure %q (known: %v)", fig, Figures())
	}
}

func jobFor(cfg Config, name string) (runJob, error) {
	st, err := core.ByName(name)
	if err != nil {
		return runJob{}, err
	}
	return runJob{cfg: cfg, st: st}, nil
}

func baseCfg(scale Scale, seed int64) Config {
	cfg := config.Default()
	cfg.Seed = seed
	cfg.Warmup, cfg.MeasureTime = scale.windows()
	return cfg
}

// fig1Degrees are the degree sweep points of the Fig. 1 curves.
var fig1Degrees = []int{1, 2, 4, 8, 12, 16, 20, 24, 32, 40}

// plan1a: the single-user response-time curve — analytic model plus
// simulated single-user points at fixed degrees with RANDOM selection. The
// analytic rows have no simulation dependencies and stream immediately.
func plan1a(scale Scale, seed int64) (*pointPlan, error) {
	cfg := baseCfg(scale, seed)
	cfg.NPE = 40
	p := &pointPlan{}
	for _, deg := range fig1Degrees {
		c := cfg
		c.JoinQPSPerPE = 0 // single-user closed loop
		st, err := FixedDegree(deg, "RANDOM")
		if err != nil {
			return nil, err
		}
		p.jobs = append(p.jobs, runJob{cfg: c, st: st})
	}
	curve := ResponseTimeCurve(cfg, cfg.NPE)
	for deg := 1; deg <= cfg.NPE; deg++ {
		x, rt := float64(deg), curve[deg-1]
		p.rows = append(p.rows, rowSpec{build: func([]runOut) (Row, error) {
			return Row{
				Figure: "1a", Series: "analytic", X: x, XLabel: "degree",
				JoinRTMS: rt,
			}, nil
		}})
	}
	for i, deg := range fig1Degrees {
		x := float64(deg)
		p.rows = append(p.rows, rowSpec{deps: []int{i}, build: func(outs []runOut) (Row, error) {
			return Row{
				Figure: "1a", Series: "simulated", X: x, XLabel: "degree",
				JoinRTMS: outs[0].res.JoinRT.MeanMS, Res: outs[0].res, Rep: outs[0].rep,
			}, nil
		}})
	}
	return p, nil
}

// plan1bc: response time vs degree in multi-user mode — under CPU
// contention (1b) the optimum shifts below the single-user optimum; under a
// memory/disk bottleneck (1c) it shifts above.
func plan1bc(scale Scale, seed int64, memBound bool) (*pointPlan, error) {
	figure := "1b"
	if memBound {
		figure = "1c"
	}
	p := &pointPlan{}
	for i, deg := range fig1Degrees {
		cfg := baseCfg(scale, seed)
		cfg.NPE = 40
		if memBound {
			cfg.BufferPages = 5
			cfg.DisksPerPE = 1
			cfg.JoinQPSPerPE = 0.05
		} else {
			cfg.JoinQPSPerPE = 0.3 // drives high CPU utilization
		}
		st, err := FixedDegree(deg, "RANDOM")
		if err != nil {
			return nil, err
		}
		p.jobs = append(p.jobs, runJob{cfg: cfg, st: st})
		x := float64(deg)
		p.rows = append(p.rows, rowSpec{deps: []int{i}, build: func(outs []runOut) (Row, error) {
			res := outs[0].res
			return Row{
				Figure: figure, Series: "multi-user", X: x, XLabel: "degree",
				JoinRTMS: res.JoinRT.MeanMS,
				Extra:    map[string]float64{"cpu%": 100 * res.CPUUtil, "tempIO": float64(res.TempIOPages)},
				Res:      res,
				Rep:      outs[0].rep,
			}, nil
		}})
	}
	return p, nil
}

// figSizes are the system sizes of the Fig. 5/6/9 sweeps.
var figSizes = []int{10, 20, 40, 60, 80}

// sizeSweep accumulates (config, series label, system size) sweep points
// into a pointPlan whose rows mirror the points one to one. It is the
// shared scaffold of every "#PE on the x axis" figure; post, if non-nil,
// decorates each row from its run.
type sizeSweep struct {
	fig  string
	post func(r *Row, res Results)
	p    pointPlan
}

func (s *sizeSweep) add(cfg Config, name, label string, n int) error {
	j, err := jobFor(cfg, name)
	if err != nil {
		return err
	}
	idx := len(s.p.jobs)
	s.p.jobs = append(s.p.jobs, j)
	fig, post := s.fig, s.post
	s.p.rows = append(s.p.rows, rowSpec{deps: []int{idx}, build: func(outs []runOut) (Row, error) {
		r := sizeRow(fig, label, n, outs[0])
		if post != nil {
			post(&r, outs[0].res)
		}
		return r, nil
	}})
	return nil
}

func (s *sizeSweep) plan() *pointPlan {
	p := s.p
	return &p
}

// planBySize builds the standard "strategies × system sizes plus
// single-user reference" sweep shared by Figs. 5 and 6, expanding the
// shared workload axis (planCompareFigure) across the strategy list.
func planBySize(fig string, scale Scale, seed int64, strategies []string) (*pointPlan, error) {
	pts, err := planCompareFigure("6", scale, seed) // figs 5 and 6 share the workload axis
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: fig}
	for _, pt := range pts {
		n := int(pt.x)
		if pt.singleUser {
			// Single-user reference with psu-opt processors.
			if err := sweep.add(pt.cfg, "psu-opt+RANDOM", "single-user (psu-opt)", n); err != nil {
				return nil, err
			}
			continue
		}
		for _, name := range strategies {
			if err := sweep.add(pt.cfg, name, name, n); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(), nil
}

func plan5(scale Scale, seed int64) (*pointPlan, error) {
	return planBySize("5", scale, seed, []string{
		"psu-noIO+RANDOM", "psu-noIO+LUC", "psu-noIO+LUM",
		"psu-opt+RANDOM", "psu-opt+LUC", "psu-opt+LUM",
	})
}

func plan6(scale Scale, seed int64) (*pointPlan, error) {
	return planBySize("6", scale, seed, []string{
		"MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+RANDOM", "pmu-cpu+LUM", "OPT-IO-CPU",
	})
}

// plan7 uses the memory-bound environment: one tenth of the memory, one
// disk per PE, lower arrival rates; it reports the achieved degrees
// alongside the response times (the paper annotates them on the bars).
func plan7(scale Scale, seed int64) (*pointPlan, error) {
	pts, err := planCompareFigure("7", scale, seed)
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: "7"}
	for _, pt := range pts {
		for _, name := range []string{"pmu-cpu+LUM", "MIN-IO-SUOPT"} {
			if err := sweep.add(pt.cfg, name, name+" / "+pt.series, int(pt.x)); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(), nil
}

// fig8Rates are the per-selectivity arrival rates (QPS/PE at 60 PE) chosen,
// like the paper's, so that at least one resource is highly utilized.
var fig8Rates = map[float64]float64{
	0.001: 0.90,
	0.01:  0.30,
	0.02:  0.16,
	0.05:  0.065,
}

func plan8(scale Scale, seed int64) (*pointPlan, error) {
	strategies := []string{
		"psu-noIO+LUM", "MIN-IO", "MIN-IO-SUOPT", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	pts, err := planCompareFigure("8", scale, seed)
	if err != nil {
		return nil, err
	}
	// The psu-opt+RANDOM baseline of each selectivity is itself a sweep
	// point: job layout is [base, strategies...] per selectivity, and every
	// row depends on its own point plus the baseline point, so the
	// improvement percentages stream as soon as both are simulated.
	p := &pointPlan{}
	perSel := 1 + len(strategies)
	for si, pt := range pts {
		for _, name := range append([]string{"psu-opt+RANDOM"}, strategies...) {
			j, err := jobFor(pt.cfg, name)
			if err != nil {
				return nil, err
			}
			p.jobs = append(p.jobs, j)
		}
		baseIdx := si * perSel
		for ni, name := range strategies {
			x, xlabel, series := pt.x, pt.xlabel, name
			p.rows = append(p.rows, rowSpec{deps: []int{baseIdx, baseIdx + 1 + ni}, build: func(outs []runOut) (Row, error) {
				base, out := outs[0].res, outs[1]
				res := out.res
				improvement := 0.0
				if base.JoinRT.MeanMS > 0 {
					improvement = 100 * (base.JoinRT.MeanMS - res.JoinRT.MeanMS) / base.JoinRT.MeanMS
				}
				return Row{
					Figure: "8", Series: series, X: x, XLabel: xlabel,
					JoinRTMS: res.JoinRT.MeanMS,
					Extra: map[string]float64{
						"improvement%": improvement,
						"baselineMS":   base.JoinRT.MeanMS,
						"degree":       res.AvgJoinDegree,
					},
					Res: res,
					Rep: out.rep,
				}, nil
			}})
		}
	}
	return p, nil
}

func plan9(scale Scale, seed int64, figure string) (*pointPlan, error) {
	strategies := []string{
		"psu-opt+RANDOM", "psu-noIO+RANDOM", "psu-noIO+LUM", "pmu-cpu+LUM", "OPT-IO-CPU",
	}
	pts, err := planCompareFigure(figure, scale, seed)
	if err != nil {
		return nil, err
	}
	sweep := sizeSweep{fig: figure, post: func(r *Row, res Results) {
		r.Extra["oltpRTms"] = res.OLTPRT.MeanMS
	}}
	for _, pt := range pts {
		for _, name := range strategies {
			if err := sweep.add(pt.cfg, name, name, int(pt.x)); err != nil {
				return nil, err
			}
		}
	}
	return sweep.plan(), nil
}

// sizeRow shapes a "#PE on the x axis" figure point; it is the custom
// sweeps' sweepRow with the figure sweeps' fixed axis label.
func sizeRow(fig, series string, n int, out runOut) Row {
	return sweepRow(fig, series, float64(n), "#PE", out)
}

// FormatRows renders rows as an aligned text table grouped by x value.
func FormatRows(rows []Row) string {
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	var xs []float64
	seen := map[float64]bool{}
	for _, r := range rows {
		if !seen[r.X] {
			seen[r.X] = true
			xs = append(xs, r.X)
		}
	}
	sort.Float64s(xs)
	doc := FigureDoc(rows[0].Figure)
	out := "Figure " + rows[0].Figure
	if doc != "" {
		out += ": " + doc
	}
	out += "\n"
	for _, x := range xs {
		out += fmt.Sprintf("%s = %g\n", rows[0].XLabel, x)
		for _, r := range rows {
			if r.X != x {
				continue
			}
			line := fmt.Sprintf("  %-38s rt=%9.1fms", r.Series, r.JoinRTMS)
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf("  %s=%.1f", k, r.Extra[k])
			}
			if r.Res.JoinRT.N > 0 {
				line += fmt.Sprintf("  (n=%d ±%.0f)", r.Res.JoinRT.N, r.Res.JoinRT.HW95MS)
			}
			if r.Rep != nil {
				line += fmt.Sprintf("  [%d reps: ±%.1fms @%g%%]", r.Rep.Reps, r.Rep.JoinRTMS.HW, 100*r.Rep.Conf)
			}
			if r.Cmp != nil {
				c := r.Cmp.JoinRTMS
				line += fmt.Sprintf("  [%s vs %s: Δ%+.1fms ±%.1f, improv %.1f%% ±%.1f (unpaired ±%.1f)]",
					r.Cmp.StrategyB, r.Cmp.StrategyA, c.Delta.Mean, c.Delta.HW,
					c.Improv.Mean, c.Improv.HW, c.UnpairedImprovHW)
			}
			out += line + "\n"
		}
	}
	return out
}
