// Homogeneous workload comparison (the Fig. 5/6 scenario): concurrent join
// queries only, 0.25 queries per second per PE. Static strategies fix the
// degree of join parallelism at compile time; dynamic ones adapt it to the
// current CPU and memory situation. On larger systems the dynamic
// strategies keep response times flat where static psu-opt placement
// saturates the CPUs.
//
// The strategy × system-size grid is one Experiment over a custom Sweep:
// the system size is the x axis, the strategies fan out per point, and all
// simulations share one worker pool.
package main

import (
	"context"
	"fmt"
	"log"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.JoinQPSPerPE = 0.25
	cfg.MeasureTime = dynlb.Seconds(12)

	sweep := dynlb.Sweep{
		Name: "homogeneous",
		Base: cfg,
		Strategies: []dynlb.Strategy{
			dynlb.MustStrategy("psu-opt+RANDOM"), // static degree, random placement: the baseline
			dynlb.MustStrategy("psu-noIO+LUM"),   // minimal no-overflow degree on the emptiest nodes
			dynlb.MustStrategy("pmu-cpu+LUM"),    // degree reduced with CPU load (formula 3.2)
			dynlb.MustStrategy("OPT-IO-CPU"),     // integrated: memory-driven degree under a CPU cap
		},
		Axes: []dynlb.Axis{
			dynlb.IntAxis("#PE", func(c *dynlb.Config, n int) { c.NPE = n }, 20, 60),
		},
	}

	rows, err := dynlb.NewExperiment(sweep).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	lastX := -1.0
	for _, r := range rows {
		if r.X != lastX {
			if lastX >= 0 {
				fmt.Println()
			}
			fmt.Printf("system size %.0f PEs, 0.25 join QPS/PE:\n", r.X)
			lastX = r.X
		}
		fmt.Printf("  %-16s rt=%7.0f ms   degree=%5.1f   cpu=%3.0f%%   tempIO=%6.0f pages\n",
			r.Series, r.JoinRTMS, r.Extra["degree"], r.Extra["cpu%"], r.Extra["tempIO"])
	}
}
