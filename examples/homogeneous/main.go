// Homogeneous workload comparison (the Fig. 5/6 scenario): concurrent join
// queries only, 0.25 queries per second per PE. Static strategies fix the
// degree of join parallelism at compile time; dynamic ones adapt it to the
// current CPU and memory situation. On larger systems the dynamic
// strategies keep response times flat where static psu-opt placement
// saturates the CPUs.
package main

import (
	"fmt"
	"log"

	"dynlb"
)

func main() {
	strategies := []string{
		"psu-opt+RANDOM", // static degree, random placement: the baseline
		"psu-noIO+LUM",   // minimal no-overflow degree on the emptiest nodes
		"pmu-cpu+LUM",    // degree reduced with CPU load (formula 3.2)
		"OPT-IO-CPU",     // integrated: memory-driven degree under a CPU cap
	}

	for _, n := range []int{20, 60} {
		fmt.Printf("system size %d PEs, 0.25 join QPS/PE:\n", n)
		for _, name := range strategies {
			cfg := dynlb.DefaultConfig()
			cfg.NPE = n
			cfg.JoinQPSPerPE = 0.25
			cfg.MeasureTime = dynlb.Seconds(12)
			res, err := dynlb.Run(cfg, dynlb.MustStrategy(name))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-16s rt=%7.0f ms   degree=%5.1f   cpu=%3.0f%%   tempIO=%6d pages\n",
				name, res.JoinRT.MeanMS, res.AvgJoinDegree, 100*res.CPUUtil, res.TempIOPages)
		}
		fmt.Println()
	}
}
