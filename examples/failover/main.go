// Failure injection: a PE crashes mid-measurement and recovers, and the
// windowed metrics show which strategy survives it. The same fault — PE 3
// offline for four seconds — runs under the failure-blind static baseline
// (degree fixed at planning time, random placement) and the failure-aware
// integrated dynamic strategy (OPT-IO-CPU), paired on identical seeds. The
// static selection keeps routing join work to the dead PE, so its attempts
// abort and retry with backoff; the dynamic strategy reads the control
// node's health view and sheds the dead PE, keeping availability high and
// recovering its response time as soon as the PE returns.
package main

import (
	"context"
	"fmt"
	"log"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 20
	cfg.JoinQPSPerPE = 0.3
	cfg.Warmup = dynlb.Seconds(2)
	cfg.MeasureTime = dynlb.Seconds(16)
	cfg.MetricsWindow = dynlb.Seconds(2)
	// Crash-and-recover: PE 3 goes down 4s into the measurement and comes
	// back at 8s. Fault times align with the windows, so the dip and the
	// recovery land in predictable rows of the table below.
	faults, err := dynlb.ParseFaults("crash(pe=3,at=4s,down=4s)")
	if err != nil {
		log.Fatal(err)
	}
	cfg.Faults = faults

	static := dynlb.MustStrategy("psu-opt+RANDOM")
	dynamic := dynlb.MustStrategy("OPT-IO-CPU")

	rows, err := dynlb.NewExperiment(
		dynlb.Sweep{Name: "failover", Base: cfg},
		dynlb.WithCompare(static, dynamic),
		dynlb.WithReps(3),
		dynlb.WithRuns(), // keep per-replicate Results: each side's windows
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	row := rows[0]

	// The raw runs interleave {A, B} per replicate seed; aggregate each side
	// separately so both window series are across-replicate means.
	var runsA, runsB []dynlb.Results
	for i, r := range row.Runs {
		if i%2 == 0 {
			runsA = append(runsA, r)
		} else {
			runsB = append(runsB, r)
		}
	}
	meanA, _ := dynlb.AggregateResults(runsA, dynlb.DefaultConfidence)
	meanB, _ := dynlb.AggregateResults(runsB, dynlb.DefaultConfidence)

	fmt.Printf("fault %s on %d PEs, %d paired replicates, %d windows of %.0f ms:\n\n",
		cfg.Faults.String(), cfg.NPE, len(runsA), len(meanA.Windows), meanA.WindowMS)
	fmt.Printf("%10s   %22s   %22s\n", "", meanA.Strategy, meanB.Strategy)
	fmt.Printf("%10s   %12s %9s   %12s %9s\n", "window", "rt", "avail", "rt", "avail")
	for k := range meanA.Windows {
		wa, wb := meanA.Windows[k], meanB.Windows[k]
		down := " "
		if wa.StartMS >= 4000 && wa.StartMS < 8000 {
			down = "x" // PE 3 is offline in this window
		}
		fmt.Printf("%7.0f ms %s %10.1f ms %9.3f   %10.1f ms %9.3f\n",
			wa.EndMS, down, wa.RTMeanMS, wa.Availability, wb.RTMeanMS, wb.Availability)
	}

	report := func(name string, r dynlb.Results) {
		fmt.Printf("%-16s %3d aborts, %3d retries, availability %.4f, peak rt %8.1f ms, ",
			name, r.Aborts, r.Retries, r.Availability, r.PeakWindowRTMS)
		if r.RecoveryMS < 0 {
			fmt.Println("never back within 10% of pre-crash rt")
		} else {
			fmt.Printf("recovered in %.0f ms\n", r.RecoveryMS)
		}
	}
	fmt.Println()
	report(meanA.Strategy+":", meanA)
	report(meanB.Strategy+":", meanB)

	p := *row.Cmp
	fmt.Printf("\nwhole-run rt:  %.1f ms -> %.1f ms (improv %.1f%% ±%.1f%%) — the dynamic\n",
		p.JoinRTMS.A, p.JoinRTMS.B, p.JoinRTMS.Improv.Mean, p.JoinRTMS.Improv.HW)
	fmt.Println("strategy reads the health view and routes around the dead PE; the static")
	fmt.Println("baseline keeps hitting it and pays in aborted work and availability.")
}
