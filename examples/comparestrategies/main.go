// Paired strategy comparison under common random numbers (the Fig. 8
// question: how much does dynamic load balancing buy over the static
// baseline?). A WithCompare experiment simulates both strategies on
// identical replicate seeds, so the per-replicate deltas cancel the
// workload noise the two runs share — the paired confidence interval on
// the relative improvement is much tighter than the interval independent
// seeds would give at the same replicate count.
package main

import (
	"context"
	"fmt"
	"log"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 60
	cfg.JoinQPSPerPE = 0.25
	cfg.Warmup = dynlb.Seconds(2)
	cfg.MeasureTime = dynlb.Seconds(10)

	baseline := dynlb.MustStrategy("psu-opt+RANDOM") // static degree, random placement
	dynamic := dynlb.MustStrategy("OPT-IO-CPU")      // integrated dynamic strategy

	rows, err := dynlb.NewExperiment(
		dynlb.Sweep{Name: "compare", Base: cfg}, // one configuration; WithCompare adds the strategy pair
		dynlb.WithCompare(baseline, dynamic),
		dynlb.WithReps(5),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	p := *rows[0].Cmp
	fmt.Printf("%s (A) vs %s (B), %d PEs, %d paired replicates:\n\n",
		p.StrategyA, p.StrategyB, cfg.NPE, p.Reps)
	fmt.Printf("  join rt:   %8.1f ms  ->  %8.1f ms   improv %.1f%% ±%.1f%% (95%% CI)\n",
		p.JoinRTMS.A, p.JoinRTMS.B, p.JoinRTMS.Improv.Mean, p.JoinRTMS.Improv.HW)
	fmt.Printf("  temp I/O:  %8.0f pages -> %6.0f pages\n", p.TempIO.A, p.TempIO.B)
	fmt.Printf("  cpu util:  %8.1f %%  ->  %8.1f %%\n", 100*p.CPUUtil.A, 100*p.CPUUtil.B)

	fmt.Printf("\nwhy pairing: replicate correlation %.3f — the same seeds hit both\n", p.JoinRTMS.Corr)
	fmt.Printf("strategies with the same workload, so the improvement CI is ±%.1f%%\n", p.JoinRTMS.Improv.HW)
	fmt.Printf("paired instead of ±%.1f%% with independent seeds.\n", p.JoinRTMS.UnpairedImprovHW)
}
