// Serveclient drives the dynlbd experiment service over HTTP: it submits
// an experiment document, streams the rows back over SSE in the library's
// deterministic order, and optionally writes them to CSV —
// byte-identical to running the same sweep through cmd/experiments,
// because rows are a pure function of the request.
//
// With -url it talks to a running daemon (the CI `service` job uses it
// this way to prove server ≡ library with cmp, and -expect-cached to
// assert the resubmit is served from the result cache):
//
//	dynlbd -addr :8080 &
//	serveclient -url http://localhost:8080 -fig 1c -scale quick -out rows.csv
//	serveclient -url http://localhost:8080 -fig 1c -scale quick -expect-cached
//
// Without -url it self-hosts: the whole service stack — scheduler, worker
// pool, SSE streaming, result cache — runs in-process on a loopback
// listener, the same sweep is submitted twice, and the second submit must
// come back from the cache with identical rows. That makes the example a
// self-contained demonstration (and smoke test) of the dogfooding story:
// the scheduler is itself a load balancer in front of the load-balancing
// simulator.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"dynlb"
	"dynlb/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		url          = flag.String("url", "", "dynlbd base URL; empty self-hosts the service in-process")
		fig          = flag.String("fig", "1c", "figure to submit (see dynlb.Figures)")
		scale        = flag.String("scale", "quick", "simulation scale: quick, normal, full")
		reps         = flag.Int("reps", 0, "replicates per sweep point (0 = option not sent)")
		faults       = flag.String("faults", "", "fault-plan spec to inject, e.g. crash(pe=3,at=20s,down=10s)")
		out          = flag.String("out", "", "write the streamed rows to this CSV file")
		expectCached = flag.Bool("expect-cached", false, "fail unless the submit is served from the result cache")
	)
	flag.Parse()

	req := &dynlb.ExperimentRequest{Figure: *fig, Scale: *scale, Reps: *reps, Faults: *faults}
	base := *url
	if base == "" {
		// Self-hosted mode: boot the full service on a loopback listener.
		sched := service.New(0, 4, 8)
		defer sched.Close()
		ts := httptest.NewServer(service.NewServer(sched))
		defer ts.Close()
		base = ts.URL
		fmt.Printf("self-hosted dynlbd at %s\n", base)
	}

	st, rows, err := submitAndStream(base, req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("job %s: %d rows, %d simulations executed, cached=%v\n",
		st.ID, len(rows), st.Simulated, st.Cached)
	if *expectCached && !st.Cached {
		fmt.Fprintln(os.Stderr, "expected a cache hit, but the job was simulated")
		return 1
	}
	if *out != "" {
		if err := writeCSV(*out, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %d rows to %s\n", len(rows), *out)
	}

	if *url == "" {
		// Self-hosted demo: resubmit and require a byte-identical cache hit.
		st2, rows2, err := submitAndStream(base, req)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		var a, b bytes.Buffer
		if err := dynlb.WriteRowsCSV(&a, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := dynlb.WriteRowsCSV(&b, rows2); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if !st2.Cached || st2.Simulated != 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
			fmt.Fprintf(os.Stderr, "resubmit was not a byte-identical cache hit (cached=%v simulated=%d)\n",
				st2.Cached, st2.Simulated)
			return 1
		}
		fmt.Printf("resubmit job %s: served from cache, 0 simulations, identical bytes\n", st2.ID)
	}
	return 0
}

// submitAndStream posts the request and collects the job's SSE row stream.
func submitAndStream(base string, req *dynlb.ExperimentRequest) (service.Status, []dynlb.Row, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return service.Status{}, nil, err
	}
	resp, err := http.Post(base+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		return service.Status{}, nil, err
	}
	var st service.Status
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		dec.Decode(&e) //nolint:errcheck
		resp.Body.Close()
		return service.Status{}, nil, fmt.Errorf("submit: %s (%s)", resp.Status, e.Error)
	}
	if err := dec.Decode(&st); err != nil {
		resp.Body.Close()
		return service.Status{}, nil, fmt.Errorf("submit: decode status: %w", err)
	}
	resp.Body.Close()

	stream, err := http.Get(fmt.Sprintf("%s/v1/experiments/%s/rows", base, st.ID))
	if err != nil {
		return st, nil, err
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return st, nil, fmt.Errorf("rows: %s", stream.Status)
	}
	rows, final, err := collectSSE(stream.Body)
	if err != nil {
		return st, nil, err
	}
	if final != nil {
		st = *final
	}
	return st, rows, nil
}

// collectSSE parses an SSE stream into rows and the final status carried
// by the done event.
func collectSSE(r io.Reader) ([]dynlb.Row, *service.Status, error) {
	var (
		rows  []dynlb.Row
		final *service.Status
		event string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "row":
				var row dynlb.Row
				if err := json.Unmarshal([]byte(data), &row); err != nil {
					return nil, nil, fmt.Errorf("decode row: %w", err)
				}
				rows = append(rows, row)
			case "done":
				var st service.Status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					return nil, nil, fmt.Errorf("decode done: %w", err)
				}
				final = &st
			case "error":
				var e struct {
					Error string `json:"error"`
				}
				json.Unmarshal([]byte(data), &e) //nolint:errcheck
				return nil, nil, fmt.Errorf("job failed: %s", e.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if final == nil {
		return nil, nil, fmt.Errorf("stream ended without a done event")
	}
	return rows, final, nil
}

// writeCSV writes rows through the library's CSV writer, surfacing close
// errors so a truncated file never looks like success.
func writeCSV(path string, rows []dynlb.Row) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return dynlb.WriteRowsCSV(f, rows)
}
