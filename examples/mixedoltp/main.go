// Heterogeneous (query/OLTP) workload — the Fig. 9 scenario. Debit-credit
// transactions run at 100 TPS on the nodes holding relation B (80% of the
// system), loading their CPUs, disks and buffers, while join queries arrive
// at 0.075 QPS/PE. Static random placement keeps hitting the busy OLTP
// nodes; the dynamic strategies see the skewed utilization through the
// control node and route join work around it. OPT-IO-CPU couples the degree
// decision with the memory-aware placement and fares best — the paper's
// headline result.
package main

import (
	"fmt"
	"log"

	"dynlb"
)

func main() {
	strategies := []string{
		"psu-opt+RANDOM",
		"psu-noIO+RANDOM",
		"psu-noIO+LUM",
		"pmu-cpu+LUM",
		"OPT-IO-CPU",
	}

	fmt.Println("40 PEs; OLTP at 100 TPS on each B node (80% of PEs); joins at 0.075 QPS/PE")
	fmt.Println()
	for _, name := range strategies {
		cfg := dynlb.DefaultConfig()
		cfg.NPE = 40
		cfg.DisksPerPE = 5
		cfg.JoinQPSPerPE = 0.075
		cfg.OLTP.Placement = dynlb.OLTPOnBNode
		cfg.OLTP.TPSPerNode = 100
		cfg.MeasureTime = dynlb.Seconds(15)

		res, err := dynlb.Run(cfg, dynlb.MustStrategy(name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s joinRT=%7.0f ms  degree=%5.1f  |  oltpRT=%6.1f ms (%d txns)\n",
			name, res.JoinRT.MeanMS, res.AvgJoinDegree, res.OLTPRT.MeanMS, res.OLTPDone)
	}
}
