// Distributed demonstrates the coordinator + worker-fleet execution path
// end to end, self-hosted in one process: it starts two dynlb workers on
// loopback listeners, runs a quick sweep through a coordinator sharding
// slots across them, and verifies the merged rows are byte-identical to
// running the same experiment locally — the distributed tentpole's core
// guarantee. It then prints where every slot ran.
//
// Against a real fleet the same wiring is two flags away:
//
//	dynlbworker -addr :9090 &
//	dynlbworker -addr :9091 &
//	experiments -fig 1c -scale quick \
//	    -dist http://localhost:9090,http://localhost:9091 -placement placement.csv
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	"dynlb"
	"dynlb/internal/dist"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 8
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = dynlb.Seconds(1)
	cfg.MeasureTime = dynlb.Seconds(3)
	sweep := dynlb.Sweep{
		Name: "distributed-demo",
		Base: cfg,
		Strategies: []dynlb.Strategy{
			dynlb.MustStrategy("psu-opt+RANDOM"),
			dynlb.MustStrategy("OPT-IO-CPU"),
		},
		Axes: []dynlb.Axis{
			dynlb.IntAxis("#PE", func(c *dynlb.Config, n int) { c.NPE = n }, 4, 6, 8),
		},
	}

	// Local baseline: the bytes every distributed run must reproduce.
	local, err := dynlb.NewExperiment(sweep, dynlb.WithReps(2)).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// Two in-process workers on loopback — stand-ins for dynlbworker
	// instances on other machines.
	w1 := httptest.NewServer(dist.NewWorker(2))
	defer w1.Close()
	w2 := httptest.NewServer(dist.NewWorker(2))
	defer w2.Close()

	coord := dist.New(dist.Options{
		Workers:      []string{w1.URL, w2.URL},
		ChunkJobs:    2,
		DisableLocal: true, // prove every job really crossed the wire
	})
	defer coord.Close()

	rows, err := dynlb.NewExperiment(sweep,
		dynlb.WithReps(2),
		dynlb.WithDistributed(coord),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := dynlb.WriteRowsCSV(&a, local); err != nil {
		log.Fatal(err)
	}
	if err := dynlb.WriteRowsCSV(&b, rows); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		log.Fatal("distributed rows differ from local rows")
	}
	fmt.Printf("distributed == local: %d rows byte-identical across 2 workers\n\n", len(rows))

	rep := coord.Report()
	fmt.Printf("placement (%d workers live at start, %d redispatches, %d duplicates):\n",
		rep.LiveAtStart, rep.Redispatches, rep.Duplicates)
	if err := rep.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
