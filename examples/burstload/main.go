// Non-stationary workload: a flash crowd hits a steady join stream and the
// windowed metrics show how each strategy rides it out. The same burst —
// arrival rate ×3 with extra skew toward the hot partition for two seconds
// mid-measurement — runs under the static baseline (degree fixed at
// planning time, random placement) and the integrated dynamic strategy
// (OPT-IO-CPU), paired on identical seeds. Per-second windows expose what
// the whole-run mean hides: the response-time spike at burst onset, and
// how long each strategy needs to get back to within 10% of its pre-burst
// response time.
package main

import (
	"context"
	"fmt"
	"log"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 20
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = dynlb.Seconds(2)
	cfg.MeasureTime = dynlb.Seconds(10)
	// Flash crowd: 2s..4s of the measurement window at 3x the arrival rate
	// with skew +1.5 toward the hot partition; 1s metrics windows. Zero-rt
	// windows mid-burst are honest: the burst's joins are still in flight,
	// so nothing completes until the surge drains.
	cfg.Profile = dynlb.FlashCrowd(dynlb.Seconds(2), dynlb.Seconds(2), 3, 1.5)
	cfg.MetricsWindow = dynlb.Seconds(1)

	static := dynlb.MustStrategy("psu-opt+RANDOM")
	dynamic := dynlb.MustStrategy("OPT-IO-CPU")

	rows, err := dynlb.NewExperiment(
		dynlb.Sweep{Name: "burst", Base: cfg},
		dynlb.WithCompare(static, dynamic),
		dynlb.WithReps(3),
		dynlb.WithRuns(), // keep per-replicate Results: each side's windows
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	row := rows[0]

	// The raw runs interleave {A, B} per replicate seed; aggregate each side
	// separately so both window series are across-replicate means.
	var runsA, runsB []dynlb.Results
	for i, r := range row.Runs {
		if i%2 == 0 {
			runsA = append(runsA, r)
		} else {
			runsB = append(runsB, r)
		}
	}
	meanA, _ := dynlb.AggregateResults(runsA, dynlb.DefaultConfidence)
	meanB, _ := dynlb.AggregateResults(runsB, dynlb.DefaultConfidence)

	fmt.Printf("flash crowd %s on %d PEs, %d paired replicates, %d windows of %.0f ms:\n\n",
		cfg.Profile.String(), cfg.NPE, len(runsA), len(meanA.Windows), meanA.WindowMS)
	fmt.Printf("%10s %16s %16s\n", "window", meanA.Strategy, meanB.Strategy)
	for k := range meanA.Windows {
		wa, wb := meanA.Windows[k], meanB.Windows[k]
		burst := " "
		if wa.JoinTPS > 1.5*float64(cfg.NPE)*cfg.JoinQPSPerPE {
			burst = "*" // arrival burst visible in this window's throughput
		}
		fmt.Printf("%7.0f ms %s %9.1f ms    %12.1f ms\n",
			wa.EndMS, burst, wa.RTMeanMS, wb.RTMeanMS)
	}

	report := func(name string, r dynlb.Results) {
		fmt.Printf("%-14s peak window rt %8.1f ms, ", name, r.PeakWindowRTMS)
		if r.RecoveryMS < 0 {
			fmt.Println("never back within 10% of pre-burst rt")
		} else {
			fmt.Printf("recovered in %.0f ms\n", r.RecoveryMS)
		}
	}
	fmt.Println()
	report(meanA.Strategy+":", meanA)
	report(meanB.Strategy+":", meanB)

	p := *row.Cmp
	fmt.Printf("\nwhole-run rt:  %.1f ms -> %.1f ms (improv %.1f%% ±%.1f%%) — the windows\n",
		p.JoinRTMS.A, p.JoinRTMS.B, p.JoinRTMS.Improv.Mean, p.JoinRTMS.Improv.HW)
	fmt.Println("show where that difference is earned: inside and after the burst.")
}
