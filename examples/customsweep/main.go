// Custom sweep over a configuration axis the paper never ran: join
// response time vs the number of disks per PE, under a memory-bound
// environment where temporary-file I/O dominates. With few disks the
// spill traffic queues; adding spindles drains it until the CPU becomes
// the bottleneck.
//
// The sweep needs no fork of the figure planners: a Sweep names the axis
// (disks/PE on x), the contending strategies, and the replication and
// progress streaming plug in as Experiment options. Cancelling the context
// (Ctrl-C) stops the sweep promptly.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 20
	cfg.BufferPages = 5 // memory-bound: hash tables spill to temporary files
	cfg.JoinQPSPerPE = 0.05
	cfg.Warmup = dynlb.Seconds(2)
	cfg.MeasureTime = dynlb.Seconds(8)

	sweep := dynlb.Sweep{
		Name: "rt-vs-disks",
		Base: cfg,
		Strategies: []dynlb.Strategy{
			dynlb.MustStrategy("pmu-cpu+LUM"),  // CPU-driven degree: blind to the I/O bottleneck
			dynlb.MustStrategy("MIN-IO-SUOPT"), // raises the degree to avoid temp I/O
		},
		Axes: []dynlb.Axis{
			dynlb.IntAxis("disks/PE", func(c *dynlb.Config, d int) { c.DisksPerPE = d }, 1, 2, 4, 10),
		},
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	done, total := 0, len(sweep.Axes[0].Values)*len(sweep.Strategies)
	rows, err := dynlb.NewExperiment(sweep,
		dynlb.WithReps(3), // 3 deterministic seeds per point -> 95% CIs in Row.Rep
		dynlb.WithProgress(func(r dynlb.Row) {
			done++
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s @ %s=%g done\n", done, total, r.Series, r.XLabel, r.X)
		}),
	).Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresponse time vs disks per PE (20 PEs, 5-page buffers, 0.05 QPS/PE):")
	for _, r := range rows {
		fmt.Printf("  %-14s disks=%-3.0f rt=%8.1f ms ±%-6.1f tempIO=%7.0f pages  disk=%3.0f%%\n",
			r.Series, r.X, r.JoinRTMS, r.Rep.JoinRTMS.HW, r.Extra["tempIO"], r.Extra["disk%"])
	}

	// The same rows export to CSV or JSON for plotting:
	//	dynlb.WriteRowsJSON(os.Stdout, rows)
}
