// Quickstart: simulate a 40-node Shared Nothing system executing parallel
// hash-join queries in multi-user mode under the paper's integrated
// OPT-IO-CPU load-balancing strategy, and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"dynlb"
)

func main() {
	cfg := dynlb.DefaultConfig()
	cfg.NPE = 40               // processing elements
	cfg.JoinQPSPerPE = 0.25    // multi-user join arrivals (paper Fig. 5/6 rate)
	cfg.ScanSelectivity = 0.01 // 1% selections on both join inputs
	cfg.MeasureTime = dynlb.Seconds(15)

	// The planning constants the strategies use (Section 2):
	fmt.Printf("single-user optimum psu-opt = %d join processors\n", dynlb.PsuOpt(cfg))
	fmt.Printf("no-overflow minimum psu-noIO = %d join processors\n", dynlb.PsuNoIO(cfg))

	strategy := dynlb.MustStrategy("OPT-IO-CPU")
	res, err := dynlb.Run(cfg, strategy)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s on %d PEs:\n", strategy.Name(), cfg.NPE)
	fmt.Printf("  %d joins completed, mean response time %.0f ms (p95 %.0f ms)\n",
		res.JoinsDone, res.JoinRT.MeanMS, res.JoinRT.P95MS)
	fmt.Printf("  average degree of join parallelism: %.1f\n", res.AvgJoinDegree)
	fmt.Printf("  CPU %.0f%%, disk %.0f%%, memory %.0f%% utilized\n",
		100*res.CPUUtil, 100*res.DiskUtil, 100*res.MemUtil)
	fmt.Printf("  temporary file I/O: %d pages\n", res.TempIOPages)
}
