// Memory-bound environment — the Fig. 7 scenario: buffers shrunk to one
// tenth (5 pages per PE) and a single disk per PE for temporary files. Hash
// tables no longer fit single nodes, so the degree of join parallelism must
// *grow* to spread the memory requirement — the opposite of the CPU-bound
// reflex of reducing parallelism. MIN-IO-SUOPT raises its degree with the
// memory situation; pmu-cpu stays at the CPU-derived optimum and spills.
package main

import (
	"fmt"
	"log"

	"dynlb"
)

func main() {
	mk := func(n int, qps float64) dynlb.Config {
		cfg := dynlb.DefaultConfig()
		cfg.NPE = n
		cfg.BufferPages = 5 // memory reduced by a factor of 10
		cfg.DisksPerPE = 1  // one disk per PE for temporary files
		cfg.JoinQPSPerPE = qps
		cfg.MeasureTime = dynlb.Seconds(20)
		return cfg
	}

	fmt.Println("memory-bound: 5-page buffers, 1 temp disk/PE")
	cfg := mk(40, 0)
	fmt.Printf("psu-opt=%d (memory-blind), psu-noIO=%d (needs %d nodes to hold the hash table)\n\n",
		dynlb.PsuOpt(cfg), dynlb.PsuNoIO(cfg), dynlb.PsuNoIO(cfg))

	for _, n := range []int{40, 80} {
		for _, qps := range []float64{0.025, 0} {
			mode := fmt.Sprintf("%.3f QPS/PE", qps)
			if qps == 0 {
				mode = "single-user"
			}
			for _, name := range []string{"pmu-cpu+LUM", "MIN-IO-SUOPT"} {
				res, err := dynlb.Run(mk(n, qps), dynlb.MustStrategy(name))
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("n=%-3d %-14s %-14s rt=%7.0f ms  degree=%5.1f  tempIO=%6d  disk=%3.0f%%\n",
					n, mode, name, res.JoinRT.MeanMS, res.AvgJoinDegree,
					res.TempIOPages, 100*res.DiskUtil)
			}
		}
		fmt.Println()
	}
}
