// Custom strategy: the library's Strategy interface is the extension point
// for new load-balancing policies. This example implements a two-resource
// greedy policy the paper does not evaluate — degree from formula 3.2, but
// selection by a weighted score of CPU utilization AND free memory — and
// races it against the built-ins on a heterogeneous workload.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"dynlb"
)

// cpuMemScore picks the degree with the paper's formula 3.2 and selects the
// k nodes minimizing score = cpu - w*freeMem/buffer: both lightly loaded
// CPUs and free buffers attract join work.
type cpuMemScore struct {
	MemWeight float64
}

func (s cpuMemScore) Name() string { return "custom-cpu-mem-score" }

func (s cpuMemScore) Decide(q dynlb.QueryInfo, v *dynlb.View, rng *rand.Rand) dynlb.Decision {
	u := v.AvgCPU()
	k := int(float64(q.PsuOpt)*(1-u*u*u) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > v.N() {
		k = v.N()
	}

	maxFree := 1
	for _, f := range v.FreeMem {
		if f > maxFree {
			maxFree = f
		}
	}
	ids := rng.Perm(v.N()) // random tie-breaking
	sort.SliceStable(ids, func(i, j int) bool {
		return s.score(v, ids[i], maxFree) < s.score(v, ids[j], maxFree)
	})
	mem := (q.HashPages() + k - 1) / k
	sel := append([]int(nil), ids[:k]...)
	for _, pe := range sel { // adaptive bump, as the built-ins do
		v.CPU[pe] += 0.1
		if v.FreeMem[pe] >= mem {
			v.FreeMem[pe] -= mem
		} else {
			v.FreeMem[pe] = 0
		}
	}
	return dynlb.Decision{JoinPEs: sel, MemPerPE: mem}
}

func (s cpuMemScore) score(v *dynlb.View, pe, maxFree int) float64 {
	return v.CPU[pe] - s.MemWeight*float64(v.FreeMem[pe])/float64(maxFree)
}

func main() {
	contenders := []dynlb.Strategy{
		dynlb.MustStrategy("pmu-cpu+LUM"),
		dynlb.MustStrategy("OPT-IO-CPU"),
		cpuMemScore{MemWeight: 0.5},
	}

	fmt.Println("heterogeneous workload (OLTP on A nodes), 40 PEs:")
	for _, st := range contenders {
		cfg := dynlb.DefaultConfig()
		cfg.NPE = 40
		cfg.DisksPerPE = 5
		cfg.JoinQPSPerPE = 0.075
		cfg.OLTP.Placement = dynlb.OLTPOnANode
		cfg.OLTP.TPSPerNode = 100
		cfg.MeasureTime = dynlb.Seconds(15)

		res, err := dynlb.Run(cfg, st)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s rt=%7.0f ms  degree=%5.1f  cpu=%3.0f%%  tempIO=%d\n",
			st.Name(), res.JoinRT.MeanMS, res.AvgJoinDegree, 100*res.CPUUtil, res.TempIOPages)
	}
}
