// Package dynlb reproduces Rahm & Marek, "Dynamic Multi-Resource Load
// Balancing in Parallel Database Systems" (VLDB 1995): a discrete-event
// simulation of a Shared Nothing parallel database system executing
// parallel hash joins (and optionally debit-credit OLTP transactions) under
// the paper's family of static/dynamic, isolated/integrated load-balancing
// strategies, which decide the degree of join parallelism and the selection
// of join processors from the current CPU and memory situation.
//
// Quick start — one simulation run:
//
//	cfg := dynlb.DefaultConfig()
//	cfg.NPE = 40
//	cfg.JoinQPSPerPE = 0.25
//	res, err := dynlb.Run(cfg, dynlb.MustStrategy("OPT-IO-CPU"))
//
// The built-in strategies carry the paper's names: the static degrees
// psu-opt and psu-noIO, the dynamic pmu-cpu (formula 3.2), the selections
// RANDOM / LUC / LUM, and the integrated MIN-IO, MIN-IO-SUOPT and
// OPT-IO-CPU. Custom strategies implement the Strategy interface over the
// control node's View.
//
// # Experiments
//
// Sweeps are built and executed through one composable entry point: an
// Experiment over a point source — Figure("6") reproduces a paper figure,
// a Sweep varies any Config dimension along user-defined axes — refined by
// functional options and executed by (*Experiment).Run:
//
//	rows, err := dynlb.NewExperiment(
//		dynlb.Figure("6"),
//		dynlb.WithScale(dynlb.ScaleQuick),
//		dynlb.WithReps(5),                 // 5 deterministic seeds per point, 95% CIs
//		dynlb.WithProgress(func(r dynlb.Row) { fmt.Println(r.Series, r.X, r.JoinRTMS) }),
//	).Run(ctx)
//
// A custom sweep the paper never ran is a few lines — no fork of the
// figure planners:
//
//	sweep := dynlb.Sweep{
//		Name:       "rt-vs-disks",
//		Base:       cfg,
//		Strategies: []dynlb.Strategy{dynlb.MustStrategy("MIN-IO-SUOPT")},
//		Axes: []dynlb.Axis{
//			dynlb.IntAxis("disks/PE", func(c *dynlb.Config, d int) { c.DisksPerPE = d }, 1, 2, 5, 10),
//		},
//	}
//	rows, err := dynlb.NewExperiment(sweep, dynlb.WithReps(3)).Run(ctx)
//
// Replication (WithReps/WithSeeds: across-replicate means with Student-t
// confidence half-widths in Row.Rep) and paired comparison (WithCompare:
// two strategies on identical replicate seeds — common random numbers —
// with paired-t deltas in Row.Cmp) are orthogonal options, all points fan
// out over one worker pool (WithWorkers), rows are bit-identical at any
// worker count, ctx cancellation stops the sweep promptly, and WithProgress
// streams rows in deterministic order as they complete. ReplicateSeeds
// derives the standard seed stream (replicate 0 is the base seed; further
// replicates come from a splitmix64 stream, independent of worker count).
//
// Rows serialize with WriteRowsCSV and WriteRowsJSON. The pre-Experiment
// entry points (RunFigure*, RunReplicated*, Compare*) remain as thin
// deprecated wrappers with bit-identical output.
package dynlb

import (
	"fmt"

	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/costmodel"
	"dynlb/internal/engine"
	"dynlb/internal/sim"
)

// Config is the full parameter set of a simulation run: system
// configuration, the Fig. 4 CPU cost table, database and query profile,
// workload rates and the control-node behaviour. Obtain defaults with
// DefaultConfig and mutate fields.
type Config = config.Config

// OLTPPlacement selects which PEs run the OLTP workload.
type OLTPPlacement = config.OLTPPlacement

// OLTP placements for heterogeneous workloads (Section 5.3).
const (
	OLTPNone    = config.OLTPNone
	OLTPOnANode = config.OLTPOnANode
	OLTPOnBNode = config.OLTPOnBNode
	OLTPOnAll   = config.OLTPOnAll
)

// Strategy decides the degree of join parallelism and the join processors
// for one query (see package core for the built-ins).
type Strategy = core.Strategy

// View is the control node's per-PE CPU/memory knowledge strategies
// consult.
type View = core.View

// QueryInfo carries the per-query planning constants (inner input size,
// fudge factor, p_su-opt, p_su-noIO).
type QueryInfo = core.QueryInfo

// Decision is a strategy's placement output.
type Decision = core.Decision

// Results are the measured outcomes of one run.
type Results = engine.Results

// Summary condenses a response-time distribution.
type Summary = engine.Summary

// Window is one fixed-width metrics slice of a windowed run (see
// Config.MetricsWindow and WithMetricsWindow).
type Window = engine.Window

// LoadProfile modulates arrival rates and redistribution skew over
// simulated time (see Config.Profile and WithProfile). Build one with the
// profile constructors below or parse a -profile flag spec with
// ParseProfile; the zero value is the constant (steady-state) profile.
type LoadProfile = config.LoadProfile

// ProfileKind selects the shape of a LoadProfile.
type ProfileKind = config.ProfileKind

// Profile kinds.
const (
	ProfileConstant = config.ProfileConstant
	ProfileSquare   = config.ProfileSquare
	ProfileDiurnal  = config.ProfileDiurnal
	ProfileDrift    = config.ProfileDrift
	ProfileFlash    = config.ProfileFlash
)

// ConstantProfile returns the steady-state (identity) load profile.
func ConstantProfile() LoadProfile { return config.ConstantProfile() }

// SquareWave returns a square-wave burst profile: arrival rate × factor for
// the first duty fraction of every period.
func SquareWave(factor float64, period sim.Duration, duty float64) LoadProfile {
	return config.SquareWave(factor, period, duty)
}

// DiurnalProfile returns a sinusoidal arrival-rate profile:
// rate × (1 + amp·sin(2πt/period)).
func DiurnalProfile(amp float64, period sim.Duration) LoadProfile {
	return config.Diurnal(amp, period)
}

// SkewDrift returns a profile drifting the redistribution skew by slope per
// simulated second from the measurement start.
func SkewDrift(slope float64) LoadProfile { return config.SkewDrift(slope) }

// FlashCrowd returns a flash-crowd profile: inside [start, start+duration)
// the arrival rate is multiplied by factor and the redistribution skew
// raised by hotSkew.
func FlashCrowd(start, duration sim.Duration, factor, hotSkew float64) LoadProfile {
	return config.FlashCrowd(start, duration, factor, hotSkew)
}

// ParseProfile parses a load-profile spec in the commands' -profile syntax,
// e.g. "square:factor=4,period=2s,duty=0.5" (see config.ParseProfile for
// the full grammar).
func ParseProfile(spec string) (LoadProfile, error) { return config.ParseProfile(spec) }

// FaultPlan schedules deterministic failures — PE crashes, disk slowdowns,
// CPU stragglers — at simulated times (see Config.Faults and WithFaults).
// Build one from the constructors below or parse a -faults flag spec with
// ParseFaults; the zero value injects nothing and keeps the fault-free code
// path bit-identical.
type FaultPlan = config.FaultPlan

// Fault is one scheduled failure of a FaultPlan.
type Fault = config.Fault

// FaultKind selects what a Fault breaks.
type FaultKind = config.FaultKind

// Fault kinds.
const (
	FaultCrash     = config.FaultCrash
	FaultSlowDisk  = config.FaultSlowDisk
	FaultStraggler = config.FaultStraggler
)

// Crash returns a fault taking pe offline at time at (measured from the
// measurement start, like LoadProfile time) and recovering it after down
// (0 = never recovers).
func Crash(pe int, at, down Duration) Fault { return config.Crash(pe, at, down) }

// SlowDisk returns a fault stretching pe's disk service times by factor for
// dur (0 = until the end of the run), starting at time at.
func SlowDisk(pe int, at, dur Duration, factor float64) Fault {
	return config.SlowDisk(pe, at, dur, factor)
}

// Straggler returns a fault stretching pe's CPU costs by factor for dur
// (0 = until the end of the run), starting at time at.
func Straggler(pe int, at, dur Duration, factor float64) Fault {
	return config.Straggler(pe, at, dur, factor)
}

// ParseFault parses one fault spec in the commands' -faults syntax, e.g.
// "crash(pe=3,at=20s,down=10s)" (see config.ParseFault for the grammar).
func ParseFault(spec string) (Fault, error) { return config.ParseFault(spec) }

// ParseFaults parses a semicolon-separated fault plan, e.g.
// "crash(pe=3,at=20s,down=10s);slowdisk(pe=2,at=15s,for=20s,factor=4)".
// Empty and "none" return the empty plan.
func ParseFaults(spec string) (FaultPlan, error) { return config.ParseFaults(spec) }

// DefaultConfig returns the paper's Fig. 4 parameter settings (80 PEs,
// 20 MIPS CPUs, 50-page buffers, 10 disks/PE, 1% scan selectivity,
// single-user join workload, no OLTP).
func DefaultConfig() Config { return config.Default() }

// Strategy constructors re-exported from the core package.

// StrategyByName builds a built-in strategy from its paper name, e.g.
// "psu-opt+RANDOM", "pmu-cpu+LUM", "MIN-IO-SUOPT", "OPT-IO-CPU".
func StrategyByName(name string) (Strategy, error) { return core.ByName(name) }

// MustStrategy is StrategyByName panicking on unknown names.
func MustStrategy(name string) Strategy { return core.MustByName(name) }

// StrategyNames lists all built-in strategy names.
func StrategyNames() []string { return core.Names() }

// FixedDegree returns an isolated strategy with an explicit static degree
// and the given selection policy name (RANDOM, LUC or LUM); it backs the
// Fig. 1 response-time curves and ablations.
func FixedDegree(p int, selection string) (Strategy, error) {
	name := "psu-opt+" + selection
	s, err := core.ByName(name)
	if err != nil {
		return nil, err
	}
	iso, ok := s.(core.Isolated)
	if !ok {
		// Guards against a future ByName routing a degree+selection name to a
		// non-isolated implementation: fail with a diagnosis, not a panic.
		return nil, fmt.Errorf("dynlb: FixedDegree needs an isolated degree+selection strategy, but %q is a %T", name, s)
	}
	iso.Deg = core.StaticDegree{P: p}
	return iso, nil
}

// Run simulates cfg under the strategy and returns the windowed results.
func Run(cfg Config, s Strategy) (Results, error) {
	sys, err := engine.New(cfg, s)
	if err != nil {
		return Results{}, err
	}
	return sys.Run(), nil
}

// PsuOpt returns the single-user optimal degree of join parallelism for the
// configuration's join query (the analytic model of Section 2).
func PsuOpt(cfg Config) int { return costmodel.New(cfg).PsuOpt() }

// PsuNoIO returns formula 3.1: the minimal degree avoiding temporary file
// I/O in single-user mode.
func PsuNoIO(cfg Config) int { return costmodel.New(cfg).PsuNoIO() }

// ResponseTimeCurve returns the analytic single-user response time in
// milliseconds for degrees 1..maxP (the Fig. 1a curve).
func ResponseTimeCurve(cfg Config, maxP int) []float64 {
	curve := costmodel.New(cfg).Curve(maxP)
	out := make([]float64, len(curve))
	for i, rt := range curve {
		out[i] = rt.Milliseconds()
	}
	return out
}

// Duration is the simulator's time-span type (integer nanoseconds), used by
// Config.Warmup/MeasureTime/MetricsWindow and the load-profile parameters.
type Duration = sim.Duration

// Seconds converts a float64 seconds value into the simulator's duration
// type for configuring Warmup and MeasureTime.
func Seconds(s float64) sim.Duration { return sim.FromSeconds(s) }
