// Package dynlb reproduces Rahm & Marek, "Dynamic Multi-Resource Load
// Balancing in Parallel Database Systems" (VLDB 1995): a discrete-event
// simulation of a Shared Nothing parallel database system executing
// parallel hash joins (and optionally debit-credit OLTP transactions) under
// the paper's family of static/dynamic, isolated/integrated load-balancing
// strategies, which decide the degree of join parallelism and the selection
// of join processors from the current CPU and memory situation.
//
// Quick start:
//
//	cfg := dynlb.DefaultConfig()
//	cfg.NPE = 40
//	cfg.JoinQPSPerPE = 0.25
//	res, err := dynlb.Run(cfg, dynlb.MustStrategy("OPT-IO-CPU"))
//
// The built-in strategies carry the paper's names: the static degrees
// psu-opt and psu-noIO, the dynamic pmu-cpu (formula 3.2), the selections
// RANDOM / LUC / LUM, and the integrated MIN-IO, MIN-IO-SUOPT and
// OPT-IO-CPU. Custom strategies implement the Strategy interface over the
// control node's View.
//
// For means with confidence intervals instead of single-run point
// estimates, replicate across deterministic seeds: RunReplicated runs one
// configuration once per seed, RunFigureReplicated replicates every point
// of a figure sweep, and ReplicateSeeds derives the standard seed stream
// (replicate 0 is the base seed; further replicates come from a
// splitmix64 stream, independent of worker count).
//
// For head-to-head strategy comparisons, Compare/CompareReplicated and
// RunFigureCompared run two strategies on identical replicate seeds
// (common random numbers) and report paired per-metric deltas and relative
// improvements whose paired-t confidence intervals are tighter than
// independent seeds would give.
package dynlb

import (
	"dynlb/internal/config"
	"dynlb/internal/core"
	"dynlb/internal/costmodel"
	"dynlb/internal/engine"
	"dynlb/internal/sim"
)

// Config is the full parameter set of a simulation run: system
// configuration, the Fig. 4 CPU cost table, database and query profile,
// workload rates and the control-node behaviour. Obtain defaults with
// DefaultConfig and mutate fields.
type Config = config.Config

// OLTPPlacement selects which PEs run the OLTP workload.
type OLTPPlacement = config.OLTPPlacement

// OLTP placements for heterogeneous workloads (Section 5.3).
const (
	OLTPNone    = config.OLTPNone
	OLTPOnANode = config.OLTPOnANode
	OLTPOnBNode = config.OLTPOnBNode
	OLTPOnAll   = config.OLTPOnAll
)

// Strategy decides the degree of join parallelism and the join processors
// for one query (see package core for the built-ins).
type Strategy = core.Strategy

// View is the control node's per-PE CPU/memory knowledge strategies
// consult.
type View = core.View

// QueryInfo carries the per-query planning constants (inner input size,
// fudge factor, p_su-opt, p_su-noIO).
type QueryInfo = core.QueryInfo

// Decision is a strategy's placement output.
type Decision = core.Decision

// Results are the measured outcomes of one run.
type Results = engine.Results

// Summary condenses a response-time distribution.
type Summary = engine.Summary

// DefaultConfig returns the paper's Fig. 4 parameter settings (80 PEs,
// 20 MIPS CPUs, 50-page buffers, 10 disks/PE, 1% scan selectivity,
// single-user join workload, no OLTP).
func DefaultConfig() Config { return config.Default() }

// Strategy constructors re-exported from the core package.

// StrategyByName builds a built-in strategy from its paper name, e.g.
// "psu-opt+RANDOM", "pmu-cpu+LUM", "MIN-IO-SUOPT", "OPT-IO-CPU".
func StrategyByName(name string) (Strategy, error) { return core.ByName(name) }

// MustStrategy is StrategyByName panicking on unknown names.
func MustStrategy(name string) Strategy { return core.MustByName(name) }

// StrategyNames lists all built-in strategy names.
func StrategyNames() []string { return core.Names() }

// FixedDegree returns an isolated strategy with an explicit static degree
// and the given selection policy name (RANDOM, LUC or LUM); it backs the
// Fig. 1 response-time curves and ablations.
func FixedDegree(p int, selection string) (Strategy, error) {
	s, err := core.ByName("psu-opt+" + selection)
	if err != nil {
		return nil, err
	}
	iso := s.(core.Isolated)
	iso.Deg = core.StaticDegree{P: p}
	return iso, nil
}

// Run simulates cfg under the strategy and returns the windowed results.
func Run(cfg Config, s Strategy) (Results, error) {
	sys, err := engine.New(cfg, s)
	if err != nil {
		return Results{}, err
	}
	return sys.Run(), nil
}

// PsuOpt returns the single-user optimal degree of join parallelism for the
// configuration's join query (the analytic model of Section 2).
func PsuOpt(cfg Config) int { return costmodel.New(cfg).PsuOpt() }

// PsuNoIO returns formula 3.1: the minimal degree avoiding temporary file
// I/O in single-user mode.
func PsuNoIO(cfg Config) int { return costmodel.New(cfg).PsuNoIO() }

// ResponseTimeCurve returns the analytic single-user response time in
// milliseconds for degrees 1..maxP (the Fig. 1a curve).
func ResponseTimeCurve(cfg Config, maxP int) []float64 {
	curve := costmodel.New(cfg).Curve(maxP)
	out := make([]float64, len(curve))
	for i, rt := range curve {
		out[i] = rt.Milliseconds()
	}
	return out
}

// Seconds converts a float64 seconds value into the simulator's duration
// type for configuring Warmup and MeasureTime.
func Seconds(s float64) sim.Duration { return sim.FromSeconds(s) }
