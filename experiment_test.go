package dynlb

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

// tinySweepCfg is the cheapest meaningful configuration for exercising the
// experiment pipeline: small system, short windows.
func tinySweepCfg() Config {
	cfg := DefaultConfig()
	cfg.NPE = 8
	cfg.JoinQPSPerPE = 0.1
	cfg.Warmup = Seconds(1)
	cfg.MeasureTime = Seconds(3)
	return cfg
}

// tinySweep is a two-axis custom sweep (system size x strategies) no paper
// figure runs — the ISSUE's "custom axis" case.
func tinySweep() Sweep {
	return Sweep{
		Name: "tiny",
		Base: tinySweepCfg(),
		Strategies: []Strategy{
			MustStrategy("psu-opt+RANDOM"),
			MustStrategy("OPT-IO-CPU"),
		},
		Axes: []Axis{
			IntAxis("#PE", func(c *Config, n int) { c.NPE = n }, 8, 10),
		},
	}
}

// TestExperimentValidation: option and source misuse must be reported as
// errors from Run, before any simulation starts (all cases are fast).
func TestExperimentValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		e    *Experiment
		want string
	}{
		{"nil source", NewExperiment(nil), "point source"},
		{"unknown figure", NewExperiment(Figure("nope")), "unknown figure"},
		{"bad confidence", NewExperiment(Figure("6"), WithConfidence(2)), "confidence"},
		{"bad confidence unreplicated", NewExperiment(Figure("6"), WithConfidence(0), WithReps(1)), "confidence"},
		{"reps and seeds", NewExperiment(Figure("6"), WithReps(3), WithSeeds(1, 2)), "mutually exclusive"},
		{"empty seed list", NewExperiment(Figure("6"), WithSeeds()), "at least one seed"},
		{"sweep without strategies", NewExperiment(Sweep{Base: tinySweepCfg()}), "at least one strategy"},
		{"sweep nil strategy", NewExperiment(Sweep{Base: tinySweepCfg(), Strategies: []Strategy{nil}}), "is nil"},
		{"axis without values", NewExperiment(Sweep{
			Base:       tinySweepCfg(),
			Strategies: []Strategy{MustStrategy("MIN-IO")},
			Axes:       []Axis{{Name: "empty"}},
		}), "has no values"},
		{"compare with strategies", NewExperiment(tinySweep(),
			WithCompare(MustStrategy("MIN-IO"), MustStrategy("OPT-IO-CPU"))), "leave Strategies empty"},
		{"compare missing side", NewExperiment(Sweep{Base: tinySweepCfg()},
			WithCompare(nil, MustStrategy("OPT-IO-CPU"))), "baseline and a challenger"},
		{"compare both nil", NewExperiment(Sweep{Base: tinySweepCfg()},
			WithCompare(nil, nil)), "baseline and a challenger"},
		{"compare reps 0", NewExperiment(Sweep{Base: tinySweepCfg()},
			WithCompare(MustStrategy("MIN-IO"), MustStrategy("OPT-IO-CPU")), WithReps(0)), "reps >= 1"},
		{"compare on degree figure", NewExperiment(Figure("1a"),
			WithCompare(MustStrategy("MIN-IO"), MustStrategy("OPT-IO-CPU"))), "no config axis"},
	}
	for _, tc := range cases {
		rows, err := tc.e.Run(ctx)
		if err == nil {
			t.Errorf("%s: accepted (%d rows)", tc.name, len(rows))
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSweepAxisCrossProduct: point enumeration is the documented order —
// x axis outermost, further axes nested, strategies innermost — and series
// labels compose from the non-x axis labels plus the strategy name.
func TestSweepAxisCrossProduct(t *testing.T) {
	s := Sweep{
		Name:       "grid",
		Base:       tinySweepCfg(),
		Strategies: []Strategy{MustStrategy("MIN-IO"), MustStrategy("OPT-IO-CPU")},
		Axes: []Axis{
			IntAxis("#PE", func(c *Config, n int) { c.NPE = n }, 8, 10),
			NumAxis("qps", func(c *Config, q float64) { c.JoinQPSPerPE = q }, 0.05, 0.1),
		},
	}
	p, err := s.plan(ScaleQuick, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.jobs) != 2*2*2 || len(p.rows) != 8 {
		t.Fatalf("plan size: %d jobs, %d rows, want 8/8", len(p.jobs), len(p.rows))
	}
	// Job 0: NPE=8, qps=0.05, MIN-IO; job 5: NPE=10, qps=0.05, OPT-IO-CPU.
	if p.jobs[0].cfg.NPE != 8 || p.jobs[0].cfg.JoinQPSPerPE != 0.05 || p.jobs[0].st.Name() != "MIN-IO" {
		t.Errorf("job 0 = NPE %d qps %v %s", p.jobs[0].cfg.NPE, p.jobs[0].cfg.JoinQPSPerPE, p.jobs[0].st.Name())
	}
	if p.jobs[5].cfg.NPE != 10 || p.jobs[5].cfg.JoinQPSPerPE != 0.05 || p.jobs[5].st.Name() != "OPT-IO-CPU" {
		t.Errorf("job 5 = NPE %d qps %v %s", p.jobs[5].cfg.NPE, p.jobs[5].cfg.JoinQPSPerPE, p.jobs[5].st.Name())
	}
	// The base seed lands on every point; windows follow the Base config
	// because WithScale was not given.
	base := tinySweepCfg()
	for i, j := range p.jobs {
		if j.cfg.Seed != 7 {
			t.Errorf("job %d seed %d, want 7", i, j.cfg.Seed)
		}
		if j.cfg.Warmup != base.Warmup || j.cfg.MeasureTime != base.MeasureTime {
			t.Errorf("job %d windows changed without WithScale", i)
		}
	}
	// Row 1's series: non-x axis label + strategy.
	r, err := p.rows[1].build([]runOut{{}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Series != "qps=0.05 / OPT-IO-CPU" || r.X != 8 || r.XLabel != "#PE" || r.Figure != "grid" {
		t.Errorf("row 1 = %q x=%v xlabel=%q fig=%q", r.Series, r.X, r.XLabel, r.Figure)
	}
	// WithScale overrides the Base windows.
	p2, err := s.plan(ScaleQuick, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	w, m := ScaleQuick.windows()
	if p2.jobs[0].cfg.Warmup != w || p2.jobs[0].cfg.MeasureTime != m {
		t.Errorf("WithScale did not override sweep windows")
	}
}

// TestCustomSweepDeterminismAcrossWorkers is the custom-axis acceptance
// check: a replicated sweep over a non-figure axis must produce
// bit-identical rows at any worker count, and the progress stream must be
// exactly the returned rows in order.
func TestCustomSweepDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(workers int) ([]Row, []Row) {
		var streamed []Row
		rows, err := NewExperiment(tinySweep(),
			WithReps(2),
			WithWorkers(workers),
			WithProgress(func(r Row) { streamed = append(streamed, r) }),
		).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rows, streamed
	}
	seq, seqStream := run(1)
	if len(seq) != 4 {
		t.Fatalf("row count %d, want 4 (2 sizes x 2 strategies)", len(seq))
	}
	if !reflect.DeepEqual(seq, seqStream) {
		t.Fatalf("progress stream differs from returned rows:\nrows:   %+v\nstream: %+v", seq, seqStream)
	}
	for i, r := range seq {
		if r.Rep == nil || r.Rep.Reps != 2 {
			t.Fatalf("row %d missing replicate aggregates: %+v", i, r.Rep)
		}
	}
	for _, workers := range []int{4, 0 /* NumCPU */} {
		par, parStream := run(workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("rows differ between workers=1 and workers=%d", workers)
		}
		if !reflect.DeepEqual(par, parStream) {
			t.Fatalf("workers=%d progress stream differs from returned rows", workers)
		}
	}
}

// TestExperimentCancellation: cancelling the context mid-sweep returns
// promptly with ctx.Err() instead of completing the remaining points, and a
// pre-cancelled context never starts a simulation.
func TestExperimentCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a few tiny simulations")
	}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	rows, err := NewExperiment(tinySweep(),
		WithWorkers(1),
		WithProgress(func(Row) {
			seen++
			cancel() // cancel as soon as the first row lands
		}),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v (rows %d), want context.Canceled", err, len(rows))
	}
	if rows != nil {
		t.Errorf("cancelled sweep returned %d rows, want nil", len(rows))
	}
	if seen == 0 || seen >= 4 {
		t.Errorf("progress saw %d rows before cancellation took effect, want 1..3", seen)
	}
}

func TestExperimentPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Figure 1a matters here: its analytic rows have no simulation
	// dependencies and would otherwise stream before the first ctx check.
	for _, src := range []Source{tinySweep(), Figure("1a")} {
		started := false
		_, err := NewExperiment(src, WithScale(ScaleQuick),
			WithProgress(func(Row) { started = true }),
		).Run(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%T: pre-cancelled Run returned %v, want context.Canceled", src, err)
		}
		if started {
			t.Errorf("%T: pre-cancelled Run still streamed rows", src)
		}
	}
}

// TestDeprecatedWrappersMatchExperiment proves every deprecated entry point
// produces bit-identical rows to the equivalent Experiment — the migration
// table's contract. The wrappers delegate, so this pins the option mapping
// (scale, seed, reps, confidence, workers, compare) against drift.
func TestDeprecatedWrappersMatchExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps")
	}
	ctx := context.Background()
	mustRows := func(rows []Row, err error) []Row {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	equal := func(name string, a, b []Row) {
		t.Helper()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s rows differ from the explicit Experiment", name)
		}
	}

	// Figure sweeps: plain, parallel, replicated (fig 1a is the cheapest).
	viaExp := mustRows(NewExperiment(Figure("1a"),
		WithScale(ScaleQuick), WithSeed(2), WithWorkers(1)).Run(ctx))
	equal("RunFigure", mustRows(RunFigure("1a", ScaleQuick, 2)), viaExp)
	equal("RunFigureParallel", mustRows(RunFigureParallel("1a", ScaleQuick, 2, 4)),
		mustRows(NewExperiment(Figure("1a"),
			WithScale(ScaleQuick), WithSeed(2), WithWorkers(4)).Run(ctx)))
	equal("RunFigureReplicatedConf", mustRows(RunFigureReplicatedConf("1a", ScaleQuick, 2, 2, 0.9, 0)),
		mustRows(NewExperiment(Figure("1a"),
			WithScale(ScaleQuick), WithSeed(2), WithReps(2), WithConfidence(0.9)).Run(ctx)))

	// Single-configuration replication and comparison.
	cfg := tinySweepCfg()
	st := MustStrategy("OPT-IO-CPU")
	seeds := ReplicateSeeds(cfg.Seed, 3)
	rep, err := RunReplicated(cfg, st, seeds)
	if err != nil {
		t.Fatal(err)
	}
	repRows := mustRows(NewExperiment(Sweep{Base: cfg, Strategies: []Strategy{st}},
		WithSeeds(seeds...)).Run(ctx))
	if !reflect.DeepEqual(rep.Mean, repRows[0].Res) || !reflect.DeepEqual(rep.Rep, *repRows[0].Rep) {
		t.Errorf("RunReplicated aggregates differ from the explicit Experiment")
	}

	base := MustStrategy("psu-opt+RANDOM")
	cmp, err := CompareReplicated(cfg, base, st, seeds)
	if err != nil {
		t.Fatal(err)
	}
	cmpRows := mustRows(NewExperiment(Sweep{Base: cfg},
		WithCompare(base, st), WithSeeds(seeds...)).Run(ctx))
	if !reflect.DeepEqual(cmp.Pair, *cmpRows[0].Cmp) {
		t.Errorf("CompareReplicated pair differs from the explicit Experiment")
	}
	if cmpRows[0].Series != "OPT-IO-CPU vs psu-opt+RANDOM" {
		t.Errorf("compared single-point series = %q", cmpRows[0].Series)
	}
	single, err := Compare(cfg, base, st)
	if err != nil {
		t.Fatal(err)
	}
	singleRows := mustRows(NewExperiment(Sweep{Base: cfg},
		WithCompare(base, st), WithSeeds(cfg.Seed)).Run(ctx))
	if !reflect.DeepEqual(single.Pair, *singleRows[0].Cmp) {
		t.Errorf("Compare pair differs from the explicit Experiment")
	}
}

// TestRunFigureComparedMatchesExperiment pins the figure-compare wrapper
// (the heaviest sweep, so it gets its own test): rows via the deprecated
// RunFigureCompared must be bit-identical to WithCompare on the Figure
// source.
func TestRunFigureComparedMatchesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation sweep")
	}
	wrap, err := RunFigureCompared("8", ScaleQuick, 1, "psu-opt+RANDOM", "OPT-IO-CPU", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExperiment(Figure("8"),
		WithScale(ScaleQuick), WithSeed(1),
		WithCompare(MustStrategy("psu-opt+RANDOM"), MustStrategy("OPT-IO-CPU")),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wrap, exp) {
		t.Fatalf("RunFigureCompared rows differ from the explicit Experiment")
	}
	for i, r := range wrap {
		if r.Cmp == nil || r.Cmp.Reps != 1 || r.Rep != nil {
			t.Errorf("row %d comparison shape: Cmp=%+v Rep=%+v", i, r.Cmp, r.Rep)
		}
	}
}

// TestWithRunsAttachesRawResults: WithRuns exposes the per-replicate
// Results on each row — the public replacement for Replicated.Runs — and
// rows stay lean without it.
func TestWithRunsAttachesRawResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a few tiny simulations")
	}
	ctx := context.Background()
	cfg := tinySweepCfg()
	src := Sweep{Base: cfg, Strategies: []Strategy{MustStrategy("MIN-IO")}}
	rows, err := NewExperiment(src, WithReps(2), WithRuns()).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	runs := rows[0].Runs
	if len(runs) != 2 {
		t.Fatalf("Row.Runs has %d results, want 2", len(runs))
	}
	mean, _ := AggregateResults(runs, DefaultConfidence)
	if !reflect.DeepEqual(mean, rows[0].Res) {
		t.Errorf("re-aggregating Row.Runs does not reproduce Row.Res")
	}
	bare, err := NewExperiment(src, WithReps(2)).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bare[0].Runs != nil {
		t.Errorf("Row.Runs populated without WithRuns")
	}
}

// TestExperimentJobError: a point that fails to construct (invalid config
// reached through an axis) aborts the sweep with the engine's error.
func TestExperimentJobError(t *testing.T) {
	_, err := NewExperiment(Sweep{
		Base:       tinySweepCfg(),
		Strategies: []Strategy{MustStrategy("MIN-IO")},
		Axes: []Axis{
			IntAxis("#PE", func(c *Config, n int) { c.NPE = n }, 0), // invalid
		},
	}).Run(context.Background())
	if err == nil {
		t.Fatal("invalid point config accepted")
	}
}

// TestPlanOutOfOrderCompletionMatchesRun: the exported Plan hooks are
// schedule-independent — running jobs in reverse and completing them in
// reverse order emits exactly Run's rows, in the same order, across the
// concatenated Complete batches. This is the contract the dynlbd scheduler
// (internal/service) builds on when it interleaves many experiments over
// one shared pool.
func TestPlanOutOfOrderCompletionMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	exp := func() *Experiment { return NewExperiment(tinySweep(), WithReps(2)) }
	want, err := exp().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	p, err := exp().Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows() != len(want) {
		t.Fatalf("NumRows %d, want %d", p.NumRows(), len(want))
	}
	got, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	for i := p.NumJobs() - 1; i >= 0; i-- {
		if err := p.RunJob(i); err != nil {
			t.Fatal(err)
		}
		rows, err := p.Complete(i)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
	}
	if !p.Done() {
		t.Fatal("plan not done after completing every job")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("out-of-order plan rows differ from Run rows:\n got %+v\nwant %+v", got, want)
	}
}
