package dynlb

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// deprecatedWrappers are the pre-Experiment entry points that now delegate
// to Experiment. Each must carry a "Deprecated:" doc line pointing callers
// at the replacement — CI runs this test as its deprecation-comment lint.
var deprecatedWrappers = []string{
	"RunFigure",
	"RunFigureParallel",
	"RunFigureReplicated",
	"RunFigureReplicatedConf",
	"RunFigureCompared",
	"RunFigureComparedConf",
	"RunReplicated",
	"RunReplicatedConf",
	"Compare",
	"CompareReplicated",
	"CompareReplicatedConf",
}

// TestDeprecatedWrapperDocs parses the package sources and checks that
// every legacy wrapper's doc comment both marks it Deprecated and names the
// Experiment replacement, so godoc and editors surface the migration.
func TestDeprecatedWrapperDocs(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv != nil || fn.Doc == nil {
					continue
				}
				docs[fn.Name.Name] = fn.Doc.Text()
			}
		}
	}
	for _, name := range deprecatedWrappers {
		doc, ok := docs[name]
		if !ok {
			t.Errorf("wrapper %s missing (or missing its doc comment)", name)
			continue
		}
		if !strings.Contains(doc, "Deprecated:") {
			t.Errorf("wrapper %s lacks a Deprecated: doc line", name)
		}
		if !strings.Contains(doc, "Experiment") {
			t.Errorf("wrapper %s's deprecation does not name the Experiment replacement", name)
		}
	}
	// The new API itself must never be marked deprecated by accident.
	for _, name := range []string{"NewExperiment", "Run", "WithReps", "WithCompare", "WithRuns"} {
		if doc, ok := docs[name]; ok && strings.Contains(doc, "Deprecated:") {
			t.Errorf("%s is marked Deprecated", name)
		}
	}
}
